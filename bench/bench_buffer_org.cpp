// Extension X19: buffer organization at equal area — the paper's
// partitioned per-VC banks with VC-granularity sensor-wise gating vs the
// shared (DAMQ) slot pool with slot-granularity gating. Both routers hold
// num_vcs * buffer_depth flit slots per input port; the question is which
// gating granularity buys more recovery on the most-degraded storage at
// what latency cost. Runs on the SweepRunner, so the grid is reproducible
// bit for bit at any --workers count.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

namespace {

// Recovery-duty spread across a port's gateable units (VCs or slots):
// min / mean / max of the stress duty, showing how evenly the policy
// spreads the recovery budget over the storage it manages.
std::string duty_spread(const core::PortResult& port) {
  const auto [lo, hi] = std::minmax_element(port.duty_percent.begin(), port.duty_percent.end());
  return util::format_percent(*lo) + " / " + util::format_percent(util::mean_of(port.duty_percent)) +
         " / " + util::format_percent(*hi);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.1);
  bench::apply_scale(banner, options);
  bench::print_banner(
      "Extension X19 — buffer organization at equal area (16 cores, 4 VCs x 4 flits/port)",
      "partitioned per-VC gating vs shared-pool (DAMQ) slot gating, same storage budget",
      banner, options);

  const std::vector<double> rates = {0.05, 0.10, 0.20, 0.30};

  core::SweepRunner sweep(bench::sweep_options(options));
  std::vector<std::size_t> part_ids, shared_ids;
  for (double rate : rates) {
    sim::Scenario part = sim::Scenario::synthetic(4, 4, rate);
    bench::apply_scale(part, options);
    part_ids.push_back(sweep.add(part, core::PolicyKind::kSensorWise, core::Workload::synthetic()));

    sim::Scenario shared = part;
    shared.buffer_org = "shared";
    shared_ids.push_back(
        sweep.add(shared, core::PolicyKind::kSensorWiseSlotMd, core::Workload::synthetic()));
  }
  const core::SweepResult results = sweep.run();

  util::Table table({"inj rate", "org", "MD unit", "MD duty", "duty min/mean/max",
                     "gate transitions", "avg latency"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    for (const bool shared : {false, true}) {
      const auto& run = results[shared ? shared_ids[i] : part_ids[i]].result;
      const auto& port = run.port(0, noc::Dir::East);
      const auto md = static_cast<std::size_t>(port.most_degraded);
      std::uint64_t transitions = 0;
      for (auto t : port.gate_transitions) transitions += t;
      table.add_row({util::format_double(rates[i], 2),
                     shared ? "shared slots" : "partitioned VCs",
                     (shared ? "slot " : "VC ") + std::to_string(port.most_degraded),
                     util::format_percent(port.duty_percent[md]), duty_spread(port),
                     std::to_string(transitions),
                     util::format_double(run.avg_packet_latency, 1)});
    }
  }

  bench::emit(table, options);
  return 0;
}
