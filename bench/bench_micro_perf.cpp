// Microbenchmarks (google-benchmark): simulator cycle throughput, policy
// decision cost, and NBTI model evaluation cost. These guard against
// performance regressions in the per-cycle hot path.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/noc/routing.hpp"

using namespace nbtinoc;

namespace {

noc::NocConfig mesh_config(int width, int vcs) {
  noc::NocConfig c;
  c.width = width;
  c.height = width;
  c.num_vcs = vcs;
  c.buffer_depth = 8;
  c.packet_length = 18;
  return c;
}

void BM_NetworkStep_Idle(benchmark::State& state) {
  noc::Network net(mesh_config(static_cast<int>(state.range(0)), 4));
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkStep_Idle)->Arg(2)->Arg(4)->Arg(8);

void BM_NetworkStep_Loaded(benchmark::State& state) {
  noc::Network net(mesh_config(static_cast<int>(state.range(0)), 4));
  traffic::install_uniform_traffic(net, 0.4, 42);
  net.run(5000);  // reach steady state
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkStep_Loaded)->Arg(2)->Arg(4)->Arg(8);

void BM_NetworkStep_SensorWise(benchmark::State& state) {
  noc::Network net(mesh_config(4, 4));
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  traffic::install_uniform_traffic(net, 0.4, 42);
  net.run(5000);
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkStep_SensorWise);

void BM_SensorWiseDecide(benchmark::State& state) {
  noc::NocConfig cfg = mesh_config(2, static_cast<int>(state.range(0)));
  noc::InputUnit iu(noc::Dir::East, cfg);
  const noc::OutVcStateView view(&iu);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::sensor_wise_decide(view, 1, true));
}
BENCHMARK(BM_SensorWiseDecide)->Arg(2)->Arg(4)->Arg(8);

void BM_RrNoSensorDecide(benchmark::State& state) {
  noc::NocConfig cfg = mesh_config(2, 4);
  noc::InputUnit iu(noc::Dir::East, cfg);
  const noc::OutVcStateView view(&iu);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::rr_no_sensor_decide(view, 2, true));
}
BENCHMARK(BM_RrNoSensorDecide);

// Buffer-datapath cost pair: one flit through a partitioned VC ring vs
// through a shared-pool (DAMQ) VC chain. The shared path touches the free
// list and per-slot state on every move, so it can never be as cheap as a
// ring index increment — BENCH_hotpath.json gates the pair at >= 0.67
// (i.e. the pool may cost at most 1.5x the ring) so the DAMQ bookkeeping
// never quietly becomes the hot-path bottleneck. Credit accounting is
// excluded on both sides (it lives upstream in the output unit).
void BM_VcBuffer_PushPop(benchmark::State& state) {
  noc::VcBuffer buf(8, 0);
  buf.allocate(1, 0);
  noc::Flit body;
  body.type = noc::FlitType::Body;  // body flits keep the VC Active
  body.packet = 1;
  for (auto _ : state) {
    buf.push(body);
    benchmark::DoNotOptimize(buf.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VcBuffer_PushPop);

void BM_SharedPool_PushPop(benchmark::State& state) {
  noc::SharedBufferPool pool(4, 8, 1, 0);
  noc::Flit body;
  body.type = noc::FlitType::Body;
  body.packet = 1;
  for (auto _ : state) {
    pool.push(1, body);
    benchmark::DoNotOptimize(pool.pop(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedPool_PushPop);

void BM_NbtiDeltaVth(benchmark::State& state) {
  const auto model = nbti::NbtiModel::calibrated({}, {});
  const nbti::OperatingPoint op;
  double alpha = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.delta_vth(alpha, 3e8, op));
    alpha = alpha < 1.0 ? alpha + 1e-4 : 0.01;
  }
}
BENCHMARK(BM_NbtiDeltaVth);

// End-to-end sweep-engine throughput: a small grid of short sensor-wise
// runs through the worker pool. Wall time here is dominated by the same
// per-cycle hot path the step benchmarks isolate, so it tracks how the
// micro-level wins compose at experiment scale (and how they scale with
// the worker count).
void BM_SweepRunner_Throughput(benchmark::State& state) {
  for (auto _ : state) {
    core::SweepOptions options;
    options.workers = static_cast<unsigned>(state.range(0));
    core::SweepRunner sweep(options);
    for (int i = 0; i < 8; ++i) {
      sim::Scenario s = sim::Scenario::synthetic(2, 2, 0.05 + 0.03 * i);
      s.warmup_cycles = 200;
      s.measure_cycles = 2'000;
      sweep.add(s, core::PolicyKind::kSensorWise, core::Workload::synthetic(),
                "bench-" + std::to_string(i));
    }
    benchmark::DoNotOptimize(sweep.run());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SweepRunner_Throughput)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Fast-forward speedup pairs: a whole run() call, stepped (Arg 0) vs
// event-horizon cycle skipping (Arg 1), on meshes with long quiescent
// stretches. These are the ratios bench/check_perf_regression.py gates via
// the "fast_forward_gates" entries in BENCH_hotpath.json: both sides run
// fresh on the same machine, so no yardstick calibration is involved —
// the pair must keep a minimum speedup, not an absolute time.
void BM_NetworkRun_IdleSensorWise(benchmark::State& state) {
  const bool fast_forward = state.range(0) != 0;
  for (auto _ : state) {
    noc::Network net(mesh_config(4, 4));
    const auto model = nbti::NbtiModel::calibrated({}, {});
    core::PolicyConfig pc;
    pc.kind = core::PolicyKind::kSensorWise;
    core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
    ctrl.attach();
    net.set_fast_forward(fast_forward);
    net.run(20'000);
    benchmark::DoNotOptimize(net.skip_stats().skips);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_NetworkRun_IdleSensorWise)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_NetworkRun_LowLoadSensorWise(benchmark::State& state) {
  const bool fast_forward = state.range(0) != 0;
  for (auto _ : state) {
    noc::Network net(mesh_config(4, 4));
    const auto model = nbti::NbtiModel::calibrated({}, {});
    core::PolicyConfig pc;
    pc.kind = core::PolicyKind::kSensorWise;
    core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
    ctrl.attach();
    // Sparse traffic: packets are hundreds of cycles apart, so most of the
    // run is quiescent gap — the regime lifetime studies live in.
    traffic::install_uniform_traffic(net, 0.0005, 42);
    net.set_fast_forward(fast_forward);
    net.run(20'000);
    benchmark::DoNotOptimize(net.skip_stats().skips);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_NetworkRun_LowLoadSensorWise)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_NetworkRun_LowLoadActiveSet(benchmark::State& state) {
  const noc::SchedulerMode mode =
      state.range(0) != 0 ? noc::SchedulerMode::kActiveSet : noc::SchedulerMode::kStepped;
  for (auto _ : state) {
    noc::Network net(mesh_config(4, 4));
    const auto model = nbti::NbtiModel::calibrated({}, {});
    core::PolicyConfig pc;
    pc.kind = core::PolicyKind::kSensorWise;
    core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
    ctrl.attach();
    traffic::install_uniform_traffic(net, 0.0005, 42);
    net.set_scheduler_mode(mode);
    net.run(20'000);
    benchmark::DoNotOptimize(net.scheduler_stats().router_steps);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_NetworkRun_LowLoadActiveSet)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Deterministic periodic point-to-point source: one packet to `dst` every
// `period` cycles, with an exact next-event answer for the schedulers.
class OneHotSource final : public noc::ITrafficSource {
 public:
  OneHotSource(noc::NodeId dst, sim::Cycle period) : dst_(dst), period_(period) {}
  std::optional<noc::PacketRequest> maybe_generate(sim::Cycle now) override {
    if (now < next_) return std::nullopt;
    next_ = now + period_;
    return noc::PacketRequest{dst_, 4, 0};
  }
  sim::Cycle next_event_cycle(sim::Cycle now) override { return next_ < now ? now : next_; }

 private:
  noc::NodeId dst_;
  sim::Cycle period_;
  sim::Cycle next_ = 0;
};

void BM_NetworkRun_OneHotCornerActiveSet(benchmark::State& state) {
  // One permanently busy corner in an otherwise idle 16x16 mesh: global
  // quiescence never holds, so the event-horizon engine degenerates to
  // ~1x, while the active set steps only the corner's handful of
  // components and parks the other ~250 routers.
  const noc::SchedulerMode mode =
      state.range(0) != 0 ? noc::SchedulerMode::kActiveSet : noc::SchedulerMode::kStepped;
  for (auto _ : state) {
    noc::Network net(mesh_config(16, 2));
    const auto model = nbti::NbtiModel::calibrated({}, {});
    core::PolicyConfig pc;
    pc.kind = core::PolicyKind::kSensorWise;
    core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
    ctrl.attach();
    net.set_traffic_source(0, std::make_unique<OneHotSource>(1, 8));
    net.set_scheduler_mode(mode);
    net.run(20'000);
    benchmark::DoNotOptimize(net.scheduler_stats().router_steps);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_NetworkRun_OneHotCornerActiveSet)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Routing-cost pair: the legacy per-flit coordinate arithmetic vs the
// topology layer's precomputed-table load, over an identical mesh
// destination stream. check_perf_regression.py gates the ratio (a
// "fast_forward_gates" pair in BENCH_hotpath.json): replacing the RC-stage
// arithmetic with a table must not have made mesh routing slower.
void BM_RouteCompute_Arithmetic(benchmark::State& state) {
  const noc::NocConfig cfg = mesh_config(8, 4);
  const int n = cfg.nodes();
  int i = 0;
  for (auto _ : state) {
    const noc::NodeId r = i % n;
    const noc::NodeId dst = (i * 31 + 7) % n;
    benchmark::DoNotOptimize(noc::route_compute(r, dst, cfg));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCompute_Arithmetic);

void BM_RouteCompute_Table(benchmark::State& state) {
  const noc::NocConfig cfg = mesh_config(8, 4);
  const auto topo = noc::Topology::create(cfg);
  const int n = cfg.nodes();
  int i = 0;
  for (auto _ : state) {
    const noc::NodeId r = i % n;
    const noc::NodeId dst = (i * 31 + 7) % n;
    benchmark::DoNotOptimize(topo->route(r, dst));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCompute_Table);

// Hierarchical lifetime acceleration pair: the same 160-epoch aging study,
// measuring every epoch (Arg 0, run_lifetime_study's stepped loop) vs one
// cycle-accurate window amortized over the whole study by closed-form ΔVth
// advancement (Arg 1, core::LifetimeEngine with the re-measure trigger
// disarmed). check_perf_regression.py gates the same-machine ratio via
// BENCH_lifetime.json — the ≥50x floor is the point of the hierarchical
// loop. Trajectory fidelity is pinned separately by lifetime_engine_test
// (tolerance 0 is bit-exact; finite tolerances track within bound).
void BM_LifetimeHierarchical(benchmark::State& state) {
  const bool hierarchical = state.range(0) != 0;
  const sim::Scenario s = sim::Scenario::synthetic(2, 2, 0.2);
  core::LifetimeEngineOptions opt;
  opt.epochs = 160;
  opt.years_per_epoch = 0.02;
  opt.measure_cycles_per_epoch = 20'000;
  if (hierarchical) {
    // One measurement window for the whole study: the trigger can't fire.
    opt.remeasure_tolerance_v = 1.0;
    opt.max_extrapolated_epochs = opt.epochs;
  } else {
    opt.remeasure_tolerance_v = 0.0;  // = run_lifetime_study, bit for bit
  }
  for (auto _ : state) {
    const auto r = core::run_hierarchical_lifetime(
        s, core::PolicyKind::kSensorWise, core::Workload::synthetic(), {0, noc::Dir::East}, opt);
    benchmark::DoNotOptimize(r.study.final_worst_vth_v);
  }
  state.SetItemsProcessed(state.iterations() * opt.epochs);
}
BENCHMARK(BM_LifetimeHierarchical)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Trace-replay engine pair: the legacy CSV/in-memory path (parse the CSV,
// copy every node's slice into its own vector) vs the NBTITRACE mmap'd
// zero-copy path (one shared read-only mapping, per-source cursors). Both
// sides drain the identical record stream through generate_burst; the
// BENCH_hotpath.json "fast_forward_gates" entry gates the same-machine
// ratio — the binary engine must beat the CSV baseline by the floor.
struct TraceBenchData {
  std::string csv_path;
  std::shared_ptr<const traffic::TraceFile> file;
  int nodes = 0;
  std::uint64_t records = 0;
};

const TraceBenchData& trace_bench_data() {
  static const TraceBenchData data = [] {
    constexpr int kWidth = 4;
    constexpr int kNodes = kWidth * kWidth;
    std::vector<std::unique_ptr<traffic::SyntheticSource>> sources;
    std::vector<noc::ITrafficSource*> raw;
    util::SplitMix64 seeder(2024);
    for (noc::NodeId id = 0; id < kNodes; ++id) {
      sources.push_back(std::make_unique<traffic::SyntheticSource>(
          id, 0.4, 4, traffic::DestinationPattern(traffic::PatternKind::kUniform, kWidth, kWidth),
          seeder.next()));
      raw.push_back(sources.back().get());
    }
    const traffic::Trace trace = traffic::Trace::capture(raw, 40'000);
    TraceBenchData d;
    d.nodes = kNodes;
    d.records = trace.size();
    d.csv_path =
        (std::filesystem::temp_directory_path() / "nbtinoc_bench_trace.csv").string();
    trace.save(d.csv_path);
    d.file = traffic::TraceFile::from_trace(trace, kNodes, "bench_micro_perf");
    return d;
  }();
  return data;
}

std::uint64_t drain_replay(noc::ITrafficSource& src) {
  noc::PacketRequest burst[noc::kMaxGenerateBurst];
  std::uint64_t total = 0;
  sim::Cycle now = 0;
  while (true) {
    const sim::Cycle next = src.next_event_cycle(now);
    if (next == sim::kCycleNever) break;
    now = next;
    total += src.generate_burst(now, burst, noc::kMaxGenerateBurst);
  }
  return total;
}

void BM_TraceReplay_CsvLoad(benchmark::State& state) {
  const TraceBenchData& d = trace_bench_data();
  for (auto _ : state) {
    const traffic::Trace trace = traffic::Trace::load(d.csv_path);
    std::uint64_t total = 0;
    for (noc::NodeId id = 0; id < d.nodes; ++id) {
      traffic::TraceReplaySource src(trace, id);
      total += drain_replay(src);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d.records));
}
BENCHMARK(BM_TraceReplay_CsvLoad)->Unit(benchmark::kMillisecond);

void BM_TraceReplay_Mmap(benchmark::State& state) {
  const TraceBenchData& d = trace_bench_data();
  // One mapping, shared by every source of every iteration — the way sweep
  // workers and fleet shards share a Workload's trace.
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (noc::NodeId id = 0; id < d.nodes; ++id) {
      traffic::TraceReplaySource src(d.file, id);
      total += drain_replay(src);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d.records));
}
BENCHMARK(BM_TraceReplay_Mmap)->Unit(benchmark::kMillisecond);

void BM_Xoshiro(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

void BM_XoshiroGaussian(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_gaussian());
}
BENCHMARK(BM_XoshiroGaussian);

}  // namespace

BENCHMARK_MAIN();
