// Regenerates paper Table IV: NBTI-duty-cycle (%) under rr-no-sensor and
// sensor-wise for "real" application traffic — random benchmark mixes (one
// benchmark per core, SPLASH2/WCET substitutes), 2 VCs, avg and std over 10
// iterations per scenario. Initial Vth vectors are constant across the
// iterations of one scenario, so the MD VC is fixed per row.
//
// Expected shape (paper): every Gap positive (up to 18.9%), and the
// sensor-wise std on the MD VC below the rr-no-sensor std (stability).
//
// Note on sampled ports: the paper lists the east input of the main-diagonal
// routers for 16 cores, including r15; with row-major numbering r15 is the
// south-east corner and has no east neighbor, so its west input port is
// sampled instead.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "nbtinoc/util/stats.hpp"

using namespace nbtinoc;

namespace {

struct SampledPort {
  int width;
  noc::NodeId router;
  noc::Dir port;
};

std::string row_label(const SampledPort& sp) {
  return std::to_string(sp.width * sp.width) + "c-r" + std::to_string(sp.router) + "-" +
         noc::dir_letter(sp.port);
}

/// Captures what install_benchmark_mix would offer under this scenario —
/// same profiles, same per-node seeder chain, same phit scaling — into an
/// in-memory NBTITRACE mapping. Replaying it through run_experiment
/// therefore reproduces the live-mix results bit for bit, while both
/// policies (and every sweep worker) share the one read-only trace instead
/// of each re-running the app models.
std::shared_ptr<const traffic::TraceFile> capture_mix_trace(const sim::Scenario& s,
                                                            const traffic::BenchmarkMix& mix,
                                                            std::uint64_t seed_salt) {
  const int ppf = s.phits_per_flit();
  const int nodes = s.cores();
  std::vector<std::unique_ptr<traffic::AppTrafficSource>> sources;
  std::vector<noc::ITrafficSource*> raw;
  util::SplitMix64 seeder(s.traffic_seed() ^ seed_salt);
  for (noc::NodeId id = 0; id < nodes; ++id) {
    traffic::AppProfile profile =
        traffic::benchmark_by_name(mix.names[static_cast<std::size_t>(id)]);
    profile.mean_rate *= ppf;
    profile.packet_length = s.packet_length * ppf;
    sources.push_back(std::make_unique<traffic::AppTrafficSource>(
        id, profile, s.mesh_width, s.mesh_height, nodes - 1, seeder.next()));
    raw.push_back(sources.back().get());
  }
  const traffic::Trace trace = traffic::Trace::capture(raw, s.total_cycles());
  return traffic::TraceFile::from_trace(trace, nodes, s.name + "/" + mix.describe());
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  if (!args.has("cycles") && !options.full) options.measure = 120'000;
  options.warmup = options.measure / 5;

  const int vcs = 2;
  sim::Scenario banner = sim::Scenario::synthetic(2, vcs, 0.0);
  bench::apply_scale(banner, options);
  bench::print_banner(
      "Table IV — real traffic (random SPLASH2/WCET-style benchmark mixes), 2 VCs",
      "paper: positive Gap on every sampled port (up to 18.9%), sensor-wise std < rr std on MD VC",
      banner, options);

  const std::vector<SampledPort> sampled = {
      {2, 0, noc::Dir::East}, {2, 1, noc::Dir::West}, {2, 2, noc::Dir::East},
      {2, 3, noc::Dir::West}, {4, 0, noc::Dir::East}, {4, 5, noc::Dir::East},
      {4, 10, noc::Dir::East}, {4, 15, noc::Dir::West},
  };

  std::vector<std::string> header{"Scenario (2 VCs)", "MD VC"};
  for (const char* policy : {"rr", "sw"})
    for (int v = 0; v < vcs; ++v)
      for (const char* stat : {"avg", "std"})
        header.push_back(std::string(policy) + ":VC" + std::to_string(v) + " " + stat);
  header.push_back("Gap avg");
  util::Table table(header);

  // Build the full grid up front — {architecture} x {iteration} x {rr, sw},
  // one random benchmark mix per iteration, captured once into a shared
  // zero-copy trace — and shard it over the sweep engine; the mix, the
  // capture and both seeds derive from the scenario/iteration alone, so the
  // parallel result grid matches the old serial live-mix loop run for run
  // at any worker count.
  core::SweepRunner sweep(bench::sweep_options(options));
  for (const int width : {2, 4}) {
    sim::Scenario s = sim::Scenario::synthetic(width, vcs, 0.0);
    s.name = std::to_string(width * width) + "core-realtraffic";
    bench::apply_scale(s, options);
    for (int it = 0; it < options.iterations; ++it) {
      const traffic::BenchmarkMix mix =
          traffic::random_mix(width * width, 9000 + static_cast<std::uint64_t>(it) * 17 + width);
      const core::Workload w = core::Workload::trace_replay(
          capture_mix_trace(s, mix, static_cast<std::uint64_t>(it)));
      const std::string label = "it" + std::to_string(it + 1);
      sweep.add(s, core::PolicyKind::kRrNoSensor, w, label);
      sweep.add(s, core::PolicyKind::kSensorWise, w, label);
    }
  }
  const core::SweepResult results = sweep.run();

  std::size_t next = 0;  // grid cursor, consumed in add() order
  for (const int width : {2, 4}) {
    // duty[policy][port][vc] accumulated across iterations.
    std::map<std::string, std::map<noc::PortKey, std::vector<util::RunningStats>>> acc;
    std::map<noc::PortKey, int> md_of;
    std::map<noc::PortKey, util::RunningStats> gap_acc;

    for (int it = 0; it < options.iterations; ++it) {
      const auto& rr = results[next++].result;
      const auto& sw = results[next++].result;
      for (const auto& sp : sampled) {
        if (sp.width != width) continue;
        const noc::PortKey key{sp.router, sp.port};
        const auto& rr_port = rr.ports.at(key);
        const auto& sw_port = sw.ports.at(key);
        md_of[key] = sw_port.most_degraded;
        auto& rr_stats = acc["rr"][key];
        auto& sw_stats = acc["sw"][key];
        rr_stats.resize(static_cast<std::size_t>(vcs));
        sw_stats.resize(static_cast<std::size_t>(vcs));
        for (int v = 0; v < vcs; ++v) {
          rr_stats[static_cast<std::size_t>(v)].add(rr_port.duty_percent[static_cast<std::size_t>(v)]);
          sw_stats[static_cast<std::size_t>(v)].add(sw_port.duty_percent[static_cast<std::size_t>(v)]);
        }
        const auto md = static_cast<std::size_t>(sw_port.most_degraded);
        gap_acc[key].add(rr_port.duty_percent[md] - sw_port.duty_percent[md]);
      }
    }

    for (const auto& sp : sampled) {
      if (sp.width != width) continue;
      const noc::PortKey key{sp.router, sp.port};
      std::vector<std::string> row{row_label(sp), std::to_string(md_of[key])};
      for (const char* policy : {"rr", "sw"}) {
        for (int v = 0; v < vcs; ++v) {
          const auto& st = acc[policy][key][static_cast<std::size_t>(v)];
          row.push_back(bench::duty_cell(st.mean()));
          row.push_back(util::format_double(st.stddev_sample(), 1));
        }
      }
      row.push_back(util::format_percent(gap_acc[key].mean()));
      table.add_row(std::move(row));
    }
  }

  bench::emit(table, options);

  std::cout << "Headline: every Gap avg should be positive; paper reports up to 18.9%.\n";
  return 0;
}
