#include "bench_common.hpp"

#include <fstream>
#include <iostream>

namespace nbtinoc::bench {

BenchOptions BenchOptions::from_cli(const util::CliArgs& args) {
  BenchOptions opt;
  opt.full = args.get_bool_or("full", false);
  opt.measure = static_cast<sim::Cycle>(args.get_int_or("cycles", static_cast<long long>(opt.measure)));
  opt.warmup = opt.measure / 5;
  opt.iterations = static_cast<int>(args.get_int_or("iterations", opt.iterations));
  opt.workers = static_cast<unsigned>(args.get_int_or("workers", 0));
  if (const auto csv = args.get("csv")) opt.csv_path = *csv;
  return opt;
}

core::SweepOptions sweep_options(const BenchOptions& options) {
  core::SweepOptions sweep;
  sweep.workers = options.workers;
  sweep.on_progress = [](const core::SweepProgress& p) {
    std::cerr << "  [" << p.completed << "/" << p.total << "] " << p.point->describe() << "  "
              << util::format_double(p.point_seconds, 1) << "s, ETA "
              << util::format_double(p.eta_seconds, 0) << "s\n";
  };
  return sweep;
}

void apply_scale(sim::Scenario& scenario, const BenchOptions& options) {
  if (options.full) {
    scenario.use_paper_scale();
  } else {
    scenario.warmup_cycles = options.warmup;
    scenario.measure_cycles = options.measure;
  }
}

void print_banner(const std::string& artifact, const std::string& paper_summary,
                  const sim::Scenario& scenario, const BenchOptions& options) {
  std::cout << "==========================================================================\n"
            << artifact << "\n"
            << paper_summary << "\n"
            << "--------------------------------------------------------------------------\n"
            << scenario.describe()
            << (options.full ? "  scale           : FULL (paper, 30e6 cycles)\n"
                             : "  scale           : reduced (pass --full for 30e6-cycle runs)\n")
            << "==========================================================================\n\n";
}

core::RunResult run_synthetic(const sim::Scenario& scenario, core::PolicyKind policy,
                              traffic::PatternKind pattern) {
  return core::run_experiment(scenario, policy, core::Workload::synthetic(pattern));
}

std::string duty_cell(double duty_percent) { return util::format_percent(duty_percent); }

double gap_on_md(const core::RunResult& rr, const core::RunResult& sw, noc::NodeId node,
                 noc::Dir port) {
  const int md = sw.port(node, port).most_degraded;
  return rr.port(node, port).duty_percent.at(static_cast<std::size_t>(md)) -
         sw.port(node, port).duty_percent.at(static_cast<std::size_t>(md));
}

void emit(const util::Table& table, const BenchOptions& options) {
  std::cout << table.to_markdown() << '\n';
  if (options.csv_path) {
    std::ofstream out(*options.csv_path);
    out << table.to_csv();
    std::cout << "(rows also written to " << *options.csv_path << ")\n";
  }
}

}  // namespace nbtinoc::bench
