#pragma once
// Shared scaffolding for the experiment benches: every bench regenerates one
// of the paper's tables/figures and follows the same conventions —
// markdown output, `--full` for paper-scale (30e6-cycle) runs, `--cycles N`
// to override the default reduced scale, `--csv FILE` to also dump rows.

#include <optional>
#include <string>
#include <vector>

#include "nbtinoc/nbtinoc.hpp"
#include "nbtinoc/util/cli.hpp"
#include "nbtinoc/util/table.hpp"

namespace nbtinoc::bench {

struct BenchOptions {
  bool full = false;            ///< paper-scale cycle counts
  sim::Cycle measure = 150'000; ///< measured cycles at reduced scale
  sim::Cycle warmup = 30'000;
  std::optional<std::string> csv_path;
  int iterations = 10;          ///< Table IV style repetition count
  unsigned workers = 0;         ///< sweep worker threads (0 = hardware concurrency)

  static BenchOptions from_cli(const util::CliArgs& args);
};

/// SweepOptions for a bench: worker count from `--workers` plus a stderr
/// progress line per completed point ("[3/18] 16core-inj0.30/sw  1.2s, ETA 6s").
core::SweepOptions sweep_options(const BenchOptions& options);

/// Applies the bench options to a scenario (reduced or paper scale).
void apply_scale(sim::Scenario& scenario, const BenchOptions& options);

/// Prints the standard bench banner: what artifact this regenerates and the
/// Table-I setup of the first scenario.
void print_banner(const std::string& artifact, const std::string& paper_summary,
                  const sim::Scenario& scenario, const BenchOptions& options);

/// Runs one scenario under one policy with uniform synthetic traffic.
core::RunResult run_synthetic(const sim::Scenario& scenario, core::PolicyKind policy,
                              traffic::PatternKind pattern = traffic::PatternKind::kUniform);

/// duty_percent formatted like the paper's cells ("26.6%").
std::string duty_cell(double duty_percent);

/// The paper's Gap: rr-no-sensor minus sensor-wise duty on the MD VC.
double gap_on_md(const core::RunResult& rr, const core::RunResult& sw, noc::NodeId node,
                 noc::Dir port);

/// Emits the table to stdout (markdown) and optionally to options.csv_path.
void emit(const util::Table& table, const BenchOptions& options);

}  // namespace nbtinoc::bench
