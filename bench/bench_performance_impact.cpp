// Ablation X2: network performance under each policy. The paper's policies
// never gate a VC that a waiting packet needs (one idle VC is kept awake
// whenever new traffic exists), so latency and throughput must match the
// baseline — this bench verifies the claim across injection rates.

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 2, 0.1);
  bench::apply_scale(banner, options);
  bench::print_banner("Ablation X2 — performance impact of the NBTI policies (16 cores, 2 VCs)",
                      "expected: latency/throughput indistinguishable from baseline at 0-cycle wake",
                      banner, options);

  util::Table table({"injection", "policy", "avg packet latency", "throughput (phit/cyc/node)",
                     "packets ejected"});

  for (double rate : {0.05, 0.1, 0.2, 0.3}) {
    for (auto policy : {core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
                        core::PolicyKind::kSensorWiseNoTraffic, core::PolicyKind::kSensorWise}) {
      sim::Scenario s = sim::Scenario::synthetic(4, 2, rate);
      bench::apply_scale(s, options);
      const auto r = bench::run_synthetic(s, policy);
      table.add_row({util::format_double(rate, 2), to_string(policy),
                     util::format_double(r.avg_packet_latency, 1),
                     util::format_double(r.throughput_flits_per_cycle_per_node, 3),
                     std::to_string(r.packets_ejected)});
    }
    std::cerr << "  [done] inj=" << rate << '\n';
  }

  bench::emit(table, options);
  return 0;
}
