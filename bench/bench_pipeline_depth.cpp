// Extension X13: router pipeline depth and NBTI duty. The paper's router is
// 3-stage; contemporary Garnet-classic routers were 4-5 stages, and deeper
// pipelines increase per-hop buffer residency — one candidate explanation
// for the absolute duty-cycle offset between this substrate and the paper's
// testbed (see EXPERIMENTS.md). This bench sweeps the depth and reports the
// rr-no-sensor duty level and the sensor-wise Gap.

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 2, 0.1);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X13 — router pipeline depth vs NBTI duty (16 cores, 2 VCs)",
                      "deeper pipelines raise buffer residency and with it every duty cycle",
                      banner, options);

  util::Table table({"stages", "injection", "rr avg duty", "sw MD duty", "Gap", "avg latency"});

  for (int stages : {3, 4, 5}) {
    for (double rate : {0.1, 0.2}) {
      sim::Scenario s = sim::Scenario::synthetic(4, 2, rate);
      s.router_stages = stages;
      bench::apply_scale(s, options);
      const auto rr = bench::run_synthetic(s, core::PolicyKind::kRrNoSensor);
      const auto sw = bench::run_synthetic(s, core::PolicyKind::kSensorWise);
      const auto& port = sw.port(0, noc::Dir::East);
      const auto md = static_cast<std::size_t>(port.most_degraded);
      table.add_row({std::to_string(stages), util::format_double(rate, 1),
                     bench::duty_cell(util::mean_of(rr.port(0, noc::Dir::East).duty_percent)),
                     bench::duty_cell(port.duty_percent[md]),
                     util::format_percent(bench::gap_on_md(rr, sw, 0, noc::Dir::East)),
                     util::format_double(sw.avg_packet_latency, 1)});
      std::cerr << "  [done] stages=" << stages << " rate=" << rate << '\n';
    }
  }

  bench::emit(table, options);
  std::cout << "Expected: duty levels rise with pipeline depth at equal offered load;\n"
               "the sensor-wise Gap persists at every depth.\n";
  return 0;
}
