#!/usr/bin/env python3
"""Enforce per-file line-coverage floors from an lcov tracefile.

Usage: check_coverage.py coverage.info --floor 90 active_set.cpp active_set.hpp

Each positional file argument is matched against the basename of every SF:
record in the tracefile. A file that never appears fails the check too —
a silently dropped TU (e.g. the scheduler compiled out of the test build)
must not read as 100% covered.
"""

import argparse
import sys


def parse_tracefile(path):
    """Returns {source_path: (lines_hit, lines_instrumented)}."""
    per_file = {}
    current = None
    hit = instrumented = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line.startswith("SF:"):
                current = line[3:]
                hit = instrumented = 0
            elif line.startswith("DA:"):
                count = line[3:].split(",")[1]
                instrumented += 1
                if int(count) > 0:
                    hit += 1
            elif line == "end_of_record" and current is not None:
                prev_hit, prev_instr = per_file.get(current, (0, 0))
                per_file[current] = (prev_hit + hit, prev_instr + instrumented)
                current = None
    return per_file


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("tracefile", help="lcov .info tracefile")
    parser.add_argument("--floor", type=float, default=90.0,
                        help="minimum line coverage percent (default 90)")
    parser.add_argument("files", nargs="+",
                        help="source basenames that must meet the floor")
    args = parser.parse_args()

    per_file = parse_tracefile(args.tracefile)
    failures = []
    for wanted in args.files:
        matches = {src: counts for src, counts in per_file.items()
                   if src.rsplit("/", 1)[-1] == wanted}
        if not matches:
            print(f"FAIL {wanted}: not present in {args.tracefile}")
            failures.append(wanted)
            continue
        hit = sum(h for h, _ in matches.values())
        instrumented = sum(i for _, i in matches.values())
        percent = 100.0 * hit / instrumented if instrumented else 100.0
        verdict = "FAIL" if percent < args.floor else "ok"
        print(f"{verdict:4s} {wanted}: {percent:.1f}% line coverage "
              f"({hit}/{instrumented}, floor {args.floor:.0f}%)")
        if percent < args.floor:
            failures.append(wanted)

    if failures:
        print(f"coverage floor violated: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
