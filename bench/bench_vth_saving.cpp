// Regenerates the paper's headline Vth result (§V): "a net NBTI mitigation
// (less Vth degradation) of the sensor-wise methodology of up to 54.2% with
// respect to the baseline NoC that does not account for NBTI."
//
// Method (as in the paper): measure each VC's NBTI-duty-cycle under each
// policy, then feed the duty cycle into the long-term closed form (Eq. 1,
// calibrated to the published 50mV@10y anchor) at a multi-year horizon. The
// baseline NoC keeps every buffer powered (alpha = 1).

#include <iostream>

#include "bench_common.hpp"
#include "nbtinoc/nbti/aging.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  const double years = args.get_double_or("years", 3.0);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.1);
  bench::apply_scale(banner, options);
  bench::print_banner("Headline H2 — net NBTI Vth saving vs non-NBTI-aware baseline",
                      "paper: up to 54.2% less dVth than the always-powered baseline",
                      banner, options);

  util::Table table({"Scenario", "Policy", "MD VC", "MD duty", "dVth(MD) @" +
                     util::format_double(years, 0) + "y", "dVth(baseline)", "Vth saving"});

  double best_saving = 0.0;
  std::string best_at;
  for (int width : {2, 4}) {
    for (int vcs : {2, 4}) {
      for (double rate : {0.1, 0.2, 0.3}) {
        sim::Scenario s = sim::Scenario::synthetic(width, vcs, rate);
        bench::apply_scale(s, options);
        const nbti::NbtiModel model = core::calibrated_model_of(s);
        const nbti::OperatingPoint op = core::operating_point_of(s);
        const nbti::AgingForecaster forecaster(model, op);

        for (auto policy : {core::PolicyKind::kRrNoSensor, core::PolicyKind::kSensorWise}) {
          const auto result = bench::run_synthetic(s, policy);
          const auto& port = result.port(0, noc::Dir::East);
          const auto md = static_cast<std::size_t>(port.most_degraded);
          const nbti::BufferForecast fc = forecaster.forecast(
              {port.initial_vth_v[md], port.duty_percent[md] / 100.0}, years);
          const nbti::BufferForecast base =
              forecaster.forecast({port.initial_vth_v[md], 1.0}, years);
          table.add_row({s.name + "-vc" + std::to_string(vcs), to_string(policy),
                         std::to_string(md), bench::duty_cell(port.duty_percent[md]),
                         util::format_double(fc.delta_vth_v * 1e3, 2) + " mV",
                         util::format_double(base.delta_vth_v * 1e3, 2) + " mV",
                         util::format_percent(fc.saving_vs_always_on * 100.0)});
          // At reduced scale an MD VC can record *zero* stress cycles, which
          // projects to a degenerate 100% saving; the headline considers
          // only rows where the MD VC actually saw stress (the paper's
          // 54.2% row had ~0.9% duty).
          if (policy == core::PolicyKind::kSensorWise && port.duty_percent[md] > 0.3 &&
              fc.saving_vs_always_on > best_saving) {
            best_saving = fc.saving_vs_always_on;
            best_at = s.name + "-vc" + std::to_string(vcs);
          }
        }
        std::cerr << "  [done] " << s.name << " vc" << vcs << '\n';
      }
    }
  }

  bench::emit(table, options);
  std::cout << "Headline: best sensor-wise Vth saving on an MD VC = "
            << util::format_percent(best_saving * 100.0) << " at " << best_at
            << " (paper: up to 54.2%)\n";
  return 0;
}
