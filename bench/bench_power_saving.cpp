// Extension X7: the secondary benefit of the paper's mechanism. Power-gating
// idle VC buffers for NBTI recovery also eliminates their leakage; this
// bench quantifies buffer-leakage savings and total NoC energy per policy
// using the ORION-style energy model fed by the measured activity.

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.1);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X7 — leakage savings from NBTI power gating (16 cores, 4 VCs)",
                      "gated buffer-cycles leak only the header-PMOS residual (5%)",
                      banner, options);

  const power::NocPowerModel model;

  util::Table table({"injection", "policy", "dynamic (nJ)", "buffer leakage (nJ)",
                     "leakage saving", "avg power (mW)"});

  for (double rate : {0.1, 0.2, 0.3}) {
    for (auto policy : {core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
                        core::PolicyKind::kSensorWiseNoTraffic, core::PolicyKind::kSensorWise}) {
      sim::Scenario s = sim::Scenario::synthetic(4, 4, rate);
      bench::apply_scale(s, options);
      const auto r = bench::run_synthetic(s, policy);
      const power::NocActivity activity = core::activity_of(r);
      const power::EnergyReport energy = model.evaluate(activity);
      table.add_row({util::format_double(rate, 1), to_string(policy),
                     util::format_double(energy.dynamic_pj() / 1e3, 1),
                     util::format_double(energy.buffer_leakage_pj / 1e3, 1),
                     util::format_percent(energy.leakage_saving() * 100.0),
                     util::format_double(energy.average_power_mw(activity.window_seconds), 2)});
    }
    std::cerr << "  [done] inj=" << rate << '\n';
  }

  bench::emit(table, options);
  std::cout << "Expected: baseline saves nothing; sensor-wise approaches the 95% residual bound\n"
               "at low load and dynamic energy stays identical across policies.\n";
  return 0;
}
