// Extension X11 — the lifetime figure. Evolves the NoC over multiple years
// in epochs: simulate traffic, measure per-buffer duty, advance every
// buffer's Vth (equivalent-age Eq.1 integration), re-seed the sensors with
// the aged silicon and repeat. Prints the worst-VC Vth trajectory per policy
// — the series a "Vth vs years" figure would plot — plus wear-migration
// statistics.

// The four policy trajectories are independent multi-epoch studies, so they
// fan out on the sweep pool (SweepRunner::for_each, --workers N): each policy
// writes its own results slot and the printed tables are byte-identical at
// any worker count.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "nbtinoc/core/lifetime.hpp"
#include "nbtinoc/core/sweep.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  const int epochs = static_cast<int>(args.get_int_or("epochs", 12));
  const double years_per_epoch = args.get_double_or("years-per-epoch", 0.25);

  sim::Scenario s = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(s, options);
  bench::print_banner("Extension X11 — multi-year Vth trajectory (lifetime study)",
                      "16 cores, 4 VCs, uniform 0.2; " + std::to_string(epochs) + " epochs x " +
                          util::format_double(years_per_epoch, 2) + " years",
                      s, options);

  core::LifetimeOptions lopt;
  lopt.epochs = epochs;
  lopt.years_per_epoch = years_per_epoch;
  lopt.measure_cycles_per_epoch = options.full ? 2'000'000 : options.measure / 2;

  const noc::PortKey sampled{0, noc::Dir::East};

  std::vector<std::string> header{"years"};
  std::vector<core::PolicyKind> policies = {core::PolicyKind::kBaseline,
                                            core::PolicyKind::kRrNoSensor,
                                            core::PolicyKind::kSensorWise,
                                            core::PolicyKind::kSensorRank};
  std::vector<core::LifetimeResult> results(policies.size());
  core::SweepOptions sweep_options;
  sweep_options.workers = options.workers;
  const core::SweepRunner pool(sweep_options);
  pool.for_each(policies.size(), [&](std::size_t i) {
    results[i] = core::run_lifetime_study(s, policies[i], core::Workload::synthetic(), sampled,
                                          lopt);
  });
  for (auto policy : policies) {
    header.push_back("worst Vth mV [" + to_string(policy) + "]");
    std::cerr << "  [done] " << to_string(policy) << '\n';
  }

  util::Table table(header);
  for (int e = 0; e < epochs; ++e) {
    std::vector<std::string> row{
        util::format_double(results[0].epochs[static_cast<std::size_t>(e)].years_elapsed, 2)};
    for (const auto& r : results) {
      const auto& vths = r.epochs[static_cast<std::size_t>(e)].vth_v;
      const double worst = *std::max_element(vths.begin(), vths.end());
      row.push_back(util::format_double(worst * 1e3, 2));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, options);

  util::Table summary({"policy", "final worst Vth (mV)", "final spread (mV)", "MD migrations"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    summary.add_row({to_string(policies[i]),
                     util::format_double(results[i].final_worst_vth_v * 1e3, 2),
                     util::format_double(results[i].final_spread_v * 1e3, 2),
                     std::to_string(results[i].md_changes)});
  }
  std::cout << summary.to_markdown() << '\n'
            << "Expected: baseline worst-Vth grows fastest; the NBTI-aware policies bend the\n"
               "curve down, and sensor-wise/sensor-rank adapt as the ranking migrates.\n";
  return 0;
}
