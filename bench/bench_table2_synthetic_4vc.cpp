// Regenerates paper Table II: NBTI-duty-cycle (%) for all VCs under
// rr-no-sensor, sensor-wise-no-traffic and sensor-wise, on 4- and 16-core
// meshes with 4 VCs per input port and injection 0.1/0.2/0.3
// flits/cycle/port. The sampled port is the east input of the upper-left
// router (router 0), as in the paper.
//
// Expected shape (paper): positive Gap in every row, Gap increasing with
// injection rate (up to 26.6% at 16core-inj0.30), sensor-wise-no-traffic
// pinning one VC at 100%.

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  const int vcs = 4;
  sim::Scenario banner = sim::Scenario::synthetic(2, vcs, 0.1);
  bench::apply_scale(banner, options);
  bench::print_banner(
      "Table II — synthetic uniform traffic, 4 VCs per input port",
      "paper: Gap = rr-no-sensor - sensor-wise on the MD VC; up to 26.6% at 16core-inj0.30",
      banner, options);

  std::vector<std::string> header{"Scenario (4 VCs)", "MD VC"};
  for (const char* policy : {"rr", "swnt", "sw"})
    for (int v = 0; v < vcs; ++v)
      header.push_back(std::string(policy) + ":VC" + std::to_string(v));
  header.push_back("Gap (rr - sw)");
  util::Table table(header);

  // All 18 runs go through the sweep engine: scenario-major grid with the
  // three policies adjacent, sharded over --workers threads.
  const std::vector<core::PolicyKind> policies = {core::PolicyKind::kRrNoSensor,
                                                  core::PolicyKind::kSensorWiseNoTraffic,
                                                  core::PolicyKind::kSensorWise};
  core::SweepRunner sweep(bench::sweep_options(options));
  std::vector<sim::Scenario> scenarios;
  for (int width : {2, 4}) {
    for (double rate : {0.1, 0.2, 0.3}) {
      sim::Scenario s = sim::Scenario::synthetic(width, vcs, rate);
      bench::apply_scale(s, options);
      scenarios.push_back(s);
    }
  }
  sweep.add_grid(scenarios, policies);
  const core::SweepResult results = sweep.run();

  double max_gap = 0.0;
  std::string max_gap_scenario;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& rr = results[i * policies.size() + 0].result;
    const auto& swnt = results[i * policies.size() + 1].result;
    const auto& sw = results[i * policies.size() + 2].result;

    const auto& port_sw = sw.port(0, noc::Dir::East);
    const int md = port_sw.most_degraded;
    std::vector<std::string> row{scenarios[i].name, std::to_string(md)};
    for (const auto* result : {&rr, &swnt, &sw})
      for (double duty : result->port(0, noc::Dir::East).duty_percent)
        row.push_back(bench::duty_cell(duty));
    const double gap = bench::gap_on_md(rr, sw, 0, noc::Dir::East);
    row.push_back(util::format_percent(gap));
    table.add_row(std::move(row));
    if (gap > max_gap) {
      max_gap = gap;
      max_gap_scenario = scenarios[i].name;
    }
  }

  bench::emit(table, options);
  std::cout << "Headline: max Gap = " << util::format_percent(max_gap) << " at "
            << max_gap_scenario << " (paper: 26.6% at 16core-inj0.30)\n";
  return 0;
}
