// Regenerates the paper's cooperation headline (§V): "the cooperation can
// reduce the NBTI-duty-cycle on the most degraded VC buffer up to 23%" —
// sensor-wise (which uses the Up_Down traffic information from the upstream
// router) against sensor-wise-no-traffic (sensors only, one idle VC always
// kept awake because no upstream knowledge exists).

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(2, 4, 0.1);
  bench::apply_scale(banner, options);
  bench::print_banner("Headline H3 — value of cooperation (traffic information)",
                      "paper: cooperation reduces the MD VC NBTI-duty-cycle by up to 23 points",
                      banner, options);

  util::Table table({"Scenario", "MD VC", "swnt MD duty", "sw MD duty",
                     "cooperation benefit (swnt - sw)"});

  double best = 0.0;
  std::string best_at;
  for (int width : {2, 4}) {
    for (int vcs : {2, 4}) {
      for (double rate : {0.1, 0.2, 0.3}) {
        sim::Scenario s = sim::Scenario::synthetic(width, vcs, rate);
        bench::apply_scale(s, options);
        const auto swnt = bench::run_synthetic(s, core::PolicyKind::kSensorWiseNoTraffic);
        const auto sw = bench::run_synthetic(s, core::PolicyKind::kSensorWise);
        const auto& port = sw.port(0, noc::Dir::East);
        const auto md = static_cast<std::size_t>(port.most_degraded);
        const double swnt_duty = swnt.port(0, noc::Dir::East).duty_percent[md];
        const double sw_duty = port.duty_percent[md];
        const double benefit = swnt_duty - sw_duty;
        table.add_row({s.name + "-vc" + std::to_string(vcs), std::to_string(port.most_degraded),
                       bench::duty_cell(swnt_duty), bench::duty_cell(sw_duty),
                       util::format_percent(benefit)});
        if (benefit > best) {
          best = benefit;
          best_at = s.name + "-vc" + std::to_string(vcs);
        }
        std::cerr << "  [done] " << s.name << " vc" << vcs << '\n';
      }
    }
  }

  bench::emit(table, options);
  std::cout << "Headline: max cooperation benefit on the MD VC = " << util::format_percent(best)
            << " at " << best_at << " (paper: up to 23%)\n";
  return 0;
}
