// Extension X15: topology sweep. The paper studies NBTI stress on a 2D mesh;
// this bench asks how the sensor-wise gains transfer when the same routers
// sit in a different fabric — torus and ring (wrap links keep mid-fabric
// ports busier and need dateline VC classes), and a concentrated mesh
// (fewer routers, each serving several NIs through extra local ports).
// Every topology runs the same terminal grid, injection rate, and policy
// pair through one SweepRunner, so rows differ only in the fabric.

#include <iostream>

#include "bench_common.hpp"
#include "nbtinoc/nbti/aging.hpp"

using namespace nbtinoc;

namespace {

struct TopoPoint {
  const char* topology;
  int concentration;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  const double rate = args.get_double_or("rate", 0.1);
  const double years = args.get_double_or("years", 3.0);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, rate);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X15 — topology sweep (16 terminals, injection " +
                          util::format_double(rate, 1) + ")",
                      "mesh vs torus vs ring vs cmesh: MD-VC duty and projected dVth",
                      banner, options);

  const TopoPoint kTopologies[] = {{"mesh", 1}, {"torus", 1}, {"ring", 1}, {"cmesh", 2}};

  // One grid, every (topology, policy) point: the SweepRunner interleaves
  // them across --workers threads and is byte-identical at any count.
  core::SweepRunner sweep(bench::sweep_options(options));
  std::vector<sim::Scenario> scenarios;
  for (const auto& [topology, concentration] : kTopologies) {
    sim::Scenario s = sim::Scenario::synthetic(4, 4, rate);
    s.topology = topology;
    s.concentration = concentration;
    s.name = std::string(topology) + "-inj" + util::format_double(rate, 2);
    bench::apply_scale(s, options);
    scenarios.push_back(s);
  }
  sweep.add_grid(scenarios, {core::PolicyKind::kRrNoSensor, core::PolicyKind::kSensorWise});
  const core::SweepResult results = sweep.run();

  util::Table table({"topology", "MD VC", "rr MD duty", "sw MD duty", "Gap",
                     "dVth(MD,sw) @" + util::format_double(years, 0) + "y",
                     "avg latency (sw)"});
  for (std::size_t i = 0; i < std::size(kTopologies); ++i) {
    const auto& rr = results[i * 2 + 0].result;
    const auto& sw = results[i * 2 + 1].result;
    // Router 0's East port exists on every topology in the sweep (the ring
    // keeps its N/S ports unwired instead).
    const auto& port = sw.port(0, noc::Dir::East);
    const auto md = static_cast<std::size_t>(port.most_degraded);
    // The forecaster keeps a pointer to the model: it must outlive the
    // forecast() call, so bind it to a named local.
    const nbti::NbtiModel model = core::calibrated_model_of(sw.scenario);
    const nbti::AgingForecaster forecaster(model, core::operating_point_of(sw.scenario));
    const nbti::BufferForecast fc = forecaster.forecast(
        {port.initial_vth_v[md], port.duty_percent[md] / 100.0}, years);
    table.add_row({kTopologies[i].topology, std::to_string(port.most_degraded),
                   bench::duty_cell(rr.port(0, noc::Dir::East).duty_percent[md]),
                   bench::duty_cell(port.duty_percent[md]),
                   util::format_percent(bench::gap_on_md(rr, sw, 0, noc::Dir::East)),
                   util::format_double(fc.delta_vth_v * 1e3, 2) + " mV",
                   util::format_double(sw.avg_packet_latency, 1)});
  }

  bench::emit(table, options);
  return 0;
}
