// Robustness study: fault-rate sweep over the gating control path. Each
// point replays the same 16-core uniform-traffic scenario under one policy
// with a uniform FaultPlan (sensor stuck/drift/death, Up_Down drops and
// corruptions, Down_Up drops, wake failures) at the given rate, with the
// whole-network invariant checker on: faults may cost duty cycle and
// latency, never flits. The quarantine columns show graceful degradation —
// sensor policies detect failing ports and fall back to rr-no-sensor on
// them, then recover when the sensors come back.
//
// Runs on core::SweepRunner (--workers N); every point carries its fault
// plan as a per-point RunnerOptions override and its injector seed derives
// from {scenario, plan} alone, so the table is byte-identical at any
// worker count.

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

namespace {

std::uint64_t fault_count(const core::RunResult& r, const char* key) {
  const auto it = r.fault_counters.find(key);
  return it == r.fault_counters.end() ? 0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  const double rate = args.get_double_or("rate", 0.2);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, rate);
  bench::apply_scale(banner, options);
  bench::print_banner(
      "Robustness — fault storms on the gating control path (16 cores, injection " +
          util::format_double(rate, 1) + ")",
      "invariants hold at every fault rate (zero flit loss); sensor policies quarantine "
      "failing ports and degrade to rr-no-sensor",
      banner, options);

  util::Table table({"fault rate", "policy", "MD duty", "avg latency", "cmd drops", "cmd flips",
                     "wake fails", "quarantines", "recoveries", "violations"});

  const std::vector<double> fault_rates = {0.0, 0.001, 0.01, 0.05};
  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kRrNoSensor, core::PolicyKind::kSensorWise, core::PolicyKind::kSensorRank};

  core::SweepRunner sweep(bench::sweep_options(options));
  for (double fault_rate : fault_rates) {
    for (core::PolicyKind policy : policies) {
      sim::Scenario s = sim::Scenario::synthetic(4, 4, rate);
      bench::apply_scale(s, options);
      core::SweepPoint point;
      point.scenario = s;
      point.policy = policy;
      point.workload = core::Workload::synthetic();
      point.label = "fault" + util::format_double(fault_rate, 3);
      core::RunnerOptions ropt;
      ropt.faults = sim::FaultPlan::uniform(fault_rate);
      ropt.check_invariants = true;
      point.runner = ropt;
      sweep.add(std::move(point));
    }
  }
  const core::SweepResult results = sweep.run();

  std::size_t violations_total = 0;
  for (std::size_t i = 0; i < fault_rates.size(); ++i) {
    for (std::size_t j = 0; j < policies.size(); ++j) {
      const auto& r = results[i * policies.size() + j].result;
      const auto& port = r.port(0, noc::Dir::East);
      violations_total += r.invariant_violations.size();
      table.add_row(
          {util::format_double(fault_rates[i], 3), to_string(r.policy),
           bench::duty_cell(port.duty_percent[static_cast<std::size_t>(port.most_degraded)]),
           util::format_double(r.avg_packet_latency, 1),
           std::to_string(fault_count(r, "fault.gate_cmd_drops")),
           std::to_string(fault_count(r, "fault.gate_cmd_flips")),
           std::to_string(fault_count(r, "fault.wake_failures")),
           std::to_string(fault_count(r, "fault.quarantines")),
           std::to_string(fault_count(r, "fault.recoveries")),
           std::to_string(r.invariant_violations.size())});
    }
  }

  bench::emit(table, options);
  if (violations_total != 0) {
    std::cerr << "FAIL: " << violations_total << " invariant violation(s) under faults\n";
    for (const auto& p : results)
      for (const auto& v : p.result.invariant_violations)
        std::cerr << "  " << p.point.describe() << ": " << v << '\n';
    return 1;
  }
  std::cout << "All invariants held at every fault rate: faults cost latency and duty cycle,\n"
               "never flits. Quarantines rise with the fault rate; recoveries follow as the\n"
               "transient sensor faults repair.\n";
  return 0;
}
