// Extension X6b: is the paper's MD-priority (Algorithm 2) enough, or does
// full-ranking wear leveling (sensor-rank) help? Both are run on identical
// scenarios; the figure of merit is the projected *worst* final Vth across
// the sampled port's VCs after multi-year aging — the quantity that actually
// limits lifetime — plus the spread across VCs (wear balance).

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "nbtinoc/nbti/aging.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  const double years = args.get_double_or("years", 3.0);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X6b — Algorithm 2 vs full-ranking wear leveling",
                      "figure of merit: worst projected Vth on the port after " +
                          util::format_double(years, 0) + " years",
                      banner, options);

  util::Table table({"scenario", "policy", "MD VC duty", "worst Vth (mV over nominal)",
                     "Vth spread (mV)", "avg latency"});

  for (int width : {2, 4}) {
    for (double rate : {0.1, 0.2, 0.3}) {
      sim::Scenario s = sim::Scenario::synthetic(width, 4, rate);
      bench::apply_scale(s, options);
      const nbti::NbtiModel model = core::calibrated_model_of(s);
      const nbti::AgingForecaster forecaster(model, core::operating_point_of(s));

      for (auto policy : {core::PolicyKind::kSensorWise, core::PolicyKind::kSensorRank}) {
        const auto r = bench::run_synthetic(s, policy);
        const auto& port = r.port(0, noc::Dir::East);
        double worst = -1e9, best = 1e9;
        for (std::size_t v = 0; v < port.duty_percent.size(); ++v) {
          const auto fc = forecaster.forecast(
              {port.initial_vth_v[v], port.duty_percent[v] / 100.0}, years);
          worst = std::max(worst, fc.final_vth_v);
          best = std::min(best, fc.final_vth_v);
        }
        const auto md = static_cast<std::size_t>(port.most_degraded);
        table.add_row({s.name, to_string(policy), bench::duty_cell(port.duty_percent[md]),
                       util::format_double((worst - s.tech.vth_nominal_v) * 1e3, 2),
                       util::format_double((worst - best) * 1e3, 2),
                       util::format_double(r.avg_packet_latency, 1)});
      }
      std::cerr << "  [done] " << s.name << '\n';
    }
  }

  bench::emit(table, options);
  std::cout << "sensor-rank steers load onto the healthiest buffer each cycle; expect a\n"
               "smaller final Vth spread, with worst-VC protection comparable to Algorithm 2.\n";
  return 0;
}
