// Extension X3: the paper evaluates uniform random traffic only; this bench
// repeats the Table II methodology across the standard synthetic pattern
// set. The sensor-wise advantage should persist across spatial patterns
// (the policy exploits per-port idleness, which every pattern exhibits).

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X3 — sensor-wise vs rr-no-sensor across traffic patterns",
                      "16 cores, 4 VCs, injection 0.2; sampled at router 0 east input",
                      banner, options);

  util::Table table({"pattern", "MD VC", "rr MD duty", "sw MD duty", "Gap", "avg latency (sw)"});

  for (auto pattern : {traffic::PatternKind::kUniform, traffic::PatternKind::kTranspose,
                       traffic::PatternKind::kBitComplement, traffic::PatternKind::kBitReverse,
                       traffic::PatternKind::kTornado, traffic::PatternKind::kNeighbor,
                       traffic::PatternKind::kHotspot, traffic::PatternKind::kShuffle}) {
    sim::Scenario s = sim::Scenario::synthetic(4, 4, 0.2);
    s.name = "16core-" + to_string(pattern);
    bench::apply_scale(s, options);
    const auto rr = bench::run_synthetic(s, core::PolicyKind::kRrNoSensor, pattern);
    const auto sw = bench::run_synthetic(s, core::PolicyKind::kSensorWise, pattern);
    const auto& port = sw.port(0, noc::Dir::East);
    const auto md = static_cast<std::size_t>(port.most_degraded);
    table.add_row({to_string(pattern), std::to_string(port.most_degraded),
                   bench::duty_cell(rr.port(0, noc::Dir::East).duty_percent[md]),
                   bench::duty_cell(port.duty_percent[md]),
                   util::format_percent(bench::gap_on_md(rr, sw, 0, noc::Dir::East)),
                   util::format_double(sw.avg_packet_latency, 1)});
    std::cerr << "  [done] " << to_string(pattern) << '\n';
  }

  bench::emit(table, options);
  return 0;
}
