// Extension X12 — the classic NoC load/latency figure, per policy. Sweeps
// the offered load up to saturation and prints the average packet latency
// and accepted throughput series. Verifies that the NBTI policies preserve
// the baseline's saturation point (they never deny a VC to waiting traffic
// at zero wake-up latency).

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  if (!args.has("cycles") && !options.full) options.measure = 60'000;
  options.warmup = options.measure / 5;

  sim::Scenario banner = sim::Scenario::synthetic(4, 2, 0.1);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X12 — load/latency curve to saturation (16 cores, 2 VCs)",
                      "latency vs offered load per policy; curves should coincide",
                      banner, options);

  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor, core::PolicyKind::kSensorWise};

  std::vector<std::string> header{"offered (flits/cyc/node)"};
  for (auto policy : policies) {
    header.push_back("latency [" + to_string(policy) + "]");
    header.push_back("accepted [" + to_string(policy) + "]");
  }
  util::Table table(header);

  const std::vector<double> rates = {0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35};
  core::SweepRunner sweep(bench::sweep_options(options));
  std::vector<sim::Scenario> scenarios;
  for (double rate : rates) {
    sim::Scenario s = sim::Scenario::synthetic(4, 2, rate);
    bench::apply_scale(s, options);
    scenarios.push_back(s);
  }
  sweep.add_grid(scenarios, policies);
  const core::SweepResult results = sweep.run();

  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::vector<std::string> row{util::format_double(rates[i], 2)};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const auto& r = results[i * policies.size() + pi].result;
      row.push_back(util::format_double(r.avg_packet_latency, 1));
      row.push_back(util::format_double(r.throughput_flits_per_cycle_per_node, 3));
    }
    table.add_row(std::move(row));
  }

  bench::emit(table, options);
  std::cout << "Past saturation the open-loop latency diverges for every policy alike;\n"
               "accepted throughput plateaus at the same point (no performance cost).\n";
  return 0;
}
