// Extension X8: thermal gradients and NBTI. Eq. 1 is exponentially
// temperature dependent, so the *same* duty cycle ages a hot center router
// faster than a cool corner one. This bench runs hotspot traffic, attributes
// per-tile power from the measured activity, solves the mesh thermal model,
// and forecasts each sampled router's MD-VC Vth shift at its *local*
// temperature — under both rr-no-sensor and sensor-wise.

#include <iostream>

#include "bench_common.hpp"
#include "nbtinoc/nbti/thermal.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  const double years = args.get_double_or("years", 3.0);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X8 — thermal gradient and per-tile NBTI aging (16 cores, 4 VCs)",
                      "hotspot traffic -> per-tile power -> mesh temperatures -> Eq.1 at local T",
                      banner, options);

  sim::Scenario s = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(s, options);
  const auto rr = bench::run_synthetic(s, core::PolicyKind::kRrNoSensor,
                                       traffic::PatternKind::kHotspot);
  const auto sw = bench::run_synthetic(s, core::PolicyKind::kSensorWise,
                                       traffic::PatternKind::kHotspot);

  // Per-tile power: dynamic share proportional to the router's flit
  // movements plus its buffers' leakage (powered cycles only).
  const power::NocPowerModel pmodel;
  const power::PowerParams& pp = pmodel.params();
  const double window_s = static_cast<double>(s.measure_cycles) * s.clock_period_s;
  const double bits = s.link_width_bits;
  const double per_flit_pj = bits * (pp.buffer_write_pj_per_bit + pp.buffer_read_pj_per_bit +
                                     pp.crossbar_pj_per_bit +
                                     pp.link_pj_per_bit_per_mm * pp.link_length_mm);
  const double buffer_bits = static_cast<double>(s.buffer_depth) * s.phits_per_flit() * bits;

  std::vector<double> tile_power(static_cast<std::size_t>(s.cores()), 0.0);
  for (noc::NodeId id = 0; id < s.cores(); ++id) {
    const double dynamic_w =
        static_cast<double>(sw.router_flits_out[static_cast<std::size_t>(id)]) * per_flit_pj *
        1e-12 / window_s;
    double powered_cycles = 0.0;
    for (const auto& [key, port] : sw.ports) {
      if (key.router != id) continue;
      for (double duty : port.duty_percent)
        powered_cycles += duty / 100.0 * static_cast<double>(s.measure_cycles);
    }
    const double leakage_w =
        pp.buffer_leakage_uw_per_bit * buffer_bits * 1e-6 * powered_cycles * s.clock_period_s /
        window_s;
    // Routers sit next to cores; add a nominal core power so the thermal
    // map is not NoC-only (hotspot core works hardest).
    const double core_w = 0.5 + (id == s.cores() - 1 ? 1.0 : 0.0);
    tile_power[static_cast<std::size_t>(id)] = dynamic_w + leakage_w + core_w;
  }

  const nbti::MeshThermalModel thermal(s.mesh_width, s.mesh_height);
  const auto temps = thermal.solve(tile_power);
  std::cout << "Hottest tile: router " << nbti::MeshThermalModel::hottest(temps) << " at "
            << util::format_double(temps[nbti::MeshThermalModel::hottest(temps)] - 273.15, 1)
            << " C (hotspot tile is " << (s.cores() - 1) << ")\n\n";

  const nbti::NbtiModel model = core::calibrated_model_of(s);
  util::Table table({"router", "tile power (W)", "T (C)", "MD VC",
                     "rr dVth@" + util::format_double(years, 0) + "y (mV)",
                     "sw dVth@" + util::format_double(years, 0) + "y (mV)", "sw saving vs rr"});

  for (noc::NodeId id : {0, 5, 10, 15}) {
    const noc::PortKey key{id, id == 15 ? noc::Dir::West : noc::Dir::East};
    const auto& sw_port = sw.ports.at(key);
    const auto& rr_port = rr.ports.at(key);
    const auto md = static_cast<std::size_t>(sw_port.most_degraded);
    nbti::OperatingPoint op = core::operating_point_of(s);
    op.temperature_k = temps[static_cast<std::size_t>(id)];
    op.vth_v = sw_port.initial_vth_v[md];
    const double seconds = years * 365.25 * 24 * 3600;
    const double rr_dvth = model.delta_vth(rr_port.duty_percent[md] / 100.0, seconds, op);
    const double sw_dvth = model.delta_vth(sw_port.duty_percent[md] / 100.0, seconds, op);
    table.add_row({std::to_string(id), util::format_double(tile_power[static_cast<std::size_t>(id)], 2),
                   util::format_double(temps[static_cast<std::size_t>(id)] - 273.15, 1),
                   std::to_string(sw_port.most_degraded),
                   util::format_double(rr_dvth * 1e3, 2), util::format_double(sw_dvth * 1e3, 2),
                   util::format_percent(rr_dvth > 0 ? (1.0 - sw_dvth / rr_dvth) * 100.0 : 0.0)});
  }

  bench::emit(table, options);
  std::cout << "Expected: tiles near the hotspot run hotter and age faster at equal duty;\n"
               "sensor-wise keeps the largest absolute margin exactly there.\n";
  return 0;
}
