// Extension X9: virtual-network configuration of Table I. Runs a coherence-
// style request/reply workload over 2 vnets (short control packets on vnet 0,
// long data packets on vnet 1) and reports the per-vnet NBTI duty cycles
// under each policy. The pre-VA gating runs once per vnet, so each protocol
// class keeps exactly the paper's guarantees inside its own VC partition.

#include <iostream>

#include "bench_common.hpp"
#include "nbtinoc/traffic/request_reply.hpp"

using namespace nbtinoc;

namespace {

struct VnetDuty {
  double vnet0_md = 0.0;
  double vnet1_md = 0.0;
  double latency = 0.0;
};

VnetDuty run_policy(core::PolicyKind policy, const bench::BenchOptions& options) {
  noc::NocConfig cfg;
  cfg.width = 4;
  cfg.height = 4;
  cfg.num_vcs = 2;
  cfg.num_vnets = 2;
  cfg.buffer_depth = 8;
  cfg.packet_length = 18;  // phit units; replies use their own length anyway

  noc::Network net(cfg);
  sim::Scenario s = sim::Scenario::synthetic(4, 2, 0.0);
  const auto model = core::calibrated_model_of(s);
  core::PolicyConfig pc;
  pc.kind = policy;
  core::PolicyGateController ctrl(net, pc, model, core::operating_point_of(s),
                                  core::pv_config_of(s), s.pv_seed());
  ctrl.attach();

  traffic::RequestReplyConfig rr;
  rr.request_rate = 0.01;
  rr.request_length = 2;   // 1 flit = 2 phits
  rr.reply_length = 18;    // 9 flits = 18 phits
  traffic::install_request_reply_traffic(net, rr, 20260704);

  sim::Cycle measure = options.full ? 24'000'000 : options.measure;
  net.run_with_warmup(measure / 5, measure);

  const auto duties = net.duty_cycles_percent(0, noc::Dir::East);
  const auto& sensors = ctrl.sensors({0, noc::Dir::East});
  const auto md0 = sensors.most_degraded_in(0, 2);
  const auto md1 = sensors.most_degraded_in(2, 2);
  VnetDuty out;
  out.vnet0_md = duties[md0];
  out.vnet1_md = duties[md1];
  if (const auto* lat = net.stats().distribution("noc.packet_latency")) out.latency = lat->mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  std::cout << "==========================================================================\n"
            << "Extension X9 — two virtual networks (request/reply protocol traffic)\n"
            << "16 cores, 2 VCs per vnet; vnet0 = control requests, vnet1 = data replies\n"
            << "==========================================================================\n\n";

  util::Table table({"policy", "vnet0 MD duty (requests)", "vnet1 MD duty (replies)",
                     "avg packet latency"});
  for (auto policy : {core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
                      core::PolicyKind::kSensorWise}) {
    const VnetDuty d = run_policy(policy, options);
    table.add_row({to_string(policy), bench::duty_cell(d.vnet0_md), bench::duty_cell(d.vnet1_md),
                   util::format_double(d.latency, 1)});
    std::cerr << "  [done] " << to_string(policy) << '\n';
  }
  bench::emit(table, options);
  std::cout << "Expected: sensor-wise protects the MD VC of *both* protocol classes; the\n"
               "lightly-loaded request vnet recovers almost completely.\n";
  return 0;
}
