// Regenerates the paper's §III-D area analysis: the sensor-wise machinery
// adds ~3.25% of the baseline router (16 NBTI sensors, one per VC buffer),
// ~3.8% of a 64-bit data link (Up_Down + Down_Up control wires), negligible
// comparator/pre-VA logic, for a total below 4% of the baseline NoC.

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  const int node = static_cast<int>(args.get_int_or("node", 45));

  std::cout << "==========================================================================\n"
            << "Section III-D — coarse-grain sensor-wise area overhead (ORION-style model)\n"
            << "paper @45nm: sensors ~3.25% of router, control links ~3.8% of a 64b link,\n"
            << "             total overhead below 4% of the baseline router+link\n"
            << "==========================================================================\n\n";

  const power::AreaModel model{power::AreaParams::at_node(node)};

  util::Table table({"num VCs", "router um^2", "link um^2", "sensors", "sensors um^2",
                     "sensor ovh", "ctrl wires (UD+DU)", "link ovh", "total ovh"});
  for (int vcs : {2, 4, 8}) {
    power::RouterGeometry g;
    g.num_vcs = vcs;
    const auto rep = model.overhead_report(g);
    table.add_row({std::to_string(vcs),
                   util::format_double(rep.baseline_router.total_um2, 0),
                   util::format_double(rep.data_link_um2, 0), std::to_string(rep.num_sensors),
                   util::format_double(rep.sensors_um2, 0),
                   util::format_percent(rep.sensor_overhead_vs_router() * 100.0, 2),
                   std::to_string(rep.up_down_wires) + "+" + std::to_string(rep.down_up_wires),
                   util::format_percent(rep.link_overhead_vs_data_link() * 100.0, 2),
                   util::format_percent(rep.total_overhead_vs_noc() * 100.0, 2)});
  }
  bench::emit(table, options);

  power::RouterGeometry paper_geometry;  // 4 ports x 4 VCs x 4 flits x 64b
  std::cout << "Paper configuration breakdown (" << node << "nm):\n"
            << model.overhead_report(paper_geometry).describe() << '\n';
  return 0;
}
