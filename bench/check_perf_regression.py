#!/usr/bin/env python3
"""Compare a fresh bench_micro_perf JSON run against BENCH_hotpath.json.

Fails (exit 1) when any shared benchmark is slower than the committed
reference by more than --threshold after machine-speed calibration.

Calibration: absolute nanoseconds are not comparable across machines, so
both runs are normalized by a yardstick benchmark (default BM_Xoshiro: a
pure-register RNG kernel whose cost tracks single-core speed and nothing
this repo optimizes). What is compared is therefore "cycles of yardstick
work per simulator step", which survives CPU-model changes.

Flakiness caveat: shared CI runners still jitter by tens of percent
(frequency scaling, noisy neighbors, cache topology). The default 1.5x
threshold is deliberately loose so this check only catches *gross*
regressions — an accidental per-cycle allocation, string hash, or O(VCs)
walk on the hot path. Treat a failure as a strong signal and a pass as
weak evidence; use bench_micro_perf --benchmark_repetitions locally for
real measurements.
"""

import argparse
import json
import sys


def load_times(path):
    with open(path) as f:
        data = json.load(f)
    if "benchmarks" not in data:
        raise SystemExit(f"{path}: not a google-benchmark JSON file")
    times = {}
    for bench in data["benchmarks"]:
        if isinstance(bench, dict) and "real_time" in bench:
            if "aggregate_name" not in bench:
                # With --benchmark_repetitions the same name repeats; keep
                # the fastest repetition — the standard noise-robust
                # estimator, since interference only ever adds time.
                name = bench["name"].split("/repeats:")[0]
                t = float(bench["real_time"])
                times[name] = min(times.get(name, t), t)
    return times


def load_reference(path):
    with open(path) as f:
        data = json.load(f)
    times = {name: row["after"]["real_time_ns"] for name, row in data["benchmarks"].items()}
    return times, data.get("fast_forward_gates", [])


def check_fast_forward_gates(fresh, gates):
    """Same-machine speedup floors: both sides of each pair come from the
    *fresh* run, so no calibration is involved and the check is immune to
    machine-speed differences — only the ratio matters. Guards the
    event-horizon fast-forward engine: if quiescence detection breaks (the
    engine silently stops skipping) or skipping becomes as expensive as
    stepping, the pair collapses toward 1x and this fails."""
    failures = []
    for gate in gates:
        fast, slow = gate["fast"], gate["slow"]
        if fast not in fresh or slow not in fresh:
            print(f"  SKIP fast-forward gate {slow} / {fast}: benchmark missing from fresh run")
            continue
        speedup = fresh[slow] / fresh[fast]
        verdict = "FAIL" if speedup < gate["min_speedup"] else "ok"
        print(f"  {verdict:4s} {slow} / {fast}: {speedup:.1f}x "
              f"(floor {gate['min_speedup']:.0f}x)")
        if speedup < gate["min_speedup"]:
            failures.append(f"{slow}/{fast}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="JSON from bench_micro_perf --benchmark_format=json")
    parser.add_argument("--reference", default="BENCH_hotpath.json")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="max allowed calibrated slowdown (default 1.5)")
    parser.add_argument("--calibrate", default="BM_Xoshiro",
                        help="yardstick benchmark for machine-speed normalization "
                             "('' disables and compares raw nanoseconds)")
    args = parser.parse_args()

    fresh = load_times(args.fresh)
    reference, ff_gates = load_reference(args.reference)

    # A reference may be gate-only (empty "benchmarks", e.g. BENCH_lifetime.json):
    # every check is then a same-machine pair ratio, so no calibration yardstick
    # and no absolute-time comparisons are involved.
    scale = 1.0
    if args.calibrate and reference:
        if args.calibrate not in fresh or args.calibrate not in reference:
            raise SystemExit(f"calibration benchmark {args.calibrate!r} missing from a file")
        scale = fresh[args.calibrate] / reference[args.calibrate]
        print(f"machine calibration via {args.calibrate}: {scale:.3f}x reference speed")

    failures = []
    shared = sorted(set(fresh) & set(reference) - {args.calibrate})
    if not shared and not ff_gates:
        raise SystemExit("no shared benchmarks between fresh run and reference")
    for name in shared:
        ratio = fresh[name] / (reference[name] * scale)
        verdict = "FAIL" if ratio > args.threshold else "ok"
        print(f"  {verdict:4s} {name:32s} {fresh[name]:12.1f} ns   {ratio:5.2f}x of reference")
        if ratio > args.threshold:
            failures.append(name)

    ff_failures = []
    if ff_gates:
        print("\nfast-forward speedup gates (same-machine pair ratios):")
        ff_failures = check_fast_forward_gates(fresh, ff_gates)

    if failures or ff_failures:
        if failures:
            print(f"\nperf smoke FAILED: {len(failures)} benchmark(s) regressed past "
                  f"{args.threshold}x: {', '.join(failures)}")
        if ff_failures:
            print(f"\nperf smoke FAILED: {len(ff_failures)} fast-forward gate(s) below their "
                  f"speedup floor: {', '.join(ff_failures)}")
        return 1
    print(f"\nperf smoke passed: {len(shared)} benchmarks within {args.threshold}x of reference"
          + (f", {len(ff_gates)} fast-forward gates above their floors" if ff_gates else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
