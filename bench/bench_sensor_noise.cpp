// Extension X5: robustness to sensor error. The paper assumes the [20]
// sensor identifies the most degraded VC exactly; this bench injects
// Gaussian measurement noise and quantization into the sensor model and
// reports the duty cycle that lands on the *true* most-degraded VC (argmax
// of the sampled initial Vth) under sensor-wise.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

namespace {

int true_md(const core::PortResult& port) {
  return static_cast<int>(std::distance(
      port.initial_vth_v.begin(),
      std::max_element(port.initial_vth_v.begin(), port.initial_vth_v.end())));
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X5 — sensor noise/quantization robustness (sensor-wise)",
                      "PV sigma is 5 mV: noise beyond that should start misranking the MD VC",
                      banner, options);

  util::Table table({"noise sigma (mV)", "quantization (mV)", "reported MD", "true MD",
                     "duty on true MD", "min duty on port"});

  for (double noise_mv : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    for (double quant_mv : {0.0, 5.0}) {
      sim::Scenario s = sim::Scenario::synthetic(4, 4, 0.2);
      bench::apply_scale(s, options);
      core::RunnerOptions ropt;
      ropt.policy.sensor.noise_sigma_v = noise_mv * 1e-3;
      ropt.policy.sensor.quantization_v = quant_mv * 1e-3;
      const auto r = core::run_experiment(s, core::PolicyKind::kSensorWise,
                                          core::Workload::synthetic(), ropt);
      const auto& port = r.port(0, noc::Dir::East);
      const int md = true_md(port);
      table.add_row({util::format_double(noise_mv, 1), util::format_double(quant_mv, 1),
                     std::to_string(port.most_degraded), std::to_string(md),
                     bench::duty_cell(port.duty_percent[static_cast<std::size_t>(md)]),
                     bench::duty_cell(*std::min_element(port.duty_percent.begin(),
                                                        port.duty_percent.end()))});
      std::cerr << "  [done] noise=" << noise_mv << "mV quant=" << quant_mv << "mV\n";
    }
  }

  bench::emit(table, options);
  std::cout << "Expected: with noise << 5 mV PV spread the true MD VC keeps the lowest duty;\n"
               "large noise misranks and the protection degrades gracefully.\n";
  return 0;
}
