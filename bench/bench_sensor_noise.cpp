// Extension X5: robustness to sensor error. The paper assumes the [20]
// sensor identifies the most degraded VC exactly; this bench injects
// Gaussian measurement noise and quantization into the sensor model and
// reports the duty cycle that lands on the *true* most-degraded VC (argmax
// of the sampled initial Vth) under sensor-wise.
//
// The {noise x quantization} grid runs on core::SweepRunner (--workers N);
// each point carries its sensor config as a per-point RunnerOptions
// override, so the table is byte-identical at any worker count.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

namespace {

int true_md(const core::PortResult& port) {
  return static_cast<int>(std::distance(
      port.initial_vth_v.begin(),
      std::max_element(port.initial_vth_v.begin(), port.initial_vth_v.end())));
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X5 — sensor noise/quantization robustness (sensor-wise)",
                      "PV sigma is 5 mV: noise beyond that should start misranking the MD VC",
                      banner, options);

  util::Table table({"noise sigma (mV)", "quantization (mV)", "reported MD", "true MD",
                     "duty on true MD", "min duty on port"});

  const std::vector<double> noise_grid = {0.0, 1.0, 2.0, 5.0, 10.0};
  const std::vector<double> quant_grid = {0.0, 5.0};

  core::SweepRunner sweep(bench::sweep_options(options));
  for (double noise_mv : noise_grid) {
    for (double quant_mv : quant_grid) {
      sim::Scenario s = sim::Scenario::synthetic(4, 4, 0.2);
      bench::apply_scale(s, options);
      core::SweepPoint point;
      point.scenario = s;
      point.policy = core::PolicyKind::kSensorWise;
      point.workload = core::Workload::synthetic();
      point.label = "noise" + util::format_double(noise_mv, 1) + "mV-quant" +
                    util::format_double(quant_mv, 1) + "mV";
      core::RunnerOptions ropt;
      ropt.policy.sensor.noise_sigma_v = noise_mv * 1e-3;
      ropt.policy.sensor.quantization_v = quant_mv * 1e-3;
      point.runner = ropt;
      sweep.add(std::move(point));
    }
  }
  const core::SweepResult results = sweep.run();

  for (std::size_t i = 0; i < noise_grid.size(); ++i) {
    for (std::size_t j = 0; j < quant_grid.size(); ++j) {
      const auto& r = results[i * quant_grid.size() + j].result;
      const auto& port = r.port(0, noc::Dir::East);
      const int md = true_md(port);
      table.add_row({util::format_double(noise_grid[i], 1), util::format_double(quant_grid[j], 1),
                     std::to_string(port.most_degraded), std::to_string(md),
                     bench::duty_cell(port.duty_percent[static_cast<std::size_t>(md)]),
                     bench::duty_cell(*std::min_element(port.duty_percent.begin(),
                                                        port.duty_percent.end()))});
    }
  }

  bench::emit(table, options);
  std::cout << "Expected: with noise << 5 mV PV spread the true MD VC keeps the lowest duty;\n"
               "large noise misranks and the protection degrades gracefully.\n";
  return 0;
}
