// Ablation X1: the paper assumes an instant set_idle (zero-cycle buffer
// wake-up). This bench sweeps the wake-up latency of the power-gated
// buffers and reports the MD VC duty, packet latency and throughput under
// sensor-wise — quantifying how much of the paper's benefit survives with
// realistic sleep-transistor wake delays.

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(banner, options);
  bench::print_banner("Ablation X1 — wake-up latency sensitivity (sensor-wise, 16 cores, 4 VCs)",
                      "paper assumption: 0-cycle wake; real header-PMOS wakes take a few cycles",
                      banner, options);

  util::Table table({"wakeup cycles", "MD VC duty", "avg port duty", "avg packet latency",
                     "throughput (phit/cyc/node)"});

  for (sim::Cycle wake : {0, 1, 2, 4, 8}) {
    sim::Scenario s = sim::Scenario::synthetic(4, 4, 0.2);
    s.wakeup_latency = wake;
    bench::apply_scale(s, options);
    const auto r = bench::run_synthetic(s, core::PolicyKind::kSensorWise);
    const auto& port = r.port(0, noc::Dir::East);
    table.add_row({std::to_string(wake),
                   bench::duty_cell(port.duty_percent[static_cast<std::size_t>(port.most_degraded)]),
                   bench::duty_cell(util::mean_of(port.duty_percent)),
                   util::format_double(r.avg_packet_latency, 1),
                   util::format_double(r.throughput_flits_per_cycle_per_node, 3)});
    std::cerr << "  [done] wakeup=" << wake << '\n';
  }

  bench::emit(table, options);
  std::cout << "Expected: duty benefits persist; latency grows mildly with the wake delay.\n";
  return 0;
}
