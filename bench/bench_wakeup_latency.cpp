// Ablation X1: the paper assumes an instant set_idle (zero-cycle buffer
// wake-up). This bench sweeps the wake-up latency of the power-gated
// buffers and reports the MD VC duty, packet latency and throughput under
// sensor-wise — quantifying how much of the paper's benefit survives with
// realistic sleep-transistor wake delays.
//
// The latency grid runs on core::SweepRunner (--workers N): the wake delay
// is a Scenario field, so each grid point is a plain experiment and the
// table is byte-identical at any worker count.

#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(banner, options);
  bench::print_banner("Ablation X1 — wake-up latency sensitivity (sensor-wise, 16 cores, 4 VCs)",
                      "paper assumption: 0-cycle wake; real header-PMOS wakes take a few cycles",
                      banner, options);

  util::Table table({"wakeup cycles", "MD VC duty", "avg port duty", "avg packet latency",
                     "throughput (phit/cyc/node)"});

  const std::vector<sim::Cycle> wake_grid = {0, 1, 2, 4, 8};
  core::SweepRunner sweep(bench::sweep_options(options));
  for (sim::Cycle wake : wake_grid) {
    sim::Scenario s = sim::Scenario::synthetic(4, 4, 0.2);
    s.wakeup_latency = wake;
    bench::apply_scale(s, options);
    sweep.add(s, core::PolicyKind::kSensorWise, core::Workload::synthetic(),
              "wakeup" + std::to_string(wake));
  }
  const core::SweepResult results = sweep.run();

  for (std::size_t i = 0; i < wake_grid.size(); ++i) {
    const core::RunResult& r = results[i].result;
    const auto& port = r.port(0, noc::Dir::East);
    table.add_row({std::to_string(wake_grid[i]),
                   bench::duty_cell(port.duty_percent[static_cast<std::size_t>(port.most_degraded)]),
                   bench::duty_cell(util::mean_of(port.duty_percent)),
                   util::format_double(r.avg_packet_latency, 1),
                   util::format_double(r.throughput_flits_per_cycle_per_node, 3)});
  }

  bench::emit(table, options);
  std::cout << "Expected: duty benefits persist; latency grows mildly with the wake delay.\n";
  return 0;
}
