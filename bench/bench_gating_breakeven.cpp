// Extension X10: gating break-even analysis. The paper's Algorithm 2
// recomputes the pre-VA decision every cycle, which can toggle the header
// PMOS at high frequency; each Idle->Recovery transition costs virtual-Vdd
// charge/discharge energy [19]. This bench sweeps the decision-hold period
// (hysteresis) and reports gating transitions, NBTI protection and the NET
// leakage saving after transition overhead — locating the break-even point.
//
// The hold-period grid runs on core::SweepRunner (--workers N); each point
// carries its decision_period as a per-point RunnerOptions override, so the
// table is byte-identical at any worker count.

#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, 0.2);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X10 — gating transition overhead & decision hysteresis",
                      "sensor-wise, 16 cores, 4 VCs, injection 0.2; transition cost 1.5 pJ",
                      banner, options);

  const power::NocPowerModel pmodel;
  util::Table table({"decision period", "gate transitions / buffer / kcycle", "MD VC duty",
                     "avg port duty", "gross leakage saving", "net leakage saving",
                     "avg latency"});

  const std::vector<sim::Cycle> period_grid = {1, 4, 16, 64, 256, 1024};
  core::SweepRunner sweep(bench::sweep_options(options));
  for (sim::Cycle period : period_grid) {
    sim::Scenario s = sim::Scenario::synthetic(4, 4, 0.2);
    bench::apply_scale(s, options);
    core::SweepPoint point;
    point.scenario = s;
    point.policy = core::PolicyKind::kSensorWise;
    point.workload = core::Workload::synthetic();
    point.label = "period" + std::to_string(period);
    core::RunnerOptions ropt;
    ropt.policy.decision_period = period;
    point.runner = ropt;
    sweep.add(std::move(point));
  }
  const core::SweepResult results = sweep.run();

  for (std::size_t i = 0; i < period_grid.size(); ++i) {
    const core::RunResult& r = results[i].result;
    const sim::Scenario& s = r.scenario;
    const auto& port = r.port(0, noc::Dir::East);
    const power::EnergyReport energy = pmodel.evaluate(core::activity_of(r));

    const double buffers = static_cast<double>(r.ports.size()) * s.num_vcs;
    const double per_buffer_per_kcycle = static_cast<double>(r.total_gate_transitions) /
                                         buffers /
                                         (static_cast<double>(s.measure_cycles) / 1000.0);
    table.add_row({std::to_string(period_grid[i]), util::format_double(per_buffer_per_kcycle, 2),
                   bench::duty_cell(port.duty_percent[static_cast<std::size_t>(port.most_degraded)]),
                   bench::duty_cell(util::mean_of(port.duty_percent)),
                   util::format_percent(energy.leakage_saving() * 100.0),
                   util::format_percent(energy.net_leakage_saving() * 100.0),
                   util::format_double(r.avg_packet_latency, 1)});
  }

  bench::emit(table, options);
  std::cout << "Expected: longer hold periods slash transition counts with little NBTI cost;\n"
               "net saving approaches the gross saving once gating periods pass break-even.\n";
  return 0;
}
