// Robustness study: duty cycle and latency on progressively failing
// fabrics. Each degradation level kills a fixed, connectivity-preserving
// set of links (plus, at the top level, one whole router) at deterministic
// mid-run cycles; the network drains the dead resources, regenerates its
// route tables with up*/down* routing, and carries on. Policies compared on
// the same fault schedule: rr-no-sensor, sensor-wise, and sensor-wise over
// the stress-spreading adaptive router (west-first escape-VC routing) —
// plus a torus leg, whose wrap links give the regeneration more survivor
// paths to work with.
//
// Runs on core::SweepRunner (--workers N); the kill schedule is derived
// from a fixed seed and each point carries its FaultPlan as a per-point
// RunnerOptions override, so the table is byte-identical at any worker
// count. The invariant checker is on everywhere: structural faults may
// cost latency, duty cycle and the purged in-flight flits the drain
// accounts for — never an unaccounted flit.

#include <algorithm>
#include <iostream>
#include <iterator>

#include "bench_common.hpp"
#include "nbtinoc/noc/fault_routing.hpp"
#include "nbtinoc/noc/topology.hpp"
#include "nbtinoc/util/rng.hpp"

using namespace nbtinoc;

namespace {

std::uint64_t fault_count(const core::RunResult& r, const char* key) {
  const auto it = r.fault_counters.find(key);
  return it == r.fault_counters.end() ? 0 : it->second;
}

/// Wired cardinal links of `config`'s fabric as (router, dir) pairs, each
/// physical channel listed once (by its lower-id endpoint).
std::vector<std::pair<noc::NodeId, noc::Dir>> wired_links(const noc::NocConfig& config) {
  const auto topo = noc::Topology::create(config);
  std::vector<std::pair<noc::NodeId, noc::Dir>> links;
  for (noc::NodeId r = 0; r < topo->num_routers(); ++r)
    for (int d = 0; d < 4; ++d) {
      const noc::NodeId v = topo->neighbor(r, static_cast<noc::Dir>(d));
      if (v != noc::kInvalidNode && r < v) links.emplace_back(r, static_cast<noc::Dir>(d));
    }
  return links;
}

/// Deterministic kill schedule: `num_kills` links chosen by seeded draw,
/// each verified (by replaying the whole prefix on a scratch topology) to
/// keep the fabric connected — the study measures degraded routing, not
/// partition behavior. Kills land spaced through the measurement window.
std::vector<sim::StructuralFault> make_schedule(const noc::NocConfig& config, int num_kills,
                                                const sim::Scenario& s) {
  const auto links = wired_links(config);
  util::Xoshiro256 rng(0xfab41cULL);
  std::vector<std::pair<noc::NodeId, noc::Dir>> chosen;
  while (static_cast<int>(chosen.size()) < num_kills) {
    const auto& cand = links[rng.next_below(links.size())];
    if (std::find(chosen.begin(), chosen.end(), cand) != chosen.end()) continue;
    const auto scratch = noc::Topology::create(config);
    bool ok = true;
    for (const auto& [r, d] : chosen) scratch->kill_link(r, d);
    ok = scratch->kill_link(cand.first, cand.second) && scratch->fabric_connected();
    if (ok) chosen.push_back(cand);
  }
  std::vector<sim::StructuralFault> schedule;
  const sim::Cycle window = s.measure_cycles / static_cast<sim::Cycle>(num_kills + 1);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    sim::StructuralFault f;
    f.cycle = s.warmup_cycles + static_cast<sim::Cycle>(i + 1) * window;
    f.router = chosen[i].first;
    f.port = static_cast<int>(chosen[i].second);
    schedule.push_back(f);
  }
  return schedule;
}

struct Leg {
  const char* label;
  const char* topology;
  noc::RoutingAlgo routing;
  core::PolicyKind policy;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  const double rate = args.get_double_or("rate", 0.15);

  sim::Scenario banner = sim::Scenario::synthetic(4, 4, rate);
  bench::apply_scale(banner, options);
  bench::print_banner(
      "Robustness — duty cycle and latency on degraded fabrics (16 cores, injection " +
          util::format_double(rate, 2) + ")",
      "structural link/router kills trigger online up*/down* route regeneration; "
      "gating policies keep their duty-cycle ordering on the surviving fabric",
      banner, options);

  const Leg legs[] = {
      {"mesh/dor", "mesh", noc::RoutingAlgo::kXY, core::PolicyKind::kRrNoSensor},
      {"mesh/dor", "mesh", noc::RoutingAlgo::kXY, core::PolicyKind::kSensorWise},
      {"mesh/west-first", "mesh", noc::RoutingAlgo::kWestFirst, core::PolicyKind::kSensorWise},
      {"torus/dor", "torus", noc::RoutingAlgo::kXY, core::PolicyKind::kSensorWise},
  };
  // Degradation levels as killed-link counts; a 4x4 mesh has 24 links, so
  // the grid spans 0% to ~12%. The top level also loses a whole router.
  const int kill_levels[] = {0, 1, 3};
  const int kTopLevelKills = 3;

  core::SweepRunner sweep(bench::sweep_options(options));
  for (const int kills : kill_levels) {
    for (const Leg& leg : legs) {
      sim::Scenario s = sim::Scenario::synthetic(4, 4, rate);
      s.topology = leg.topology;
      s.routing = leg.routing == noc::RoutingAlgo::kWestFirst ? "west-first" : "dor";
      bench::apply_scale(s, options);
      core::SweepPoint point;
      point.policy = leg.policy;
      point.workload = core::Workload::synthetic();
      point.label = std::string(leg.label) + "-kills" + std::to_string(kills);
      core::RunnerOptions ropt;
      if (kills > 0) {
        noc::NocConfig config;
        config.width = s.mesh_width;
        config.height = s.mesh_height;
        config.topology = noc::parse_topology_kind(s.topology);
        config.routing = leg.routing;
        config.num_vcs = s.num_vcs;
        ropt.faults.structural = make_schedule(config, kills, s);
        if (kills == kTopLevelKills) {
          // One whole-router kill late in the run: router 0, a corner —
          // the mildest whole-router loss. Should the survivor graph still
          // split, the unroutable counters tell that story too.
          sim::StructuralFault f;
          f.cycle = s.warmup_cycles + s.measure_cycles - s.measure_cycles / 8;
          f.router = 0;
          ropt.faults.structural.push_back(f);
        }
      }
      ropt.check_invariants = true;
      point.runner = ropt;
      point.scenario = s;
      sweep.add(std::move(point));
    }
  }
  const core::SweepResult results = sweep.run();

  util::Table table({"kills", "fabric", "policy", "MD duty", "avg latency", "regens",
                     "dropped flits", "purged pkts", "unroutable", "violations"});
  std::size_t violations_total = 0;
  constexpr std::size_t kNumLegs = std::size(legs);
  for (std::size_t i = 0; i < std::size(kill_levels); ++i) {
    for (std::size_t j = 0; j < kNumLegs; ++j) {
      const auto& r = results[i * kNumLegs + j].result;
      // Injection port of terminal 5: router 5 is interior and never dies,
      // and local ports outlive any link kill.
      const auto& port = r.port(5, noc::Dir::Local);
      violations_total += r.invariant_violations.size();
      table.add_row(
          {std::to_string(kill_levels[i]) +
               (kill_levels[i] == kTopLevelKills ? "+router" : ""),
           legs[j].label, to_string(r.policy),
           bench::duty_cell(port.duty_percent[static_cast<std::size_t>(port.most_degraded)]),
           util::format_double(r.avg_packet_latency, 1),
           std::to_string(fault_count(r, "fault.route_regens")),
           std::to_string(fault_count(r, "fault.dropped_flits")),
           std::to_string(fault_count(r, "fault.purged_packets")),
           std::to_string(fault_count(r, "fault.unroutable_packets")),
           std::to_string(r.invariant_violations.size())});
    }
  }

  bench::emit(table, options);
  if (violations_total != 0) {
    std::cerr << "FAIL: " << violations_total << " invariant violation(s) on degraded fabrics\n";
    for (const auto& p : results)
      for (const auto& v : p.result.invariant_violations)
        std::cerr << "  " << p.point.describe() << ": " << v << '\n';
    return 1;
  }
  std::cout << "All invariants held through every kill schedule: the drains accounted for\n"
               "every purged flit, the regenerated tables stayed total on the surviving\n"
               "fabric, and the gating policies kept working on what was left.\n";
  return 0;
}
