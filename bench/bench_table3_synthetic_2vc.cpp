// Regenerates paper Table III: NBTI-duty-cycle (%) for all VCs under the
// three policies with 2 VCs per input port, 4- and 16-core meshes,
// injection 0.1/0.2/0.3 flits/cycle/port.
//
// Expected shape (paper): positive Gap everywhere, but — unlike Table II —
// the Gap *shrinks* as the injection rate grows: with only 2 VCs congestion
// removes the sensor-wise policy's freedom to steer packets away from the
// most degraded VC (paper: 13.4% -> 12.8% -> 9.5% on 4 cores).

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);

  const int vcs = 2;
  sim::Scenario banner = sim::Scenario::synthetic(2, vcs, 0.1);
  bench::apply_scale(banner, options);
  bench::print_banner(
      "Table III — synthetic uniform traffic, 2 VCs per input port",
      "paper: Gap positive everywhere and decreasing with load (congestion) at 2 VCs",
      banner, options);

  std::vector<std::string> header{"Scenario (2 VCs)", "MD VC"};
  for (const char* policy : {"rr", "swnt", "sw"})
    for (int v = 0; v < vcs; ++v)
      header.push_back(std::string(policy) + ":VC" + std::to_string(v));
  header.push_back("Gap (rr - sw)");
  util::Table table(header);

  const std::vector<core::PolicyKind> policies = {core::PolicyKind::kRrNoSensor,
                                                  core::PolicyKind::kSensorWiseNoTraffic,
                                                  core::PolicyKind::kSensorWise};
  core::SweepRunner sweep(bench::sweep_options(options));
  std::vector<sim::Scenario> scenarios;
  for (int width : {2, 4}) {
    for (double rate : {0.1, 0.2, 0.3}) {
      sim::Scenario s = sim::Scenario::synthetic(width, vcs, rate);
      bench::apply_scale(s, options);
      scenarios.push_back(s);
    }
  }
  sweep.add_grid(scenarios, policies);
  const core::SweepResult results = sweep.run();

  for (std::size_t wi = 0; wi < 2; ++wi) {
    std::vector<double> gaps;
    for (std::size_t ri = 0; ri < 3; ++ri) {
      const std::size_t base = (wi * 3 + ri) * policies.size();
      const auto& rr = results[base + 0].result;
      const auto& swnt = results[base + 1].result;
      const auto& sw = results[base + 2].result;

      const int md = sw.port(0, noc::Dir::East).most_degraded;
      std::vector<std::string> row{scenarios[wi * 3 + ri].name, std::to_string(md)};
      for (const auto* result : {&rr, &swnt, &sw})
        for (double duty : result->port(0, noc::Dir::East).duty_percent)
          row.push_back(bench::duty_cell(duty));
      gaps.push_back(bench::gap_on_md(rr, sw, 0, noc::Dir::East));
      row.push_back(util::format_percent(gaps.back()));
      table.add_row(std::move(row));
    }
    const int cores = scenarios[wi * 3].cores();
    std::cout << cores << "-core Gap trend with load: " << util::format_percent(gaps[0])
              << " -> " << util::format_percent(gaps[1]) << " -> " << util::format_percent(gaps[2])
              << (gaps[2] < gaps[1] ? "  (shrinks under congestion, as in the paper)" : "")
              << "\n";
  }
  std::cout << '\n';

  bench::emit(table, options);
  return 0;
}
