// Extension X4: virtual-channel count sweep. The paper observes that the
// sensor-wise Gap grows from 2 to 4 VCs ("better control over the
// NBTI-duty-cycle... since the NoC is never congested"); this bench extends
// the sweep to 8 VCs to map where the benefit saturates.

#include <iostream>

#include "bench_common.hpp"

using namespace nbtinoc;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bench::BenchOptions options = bench::BenchOptions::from_cli(args);
  const double rate = args.get_double_or("rate", 0.2);

  sim::Scenario banner = sim::Scenario::synthetic(4, 2, rate);
  bench::apply_scale(banner, options);
  bench::print_banner("Extension X4 — VC count sweep (16 cores, injection " +
                          util::format_double(rate, 1) + ")",
                      "paper: the sensor-wise Gap grows with the number of VCs (2 -> 4)",
                      banner, options);

  util::Table table({"num VCs", "MD VC", "rr MD duty", "sw MD duty", "Gap", "avg latency (sw)"});

  const std::vector<int> vc_counts = {2, 3, 4, 6, 8};
  core::SweepRunner sweep(bench::sweep_options(options));
  std::vector<sim::Scenario> scenarios;
  for (int vcs : vc_counts) {
    sim::Scenario s = sim::Scenario::synthetic(4, vcs, rate);
    bench::apply_scale(s, options);
    scenarios.push_back(s);
  }
  sweep.add_grid(scenarios, {core::PolicyKind::kRrNoSensor, core::PolicyKind::kSensorWise});
  const core::SweepResult results = sweep.run();

  for (std::size_t i = 0; i < vc_counts.size(); ++i) {
    const auto& rr = results[i * 2 + 0].result;
    const auto& sw = results[i * 2 + 1].result;
    const auto& port = sw.port(0, noc::Dir::East);
    const auto md = static_cast<std::size_t>(port.most_degraded);
    table.add_row({std::to_string(vc_counts[i]), std::to_string(port.most_degraded),
                   bench::duty_cell(rr.port(0, noc::Dir::East).duty_percent[md]),
                   bench::duty_cell(port.duty_percent[md]),
                   util::format_percent(bench::gap_on_md(rr, sw, 0, noc::Dir::East)),
                   util::format_double(sw.avg_packet_latency, 1)});
  }

  bench::emit(table, options);
  return 0;
}
