#include "nbtinoc/traffic/synthetic.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::traffic {
namespace {

DestinationPattern uniform() { return DestinationPattern(PatternKind::kUniform, 4, 4); }

TEST(SyntheticSource, RejectsBadParameters) {
  EXPECT_THROW(SyntheticSource(0, -0.1, 4, uniform(), 1), std::invalid_argument);
  EXPECT_THROW(SyntheticSource(0, 0.1, 0, uniform(), 1), std::invalid_argument);
  EXPECT_THROW(SyntheticSource(0, 5.0, 4, uniform(), 1), std::invalid_argument);
}

TEST(SyntheticSource, ZeroRateGeneratesNothing) {
  SyntheticSource src(0, 0.0, 4, uniform(), 2);
  for (sim::Cycle t = 0; t < 1000; ++t) EXPECT_FALSE(src.maybe_generate(t).has_value());
}

TEST(SyntheticSource, MeanFlitRateMatchesConfig) {
  const double rate = 0.2;
  const int plen = 4;
  SyntheticSource src(0, rate, plen, uniform(), 3);
  const int cycles = 200000;
  long flits = 0;
  for (sim::Cycle t = 0; t < static_cast<sim::Cycle>(cycles); ++t)
    if (auto req = src.maybe_generate(t)) flits += req->length;
  EXPECT_NEAR(flits / static_cast<double>(cycles), rate, 0.01);
}

TEST(SyntheticSource, DeterministicPerSeed) {
  SyntheticSource a(0, 0.3, 4, uniform(), 7);
  SyntheticSource b(0, 0.3, 4, uniform(), 7);
  for (sim::Cycle t = 0; t < 2000; ++t) {
    const auto ra = a.maybe_generate(t);
    const auto rb = b.maybe_generate(t);
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (ra) {
      EXPECT_EQ(ra->dst, rb->dst);
      EXPECT_EQ(ra->length, rb->length);
    }
  }
}

TEST(SyntheticSource, PacketLengthHonored) {
  SyntheticSource src(0, 0.5, 9, DestinationPattern(PatternKind::kUniform, 2, 2), 5);
  for (sim::Cycle t = 0; t < 1000; ++t)
    if (auto req = src.maybe_generate(t)) EXPECT_EQ(req->length, 9);
}

TEST(InstallSyntheticTraffic, EveryNodeGetsASource) {
  noc::NocConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  cfg.num_vcs = 2;
  noc::Network net(cfg);
  install_uniform_traffic(net, 0.3, 11);
  net.run(3000);
  EXPECT_GT(net.stats().counter("noc.packets_offered"), 100u);
  EXPECT_GT(net.stats().counter("noc.packets_ejected"), 50u);
  // All nodes inject (independent streams).
  for (noc::NodeId id = 0; id < 4; ++id) EXPECT_GT(net.ni(id).flits_injected(), 0u);
}

TEST(InstallSyntheticTraffic, DifferentNodesDifferentStreams) {
  noc::NocConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  noc::Network net(cfg);
  install_uniform_traffic(net, 0.2, 13);
  net.run(5000);
  // With per-node independent streams, injected counts differ with
  // overwhelming probability.
  const auto a = net.ni(0).flits_injected();
  const auto b = net.ni(1).flits_injected();
  const auto c = net.ni(2).flits_injected();
  EXPECT_FALSE(a == b && b == c);
}

}  // namespace
}  // namespace nbtinoc::traffic
