// DatacenterAggregateSource: profile validation, determinism, the
// pre-rolled emission discipline (next_event_cycle exactness, burst slip),
// snapshot round trips, and the network installer.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/sim/snapshot.hpp"
#include "nbtinoc/traffic/datacenter.hpp"
#include "nbtinoc/traffic/trace.hpp"

namespace nbtinoc::traffic {
namespace {

/// A small population with enough activity that every test sees traffic
/// within a few thousand cycles.
DatacenterProfile small_profile() {
  DatacenterProfile p;
  p.users_per_node = 64;
  p.user_rate = 0.05;
  p.mean_on_cycles = 400;
  p.mean_off_cycles = 600;
  p.profile_horizon = 1 << 12;
  return p;
}

DatacenterAggregateSource make_source(std::uint64_t seed,
                                      const DatacenterProfile& p = small_profile()) {
  return DatacenterAggregateSource(0, p, 2, 2, /*hotspot=*/3, seed);
}

template <typename Fn>
void expect_invalid(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected invalid_argument containing '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(DatacenterProfile, ValidateRejectsImpossibleProfiles) {
  const auto check = [](auto mutate, const std::string& needle) {
    DatacenterProfile p;
    mutate(p);
    expect_invalid([&] { p.validate(); }, needle);
  };
  check([](auto& p) { p.users_per_node = 0; }, "users_per_node");
  check([](auto& p) { p.user_rate = 0.0; }, "user_rate");
  check([](auto& p) { p.mean_on_cycles = 0.5; }, "mean_on_cycles");
  check([](auto& p) { p.mean_off_cycles = 0.0; }, "mean_off_cycles");
  check([](auto& p) { p.pareto_alpha = 1.0; }, "infinite-mean phases never settle");
  check([](auto& p) { p.hotspot_fraction = 1.5; }, "hotspot_fraction");
  check([](auto& p) { p.packet_length = 0; }, "packet_length");
  check([](auto& p) { p.profile_horizon = 0; }, "profile_horizon");
  // Peak load beyond the NI burst drain capacity is a configuration error,
  // not a silent slip-forever.
  check(
      [](auto& p) {
        p.users_per_node = 100;
        p.user_rate = 0.5;
        p.packet_length = 1;
      },
      "exceeds the NI burst drain capacity of 8");
  EXPECT_NO_THROW(DatacenterProfile{}.validate());
  EXPECT_NO_THROW(small_profile().validate());
}

TEST(DatacenterProfile, DescribeEncodesEveryKnob) {
  const std::string d = small_profile().describe();
  EXPECT_NE(d.find("users=64"), std::string::npos) << d;
  EXPECT_NE(d.find("rate=0.05"), std::string::npos) << d;
  EXPECT_NE(d.find("pattern=uniform"), std::string::npos) << d;
  EXPECT_NE(d.find("horizon=4096"), std::string::npos) << d;
  // Different knobs -> different digest arms.
  DatacenterProfile other = small_profile();
  other.users_per_node = 65;
  EXPECT_NE(other.describe(), d);
}

TEST(DatacenterSource, ActivityProfileIsPeriodicAndBounded) {
  auto src = make_source(99);
  const DatacenterProfile p = small_profile();
  int peak = 0;
  for (sim::Cycle c = 0; c < p.profile_horizon; c += 37) {
    const int a = src.active_sessions(c);
    EXPECT_GE(a, 0);
    EXPECT_LE(a, p.users_per_node);
    EXPECT_EQ(src.active_sessions(c + p.profile_horizon), a) << "profile must wrap at c=" << c;
    peak = std::max(peak, a);
  }
  // With 64 users at ~40% duty, some sessions are ON somewhere.
  EXPECT_GT(peak, 0);
  // Long-run mean rate = users * rate * on/(on+off).
  const double nominal =
      p.users_per_node * p.user_rate * p.mean_on_cycles / (p.mean_on_cycles + p.mean_off_cycles);
  EXPECT_DOUBLE_EQ(src.mean_flit_rate(), nominal);
}

TEST(DatacenterSource, SameSeedSameStreamDifferentSeedDiverges) {
  auto a = make_source(7);
  auto b = make_source(7);
  auto c = make_source(8);
  const sim::Cycle horizon = 20'000;
  std::vector<TraceRecord> sa, sb, sc;
  const auto drain = [&](DatacenterAggregateSource& s, std::vector<TraceRecord>& out) {
    for (sim::Cycle t = 0; t < horizon; ++t)
      while (auto req = s.maybe_generate(t)) out.push_back({t, 0, req->dst, req->length});
  };
  drain(a, sa);
  drain(b, sb);
  drain(c, sc);
  ASSERT_GT(sa.size(), 50u);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].cycle, sb[i].cycle);
    EXPECT_EQ(sa[i].dst, sb[i].dst);
  }
  bool diverged = sa.size() != sc.size();
  for (std::size_t i = 0; !diverged && i < sa.size(); ++i)
    diverged = sa[i].cycle != sc[i].cycle || sa[i].dst != sc[i].dst;
  EXPECT_TRUE(diverged);
}

TEST(DatacenterSource, NextEventCycleNeverOvershoots) {
  // Fast-forward contract: skipping straight to next_event_cycle and
  // draining bursts there yields the same packet stream as polling every
  // cycle with maybe_generate.
  auto stepped = make_source(13);
  auto skipped = make_source(13);
  const sim::Cycle horizon = 20'000;

  std::vector<TraceRecord> by_step;
  for (sim::Cycle t = 0; t < horizon; ++t)
    while (auto req = stepped.maybe_generate(t)) by_step.push_back({t, 0, req->dst, req->length});

  std::vector<TraceRecord> by_skip;
  noc::PacketRequest burst[noc::kMaxGenerateBurst];
  sim::Cycle now = 0;
  while (true) {
    const sim::Cycle next = skipped.next_event_cycle(now);
    if (next == sim::kCycleNever || next >= horizon) break;
    ASSERT_GE(next, now) << "next_event_cycle went backwards";
    now = next;
    const std::size_t n = skipped.generate_burst(now, burst, noc::kMaxGenerateBurst);
    ASSERT_GT(n, 0u) << "next_event_cycle promised an event at " << now;
    for (std::size_t i = 0; i < n; ++i) by_skip.push_back({now, 0, burst[i].dst, burst[i].length});
    ++now;  // a drained cycle is done; move on
  }

  ASSERT_GT(by_step.size(), 50u);
  ASSERT_EQ(by_skip.size(), by_step.size());
  for (std::size_t i = 0; i < by_step.size(); ++i) {
    EXPECT_EQ(by_skip[i].cycle, by_step[i].cycle);
    EXPECT_EQ(by_skip[i].dst, by_step[i].dst);
    EXPECT_EQ(by_skip[i].length, by_step[i].length);
  }
}

TEST(DatacenterSource, BurstSlipDrainsBacklogDeterministically) {
  // A hot profile (peak lambda ~6 packets/cycle) produces real multi-packet
  // batches. Pulling one packet at a time must see the slipped backlog
  // (next_event_cycle == now while packets remain undelivered) and deliver
  // the identical packet sequence the full-width burst drain produces.
  DatacenterProfile p = small_profile();
  p.user_rate = 0.4;
  auto full = make_source(21, p);
  auto starved = make_source(21, p);
  const sim::Cycle horizon = 20'000;

  std::vector<noc::PacketRequest> all;
  noc::PacketRequest burst[noc::kMaxGenerateBurst];
  for (sim::Cycle t = 0; t < horizon; ++t) {
    const std::size_t n = full.generate_burst(t, burst, noc::kMaxGenerateBurst);
    all.insert(all.end(), burst, burst + n);
  }

  std::vector<noc::PacketRequest> one_by_one;
  bool ever_pending = false;
  for (sim::Cycle t = 0; t < horizon; ++t) {
    noc::PacketRequest req;
    while (starved.generate_burst(t, &req, 1) == 1) {
      one_by_one.push_back(req);
      // Backlog left behind by a capped pull keeps the source hot at `now`
      // — the invariant all three scheduler modes rely on to drain slipped
      // packets on identical cycles.
      if (starved.next_event_cycle(t) == t) ever_pending = true;
    }
    EXPECT_GT(starved.next_event_cycle(t), t) << "drained source still claims an event at " << t;
  }
  EXPECT_TRUE(ever_pending) << "profile never produced a multi-packet cycle; weak test";

  ASSERT_GT(all.size(), 500u);
  ASSERT_EQ(one_by_one.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(one_by_one[i].dst, all[i].dst);
    EXPECT_EQ(one_by_one[i].length, all[i].length);
  }
}

TEST(DatacenterSource, SnapshotRoundTripContinuesIdentically) {
  auto reference = make_source(42);
  auto saved = make_source(42);
  const sim::Cycle cut = 7'000, horizon = 20'000;
  noc::PacketRequest burst[noc::kMaxGenerateBurst];

  const auto drain_range = [&](DatacenterAggregateSource& s, sim::Cycle from, sim::Cycle to,
                               std::vector<TraceRecord>& out) {
    for (sim::Cycle t = from; t < to; ++t) {
      const std::size_t n = s.generate_burst(t, burst, noc::kMaxGenerateBurst);
      for (std::size_t i = 0; i < n; ++i) out.push_back({t, 0, burst[i].dst, burst[i].length});
    }
  };

  std::vector<TraceRecord> uninterrupted;
  drain_range(reference, 0, horizon, uninterrupted);

  std::vector<TraceRecord> spliced;
  drain_range(saved, 0, cut, spliced);
  sim::SnapshotWriter w;
  saved.save(w);
  const std::string bytes = w.take();

  // Restore into a *fresh* source (same structural seed) and continue.
  auto restored = make_source(42);
  sim::SnapshotReader r(bytes);
  restored.load(r);
  r.expect_end();
  drain_range(restored, cut, horizon, spliced);

  ASSERT_GT(uninterrupted.size(), 50u);
  ASSERT_EQ(spliced.size(), uninterrupted.size());
  for (std::size_t i = 0; i < uninterrupted.size(); ++i) {
    EXPECT_EQ(spliced[i].cycle, uninterrupted[i].cycle);
    EXPECT_EQ(spliced[i].dst, uninterrupted[i].dst);
  }
}

TEST(DatacenterSource, InstallerDrivesANetwork) {
  noc::NocConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  noc::Network net(cfg);
  install_datacenter_traffic(net, small_profile(), /*base_seed=*/2026);
  net.run(20'000);
  EXPECT_GT(net.stats().counter("noc.packets_offered"), 100u);
  EXPECT_GT(net.stats().counter("noc.packets_ejected"), 100u);
}

TEST(DatacenterSource, DestinationsRespectThePattern) {
  DatacenterProfile p = small_profile();
  p.pattern = PatternKind::kHotspot;
  p.hotspot_fraction = 1.0;  // every packet aims at the hot node
  auto src = make_source(5, p);
  int seen = 0;
  for (sim::Cycle t = 0; t < 20'000 && seen < 50; ++t)
    while (auto req = src.maybe_generate(t)) {
      EXPECT_EQ(req->dst, 3);  // make_source pins hotspot = node 3
      ++seen;
    }
  EXPECT_GE(seen, 50);
}

}  // namespace
}  // namespace nbtinoc::traffic
