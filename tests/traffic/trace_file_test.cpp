// NBTITRACE binary format tests: byte-identical round trips, the CSV
// converter, the mmap'd open path, and one test per reader rejection — the
// validation pass is the only thing standing between a corrupt file and a
// silent misreplay, so every error message is pinned.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/traffic/synthetic.hpp"
#include "nbtinoc/traffic/trace.hpp"
#include "nbtinoc/traffic/trace_file.hpp"

namespace nbtinoc::traffic {
namespace {

Trace sample_trace() {
  Trace t;
  t.add({5, 0, 1, 4, 0});
  t.add({5, 0, 2, 4, 1});  // same cycle, same node: insertion order must hold
  t.add({7, 1, 3, 2, 0});
  t.add({9, 0, 3, 6, 0});
  t.add({12, 3, 0, 1, 1});
  return t;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Expects `fn` to throw a TraceError whose message contains `needle`.
template <typename Fn>
void expect_trace_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected TraceError containing '" << needle << "'";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(TraceFileFormat, SerializeParsesBackIdentically) {
  const Trace t = sample_trace();
  const auto file = TraceFile::from_trace(t, 4, "unit-test digest");
  EXPECT_EQ(file->node_count(), 4);
  EXPECT_EQ(file->vnet_count(), 2);
  EXPECT_EQ(file->record_count(), t.size());
  EXPECT_EQ(file->digest(), "unit-test digest");

  // Per-node slices hold exactly that node's records, cycle-sorted with
  // same-cycle insertion order preserved.
  const TraceSlice s0 = file->slice(0);
  ASSERT_EQ(s0.size(), 3u);
  EXPECT_EQ(s0.cycle(0), 5u);
  EXPECT_EQ(s0.dst(0), 1);
  EXPECT_EQ(s0.vnet(0), 0);
  EXPECT_EQ(s0.dst(1), 2);
  EXPECT_EQ(s0.vnet(1), 1);
  EXPECT_EQ(s0.cycle(2), 9u);
  EXPECT_EQ(s0.length(2), 6);
  EXPECT_EQ(file->slice(2).size(), 0u);  // node with no traffic
}

TEST(TraceFileFormat, RoundTripIsByteIdentical) {
  // serialize -> parse -> to_trace -> serialize must reproduce the exact
  // bytes: the format is canonical for a given record stream.
  const std::string bytes = serialize_trace(sample_trace(), 4, "d");
  const auto file = TraceFile::from_bytes(bytes);
  EXPECT_EQ(serialize_trace(file->to_trace(), 4, "d"), bytes);
}

TEST(TraceFileFormat, CaptureRoundTripsByteIdentically) {
  // A real multi-source capture (bursts, shared cycles across nodes) must
  // survive the to_trace interleave byte for byte as well.
  std::vector<std::unique_ptr<SyntheticSource>> sources;
  std::vector<noc::ITrafficSource*> raw;
  for (noc::NodeId id = 0; id < 4; ++id) {
    sources.push_back(std::make_unique<SyntheticSource>(
        id, 0.5, 2, DestinationPattern(PatternKind::kUniform, 2, 2),
        1000 + static_cast<std::uint64_t>(id)));
    raw.push_back(sources.back().get());
  }
  const Trace captured = Trace::capture(raw, 5'000);
  ASSERT_GT(captured.size(), 1'000u);
  const std::string bytes = serialize_trace(captured, 4, "capture");
  const auto file = TraceFile::from_bytes(bytes);
  EXPECT_EQ(serialize_trace(file->to_trace(), 4, "capture"), bytes);
}

TEST(TraceFileFormat, OpenMmapsWrittenFile) {
  const std::string path = temp_path("nbtinoc_trace_file_test.nbtitrace");
  write_trace_file(path, sample_trace(), 4, "on-disk");
  const auto file = TraceFile::open(path);
  EXPECT_EQ(file->record_count(), 5u);
  EXPECT_EQ(file->digest(), "on-disk");
  EXPECT_EQ(file->size_bytes(), std::filesystem::file_size(path));
  // The shared_ptr keeps the mapping alive for every source handed out.
  TraceReplaySource replay(file, 0);
  EXPECT_EQ(replay.maybe_generate(5)->dst, 1);
  std::remove(path.c_str());
}

TEST(TraceFileFormat, EmptyTraceRoundTrips) {
  const auto file = TraceFile::from_trace(Trace{}, 3, "");
  EXPECT_EQ(file->record_count(), 0u);
  EXPECT_EQ(file->vnet_count(), 1);
  TraceReplaySource replay(file, 2);
  EXPECT_EQ(replay.next_event_cycle(0), sim::kCycleNever);
}

TEST(TraceFileFormat, CsvConverterMatchesDirectSerialization) {
  const std::string csv = temp_path("nbtinoc_convert_in.csv");
  const std::string bin = temp_path("nbtinoc_convert_out.nbtitrace");
  const Trace t = sample_trace();
  t.save(csv);
  convert_csv_trace(csv, bin, 4, "converted");

  std::ifstream in(bin, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), serialize_trace(Trace::load(csv), 4, "converted"));
  const auto file = TraceFile::open(bin);
  EXPECT_EQ(file->record_count(), t.size());
  std::remove(csv.c_str());
  std::remove(bin.c_str());
}

TEST(TraceFileErrors, SerializeRejectsBadRecords) {
  Trace bad_src;
  bad_src.add({1, 9, 0, 4});
  expect_trace_error([&] { serialize_trace(bad_src, 4, ""); },
                     "record 0: src 9 out of range for a 4-node network");
  Trace bad_dst;
  bad_dst.add({1, 0, -1, 4});
  expect_trace_error([&] { serialize_trace(bad_dst, 4, ""); },
                     "record 0: dst -1 out of range for a 4-node network");
  Trace bad_len;
  bad_len.add({1, 0, 1, 0});
  expect_trace_error([&] { serialize_trace(bad_len, 4, ""); },
                     "record 0: length must be >= 1, got 0");
  Trace wide_len;
  wide_len.add({1, 0, 1, 0x10000});
  expect_trace_error([&] { serialize_trace(wide_len, 4, ""); },
                     "length 65536 exceeds the u16 record field");
  Trace bad_vnet;
  bad_vnet.add({1, 0, 1, 4, -2});
  expect_trace_error([&] { serialize_trace(bad_vnet, 4, ""); },
                     "vnet -2 does not fit the u16 record field");
  expect_trace_error([&] { serialize_trace(Trace{}, 0, ""); }, "node_count must be >= 1");
}

TEST(TraceFileErrors, ReaderRejectsEveryCorruption) {
  const std::string good = serialize_trace(sample_trace(), 4, "dg");

  expect_trace_error([&] { TraceFile::from_bytes("NBTIWRONG" + good.substr(9)); },
                     "not an NBTITRACE file (bad magic)");
  expect_trace_error([&] { TraceFile::from_bytes(good.substr(0, 4)); },
                     "truncated trace: magic needs 9 bytes");
  {
    std::string bad = good;
    bad[9] = 99;  // version field
    expect_trace_error([&] { TraceFile::from_bytes(bad); },
                       "unsupported trace version 99 (this build reads 1)");
  }
  {
    std::string bad = good;
    bad[13] = 0;  // node count -> 0
    expect_trace_error([&] { TraceFile::from_bytes(bad); }, "node count 0 is not a positive int");
  }
  {
    std::string bad = good;
    bad[17] = 0;  // vnet count -> 0
    expect_trace_error([&] { TraceFile::from_bytes(bad); }, "vnet count must be >= 1");
  }
  {
    std::string bad = good;
    bad[21] += 1;  // record count no longer matches the index sum
    expect_trace_error([&] { TraceFile::from_bytes(bad); }, "per-node index sums to");
  }
  expect_trace_error([&] { TraceFile::from_bytes(good.substr(0, good.size() - 1)); },
                     "truncated trace");
  expect_trace_error([&] { TraceFile::from_bytes(good + "x"); }, "trailing garbage: 1 bytes");
  {
    // Corrupt one record's dst (dst field sits 8 bytes into the record).
    std::string bad = good;
    bad[good.size() - kTraceRecordBytes + 8] = 120;
    expect_trace_error([&] { TraceFile::from_bytes(bad); }, "out of range for a 4-node network");
  }
  {
    // Swap the order of node 0's two cycle-5/cycle-9 records by editing the
    // first record's cycle to 10: monotonicity per slice must fail.
    std::string bad = good;
    const std::size_t records_off = good.size() - 5 * kTraceRecordBytes;
    bad[records_off] = 100;
    expect_trace_error([&] { TraceFile::from_bytes(bad); }, "slices must be non-decreasing");
  }
}

TEST(TraceFileErrors, OpenErrorsNameThePath) {
  expect_trace_error([] { TraceFile::open("/nonexistent/dir/trace.nbtitrace"); },
                     "cannot open /nonexistent/dir/trace.nbtitrace");
  const std::string path = temp_path("nbtinoc_not_a_trace.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage bytes, definitely not a trace";
  }
  expect_trace_error([&] { TraceFile::open(path); }, path + ": not an NBTITRACE file");
  std::remove(path.c_str());
}

TEST(TraceFileErrors, InstallRejectsNodeCountMismatch) {
  const auto file = TraceFile::from_trace(sample_trace(), 4, "mismatch-digest");
  noc::NocConfig cfg;
  cfg.width = 3;
  cfg.height = 3;
  noc::Network net(cfg);
  expect_trace_error([&] { install_trace_replay(net, file); },
                     "trace was captured on 4 nodes but this network has 9 "
                     "(trace digest: \"mismatch-digest\")");
}

TEST(TraceFileFormat, SharedMappingServesManySources) {
  // The zero-copy contract: any number of replay sources hold cursors into
  // the one mapping, and each sees exactly its own slice.
  const auto file = TraceFile::from_trace(sample_trace(), 4, "");
  std::uint64_t total = 0;
  for (noc::NodeId id = 0; id < 4; ++id) {
    TraceReplaySource src(file, id);
    noc::PacketRequest burst[noc::kMaxGenerateBurst];
    sim::Cycle now = 0;
    while (true) {
      const sim::Cycle next = src.next_event_cycle(now);
      if (next == sim::kCycleNever) break;
      now = next;
      total += src.generate_burst(now, burst, noc::kMaxGenerateBurst);
    }
  }
  EXPECT_EQ(total, file->record_count());
}

}  // namespace
}  // namespace nbtinoc::traffic
