#include <fstream>
#include "nbtinoc/traffic/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nbtinoc/traffic/synthetic.hpp"

namespace nbtinoc::traffic {
namespace {

TEST(Trace, SaveLoadRoundTrip) {
  Trace t;
  t.add({10, 0, 3, 4});
  t.add({11, 1, 2, 9});
  const std::string path = std::filesystem::temp_directory_path() / "nbtinoc_trace.csv";
  t.save(path);
  const Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.records()[0].cycle, 10u);
  EXPECT_EQ(loaded.records()[0].dst, 3);
  EXPECT_EQ(loaded.records()[1].length, 9);
  std::remove(path.c_str());
}

TEST(Trace, CaptureRecordsOfferedLoad) {
  SyntheticSource src(0, 0.4, 4, DestinationPattern(PatternKind::kUniform, 2, 2), 17);
  const Trace t = Trace::capture({&src}, 2000);
  EXPECT_GT(t.size(), 100u);
  for (const auto& rec : t.records()) {
    EXPECT_EQ(rec.src, 0);
    EXPECT_EQ(rec.length, 4);
    EXPECT_LT(rec.cycle, 2000u);
  }
}

TEST(Trace, CaptureSkipsNullSources) {
  SyntheticSource src(1, 0.4, 4, DestinationPattern(PatternKind::kUniform, 2, 2), 19);
  const Trace t = Trace::capture({nullptr, &src}, 500);
  for (const auto& rec : t.records()) EXPECT_EQ(rec.src, 1);
}

TEST(TraceReplay, ReplaysOwnSliceInOrder) {
  Trace t;
  t.add({5, 0, 1, 4});
  t.add({6, 1, 2, 4});  // other node's packet
  t.add({9, 0, 3, 2});
  TraceReplaySource replay(t, 0);
  EXPECT_FALSE(replay.maybe_generate(4).has_value());
  const auto first = replay.maybe_generate(5);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->dst, 1);
  EXPECT_FALSE(replay.maybe_generate(7).has_value());
  const auto second = replay.maybe_generate(9);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->dst, 3);
  EXPECT_EQ(second->length, 2);
  EXPECT_FALSE(replay.maybe_generate(10).has_value());
}

TEST(TraceReplay, SameCycleRecordsSlipForward) {
  Trace t;
  t.add({5, 0, 1, 4});
  t.add({5, 0, 2, 4});
  TraceReplaySource replay(t, 0);
  EXPECT_EQ(replay.maybe_generate(5)->dst, 1);
  EXPECT_EQ(replay.maybe_generate(6)->dst, 2);  // deferred one cycle
}

TEST(TraceReplay, CapturedTrafficReplaysIdentically) {
  // Capture a synthetic stream, then replay it through a network: the same
  // offered packets arrive.
  SyntheticSource src(0, 0.2, 4, DestinationPattern(PatternKind::kUniform, 2, 2), 23);
  const Trace trace = Trace::capture({&src, nullptr, nullptr, nullptr}, 3000);

  noc::NocConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  noc::Network net(cfg);
  net.set_traffic_source(0, std::make_unique<TraceReplaySource>(trace, 0));
  net.run(6000);
  EXPECT_EQ(net.stats().counter("noc.packets_offered"), trace.size());
}

TEST(Trace, LoadMalformedThrows) {
  const std::string path = std::filesystem::temp_directory_path() / "nbtinoc_bad_trace.csv";
  {
    std::ofstream out(path);
    out << "1,2,3\n";  // missing the length column
  }
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

/// Writes `body` to a temp CSV and expects Trace::load to throw a message
/// containing "<path>:<line>: <needle>" — the line-numbered actionable-error
/// contract.
void expect_load_error(const std::string& body, int line, const std::string& needle,
                       int num_nodes = 0) {
  const std::string path =
      std::filesystem::temp_directory_path() / "nbtinoc_load_error_trace.csv";
  {
    std::ofstream out(path);
    out << body;
  }
  try {
    Trace::load(path, num_nodes);
    FAIL() << "expected error containing '" << needle << "' for body: " << body;
  } catch (const std::runtime_error& e) {
    const std::string expected =
        "Trace::load: " + path + ":" + std::to_string(line) + ": " + needle;
    EXPECT_EQ(std::string(e.what()), expected) << "for body: " << body;
  }
  std::remove(path.c_str());
}

TEST(Trace, LoadErrorsAreLineNumberedAndActionable) {
  // Header comments and blank lines still advance the reported line number.
  expect_load_error("# header\n\n1,2\n", 3,
                    "expected 4 or 5 columns (cycle,src,dst,length[,vnet]), got 2");
  expect_load_error("1,0,1,4,0,9\n", 1,
                    "expected 4 or 5 columns (cycle,src,dst,length[,vnet]), got 6");
  expect_load_error("1,0,,4\n", 1, "empty dst column");
  expect_load_error("x,0,1,4\n", 1, "cycle is not a non-negative integer: 'x'");
  expect_load_error("1,-2,1,4\n", 1, "src is not a non-negative integer: '-2'");
  expect_load_error("1,0,1,99999999999999999999\n", 1,
                    "length overflows: '99999999999999999999'");
  expect_load_error("1,0,1,0\n", 1, "length must be >= 1, got 0");
  expect_load_error("1,0,1,4,3000000000\n", 1, "vnet overflows: '3000000000'");
}

TEST(Trace, LoadBoundsChecksAgainstNodeCount) {
  // With num_nodes the src/dst columns are range-checked...
  expect_load_error("0,4,1,4\n", 1, "src 4 out of range for a 4-node network", /*num_nodes=*/4);
  expect_load_error("# ok line\n0,1,2,4\n0,3,9,4\n", 3,
                    "dst 9 out of range for a 4-node network", /*num_nodes=*/4);
  // ...and without it they must still fit a node id.
  expect_load_error("0,3000000000,1,4\n", 1, "src 3000000000 does not fit a node id");
}

TEST(Trace, LoadMissingFileNamesPath) {
  try {
    Trace::load("/nonexistent/dir/trace.csv");
    FAIL() << "expected error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "Trace::load: cannot open /nonexistent/dir/trace.csv");
  }
}

TEST(Trace, CaptureConsumesSourceRng) {
  // Pins the Trace::capture contract: capture *consumes* the sources' RNG
  // streams, so a captured source must be discarded, not reused. A fresh
  // source with the same seed reproduces the capture exactly; the consumed
  // source continues the advanced stream and diverges.
  const auto make = [] {
    return std::make_unique<SyntheticSource>(0, 0.4, 4,
                                             DestinationPattern(PatternKind::kUniform, 2, 2), 31);
  };
  auto consumed = make();
  const Trace first = Trace::capture({consumed.get()}, 2000);
  ASSERT_GT(first.size(), 100u);

  // Correct workflow: a fresh identically-seeded source re-captures the
  // identical record stream.
  auto fresh = make();
  const Trace again = Trace::capture({fresh.get()}, 2000);
  ASSERT_EQ(again.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(again.records()[i].cycle, first.records()[i].cycle);
    EXPECT_EQ(again.records()[i].dst, first.records()[i].dst);
  }

  // Misuse: reusing the consumed source does NOT rewind — the continuation
  // diverges from the capture (if it matched, capture would silently be
  // side-effect free and this contract would be moot).
  const Trace reused = Trace::capture({consumed.get()}, 2000);
  bool diverged = reused.size() != first.size();
  for (std::size_t i = 0; !diverged && i < first.size(); ++i)
    diverged = reused.records()[i].cycle != first.records()[i].cycle ||
               reused.records()[i].dst != first.records()[i].dst;
  EXPECT_TRUE(diverged) << "capture unexpectedly left the source stream untouched";
}

}  // namespace
}  // namespace nbtinoc::traffic
