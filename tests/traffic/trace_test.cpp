#include <fstream>
#include "nbtinoc/traffic/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nbtinoc/traffic/synthetic.hpp"

namespace nbtinoc::traffic {
namespace {

TEST(Trace, SaveLoadRoundTrip) {
  Trace t;
  t.add({10, 0, 3, 4});
  t.add({11, 1, 2, 9});
  const std::string path = std::filesystem::temp_directory_path() / "nbtinoc_trace.csv";
  t.save(path);
  const Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.records()[0].cycle, 10u);
  EXPECT_EQ(loaded.records()[0].dst, 3);
  EXPECT_EQ(loaded.records()[1].length, 9);
  std::remove(path.c_str());
}

TEST(Trace, CaptureRecordsOfferedLoad) {
  SyntheticSource src(0, 0.4, 4, DestinationPattern(PatternKind::kUniform, 2, 2), 17);
  const Trace t = Trace::capture({&src}, 2000);
  EXPECT_GT(t.size(), 100u);
  for (const auto& rec : t.records()) {
    EXPECT_EQ(rec.src, 0);
    EXPECT_EQ(rec.length, 4);
    EXPECT_LT(rec.cycle, 2000u);
  }
}

TEST(Trace, CaptureSkipsNullSources) {
  SyntheticSource src(1, 0.4, 4, DestinationPattern(PatternKind::kUniform, 2, 2), 19);
  const Trace t = Trace::capture({nullptr, &src}, 500);
  for (const auto& rec : t.records()) EXPECT_EQ(rec.src, 1);
}

TEST(TraceReplay, ReplaysOwnSliceInOrder) {
  Trace t;
  t.add({5, 0, 1, 4});
  t.add({6, 1, 2, 4});  // other node's packet
  t.add({9, 0, 3, 2});
  TraceReplaySource replay(t, 0);
  EXPECT_FALSE(replay.maybe_generate(4).has_value());
  const auto first = replay.maybe_generate(5);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->dst, 1);
  EXPECT_FALSE(replay.maybe_generate(7).has_value());
  const auto second = replay.maybe_generate(9);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->dst, 3);
  EXPECT_EQ(second->length, 2);
  EXPECT_FALSE(replay.maybe_generate(10).has_value());
}

TEST(TraceReplay, SameCycleRecordsSlipForward) {
  Trace t;
  t.add({5, 0, 1, 4});
  t.add({5, 0, 2, 4});
  TraceReplaySource replay(t, 0);
  EXPECT_EQ(replay.maybe_generate(5)->dst, 1);
  EXPECT_EQ(replay.maybe_generate(6)->dst, 2);  // deferred one cycle
}

TEST(TraceReplay, CapturedTrafficReplaysIdentically) {
  // Capture a synthetic stream, then replay it through a network: the same
  // offered packets arrive.
  SyntheticSource src(0, 0.2, 4, DestinationPattern(PatternKind::kUniform, 2, 2), 23);
  const Trace trace = Trace::capture({&src, nullptr, nullptr, nullptr}, 3000);

  noc::NocConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  noc::Network net(cfg);
  net.set_traffic_source(0, std::make_unique<TraceReplaySource>(trace, 0));
  net.run(6000);
  EXPECT_EQ(net.stats().counter("noc.packets_offered"), trace.size());
}

TEST(Trace, LoadMalformedThrows) {
  const std::string path = std::filesystem::temp_directory_path() / "nbtinoc_bad_trace.csv";
  {
    std::ofstream out(path);
    out << "1,2,3\n";  // missing the length column
  }
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nbtinoc::traffic
