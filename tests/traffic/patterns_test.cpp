#include "nbtinoc/traffic/patterns.hpp"

#include <gtest/gtest.h>

#include <map>

namespace nbtinoc::traffic {
namespace {

TEST(Patterns, ParseNames) {
  EXPECT_EQ(parse_pattern("uniform"), PatternKind::kUniform);
  EXPECT_EQ(parse_pattern("Transpose"), PatternKind::kTranspose);
  EXPECT_EQ(parse_pattern("hotspot"), PatternKind::kHotspot);
  EXPECT_THROW(parse_pattern("nope"), std::invalid_argument);
}

TEST(Patterns, RoundTripNames) {
  for (auto kind : {PatternKind::kUniform, PatternKind::kTranspose, PatternKind::kBitComplement,
                    PatternKind::kBitReverse, PatternKind::kTornado, PatternKind::kNeighbor,
                    PatternKind::kHotspot, PatternKind::kShuffle}) {
    EXPECT_EQ(parse_pattern(to_string(kind)), kind);
  }
}

TEST(Patterns, UniformNeverSelf) {
  DestinationPattern p(PatternKind::kUniform, 4, 4);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(p.pick(5, rng), 5);
}

TEST(Patterns, UniformCoversAllOthers) {
  DestinationPattern p(PatternKind::kUniform, 2, 2);
  util::Xoshiro256 rng(2);
  std::map<int, int> counts;
  for (int i = 0; i < 9000; ++i) ++counts[p.pick(0, rng)];
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [dst, n] : counts) EXPECT_NEAR(n, 3000, 300);
}

TEST(Patterns, TransposeMapsCoordinates) {
  DestinationPattern p(PatternKind::kTranspose, 4, 4);
  util::Xoshiro256 rng(3);
  // (1,0) id=1 -> (0,1) id=4.
  EXPECT_EQ(p.pick(1, rng), 4);
  // (3,2) id=11 -> (2,3) id=14.
  EXPECT_EQ(p.pick(11, rng), 14);
}

TEST(Patterns, TransposeDiagonalFallsBackToUniform) {
  DestinationPattern p(PatternKind::kTranspose, 4, 4);
  util::Xoshiro256 rng(4);
  // Node 5 = (1,1) maps to itself; must divert elsewhere.
  for (int i = 0; i < 100; ++i) EXPECT_NE(p.pick(5, rng), 5);
}

TEST(Patterns, BitComplement) {
  DestinationPattern p(PatternKind::kBitComplement, 4, 4);
  util::Xoshiro256 rng(5);
  EXPECT_EQ(p.pick(0, rng), 15);
  EXPECT_EQ(p.pick(3, rng), 12);
}

TEST(Patterns, TornadoHalfMeshOffset) {
  DestinationPattern p(PatternKind::kTornado, 4, 4);
  util::Xoshiro256 rng(6);
  EXPECT_EQ(p.pick(0, rng), 2);   // (0,0) -> (2,0)
  EXPECT_EQ(p.pick(5, rng), 7);   // (1,1) -> (3,1)
}

TEST(Patterns, NeighborWrapsX) {
  DestinationPattern p(PatternKind::kNeighbor, 4, 4);
  util::Xoshiro256 rng(7);
  EXPECT_EQ(p.pick(0, rng), 1);
  EXPECT_EQ(p.pick(3, rng), 0);  // wraps to column 0
}

TEST(Patterns, HotspotFractionRespected) {
  DestinationPattern p(PatternKind::kHotspot, 4, 4, /*hotspot=*/15, /*fraction=*/0.5);
  util::Xoshiro256 rng(8);
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (p.pick(0, rng) == 15) ++hot;
  // 50% directed + uniform residue also landing on 15 occasionally.
  EXPECT_NEAR(hot / static_cast<double>(n), 0.5 + 0.5 / 15.0, 0.02);
}

TEST(Patterns, HotspotNodeItselfSendsElsewhere) {
  DestinationPattern p(PatternKind::kHotspot, 4, 4, 15, 0.9);
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_NE(p.pick(15, rng), 15);
}

TEST(Patterns, RejectsBadMesh) {
  EXPECT_THROW(DestinationPattern(PatternKind::kUniform, 0, 4), std::invalid_argument);
}

// Property: no pattern ever returns the source itself.
class NoSelfTrafficTest : public ::testing::TestWithParam<PatternKind> {};

TEST_P(NoSelfTrafficTest, NeverSelf) {
  DestinationPattern p(GetParam(), 4, 4, 0, 0.3);
  util::Xoshiro256 rng(10);
  for (noc::NodeId src = 0; src < 16; ++src)
    for (int i = 0; i < 200; ++i) {
      const noc::NodeId dst = p.pick(src, rng);
      EXPECT_NE(dst, src);
      EXPECT_GE(dst, 0);
      EXPECT_LT(dst, 16);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, NoSelfTrafficTest,
                         ::testing::Values(PatternKind::kUniform, PatternKind::kTranspose,
                                           PatternKind::kBitComplement, PatternKind::kBitReverse,
                                           PatternKind::kTornado, PatternKind::kNeighbor,
                                           PatternKind::kHotspot, PatternKind::kShuffle));

}  // namespace
}  // namespace nbtinoc::traffic
