#include "nbtinoc/traffic/app_model.hpp"

#include <gtest/gtest.h>

#include "nbtinoc/traffic/benchmarks.hpp"

namespace nbtinoc::traffic {
namespace {

AppProfile profile(double rate = 0.05, double burst = 4.0, double burst_len = 200) {
  AppProfile p;
  p.mean_rate = rate;
  p.burstiness = burst;
  p.mean_burst_cycles = burst_len;
  return p;
}

TEST(AppTrafficSource, RejectsBadProfiles) {
  AppProfile p = profile();
  p.mean_rate = -1;
  EXPECT_THROW(AppTrafficSource(0, p, 4, 4, 15, 1), std::invalid_argument);
  p = profile();
  p.burstiness = 0.5;
  EXPECT_THROW(AppTrafficSource(0, p, 4, 4, 15, 1), std::invalid_argument);
  p = profile();
  p.mean_burst_cycles = 0.0;
  EXPECT_THROW(AppTrafficSource(0, p, 4, 4, 15, 1), std::invalid_argument);
  p = profile();
  p.packet_length = 0;
  EXPECT_THROW(AppTrafficSource(0, p, 4, 4, 15, 1), std::invalid_argument);
}

TEST(AppTrafficSource, LongRunRateMatchesMean) {
  const AppProfile p = profile(0.06, 4.0, 200);
  AppTrafficSource src(0, p, 4, 4, 15, 42);
  const int cycles = 2'000'000;
  long flits = 0;
  for (sim::Cycle t = 0; t < static_cast<sim::Cycle>(cycles); ++t)
    if (auto req = src.maybe_generate(t)) flits += req->length;
  EXPECT_NEAR(flits / static_cast<double>(cycles), 0.06, 0.008);
}

TEST(AppTrafficSource, IsActuallyBursty) {
  // Windowed rate variance far exceeds a Bernoulli source's at equal mean.
  const AppProfile p = profile(0.05, 6.0, 300);
  AppTrafficSource src(0, p, 4, 4, 15, 7);
  const int window = 500;
  const int windows = 400;
  std::vector<double> rates;
  for (int w = 0; w < windows; ++w) {
    long flits = 0;
    for (int t = 0; t < window; ++t)
      if (auto req = src.maybe_generate(static_cast<sim::Cycle>(w) * window + t))
        flits += req->length;
    rates.push_back(flits / static_cast<double>(window));
  }
  double mean = 0, var = 0;
  for (double r : rates) mean += r;
  mean /= rates.size();
  for (double r : rates) var += (r - mean) * (r - mean);
  var /= rates.size();
  // Bernoulli packets at q=mean/4 with 4-flit packets gives var of windowed
  // flit-rate ~ 16*q*(1-q)/window ~ 0.0004; the MMPP should be far above.
  EXPECT_GT(var, 0.001);
}

TEST(AppTrafficSource, DestinationsStayOnMeshAndNotSelf) {
  const AppProfile p = profile(0.5, 2.0, 100);
  AppTrafficSource src(5, p, 4, 4, 15, 9);
  for (sim::Cycle t = 0; t < 20000; ++t) {
    if (auto req = src.maybe_generate(t)) {
      EXPECT_GE(req->dst, 0);
      EXPECT_LT(req->dst, 16);
      EXPECT_NE(req->dst, 5);
    }
  }
}

TEST(AppTrafficSource, LocalityBiasesNeighbors) {
  AppProfile p = profile(0.5, 1.0, 100);
  p.locality = 0.8;
  p.hotspot_fraction = 0.0;
  AppTrafficSource src(5, p, 4, 4, 15, 11);
  int neighbor_hits = 0, total = 0;
  for (sim::Cycle t = 0; t < 100000; ++t) {
    if (auto req = src.maybe_generate(t)) {
      ++total;
      const noc::NodeId d = req->dst;
      if (d == 1 || d == 9 || d == 4 || d == 6) ++neighbor_hits;
    }
  }
  ASSERT_GT(total, 1000);
  EXPECT_GT(neighbor_hits / static_cast<double>(total), 0.75);
}

TEST(AppTrafficSource, HotspotBiasWorks) {
  AppProfile p = profile(0.5, 1.0, 100);
  p.locality = 0.0;
  p.hotspot_fraction = 0.6;
  AppTrafficSource src(0, p, 4, 4, /*hotspot=*/15, 13);
  int hot = 0, total = 0;
  for (sim::Cycle t = 0; t < 50000; ++t) {
    if (auto req = src.maybe_generate(t)) {
      ++total;
      if (req->dst == 15) ++hot;
    }
  }
  ASSERT_GT(total, 1000);
  EXPECT_GT(hot / static_cast<double>(total), 0.55);
}

TEST(AppTrafficSource, MeanPacketProbability) {
  const AppProfile p = profile(0.08);
  AppTrafficSource src(0, p, 4, 4, 15, 1);
  EXPECT_DOUBLE_EQ(src.mean_packet_probability(), 0.08 / 4);
}

TEST(Benchmarks, SuiteIsRichAndNamed) {
  const auto& suite = benchmark_suite();
  EXPECT_GE(suite.size(), 15u);
  EXPECT_NO_THROW(benchmark_by_name("fft"));
  EXPECT_NO_THROW(benchmark_by_name("wcet-crc"));
  EXPECT_THROW(benchmark_by_name("doom"), std::invalid_argument);
}

TEST(Benchmarks, WcetKernelsAreLighterThanSplash) {
  // The WCET suite is single-tile compute: its rates sit well below SPLASH2.
  double wcet_max = 0, splash_min = 1;
  for (const auto& p : benchmark_suite()) {
    if (p.name.rfind("wcet-", 0) == 0) wcet_max = std::max(wcet_max, p.mean_rate);
    else splash_min = std::min(splash_min, p.mean_rate);
  }
  EXPECT_LT(wcet_max, splash_min);
}

TEST(Benchmarks, RandomMixDeterministicPerSeed) {
  const auto a = random_mix(16, 77);
  const auto b = random_mix(16, 77);
  EXPECT_EQ(a.names, b.names);
  EXPECT_NE(a.names, random_mix(16, 78).names);
  EXPECT_EQ(a.names.size(), 16u);
}

TEST(Benchmarks, InstallMixValidatesSize) {
  noc::NocConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  noc::Network net(cfg);
  BenchmarkMix wrong;
  wrong.names = {"fft"};
  EXPECT_THROW(install_benchmark_mix(net, wrong, 1), std::invalid_argument);
}

TEST(Benchmarks, InstalledMixGeneratesTraffic) {
  noc::NocConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  noc::Network net(cfg);
  install_benchmark_mix(net, random_mix(4, 3), 5);
  net.run(100'000);
  EXPECT_GT(net.stats().counter("noc.packets_ejected"), 10u);
}

TEST(Benchmarks, MixDescribeListsCores) {
  BenchmarkMix mix;
  mix.names = {"fft", "lu"};
  const std::string d = mix.describe();
  EXPECT_NE(d.find("core0=fft"), std::string::npos);
  EXPECT_NE(d.find("core1=lu"), std::string::npos);
}

}  // namespace
}  // namespace nbtinoc::traffic
