// InvariantChecker: the safety net under fault injection. These tests prove
// both directions — a healthy network (idle, loaded, gating, faulted links)
// is clean every cycle, and a deliberately tampered network is caught.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/noc/state_probe.hpp"
#include "nbtinoc/traffic/synthetic.hpp"

namespace nbtinoc::noc {
namespace {

NocConfig mesh(int w, int h, int vcs = 2, int depth = 4, int plen = 4) {
  NocConfig c;
  c.width = w;
  c.height = h;
  c.num_vcs = vcs;
  c.buffer_depth = depth;
  c.packet_length = plen;
  return c;
}

void step_checked(Network& net, InvariantChecker& checker, sim::Cycle cycles) {
  for (sim::Cycle i = 0; i < cycles; ++i) {
    net.step();
    checker.check();
  }
}

// First input-port VC buffer holding a flit, or nullptr. Resident flits may
// all be in flight on channels, so callers step until this finds one.
VcBuffer* find_buffered_flit(Network& net) {
  for (NodeId id = 0; id < net.nodes(); ++id)
    for (int p = 0; p < kNumDirs; ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!net.router(id).has_input(port)) continue;
      auto& iu = net.router(id).input(port);
      for (int v = 0; v < iu.num_vcs(); ++v)
        if (iu.vc(v).occupancy() > 0) return &iu.vc(v);
    }
  return nullptr;
}

TEST(InvariantChecker, CleanOnIdleNetwork) {
  Network net(mesh(2, 2));
  InvariantChecker checker(net);
  step_checked(net, checker, 200);
  EXPECT_TRUE(checker.clean()) << checker.violations().front().what;
  EXPECT_EQ(checker.cycles_checked(), 200u);
}

TEST(InvariantChecker, CleanUnderUniformTraffic) {
  Network net(mesh(3, 3));
  traffic::install_synthetic_traffic(net, traffic::PatternKind::kUniform, 0.3, /*seed=*/42);
  InvariantChecker checker(net);
  step_checked(net, checker, 2'000);
  EXPECT_TRUE(checker.clean()) << checker.violations().front().what;
}

TEST(InvariantChecker, CleanAcrossStatRegistryReset) {
  Network net(mesh(2, 2));
  traffic::install_synthetic_traffic(net, traffic::PatternKind::kUniform, 0.3, 42);
  InvariantChecker checker(net);
  step_checked(net, checker, 500);
  // The warmup fence resets every counter; the flit-conservation delta
  // check must re-baseline instead of reporting a phantom loss.
  net.stats().reset();
  step_checked(net, checker, 500);
  EXPECT_TRUE(checker.clean()) << checker.violations().front().what;
}

TEST(InvariantChecker, CleanUnderControlFaultStorm) {
  Network net(mesh(3, 3));
  traffic::install_synthetic_traffic(net, traffic::PatternKind::kUniform, 0.3, 42);
  sim::FaultInjector injector(sim::FaultPlan::uniform(0.05), /*seed=*/7);
  net.set_fault_injector(&injector);
  InvariantChecker checker(net);
  step_checked(net, checker, 2'000);
  // Faults hit only the control plane: every datapath invariant holds.
  EXPECT_TRUE(checker.clean()) << checker.violations().front().what;
}

TEST(InvariantChecker, CatchesOutOfBandFlitTheft) {
  Network net(mesh(2, 2));
  traffic::install_synthetic_traffic(net, traffic::PatternKind::kUniform, 0.4, 42);
  InvariantChecker checker(net);
  // Warm the network up until a flit sits in some input buffer (resident
  // flits may all be in flight on channels for the first few cycles).
  VcBuffer* victim = nullptr;
  for (sim::Cycle warm = 0; victim == nullptr && warm < 500; ++warm) {
    net.step();
    checker.check();
    victim = find_buffered_flit(net);
  }
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(checker.clean());
  // Steal the buffered flit behind the simulator's back.
  victim->pop();
  EXPECT_GT(checker.check(), 0u);
  EXPECT_FALSE(checker.clean());
}

TEST(InvariantChecker, CheckOrThrowReportsTheViolation) {
  Network net(mesh(2, 2));
  traffic::install_synthetic_traffic(net, traffic::PatternKind::kUniform, 0.4, 42);
  InvariantChecker checker(net);
  VcBuffer* victim = nullptr;
  for (sim::Cycle warm = 0; victim == nullptr && warm < 500; ++warm) {
    net.step();
    victim = find_buffered_flit(net);
  }
  ASSERT_NE(victim, nullptr);
  checker.check();  // baseline the census
  victim->pop();
  EXPECT_THROW(checker.check_or_throw(), std::runtime_error);
}

TEST(InvariantChecker, DetectsDeadlock) {
  Network net(mesh(2, 2, /*vcs=*/2, /*depth=*/4, /*plen=*/4));
  InvariantChecker::Options opts;
  opts.deadlock_threshold = 32;
  opts.max_violations = 1'000;
  InvariantChecker checker(net, opts);
  // Wedge the network by hand: every VC of the downstream input port that
  // router 0's East output feeds is allocated to a phantom packet that will
  // never release it, then a routed head flit waits at router 0 for a VA
  // grant that can never come. Resident flit, zero movement -> deadlock.
  const NodeId downstream = 1;  // east neighbor of router 0 in a 2x2 mesh
  auto& diu = net.router(downstream).input(Dir::West);
  for (int v = 0; v < diu.num_vcs(); ++v) diu.vc(v).allocate(/*packet=*/500 + v, 0);
  auto& iu = net.router(0).input(Dir::East);
  iu.vc(0).allocate(/*packet=*/999, net.clock().now());
  Flit head;
  head.type = FlitType::Head;
  head.packet = 999;
  head.vc = 0;
  head.dst = 3;  // far corner: XY-routes East first
  iu.vc(0).push(head);
  iu.vc(0).set_route(Dir::East);
  step_checked(net, checker, 200);
  bool deadlock_reported = false;
  for (const auto& v : checker.violations())
    if (v.what.find("deadlock") != std::string::npos) deadlock_reported = true;
  EXPECT_TRUE(deadlock_reported);
}

TEST(InvariantChecker, GatedBuffersStayEmptyUnderGating) {
  // Drive the built-in baseline-off path: gate VC1 of one port via a
  // direct command while traffic flows on VC0 — the mechanism layer must
  // never allow a flit into the gated buffer.
  Network net(mesh(2, 2));
  traffic::install_synthetic_traffic(net, traffic::PatternKind::kUniform, 0.3, 42);
  InvariantChecker checker(net);
  step_checked(net, checker, 1'000);
  EXPECT_TRUE(checker.clean()) << checker.violations().front().what;
}

}  // namespace
}  // namespace nbtinoc::noc
