#include "nbtinoc/noc/buffer.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::noc {
namespace {

Flit make_flit(FlitType type, PacketId pkt, int seq = 0) {
  Flit f;
  f.type = type;
  f.packet = pkt;
  f.seq = seq;
  return f;
}

TEST(VcBuffer, RejectsBadDepth) { EXPECT_THROW(VcBuffer(0, 0), std::invalid_argument); }

TEST(VcBuffer, StartsIdleEmptyAllocatable) {
  VcBuffer buf(4, 0);
  EXPECT_TRUE(buf.is_idle());
  EXPECT_TRUE(buf.empty());
  EXPECT_TRUE(buf.allocatable(0));
  EXPECT_TRUE(buf.is_stressed());  // powered idle = NBTI stress
}

TEST(VcBuffer, GateAndWakeLifecycle) {
  VcBuffer buf(4, 0);
  buf.gate(0);
  EXPECT_TRUE(buf.is_gated());
  EXPECT_FALSE(buf.is_stressed());  // only recovery state heals
  EXPECT_FALSE(buf.allocatable(0));
  buf.wake(5);
  EXPECT_TRUE(buf.is_idle());
  EXPECT_TRUE(buf.allocatable(5));  // zero wake-up latency
}

TEST(VcBuffer, WakeupLatencyDelaysAllocatability) {
  VcBuffer buf(4, 3);
  buf.gate(0);
  buf.wake(10);
  EXPECT_TRUE(buf.is_idle());
  EXPECT_FALSE(buf.allocatable(10));
  EXPECT_FALSE(buf.allocatable(12));
  EXPECT_TRUE(buf.allocatable(13));
}

TEST(VcBuffer, WakeWhenPoweredIsNoOp) {
  VcBuffer buf(4, 5);
  buf.wake(100);  // already idle: must NOT re-arm the wake timer
  EXPECT_TRUE(buf.allocatable(0));
}

TEST(VcBuffer, CannotGateActiveBuffer) {
  VcBuffer buf(4, 0);
  buf.allocate(1, 0);
  EXPECT_THROW(buf.gate(0), std::logic_error);
}

TEST(VcBuffer, CannotGateTwice) {
  VcBuffer buf(4, 0);
  buf.gate(0);
  EXPECT_THROW(buf.gate(0), std::logic_error);
}

TEST(VcBuffer, AllocateRequiresIdle) {
  VcBuffer buf(4, 0);
  buf.allocate(1, 0);
  EXPECT_THROW(buf.allocate(2, 0), std::logic_error);
}

TEST(VcBuffer, AllocateRequiresAwake) {
  VcBuffer buf(4, 2);
  buf.gate(0);
  EXPECT_THROW(buf.allocate(1, 0), std::logic_error);
  buf.wake(0);
  EXPECT_THROW(buf.allocate(1, 1), std::logic_error);  // still waking
  buf.allocate(1, 2);
  EXPECT_TRUE(buf.is_active());
}

TEST(VcBuffer, PushRequiresActive) {
  VcBuffer buf(4, 0);
  EXPECT_THROW(buf.push(make_flit(FlitType::Head, 1)), std::logic_error);
}

TEST(VcBuffer, PushRejectsWrongPacket) {
  VcBuffer buf(4, 0);
  buf.allocate(1, 0);
  EXPECT_THROW(buf.push(make_flit(FlitType::Head, 2)), std::logic_error);
}

TEST(VcBuffer, NoPacketMixingAfterTail) {
  VcBuffer buf(4, 0);
  buf.allocate(1, 0);
  buf.push(make_flit(FlitType::Head, 1, 0));
  buf.push(make_flit(FlitType::Tail, 1, 1));
  EXPECT_THROW(buf.push(make_flit(FlitType::Body, 1, 2)), std::logic_error);
}

TEST(VcBuffer, OverflowThrows) {
  VcBuffer buf(2, 0);
  buf.allocate(1, 0);
  buf.push(make_flit(FlitType::Head, 1, 0));
  buf.push(make_flit(FlitType::Body, 1, 1));
  EXPECT_TRUE(buf.full());
  EXPECT_THROW(buf.push(make_flit(FlitType::Body, 1, 2)), std::logic_error);
}

TEST(VcBuffer, TailDequeueFreesBuffer) {
  VcBuffer buf(4, 0);
  buf.allocate(1, 0);
  buf.push(make_flit(FlitType::Head, 1, 0));
  buf.push(make_flit(FlitType::Tail, 1, 1));
  EXPECT_EQ(buf.pop().type, FlitType::Head);
  EXPECT_TRUE(buf.is_active());  // tail still inside
  EXPECT_EQ(buf.pop().type, FlitType::Tail);
  EXPECT_TRUE(buf.is_idle());    // released
  EXPECT_TRUE(buf.empty());
  // And is reusable for a new packet.
  buf.allocate(2, 0);
  buf.push(make_flit(FlitType::HeadTail, 2, 0));
  buf.pop();
  EXPECT_TRUE(buf.is_idle());
}

TEST(VcBuffer, HeadTailSingleFlitPacket) {
  VcBuffer buf(4, 0);
  buf.allocate(9, 0);
  buf.push(make_flit(FlitType::HeadTail, 9));
  EXPECT_EQ(buf.occupancy(), 1);
  buf.pop();
  EXPECT_TRUE(buf.is_idle());
}

TEST(VcBuffer, FifoOrderPreserved) {
  VcBuffer buf(4, 0);
  buf.allocate(1, 0);
  for (int i = 0; i < 3; ++i)
    buf.push(make_flit(i == 0 ? FlitType::Head : (i == 2 ? FlitType::Tail : FlitType::Body), 1, i));
  EXPECT_EQ(buf.front().seq, 0);
  EXPECT_EQ(buf.pop().seq, 0);
  EXPECT_EQ(buf.pop().seq, 1);
  EXPECT_EQ(buf.pop().seq, 2);
}

TEST(VcBuffer, PopEmptyThrows) {
  VcBuffer buf(4, 0);
  EXPECT_THROW(buf.pop(), std::logic_error);
  EXPECT_THROW(buf.front(), std::logic_error);
}

TEST(VcBuffer, GateTransitionsCounted) {
  VcBuffer buf(4, 0);
  EXPECT_EQ(buf.gate_transitions(), 0u);
  buf.gate(0);
  buf.wake(1);
  buf.gate(0);
  buf.wake(2);
  EXPECT_EQ(buf.gate_transitions(), 2u);
  // wake() alone never counts.
  buf.wake(3);
  EXPECT_EQ(buf.gate_transitions(), 2u);
}

TEST(VcBuffer, AttachedTrackerSeesTransitions) {
  nbti::StressTracker tracker;
  VcBuffer buf(4, 0);
  buf.attach_stress_tracker(&tracker);
  buf.gate(10);      // cycles [0,10) elapsed powered -> stress
  buf.wake(25);      // cycles [10,25) elapsed gated -> recovery
  tracker.sync(30);  // cycles [25,30) powered again
  EXPECT_EQ(tracker.stress_cycles(), 15u);
  EXPECT_EQ(tracker.recovery_cycles(), 15u);
}

TEST(VcBuffer, NoTrackerAttachedIsFine) {
  VcBuffer buf(4, 0);
  buf.gate(5);
  buf.wake(9);
  EXPECT_TRUE(buf.is_idle());
}

TEST(VcBuffer, RouteRoundTrip) {
  VcBuffer buf(4, 0);
  buf.set_route(Dir::West);
  EXPECT_EQ(buf.route(), Dir::West);
}

}  // namespace
}  // namespace nbtinoc::noc
