#include "nbtinoc/noc/network.hpp"

#include <gtest/gtest.h>

#include "nbtinoc/traffic/synthetic.hpp"

namespace nbtinoc::noc {
namespace {

NocConfig mesh(int w, int h, int vcs = 2, int depth = 4, int plen = 4) {
  NocConfig c;
  c.width = w;
  c.height = h;
  c.num_vcs = vcs;
  c.buffer_depth = depth;
  c.packet_length = plen;
  return c;
}

/// Emits a fixed list of (cycle, dst, length) packets.
class ScriptedSource final : public ITrafficSource {
 public:
  explicit ScriptedSource(std::vector<std::tuple<sim::Cycle, NodeId, int>> script)
      : script_(std::move(script)) {}
  std::optional<PacketRequest> maybe_generate(sim::Cycle now) override {
    if (next_ < script_.size() && std::get<0>(script_[next_]) == now) {
      const auto& [cycle, dst, len] = script_[next_++];
      return PacketRequest{dst, len};
    }
    return std::nullopt;
  }

 private:
  std::vector<std::tuple<sim::Cycle, NodeId, int>> script_;
  std::size_t next_ = 0;
};

TEST(Network, TopologyPortsExistOnlyWhereNeighborsExist) {
  Network net(mesh(4, 4));
  // Corner router 0: inputs from East, South neighbors + Local.
  EXPECT_FALSE(net.router(0).has_input(Dir::North));
  EXPECT_FALSE(net.router(0).has_input(Dir::West));
  EXPECT_TRUE(net.router(0).has_input(Dir::East));
  EXPECT_TRUE(net.router(0).has_input(Dir::South));
  EXPECT_TRUE(net.router(0).has_input(Dir::Local));
  // Center router 5: all five.
  for (int p = 0; p < kNumDirs; ++p) EXPECT_TRUE(net.router(5).has_input(static_cast<Dir>(p)));
}

TEST(Network, SinglePacketDeliveredWithPipelineLatency) {
  Network net(mesh(2, 2));
  // One 4-flit packet node 0 -> node 1 (single hop east), injected at cycle 5.
  net.set_traffic_source(0, std::make_unique<ScriptedSource>(
                                std::vector<std::tuple<sim::Cycle, NodeId, int>>{{5, 1, 4}}));
  net.run(60);
  EXPECT_EQ(net.stats().counter("noc.packets_ejected"), 1u);
  EXPECT_EQ(net.stats().counter("noc.flits_ejected"), 4u);
  EXPECT_TRUE(net.drained());
  const auto* lat = net.stats().distribution("noc.packet_latency");
  ASSERT_NE(lat, nullptr);
  // NI(VA+send) + inject link + router pipeline x2 routers + eject link +
  // 3 extra serialization cycles for the 3 trailing flits: small constant.
  EXPECT_GE(lat->mean(), 10.0);
  EXPECT_LE(lat->mean(), 20.0);
}

TEST(Network, MultiHopLatencyGrowsLinearly) {
  Network net4(mesh(4, 1));
  net4.set_traffic_source(0, std::make_unique<ScriptedSource>(
                                 std::vector<std::tuple<sim::Cycle, NodeId, int>>{{5, 3, 4}}));
  net4.run(100);
  const double lat3hops = net4.stats().distribution("noc.packet_latency")->mean();

  Network net2(mesh(2, 1));
  net2.set_traffic_source(0, std::make_unique<ScriptedSource>(
                                 std::vector<std::tuple<sim::Cycle, NodeId, int>>{{5, 1, 4}}));
  net2.run(100);
  const double lat1hop = net2.stats().distribution("noc.packet_latency")->mean();

  // Each extra hop costs the 3-stage pipeline depth.
  EXPECT_NEAR(lat3hops - lat1hop, 6.0, 0.5);
}

TEST(Network, ExtraPipelineStagesAddPerHopLatency) {
  // 3-stage (default) vs 5-stage router: each extra stage costs one cycle
  // per hop on every flit.
  const auto latency_with = [](int extra) {
    NocConfig c = mesh(2, 1);
    c.extra_pipeline_stages = extra;
    Network net(c);
    net.set_traffic_source(0, std::make_unique<ScriptedSource>(
                                  std::vector<std::tuple<sim::Cycle, NodeId, int>>{{5, 1, 4}}));
    net.run(100);
    return net.stats().distribution("noc.packet_latency")->mean();
  };
  const double base = latency_with(0);
  // 2 routers on the path (source + destination), 2 extra stages each.
  EXPECT_NEAR(latency_with(2) - base, 4.0, 0.5);
}

TEST(Network, FlitConservationUnderLoad) {
  Network net(mesh(4, 4, 2));
  traffic::install_uniform_traffic(net, 0.1, 1234);
  net.run(20'000);
  // Stop generation and drain.
  for (NodeId id = 0; id < net.nodes(); ++id)
    net.set_traffic_source(id, std::make_unique<SilentSource>());
  sim::Cycle guard = 0;
  while (!net.drained() && guard++ < 200'000) net.step();
  bool queues_empty = true;
  for (NodeId id = 0; id < net.nodes(); ++id) queues_empty &= net.ni(id).queue_depth() == 0;
  EXPECT_TRUE(net.drained());
  EXPECT_TRUE(queues_empty);
  EXPECT_EQ(net.stats().counter("noc.flits_injected"), net.stats().counter("noc.flits_ejected"));
}

TEST(Network, PacketsArriveAtCorrectDestination) {
  // dst checking is implicit (ejection only at route Local == dst), but
  // verify each NI ejects exactly the packets addressed to it.
  Network net(mesh(2, 2));
  net.set_traffic_source(
      0, std::make_unique<ScriptedSource>(std::vector<std::tuple<sim::Cycle, NodeId, int>>{
             {5, 3, 4}, {30, 2, 4}, {60, 1, 4}}));
  net.run(200);
  EXPECT_EQ(net.stats().counter("noc.packets_ejected"), 3u);
  EXPECT_EQ(net.ni(0).packets_ejected(), 0u);
  EXPECT_EQ(net.ni(1).packets_ejected(), 1u);
  EXPECT_EQ(net.ni(2).packets_ejected(), 1u);
  EXPECT_EQ(net.ni(3).packets_ejected(), 1u);
}

TEST(Network, BaselineDutyIsHundredPercentEverywhere) {
  Network net(mesh(2, 2, 2));
  traffic::install_uniform_traffic(net, 0.2, 99);
  net.run_with_warmup(1000, 5000);
  for (NodeId id = 0; id < net.nodes(); ++id) {
    for (int p = 0; p < kNumDirs; ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!net.router(id).has_input(port)) continue;
      for (double duty : net.duty_cycles_percent(id, port)) EXPECT_DOUBLE_EQ(duty, 100.0);
    }
  }
}

TEST(Network, WarmupFenceExcludesWarmupCycles) {
  Network net(mesh(2, 2, 2));
  net.run_with_warmup(1000, 500);
  const auto& tracker = net.router(0).input(Dir::Local).trackers().at(0);
  EXPECT_EQ(tracker.total_cycles(), 500u);
}

TEST(Network, DutyCyclesForMissingPortThrows) {
  Network net(mesh(2, 2));
  EXPECT_THROW(net.duty_cycles_percent(0, Dir::North), std::invalid_argument);
}

TEST(Network, ZeroLoadStaysDrained) {
  Network net(mesh(2, 2));
  net.run(1000);
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.stats().counter("noc.flits_injected"), 0u);
}

TEST(Network, RejectsInvalidConfig) {
  EXPECT_THROW(Network{mesh(1, 1)}, std::invalid_argument);
  NocConfig c = mesh(2, 2);
  c.num_vcs = 0;
  EXPECT_THROW(Network{c}, std::invalid_argument);
}

TEST(Network, SaturationStillConservesFlits) {
  // Offered load far beyond capacity: queues grow but nothing is lost.
  Network net(mesh(2, 2, 2, 2, 4));
  traffic::install_uniform_traffic(net, 0.9, 5);
  net.run(5'000);
  const auto injected = net.stats().counter("noc.flits_injected");
  const auto ejected = net.stats().counter("noc.flits_ejected");
  EXPECT_GT(injected, 1000u);
  EXPECT_LE(ejected, injected);
  // Everything injected is either ejected or still buffered/in flight.
  for (NodeId id = 0; id < net.nodes(); ++id)
    net.set_traffic_source(id, std::make_unique<SilentSource>());
  sim::Cycle guard = 0;
  while (!net.drained() && guard++ < 500'000) net.step();
  EXPECT_EQ(net.stats().counter("noc.flits_injected"), net.stats().counter("noc.flits_ejected"));
}

TEST(Network, LongPacketsWormholeThroughShallowBuffers) {
  // packet length 9 > buffer depth 2: wormhole must stream without deadlock.
  Network net(mesh(2, 2, 2, 2, 9));
  net.set_traffic_source(0, std::make_unique<ScriptedSource>(
                                std::vector<std::tuple<sim::Cycle, NodeId, int>>{{5, 3, 9}}));
  net.run(300);
  EXPECT_EQ(net.stats().counter("noc.packets_ejected"), 1u);
  EXPECT_EQ(net.stats().counter("noc.flits_ejected"), 9u);
}

}  // namespace
}  // namespace nbtinoc::noc
