#include "nbtinoc/noc/state_probe.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nbtinoc/util/csv.hpp"

namespace nbtinoc::noc {
namespace {

NocConfig mesh() {
  NocConfig c;
  c.width = 2;
  c.height = 2;
  c.num_vcs = 2;
  return c;
}

TEST(PortStateProbe, RejectsMissingPort) {
  Network net(mesh());
  EXPECT_THROW(PortStateProbe(net, {0, Dir::West}), std::invalid_argument);
}

TEST(PortStateProbe, SamplesCurrentStates) {
  Network net(mesh());
  PortStateProbe probe(net, {0, Dir::East});
  probe.sample();
  net.router(0).input(Dir::East).vc(0).gate(net.clock().now());
  net.router(0).input(Dir::East).vc(1).allocate(1, 0);
  net.step();
  probe.sample();
  ASSERT_EQ(probe.records().size(), 2u);
  EXPECT_EQ(probe.records()[0].states, "II");
  // After the step the baseline controller woke VC0 again; VC1 stays active.
  EXPECT_EQ(probe.records()[1].states, "IA");
  EXPECT_EQ(probe.records()[1].cycle, 1u);
}

TEST(PortStateProbe, SharesSumToOne) {
  Network net(mesh());
  PortStateProbe probe(net, {0, Dir::East});
  net.router(0).input(Dir::East).vc(0).gate(net.clock().now());
  for (int i = 0; i < 10; ++i) probe.sample();  // no stepping: states frozen
  const auto sh = probe.shares(0);
  EXPECT_DOUBLE_EQ(sh.recovery, 1.0);
  EXPECT_DOUBLE_EQ(sh.idle + sh.active + sh.recovery, 1.0);
  const auto sh1 = probe.shares(1);
  EXPECT_DOUBLE_EQ(sh1.idle, 1.0);
}

TEST(PortStateProbe, SharesEmptyOrOutOfRangeAreZero) {
  Network net(mesh());
  PortStateProbe probe(net, {0, Dir::East});
  EXPECT_DOUBLE_EQ(probe.shares(0).idle, 0.0);
  probe.sample();
  EXPECT_DOUBLE_EQ(probe.shares(7).idle, 0.0);
}

TEST(PortStateProbe, AsciiTimelineShape) {
  Network net(mesh());
  PortStateProbe probe(net, {0, Dir::East});
  for (int i = 0; i < 25; ++i) probe.sample();
  const std::string grid = probe.ascii_timeline(25);
  // Two VC rows; 25 columns grouped in blocks of 10 => 2 spaces inserted.
  EXPECT_NE(grid.find("VC0 "), std::string::npos);
  EXPECT_NE(grid.find("VC1 "), std::string::npos);
  EXPECT_NE(grid.find("IIIIIIIIII IIIIIIIIII IIIII"), std::string::npos);
}

TEST(PortStateProbe, AsciiTimelineTruncatesToWindow) {
  Network net(mesh());
  PortStateProbe probe(net, {0, Dir::East});
  for (int i = 0; i < 100; ++i) probe.sample();
  const std::string grid = probe.ascii_timeline(10);
  // Each row: "VCn " + 10 chars + newline.
  EXPECT_EQ(grid, "VC0 IIIIIIIIII\nVC1 IIIIIIIIII\n");
}

TEST(PortStateProbe, CsvRoundTrip) {
  Network net(mesh());
  PortStateProbe probe(net, {0, Dir::East});
  net.router(0).input(Dir::East).vc(1).gate(net.clock().now());
  probe.sample();
  const std::string path = std::filesystem::temp_directory_path() / "nbtinoc_probe.csv";
  probe.save_csv(path);
  const auto rows = util::read_csv(path);
  ASSERT_EQ(rows.size(), 2u);  // header + 1 sample
  EXPECT_EQ(rows[0][0], "cycle");
  EXPECT_EQ(rows[1][1], "I");
  EXPECT_EQ(rows[1][2], "R");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nbtinoc::noc
