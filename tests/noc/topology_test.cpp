// Topology-layer tests: the route table must be *exhaustively* correct —
// every (src, dst) pair on every topology walks to its destination in
// exactly the minimal hop count — and the torus/ring dateline scheme must
// make the channel-dependency graph acyclic (the structural proof that the
// wrap links cannot deadlock).

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "nbtinoc/noc/routing.hpp"
#include "nbtinoc/noc/topology.hpp"
#include "nbtinoc/sim/scenario.hpp"

namespace nbtinoc::noc {
namespace {

struct TopoCase {
  const char* topology;
  int width;
  int height;
  int concentration;
  RoutingAlgo routing;
};

std::string PrintToString(const TopoCase& tc) {
  std::string s = std::string(tc.topology) + "_" + std::to_string(tc.width) + "x" +
                  std::to_string(tc.height);
  if (tc.concentration != 1) s += "_c" + std::to_string(tc.concentration);
  s += tc.routing == RoutingAlgo::kXY ? "_XY" : "_YX";
  return s;
}

NocConfig config_of(const TopoCase& tc) {
  NocConfig c;
  c.width = tc.width;
  c.height = tc.height;
  c.topology = parse_topology_kind(tc.topology);
  c.concentration = tc.concentration;
  c.num_vcs = 2;  // >= vc_classes() on every topology
  c.routing = tc.routing;
  c.validate();
  return c;
}

// The size grid: every topology over several shapes, both DOR orders where
// the order matters (the ring routes in one dimension).
const TopoCase kCases[] = {
    {"mesh", 2, 2, 1, RoutingAlgo::kXY},  {"mesh", 4, 4, 1, RoutingAlgo::kXY},
    {"mesh", 3, 5, 1, RoutingAlgo::kYX},  {"mesh", 5, 3, 1, RoutingAlgo::kXY},
    {"mesh", 1, 4, 1, RoutingAlgo::kXY},  {"mesh", 4, 1, 1, RoutingAlgo::kYX},
    {"torus", 2, 2, 1, RoutingAlgo::kXY}, {"torus", 4, 4, 1, RoutingAlgo::kXY},
    {"torus", 4, 4, 1, RoutingAlgo::kYX}, {"torus", 3, 3, 1, RoutingAlgo::kXY},
    {"torus", 2, 5, 1, RoutingAlgo::kXY}, {"torus", 5, 2, 1, RoutingAlgo::kYX},
    {"ring", 2, 1, 1, RoutingAlgo::kXY},  {"ring", 3, 1, 1, RoutingAlgo::kXY},
    {"ring", 4, 2, 1, RoutingAlgo::kXY},  {"ring", 4, 4, 1, RoutingAlgo::kXY},
    {"cmesh", 4, 4, 2, RoutingAlgo::kXY}, {"cmesh", 4, 4, 2, RoutingAlgo::kYX},
    {"cmesh", 4, 2, 4, RoutingAlgo::kXY}, {"cmesh", 6, 3, 3, RoutingAlgo::kXY},
    {"cmesh", 4, 4, 1, RoutingAlgo::kXY},
};

class TopologyTest : public ::testing::TestWithParam<TopoCase> {};

// Every (src, dst) pair: following the route table from src's router must
// reach dst's router in exactly hop_distance() hops and eject through the
// local port wired to dst — no livelock, no misroute, on any topology.
TEST_P(TopologyTest, RouteTableWalksEveryPairToItsDestination) {
  const NocConfig config = config_of(GetParam());
  const auto topo = Topology::create(config);
  const int classes = topo->num_vc_classes();
  for (NodeId src = 0; src < topo->num_terminals(); ++src) {
    for (NodeId dst = 0; dst < topo->num_terminals(); ++dst) {
      const int bound = topo->hop_distance(src, dst);
      NodeId r = topo->router_of(src);
      int hops = 0;
      while (true) {
        const RouteEntry entry = topo->route(r, dst);
        ASSERT_GE(entry.vc_class, 0);
        ASSERT_LT(entry.vc_class, classes);
        if (is_local(entry.dir())) {
          EXPECT_EQ(topo->terminal_of(r, local_slot(entry.dir())), dst)
              << "src " << src << " ejected at the wrong terminal";
          break;
        }
        const NodeId next = topo->neighbor(r, entry.dir());
        ASSERT_NE(next, kInvalidNode)
            << "route at router " << r << " for dst " << dst << " exits an unwired port";
        r = next;
        ASSERT_LE(++hops, bound) << "src " << src << " -> dst " << dst << " overshoots";
      }
      EXPECT_EQ(hops, bound) << "src " << src << " -> dst " << dst << " is not minimal";
      const int icls = topo->inject_class(src, dst);
      EXPECT_GE(icls, 0);
      EXPECT_LT(icls, classes);
    }
  }
}

// Structural deadlock-freedom: the channel-dependency graph over
// (router, input port, dateline class) VCs, with edges added for every hop
// transition any (src, dst) walk makes, must be acyclic.
TEST_P(TopologyTest, ChannelDependencyGraphIsAcyclic) {
  const NocConfig config = config_of(GetParam());
  const auto topo = Topology::create(config);
  const int P = topo->ports_per_router();
  const int C = topo->num_vc_classes();
  const auto vc_node = [&](NodeId router, Dir in_port, int cls) {
    return (router * P + static_cast<int>(in_port)) * C + cls;
  };
  const int num_nodes = topo->num_routers() * P * C;
  std::vector<std::vector<int>> edges(static_cast<std::size_t>(num_nodes));

  for (NodeId src = 0; src < topo->num_terminals(); ++src) {
    for (NodeId dst = 0; dst < topo->num_terminals(); ++dst) {
      NodeId r = topo->router_of(src);
      // The injected packet first occupies src's local-input VC.
      int holder = vc_node(r, topo->local_port_of(src), topo->inject_class(src, dst));
      while (true) {
        const RouteEntry entry = topo->route(r, dst);
        if (is_local(entry.dir())) break;  // ejection consumes; no dependency
        const NodeId next = topo->neighbor(r, entry.dir());
        const int downstream = vc_node(next, opposite(entry.dir()), entry.vc_class);
        edges[static_cast<std::size_t>(holder)].push_back(downstream);
        holder = downstream;
        r = next;
      }
    }
  }

  // Iterative three-color DFS cycle detection.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(static_cast<std::size_t>(num_nodes), kWhite);
  for (int start = 0; start < num_nodes; ++start) {
    if (color[static_cast<std::size_t>(start)] != kWhite) continue;
    std::vector<std::pair<int, std::size_t>> stack{{start, 0}};
    color[static_cast<std::size_t>(start)] = kGray;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto& out = edges[static_cast<std::size_t>(node)];
      if (idx == out.size()) {
        color[static_cast<std::size_t>(node)] = kBlack;
        stack.pop_back();
        continue;
      }
      const int next = out[idx++];
      ASSERT_NE(color[static_cast<std::size_t>(next)], kGray)
          << "channel-dependency cycle through VC node " << next;
      if (color[static_cast<std::size_t>(next)] == kWhite) {
        color[static_cast<std::size_t>(next)] = kGray;
        stack.emplace_back(next, 0);
      }
    }
  }
}

// Wiring sanity: every wired cardinal port is symmetric — the neighbor's
// opposite port faces back — even on the width-2 torus, where East and West
// reach the *same* neighbor over two distinct physical channels.
TEST_P(TopologyTest, NeighborMapIsSymmetric) {
  const NocConfig config = config_of(GetParam());
  const auto topo = Topology::create(config);
  for (NodeId r = 0; r < topo->num_routers(); ++r) {
    for (int d = 0; d < 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const NodeId nb = topo->neighbor(r, dir);
      if (nb == kInvalidNode) continue;
      EXPECT_EQ(topo->neighbor(nb, opposite(dir)), r)
          << "router " << r << " port " << to_string(dir);
    }
  }
}

// Terminal <-> router mapping round-trips on every topology (identity when
// concentration == 1).
TEST_P(TopologyTest, TerminalRouterMappingRoundTrips) {
  const NocConfig config = config_of(GetParam());
  const auto topo = Topology::create(config);
  for (NodeId t = 0; t < topo->num_terminals(); ++t) {
    const NodeId r = topo->router_of(t);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, topo->num_routers());
    EXPECT_EQ(topo->terminal_of(r, topo->local_slot_of(t)), t);
    EXPECT_EQ(local_slot(topo->local_port_of(t)), topo->local_slot_of(t));
  }
}

INSTANTIATE_TEST_SUITE_P(SizeGrid, TopologyTest, ::testing::ValuesIn(kCases),
                         [](const auto& info) { return PrintToString(info.param); });

// The mesh table is a *cache* of route_compute(): byte-for-byte agreement
// with the legacy arithmetic on every (router, dst) pair is what keeps all
// pre-topology golden results bit-identical.
TEST(TopologyMeshTest, MeshTableMatchesArithmetic) {
  for (const auto routing : {RoutingAlgo::kXY, RoutingAlgo::kYX}) {
    for (const auto [w, h] : {std::pair{2, 2}, {4, 4}, {3, 5}, {1, 6}}) {
      NocConfig config;
      config.width = w;
      config.height = h;
      config.routing = routing;
      const auto topo = Topology::create(config);
      ASSERT_EQ(topo->num_vc_classes(), 1);
      for (NodeId r = 0; r < config.nodes(); ++r) {
        for (int d = 0; d < 4; ++d)
          EXPECT_EQ(topo->neighbor(r, static_cast<Dir>(d)),
                    neighbor_of(r, static_cast<Dir>(d), w, h));
        for (NodeId t = 0; t < config.nodes(); ++t) {
          const RouteEntry entry = topo->route(r, t);
          EXPECT_EQ(entry.dir(), route_compute(r, t, config));
          EXPECT_EQ(entry.vc_class, 0);
          EXPECT_EQ(topo->inject_class(r, t), 0);
        }
      }
    }
  }
}

// The downstream class stored in a route entry refers to the *incoming*
// link's dimension (Dally-Seitz). Wherever the downstream router keeps
// traveling in that same dimension, it must agree with the class the
// downstream router computes for its own next hop — the consistency that
// lets a walk's classes be monotone within a dimension.
TEST(TopologyClassTest, RouteEntryClassMatchesDownstreamWithinADimension) {
  const auto x_dim = [](Dir d) { return d == Dir::East || d == Dir::West; };
  for (const char* name : {"torus", "ring"}) {
    NocConfig config;
    config.width = 4;
    config.height = 4;
    config.topology = parse_topology_kind(name);
    config.num_vcs = 2;
    const auto topo = Topology::create(config);
    for (NodeId r = 0; r < topo->num_routers(); ++r) {
      for (NodeId t = 0; t < topo->num_terminals(); ++t) {
        const RouteEntry entry = topo->route(r, t);
        if (is_local(entry.dir())) continue;
        const NodeId next = topo->neighbor(r, entry.dir());
        const RouteEntry downstream = topo->route(next, t);
        if (is_local(downstream.dir()) || x_dim(downstream.dir()) != x_dim(entry.dir()))
          continue;  // turn or ejection: the class dimension changes
        EXPECT_EQ(entry.vc_class, topo->inject_class(next, t))
            << name << " r" << r << " -> t" << t;
      }
    }
  }
}

// --- configuration validation -----------------------------------------------

TEST(TopologyConfigTest, ParseRejectsUnknownNames) {
  EXPECT_THROW(parse_topology_kind("hypercube"), std::invalid_argument);
  EXPECT_EQ(parse_topology_kind("mesh"), TopologyKind::kMesh2D);
  EXPECT_EQ(to_string(TopologyKind::kConcentratedMesh), "cmesh");
}

TEST(TopologyConfigTest, ValidateRejectsImpossibleCombinations) {
  NocConfig torus;
  torus.width = 4;
  torus.height = 4;
  torus.topology = TopologyKind::kTorus2D;
  torus.num_vcs = 1;  // dateline classes need two
  EXPECT_THROW(torus.validate(), std::invalid_argument);
  torus.num_vcs = 2;
  EXPECT_NO_THROW(torus.validate());
  torus.width = 1;  // wrap link would be a self-loop
  EXPECT_THROW(torus.validate(), std::invalid_argument);

  NocConfig cmesh;
  cmesh.width = 4;
  cmesh.height = 4;
  cmesh.topology = TopologyKind::kConcentratedMesh;
  cmesh.concentration = 3;  // does not divide the row
  EXPECT_THROW(cmesh.validate(), std::invalid_argument);
  cmesh.concentration = 2;
  EXPECT_NO_THROW(cmesh.validate());

  NocConfig mesh;
  mesh.width = 4;
  mesh.height = 4;
  mesh.concentration = 2;  // concentration is cmesh-only
  EXPECT_THROW(mesh.validate(), std::invalid_argument);
}

TEST(TopologyConfigTest, ScenarioPropertiesLearnTopology) {
  std::map<std::string, std::string> props{{"mesh_width", "4"},
                                           {"mesh_height", "4"},
                                           {"topology", "torus"},
                                           {"num_vcs", "2"}};
  const sim::Scenario s = sim::scenario_from_properties(props);
  EXPECT_EQ(s.topology, "torus");
  EXPECT_NE(s.describe().find("2D-torus"), std::string::npos);

  props["num_vcs"] = "1";
  EXPECT_THROW(sim::scenario_from_properties(props), std::invalid_argument);

  props["num_vcs"] = "2";
  props["topology"] = "hypercube";
  EXPECT_THROW(sim::scenario_from_properties(props), std::invalid_argument);

  props["topology"] = "cmesh";
  props["concentration"] = "2";
  const sim::Scenario cm = sim::scenario_from_properties(props);
  EXPECT_EQ(cm.concentration, 2);
  props["concentration"] = "3";
  EXPECT_THROW(sim::scenario_from_properties(props), std::invalid_argument);
}

// Seeds stay byte-identical on the mesh and diverge per topology, so each
// topology samples its own silicon while golden mesh results never move.
TEST(TopologyConfigTest, SeedsTagNonMeshTopologiesOnly) {
  sim::Scenario mesh = sim::Scenario::synthetic(4, 2, 0.1);
  sim::Scenario torus = mesh;
  torus.topology = "torus";
  sim::Scenario ring = mesh;
  ring.topology = "ring";
  EXPECT_NE(mesh.pv_seed(), torus.pv_seed());
  EXPECT_NE(torus.pv_seed(), ring.pv_seed());
  EXPECT_NE(mesh.traffic_seed(), torus.traffic_seed());
}

}  // namespace
}  // namespace nbtinoc::noc
