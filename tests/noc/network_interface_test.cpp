// Direct unit tests of the NI: VA for the local input port, credit-paced
// serialization, ejection accounting, and its role as upstream policy input.

#include "nbtinoc/noc/network_interface.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::noc {
namespace {

NocConfig config(int vcs = 2, int depth = 4) {
  NocConfig c;
  c.width = 2;
  c.height = 1;
  c.num_vcs = vcs;
  c.buffer_depth = depth;
  c.packet_length = 4;
  return c;
}

class OneShotSource final : public ITrafficSource {
 public:
  OneShotSource(sim::Cycle when, NodeId dst, int length)
      : when_(when), dst_(dst), length_(length) {}
  std::optional<PacketRequest> maybe_generate(sim::Cycle now) override {
    if (fired_ || now != when_) return std::nullopt;
    fired_ = true;
    return PacketRequest{dst_, length_};
  }

 private:
  sim::Cycle when_;
  NodeId dst_;
  int length_;
  bool fired_ = false;
};

struct NiRig {
  NocConfig cfg = config();
  sim::StatRegistry stats;
  InputUnit local_iu{Dir::Local, cfg};
  Channel<Flit> inject{NocConfig::kLinkDelay};
  Channel<Credit> credit{NocConfig::kCreditDelay};
  Channel<Flit> eject{NocConfig::kLinkDelay};
  NetworkInterface ni{0, cfg, stats};
  std::uint64_t packet_ids = 0;

  NiRig() { ni.wire(&local_iu, &inject, &credit, &eject); }

  void cycle(sim::Cycle now) {
    ni.receive(now);
    ni.inject(now, packet_ids);
    ni.generate(now);
  }
};

TEST(NetworkInterface, GeneratesIntoQueue) {
  NiRig rig;
  OneShotSource src(3, 1, 4);
  rig.ni.set_traffic_source(&src);
  for (sim::Cycle t = 0; t < 3; ++t) rig.cycle(t);
  EXPECT_EQ(rig.ni.queue_depth(), 0u);
  rig.cycle(3);
  EXPECT_EQ(rig.ni.queue_depth(), 1u);
  EXPECT_EQ(rig.stats.counter("noc.packets_offered"), 1u);
}

TEST(NetworkInterface, NewTrafficAssertsUntilVaGrant) {
  NiRig rig;
  OneShotSource src(3, 1, 4);
  rig.ni.set_traffic_source(&src);
  for (sim::Cycle t = 0; t <= 3; ++t) rig.cycle(t);
  // Packet generated at 3: visible as new traffic from cycle 4 on.
  EXPECT_FALSE(rig.ni.has_new_traffic(3));
  EXPECT_TRUE(rig.ni.has_new_traffic(4));
  rig.cycle(4);  // VA grants and serialization starts
  EXPECT_FALSE(rig.ni.has_new_traffic(5));
}

TEST(NetworkInterface, AllocatesAnAwakeVcAndMarksItActive) {
  NiRig rig;
  OneShotSource src(0, 1, 4);
  rig.ni.set_traffic_source(&src);
  rig.local_iu.vc(0).gate(0);  // only VC1 is allocatable
  rig.cycle(0);
  rig.cycle(1);
  EXPECT_TRUE(rig.local_iu.vc(0).is_gated());
  EXPECT_TRUE(rig.local_iu.vc(1).is_active());
  EXPECT_EQ(rig.stats.counter("noc.ni_va_grants"), 1u);
}

TEST(NetworkInterface, StallsWhenEveryVcIsGated) {
  NiRig rig;
  OneShotSource src(0, 1, 4);
  rig.ni.set_traffic_source(&src);
  rig.local_iu.vc(0).gate(0);
  rig.local_iu.vc(1).gate(0);
  for (sim::Cycle t = 0; t < 10; ++t) rig.cycle(t);
  EXPECT_EQ(rig.ni.queue_depth(), 1u);
  EXPECT_EQ(rig.ni.flits_injected(), 0u);
  // Waking one unblocks injection.
  rig.local_iu.vc(1).wake(10);
  rig.cycle(11);
  EXPECT_EQ(rig.ni.queue_depth(), 0u);
  EXPECT_GT(rig.ni.flits_injected(), 0u);
}

TEST(NetworkInterface, SerializesOneFlitPerCycleWithCorrectTypes) {
  NiRig rig;
  OneShotSource src(0, 1, 4);
  rig.ni.set_traffic_source(&src);
  for (sim::Cycle t = 0; t <= 5; ++t) rig.cycle(t);
  EXPECT_EQ(rig.ni.flits_injected(), 4u);
  std::vector<Flit> sent;
  for (sim::Cycle t = 0; t < 20; ++t)
    while (auto f = rig.inject.pop_ready(t)) sent.push_back(*f);
  ASSERT_EQ(sent.size(), 4u);
  EXPECT_EQ(sent[0].type, FlitType::Head);
  EXPECT_EQ(sent[1].type, FlitType::Body);
  EXPECT_EQ(sent[2].type, FlitType::Body);
  EXPECT_EQ(sent[3].type, FlitType::Tail);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sent[static_cast<std::size_t>(i)].seq, i);
    EXPECT_EQ(sent[static_cast<std::size_t>(i)].vc, sent[0].vc);
    EXPECT_EQ(sent[static_cast<std::size_t>(i)].packet, sent[0].packet);
  }
}

TEST(NetworkInterface, SingleFlitPacketIsHeadTail) {
  NiRig rig;
  OneShotSource src(0, 1, 1);
  rig.ni.set_traffic_source(&src);
  for (sim::Cycle t = 0; t <= 2; ++t) rig.cycle(t);
  auto f = rig.inject.pop_ready(10);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FlitType::HeadTail);
}

TEST(NetworkInterface, RespectsCredits) {
  NiRig rig;  // depth 4, packet 4: all flits go out without credit return
  OneShotSource src(0, 1, 4);
  rig.ni.set_traffic_source(&src);
  for (sim::Cycle t = 0; t <= 8; ++t) rig.cycle(t);
  EXPECT_EQ(rig.ni.flits_injected(), 4u);

  // Second rig with depth 2: only 2 flits leave until credits return.
  NiRig tight;
  tight.cfg = config(2, 2);
  // Rebuild with the tighter config.
  InputUnit iu(Dir::Local, tight.cfg);
  NetworkInterface ni(0, tight.cfg, tight.stats);
  ni.wire(&iu, &tight.inject, &tight.credit, &tight.eject);
  OneShotSource src2(0, 1, 4);
  ni.set_traffic_source(&src2);
  std::uint64_t ids = 0;
  for (sim::Cycle t = 0; t <= 6; ++t) {
    ni.receive(t);
    ni.inject(t, ids);
    ni.generate(t);
  }
  EXPECT_EQ(ni.flits_injected(), 2u);
  // Return one credit: one more flit goes.
  tight.credit.push(Credit{0, false}, 6);
  for (sim::Cycle t = 7; t <= 9; ++t) {
    ni.receive(t);
    ni.inject(t, ids);
  }
  EXPECT_EQ(ni.flits_injected(), 3u);
}

TEST(NetworkInterface, EjectionCountsAndLatency) {
  NiRig rig;
  Flit tail;
  tail.type = FlitType::Tail;
  tail.injected_at = 10;
  rig.eject.push(tail, 20);  // arrives at 22
  rig.cycle(22);
  EXPECT_EQ(rig.ni.packets_ejected(), 1u);
  const auto* lat = rig.stats.distribution("noc.packet_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->mean(), 12.0);
}

TEST(NetworkInterface, DropsSelfTraffic) {
  NiRig rig;
  OneShotSource src(0, /*dst=self*/ 0, 4);
  rig.ni.set_traffic_source(&src);
  for (sim::Cycle t = 0; t < 5; ++t) rig.cycle(t);
  EXPECT_EQ(rig.ni.queue_depth(), 0u);
  EXPECT_EQ(rig.stats.counter("noc.packets_offered"), 0u);
}

TEST(NetworkInterface, CreditOverflowThrows) {
  NiRig rig;
  // More credits than buffer depth is a protocol violation.
  for (int i = 0; i < 5; ++i) rig.credit.push(Credit{0, false}, 0);
  EXPECT_THROW(rig.ni.receive(NocConfig::kCreditDelay), std::logic_error);
}

}  // namespace
}  // namespace nbtinoc::noc
