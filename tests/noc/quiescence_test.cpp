// The fast-forward engine's safety net: Network::quiescent() may only say
// "yes" when repeating step() until the next external event provably does
// nothing. These tests pin the three ways the ISSUE requires it to say
// "no" — an in-flight flit, a pending wake-up, a scheduled fault — plus the
// positive cases (idle baseline mesh, all-gated policy fixed point), the
// per-source next_event_cycle contracts, and the end-to-end guarantee that
// fast-forwarded runs are bit-identical to stepped ones.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "nbtinoc/core/controller.hpp"
#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/sim/event_horizon.hpp"
#include "nbtinoc/sim/fault_plan.hpp"
#include "nbtinoc/traffic/synthetic.hpp"
#include "nbtinoc/traffic/trace.hpp"

namespace nbtinoc::noc {
namespace {

NocConfig mesh(int width, int vcs = 2) {
  NocConfig c;
  c.width = width;
  c.height = width;
  c.num_vcs = vcs;
  c.buffer_depth = 4;
  c.packet_length = 4;
  return c;
}

/// Emits exactly one packet at a scheduled cycle, then goes silent.
class OneShotSource final : public ITrafficSource {
 public:
  OneShotSource(sim::Cycle when, NodeId dst) : when_(when), dst_(dst) {}
  std::optional<PacketRequest> maybe_generate(sim::Cycle now) override {
    if (fired_ || now < when_) return std::nullopt;
    fired_ = true;
    return PacketRequest{dst_, 4};
  }
  sim::Cycle next_event_cycle(sim::Cycle now) override {
    if (fired_) return sim::kCycleNever;
    return std::max(now, when_);
  }

 private:
  sim::Cycle when_;
  NodeId dst_;
  bool fired_ = false;
};

TEST(EventHorizon, AggregatesMinAndClampsToNow) {
  sim::EventHorizon h(100);
  EXPECT_EQ(h.horizon(), sim::kCycleNever);
  h.consider(500);
  h.consider(40);  // conservative past answer must not move time backwards
  EXPECT_EQ(h.horizon(), 100u);
  h.consider(sim::kCycleNever);
  EXPECT_EQ(h.horizon(), 100u);
}

TEST(Quiescence, IdleBaselineMeshIsQuiescent) {
  Network net(mesh(2));
  net.step();
  EXPECT_TRUE(net.quiescent());
}

TEST(Quiescence, OneInFlightFlitIsNeverQuiescent) {
  Network net(mesh(3));
  net.set_traffic_source(0, std::make_unique<OneShotSource>(2, /*dst=*/8));
  bool saw_flit_in_flight = false;
  for (int i = 0; i < 200; ++i) {
    net.step();
    if (net.flits_in_flight() > 0) {
      saw_flit_in_flight = true;
      EXPECT_FALSE(net.quiescent()) << "cycle " << net.clock().now();
    }
    if (!net.quiescent() && net.flits_in_flight() == 0) {
      // Buffered or queued instead: also not quiescent — fine.
    }
  }
  ASSERT_TRUE(saw_flit_in_flight);
  // After full drain with the silent tail, the mesh settles quiescent again.
  EXPECT_TRUE(net.drained());
  EXPECT_TRUE(net.quiescent());
}

TEST(Quiescence, BufferedFlitOrBusyNiIsNeverQuiescent) {
  Network net(mesh(3));
  net.set_traffic_source(0, std::make_unique<OneShotSource>(2, /*dst=*/8));
  for (int i = 0; i < 200; ++i) {
    net.step();
    if (!net.drained() || !net.ni(0).idle()) {
      EXPECT_FALSE(net.quiescent());
    }
  }
}

TEST(Quiescence, SensorWiseMeshReachesAllGatedFixedPoint) {
  Network net(mesh(2));
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  net.run(64);
  ASSERT_TRUE(net.quiescent());
  // Fixed point: stepping a quiescent mesh changes no gating state.
  const auto count_transitions = [&net] {
    std::uint64_t t = 0;
    for (NodeId id = 0; id < net.nodes(); ++id)
      for (int v = 0; v < net.config().total_vcs(); ++v)
        t += net.router(id).input(Dir::Local).vc(v).gate_transitions();
    return t;
  };
  const std::uint64_t transitions = count_transitions();
  for (int i = 0; i < 100; ++i) net.step();
  EXPECT_EQ(count_transitions(), transitions);
  EXPECT_TRUE(net.quiescent());
}

TEST(Quiescence, PendingWakeUpIsNeverQuiescent) {
  Network net(mesh(2));
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  net.run(64);
  ASSERT_TRUE(net.quiescent());
  // Force one VC out of Recovery: it now sits in its wake window, and the
  // policy will re-gate it on a later cycle — an observable event the
  // engine must not skip across.
  net.router(0).input(Dir::Local).vc(0).wake(net.clock().now());
  EXPECT_FALSE(net.quiescent());
}

TEST(Quiescence, InstalledFaultInjectorIsNeverQuiescent) {
  Network net(mesh(2));
  net.step();
  ASSERT_TRUE(net.quiescent());
  sim::FaultInjector injector(sim::FaultPlan::uniform(0.01), /*seed=*/5);
  net.set_fault_injector(&injector);
  EXPECT_FALSE(net.quiescent());
  net.set_fault_injector(nullptr);
  EXPECT_TRUE(net.quiescent());
}

TEST(Quiescence, IdleMeshFastForwardsToEndWithoutStepping) {
  Network net(mesh(4));
  net.set_fast_forward(true);
  net.run(1'000'000);
  EXPECT_EQ(net.clock().now(), 1'000'000u);
  EXPECT_GE(net.skip_stats().cycles_skipped, 999'000u);
  for (double d : net.duty_cycles_percent(0, Dir::East)) EXPECT_DOUBLE_EQ(d, 100.0);
}

TEST(Quiescence, SensorEpochsFenceTheSkips) {
  // With a policy controller installed, an otherwise idle mesh must still
  // step every 1024-cycle sensor refresh, so no skip may span an epoch.
  Network net(mesh(2));
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  net.set_fast_forward(true);
  net.run(100'000);
  const auto& stats = net.skip_stats();
  ASSERT_GT(stats.skips, 0u);
  EXPECT_LE(stats.cycles_skipped / stats.skips, pc.sensor.epoch_cycles);
  // ~97 epochs in 100k cycles: roughly one skip per epoch once settled.
  EXPECT_GE(stats.skips, 90u);
}

TEST(Quiescence, FastForwardRunsAreBitIdenticalToStepped) {
  const auto run_one = [](bool fast_forward) {
    Network net(mesh(3));
    const auto model = nbti::NbtiModel::calibrated({}, {});
    core::PolicyConfig pc;
    pc.kind = core::PolicyKind::kSensorWise;
    core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 21);
    ctrl.attach();
    traffic::install_uniform_traffic(net, 0.02, 99);
    net.set_fast_forward(fast_forward);
    net.run_with_warmup(2'000, 30'000);
    std::vector<double> out;
    for (NodeId id = 0; id < net.nodes(); ++id)
      for (int p = 0; p < kNumDirs; ++p) {
        const Dir port = static_cast<Dir>(p);
        if (!net.router(id).has_input(port)) continue;
        for (double d : net.duty_cycles_percent(id, port)) out.push_back(d);
      }
    out.push_back(static_cast<double>(net.stats().counter("noc.flits_ejected")));
    out.push_back(static_cast<double>(net.stats().counter("noc.packets_ejected")));
    out.push_back(static_cast<double>(net.stats().counter("noc.packets_offered")));
    return out;
  };
  const auto stepped = run_one(false);
  const auto skipped = run_one(true);
  ASSERT_EQ(stepped.size(), skipped.size());
  for (std::size_t i = 0; i < stepped.size(); ++i)
    EXPECT_EQ(stepped[i], skipped[i]) << "index " << i;
}

TEST(Quiescence, TraceReplayHorizonIsExact) {
  traffic::Trace trace;
  trace.add({/*cycle=*/100, /*src=*/0, /*dst=*/1, /*length=*/4});
  trace.add({/*cycle=*/900, /*src=*/0, /*dst=*/2, /*length=*/4});
  traffic::TraceReplaySource replay(trace, 0);
  EXPECT_EQ(replay.next_event_cycle(0), 100u);
  EXPECT_EQ(replay.next_event_cycle(150), 150u);  // slipped record: due now
  ASSERT_TRUE(replay.maybe_generate(100).has_value());
  EXPECT_EQ(replay.next_event_cycle(101), 900u);
  ASSERT_TRUE(replay.maybe_generate(900).has_value());
  EXPECT_EQ(replay.next_event_cycle(901), sim::kCycleNever);
}

TEST(Quiescence, SyntheticSourceHorizonNeverOvershoots) {
  traffic::DestinationPattern pattern(traffic::PatternKind::kUniform, 4, 4);
  traffic::SyntheticSource probe(0, 0.08, 4, pattern, 1234);
  traffic::SyntheticSource replay_src(0, 0.08, 4, pattern, 1234);
  // Collect the true fire cycles by stepping one twin...
  std::vector<sim::Cycle> fires;
  for (sim::Cycle t = 0; t < 20'000; ++t)
    if (probe.maybe_generate(t).has_value()) fires.push_back(t);
  ASSERT_FALSE(fires.empty());
  // ...then check the other twin's horizon from every prior cycle: it must
  // never claim a cycle past the next true fire.
  std::size_t next = 0;
  for (sim::Cycle t = 0; t < 20'000; ++t) {
    while (next < fires.size() && fires[next] < t) ++next;
    if (next >= fires.size()) break;
    const sim::Cycle horizon = replay_src.next_event_cycle(t);
    EXPECT_LE(horizon, fires[next]) << "at cycle " << t;
    if (replay_src.maybe_generate(t).has_value()) {
      EXPECT_EQ(t, fires[next]) << "fire drifted between twins";
    }
  }
}

TEST(Quiescence, ZeroRateSourceNeverFires) {
  traffic::DestinationPattern pattern(traffic::PatternKind::kUniform, 2, 2);
  traffic::SyntheticSource src(0, 0.0, 4, pattern, 9);
  EXPECT_EQ(src.next_event_cycle(0), sim::kCycleNever);
  EXPECT_EQ(src.next_event_cycle(123'456), sim::kCycleNever);
  EXPECT_FALSE(src.maybe_generate(0).has_value());
}

}  // namespace
}  // namespace nbtinoc::noc
