#include "nbtinoc/noc/output_unit.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::noc {
namespace {

NocConfig config(int vcs = 4, int depth = 4) {
  NocConfig c;
  c.width = 2;
  c.height = 2;
  c.num_vcs = vcs;
  c.buffer_depth = depth;
  return c;
}

TEST(OutputUnit, MeshPortStartsFullCredits) {
  OutputUnit ou(Dir::East, config(4, 4), /*ejection=*/false);
  EXPECT_FALSE(ou.is_ejection());
  for (int v = 0; v < 4; ++v) EXPECT_EQ(ou.credits(v), 4);
}

TEST(OutputUnit, EjectionPortHasNoCredits) {
  OutputUnit ou(Dir::Local, config(), /*ejection=*/true);
  EXPECT_TRUE(ou.is_ejection());
  EXPECT_THROW(ou.credits(0), std::out_of_range);
}

TEST(OutputUnit, CreditAccounting) {
  OutputUnit ou(Dir::East, config(2, 2), false);
  ou.consume_credit(0);
  ou.consume_credit(0);
  EXPECT_EQ(ou.credits(0), 0);
  EXPECT_EQ(ou.credits(1), 2);
  EXPECT_THROW(ou.consume_credit(0), std::logic_error);
  ou.add_credit(0);
  EXPECT_EQ(ou.credits(0), 1);
}

TEST(OutputUnit, CreditOverflowThrows) {
  OutputUnit ou(Dir::East, config(2, 2), false);
  EXPECT_THROW(ou.add_credit(0), std::logic_error);  // already at depth
}

TEST(OutputUnit, ArbiterSizes) {
  OutputUnit ou(Dir::East, config(4), false);
  EXPECT_EQ(ou.va_arbiter().size(), static_cast<std::size_t>(kNumDirs * 4));
  EXPECT_EQ(ou.vc_select().size(), 4u);
  EXPECT_EQ(ou.sa_arbiter().size(), static_cast<std::size_t>(kNumDirs));
}

TEST(NocConfigTest, ValidateAcceptsPaperSetups) {
  NocConfig c = config(2, 4);
  EXPECT_NO_THROW(c.validate());
  c.num_vcs = 4;
  EXPECT_NO_THROW(c.validate());
}

TEST(NocConfigTest, ValidateRejectsDegenerate) {
  NocConfig c = config();
  c.width = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config();
  c.width = 1;
  c.height = 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config();
  c.buffer_depth = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config();
  c.packet_length = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(NocConfigTest, DescribeMentionsGeometry) {
  NocConfig c = config(4, 8);
  c.wakeup_latency = 3;
  const std::string d = c.describe();
  EXPECT_NE(d.find("2x2"), std::string::npos);
  EXPECT_NE(d.find("4 VCs"), std::string::npos);
  EXPECT_NE(d.find("wakeup latency 3"), std::string::npos);
}

TEST(NocConfigTest, NodesProduct) {
  NocConfig c;
  c.width = 4;
  c.height = 3;
  EXPECT_EQ(c.nodes(), 12);
}

}  // namespace
}  // namespace nbtinoc::noc
