#include "nbtinoc/noc/routing.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::noc {
namespace {

NocConfig mesh(int w, int h) {
  NocConfig c;
  c.width = w;
  c.height = h;
  return c;
}

TEST(Routing, CoordRoundTrip) {
  for (NodeId id = 0; id < 16; ++id) EXPECT_EQ(id_of(coord_of(id, 4), 4), id);
  EXPECT_EQ(coord_of(5, 4).x, 1);
  EXPECT_EQ(coord_of(5, 4).y, 1);
}

TEST(Routing, InMesh) {
  EXPECT_TRUE(in_mesh({0, 0}, 4, 4));
  EXPECT_TRUE(in_mesh({3, 3}, 4, 4));
  EXPECT_FALSE(in_mesh({4, 0}, 4, 4));
  EXPECT_FALSE(in_mesh({0, -1}, 4, 4));
}

TEST(Routing, Neighbors) {
  // 4x4 mesh, node 5 = (1,1).
  EXPECT_EQ(neighbor_of(5, Dir::North, 4, 4), 1);
  EXPECT_EQ(neighbor_of(5, Dir::South, 4, 4), 9);
  EXPECT_EQ(neighbor_of(5, Dir::East, 4, 4), 6);
  EXPECT_EQ(neighbor_of(5, Dir::West, 4, 4), 4);
  EXPECT_EQ(neighbor_of(5, Dir::Local, 4, 4), -1);
}

TEST(Routing, EdgeNeighborsAbsent) {
  EXPECT_EQ(neighbor_of(0, Dir::North, 4, 4), -1);
  EXPECT_EQ(neighbor_of(0, Dir::West, 4, 4), -1);
  EXPECT_EQ(neighbor_of(15, Dir::South, 4, 4), -1);
  EXPECT_EQ(neighbor_of(15, Dir::East, 4, 4), -1);
}

TEST(Routing, HopDistance) {
  EXPECT_EQ(hop_distance(0, 15, 4), 6);
  EXPECT_EQ(hop_distance(0, 0, 4), 0);
  EXPECT_EQ(hop_distance(0, 3, 4), 3);
  EXPECT_EQ(hop_distance(3, 0, 4), 3);
}

TEST(Routing, XYGoesXFirst) {
  const NocConfig c = mesh(4, 4);
  // From (0,0) to (2,2): east until x matches, then south.
  EXPECT_EQ(route_compute(0, 10, c), Dir::East);
  EXPECT_EQ(route_compute(1, 10, c), Dir::East);
  EXPECT_EQ(route_compute(2, 10, c), Dir::South);
  EXPECT_EQ(route_compute(6, 10, c), Dir::South);
  EXPECT_EQ(route_compute(10, 10, c), Dir::Local);
}

TEST(Routing, YXGoesYFirst) {
  NocConfig c = mesh(4, 4);
  c.routing = RoutingAlgo::kYX;
  EXPECT_EQ(route_compute(0, 10, c), Dir::South);
  EXPECT_EQ(route_compute(4, 10, c), Dir::South);
  EXPECT_EQ(route_compute(8, 10, c), Dir::East);
}

TEST(Routing, WestAndNorth) {
  const NocConfig c = mesh(4, 4);
  EXPECT_EQ(route_compute(15, 0, c), Dir::West);
  EXPECT_EQ(route_compute(12, 0, c), Dir::North);
}

// Property: following route_compute from any src always reaches dst in
// exactly hop_distance steps (deadlock-free minimal routing).
class RoutingWalkTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RoutingWalkTest, AlwaysReachesDestinationMinimally) {
  const auto [w, h] = GetParam();
  NocConfig c = mesh(w, h);
  for (NodeId src = 0; src < w * h; ++src) {
    for (NodeId dst = 0; dst < w * h; ++dst) {
      NodeId cur = src;
      int steps = 0;
      while (cur != dst) {
        const Dir d = route_compute(cur, dst, c);
        ASSERT_NE(d, Dir::Local);
        cur = neighbor_of(cur, d, w, h);
        ASSERT_GE(cur, 0) << "routed off-mesh";
        ASSERT_LE(++steps, w + h) << "non-minimal path";
      }
      EXPECT_EQ(steps, hop_distance(src, dst, w));
      EXPECT_EQ(route_compute(dst, dst, c), Dir::Local);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, RoutingWalkTest,
                         ::testing::Values(std::pair{2, 2}, std::pair{4, 4}, std::pair{3, 5},
                                           std::pair{8, 8}, std::pair{1, 4}));

}  // namespace
}  // namespace nbtinoc::noc
