// Oracle property tests for the active-set scheduler: a stepped twin and an
// active-set twin of the same scenario advance in lockstep, and every cycle
// the full observable network state must be bit-identical. On top of the
// equality proof, a did-work oracle pins the scheduling itself:
//
//   - any router whose state changed during cycle t must either have been
//     stepped at t or be scheduled for t+1 (the one legal exception: an
//     upstream neighbor allocated into its input VC, which wakes it);
//   - any NI whose state changed must have been stepped — NIs are never
//     mutated from outside;
//   - a component the scheduler skipped must therefore be bit-identical
//     before and after the cycle.
//
// An inactive component whose step would have done work shows up as a state
// divergence between the twins within a cycle or two — instant failure.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "nbtinoc/core/controller.hpp"
#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/sim/active_set.hpp"
#include "nbtinoc/sim/fault_plan.hpp"
#include "nbtinoc/traffic/request_reply.hpp"
#include "nbtinoc/traffic/synthetic.hpp"

namespace nbtinoc::noc {
namespace {

struct ScenarioSpec {
  const char* name;
  int width = 3;
  int vcs = 2;   ///< per vnet
  int vnets = 1;
  core::PolicyKind policy = core::PolicyKind::kSensorWise;
  double rate = 0.05;  ///< uniform injection rate; 0 = no traffic installed
  sim::Cycle wakeup_latency = 0;
  sim::Cycle decision_period = 1;
  std::uint64_t seed = 1;
  sim::Cycle cycles = 2'500;
};

// The randomized scenario grid: every policy, VC/vnet shapes, zero and
// saturating-ish rates, nonzero wakeup latency, and decision hysteresis.
const ScenarioSpec kScenarios[] = {
    {"baseline-quiet", 2, 1, 1, core::PolicyKind::kBaseline, 0.0, 0, 1, 11},
    {"baseline-loaded", 3, 2, 1, core::PolicyKind::kBaseline, 0.10, 0, 1, 12},
    {"rr-no-sensor", 3, 3, 1, core::PolicyKind::kRrNoSensor, 0.04, 1, 1, 13},
    {"sensorwise-no-traffic-policy", 3, 2, 2, core::PolicyKind::kSensorWiseNoTraffic, 0.03, 0, 1,
     14},
    {"sensorwise-quiet", 3, 2, 1, core::PolicyKind::kSensorWise, 0.0, 0, 1, 15},
    {"sensorwise-low", 4, 2, 1, core::PolicyKind::kSensorWise, 0.01, 0, 1, 16},
    {"sensorwise-hysteresis", 3, 4, 1, core::PolicyKind::kSensorWise, 0.05, 3, 4, 17},
    {"sensorwise-2vnet", 3, 2, 2, core::PolicyKind::kSensorWise, 0.08, 0, 1, 18},
    {"sensorrank", 4, 4, 1, core::PolicyKind::kSensorRank, 0.06, 1, 2, 19},
    {"sensorrank-1vc", 2, 1, 2, core::PolicyKind::kSensorRank, 0.12, 0, 1, 20},
};

NocConfig config_of(const ScenarioSpec& s) {
  NocConfig c;
  c.width = s.width;
  c.height = s.width;
  c.num_vcs = s.vcs;
  c.num_vnets = s.vnets;
  c.buffer_depth = 4;
  c.packet_length = 4;
  c.wakeup_latency = s.wakeup_latency;
  return c;
}

/// One half of a lockstep pair: network + controller + traffic, built from
/// the spec alone so both twins see identical silicon and offered load.
/// The twin owns its NBTI model: the controller's sensor banks keep a
/// pointer into it for the lifetime of the controller.
// GCC's -Wdangling-pointer misfires on the inlined controller constructor
// chain below even with every argument an lvalue member (ASan-clean).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdangling-pointer"
struct Twin {
  nbti::NbtiModel model = nbti::NbtiModel::calibrated({}, {});
  nbti::OperatingPoint op{};
  nbti::PvConfig pv{};
  core::PolicyConfig pcfg;
  Network net;
  core::PolicyGateController ctrl;

  explicit Twin(const ScenarioSpec& s)
      : pcfg(policy_config(s)), net(config_of(s)), ctrl(net, pcfg, model, op, pv, s.seed) {
    ctrl.attach();
    if (s.rate > 0.0) traffic::install_uniform_traffic(net, s.rate, s.seed ^ 0x9e3779b9ULL);
  }

  static core::PolicyConfig policy_config(const ScenarioSpec& s) {
    core::PolicyConfig pc;
    pc.kind = s.policy;
    pc.decision_period = s.decision_period;
    return pc;
  }
};
#pragma GCC diagnostic pop

using Fingerprint = std::vector<std::uint64_t>;

/// Everything observable about one router: per input VC the power state,
/// occupancy, and gate-transition count; per output VC the credit view.
void router_fingerprint(const Network& net, NodeId id, Fingerprint& out) {
  out.clear();
  const Router& r = net.router(id);
  const int vcs = net.config().total_vcs();
  for (int p = 0; p < r.num_ports(); ++p) {
    const Dir port = static_cast<Dir>(p);
    if (r.has_input(port)) {
      const InputUnit& iu = r.input(port);
      for (int v = 0; v < vcs; ++v) {
        const VcBuffer& buf = iu.vc(v);
        out.push_back(static_cast<std::uint64_t>(buf.state()));
        out.push_back(static_cast<std::uint64_t>(buf.occupancy()));
        out.push_back(buf.gate_transitions());
      }
    }
    // Credit views exist on cardinal outputs only (ejection is a free sink).
    if (p < kFirstLocalPort && r.has_output(port))
      for (int v = 0; v < vcs; ++v)
        out.push_back(static_cast<std::uint64_t>(r.output(port).credits(v)));
  }
}

void ni_fingerprint(const Network& net, NodeId t, Fingerprint& out) {
  out.clear();
  const NetworkInterface& ni = net.ni(t);
  out.push_back(ni.queue_depth());
  out.push_back(ni.idle() ? 0u : 1u);
  out.push_back(ni.flits_injected());
  out.push_back(ni.packets_ejected());
  for (int v = 0; v < net.config().total_vcs(); ++v)
    out.push_back(static_cast<std::uint64_t>(ni.credits(v)));
}

/// Global movement counters — the catch-all for anything the per-component
/// fingerprints miss.
Fingerprint counter_fingerprint(const Network& net) {
  Fingerprint out;
  for (const char* key : {"noc.flits_injected", "noc.flits_ejected", "noc.flits_forwarded",
                          "noc.flits_ejected_router", "noc.packets_offered", "noc.packets_ejected",
                          "noc.va_grants", "noc.ni_va_grants"})
    out.push_back(net.stats().counter(key));
  return out;
}

/// Drives both twins one cycle at a time, asserting per-cycle equality and
/// the did-work attribution oracle on the active twin.
void run_lockstep(Twin& stepped, Twin& active, sim::Cycle cycles, const std::string& label) {
  const int routers = stepped.net.num_routers();
  const int nodes = stepped.net.nodes();
  // The attribution oracle reads the scheduler's stepped/active sets, which
  // only update while the twin actually runs in kActiveSet mode.
  const bool attribute = active.net.scheduler_mode() == SchedulerMode::kActiveSet;
  std::vector<Fingerprint> before_r(static_cast<std::size_t>(routers));
  std::vector<Fingerprint> before_n(static_cast<std::size_t>(nodes));
  Fingerprint fp_a, fp_s;
  for (sim::Cycle t = 0; t < cycles; ++t) {
    for (NodeId id = 0; id < routers; ++id)
      router_fingerprint(active.net, id, before_r[static_cast<std::size_t>(id)]);
    for (NodeId n = 0; n < nodes; ++n)
      ni_fingerprint(active.net, n, before_n[static_cast<std::size_t>(n)]);

    stepped.net.step();
    active.net.step();

    for (NodeId id = 0; id < routers; ++id) {
      router_fingerprint(active.net, id, fp_a);
      router_fingerprint(stepped.net, id, fp_s);
      ASSERT_EQ(fp_a, fp_s) << label << ": router " << id << " diverged at cycle " << t;
      if (attribute && fp_a != before_r[static_cast<std::size_t>(id)]) {
        // Did-work oracle: a changed router must have been scheduled, or —
        // when a stepped neighbor allocated into it — be scheduled next.
        EXPECT_TRUE(active.net.router_stepped(id) || active.net.router_active(id))
            << label << ": router " << id << " changed at cycle " << t
            << " while skipped and not rescheduled";
      }
    }
    for (NodeId n = 0; n < nodes; ++n) {
      ni_fingerprint(active.net, n, fp_a);
      ni_fingerprint(stepped.net, n, fp_s);
      ASSERT_EQ(fp_a, fp_s) << label << ": NI " << n << " diverged at cycle " << t;
      if (attribute && fp_a != before_n[static_cast<std::size_t>(n)]) {
        EXPECT_TRUE(active.net.ni_stepped(n))
            << label << ": NI " << n << " changed at cycle " << t << " while skipped";
      }
    }
    ASSERT_EQ(counter_fingerprint(active.net), counter_fingerprint(stepped.net))
        << label << ": global counters diverged at cycle " << t;
  }
}

TEST(ActiveSetOracle, LockstepMatchesSteppedAcrossScenarioGrid) {
  for (const ScenarioSpec& s : kScenarios) {
    Twin stepped(s);
    Twin active(s);
    active.net.set_scheduler_mode(SchedulerMode::kActiveSet);
    ASSERT_EQ(active.net.scheduler_mode(), SchedulerMode::kActiveSet);
    run_lockstep(stepped, active, s.cycles, s.name);
    // The scheduler must have skipped *something* on the quiet scenarios —
    // otherwise this whole file only proves stepped == stepped.
    const auto& st = active.net.scheduler_stats();
    EXPECT_EQ(st.cycles_executed, s.cycles) << s.name;
    if (s.rate == 0.0 && s.policy != core::PolicyKind::kRrNoSensor) {
      EXPECT_LT(st.router_steps,
                st.cycles_executed * static_cast<std::uint64_t>(active.net.num_routers()))
          << s.name << ": nothing was ever parked";
    }
  }
}

TEST(ActiveSetOracle, AllGatedFixedPointParksTheWholeFabric) {
  // Sensor-wise with no traffic gates every VC; once each port reaches the
  // all-gated fixed point the fabric must park entirely, with run() jumping
  // epoch to epoch. Duty cycles pin the NBTI accounting across the jumps.
  ScenarioSpec s;
  s.rate = 0.0;
  Twin active(s);
  active.net.set_scheduler_mode(SchedulerMode::kActiveSet);
  active.net.run(100'000);
  EXPECT_EQ(active.net.clock().now(), 100'000u);
  const auto& st = active.net.scheduler_stats();
  // A handful of settle cycles of full activity, then nothing: orders of
  // magnitude below the 9 routers x 100k cycles a stepped run executes.
  EXPECT_LT(st.router_steps, 5'000u);
  EXPECT_LT(st.ni_steps, 5'000u);
  EXPECT_GT(active.net.skip_stats().cycles_skipped, 90'000u);

  Twin stepped(s);
  stepped.net.run(100'000);
  EXPECT_EQ(stepped.net.stats().counter("noc.flits_injected"),
            active.net.stats().counter("noc.flits_injected"));
  const auto stepped_duty = stepped.net.duty_cycles_percent(2, Dir::West);
  EXPECT_EQ(stepped_duty, active.net.duty_cycles_percent(2, Dir::West));
}

TEST(ActiveSetOracle, FaultStormMatchesStepped) {
  // An untargeted (fabric-wide) fault plan pins every router: the schedule
  // literally degenerates to stepped execution, and every fault RNG draw
  // stays at its stepped position. Twin injectors share plan and seed.
  ScenarioSpec s;
  s.rate = 0.05;
  s.cycles = 2'000;
  Twin stepped(s);
  Twin active(s);
  sim::FaultInjector inj_s(sim::FaultPlan::uniform(0.02), 77);
  sim::FaultInjector inj_a(sim::FaultPlan::uniform(0.02), 77);
  inj_s.bind_stats(&stepped.net.stats());
  inj_a.bind_stats(&active.net.stats());
  stepped.net.set_fault_injector(&inj_s);
  stepped.ctrl.set_fault_injector(&inj_s);
  active.net.set_fault_injector(&inj_a);
  active.ctrl.set_fault_injector(&inj_a);
  active.net.set_scheduler_mode(SchedulerMode::kActiveSet);
  run_lockstep(stepped, active, s.cycles, "fault-storm");
  // Degenerate schedule: every router stepped every cycle.
  EXPECT_EQ(active.net.scheduler_stats().router_steps,
            s.cycles * static_cast<std::uint64_t>(active.net.num_routers()));
}

TEST(ActiveSetOracle, TargetedFaultPinsOnlyTheFaultyRouter) {
  // Regression for the PR 4 gap where any installed injector disabled
  // skipping fabric-wide: a plan targeting one port must pin one router and
  // leave the rest of the quiet fabric parked.
  ScenarioSpec s;
  s.rate = 0.0;
  s.cycles = 4'000;
  sim::FaultPlan plan = sim::FaultPlan::uniform(0.05);
  plan.targets = {{4, static_cast<int>(Dir::East)}};
  Twin stepped(s);
  Twin active(s);
  sim::FaultInjector inj_s(plan, 123);
  sim::FaultInjector inj_a(plan, 123);
  inj_s.bind_stats(&stepped.net.stats());
  inj_a.bind_stats(&active.net.stats());
  stepped.net.set_fault_injector(&inj_s);
  stepped.ctrl.set_fault_injector(&inj_s);
  active.net.set_fault_injector(&inj_a);
  active.ctrl.set_fault_injector(&inj_a);
  active.net.set_scheduler_mode(SchedulerMode::kActiveSet);
  EXPECT_TRUE(active.net.router_active(4));
  run_lockstep(stepped, active, s.cycles, "targeted-fault");
  const auto& st = active.net.scheduler_stats();
  // One pinned router out of nine plus the settle transient: far below
  // whole-fabric stepping, far above zero.
  EXPECT_GE(st.router_steps, s.cycles);
  EXPECT_LT(st.router_steps, s.cycles * 3);
}

TEST(ActiveSetOracle, ReplyBoardWakesParkedServers) {
  // Request/reply traffic: a reply lands on the server's board when the
  // *requester* generates, possibly while the server's NI is parked — the
  // ReplyBoard wake sink must reschedule it. Lockstep equality catches any
  // missed or late wake.
  ScenarioSpec s;
  s.vnets = 2;
  s.cycles = 3'000;
  Twin stepped(s);
  Twin active(s);
  traffic::RequestReplyConfig rr;
  rr.request_rate = 0.01;
  traffic::install_request_reply_traffic(stepped.net, rr, 31);
  traffic::install_request_reply_traffic(active.net, rr, 31);
  active.net.set_scheduler_mode(SchedulerMode::kActiveSet);
  run_lockstep(stepped, active, s.cycles, "request-reply");
  EXPECT_GT(active.net.stats().counter("noc.packets_ejected"), 0u);
}

// Direct unit tests for the scheduler's data structures: the oracle suite
// above exercises them end-to-end, but cross-word boundaries and the
// set-algebra helpers deserve exact-count checks of their own.
TEST(ActiveSetPrimitives, MergeUnionsMembershipAcrossWords) {
  sim::ActiveSet a;
  sim::ActiveSet b;
  a.resize(130);  // three words, partial tail
  b.resize(130);
  a.insert(0);
  a.insert(63);
  a.insert(64);  // word boundary
  b.insert(64);  // overlap must not double-count
  b.insert(65);
  b.insert(129);  // last id, tail word
  a.merge(b);
  EXPECT_EQ(a.count(), 5);
  for (int id : {0, 63, 64, 65, 129}) EXPECT_TRUE(a.contains(id)) << id;
  EXPECT_FALSE(a.contains(1));
  EXPECT_FALSE(a.contains(128));
  std::vector<int> visited;
  a.for_each([&](int id) { visited.push_back(id); });
  EXPECT_EQ(visited, (std::vector<int>{0, 63, 64, 65, 129}));
  sim::ActiveSet mismatched;
  mismatched.resize(8);
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
}

TEST(ActiveSetPrimitives, InsertAllMasksTheTailWord) {
  sim::ActiveSet s;
  s.resize(70);  // 6 spare bits in the second word must stay clear
  s.insert_all();
  EXPECT_EQ(s.count(), 70);
  int visited = 0;
  s.for_each([&](int id) {
    EXPECT_LT(id, 70);
    ++visited;
  });
  EXPECT_EQ(visited, 70);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(ActiveSetPrimitives, WakeHeapPopsInCycleOrderWithDuplicates) {
  sim::WakeHeap heap;
  EXPECT_EQ(heap.top_cycle(), sim::kCycleNever);
  heap.push(30, 3);
  heap.push(10, 1);
  heap.push(10, 1);  // duplicates are permitted, never coalesced
  heap.push(20, 2);
  EXPECT_EQ(heap.top_cycle(), sim::Cycle{10});
  std::vector<sim::Cycle> cycles;
  while (!heap.empty()) cycles.push_back(heap.pop().cycle);
  EXPECT_EQ(cycles, (std::vector<sim::Cycle>{10, 10, 20, 30}));
}

TEST(ActiveSetOracle, ModeRoundTripKeepsStepping) {
  // Leaving kActiveSet removes the push hooks and restores literal
  // stepping; re-entering re-arms everything. A stepped twin pins equality
  // across the whole dance.
  ScenarioSpec s;
  s.cycles = 400;
  Twin stepped(s);
  Twin active(s);
  active.net.set_scheduler_mode(SchedulerMode::kActiveSet);
  run_lockstep(stepped, active, 400, "round-trip-active");
  active.net.set_scheduler_mode(SchedulerMode::kStepped);
  run_lockstep(stepped, active, 400, "round-trip-stepped");
  active.net.set_scheduler_mode(SchedulerMode::kActiveSet);
  run_lockstep(stepped, active, 400, "round-trip-reentry");
}

}  // namespace
}  // namespace nbtinoc::noc
