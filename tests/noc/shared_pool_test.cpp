// SharedBufferPool unit tests: the DAMQ slot lifecycle, the per-VC chain
// FIFO discipline, the credit/reservation invariant M* at its boundary
// cases, the structural-fault purge (which must leave Gated/Waking slots
// untouched and count each dropped flit exactly once), and the
// checkpoint round-trip of the full list structure.

#include "nbtinoc/noc/shared_pool.hpp"

#include <gtest/gtest.h>

#include "nbtinoc/core/controller.hpp"
#include "nbtinoc/core/experiment.hpp"
#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/sim/snapshot.hpp"

namespace nbtinoc::noc {
namespace {

Flit flit(PacketId packet, int seq = 0) {
  Flit f;
  f.type = seq == 0 ? FlitType::Head : FlitType::Body;
  f.packet = packet;
  f.seq = seq;
  return f;
}

TEST(SharedBufferPool, ConstructionMatchesPartitionedArea) {
  const SharedBufferPool pool(/*num_vcs=*/4, /*buffer_depth=*/8, /*reserve=*/1,
                              /*wakeup_latency=*/0);
  EXPECT_EQ(pool.num_slots(), 32);  // same slot count as the 4x8 VC bank
  EXPECT_EQ(pool.shared_capacity(), 28);
  EXPECT_EQ(pool.free_slots(), 32);
  EXPECT_EQ(pool.occupied_slots(), 0);
  EXPECT_EQ(pool.gated_slots(), 0);
  EXPECT_EQ(pool.waking_slots(), 0);
  EXPECT_EQ(pool.overcommit(), 0);
  for (int v = 0; v < 4; ++v) EXPECT_EQ(pool.charged(v), 0);
}

TEST(SharedBufferPool, PerVcChainsAreFifoAndIndependent) {
  SharedBufferPool pool(2, 4, 1, 0);
  pool.push(0, flit(10, 0));
  pool.push(1, flit(20, 0));
  pool.push(0, flit(10, 1));
  pool.push(1, flit(20, 1));
  EXPECT_EQ(pool.occupancy(0), 2);
  EXPECT_EQ(pool.occupancy(1), 2);
  EXPECT_EQ(pool.occupied_slots(), 4);
  EXPECT_EQ(pool.front(0).packet, 10u);
  EXPECT_EQ(pool.pop(0).seq, 0);
  EXPECT_EQ(pool.pop(1).seq, 0);
  EXPECT_EQ(pool.pop(0).seq, 1);
  EXPECT_EQ(pool.pop(1).seq, 1);
  EXPECT_EQ(pool.occupied_slots(), 0);
  EXPECT_EQ(pool.free_slots(), 8);
  EXPECT_THROW(pool.front(0), std::logic_error);
}

TEST(SharedBufferPool, GateWakePromoteLifecycle) {
  SharedBufferPool pool(2, 2, 1, /*wakeup_latency=*/3);
  ASSERT_EQ(pool.slot_state(0), SharedBufferPool::SlotState::kFree);
  ASSERT_TRUE(pool.can_gate());
  pool.gate_slot(0, /*now=*/10);
  EXPECT_EQ(pool.slot_state(0), SharedBufferPool::SlotState::kGated);
  EXPECT_EQ(pool.gated_slots(), 1);
  EXPECT_EQ(pool.free_slots(), 3);
  EXPECT_EQ(pool.slot_gate_transitions(0), 1u);

  pool.wake_slot(0, /*now=*/20);
  EXPECT_EQ(pool.slot_state(0), SharedBufferPool::SlotState::kWaking);
  EXPECT_EQ(pool.slot_wake_ready(0), 23u);
  // Waking still counts against shared_limit: the slot is not allocatable.
  pool.promote_woken(22);
  EXPECT_EQ(pool.waking_slots(), 1);
  pool.promote_woken(23);
  EXPECT_EQ(pool.waking_slots(), 0);
  EXPECT_EQ(pool.free_slots(), 4);
  EXPECT_EQ(pool.slot_state(0), SharedBufferPool::SlotState::kFree);
  // Waking a non-Gated slot is a harmless retry, not an error.
  EXPECT_NO_THROW(pool.wake_slot(0, 30));
  EXPECT_EQ(pool.slot_state(0), SharedBufferPool::SlotState::kFree);
}

TEST(SharedBufferPool, GatingAnOccupiedOrDoubleGatedSlotThrows) {
  SharedBufferPool pool(2, 2, 1, 0);
  pool.push(0, flit(1));
  int occupied = -1, free_slot = -1;
  for (int s = 0; s < pool.num_slots(); ++s) {
    if (pool.slot_state(s) == SharedBufferPool::SlotState::kOccupied) occupied = s;
    if (pool.slot_state(s) == SharedBufferPool::SlotState::kFree) free_slot = s;
  }
  EXPECT_THROW(pool.gate_slot(occupied, 0), std::logic_error);
  pool.gate_slot(free_slot, 0);
  EXPECT_THROW(pool.gate_slot(free_slot, 0), std::logic_error);
}

TEST(SharedBufferPool, ReservedPathStaysOpenUnderFullGating) {
  // Gate the whole shared region: every VC must still be able to take its
  // reserved flit (invariant M*'s deadlock-safety half).
  SharedBufferPool pool(2, 2, 1, 0);  // 4 slots, shared_capacity 2
  int gated = 0;
  for (int s = 0; s < pool.num_slots() && pool.can_gate(); ++s)
    if (pool.slot_state(s) == SharedBufferPool::SlotState::kFree) {
      pool.gate_slot(s, 0);
      ++gated;
    }
  EXPECT_EQ(gated, pool.shared_capacity());
  EXPECT_EQ(pool.shared_limit(), 0);
  EXPECT_FALSE(pool.can_gate());
  for (int v = 0; v < 2; ++v) {
    EXPECT_TRUE(pool.can_send(v));
    pool.charge(v);
    pool.push(v, flit(static_cast<PacketId>(v)));
    // The reservation is used up; the shared region is fully gated.
    EXPECT_FALSE(pool.can_send(v));
  }
}

TEST(SharedBufferPool, OvercommitTracksSharedRegionCharges) {
  SharedBufferPool pool(2, 4, 1, 0);  // 8 slots, shared_capacity 6
  pool.charge(0);                     // reserved
  EXPECT_EQ(pool.overcommit(), 0);
  pool.charge(0);  // first shared charge
  pool.charge(0);
  EXPECT_EQ(pool.overcommit(), 2);
  pool.uncharge(0);
  EXPECT_EQ(pool.overcommit(), 1);
  pool.uncharge(0);
  pool.uncharge(0);
  EXPECT_EQ(pool.overcommit(), 0);
  EXPECT_THROW(pool.uncharge(0), std::logic_error);
  // set_charged rewrites incrementally: overcommit follows the identity.
  pool.set_charged(1, 4);
  EXPECT_EQ(pool.overcommit(), 3);
  pool.set_charged(1, 0);
  EXPECT_EQ(pool.overcommit(), 0);
}

TEST(SharedBufferPool, CreditPressureSignalsTrackChargesAndGating) {
  // credit_starved() is the slot policies' wake trigger: it must assert
  // exactly when some VC has consumed its whole reserve AND the shared
  // region has no send headroom left — the stop-and-wait regime in which
  // new_traffic goes quiet while flits keep trickling via the reserve.
  SharedBufferPool pool(2, 4, 1, 0);  // 8 slots, shared_capacity 6
  EXPECT_EQ(pool.credit_headroom(), 6);
  EXPECT_EQ(pool.vcs_at_reserve(), 0);
  EXPECT_FALSE(pool.credit_starved());

  pool.charge(0);  // VC0's reserve consumed; headroom still wide open
  EXPECT_EQ(pool.vcs_at_reserve(), 1);
  EXPECT_FALSE(pool.credit_starved());

  // Gate the whole shared region: headroom collapses to zero and the
  // reserve-exhausted VC is now starved.
  int gated = 0;
  for (int s = 0; s < pool.num_slots() && pool.can_gate(); ++s) {
    if (pool.slot_state(s) != SharedBufferPool::SlotState::kFree) continue;
    pool.gate_slot(s, 0);
    ++gated;
  }
  EXPECT_EQ(gated, 6);
  EXPECT_EQ(pool.credit_headroom(), 0);
  EXPECT_TRUE(pool.credit_starved());

  // Draining the charge clears the pressure even with everything gated
  // (the reserves alone cover sub-reserve traffic)...
  pool.uncharge(0);
  EXPECT_EQ(pool.vcs_at_reserve(), 0);
  EXPECT_FALSE(pool.credit_starved());

  // ...and set_charged keeps the at-reserve census on the same identity.
  pool.set_charged(1, 3);
  EXPECT_EQ(pool.vcs_at_reserve(), 1);
  EXPECT_EQ(pool.credit_headroom(), -2);  // overcommit 2 beyond zero limit
  EXPECT_TRUE(pool.credit_starved());
  pool.set_charged(1, 0);
  EXPECT_FALSE(pool.credit_starved());
}

TEST(SharedBufferPool, CanGateStopsExactlyWhereMStarBinds) {
  // With charges pledging the shared region, gating must stop early enough
  // that sum_v max(charged_v, R) <= slots - gated - waking keeps holding.
  SharedBufferPool pool(2, 2, 1, 0);  // 4 slots, shared_capacity 2
  pool.charge(0);
  pool.charge(0);  // charged_0 = 2: one shared slot pledged
  pool.push(0, flit(1, 0));
  pool.push(0, flit(1, 1));
  ASSERT_EQ(pool.overcommit(), 1);
  // shared_limit = 2; overcommit 1 < 2: exactly one gate is still legal.
  ASSERT_TRUE(pool.can_gate());
  int free_slot = -1;
  for (int s = 0; s < pool.num_slots(); ++s)
    if (pool.slot_state(s) == SharedBufferPool::SlotState::kFree) {
      free_slot = s;
      break;
    }
  pool.gate_slot(free_slot, 0);
  EXPECT_FALSE(pool.can_gate());  // overcommit 1 == shared_limit 1: M* binds
  EXPECT_EQ(pool.free_slots(), 1);  // the flit the upstream pledged still fits
}

// --- satellite (a): purge with slots gated -----------------------------------

TEST(SharedBufferPool, PurgeReleasesOnlyTheVcChainAndLeavesGatedSlotsAlone) {
  SharedBufferPool pool(2, 4, 1, /*wakeup_latency=*/2);  // 8 slots
  // VC 0 holds 3 flits, VC 1 holds 1; two slots gated, one waking.
  for (int i = 0; i < 3; ++i) pool.push(0, flit(7, i));
  pool.push(1, flit(9, 0));
  int gated_a = -1, gated_b = -1;
  for (int s = 0; s < pool.num_slots(); ++s)
    if (pool.slot_state(s) == SharedBufferPool::SlotState::kFree) {
      if (gated_a < 0) gated_a = s;
      else if (gated_b < 0) gated_b = s;
    }
  pool.gate_slot(gated_a, 5);
  pool.gate_slot(gated_b, 5);
  pool.wake_slot(gated_b, 6);
  ASSERT_EQ(pool.occupied_slots(), 4);
  ASSERT_EQ(pool.gated_slots(), 1);
  ASSERT_EQ(pool.waking_slots(), 1);
  ASSERT_EQ(pool.free_slots(), 2);

  // The purge drops exactly VC 0's 3 flits — counted once, via the return
  // value — and must not resurrect the gated or waking slot.
  EXPECT_EQ(pool.purge_vc(0), 3);
  EXPECT_EQ(pool.occupancy(0), 0);
  EXPECT_EQ(pool.occupied_slots(), 1);
  EXPECT_EQ(pool.free_slots(), 5);
  EXPECT_EQ(pool.gated_slots(), 1);
  EXPECT_EQ(pool.waking_slots(), 1);
  EXPECT_EQ(pool.slot_state(gated_a), SharedBufferPool::SlotState::kGated);
  EXPECT_EQ(pool.slot_state(gated_b), SharedBufferPool::SlotState::kWaking);
  // A second purge finds nothing: the flits cannot be counted twice.
  EXPECT_EQ(pool.purge_vc(0), 0);
  // VC 1's chain survived intact.
  EXPECT_EQ(pool.pop(1).packet, 9u);
  // The gated slot still matures through its normal lifecycle.
  pool.promote_woken(8);
  EXPECT_EQ(pool.waking_slots(), 0);
  EXPECT_EQ(pool.slot_state(gated_b), SharedBufferPool::SlotState::kFree);
}

TEST(SharedBufferPool, SnapshotRoundTripsListsAndCharges) {
  SharedBufferPool pool(2, 3, 1, /*wakeup_latency=*/4);  // 6 slots
  pool.push(0, flit(3, 0));
  pool.push(0, flit(3, 1));
  pool.push(1, flit(5, 0));
  int ga = -1, gb = -1;
  for (int s = 0; s < pool.num_slots(); ++s)
    if (pool.slot_state(s) == SharedBufferPool::SlotState::kFree) {
      if (ga < 0) ga = s;
      else if (gb < 0) gb = s;
    }
  pool.gate_slot(ga, 7);
  pool.gate_slot(gb, 7);
  pool.wake_slot(gb, 9);
  pool.charge(0);
  pool.charge(0);
  pool.charge(1);

  sim::SnapshotWriter w;
  pool.save(w);
  const std::string bytes = w.take();

  SharedBufferPool restored(2, 3, 1, 4);
  sim::SnapshotReader r(bytes);
  restored.load(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(restored.free_slots(), pool.free_slots());
  EXPECT_EQ(restored.occupied_slots(), pool.occupied_slots());
  EXPECT_EQ(restored.gated_slots(), pool.gated_slots());
  EXPECT_EQ(restored.waking_slots(), pool.waking_slots());
  EXPECT_EQ(restored.overcommit(), pool.overcommit());
  for (int v = 0; v < 2; ++v) {
    EXPECT_EQ(restored.charged(v), pool.charged(v));
    EXPECT_EQ(restored.occupancy(v), pool.occupancy(v));
  }
  for (int s = 0; s < pool.num_slots(); ++s) {
    EXPECT_EQ(restored.slot_state(s), pool.slot_state(s)) << "slot " << s;
    EXPECT_EQ(restored.slot_gate_transitions(s), pool.slot_gate_transitions(s));
  }
  EXPECT_EQ(restored.slot_wake_ready(gb), pool.slot_wake_ready(gb));
  // Pop order (the simulation-visible part of the list structure) survives.
  EXPECT_EQ(restored.pop(0).seq, 0);
  EXPECT_EQ(restored.pop(0).seq, 1);
  EXPECT_EQ(restored.pop(1).packet, 5u);
}

// --- satellite (a), network level: purge while slots are gated ---------------

// A mid-run link kill on a shared-organization fabric whose slot policy has
// been actively gating: the purge path must drain the dead port's VC chains
// through the pool descriptors, leave the recovering (Gated/Waking) slots
// alone, restore every upstream charge from the conservation identity, and
// count each purged flit into fault.dropped_flits exactly once — all of
// which the InvariantChecker's slot-conservation, M*, and credit-
// conservation probes verify every cycle of the stepped re-run.
TEST(SharedPoolPurge, KillWhileSlotsAreGatedKeepsEveryInvariant) {
  sim::Scenario s = sim::Scenario::synthetic(3, 2, 0.04);
  s.buffer_org = "shared";
  s.warmup_cycles = 500;
  s.measure_cycles = 6'000;

  core::RunnerOptions options;
  sim::StructuralFault link_kill;
  link_kill.router = 0;
  link_kill.port = static_cast<int>(Dir::East);
  // Low offered load means the slot policy has gated most of the shared
  // region well before the kill lands.
  link_kill.cycle = 2'000;
  options.faults.structural.push_back(link_kill);
  options.check_invariants = true;
  options.scheduler = SchedulerMode::kStepped;

  const core::RunResult result = core::run_experiment(
      s, core::PolicyKind::kSensorWiseSlotMd, core::Workload::synthetic(), options);

  EXPECT_TRUE(result.invariant_violations.empty())
      << result.invariant_violations.front() << " (+"
      << result.invariant_violations.size() - 1 << " more)";
  EXPECT_EQ(result.fault_counters.at("fault.link_kills"), 1u);
  // The run kept moving traffic after the kill.
  EXPECT_GT(result.flits_ejected, 0u);
  // Slot gating was genuinely active (the premise of this regression).
  EXPECT_GT(result.total_gate_transitions, 0u);
}

}  // namespace
}  // namespace nbtinoc::noc
