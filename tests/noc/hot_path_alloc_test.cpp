// Steady-state allocation audit for the per-cycle hot path.
//
// This TU replaces the global allocation functions with counting wrappers
// (affecting the whole test binary, which is harmless: they just delegate
// to malloc/free). The tests warm a network past its transient phase —
// ring buffers grown, stat slots interned, sensor epochs underway — then
// assert that further step() calls perform literally zero heap
// allocations. This is the enforcement half of the interned-handle /
// scratch-buffer / event-driven-accounting refactor: any future string
// stat key, per-cycle vector, or per-cycle tracker walk on the hot path
// shows up here as a nonzero count.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "nbtinoc/core/controller.hpp"
#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/sim/fault_plan.hpp"
#include "nbtinoc/traffic/synthetic.hpp"
#include "nbtinoc/traffic/trace.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const auto alignment = static_cast<std::size_t>(align);
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? 1 : size) != 0)
    throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace nbtinoc::noc {
namespace {

NocConfig mesh(int width, int vcs) {
  NocConfig c;
  c.width = width;
  c.height = width;
  c.num_vcs = vcs;
  c.buffer_depth = 8;
  c.packet_length = 18;
  return c;
}

std::uint64_t allocations_during_steps(Network& net, int steps) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < steps; ++i) net.step();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(HotPathAllocation, IdleMeshStepIsAllocationFree) {
  Network net(mesh(4, 4));
  net.run(64);  // settle any first-cycle lazy initialization
  EXPECT_EQ(allocations_during_steps(net, 2'000), 0u);
}

TEST(HotPathAllocation, LoadedSensorWiseSteadyStateIsAllocationFree) {
  Network net(mesh(4, 4));
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  traffic::install_uniform_traffic(net, 0.3, 42);
  // Warm past ring growth, stat interning, and several 1024-cycle sensor
  // epochs, so the measured window is genuine steady state.
  net.run(6'000);
  // 2500 steps span at least two epoch refreshes: the sensor-read path and
  // the lazy stress-sync fence are part of the audited steady state.
  EXPECT_EQ(allocations_during_steps(net, 2'500), 0u);
}

TEST(HotPathAllocation, FastForwardRunIsAllocationFree) {
  // The fast-forward machinery itself — quiescence proof, event-horizon
  // aggregation, and the sources' Bernoulli pre-roll — must stay off the
  // heap: a skip is supposed to be cheaper than the cycles it elides.
  Network net(mesh(4, 4));
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  // Low enough load that long quiescent stretches separate the packets.
  traffic::install_uniform_traffic(net, 0.005, 42);
  net.set_fast_forward(true);
  // The warm window is long: at this rate packets are rare, so the peak
  // ring/queue occupancies (which bound container growth) are only reached
  // after many packet coincidences.
  net.run(60'000);
  const std::uint64_t skips_before = net.skip_stats().skips;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  net.run(50'000);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
  // The audited window must actually have exercised the skip path.
  EXPECT_GT(net.skip_stats().skips, skips_before);
}

TEST(HotPathAllocation, ActiveSetRunIsAllocationFree) {
  // The active-set scheduler's machinery — wake ring rotation, heap pops,
  // park-eligibility checks, and the channel push hooks — must stay off
  // the heap in steady state: the bitmap is sized at mode entry and the
  // heap's capacity ratchets during warmup.
  Network net(mesh(4, 4));
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  traffic::install_uniform_traffic(net, 0.005, 42);
  net.set_scheduler_mode(SchedulerMode::kActiveSet);
  // Long warm window: at this rate the peak wake-heap occupancy is only
  // reached after many packet coincidences.
  net.run(60'000);
  const auto steps_before = net.scheduler_stats().router_steps;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  net.run(50'000);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
  // The audited window must have actually parked routers: far fewer router
  // steps than a full walk would execute.
  EXPECT_LT(net.scheduler_stats().router_steps - steps_before,
            50'000u * static_cast<std::uint64_t>(net.num_routers()));
}

TEST(HotPathAllocation, TraceReplaySteadyStateIsAllocationFree) {
  // The zero-copy replay contract, enforced: once the network is warm, a
  // trace-driven run performs no heap allocation at all — the replay
  // sources are cursors into the shared mapping, and generate_burst hands
  // whole same-cycle batches to the NI without any staging container.
  std::vector<std::unique_ptr<traffic::SyntheticSource>> sources;
  std::vector<ITrafficSource*> raw;
  for (NodeId id = 0; id < 16; ++id) {
    sources.push_back(std::make_unique<traffic::SyntheticSource>(
        id, 0.3, 18, traffic::DestinationPattern(traffic::PatternKind::kUniform, 4, 4),
        90 + static_cast<std::uint64_t>(id)));
    raw.push_back(sources.back().get());
  }
  const traffic::Trace trace = traffic::Trace::capture(raw, 20'000);
  const auto file = traffic::TraceFile::from_trace(trace, 16, "alloc audit");

  Network net(mesh(4, 4));
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  traffic::install_trace_replay(net, file);
  net.run(6'000);
  const std::uint64_t offered_before = net.stats().counter("noc.packets_offered");
  EXPECT_EQ(allocations_during_steps(net, 2'500), 0u);
  // The audited window must have replayed real traffic, not an exhausted
  // trace idling along.
  EXPECT_GT(net.stats().counter("noc.packets_offered"), offered_before);
}

TEST(HotPathAllocation, TopologyRoutedSteadyStateIsAllocationFree) {
  // The table-driven RC stage (route() lookups, dateline-class VC
  // subranges, multi-NI local ports) must stay off the heap on every
  // topology, not just the mesh the other audits cover.
  struct TopoLoad {
    const char* topology;
    double rate;  // below each topology's saturation point, so source
                  // queues reach a bounded steady state inside the warmup
  };
  for (const auto& [topology, rate] :
       {TopoLoad{"torus", 0.3}, {"ring", 0.05}, {"cmesh", 0.15}}) {
    NocConfig c = mesh(4, 4);
    c.topology = parse_topology_kind(topology);
    if (c.topology == TopologyKind::kConcentratedMesh) c.concentration = 2;
    Network net(c);
    const auto model = nbti::NbtiModel::calibrated({}, {});
    core::PolicyConfig pc;
    pc.kind = core::PolicyKind::kSensorWise;
    core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
    ctrl.attach();
    traffic::install_uniform_traffic(net, rate, 42);
    net.run(6'000);
    EXPECT_EQ(allocations_during_steps(net, 2'500), 0u) << topology;
  }
}

TEST(HotPathAllocation, SharedPoolRunIsAllocationFree) {
  // The DAMQ datapath — free-list claims, per-VC chain splices, waking-FIFO
  // maturation, slot-form gate commands, and the per-slot sensor banks the
  // slot policy reads — must stay off the heap: every list is fixed-size
  // intrusive arrays sized at construction.
  NocConfig c = mesh(4, 4);
  c.buffer_org = BufferOrg::kShared;
  Network net(c);
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWiseSlotMd;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  traffic::install_uniform_traffic(net, 0.3, 42);
  net.run(6'000);
  EXPECT_EQ(allocations_during_steps(net, 2'500), 0u);
}

TEST(HotPathAllocation, FaultyRunSteadyStateIsAllocationFree) {
  Network net(mesh(4, 4));
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 7);
  ctrl.attach();
  sim::FaultInjector injector(sim::FaultPlan::uniform(0.02), /*seed=*/3);
  injector.bind_stats(&net.stats());
  ctrl.set_fault_injector(&injector);
  traffic::install_uniform_traffic(net, 0.3, 42);
  net.run(6'000);
  EXPECT_EQ(allocations_during_steps(net, 2'500), 0u);
}

}  // namespace
}  // namespace nbtinoc::noc
