#include "nbtinoc/noc/types.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::noc {
namespace {

TEST(Types, OppositeIsInvolutive) {
  for (int d = 0; d < 4; ++d) {
    const Dir dir = static_cast<Dir>(d);
    EXPECT_EQ(opposite(opposite(dir)), dir);
  }
  EXPECT_EQ(opposite(Dir::Local), Dir::Local);
}

TEST(Types, OppositePairs) {
  EXPECT_EQ(opposite(Dir::North), Dir::South);
  EXPECT_EQ(opposite(Dir::East), Dir::West);
}

TEST(Types, DirNames) {
  EXPECT_EQ(to_string(Dir::North), "North");
  EXPECT_EQ(to_string(Dir::Local), "Local");
  EXPECT_EQ(dir_letter(Dir::East), 'E');
  EXPECT_EQ(dir_letter(Dir::West), 'W');
}

TEST(Types, VcStateNames) {
  EXPECT_EQ(to_string(VcState::Idle), "Idle");
  EXPECT_EQ(to_string(VcState::Active), "Active");
  EXPECT_EQ(to_string(VcState::Recovery), "Recovery");
}

}  // namespace
}  // namespace nbtinoc::noc
