#include "nbtinoc/noc/channel.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nbtinoc::noc {
namespace {

TEST(Channel, DeliversExactlyAtDelay) {
  Channel<int> ch(2);
  ch.push(42, /*now=*/10);
  EXPECT_FALSE(ch.pop_ready(10).has_value());
  EXPECT_FALSE(ch.pop_ready(11).has_value());
  const auto v = ch.pop_ready(12);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, ZeroDelayIsSameCycle) {
  Channel<int> ch(0);
  ch.push(7, 5);
  EXPECT_EQ(ch.pop_ready(5).value(), 7);
}

TEST(Channel, PreservesOrder) {
  Channel<int> ch(1);
  ch.push(1, 0);
  ch.push(2, 0);
  ch.push(3, 1);
  EXPECT_EQ(ch.pop_ready(1).value(), 1);
  EXPECT_EQ(ch.pop_ready(1).value(), 2);
  EXPECT_FALSE(ch.pop_ready(1).has_value());
  EXPECT_EQ(ch.pop_ready(2).value(), 3);
}

TEST(Channel, PeekDoesNotConsume)  {
  Channel<std::string> ch(1);
  ch.push("flit", 0);
  EXPECT_EQ(ch.peek_ready(0), nullptr);
  ASSERT_NE(ch.peek_ready(1), nullptr);
  EXPECT_EQ(*ch.peek_ready(1), "flit");
  EXPECT_EQ(ch.in_flight(), 1u);
  EXPECT_EQ(ch.pop_ready(1).value(), "flit");
}

TEST(Channel, LateDeliveryStillWorks) {
  Channel<int> ch(1);
  ch.push(9, 0);
  // Consumer polls late: the payload is still there.
  EXPECT_EQ(ch.pop_ready(100).value(), 9);
}

TEST(Channel, ClearDropsInFlight) {
  Channel<int> ch(3);
  ch.push(1, 0);
  ch.clear();
  EXPECT_TRUE(ch.empty());
  EXPECT_FALSE(ch.pop_ready(10).has_value());
}

TEST(Channel, InFlightCount) {
  Channel<int> ch(5);
  ch.push(1, 0);
  ch.push(2, 1);
  EXPECT_EQ(ch.in_flight(), 2u);
}

}  // namespace
}  // namespace nbtinoc::noc
