#include "nbtinoc/noc/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace nbtinoc::noc {
namespace {

TEST(Channel, DeliversExactlyAtDelay) {
  Channel<int> ch(2);
  ch.push(42, /*now=*/10);
  EXPECT_FALSE(ch.pop_ready(10).has_value());
  EXPECT_FALSE(ch.pop_ready(11).has_value());
  const auto v = ch.pop_ready(12);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, ZeroDelayIsSameCycle) {
  Channel<int> ch(0);
  ch.push(7, 5);
  EXPECT_EQ(ch.pop_ready(5).value(), 7);
}

TEST(Channel, PreservesOrder) {
  Channel<int> ch(1);
  ch.push(1, 0);
  ch.push(2, 0);
  ch.push(3, 1);
  EXPECT_EQ(ch.pop_ready(1).value(), 1);
  EXPECT_EQ(ch.pop_ready(1).value(), 2);
  EXPECT_FALSE(ch.pop_ready(1).has_value());
  EXPECT_EQ(ch.pop_ready(2).value(), 3);
}

TEST(Channel, PeekDoesNotConsume)  {
  Channel<std::string> ch(1);
  ch.push("flit", 0);
  EXPECT_EQ(ch.peek_ready(0), nullptr);
  ASSERT_NE(ch.peek_ready(1), nullptr);
  EXPECT_EQ(*ch.peek_ready(1), "flit");
  EXPECT_EQ(ch.in_flight(), 1u);
  EXPECT_EQ(ch.pop_ready(1).value(), "flit");
}

TEST(Channel, LateDeliveryStillWorks) {
  Channel<int> ch(1);
  ch.push(9, 0);
  // Consumer polls late: the payload is still there.
  EXPECT_EQ(ch.pop_ready(100).value(), 9);
}

TEST(Channel, ClearDropsInFlight) {
  Channel<int> ch(3);
  ch.push(1, 0);
  ch.clear();
  EXPECT_TRUE(ch.empty());
  EXPECT_FALSE(ch.pop_ready(10).has_value());
}

TEST(Channel, InFlightCount) {
  Channel<int> ch(5);
  ch.push(1, 0);
  ch.push(2, 1);
  EXPECT_EQ(ch.in_flight(), 2u);
}

TEST(Channel, MultipleReadySameCycleDrainInPushOrder) {
  Channel<int> ch(2);
  ch.push(1, 0);
  ch.push(2, 0);
  ch.push(3, 0);
  // All three became deliverable at cycle 2; they drain strictly in push
  // order, one pop at a time.
  EXPECT_EQ(ch.pop_ready(2).value(), 1);
  EXPECT_EQ(ch.pop_ready(2).value(), 2);
  EXPECT_EQ(ch.pop_ready(2).value(), 3);
  EXPECT_FALSE(ch.pop_ready(2).has_value());
}

TEST(Channel, ZeroDelayPreservesOrderWithinCycle) {
  Channel<int> ch(0);
  ch.push(10, 7);
  ch.push(11, 7);
  EXPECT_EQ(ch.pop_ready(7).value(), 10);
  EXPECT_EQ(ch.pop_ready(7).value(), 11);
}

TEST(Channel, ClearWithMultipleInFlightDropsEverything) {
  Channel<int> ch(4);
  ch.push(1, 0);
  ch.push(2, 1);
  ch.push(3, 2);
  EXPECT_EQ(ch.in_flight(), 3u);
  ch.clear();
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.in_flight(), 0u);
  // The channel keeps working after a clear.
  ch.push(4, 10);
  EXPECT_EQ(ch.pop_ready(14).value(), 4);
}

TEST(Channel, FaultHookCanDropPayloads) {
  Channel<int> ch(1);
  ch.set_fault_hook([](int& v, sim::Cycle) { return v != 2; });
  ch.push(1, 0);
  ch.push(2, 0);
  ch.push(3, 0);
  // The dropped payload is consumed silently: pop skips to the next one.
  EXPECT_EQ(ch.pop_ready(1).value(), 1);
  EXPECT_EQ(ch.pop_ready(1).value(), 3);
  EXPECT_FALSE(ch.pop_ready(1).has_value());
  EXPECT_EQ(ch.dropped(), 1u);
}

TEST(Channel, FaultHookCanMutateInFlight) {
  Channel<int> ch(1);
  ch.set_fault_hook([](int& v, sim::Cycle) {
    v += 100;
    return true;
  });
  ch.push(5, 0);
  EXPECT_EQ(ch.pop_ready(1).value(), 105);
  EXPECT_EQ(ch.dropped(), 0u);
}

TEST(Channel, FaultHookFiresExactlyOncePerPayload) {
  Channel<int> ch(1);
  int fires = 0;
  ch.set_fault_hook([&fires](int&, sim::Cycle) {
    ++fires;
    return true;
  });
  ch.push(1, 0);
  // Peeks must not fire the hook: fault decisions draw from an RNG stream
  // and must happen exactly once, at consumption.
  ch.peek_ready(1);
  ch.peek_ready(1);
  EXPECT_EQ(fires, 0);
  ch.pop_ready(1);
  EXPECT_EQ(fires, 1);
}

TEST(Channel, RemovingFaultHookRestoresExactDelivery) {
  Channel<int> ch(1);
  ch.set_fault_hook([](int&, sim::Cycle) { return false; });
  ch.push(1, 0);
  EXPECT_FALSE(ch.pop_ready(1).has_value());
  ch.set_fault_hook(nullptr);
  EXPECT_FALSE(ch.has_fault_hook());
  ch.push(2, 1);
  EXPECT_EQ(ch.pop_ready(2).value(), 2);
}

TEST(Channel, ForEachInFlightSeesQueueOrder) {
  Channel<int> ch(3);
  ch.push(7, 0);
  ch.push(8, 1);
  std::vector<std::pair<int, sim::Cycle>> seen;
  ch.for_each_in_flight([&](const int& v, sim::Cycle at) { seen.emplace_back(v, at); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<int, sim::Cycle>{7, 3}));
  EXPECT_EQ(seen[1], (std::pair<int, sim::Cycle>{8, 4}));
}

}  // namespace
}  // namespace nbtinoc::noc
