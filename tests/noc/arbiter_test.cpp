#include "nbtinoc/noc/arbiter.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace nbtinoc::noc {
namespace {

TEST(RoundRobinArbiter, NoRequestsNoGrant) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({false, false, false, false}), -1);
  EXPECT_EQ(arb.arbitrate(std::vector<bool>{}), -1);
}

TEST(RoundRobinArbiter, SingleRequesterWins) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({false, false, true, false}), 2);
}

TEST(RoundRobinArbiter, PointerAdvancesPastWinner) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 0);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 1);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 2);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 3);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 0);
}

TEST(RoundRobinArbiter, FairUnderFullLoad) {
  RoundRobinArbiter arb(3);
  std::map<int, int> wins;
  for (int i = 0; i < 300; ++i) ++wins[arb.arbitrate({true, true, true})];
  EXPECT_EQ(wins[0], 100);
  EXPECT_EQ(wins[1], 100);
  EXPECT_EQ(wins[2], 100);
}

TEST(RoundRobinArbiter, SkipsNonRequesters) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({true, false, true, false}), 0);
  EXPECT_EQ(arb.arbitrate({true, false, true, false}), 2);
  EXPECT_EQ(arb.arbitrate({true, false, true, false}), 0);
}

TEST(RoundRobinArbiter, PeekDoesNotAdvance) {
  RoundRobinArbiter arb(2);
  EXPECT_EQ(arb.peek({true, true}), 0);
  EXPECT_EQ(arb.peek({true, true}), 0);
  EXPECT_EQ(arb.arbitrate({true, true}), 0);
  EXPECT_EQ(arb.peek({true, true}), 1);
}

TEST(RoundRobinArbiter, AdvancePast) {
  RoundRobinArbiter arb(4);
  arb.advance_past(2);
  EXPECT_EQ(arb.peek({true, true, true, true}), 3);
  arb.advance_past(3);
  EXPECT_EQ(arb.peek({true, true, true, true}), 0);
}

TEST(RoundRobinArbiter, ResizeResetsOutOfRangePointer) {
  RoundRobinArbiter arb(4);
  arb.advance_past(2);  // pointer = 3
  arb.resize(2);
  EXPECT_EQ(arb.peek({true, true}), 0);
}

TEST(RoundRobinArbiter, ShortRequestVectorTolerated) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate(std::vector<bool>{true}), 0);  // treats missing entries as absent
}

// --- RequestSet (the allocation-free scratch form of the request vector) ---

TEST(RequestSet, SetTestClearAny) {
  RequestSet set(70);  // spans two 64-bit words
  EXPECT_EQ(set.size(), 70u);
  EXPECT_FALSE(set.any());
  set.set(0);
  set.set(63);
  set.set(69);
  EXPECT_TRUE(set.any());
  EXPECT_TRUE(set.test(0));
  EXPECT_TRUE(set.test(63));
  EXPECT_TRUE(set.test(69));
  EXPECT_FALSE(set.test(1));
  EXPECT_FALSE(set.test(64));
  set.clear();
  EXPECT_FALSE(set.any());
  EXPECT_FALSE(set.test(63));
}

// The two overloads must grant identically: the RequestSet path replaced the
// vector<bool> path in the router stages and must not change arbitration.
TEST(RequestSet, ArbitrateMatchesVectorBoolOverload) {
  RoundRobinArbiter vec_arb(5);
  RoundRobinArbiter set_arb(5);
  std::uint32_t lcg = 12345;
  for (int round = 0; round < 200; ++round) {
    std::vector<bool> requests(5);
    RequestSet set(5);
    for (std::size_t i = 0; i < 5; ++i) {
      lcg = lcg * 1664525u + 1013904223u;
      const bool req = (lcg >> 16) & 1u;
      requests[i] = req;
      if (req) set.set(i);
    }
    EXPECT_EQ(vec_arb.peek(requests), set_arb.peek(set));
    EXPECT_EQ(vec_arb.arbitrate(requests), set_arb.arbitrate(set));
    EXPECT_EQ(vec_arb.pointer(), set_arb.pointer());
  }
}

TEST(RequestSet, ShorterThanArbiterTolerated) {
  RoundRobinArbiter arb(4);
  RequestSet set(1);
  set.set(0);
  EXPECT_EQ(arb.arbitrate(set), 0);
}

}  // namespace
}  // namespace nbtinoc::noc
