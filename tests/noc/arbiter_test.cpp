#include "nbtinoc/noc/arbiter.hpp"

#include <gtest/gtest.h>

#include <map>

namespace nbtinoc::noc {
namespace {

TEST(RoundRobinArbiter, NoRequestsNoGrant) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({false, false, false, false}), -1);
  EXPECT_EQ(arb.arbitrate({}), -1);
}

TEST(RoundRobinArbiter, SingleRequesterWins) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({false, false, true, false}), 2);
}

TEST(RoundRobinArbiter, PointerAdvancesPastWinner) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 0);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 1);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 2);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 3);
  EXPECT_EQ(arb.arbitrate({true, true, true, true}), 0);
}

TEST(RoundRobinArbiter, FairUnderFullLoad) {
  RoundRobinArbiter arb(3);
  std::map<int, int> wins;
  for (int i = 0; i < 300; ++i) ++wins[arb.arbitrate({true, true, true})];
  EXPECT_EQ(wins[0], 100);
  EXPECT_EQ(wins[1], 100);
  EXPECT_EQ(wins[2], 100);
}

TEST(RoundRobinArbiter, SkipsNonRequesters) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({true, false, true, false}), 0);
  EXPECT_EQ(arb.arbitrate({true, false, true, false}), 2);
  EXPECT_EQ(arb.arbitrate({true, false, true, false}), 0);
}

TEST(RoundRobinArbiter, PeekDoesNotAdvance) {
  RoundRobinArbiter arb(2);
  EXPECT_EQ(arb.peek({true, true}), 0);
  EXPECT_EQ(arb.peek({true, true}), 0);
  EXPECT_EQ(arb.arbitrate({true, true}), 0);
  EXPECT_EQ(arb.peek({true, true}), 1);
}

TEST(RoundRobinArbiter, AdvancePast) {
  RoundRobinArbiter arb(4);
  arb.advance_past(2);
  EXPECT_EQ(arb.peek({true, true, true, true}), 3);
  arb.advance_past(3);
  EXPECT_EQ(arb.peek({true, true, true, true}), 0);
}

TEST(RoundRobinArbiter, ResizeResetsOutOfRangePointer) {
  RoundRobinArbiter arb(4);
  arb.advance_past(2);  // pointer = 3
  arb.resize(2);
  EXPECT_EQ(arb.peek({true, true}), 0);
}

TEST(RoundRobinArbiter, ShortRequestVectorTolerated) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.arbitrate({true}), 0);  // treats missing entries as absent
}

}  // namespace
}  // namespace nbtinoc::noc
