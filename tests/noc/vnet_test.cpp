// Virtual-network tests: VC partition isolation, per-vnet gating decisions,
// and request/reply protocol traffic (Table I's 2-vnet configuration).

#include <gtest/gtest.h>

#include "nbtinoc/core/controller.hpp"
#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/traffic/request_reply.hpp"

namespace nbtinoc::noc {
namespace {

NocConfig two_vnet_config(int width = 2, int vcs_per_vnet = 2) {
  NocConfig c;
  c.width = width;
  c.height = width;
  c.num_vcs = vcs_per_vnet;
  c.num_vnets = 2;
  c.buffer_depth = 4;
  c.packet_length = 4;
  return c;
}

/// Source pinned to one vnet.
class VnetSource final : public ITrafficSource {
 public:
  VnetSource(NodeId dst, int length, int vnet, double rate, std::uint64_t seed)
      : dst_(dst), length_(length), vnet_(vnet), rate_(rate), rng_(seed) {}
  std::optional<PacketRequest> maybe_generate(sim::Cycle) override {
    if (!rng_.next_bernoulli(rate_)) return std::nullopt;
    return PacketRequest{dst_, length_, vnet_};
  }

 private:
  NodeId dst_;
  int length_;
  int vnet_;
  double rate_;
  util::Xoshiro256 rng_;
};

TEST(VirtualNetworks, ConfigPartitionHelpers) {
  const NocConfig c = two_vnet_config(2, 2);
  EXPECT_EQ(c.total_vcs(), 4);
  EXPECT_EQ(c.vnet_of_vc(0), 0);
  EXPECT_EQ(c.vnet_of_vc(1), 0);
  EXPECT_EQ(c.vnet_of_vc(2), 1);
  EXPECT_EQ(c.vnet_of_vc(3), 1);
  EXPECT_EQ(c.first_vc_of_vnet(1), 2);
}

TEST(VirtualNetworks, InputPortsHaveTotalVcs) {
  Network net(two_vnet_config());
  EXPECT_EQ(net.router(0).input(Dir::Local).num_vcs(), 4);
}

TEST(VirtualNetworks, PacketsStayInTheirPartition) {
  Network net(two_vnet_config());
  net.set_traffic_source(0, std::make_unique<VnetSource>(3, 4, /*vnet=*/1, 0.1, 7));
  net.set_traffic_source(1, std::make_unique<VnetSource>(2, 4, /*vnet=*/0, 0.1, 8));
  for (int i = 0; i < 4000; ++i) {
    net.step();
    // Invariant: any Active VC holding flits only holds its own vnet's.
    for (NodeId id = 0; id < net.nodes(); ++id) {
      for (int p = 0; p < kNumDirs; ++p) {
        const Dir port = static_cast<Dir>(p);
        if (!net.router(id).has_input(port)) continue;
        const auto& iu = net.router(id).input(port);
        for (int v = 0; v < iu.num_vcs(); ++v) {
          if (iu.vc(v).empty()) continue;
          ASSERT_EQ(net.config().vnet_of_vc(v), iu.vc(v).front().vnet)
              << "vnet isolation violated at router " << id;
        }
      }
    }
  }
  EXPECT_GT(net.stats().counter("noc.packets_ejected"), 50u);
}

TEST(VirtualNetworks, OutOfRangeVnetThrows) {
  Network net(two_vnet_config());
  net.set_traffic_source(0, std::make_unique<VnetSource>(3, 4, /*vnet=*/2, 1.0, 7));
  EXPECT_THROW(net.run(10), std::logic_error);
}

TEST(VirtualNetworks, BothPartitionsDeliverConcurrently) {
  Network net(two_vnet_config());
  net.set_traffic_source(0, std::make_unique<VnetSource>(3, 4, 0, 0.05, 1));
  net.set_traffic_source(3, std::make_unique<VnetSource>(0, 4, 1, 0.05, 2));
  net.run(5000);
  EXPECT_GT(net.ni(0).packets_ejected(), 10u);
  EXPECT_GT(net.ni(3).packets_ejected(), 10u);
}

TEST(VirtualNetworks, GatingRunsPerVnet) {
  // Under sensor-wise with traffic only on vnet 1, vnet 0's VCs must be
  // fully gated (no awake reservation wasted on a silent vnet).
  Network net(two_vnet_config());
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = core::PolicyKind::kSensorWise;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, 42);
  ctrl.attach();
  net.set_traffic_source(0, std::make_unique<VnetSource>(3, 4, /*vnet=*/1, 0.3, 7));
  net.run_with_warmup(2000, 8000);
  const auto duties = net.duty_cycles_percent(3, Dir::Local);  // r3 local port is quiet
  // Check a transit port on the path 0 -> 3 (e.g. router 1's West input).
  const auto transit = net.duty_cycles_percent(1, Dir::West);
  // vnet 0 subrange (VC0,1) has no traffic at all: near-zero duty.
  EXPECT_LT(transit[0], 1.0);
  EXPECT_LT(transit[1], 1.0);
  // vnet 1 subrange carries everything.
  EXPECT_GT(transit[2] + transit[3], 5.0);
  (void)duties;
}

TEST(VirtualNetworks, BaselineStillHundredPercentEverywhere) {
  Network net(two_vnet_config());
  net.set_traffic_source(0, std::make_unique<VnetSource>(3, 4, 1, 0.2, 3));
  net.run_with_warmup(500, 2000);
  for (double d : net.duty_cycles_percent(0, Dir::Local)) EXPECT_DOUBLE_EQ(d, 100.0);
}

}  // namespace
}  // namespace nbtinoc::noc

namespace nbtinoc::traffic {
namespace {

TEST(RequestReply, RejectsBadSetups) {
  noc::NocConfig single;
  single.width = 2;
  single.height = 2;
  noc::Network net(single);
  EXPECT_THROW(install_request_reply_traffic(net, {}, 1), std::invalid_argument);

  ReplyBoard board(4);
  RequestReplyConfig same_vnet;
  same_vnet.reply_vnet = same_vnet.request_vnet;
  EXPECT_THROW(RequestReplySource(0, 4, same_vnet, &board, 1), std::invalid_argument);
  EXPECT_THROW(RequestReplySource(0, 4, {}, nullptr, 1), std::invalid_argument);
}

TEST(RequestReply, RepliesFollowRequests) {
  ReplyBoard board(4);
  RequestReplyConfig cfg;
  cfg.request_rate = 1.0;  // request every cycle
  cfg.service_delay = 5;
  RequestReplySource requester(0, 4, cfg, &board, 11);

  const auto req = requester.maybe_generate(0);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->vnet, cfg.request_vnet);
  EXPECT_EQ(req->length, cfg.request_length);
  const noc::NodeId server = req->dst;

  RequestReplyConfig quiet = cfg;
  quiet.request_rate = 0.0;
  RequestReplySource responder(server, 4, quiet, &board, 12);
  EXPECT_FALSE(responder.maybe_generate(2).has_value());  // not ready yet
  const auto reply = responder.maybe_generate(5);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->vnet, cfg.reply_vnet);
  EXPECT_EQ(reply->length, cfg.reply_length);
  EXPECT_EQ(reply->dst, 0);
  EXPECT_EQ(responder.replies_sent(), 1u);
}

TEST(RequestReply, EndToEndOverTwoVnets) {
  noc::NocConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  cfg.num_vcs = 2;
  cfg.num_vnets = 2;
  cfg.buffer_depth = 4;
  noc::Network net(cfg);
  RequestReplyConfig rr;
  rr.request_rate = 0.02;
  install_request_reply_traffic(net, rr, 99);
  net.run(20'000);
  // Both short requests and long replies flow; replies dominate flit counts.
  const auto packets = net.stats().counter("noc.packets_ejected");
  const auto flits = net.stats().counter("noc.flits_ejected");
  EXPECT_GT(packets, 100u);
  // Mean packet length sits between request (1) and reply (9) lengths.
  const double mean_len = static_cast<double>(flits) / static_cast<double>(packets);
  EXPECT_GT(mean_len, 2.0);
  EXPECT_LT(mean_len, 9.0);
}

}  // namespace
}  // namespace nbtinoc::traffic
