#include "nbtinoc/noc/input_unit.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::noc {
namespace {

NocConfig config(int vcs = 4, int depth = 4) {
  NocConfig c;
  c.width = 2;
  c.height = 2;
  c.num_vcs = vcs;
  c.buffer_depth = depth;
  return c;
}

Flit head(PacketId pkt) {
  Flit f;
  f.type = FlitType::Head;
  f.packet = pkt;
  return f;
}

TEST(InputUnit, Construction) {
  InputUnit iu(Dir::East, config());
  EXPECT_EQ(iu.dir(), Dir::East);
  EXPECT_EQ(iu.num_vcs(), 4);
  for (int v = 0; v < 4; ++v) {
    EXPECT_TRUE(iu.vc(v).is_idle());
    EXPECT_FALSE(iu.has_output(v));
  }
}

TEST(InputUnit, ReceiveHeadSetsRouteAndArrival) {
  InputUnit iu(Dir::East, config());
  iu.vc(1).allocate(7, 0);
  Flit f = head(7);
  f.vc = 1;
  iu.receive_flit(f, Dir::West, /*now=*/42);
  EXPECT_EQ(iu.vc(1).route(), Dir::West);
  EXPECT_EQ(iu.vc(1).front().arrived_at, 42u);
}

TEST(InputUnit, ReceiveBadVcThrows) {
  InputUnit iu(Dir::East, config(2));
  Flit f = head(1);
  f.vc = 5;
  EXPECT_THROW(iu.receive_flit(f, Dir::West, 0), std::logic_error);
  f.vc = kInvalidVc;
  EXPECT_THROW(iu.receive_flit(f, Dir::West, 0), std::logic_error);
}

TEST(InputUnit, WaitingForVaSemantics) {
  InputUnit iu(Dir::East, config());
  // Empty VC: not waiting.
  EXPECT_FALSE(iu.waiting_for_va(0, 10));

  iu.vc(0).allocate(3, 0);
  EXPECT_FALSE(iu.waiting_for_va(0, 10));  // reserved but head not arrived

  Flit f = head(3);
  f.vc = 0;
  iu.receive_flit(f, Dir::North, 5);
  EXPECT_FALSE(iu.waiting_for_va(0, 5));  // BW this cycle: eligible next
  EXPECT_TRUE(iu.waiting_for_va(0, 6));

  iu.assign_output(0, Dir::North, 2);
  EXPECT_FALSE(iu.waiting_for_va(0, 6));  // already allocated downstream
}

TEST(InputUnit, NewTrafficTowardFiltersByRoute) {
  InputUnit iu(Dir::East, config());
  iu.vc(0).allocate(3, 0);
  Flit f = head(3);
  f.vc = 0;
  iu.receive_flit(f, Dir::North, 5);
  EXPECT_TRUE(iu.has_new_traffic_toward(Dir::North, 6));
  EXPECT_FALSE(iu.has_new_traffic_toward(Dir::South, 6));
}

TEST(InputUnit, AssignAndClearOutput) {
  InputUnit iu(Dir::East, config());
  iu.assign_output(2, Dir::South, 1);
  EXPECT_TRUE(iu.has_output(2));
  EXPECT_EQ(iu.out_port(2), Dir::South);
  EXPECT_EQ(iu.out_vc(2), 1);
  iu.clear_output(2);
  EXPECT_FALSE(iu.has_output(2));
}

TEST(InputUnit, GateCommandBaselineWakesEverything) {
  InputUnit iu(Dir::East, config());
  iu.vc(0).gate(0);
  iu.vc(1).gate(0);
  GateCommand cmd;  // gating_active = false
  iu.apply_gate_command(cmd, 0);
  EXPECT_TRUE(iu.vc(0).is_idle());
  EXPECT_TRUE(iu.vc(1).is_idle());
}

TEST(InputUnit, GateCommandKeepsExactlyOneAwake) {
  InputUnit iu(Dir::East, config());
  GateCommand cmd;
  cmd.gating_active = true;
  cmd.enable = true;
  cmd.keep_vc = 2;
  // now = 1: fresh buffers are in their (trivial) wake window at cycle 0.
  iu.apply_gate_command(cmd, 1);
  EXPECT_TRUE(iu.vc(0).is_gated());
  EXPECT_TRUE(iu.vc(1).is_gated());
  EXPECT_TRUE(iu.vc(2).is_idle());
  EXPECT_TRUE(iu.vc(3).is_gated());
}

TEST(InputUnit, GateCommandDisabledGatesAllIdle) {
  InputUnit iu(Dir::East, config());
  GateCommand cmd;
  cmd.gating_active = true;
  cmd.enable = false;
  cmd.keep_vc = 1;  // valid VC-ID always driven, but not enabled
  iu.apply_gate_command(cmd, 1);
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(iu.vc(v).is_gated());
}

TEST(InputUnit, GateCommandNeverTouchesActive) {
  InputUnit iu(Dir::East, config());
  iu.vc(1).allocate(9, 0);
  GateCommand cmd;
  cmd.gating_active = true;
  cmd.enable = true;
  cmd.keep_vc = 0;
  iu.apply_gate_command(cmd, 1);
  EXPECT_TRUE(iu.vc(1).is_active());
  EXPECT_TRUE(iu.vc(0).is_idle());
  EXPECT_TRUE(iu.vc(2).is_gated());
}

TEST(InputUnit, GateCommandWakesKeptVc) {
  InputUnit iu(Dir::East, config());
  iu.vc(3).gate(0);
  GateCommand cmd;
  cmd.gating_active = true;
  cmd.enable = true;
  cmd.keep_vc = 3;
  iu.apply_gate_command(cmd, 7);
  EXPECT_TRUE(iu.vc(3).is_idle());
}

TEST(InputUnit, SyncStressTracksPowerState) {
  InputUnit iu(Dir::East, config(2));
  iu.vc(1).gate(0);   // gated before any cycle elapses
  iu.sync_stress(2);  // cycles 0 and 1 elapse
  EXPECT_EQ(iu.trackers().at(0).stress_cycles(), 2u);
  EXPECT_EQ(iu.trackers().at(1).recovery_cycles(), 2u);
  EXPECT_DOUBLE_EQ(iu.trackers().at(0).duty_cycle_percent(), 100.0);
  EXPECT_DOUBLE_EQ(iu.trackers().at(1).duty_cycle_percent(), 0.0);
}

TEST(OutVcStateViewTest, ReflectsStates) {
  InputUnit iu(Dir::East, config(3));
  iu.vc(0).allocate(1, 0);
  iu.vc(2).gate(0);
  OutVcStateView view(&iu);
  EXPECT_EQ(view.num_vcs(), 3);
  EXPECT_TRUE(view.is_active(0));
  EXPECT_TRUE(view.is_idle(1));
  EXPECT_TRUE(view.is_recovery(2));
}

}  // namespace
}  // namespace nbtinoc::noc
