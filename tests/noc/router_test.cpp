// Direct unit tests of the Router pipeline stages, wired with hand-built
// channels instead of a full Network.

#include "nbtinoc/noc/router.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::noc {
namespace {

NocConfig config(int vcs = 2, int depth = 4) {
  NocConfig c;
  c.width = 2;
  c.height = 1;
  c.num_vcs = vcs;
  c.buffer_depth = depth;
  c.packet_length = 2;
  return c;
}

/// A two-router east-west rig: u --East--> r, plus NI-side channels on u.
/// The shared StatRegistry is declared first: routers intern their counter
/// handles against it at construction.
struct Rig {
  NocConfig cfg;
  sim::StatRegistry stats;
  Router u;
  Router r;
  Channel<Flit> flit_ur{NocConfig::kLinkDelay};
  Channel<Credit> credit_ru{NocConfig::kCreditDelay};
  Channel<Flit> inject_u{NocConfig::kLinkDelay};
  Channel<Credit> credit_u_ni{NocConfig::kCreditDelay};
  Channel<Flit> eject_u{NocConfig::kLinkDelay};
  Channel<Flit> inject_r{NocConfig::kLinkDelay};
  Channel<Credit> credit_r_ni{NocConfig::kCreditDelay};
  Channel<Flit> eject_r{NocConfig::kLinkDelay};

  explicit Rig(NocConfig c = config()) : cfg(c), u(0, c, stats), r(1, c, stats) {
    r.wire_input(Dir::West, &flit_ur, &credit_ru);
    u.wire_output(Dir::East, &r.input(Dir::West), &flit_ur, &credit_ru);
    u.wire_input(Dir::Local, &inject_u, &credit_u_ni);
    u.wire_ejection(&eject_u);
    r.wire_input(Dir::Local, &inject_r, &credit_r_ni);
    r.wire_ejection(&eject_r);
  }

  /// Emulates the NI: allocate u's local VC 0 and deliver a packet's flits.
  /// `spacing` paces the flits (an NI with credit flow control would); use a
  /// large spacing when the local buffer is shallow.
  void inject_packet(PacketId pkt, NodeId dst, int length, sim::Cycle now,
                     sim::Cycle spacing = 1) {
    u.input(Dir::Local).vc(0).allocate(pkt, now);
    for (int i = 0; i < length; ++i) {
      Flit f;
      f.packet = pkt;
      f.src = 0;
      f.dst = dst;
      f.seq = i;
      f.vc = 0;
      f.type = length == 1 ? FlitType::HeadTail
                           : (i == 0 ? FlitType::Head
                                     : (i == length - 1 ? FlitType::Tail : FlitType::Body));
      inject_u.push(f, now + static_cast<sim::Cycle>(i) * spacing);
    }
  }

  void step_routers(sim::Cycle now) {
    for (Router* router : {&u, &r}) router->va_stage(now);
    for (Router* router : {&u, &r}) router->sa_st_stage(now);
    for (Router* router : {&u, &r}) router->accept_arrivals(now);
  }
};

TEST(Router, ConstructionHasLocalPortsOnly) {
  sim::StatRegistry stats;
  Router router(0, config(), stats);
  EXPECT_TRUE(router.has_input(Dir::Local));
  EXPECT_TRUE(router.has_output(Dir::Local));
  EXPECT_FALSE(router.has_input(Dir::East));
  EXPECT_FALSE(router.has_output(Dir::East));
  EXPECT_EQ(router.id(), 0);
}

TEST(Router, WiringCreatesPorts) {
  Rig rig;
  EXPECT_TRUE(rig.u.has_output(Dir::East));
  EXPECT_TRUE(rig.r.has_input(Dir::West));
  EXPECT_FALSE(rig.u.has_input(Dir::East));
}

TEST(Router, FlitFlowsThroughBothRouters) {
  Rig rig;
  rig.inject_packet(1, /*dst=*/1, /*length=*/2, /*now=*/0);
  for (sim::Cycle t = 0; t < 20; ++t) rig.step_routers(t);
  // Both flits ejected at router 1.
  int ejected = 0;
  while (rig.eject_r.pop_ready(30)) ++ejected;
  EXPECT_EQ(ejected, 2);
  EXPECT_EQ(rig.stats.counter("noc.flits_forwarded"), 2u);
  EXPECT_EQ(rig.stats.counter("noc.flits_ejected_router"), 2u);
}

TEST(Router, NewTrafficVisibleAfterHeadArrives) {
  Rig rig;
  rig.inject_packet(1, 1, 2, 0);
  EXPECT_FALSE(rig.u.has_new_traffic_toward(Dir::East, 0));
  // Head arrives at u's local input at kLinkDelay; new traffic asserts the
  // cycle after buffer write, and deasserts once VA assigns the output VC.
  rig.u.accept_arrivals(NocConfig::kLinkDelay);
  EXPECT_TRUE(rig.u.has_new_traffic_toward(Dir::East, NocConfig::kLinkDelay + 1));
  EXPECT_FALSE(rig.u.has_new_traffic_toward(Dir::West, NocConfig::kLinkDelay + 1));
  rig.u.va_stage(NocConfig::kLinkDelay + 1);
  EXPECT_FALSE(rig.u.has_new_traffic_toward(Dir::East, NocConfig::kLinkDelay + 2));
}

TEST(Router, VaReservesDownstreamVcImmediately) {
  Rig rig;
  rig.inject_packet(7, 1, 2, 0);
  const sim::Cycle arrival = NocConfig::kLinkDelay;
  rig.u.accept_arrivals(arrival);
  rig.u.va_stage(arrival + 1);
  // One downstream VC of r's west port is now Active (reserved), before any
  // flit reached r.
  int active = 0;
  for (int v = 0; v < rig.cfg.num_vcs; ++v)
    if (rig.r.input(Dir::West).vc(v).is_active()) ++active;
  EXPECT_EQ(active, 1);
}

TEST(Router, VaSkipsGatedDownstreamVcs) {
  Rig rig;
  // Gate ALL downstream VCs: VA must not allocate anything.
  for (int v = 0; v < rig.cfg.num_vcs; ++v) rig.r.input(Dir::West).vc(v).gate(0);
  rig.inject_packet(7, 1, 2, 0);
  rig.u.accept_arrivals(NocConfig::kLinkDelay);
  rig.u.va_stage(NocConfig::kLinkDelay + 1);
  EXPECT_FALSE(rig.u.input(Dir::Local).has_output(0));
  // Wake one: allocation proceeds next VA.
  rig.r.input(Dir::West).vc(1).wake(NocConfig::kLinkDelay + 1);
  rig.u.va_stage(NocConfig::kLinkDelay + 2);
  EXPECT_TRUE(rig.u.input(Dir::Local).has_output(0));
  EXPECT_EQ(rig.u.input(Dir::Local).out_vc(0), 1);
}

TEST(Router, CreditsDecrementOnSendAndReturnAfterDequeue) {
  Rig rig;
  rig.inject_packet(3, 1, 2, 0);
  const int depth = rig.cfg.buffer_depth;
  sim::Cycle t = 0;
  // Run until the first flit leaves u.
  for (; t < 20 && rig.stats.counter("noc.flits_forwarded") == 0; ++t) rig.step_routers(t);
  const int out_vc = [&] {
    for (int v = 0; v < rig.cfg.num_vcs; ++v)
      if (rig.r.input(Dir::West).vc(v).is_active()) return v;
    return kInvalidVc;
  }();
  ASSERT_NE(out_vc, kInvalidVc);
  EXPECT_LT(rig.u.output(Dir::East).credits(out_vc), depth);
  // Drain completely: credits must return to full depth.
  for (; t < 40; ++t) rig.step_routers(t);
  EXPECT_EQ(rig.u.output(Dir::East).credits(out_vc), depth);
}

TEST(Router, TailFreesBothEnds) {
  Rig rig;
  rig.inject_packet(9, 1, 2, 0);
  for (sim::Cycle t = 0; t < 40; ++t) rig.step_routers(t);
  // After full drain every VC on both routers is Idle again.
  for (int v = 0; v < rig.cfg.num_vcs; ++v) {
    EXPECT_TRUE(rig.u.input(Dir::Local).vc(v).is_idle());
    EXPECT_TRUE(rig.r.input(Dir::West).vc(v).is_idle());
    EXPECT_FALSE(rig.u.input(Dir::Local).has_output(v));
  }
}

TEST(Router, SaRespectsCreditBackpressure) {
  // Downstream buffer depth 1 and a long packet: at most one flit may be in
  // the downstream buffer at any time.
  NocConfig tiny = config(/*vcs=*/1, /*depth=*/1);
  tiny.packet_length = 4;
  Rig rig(tiny);
  rig.inject_packet(5, 1, 4, 0, /*spacing=*/10);
  for (sim::Cycle t = 0; t < 80; ++t) {
    rig.step_routers(t);
    EXPECT_LE(rig.r.input(Dir::West).vc(0).occupancy(), 1);
  }
  int ejected = 0;
  while (rig.eject_r.pop_ready(100)) ++ejected;
  EXPECT_EQ(ejected, 4);
}

TEST(Router, SyncStressCoversAllPorts) {
  Rig rig;
  rig.r.input(Dir::West).vc(0).gate(0);
  rig.r.sync_stress(1);  // flush cycle 0 on every input port
  EXPECT_EQ(rig.r.input(Dir::West).trackers().at(0).recovery_cycles(), 1u);
  EXPECT_EQ(rig.r.input(Dir::West).trackers().at(1).stress_cycles(), 1u);
  EXPECT_EQ(rig.r.input(Dir::Local).trackers().at(0).stress_cycles(), 1u);
}

TEST(Router, EjectionUnwiredThrows) {
  NocConfig c = config();
  sim::StatRegistry stats;
  Router router(0, c, stats);
  Channel<Flit> in{NocConfig::kLinkDelay};
  Channel<Credit> out{NocConfig::kCreditDelay};
  router.wire_input(Dir::Local, &in, &out);
  // A local-destined flit with no ejection channel is a wiring bug.
  router.input(Dir::Local).vc(0).allocate(1, 0);
  Flit f;
  f.packet = 1;
  f.dst = 0;
  f.vc = 0;
  f.type = FlitType::HeadTail;
  in.push(f, 0);
  router.accept_arrivals(NocConfig::kLinkDelay);
  router.va_stage(NocConfig::kLinkDelay + 1);
  EXPECT_THROW(router.sa_st_stage(NocConfig::kLinkDelay + 1), std::logic_error);
}

}  // namespace
}  // namespace nbtinoc::noc
