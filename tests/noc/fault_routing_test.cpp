// Degraded-fabric routing tests: the up*/down* regeneration must stay
// total (every surviving pair routable) and deadlock-free (CDG acyclic) on
// *any* connected survivor graph — exercised here by fuzzed kill schedules
// over every topology — and the healthy-mesh turn models must obey their
// turn restrictions exactly.

#include "nbtinoc/noc/fault_routing.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "nbtinoc/noc/routing.hpp"
#include "nbtinoc/noc/topology.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::noc {
namespace {

NocConfig make_config(const char* topology, int width, int height,
                      RoutingAlgo routing = RoutingAlgo::kXY, int concentration = 1) {
  NocConfig c;
  c.width = width;
  c.height = height;
  c.topology = parse_topology_kind(topology);
  c.concentration = concentration;
  c.num_vcs = 2;
  c.routing = routing;
  c.validate();
  return c;
}

// ---------------------------------------------------------------------------
// NocConfig validation of the adaptive modes (escape + adaptive classes).

TEST(AdaptiveConfig, RejectsAdaptiveRoutingWithoutEscapeClass) {
  NocConfig c = make_config("mesh", 3, 3, RoutingAlgo::kWestFirst);
  c.num_vcs = 1;  // cannot host escape + adaptive classes
  try {
    c.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("west-first"), std::string::npos) << what;
    EXPECT_NE(what.find("escape"), std::string::npos) << what;
    EXPECT_NE(what.find("num_vcs"), std::string::npos) << what;
  }
}

TEST(AdaptiveConfig, RejectsAdaptiveRoutingOffTheMesh) {
  NocConfig c = make_config("torus", 3, 3);
  c.routing = RoutingAlgo::kOddEven;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(AdaptiveConfig, ClassSplit) {
  const NocConfig c = make_config("mesh", 3, 3, RoutingAlgo::kWestFirst);
  EXPECT_EQ(c.vc_classes(), 2);
  EXPECT_EQ(c.class_first_vc(0), 0);
  EXPECT_EQ(c.class_first_vc(1), 1);
  EXPECT_TRUE(c.adaptive_routing());
  EXPECT_FALSE(make_config("mesh", 3, 3).adaptive_routing());
}

// ---------------------------------------------------------------------------
// Turn-model candidate sets on the healthy mesh.

TEST(TurnModel, WestFirstGoesWestFirst) {
  // Destination to the west: the candidate set is exactly {West} — all west
  // hops must come before any other turn.
  const auto only_west =
      turn_model_candidates(RoutingAlgo::kWestFirst, Coord{3, 1}, Coord{3, 1}, Coord{0, 2});
  ASSERT_EQ(only_west.count, 1);
  EXPECT_EQ(only_west.dir[0], Dir::West);
}

TEST(TurnModel, WestFirstOffersEastAndVerticalWhenProductive) {
  const auto c =
      turn_model_candidates(RoutingAlgo::kWestFirst, Coord{0, 0}, Coord{0, 0}, Coord{2, 2});
  ASSERT_EQ(c.count, 2);
  // Dir index order: South before East.
  EXPECT_EQ(c.dir[0], Dir::South);
  EXPECT_EQ(c.dir[1], Dir::East);
}

Coord step(Coord c, Dir d) {
  switch (d) {
    case Dir::North: return Coord{c.x, c.y - 1};
    case Dir::South: return Coord{c.x, c.y + 1};
    case Dir::East: return Coord{c.x + 1, c.y};
    case Dir::West: return Coord{c.x - 1, c.y};
    default: return c;
  }
}

TEST(TurnModel, CandidatesAreAlwaysMinimalAndNonEmpty) {
  // Property over every (cur, src, dst) triple on a 5x4 mesh: the candidate
  // set is non-empty whenever cur != dst and every candidate strictly
  // reduces the Manhattan distance to dst (minimal adaptive routing).
  const int w = 5, h = 4;
  for (const RoutingAlgo algo : {RoutingAlgo::kWestFirst, RoutingAlgo::kOddEven}) {
    for (int cy = 0; cy < h; ++cy)
      for (int cx = 0; cx < w; ++cx)
        for (int sy = 0; sy < h; ++sy)
          for (int sx = 0; sx < w; ++sx)
            for (int dy = 0; dy < h; ++dy)
              for (int dx = 0; dx < w; ++dx) {
                const Coord cur{cx, cy}, src{sx, sy}, dst{dx, dy};
                if (cur.x == dst.x && cur.y == dst.y) continue;
                const auto cands = turn_model_candidates(algo, cur, src, dst);
                ASSERT_GT(cands.count, 0)
                    << to_string(algo) << " stuck at (" << cx << "," << cy << ") for dst ("
                    << dx << "," << dy << ")";
                const int dist = std::abs(cur.x - dst.x) + std::abs(cur.y - dst.y);
                for (int i = 0; i < cands.count; ++i) {
                  const Coord next = step(cur, cands.dir[static_cast<std::size_t>(i)]);
                  EXPECT_EQ(std::abs(next.x - dst.x) + std::abs(next.y - dst.y), dist - 1)
                      << to_string(algo) << " non-minimal candidate";
                }
              }
  }
}

TEST(TurnModel, OddEvenBansTheChiuTurns) {
  // EN/ES turns (travelling East, turning North/South) are banned in even
  // columns; NW/SW turns (turning into West) are banned in odd columns.
  for (int x = 0; x < 6; ++x) {
    const bool even = x % 2 == 0;
    EXPECT_EQ(turn_allowed(RoutingAlgo::kOddEven, Dir::East, Dir::North, x), !even);
    EXPECT_EQ(turn_allowed(RoutingAlgo::kOddEven, Dir::East, Dir::South, x), !even);
    EXPECT_EQ(turn_allowed(RoutingAlgo::kOddEven, Dir::North, Dir::West, x), even);
    EXPECT_EQ(turn_allowed(RoutingAlgo::kOddEven, Dir::South, Dir::West, x), even);
  }
}

TEST(TurnModel, WestFirstBansTurnsIntoWest) {
  for (int x = 0; x < 4; ++x) {
    EXPECT_FALSE(turn_allowed(RoutingAlgo::kWestFirst, Dir::North, Dir::West, x));
    EXPECT_FALSE(turn_allowed(RoutingAlgo::kWestFirst, Dir::South, Dir::West, x));
    EXPECT_FALSE(turn_allowed(RoutingAlgo::kWestFirst, Dir::East, Dir::West, x));  // 180
    EXPECT_TRUE(turn_allowed(RoutingAlgo::kWestFirst, Dir::West, Dir::North, x));
    EXPECT_TRUE(turn_allowed(RoutingAlgo::kWestFirst, Dir::West, Dir::South, x));
  }
}

TEST(TurnModel, No180DegreeTurnsEver) {
  for (const RoutingAlgo algo :
       {RoutingAlgo::kXY, RoutingAlgo::kYX, RoutingAlgo::kWestFirst, RoutingAlgo::kOddEven}) {
    for (int d = 0; d < 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      EXPECT_FALSE(turn_allowed(algo, dir, opposite(dir), 1)) << to_string(algo);
    }
  }
}

// ---------------------------------------------------------------------------
// Healthy-fabric audits: every supported routing mode passes both checks on
// a spread of shapes (these are the same audits the network re-runs after a
// structural kill, so they must be trustworthy when nothing is broken).

TEST(RouteAudit, HealthyFabricsPassBothAudits) {
  const NocConfig configs[] = {
      make_config("mesh", 4, 4),
      make_config("mesh", 5, 3, RoutingAlgo::kYX),
      make_config("mesh", 4, 4, RoutingAlgo::kWestFirst),
      make_config("mesh", 5, 4, RoutingAlgo::kOddEven),
      make_config("torus", 4, 4),
      make_config("ring", 5, 1),
      make_config("cmesh", 4, 4, RoutingAlgo::kXY, 2),
  };
  for (const NocConfig& c : configs) {
    const auto topo = Topology::create(c);
    std::string diag;
    EXPECT_TRUE(route_walks_terminate(*topo, &diag)) << c.describe() << ": " << diag;
    EXPECT_TRUE(route_cdg_acyclic(*topo, &diag)) << c.describe() << ": " << diag;
  }
}

TEST(RouteAudit, DescribeRoutesNamesTheVerdictsAndEveryRouter) {
  const auto topo = Topology::create(make_config("mesh", 3, 3));
  const std::string dump = describe_routes(*topo);
  EXPECT_NE(dump.find("acyclic"), std::string::npos) << dump;
  for (NodeId r = 0; r < topo->num_routers(); ++r) {
    const std::string label = std::string("r").append(std::to_string(r));
    EXPECT_NE(dump.find(label), std::string::npos) << dump;
  }
}

// ---------------------------------------------------------------------------
// DegradedRouting unit properties on a hand-built graph: a 1x4 path
// 0-1-2-3 wired East/West.

DegradedRouting make_path4() {
  std::vector<NodeId> nbr(16, kInvalidNode);
  const auto wire = [&](NodeId u, Dir d, NodeId v) {
    nbr[static_cast<std::size_t>(u * 4 + static_cast<int>(d))] = v;
  };
  wire(0, Dir::East, 1);
  wire(1, Dir::West, 0);
  wire(1, Dir::East, 2);
  wire(2, Dir::West, 1);
  wire(2, Dir::East, 3);
  wire(3, Dir::West, 2);
  return DegradedRouting(4, std::move(nbr), std::vector<std::uint8_t>(4, 1));
}

TEST(DegradedRouting, PathGraphOrientsAwayFromTheRoot) {
  const DegradedRouting dr = make_path4();
  EXPECT_TRUE(dr.connected());
  // Root is the lowest id; BFS rank grows along the path.
  EXPECT_LT(dr.order(0), dr.order(1));
  EXPECT_LT(dr.order(1), dr.order(2));
  EXPECT_LT(dr.order(2), dr.order(3));
  EXPECT_TRUE(dr.move_is_down(0, 1));
  EXPECT_TRUE(dr.move_is_up(3, 2));
  // Down regions: on a path everything west of d reaches d pure-down.
  EXPECT_TRUE(dr.in_down_region(0, 3));
  EXPECT_FALSE(dr.in_down_region(3, 0));
  EXPECT_EQ(dr.down_dist(0, 3), 3);
  EXPECT_EQ(dr.dist(3, 0), 3);  // pure-up is legal too
  EXPECT_EQ(dr.dist(1, 1), 0);
}

TEST(DegradedRouting, RejectsMismatchedAdjacencySizes) {
  EXPECT_THROW(DegradedRouting(4, std::vector<NodeId>(8, kInvalidNode),
                               std::vector<std::uint8_t>(4, 1)),
               std::invalid_argument);
  EXPECT_THROW(DegradedRouting(4, std::vector<NodeId>(16, kInvalidNode),
                               std::vector<std::uint8_t>(3, 1)),
               std::invalid_argument);
}

TEST(TurnModel, CandidatesRejectDeterministicModes) {
  EXPECT_THROW(turn_model_candidates(RoutingAlgo::kXY, Coord{0, 0}, Coord{0, 0}, Coord{1, 1}),
               std::invalid_argument);
}

TEST(DegradedRouting, DisconnectedComponentsAreMutuallyUnreachable) {
  // Same path with the middle link 1-2 removed: {0,1} and {2,3}.
  std::vector<NodeId> nbr(16, kInvalidNode);
  const auto wire = [&](NodeId u, Dir d, NodeId v) {
    nbr[static_cast<std::size_t>(u * 4 + static_cast<int>(d))] = v;
  };
  wire(0, Dir::East, 1);
  wire(1, Dir::West, 0);
  wire(2, Dir::East, 3);
  wire(3, Dir::West, 2);
  const DegradedRouting dr(4, std::move(nbr), std::vector<std::uint8_t>(4, 1));
  EXPECT_FALSE(dr.connected());
  EXPECT_EQ(dr.dist(0, 2), DegradedRouting::kUnreachable);
  EXPECT_EQ(dr.dist(2, 0), DegradedRouting::kUnreachable);
  EXPECT_EQ(dr.dist(0, 1), 1);
  EXPECT_EQ(dr.dist(2, 3), 1);
}

// ---------------------------------------------------------------------------
// Fuzzed kill schedules: after ANY sequence of link/router kills, the
// regenerated tables must be total over each surviving component and the
// CDG must stay acyclic — on every topology, every routing mode it
// supports, at every intermediate step of the schedule.

struct KillFuzzCase {
  NocConfig config;
  std::uint64_t seed = 0;
};

KillFuzzCase derive_kill_case(std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0xdeadULL);
  KillFuzzCase kc;
  kc.seed = seed;
  constexpr const char* kTopos[] = {"mesh", "mesh", "torus", "ring", "cmesh"};
  const char* topo = kTopos[rng.next_below(5)];
  int width = 3 + static_cast<int>(rng.next_below(3));
  int height = 2 + static_cast<int>(rng.next_below(3));
  int concentration = 1;
  RoutingAlgo routing = RoutingAlgo::kXY;
  if (std::string(topo) == "cmesh") {
    width = 4;
    concentration = 2;
  } else if (std::string(topo) == "mesh" && rng.next_bernoulli(0.5)) {
    routing = rng.next_bernoulli(0.5) ? RoutingAlgo::kWestFirst : RoutingAlgo::kOddEven;
  }
  kc.config = make_config(topo, width, height, routing, concentration);
  return kc;
}

void expect_degraded_tables_sound(const Topology& topo, const std::string& trace) {
  std::string diag;
  ASSERT_TRUE(route_walks_terminate(topo, &diag)) << trace << ": " << diag;
  ASSERT_TRUE(route_cdg_acyclic(topo, &diag)) << trace << ": " << diag;
  const DegradedRouting* dr = topo.degraded_routing();
  ASSERT_NE(dr, nullptr);
  // Totality: every pair of alive terminals whose routers share a component
  // has a reachable route entry; pairs across components (or with a dead
  // endpoint) have the kNoPort sentinel.
  for (NodeId src = 0; src < topo.num_terminals(); ++src) {
    for (NodeId dst = 0; dst < topo.num_terminals(); ++dst) {
      const NodeId sr = topo.router_of(src);
      const RouteEntry entry = topo.route(sr, dst);
      if (!topo.terminal_alive(src) || !topo.terminal_alive(dst)) continue;
      const bool same_component =
          dr->dist(sr, topo.router_of(dst)) < DegradedRouting::kUnreachable;
      EXPECT_EQ(entry.reachable(), same_component)
          << trace << ": src " << src << " -> dst " << dst;
    }
  }
}

class KillFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KillFuzzTest, RegeneratedTablesStayTotalAndAcyclicAfterEveryKill) {
  const KillFuzzCase kc = derive_kill_case(GetParam());
  util::Xoshiro256 rng(kc.seed ^ 0xbadcabULL);
  const auto topo = Topology::create(kc.config);
  SCOPED_TRACE(kc.config.describe());

  std::string trace = "kills:";
  const int attempts = 2 + static_cast<int>(rng.next_below(6));
  for (int k = 0; k < attempts; ++k) {
    const auto r = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(topo->num_routers())));
    bool changed = false;
    if (rng.next_bernoulli(0.25)) {
      changed = topo->kill_router(r);
      if (changed) trace += " r" + std::to_string(r);
    } else {
      const Dir d = static_cast<Dir>(rng.next_below(4));
      changed = topo->kill_link(r, d);
      if (changed) trace += " r" + std::to_string(r) + dir_letter(d);
    }
    if (!changed) continue;
    ASSERT_TRUE(topo->degraded());
    expect_degraded_tables_sound(*topo, trace);
    // Stop fuzzing this schedule once the fabric splits: the split case is
    // asserted above (cross-component pairs unreachable), and piling more
    // kills onto a shattered fabric stops exercising anything new.
    if (!topo->fabric_connected()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomKillSchedules, KillFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 41));

// Killing every link of a router one by one must behave like killing the
// router: its terminals become unreachable, the rest stays routable.
TEST(KillSemantics, IsolatingARouterLeavesTheRestRoutable) {
  const auto topo = Topology::create(make_config("mesh", 4, 4));
  const NodeId victim = 5;  // interior router: four links
  for (int d = 0; d < 4; ++d) topo->kill_link(victim, static_cast<Dir>(d));
  EXPECT_FALSE(topo->fabric_connected());  // victim alive but cut off
  std::string diag;
  EXPECT_TRUE(route_walks_terminate(*topo, &diag)) << diag;
  EXPECT_TRUE(route_cdg_acyclic(*topo, &diag)) << diag;
  for (NodeId dst = 0; dst < topo->num_terminals(); ++dst) {
    if (dst == victim) continue;
    EXPECT_FALSE(topo->route(victim, dst).reachable());
    EXPECT_FALSE(topo->route(topo->router_of(dst), victim).reachable());
  }
}

TEST(KillSemantics, KillingADeadResourceIsANoOp) {
  const auto topo = Topology::create(make_config("mesh", 3, 3));
  ASSERT_TRUE(topo->kill_link(0, Dir::East));
  EXPECT_FALSE(topo->kill_link(0, Dir::East));
  EXPECT_FALSE(topo->kill_link(1, Dir::West));  // same physical channel
  ASSERT_TRUE(topo->kill_router(4));
  EXPECT_FALSE(topo->kill_router(4));
  EXPECT_FALSE(topo->kill_link(4, Dir::North));  // its links died with it
}

TEST(KillSemantics, TorusSurvivesAWholeRowOfLinkKills) {
  // Kill every horizontal link of row 0 on a 4x4 torus (including the
  // wrap): the row's routers still reach everything through their columns.
  const auto topo = Topology::create(make_config("torus", 4, 4));
  for (NodeId r = 0; r < 4; ++r) ASSERT_TRUE(topo->kill_link(r, Dir::East));
  EXPECT_TRUE(topo->fabric_connected());
  expect_degraded_tables_sound(*topo, "torus row kill");
}

}  // namespace
}  // namespace nbtinoc::noc
