#include "nbtinoc/core/lifetime_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nbtinoc::core {
namespace {

sim::Scenario scenario() {
  return sim::Scenario::synthetic(2, 2, 0.2);
}

LifetimeEngineOptions quick_options(int epochs = 4) {
  LifetimeEngineOptions opt;
  opt.epochs = epochs;
  opt.years_per_epoch = 0.5;
  opt.measure_cycles_per_epoch = 15'000;
  return opt;
}

LifetimeOptions stepped_of(const LifetimeEngineOptions& opt) {
  LifetimeOptions stepped;
  stepped.epochs = opt.epochs;
  stepped.years_per_epoch = opt.years_per_epoch;
  stepped.measure_cycles_per_epoch = opt.measure_cycles_per_epoch;
  stepped.runner = opt.runner;
  return stepped;
}

TEST(LifetimeEngine, RejectsBadOptions) {
  LifetimeEngineOptions bad = quick_options();
  bad.epochs = 0;
  EXPECT_THROW(run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                         Workload::synthetic(), {0, noc::Dir::East}, bad),
               std::invalid_argument);
  bad = quick_options();
  bad.years_per_epoch = 0.0;
  EXPECT_THROW(run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                         Workload::synthetic(), {0, noc::Dir::East}, bad),
               std::invalid_argument);
  bad = quick_options();
  bad.measure_cycles_per_epoch = 0;
  EXPECT_THROW(run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                         Workload::synthetic(), {0, noc::Dir::East}, bad),
               std::invalid_argument);
  bad = quick_options();
  bad.remeasure_tolerance_v = -1.0;
  EXPECT_THROW(run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                         Workload::synthetic(), {0, noc::Dir::East}, bad),
               std::invalid_argument);
  bad = quick_options();
  bad.max_extrapolated_epochs = 0;
  EXPECT_THROW(run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                         Workload::synthetic(), {0, noc::Dir::East}, bad),
               std::invalid_argument);
  // Nonexistent port on a 2x2 mesh corner.
  EXPECT_THROW(run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                         Workload::synthetic(), {0, noc::Dir::West},
                                         quick_options()),
               std::invalid_argument);
}

// The hierarchical loop's exactness anchor: tolerance 0 measures every
// epoch, which must reproduce run_lifetime_study bit for bit — same salts,
// same warmup derivation, same advance arithmetic.
TEST(LifetimeEngine, ToleranceZeroMatchesSteppedStudyExactly) {
  const auto opt = quick_options(4);
  LifetimeEngineOptions exact = opt;
  exact.remeasure_tolerance_v = 0.0;

  for (PolicyKind policy : {PolicyKind::kBaseline, PolicyKind::kSensorWise}) {
    const auto stepped = run_lifetime_study(scenario(), policy, Workload::synthetic(),
                                            {0, noc::Dir::East}, stepped_of(opt));
    const auto hier = run_hierarchical_lifetime(scenario(), policy, Workload::synthetic(),
                                                {0, noc::Dir::East}, exact);
    EXPECT_EQ(hier.measured_epochs, opt.epochs);
    EXPECT_EQ(hier.extrapolated_epochs, 0);
    ASSERT_EQ(hier.study.epochs.size(), stepped.epochs.size());
    for (std::size_t e = 0; e < stepped.epochs.size(); ++e) {
      EXPECT_DOUBLE_EQ(hier.study.epochs[e].years_elapsed, stepped.epochs[e].years_elapsed);
      EXPECT_EQ(hier.study.epochs[e].most_degraded, stepped.epochs[e].most_degraded);
      ASSERT_EQ(hier.study.epochs[e].vth_v.size(), stepped.epochs[e].vth_v.size());
      for (std::size_t v = 0; v < stepped.epochs[e].vth_v.size(); ++v) {
        EXPECT_EQ(hier.study.epochs[e].vth_v[v], stepped.epochs[e].vth_v[v]);
        EXPECT_EQ(hier.study.epochs[e].duty_percent[v], stepped.epochs[e].duty_percent[v]);
      }
    }
    EXPECT_EQ(hier.study.final_worst_vth_v, stepped.final_worst_vth_v);
    EXPECT_EQ(hier.study.final_spread_v, stepped.final_spread_v);
    EXPECT_EQ(hier.study.md_changes, stepped.md_changes);
    ASSERT_EQ(hier.study.final_vths.size(), stepped.final_vths.size());
    for (const auto& [key, bank] : stepped.final_vths) {
      const auto& hier_bank = hier.study.final_vths.at(key);
      ASSERT_EQ(hier_bank.size(), bank.size());
      for (std::size_t v = 0; v < bank.size(); ++v) EXPECT_EQ(hier_bank[v], bank[v]);
    }
  }
}

// With a nonzero tolerance the engine must actually skip measurement
// windows AND stay within a trajectory error commensurate with the
// tolerance it was given.
TEST(LifetimeEngine, ToleranceSkipsWindowsAndTracksReference) {
  const auto opt = quick_options(8);
  const auto stepped = run_lifetime_study(scenario(), PolicyKind::kSensorWise,
                                          Workload::synthetic(), {0, noc::Dir::East},
                                          stepped_of(opt));
  LifetimeEngineOptions approx = opt;
  approx.remeasure_tolerance_v = 0.002;
  const auto hier = run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                              Workload::synthetic(), {0, noc::Dir::East}, approx);
  EXPECT_LT(hier.measured_epochs, opt.epochs);  // this is where the speedup comes from
  EXPECT_EQ(hier.measured_epochs + hier.extrapolated_epochs, opt.epochs);
  EXPECT_GE(hier.measured_epochs, 1);

  // Convergence: every buffer of the full final silicon within a small
  // multiple of the tolerance (duty drifts slowly; errors accumulate
  // sublinearly because re-measurement resets them).
  ASSERT_EQ(hier.study.final_vths.size(), stepped.final_vths.size());
  double worst_error = 0.0;
  for (const auto& [key, bank] : stepped.final_vths) {
    const auto& hier_bank = hier.study.final_vths.at(key);
    ASSERT_EQ(hier_bank.size(), bank.size());
    for (std::size_t v = 0; v < bank.size(); ++v)
      worst_error = std::max(worst_error, std::fabs(hier_bank[v] - bank[v]));
  }
  EXPECT_LT(worst_error, 4 * approx.remeasure_tolerance_v);
}

TEST(LifetimeEngine, MaxExtrapolatedEpochsForcesRemeasure) {
  LifetimeEngineOptions opt = quick_options(6);
  opt.remeasure_tolerance_v = 1.0;  // absurdly loose: would never re-measure on drift
  opt.max_extrapolated_epochs = 2;
  const auto hier = run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                              Workload::synthetic(), {0, noc::Dir::East}, opt);
  // Epochs: measure, extrap, extrap, measure (cap), extrap, extrap.
  EXPECT_EQ(hier.measured_epochs, 2);
  EXPECT_EQ(hier.extrapolated_epochs, 4);
}

TEST(LifetimeEngine, DeterministicAcrossRuns) {
  LifetimeEngineOptions opt = quick_options(5);
  opt.remeasure_tolerance_v = 0.002;
  const auto a = run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                           Workload::synthetic(), {0, noc::Dir::East}, opt);
  const auto b = run_hierarchical_lifetime(scenario(), PolicyKind::kSensorWise,
                                           Workload::synthetic(), {0, noc::Dir::East}, opt);
  EXPECT_EQ(a.measured_epochs, b.measured_epochs);
  ASSERT_EQ(a.study.epochs.size(), b.study.epochs.size());
  for (std::size_t e = 0; e < a.study.epochs.size(); ++e)
    for (std::size_t v = 0; v < a.study.epochs[e].vth_v.size(); ++v)
      EXPECT_EQ(a.study.epochs[e].vth_v[v], b.study.epochs[e].vth_v[v]);
}

}  // namespace
}  // namespace nbtinoc::core
