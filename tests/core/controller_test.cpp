#include "nbtinoc/core/controller.hpp"

#include <gtest/gtest.h>

#include "nbtinoc/core/experiment.hpp"

namespace nbtinoc::core {
namespace {

noc::NocConfig config(int w = 2, int vcs = 2) {
  noc::NocConfig c;
  c.width = w;
  c.height = w;
  c.num_vcs = vcs;
  return c;
}

nbti::NbtiModel model() { return nbti::NbtiModel::calibrated(nbti::NbtiParams{}, {}); }

nbti::PvConfig pv() { return nbti::PvConfig{}; }

TEST(SampleNetworkVths, CoversExactlyTheExistingPorts) {
  const auto vths = sample_network_vths(config(2, 2), pv(), 42);
  // 2x2 mesh: each router has 2 mesh inputs + Local = 3 ports, 4 routers.
  EXPECT_EQ(vths.size(), 12u);
  for (const auto& [key, bank] : vths) EXPECT_EQ(bank.size(), 2u);
  EXPECT_TRUE(vths.count(noc::PortKey{0, noc::Dir::East}));
  EXPECT_TRUE(vths.count(noc::PortKey{0, noc::Dir::Local}));
  EXPECT_FALSE(vths.count(noc::PortKey{0, noc::Dir::West}));
  EXPECT_FALSE(vths.count(noc::PortKey{0, noc::Dir::North}));
}

TEST(SampleNetworkVths, DeterministicPerSeed) {
  const auto a = sample_network_vths(config(), pv(), 7);
  const auto b = sample_network_vths(config(), pv(), 7);
  EXPECT_EQ(a, b);
  const auto c = sample_network_vths(config(), pv(), 8);
  EXPECT_NE(a, c);
}

TEST(SampleNetworkVths, SixteenCoreCenterRouterHasFivePorts) {
  const auto vths = sample_network_vths(config(4, 4), pv(), 1);
  int ports_r5 = 0;
  for (const auto& [key, bank] : vths)
    if (key.router == 5) ++ports_r5;
  EXPECT_EQ(ports_r5, 5);
}

TEST(PolicyConfigValidate, RejectsZeroPeriodsWithActionableMessages) {
  PolicyConfig cfg;
  EXPECT_NO_THROW(cfg.validate());  // defaults are valid
  cfg.decision_period = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = PolicyConfig{};
  cfg.rr_rotation_period = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = PolicyConfig{};
  cfg.sensor.epoch_cycles = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // run_experiment validates the policy config up front, whichever policy
  // kind ends up using the bad field.
  sim::Scenario s = sim::Scenario::synthetic(2, 2, 0.1);
  s.warmup_cycles = 100;
  s.measure_cycles = 500;
  RunnerOptions ropt;
  ropt.policy.rr_rotation_period = 0;
  EXPECT_THROW(run_experiment(s, PolicyKind::kRrNoSensor, Workload::synthetic(), ropt),
               std::invalid_argument);
}

TEST(PolicyGateController, NameMatchesKind) {
  noc::Network net(config());
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kSensorWise;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 1);
  EXPECT_STREQ(ctrl.name(), "sensor-wise");
  EXPECT_EQ(ctrl.kind(), PolicyKind::kSensorWise);
}

TEST(PolicyGateController, InitialVthsMatchSampler) {
  noc::Network net(config());
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 99);
  const auto expected = sample_network_vths(net.config(), pv(), 99);
  for (const auto& [key, bank] : expected) EXPECT_EQ(ctrl.initial_vths(key), bank);
}

TEST(PolicyGateController, MostDegradedIsArgmaxOfInitialVths) {
  noc::Network net(config());
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 5);
  for (const auto key :
       {noc::PortKey{0, noc::Dir::East}, noc::PortKey{3, noc::Dir::Local}}) {
    const auto& vths = ctrl.initial_vths(key);
    const int md = ctrl.most_degraded(key);
    for (std::size_t i = 0; i < vths.size(); ++i)
      EXPECT_LE(vths[i], vths[static_cast<std::size_t>(md)]);
  }
}

TEST(PolicyGateController, BaselineDecidesNoGating) {
  noc::Network net(config());
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kBaseline;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 1);
  const noc::OutVcStateView view(&net.router(0).input(noc::Dir::East));
  const auto cmd = ctrl.decide({0, noc::Dir::East}, view, true, 0);
  EXPECT_FALSE(cmd.gating_active);
}

TEST(PolicyGateController, RrCandidateRotatesOnTimeBasis) {
  noc::Network net(config(2, 4));
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kRrNoSensor;
  cfg.rr_rotation_period = 2;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 1);
  const noc::OutVcStateView view(&net.router(0).input(noc::Dir::East));
  // candidate = (now / 2) % 4
  EXPECT_EQ(ctrl.decide({0, noc::Dir::East}, view, true, 0).keep_vc, 0);
  EXPECT_EQ(ctrl.decide({0, noc::Dir::East}, view, true, 1).keep_vc, 0);
  EXPECT_EQ(ctrl.decide({0, noc::Dir::East}, view, true, 2).keep_vc, 1);
  EXPECT_EQ(ctrl.decide({0, noc::Dir::East}, view, true, 8).keep_vc, 0);
}

TEST(PolicyGateController, SensorWiseAvoidsMeasuredMd) {
  noc::Network net(config(2, 4));
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kSensorWise;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 1);
  const noc::PortKey key{0, noc::Dir::East};
  const noc::OutVcStateView view(&net.router(0).input(noc::Dir::East));
  const auto cmd = ctrl.decide(key, view, true, 0);
  EXPECT_TRUE(cmd.enable);
  EXPECT_NE(cmd.keep_vc, ctrl.most_degraded(key));
}

TEST(PolicyGateController, SensorWiseNoTrafficAlwaysEnables) {
  noc::Network net(config(2, 4));
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kSensorWiseNoTraffic;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 1);
  const noc::OutVcStateView view(&net.router(0).input(noc::Dir::East));
  const auto cmd = ctrl.decide({0, noc::Dir::East}, view, /*new_traffic=*/false, 0);
  EXPECT_TRUE(cmd.enable);  // cannot know that no packet is coming
}

TEST(PolicyGateController, AttachInstallsOnNetwork) {
  noc::Network net(config());
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kSensorWise;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 1);
  ctrl.attach();
  EXPECT_EQ(&net.gate_controller(), &ctrl);
  net.set_gate_controller(nullptr);
  EXPECT_STREQ(net.gate_controller().name(), "baseline");
}

TEST(PolicyGateController, DecisionPeriodHoldsCommands) {
  noc::Network net(config(2, 4));
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kRrNoSensor;
  cfg.decision_period = 10;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 1);
  const noc::PortKey key{0, noc::Dir::East};
  const noc::OutVcStateView view(&net.router(0).input(noc::Dir::East));
  const auto first = ctrl.decide(key, view, true, 0);
  // The rr candidate rotates every cycle, but the held decision must not.
  const auto held = ctrl.decide(key, view, true, 5);
  EXPECT_EQ(held.keep_vc, first.keep_vc);
  const auto refreshed = ctrl.decide(key, view, true, 10);
  EXPECT_NE(refreshed.keep_vc, first.keep_vc);
}

TEST(PolicyGateController, NewTrafficOverridesHeldDisable) {
  noc::Network net(config(2, 4));
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kSensorWise;
  cfg.decision_period = 100;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 1);
  const noc::PortKey key{0, noc::Dir::East};
  const noc::OutVcStateView view(&net.router(0).input(noc::Dir::East));
  const auto idle_cmd = ctrl.decide(key, view, /*new_traffic=*/false, 0);
  EXPECT_FALSE(idle_cmd.enable);
  // A packet shows up two cycles later: the held "all gated" decision must
  // not stall it for 98 more cycles.
  const auto woken = ctrl.decide(key, view, /*new_traffic=*/true, 2);
  EXPECT_TRUE(woken.enable);
}

TEST(PolicyGateController, SensorRankKeepsHealthiest) {
  noc::Network net(config(2, 4));
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kSensorRank;
  PolicyGateController ctrl(net, cfg, m, {}, pv(), 5);
  const noc::PortKey key{0, noc::Dir::East};
  const noc::OutVcStateView view(&net.router(0).input(noc::Dir::East));
  const auto cmd = ctrl.decide(key, view, true, 0);
  ASSERT_TRUE(cmd.enable);
  const auto& vths = ctrl.initial_vths(key);
  for (double v : vths) EXPECT_GE(v, vths[static_cast<std::size_t>(cmd.keep_vc)]);
}

TEST(PolicyGateController, PostCycleRefreshesSensorsFromTrackers) {
  noc::Network net(config(2, 2));
  const nbti::NbtiModel m = model();
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kSensorWise;
  cfg.sensor.epoch_cycles = 1;
  cfg.sensor.time_acceleration = 1e12;  // exaggerate aging within the test
  // Zero PV spread so the ranking is purely stress-driven.
  nbti::PvConfig flat;
  flat.vth_sigma_v = 0.0;
  PolicyGateController ctrl(net, cfg, m, {}, flat, 1);
  const noc::PortKey key{0, noc::Dir::East};
  // Stress VC1 only.
  auto& iu = net.router(0).input(noc::Dir::East);
  iu.vc(0).gate(0);
  iu.sync_stress(1000);  // 1000 cycles elapse: VC0 recovers, VC1 stresses
  // Advance the network clock so elapsed time is nonzero.
  net.run(2);
  ctrl.post_cycle(net.clock().now());
  EXPECT_EQ(ctrl.most_degraded(key), 1);
}

}  // namespace
}  // namespace nbtinoc::core
