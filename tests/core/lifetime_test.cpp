#include "nbtinoc/core/lifetime.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::core {
namespace {

sim::Scenario scenario() {
  return sim::Scenario::synthetic(2, 2, 0.2);
}

LifetimeOptions quick_options(int epochs = 4) {
  LifetimeOptions opt;
  opt.epochs = epochs;
  opt.years_per_epoch = 0.5;
  opt.measure_cycles_per_epoch = 15'000;
  return opt;
}

TEST(LifetimeStudy, RejectsBadOptions) {
  LifetimeOptions bad = quick_options();
  bad.epochs = 0;
  EXPECT_THROW(run_lifetime_study(scenario(), PolicyKind::kSensorWise, Workload::synthetic(),
                                  {0, noc::Dir::East}, bad),
               std::invalid_argument);
  bad = quick_options();
  bad.years_per_epoch = 0.0;
  EXPECT_THROW(run_lifetime_study(scenario(), PolicyKind::kSensorWise, Workload::synthetic(),
                                  {0, noc::Dir::East}, bad),
               std::invalid_argument);
  bad = quick_options();
  bad.measure_cycles_per_epoch = 0;
  EXPECT_THROW(run_lifetime_study(scenario(), PolicyKind::kSensorWise, Workload::synthetic(),
                                  {0, noc::Dir::East}, bad),
               std::invalid_argument);
  EXPECT_THROW(run_lifetime_study(scenario(), PolicyKind::kSensorWise, Workload::synthetic(),
                                  {0, noc::Dir::West}, quick_options()),
               std::invalid_argument);
}

TEST(LifetimeStudy, RecordsEveryEpochWithMonotoneTime) {
  const auto r = run_lifetime_study(scenario(), PolicyKind::kSensorWise, Workload::synthetic(),
                                    {0, noc::Dir::East}, quick_options(4));
  ASSERT_EQ(r.epochs.size(), 4u);
  double prev_years = 0.0;
  for (const auto& e : r.epochs) {
    EXPECT_GT(e.years_elapsed, prev_years);
    prev_years = e.years_elapsed;
    EXPECT_EQ(e.vth_v.size(), 2u);
    EXPECT_EQ(e.duty_percent.size(), 2u);
  }
  EXPECT_DOUBLE_EQ(r.epochs.back().years_elapsed, 2.0);
}

TEST(LifetimeStudy, VthNeverDecreases) {
  const auto r = run_lifetime_study(scenario(), PolicyKind::kRrNoSensor, Workload::synthetic(),
                                    {0, noc::Dir::East}, quick_options(4));
  for (std::size_t e = 1; e < r.epochs.size(); ++e) {
    for (std::size_t v = 0; v < r.epochs[e].vth_v.size(); ++v)
      EXPECT_GE(r.epochs[e].vth_v[v], r.epochs[e - 1].vth_v[v] - 1e-12);
  }
}

TEST(LifetimeStudy, BaselineAgesFastest) {
  const auto base = run_lifetime_study(scenario(), PolicyKind::kBaseline, Workload::synthetic(),
                                       {0, noc::Dir::East}, quick_options(3));
  const auto sw = run_lifetime_study(scenario(), PolicyKind::kSensorWise, Workload::synthetic(),
                                     {0, noc::Dir::East}, quick_options(3));
  EXPECT_GT(base.final_worst_vth_v, sw.final_worst_vth_v);
}

TEST(LifetimeStudy, BaselineDutyStaysHundred) {
  const auto base = run_lifetime_study(scenario(), PolicyKind::kBaseline, Workload::synthetic(),
                                       {0, noc::Dir::East}, quick_options(2));
  for (const auto& e : base.epochs)
    for (double d : e.duty_percent) EXPECT_DOUBLE_EQ(d, 100.0);
}

TEST(LifetimeStudy, FinalVthsCoverEveryPort) {
  const auto r = run_lifetime_study(scenario(), PolicyKind::kSensorWise, Workload::synthetic(),
                                    {0, noc::Dir::East}, quick_options(2));
  EXPECT_EQ(r.final_vths.size(), 12u);  // 2x2 mesh: 3 ports x 4 routers
  for (const auto& [key, bank] : r.final_vths) EXPECT_EQ(bank.size(), 2u);
}

TEST(LifetimeStudy, SensorWiseEquizalizesWearOverTime) {
  // Under sensor-wise the accumulated shift concentrates away from the
  // initially-worst VC; the spread of *final* Vth should not exceed the
  // baseline's spread by much (baseline ages uniformly: spread = initial
  // PV spread exactly).
  const auto base = run_lifetime_study(scenario(), PolicyKind::kBaseline, Workload::synthetic(),
                                       {0, noc::Dir::East}, quick_options(4));
  const auto sw = run_lifetime_study(scenario(), PolicyKind::kSensorWise, Workload::synthetic(),
                                     {0, noc::Dir::East}, quick_options(4));
  // Baseline: every VC at alpha=1 -> near-equal shift (the Eox term makes a
  // higher-Vth device age marginally slower) -> spread ~ PV spread.
  const auto& first = base.epochs.front().vth_v;
  const auto& last = base.epochs.back().vth_v;
  EXPECT_NEAR(last[0] - last[1], first[0] - first[1], 1e-4);
  // The policy's wear-aware allocation keeps the final spread bounded.
  EXPECT_LT(sw.final_spread_v, 0.030);
}

}  // namespace
}  // namespace nbtinoc::core
