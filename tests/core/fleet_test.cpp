#include "nbtinoc/core/fleet.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nbtinoc::core {
namespace {

FleetSpec small_spec() {
  FleetSpec spec;
  spec.scenario = sim::Scenario::synthetic(2, 2, 0.2);
  spec.scenario.warmup_cycles = 300;
  spec.scenario.measure_cycles = 2'000;
  spec.policies = {PolicyKind::kBaseline, PolicyKind::kSensorWise};
  spec.workloads = {{"uniform", Workload::synthetic()}};
  spec.chips = 3;
  return spec;
}

TEST(Fleet, ValidatesSpec) {
  FleetSpec bad = small_spec();
  bad.chips = 0;
  EXPECT_THROW(run_fleet(bad, 1), std::invalid_argument);
  bad = small_spec();
  bad.policies.clear();
  EXPECT_THROW(run_fleet(bad, 1), std::invalid_argument);
  bad = small_spec();
  bad.failure_fraction = 0.0;
  EXPECT_THROW(run_fleet(bad, 1), std::invalid_argument);
  bad = small_spec();
  bad.failure_fraction = 1.5;
  EXPECT_THROW(run_fleet(bad, 1), std::invalid_argument);
  bad = small_spec();
  bad.dvth_budget_v = 0.0;
  EXPECT_THROW(run_fleet(bad, 1), std::invalid_argument);
  bad = small_spec();
  bad.workloads[0].label = "has,comma";
  EXPECT_THROW(run_fleet(bad, 1), std::invalid_argument);
  EXPECT_THROW(run_fleet_shard(small_spec(), 2, 2, 1), std::invalid_argument);
  EXPECT_THROW(run_fleet_shard(small_spec(), -1, 2, 1), std::invalid_argument);
}

TEST(Fleet, ChipSeedsAreDistinctAndStable) {
  const auto spec = small_spec();
  EXPECT_EQ(fleet_chip_seed(spec.scenario, 0), fleet_chip_seed(spec.scenario, 0));
  EXPECT_NE(fleet_chip_seed(spec.scenario, 0), fleet_chip_seed(spec.scenario, 1));
  EXPECT_NE(fleet_chip_seed(spec.scenario, 1), fleet_chip_seed(spec.scenario, 2));
}

TEST(Fleet, ReportIsByteIdenticalAcrossWorkerCounts) {
  const auto spec = small_spec();
  const FleetReport serial = run_fleet(spec, 1);
  const FleetReport threaded = run_fleet(spec, 3);
  EXPECT_EQ(serial.to_json(), threaded.to_json());
  EXPECT_EQ(serial.to_csv(), threaded.to_csv());
}

TEST(Fleet, ShardSplitsMergeByteIdentically) {
  const auto spec = small_spec();
  const FleetReport whole = run_fleet(spec, 2);

  for (int shard_count : {2, 3}) {
    std::vector<FleetShardResult> shards;
    for (int i = 0; i < shard_count; ++i)
      shards.push_back(run_fleet_shard(spec, i, shard_count, 2));
    const FleetReport merged = merge_fleet_shards(spec, std::move(shards));
    EXPECT_EQ(whole.to_json(), merged.to_json()) << shard_count << "-way split";
    EXPECT_EQ(whole.to_csv(), merged.to_csv()) << shard_count << "-way split";
  }
}

TEST(Fleet, PartialsRoundTripExactly) {
  const auto spec = small_spec();
  const FleetShardResult shard = run_fleet_shard(spec, 1, 2, 1);
  const FleetShardResult parsed = parse_fleet_shard(serialize_fleet_shard(shard));
  EXPECT_EQ(parsed.digest, shard.digest);
  EXPECT_EQ(parsed.total_points, shard.total_points);
  EXPECT_EQ(parsed.shard_index, shard.shard_index);
  EXPECT_EQ(parsed.shard_count, shard.shard_count);
  ASSERT_EQ(parsed.outcomes.size(), shard.outcomes.size());
  for (std::size_t i = 0; i < shard.outcomes.size(); ++i) {
    EXPECT_EQ(parsed.outcomes[i].index, shard.outcomes[i].index);
    EXPECT_EQ(parsed.outcomes[i].chip, shard.outcomes[i].chip);
    EXPECT_EQ(parsed.outcomes[i].policy_index, shard.outcomes[i].policy_index);
    EXPECT_EQ(parsed.outcomes[i].workload_index, shard.outcomes[i].workload_index);
    // Bit-exact, not approximately-equal: the whole point of hex patterns.
    EXPECT_EQ(parsed.outcomes[i].failure_years, shard.outcomes[i].failure_years);
    EXPECT_EQ(parsed.outcomes[i].worst_duty_percent, shard.outcomes[i].worst_duty_percent);
  }
  // Serialize(parse(x)) == x closes the loop.
  EXPECT_EQ(serialize_fleet_shard(parsed), serialize_fleet_shard(shard));
}

TEST(Fleet, ParserRejectsMalformedPartials) {
  EXPECT_THROW(parse_fleet_shard(""), std::runtime_error);
  EXPECT_THROW(parse_fleet_shard("not a shard\n"), std::runtime_error);
  const auto spec = small_spec();
  const std::string good = serialize_fleet_shard(run_fleet_shard(spec, 0, 2, 1));
  // Truncation (drop the END line) is detected.
  EXPECT_THROW(parse_fleet_shard(good.substr(0, good.size() - 4)), std::runtime_error);
  // A corrupted outcome line names itself in the error.
  std::string corrupt = good;
  corrupt.replace(corrupt.find("\nO "), 3, "\nX ");
  EXPECT_THROW(parse_fleet_shard(corrupt), std::runtime_error);
}

TEST(Fleet, MergeRejectsForeignIncompleteAndOverlappingShards) {
  const auto spec = small_spec();
  FleetShardResult shard0 = run_fleet_shard(spec, 0, 2, 1);
  const FleetShardResult shard1 = run_fleet_shard(spec, 1, 2, 1);

  // Wrong configuration: digest mismatch.
  FleetSpec other = spec;
  other.dvth_budget_v = 0.05;
  try {
    merge_fleet_shards(other, {shard0, shard1});
    FAIL() << "digest mismatch not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different fleet configuration"), std::string::npos);
  }

  // Missing shard: coverage gap.
  EXPECT_THROW(merge_fleet_shards(spec, {shard0}), std::runtime_error);
  // Same shard twice: duplicate points.
  EXPECT_THROW(merge_fleet_shards(spec, {shard0, shard0}), std::runtime_error);
  // Stray index beyond the spec's point count.
  FleetShardResult stray = shard0;
  stray.outcomes[0].index = spec.total_points() + 7;
  EXPECT_THROW(merge_fleet_shards(spec, {stray, shard1}), std::runtime_error);
}

TEST(Fleet, GroupStatisticsAreOrderedAndBounded) {
  auto spec = small_spec();
  spec.chips = 4;
  const FleetReport report = run_fleet(spec, 2);
  ASSERT_EQ(report.groups().size(), 2u);  // 2 policies x 1 workload
  for (const auto& g : report.groups()) {
    ASSERT_EQ(g.failure_years.size(), 4u);
    EXPECT_LE(g.min_years, g.p10_years);
    EXPECT_LE(g.p10_years, g.median_years);
    EXPECT_LE(g.median_years, g.p90_years);
    EXPECT_LE(g.p90_years, g.max_years);
    EXPECT_GE(g.mean_years, g.min_years);
    EXPECT_LE(g.mean_years, g.max_years);
    for (double y : g.failure_years) {
      EXPECT_GT(y, 0.0);
      EXPECT_LE(y, spec.max_years);
    }
  }
  // Sensor-wise wear leveling must not shorten fleet lifetime vs baseline.
  EXPECT_GE(report.groups()[1].median_years, report.groups()[0].median_years);
}

}  // namespace
}  // namespace nbtinoc::core
