#include "nbtinoc/core/policy.hpp"

#include <gtest/gtest.h>

#include "nbtinoc/noc/input_unit.hpp"

namespace nbtinoc::core {
namespace {

using noc::Dir;
using noc::GateCommand;
using noc::InputUnit;
using noc::OutVcStateView;

noc::NocConfig config(int vcs) {
  noc::NocConfig c;
  c.width = 2;
  c.height = 2;
  c.num_vcs = vcs;
  return c;
}

/// Builds an input unit whose VC states match the given list
/// (I = idle, A = active, R = recovery).
InputUnit make_port(const std::string& states) {
  InputUnit iu(Dir::East, config(static_cast<int>(states.size())));
  for (std::size_t i = 0; i < states.size(); ++i) {
    switch (states[i]) {
      case 'I':
        break;
      case 'A':
        iu.vc(static_cast<int>(i)).allocate(1 + i, 0);
        break;
      case 'R':
        iu.vc(static_cast<int>(i)).gate(0);
        break;
      default:
        throw std::invalid_argument("bad state char");
    }
  }
  return iu;
}

TEST(PolicyNames, RoundTrip) {
  for (auto kind : {PolicyKind::kBaseline, PolicyKind::kRrNoSensor,
                    PolicyKind::kSensorWiseNoTraffic, PolicyKind::kSensorWise}) {
    EXPECT_EQ(parse_policy(to_string(kind)), kind);
  }
  EXPECT_EQ(parse_policy("sw"), PolicyKind::kSensorWise);
  EXPECT_EQ(parse_policy("rr"), PolicyKind::kRrNoSensor);
  EXPECT_THROW(parse_policy("magic"), std::invalid_argument);
}

// ---------------- Algorithm 1: rr-no-sensor --------------------------------

TEST(RrNoSensor, NoTrafficDisablesEnable) {
  const InputUnit iu = make_port("IIII");
  const GateCommand cmd = rr_no_sensor_decide(OutVcStateView(&iu), 2, false);
  EXPECT_TRUE(cmd.gating_active);
  EXPECT_FALSE(cmd.enable);
  // Lines 5-6: a valid VC-ID (the candidate) is still driven.
  EXPECT_EQ(cmd.keep_vc, 2);
}

TEST(RrNoSensor, PicksCandidateWhenIdle) {
  const InputUnit iu = make_port("IIII");
  const GateCommand cmd = rr_no_sensor_decide(OutVcStateView(&iu), 1, true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 1);
}

TEST(RrNoSensor, ScansForwardPastActive) {
  const InputUnit iu = make_port("IAAI");
  const GateCommand cmd = rr_no_sensor_decide(OutVcStateView(&iu), 1, true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 3);  // first idle/recovery at or after candidate 1
}

TEST(RrNoSensor, WrapsAround) {
  const InputUnit iu = make_port("IAAA");
  const GateCommand cmd = rr_no_sensor_decide(OutVcStateView(&iu), 2, true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 0);
}

TEST(RrNoSensor, RecoveringVcIsAlsoACandidate) {
  // Algorithm 1 line 10: is_idle OR is_recovery.
  const InputUnit iu = make_port("ARAA");
  const GateCommand cmd = rr_no_sensor_decide(OutVcStateView(&iu), 0, true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 1);
}

TEST(RrNoSensor, AllBusyDisables) {
  const InputUnit iu = make_port("AAAA");
  const GateCommand cmd = rr_no_sensor_decide(OutVcStateView(&iu), 0, true);
  EXPECT_FALSE(cmd.enable);
}

TEST(RrNoSensor, CandidateRotationSpreadsChoice) {
  const InputUnit iu = make_port("IIII");
  for (int candidate = 0; candidate < 4; ++candidate) {
    const GateCommand cmd = rr_no_sensor_decide(OutVcStateView(&iu), candidate, true);
    EXPECT_EQ(cmd.keep_vc, candidate);
  }
}

// ---------------- Algorithm 2: sensor-wise ----------------------------------

TEST(SensorWise, NoTrafficGatesEverythingIdle) {
  const InputUnit iu = make_port("IRIA");
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), 0, false);
  EXPECT_TRUE(cmd.gating_active);
  EXPECT_FALSE(cmd.enable);  // downstream recovers all idle VCs
}

TEST(SensorWise, TrafficKeepsExactlyOneAwake) {
  const InputUnit iu = make_port("IIII");
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), 0, true);
  EXPECT_TRUE(cmd.enable);
  // MD=0 gated first, then 1, 2 in order; survivor is the last idle VC.
  EXPECT_EQ(cmd.keep_vc, 3);
}

TEST(SensorWise, NeverKeepsMostDegradedAwakeWhenAvoidable) {
  for (int md = 0; md < 4; ++md) {
    const InputUnit iu = make_port("IIII");
    const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), md, true);
    EXPECT_TRUE(cmd.enable);
    EXPECT_NE(cmd.keep_vc, md) << "md=" << md;
  }
}

TEST(SensorWise, MostDegradedGetsPriorityOverLowerIndices) {
  // Pool = {2,3}, MD = 3: without the lines 9-11 priority the ascending scan
  // would gate 2 and keep 3 (the MD) awake. With priority, MD=3 is gated and
  // 2 stays awake.
  const InputUnit iu = make_port("AAII");
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), 3, true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 2);
}

TEST(SensorWise, MdKeptAwakeOnlyWhenItIsTheLastIdleVc) {
  // Pool = {1} and MD = 1: a new packet needs a VC, so the MD stays awake.
  const InputUnit iu = make_port("AIAA");
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), 1, true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 1);
}

TEST(SensorWise, ActiveMdIsUntouchable) {
  const InputUnit iu = make_port("AIIA");
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), 0, true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 2);
}

TEST(SensorWise, RecoveredVcsCountTowardThePool) {
  // Lines 5-8 restore recovered VCs to the idle pool before re-gating.
  const InputUnit iu = make_port("RRRR");
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), 1, true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 3);
}

TEST(SensorWise, AllActiveYieldsNoEnable) {
  const InputUnit iu = make_port("AAAA");
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), 0, true);
  EXPECT_FALSE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, noc::kInvalidVc);
}

TEST(SensorWise, OutOfRangeMdToleratedGracefully) {
  const InputUnit iu = make_port("II");
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), 7, true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 1);
  const GateCommand neg = sensor_wise_decide(OutVcStateView(&iu), -1, true);
  EXPECT_TRUE(neg.enable);
}

TEST(SensorWiseNoTraffic, AlwaysReservesOneIdleVc) {
  // The variant is Algorithm 2 with boolTraffic forced to 1: even with no
  // packet waiting, one VC stays awake.
  const InputUnit iu = make_port("IIII");
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), 1, /*bool_traffic=*/true);
  EXPECT_TRUE(cmd.enable);
  EXPECT_NE(cmd.keep_vc, noc::kInvalidVc);
}

// ---------------- extension: sensor-rank wear leveling ----------------------

TEST(SensorRank, KeepsHealthiestVcAwake) {
  const InputUnit iu = make_port("IIII");
  const GateCommand cmd = sensor_rank_decide(OutVcStateView(&iu), {0.185, 0.179, 0.182, 0.181}, true);
  EXPECT_TRUE(cmd.gating_active);
  EXPECT_TRUE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, 1);  // lowest Vth = least degraded
}

TEST(SensorRank, SkipsActiveVcs) {
  const InputUnit iu = make_port("AIIA");
  const GateCommand cmd = sensor_rank_decide(OutVcStateView(&iu), {0.170, 0.185, 0.182, 0.171}, true);
  EXPECT_EQ(cmd.keep_vc, 2);  // healthiest among the non-active {1,2}
}

TEST(SensorRank, NoTrafficRecoversAll) {
  const InputUnit iu = make_port("IIII");
  const GateCommand cmd = sensor_rank_decide(OutVcStateView(&iu), {0.18, 0.18, 0.18, 0.18}, false);
  EXPECT_TRUE(cmd.gating_active);
  EXPECT_FALSE(cmd.enable);
}

TEST(SensorRank, AllActiveNoEnable) {
  const InputUnit iu = make_port("AAAA");
  const GateCommand cmd = sensor_rank_decide(OutVcStateView(&iu), {0.18, 0.18, 0.18, 0.18}, true);
  EXPECT_FALSE(cmd.enable);
  EXPECT_EQ(cmd.keep_vc, noc::kInvalidVc);
}

TEST(SensorRank, RejectsSizeMismatch) {
  const InputUnit iu = make_port("II");
  EXPECT_THROW(sensor_rank_decide(OutVcStateView(&iu), {0.18}, true), std::invalid_argument);
}

TEST(PolicyNames, SensorRankRoundTrip) {
  EXPECT_EQ(parse_policy("sensor-rank"), PolicyKind::kSensorRank);
  EXPECT_EQ(to_string(PolicyKind::kSensorRank), "sensor-rank");
}

// Property sweep: for every VC count and MD choice with all VCs idle, the
// sensor-wise decision keeps exactly one VC awake and never the MD (unless
// it is the only one).
struct SwCase {
  int num_vcs;
  int md;
};

class SensorWiseSweep : public ::testing::TestWithParam<SwCase> {};

TEST_P(SensorWiseSweep, KeepsOneNonMdVc) {
  const auto [num_vcs, md] = GetParam();
  std::string states(static_cast<std::size_t>(num_vcs), 'I');
  const InputUnit iu = make_port(states);
  const GateCommand cmd = sensor_wise_decide(OutVcStateView(&iu), md, true);
  EXPECT_TRUE(cmd.enable);
  ASSERT_GE(cmd.keep_vc, 0);
  ASSERT_LT(cmd.keep_vc, num_vcs);
  if (num_vcs > 1) EXPECT_NE(cmd.keep_vc, md);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, SensorWiseSweep,
                         ::testing::Values(SwCase{1, 0}, SwCase{2, 0}, SwCase{2, 1}, SwCase{4, 0},
                                           SwCase{4, 1}, SwCase{4, 2}, SwCase{4, 3}, SwCase{8, 5}),
                         [](const auto& info) {
                           return "vcs" + std::to_string(info.param.num_vcs) + "_md" +
                                  std::to_string(info.param.md);
                         });

}  // namespace
}  // namespace nbtinoc::core
