#include "nbtinoc/core/experiment.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::core {
namespace {

sim::Scenario small_scenario(int vcs = 2, double rate = 0.2) {
  sim::Scenario s = sim::Scenario::synthetic(2, vcs, rate);
  s.warmup_cycles = 2'000;
  s.measure_cycles = 10'000;
  return s;
}

TEST(Workload, Factories) {
  const Workload syn = Workload::synthetic(traffic::PatternKind::kTranspose);
  EXPECT_EQ(syn.kind, Workload::Kind::kSynthetic);
  EXPECT_EQ(syn.pattern, traffic::PatternKind::kTranspose);

  traffic::BenchmarkMix mix;
  mix.names = {"fft", "lu", "radix", "barnes"};
  const Workload app = Workload::benchmark_mix(mix, 3);
  EXPECT_EQ(app.kind, Workload::Kind::kBenchmarkMix);
  EXPECT_EQ(app.seed_salt, 3u);
}

TEST(OperatingPoint, DerivedFromScenario) {
  sim::Scenario s = small_scenario();
  s.tech = sim::Technology::node_32nm();
  const auto op = operating_point_of(s);
  EXPECT_DOUBLE_EQ(op.vth_v, 0.160);
  EXPECT_DOUBLE_EQ(op.vdd_v, 1.2);
  EXPECT_DOUBLE_EQ(op.clock_period_s, 1e-9);
}

TEST(PvConfigOf, UsesTechnology) {
  const auto pv = pv_config_of(small_scenario());
  EXPECT_DOUBLE_EQ(pv.vth_mean_v, 0.180);
  EXPECT_DOUBLE_EQ(pv.vth_sigma_v, 0.005);
}

TEST(RunExperiment, ProducesAllPorts) {
  const RunResult r =
      run_experiment(small_scenario(), PolicyKind::kBaseline, Workload::synthetic());
  EXPECT_EQ(r.ports.size(), 12u);  // 2x2: 3 input ports per router
  const PortResult& p = r.port(0, noc::Dir::East);
  EXPECT_EQ(p.duty_percent.size(), 2u);
  EXPECT_EQ(p.initial_vth_v.size(), 2u);
  EXPECT_THROW(r.port(0, noc::Dir::West), std::invalid_argument);
}

TEST(RunExperiment, BaselineDutyIsAlwaysHundred) {
  const RunResult r =
      run_experiment(small_scenario(), PolicyKind::kBaseline, Workload::synthetic());
  for (const auto& [key, port] : r.ports)
    for (double d : port.duty_percent) EXPECT_DOUBLE_EQ(d, 100.0);
}

TEST(RunExperiment, TrafficFlowsAndLatencyMeasured) {
  const RunResult r =
      run_experiment(small_scenario(), PolicyKind::kSensorWise, Workload::synthetic());
  EXPECT_GT(r.flits_injected, 100u);
  EXPECT_GT(r.packets_ejected, 10u);
  EXPECT_GT(r.avg_packet_latency, 10.0);
  EXPECT_GT(r.throughput_flits_per_cycle_per_node, 0.0);
}

TEST(RunExperiment, SamePvSeedAcrossPolicies) {
  // Paper §IV-A: the same Vth values for every policy on one scenario.
  const RunResult a =
      run_experiment(small_scenario(), PolicyKind::kRrNoSensor, Workload::synthetic());
  const RunResult b =
      run_experiment(small_scenario(), PolicyKind::kSensorWise, Workload::synthetic());
  for (const auto& [key, port] : a.ports) {
    EXPECT_EQ(port.initial_vth_v, b.ports.at(key).initial_vth_v);
    EXPECT_EQ(port.most_degraded, b.ports.at(key).most_degraded);
  }
}

TEST(RunExperiment, IdenticalOfferedLoadAcrossPolicies) {
  // The offered packet stream derives from the scenario seed only; the
  // flit *serialization* timing may differ by a handful of flits at the
  // measurement cutoff, but the generated packets are identical.
  const RunResult a =
      run_experiment(small_scenario(), PolicyKind::kBaseline, Workload::synthetic());
  const RunResult b =
      run_experiment(small_scenario(), PolicyKind::kSensorWise, Workload::synthetic());
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_NEAR(static_cast<double>(a.flits_injected), static_cast<double>(b.flits_injected),
              static_cast<double>(a.flits_injected) * 0.02);
}

TEST(RunExperiment, DeterministicEndToEnd) {
  const RunResult a =
      run_experiment(small_scenario(), PolicyKind::kSensorWise, Workload::synthetic());
  const RunResult b =
      run_experiment(small_scenario(), PolicyKind::kSensorWise, Workload::synthetic());
  for (const auto& [key, port] : a.ports)
    EXPECT_EQ(port.duty_percent, b.ports.at(key).duty_percent);
  EXPECT_DOUBLE_EQ(a.avg_packet_latency, b.avg_packet_latency);
}

TEST(RunExperiment, MdDutyAccessor) {
  const RunResult r =
      run_experiment(small_scenario(), PolicyKind::kSensorWise, Workload::synthetic());
  const PortResult& p = r.port(0, noc::Dir::East);
  EXPECT_DOUBLE_EQ(r.md_duty(0, noc::Dir::East),
                   p.duty_percent[static_cast<std::size_t>(p.most_degraded)]);
}

TEST(RunExperiment, BenchmarkMixWorkloadRuns) {
  sim::Scenario s = small_scenario();
  s.warmup_cycles = 2'000;
  s.measure_cycles = 30'000;
  const Workload w = Workload::benchmark_mix(traffic::random_mix(4, 11));
  const RunResult r = run_experiment(s, PolicyKind::kSensorWise, w);
  EXPECT_GT(r.packets_ejected, 0u);
}

TEST(RunExperiment, SeedSaltChangesTrafficNotSilicon) {
  sim::Scenario s = small_scenario();
  const Workload w1 = Workload::benchmark_mix(traffic::random_mix(4, 1), /*salt=*/1);
  const Workload w2 = Workload::benchmark_mix(traffic::random_mix(4, 1), /*salt=*/2);
  const RunResult a = run_experiment(s, PolicyKind::kSensorWise, w1);
  const RunResult b = run_experiment(s, PolicyKind::kSensorWise, w2);
  EXPECT_NE(a.flits_injected, b.flits_injected);  // different traffic streams
  for (const auto& [key, port] : a.ports)
    EXPECT_EQ(port.initial_vth_v, b.ports.at(key).initial_vth_v);  // same silicon
}

TEST(RunExperiment, PhitConversionAppliedToThroughput) {
  // Throughput in phits/cycle/node approaches rate * phits_per_flit.
  sim::Scenario s = small_scenario(2, 0.1);
  s.warmup_cycles = 5'000;
  s.measure_cycles = 50'000;
  const RunResult r = run_experiment(s, PolicyKind::kBaseline, Workload::synthetic());
  EXPECT_NEAR(r.throughput_flits_per_cycle_per_node, 0.1 * s.phits_per_flit(), 0.03);
}

TEST(RunExperiment, JsonSerialization) {
  const RunResult r =
      run_experiment(small_scenario(), PolicyKind::kSensorWise, Workload::synthetic());
  const std::string json = to_json(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"policy\":\"sensor-wise\""), std::string::npos);
  EXPECT_NE(json.find("\"duty_percent\":["), std::string::npos);
  EXPECT_NE(json.find("\"most_degraded\":"), std::string::npos);
  EXPECT_NE(json.find("\"packets_offered\":"), std::string::npos);
  // 12 ports on a 2x2 mesh.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"router\":", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 12u);
}

TEST(RunExperiment, ActivityOfIsConsistent) {
  const RunResult r =
      run_experiment(small_scenario(), PolicyKind::kSensorWise, Workload::synthetic());
  const power::NocActivity a = activity_of(r);
  EXPECT_EQ(a.buffer_reads, r.flits_forwarded + r.flits_ejected_router);
  EXPECT_EQ(a.buffer_writes, a.buffer_reads);
  EXPECT_GT(a.powered_buffer_cycles, 0u);
  EXPECT_GT(a.gated_buffer_cycles, 0u);  // sensor-wise gates plenty
  // Totals add up to (#VC buffers) x measure_cycles.
  const std::uint64_t expected_total =
      static_cast<std::uint64_t>(r.ports.size()) * 2ULL * r.scenario.measure_cycles;
  EXPECT_NEAR(static_cast<double>(a.powered_buffer_cycles + a.gated_buffer_cycles),
              static_cast<double>(expected_total), 2.0 * static_cast<double>(r.ports.size()));
  EXPECT_DOUBLE_EQ(a.window_seconds,
                   static_cast<double>(r.scenario.measure_cycles) * r.scenario.clock_period_s);
}

TEST(RunExperiment, BaselineActivityNeverGates) {
  const RunResult r =
      run_experiment(small_scenario(), PolicyKind::kBaseline, Workload::synthetic());
  const power::NocActivity a = activity_of(r);
  EXPECT_EQ(a.gated_buffer_cycles, 0u);
}

TEST(CalibratedModel, AnchorsAtScenarioOperatingPoint) {
  const sim::Scenario s = small_scenario();
  const nbti::NbtiModel m = calibrated_model_of(s);
  const double ten_years = 10 * 365.25 * 24 * 3600;
  EXPECT_NEAR(m.delta_vth(1.0, ten_years, operating_point_of(s)), 0.050, 1e-9);
}

}  // namespace
}  // namespace nbtinoc::core
