// SweepRunner determinism harness: the engine's core promise is that the
// result grid depends only on the added points — never on worker count,
// scheduling, or completion order. These tests pin that contract with
// bit-identical comparisons across pool sizes, plus the grid-ordering,
// progress and export behavior the benches rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "nbtinoc/core/sweep.hpp"

namespace nbtinoc::core {
namespace {

sim::Scenario tiny(int width, int vcs, double rate) {
  sim::Scenario s = sim::Scenario::synthetic(width, vcs, rate);
  s.warmup_cycles = 1'000;
  s.measure_cycles = 5'000;
  return s;
}

/// The paper-shaped 12-point grid: 4 scenarios x 3 policies.
SweepRunner make_grid(SweepOptions options) {
  SweepRunner sweep(std::move(options));
  sweep.add_grid({tiny(2, 2, 0.05), tiny(2, 2, 0.15), tiny(2, 4, 0.10), tiny(3, 2, 0.10)},
                 {PolicyKind::kRrNoSensor, PolicyKind::kSensorWiseNoTraffic,
                  PolicyKind::kSensorWise});
  return sweep;
}

/// Bit-identical comparison of everything the determinism contract covers:
/// per-port duty cycles, PV-sampled Vth vectors, gate-transition counts,
/// and the whole-run counters.
void expect_identical(const SweepResult& a, const SweepResult& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(what + ": point " + std::to_string(i) + " (" + a[i].point.describe() + ")");
    const RunResult& ra = a[i].result;
    const RunResult& rb = b[i].result;
    EXPECT_EQ(ra.policy, rb.policy);
    EXPECT_EQ(ra.scenario.name, rb.scenario.name);
    ASSERT_EQ(ra.ports.size(), rb.ports.size());
    auto ita = ra.ports.begin();
    auto itb = rb.ports.begin();
    for (; ita != ra.ports.end(); ++ita, ++itb) {
      EXPECT_TRUE(ita->first == itb->first);
      // operator== on doubles: the contract is *bit*-identical, not close.
      EXPECT_TRUE(ita->second.duty_percent == itb->second.duty_percent);
      EXPECT_TRUE(ita->second.initial_vth_v == itb->second.initial_vth_v);
      EXPECT_TRUE(ita->second.gate_transitions == itb->second.gate_transitions);
      EXPECT_EQ(ita->second.most_degraded, itb->second.most_degraded);
    }
    EXPECT_EQ(ra.packets_offered, rb.packets_offered);
    EXPECT_EQ(ra.flits_injected, rb.flits_injected);
    EXPECT_EQ(ra.flits_ejected, rb.flits_ejected);
    EXPECT_EQ(ra.total_gate_transitions, rb.total_gate_transitions);
    EXPECT_EQ(ra.avg_packet_latency, rb.avg_packet_latency);
    EXPECT_EQ(ra.throughput_flits_per_cycle_per_node, rb.throughput_flits_per_cycle_per_node);
  }
}

SweepResult run_with_workers(unsigned workers) {
  SweepOptions options;
  options.workers = workers;
  return make_grid(std::move(options)).run();
}

TEST(SweepRunner, WorkerCountDoesNotChangeResults) {
  const SweepResult serial = run_with_workers(1);
  const SweepResult two = run_with_workers(2);
  const SweepResult eight = run_with_workers(8);
  expect_identical(serial, two, "1 vs 2 workers");
  expect_identical(serial, eight, "1 vs 8 workers");
}

TEST(SweepRunner, RepeatedParallelRunsAgree) {
  const SweepResult first = run_with_workers(8);
  const SweepResult second = run_with_workers(8);
  expect_identical(first, second, "8 workers, run twice");
}

TEST(SweepRunner, SerialPathMatchesDirectRunExperiment) {
  // Pool size 1 must be byte-identical to calling run_experiment in a loop.
  const SweepRunner sweep = make_grid({});
  const SweepResult serial = run_with_workers(1);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep.point(i);
    const RunResult direct = run_experiment(p.scenario, p.policy, p.workload);
    SCOPED_TRACE("point " + std::to_string(i));
    const RunResult& via_sweep = serial[i].result;
    ASSERT_EQ(direct.ports.size(), via_sweep.ports.size());
    for (const auto& [key, port] : direct.ports) {
      EXPECT_TRUE(port.duty_percent == via_sweep.ports.at(key).duty_percent);
      EXPECT_TRUE(port.initial_vth_v == via_sweep.ports.at(key).initial_vth_v);
      EXPECT_TRUE(port.gate_transitions == via_sweep.ports.at(key).gate_transitions);
    }
    EXPECT_EQ(direct.flits_ejected, via_sweep.flits_ejected);
  }
}

TEST(SweepRunner, ResultsComeBackInGridOrder) {
  const SweepRunner sweep = make_grid({});
  const SweepResult results = run_with_workers(8);
  ASSERT_EQ(results.size(), sweep.size());
  ASSERT_EQ(results.size(), 12u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].point.scenario.name, sweep.point(i).scenario.name) << "index " << i;
    EXPECT_EQ(results[i].point.policy, sweep.point(i).policy) << "index " << i;
    EXPECT_EQ(results[i].result.policy, sweep.point(i).policy) << "index " << i;
    EXPECT_GE(results[i].wall_seconds, 0.0);
  }
}

TEST(SweepRunner, ProgressReportsEveryPointExactlyOnce) {
  for (unsigned workers : {1u, 4u}) {
    SweepOptions options;
    options.workers = workers;
    std::vector<std::size_t> completed_counts;
    std::set<std::size_t> point_indices;
    std::size_t total_seen = 0;
    options.on_progress = [&](const SweepProgress& p) {
      completed_counts.push_back(p.completed);
      point_indices.insert(p.point_index);
      total_seen = p.total;
      EXPECT_NE(p.point, nullptr);
      EXPECT_GE(p.elapsed_seconds, 0.0);
      EXPECT_GE(p.eta_seconds, 0.0);
    };
    const SweepResult results = make_grid(std::move(options)).run();
    EXPECT_EQ(total_seen, results.size()) << workers << " workers";
    // Callbacks are serialized, so `completed` must hit 1..N exactly once
    // (in completion order, which may differ from grid order).
    ASSERT_EQ(completed_counts.size(), results.size()) << workers << " workers";
    std::set<std::size_t> unique(completed_counts.begin(), completed_counts.end());
    EXPECT_EQ(unique.size(), results.size()) << workers << " workers";
    EXPECT_EQ(*unique.begin(), 1u);
    EXPECT_EQ(*unique.rbegin(), results.size());
    // And every grid index must be reported exactly once.
    EXPECT_EQ(point_indices.size(), results.size()) << workers << " workers";
  }
}

TEST(SweepRunner, EffectiveWorkersClampsToGridAndHardware) {
  SweepOptions options;
  options.workers = 64;
  SweepRunner sweep(std::move(options));
  sweep.add(tiny(2, 2, 0.1), PolicyKind::kBaseline, Workload::synthetic());
  sweep.add(tiny(2, 2, 0.2), PolicyKind::kBaseline, Workload::synthetic());
  EXPECT_EQ(sweep.effective_workers(), 2u);  // never more workers than points

  SweepRunner empty_default{SweepOptions{}};
  EXPECT_GE(empty_default.effective_workers(), 1u);
}

TEST(SweepRunner, EmptyGridRunsToEmptyResult) {
  SweepRunner sweep{SweepOptions{}};
  const SweepResult results = sweep.run();
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(results.to_csv().find('\n'), results.to_csv().size() - 1);  // header only
}

TEST(SweepRunner, ErrorsInWorkerThreadsPropagate) {
  SweepOptions options;
  options.workers = 4;
  SweepRunner sweep(std::move(options));
  for (int i = 0; i < 4; ++i)
    sweep.add(tiny(2, 2, 0.1), PolicyKind::kBaseline, Workload::synthetic());
  sim::Scenario bad = tiny(2, 2, 0.1);
  bad.router_stages = 1;  // run_experiment throws on < 3
  sweep.add(bad, PolicyKind::kBaseline, Workload::synthetic());
  EXPECT_THROW(sweep.run(), std::invalid_argument);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnceAtAnyWorkerCount) {
  for (unsigned workers : {1u, 2u, 7u, 32u}) {
    constexpr std::size_t kCount = 100;
    std::vector<std::atomic<int>> hits(kCount);
    parallel_for(kCount, workers, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << workers << " workers";
  }
}

TEST(ParallelFor, ZeroCountIsANoOpAndErrorsPropagate) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "fn called for empty range"; });
  EXPECT_THROW(
      parallel_for(8, 4,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The serial path (one worker) propagates too, at the failing index.
  EXPECT_THROW(parallel_for(2, 1, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(SweepResult, JsonAndCsvExportCoverEveryPoint) {
  SweepOptions options;
  options.workers = 2;
  SweepRunner sweep(std::move(options));
  sweep.add(tiny(2, 2, 0.1), PolicyKind::kSensorWise, Workload::synthetic(), "pt-a");
  sweep.add(tiny(2, 2, 0.2), PolicyKind::kRrNoSensor, Workload::synthetic(), "pt-b");
  const SweepResult results = sweep.run();

  const std::string json = results.to_json();
  EXPECT_NE(json.find("\"points\""), std::string::npos);
  EXPECT_NE(json.find("\"pt-a\""), std::string::npos);
  EXPECT_NE(json.find("\"pt-b\""), std::string::npos);
  EXPECT_NE(json.find("\"duty_percent\""), std::string::npos);  // mirrors core::to_json

  const std::string csv = results.to_csv();
  std::size_t rows = 0;
  for (char c : csv) rows += c == '\n';
  EXPECT_EQ(rows, 3u);  // header + 2 points
  EXPECT_NE(csv.find("pt-a"), std::string::npos);
  EXPECT_NE(csv.find("rr-no-sensor"), std::string::npos);
}

}  // namespace
}  // namespace nbtinoc::core
