// Randomized property tests: the simulator must uphold its invariants on
// arbitrary (valid) configurations, policies and loads — not just the
// paper's setups. Each seed deterministically derives a configuration, runs
// traffic, then drains and checks conservation and state-machine sanity.

#include <gtest/gtest.h>

#include <algorithm>

#include "nbtinoc/core/controller.hpp"
#include "nbtinoc/core/experiment.hpp"
#include "nbtinoc/core/sweep.hpp"
#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/traffic/benchmarks.hpp"
#include "nbtinoc/traffic/request_reply.hpp"
#include "nbtinoc/traffic/synthetic.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::noc {
namespace {

struct FuzzCase {
  NocConfig config;
  double rate = 0.1;
  core::PolicyKind policy = core::PolicyKind::kSensorWise;
  traffic::PatternKind pattern = traffic::PatternKind::kUniform;
  std::uint64_t seed = 0;
};

FuzzCase derive_case(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  FuzzCase fc;
  fc.seed = seed;
  // Mesh between 1x2 and 4x4 (at least 2 nodes).
  do {
    fc.config.width = 1 + static_cast<int>(rng.next_below(4));
    fc.config.height = 1 + static_cast<int>(rng.next_below(4));
  } while (fc.config.nodes() < 2);
  fc.config.num_vcs = 1 + static_cast<int>(rng.next_below(4));
  fc.config.num_vnets = 1 + static_cast<int>(rng.next_below(2));
  fc.config.buffer_depth = 1 + static_cast<int>(rng.next_below(8));
  fc.config.packet_length = 1 + static_cast<int>(rng.next_below(20));
  fc.config.wakeup_latency = rng.next_below(5);
  fc.config.routing = rng.next_bernoulli(0.5) ? RoutingAlgo::kXY : RoutingAlgo::kYX;
  fc.rate = 0.02 + 0.4 * rng.next_double();
  constexpr core::PolicyKind kPolicies[] = {
      core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
      core::PolicyKind::kSensorWiseNoTraffic, core::PolicyKind::kSensorWise,
      core::PolicyKind::kSensorRank};
  fc.policy = kPolicies[rng.next_below(5)];
  constexpr traffic::PatternKind kPatterns[] = {
      traffic::PatternKind::kUniform, traffic::PatternKind::kTranspose,
      traffic::PatternKind::kBitComplement, traffic::PatternKind::kHotspot,
      traffic::PatternKind::kNeighbor, traffic::PatternKind::kTornado};
  fc.pattern = kPatterns[rng.next_below(6)];
  return fc;
}

class NetworkFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzzTest, InvariantsHoldOnRandomConfigurations) {
  const FuzzCase fc = derive_case(GetParam());
  SCOPED_TRACE(fc.config.describe() + ", rate " + std::to_string(fc.rate) + ", policy " +
               core::to_string(fc.policy) + ", pattern " + traffic::to_string(fc.pattern));

  Network net(fc.config);
  const auto model = nbti::NbtiModel::calibrated({}, {});
  core::PolicyConfig pc;
  pc.kind = fc.policy;
  // Exercise hysteresis on odd seeds.
  if (fc.seed % 2 == 1) pc.decision_period = 1 + fc.seed % 64;
  core::PolicyGateController ctrl(net, pc, model, {}, nbti::PvConfig{}, fc.seed);
  ctrl.attach();
  traffic::install_synthetic_traffic(net, fc.pattern, fc.rate, fc.seed ^ 0xfeedULL);

  // Plain run (no warmup counter reset): injected/ejected totals must match
  // exactly after the drain.
  net.run(7'000);

  // Drain: no new traffic, everything in flight must reach its destination.
  for (NodeId id = 0; id < net.nodes(); ++id)
    net.set_traffic_source(id, std::make_unique<SilentSource>());
  sim::Cycle guard = 0;
  bool queues_empty = false;
  while (guard++ < 500'000) {
    net.step();
    if (!net.drained()) continue;
    queues_empty = true;
    for (NodeId id = 0; id < net.nodes(); ++id) queues_empty &= net.ni(id).queue_depth() == 0;
    if (queues_empty) break;
  }
  ASSERT_TRUE(net.drained()) << "network failed to drain (possible deadlock)";
  ASSERT_TRUE(queues_empty) << "NI source queues failed to drain";

  // The drain loop used raw step(): flush the event-driven stress
  // accounting before reading trackers directly below.
  net.sync_stress_accounting();

  // Conservation over the measured window + drain.
  EXPECT_EQ(net.stats().counter("noc.flits_injected"), net.stats().counter("noc.flits_ejected"));

  // VC state sanity: after the drain every buffer is Idle or Recovery and
  // empty, with no dangling output allocation.
  for (NodeId id = 0; id < net.nodes(); ++id) {
    for (int p = 0; p < kNumDirs; ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!net.router(id).has_input(port)) continue;
      const auto& iu = net.router(id).input(port);
      for (int v = 0; v < iu.num_vcs(); ++v) {
        EXPECT_FALSE(iu.vc(v).is_active());
        EXPECT_TRUE(iu.vc(v).empty());
        EXPECT_FALSE(iu.has_output(v));
      }
      // Duty cycles are proper percentages.
      for (double d : iu.trackers().duty_cycles_percent()) {
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 100.0);
      }
    }
  }

  // Baseline never gates: 100% duty everywhere.
  if (fc.policy == core::PolicyKind::kBaseline) {
    for (int v = 0; v < net.config().total_vcs(); ++v)
      EXPECT_DOUBLE_EQ(net.duty_cycles_percent(0, Dir::Local)[static_cast<std::size_t>(v)],
                       100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, NetworkFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 25));

// Sweep-engine fuzz: random scenario grids routed through SweepRunner with
// a random worker count must come back complete, in grid order, with no
// duplicated or dropped point, and with every duty cycle a valid
// percentage — regardless of how the pool interleaved the runs.
class SweepFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SweepFuzzTest, RandomGridsSurviveParallelExecutionIntact) {
  util::Xoshiro256 rng(GetParam() ^ 0x5eedULL);
  constexpr core::PolicyKind kPolicies[] = {
      core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
      core::PolicyKind::kSensorWiseNoTraffic, core::PolicyKind::kSensorWise,
      core::PolicyKind::kSensorRank};
  constexpr traffic::PatternKind kPatterns[] = {
      traffic::PatternKind::kUniform, traffic::PatternKind::kTranspose,
      traffic::PatternKind::kBitComplement, traffic::PatternKind::kHotspot,
      traffic::PatternKind::kNeighbor, traffic::PatternKind::kTornado};

  core::SweepOptions options;
  options.workers = 1 + static_cast<unsigned>(rng.next_below(8));
  core::SweepRunner sweep(options);

  const std::size_t num_points = 3 + rng.next_below(6);
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < num_points; ++i) {
    sim::Scenario s = sim::Scenario::synthetic(2 + static_cast<int>(rng.next_below(2)),
                                               1 + static_cast<int>(rng.next_below(4)),
                                               0.02 + 0.3 * rng.next_double());
    s.warmup_cycles = 500;
    s.measure_cycles = 2'000 + rng.next_below(3'000);
    labels.push_back("fuzz-point-" + std::to_string(i));
    sweep.add(s, kPolicies[rng.next_below(5)],
              core::Workload::synthetic(kPatterns[rng.next_below(6)]), labels.back());
  }
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + ", " + std::to_string(num_points) +
               " points, " + std::to_string(options.workers) + " workers");

  const core::SweepResult results = sweep.run();

  // No point lost or duplicated, and none reordered: the unique label added
  // at grid index i must come back at result index i.
  ASSERT_EQ(results.size(), num_points);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].point.label, labels[i]) << "result grid reordered at index " << i;
    EXPECT_EQ(results[i].point.policy, sweep.point(i).policy);
    EXPECT_EQ(results[i].result.policy, sweep.point(i).policy);
    EXPECT_EQ(results[i].result.scenario.name, sweep.point(i).scenario.name);
    EXPECT_GE(results[i].wall_seconds, 0.0);

    // Every duty cycle is a proper percentage; baseline pins 100% everywhere.
    for (const auto& [key, port] : results[i].result.ports) {
      ASSERT_FALSE(port.duty_percent.empty());
      for (double d : port.duty_percent) {
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 100.0);
        if (results[i].point.policy == core::PolicyKind::kBaseline) {
          EXPECT_DOUBLE_EQ(d, 100.0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGrids, SweepFuzzTest, ::testing::Range<std::uint64_t>(1, 9));

/// Full-result equality between two experiment runs: the serialized JSON
/// report (every externally visible number) plus the per-port gating
/// counters and fault counters it omits.
void expect_run_equal(const core::RunResult& a, const core::RunResult& b,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(core::to_json(a), core::to_json(b));
  ASSERT_EQ(a.ports.size(), b.ports.size());
  for (const auto& [key, port] : a.ports) {
    const core::PortResult& other = b.ports.at(key);
    EXPECT_EQ(port.gate_transitions, other.gate_transitions);
    EXPECT_EQ(port.most_degraded, other.most_degraded);
    EXPECT_EQ(port.duty_percent, other.duty_percent);
  }
  EXPECT_EQ(a.total_gate_transitions, b.total_gate_transitions);
  EXPECT_EQ(a.fault_counters, b.fault_counters);
}

/// Runs one scenario under all three scheduler modes and asserts the
/// stepped / fast-forward / active-set results are bit-identical.
void run_three_way(const sim::Scenario& s, core::PolicyKind policy,
                   const core::Workload& workload, core::RunnerOptions options) {
  options.scheduler = SchedulerMode::kStepped;
  const core::RunResult stepped = core::run_experiment(s, policy, workload, options);
  options.scheduler = SchedulerMode::kFastForward;
  const core::RunResult skipped = core::run_experiment(s, policy, workload, options);
  options.scheduler = SchedulerMode::kActiveSet;
  const core::RunResult active = core::run_experiment(s, policy, workload, options);
  expect_run_equal(stepped, skipped, "stepped vs fast-forward");
  expect_run_equal(stepped, active, "stepped vs active-set");
}

// Scheduler fuzz: the event-horizon engine and the active-set scheduler
// both claim bit-identical results against literal stepping, for *any*
// valid configuration — not just the golden scenario. Each seed derives a
// random scenario/policy/workload pair and runs it three ways.
class FastForwardFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastForwardFuzzTest, SkippedExperimentsMatchSteppedExactly) {
  util::Xoshiro256 rng(GetParam() ^ 0xfa57ULL);
  sim::Scenario s = sim::Scenario::synthetic(2 + static_cast<int>(rng.next_below(2)),
                                             1 + static_cast<int>(rng.next_below(3)),
                                             0.06 * rng.next_double());
  // Low rates most of the time (that is where skipping engages); every
  // fourth seed runs fully idle, where the engine must carry the whole run.
  if (GetParam() % 4 == 0) s.injection_rate = 0.0;
  s.num_vnets = 1 + static_cast<int>(rng.next_below(2));
  s.wakeup_latency = rng.next_below(4);
  s.warmup_cycles = 1'000;
  s.measure_cycles = 8'000 + rng.next_below(8'000);
  constexpr core::PolicyKind kPolicies[] = {
      core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
      core::PolicyKind::kSensorWiseNoTraffic, core::PolicyKind::kSensorWise,
      core::PolicyKind::kSensorRank};
  const core::PolicyKind policy = kPolicies[rng.next_below(5)];
  constexpr traffic::PatternKind kPatterns[] = {
      traffic::PatternKind::kUniform, traffic::PatternKind::kTranspose,
      traffic::PatternKind::kBitComplement, traffic::PatternKind::kHotspot,
      traffic::PatternKind::kNeighbor, traffic::PatternKind::kTornado};
  // Every third seed swaps in a benchmark mix, covering the bursty
  // Markov-modulated sources' pre-roll as well.
  const core::Workload workload =
      GetParam() % 3 == 0
          ? core::Workload::benchmark_mix(
                traffic::random_mix(s.mesh_width * s.mesh_height, GetParam()), GetParam())
          : core::Workload::synthetic(kPatterns[rng.next_below(6)]);
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + ", " + s.name + ", policy " +
               core::to_string(policy));

  run_three_way(s, policy, workload, core::RunnerOptions{});
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, FastForwardFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// Topology scheduler fuzz: the same three-way equality over the non-mesh
// topologies — wrap links, dateline VC classes, and multi-NI local ports
// all feed the quiescence proof and the active-set neighbor wakes, so each
// must round-trip exactly.
class TopologyFastForwardFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyFastForwardFuzzTest, SkippedTopologyRunsMatchSteppedExactly) {
  util::Xoshiro256 rng(GetParam() ^ 0x7090ULL);
  sim::Scenario s = sim::Scenario::synthetic(4, 2 + static_cast<int>(rng.next_below(3)),
                                             0.05 * rng.next_double());
  constexpr const char* kTopologies[] = {"torus", "ring", "cmesh"};
  s.topology = kTopologies[GetParam() % 3];
  if (s.topology == "cmesh") s.concentration = 2;
  if (GetParam() % 4 == 0) s.injection_rate = 0.0;  // fully idle: FF carries the run
  s.num_vnets = 1 + static_cast<int>(rng.next_below(2));
  s.wakeup_latency = rng.next_below(4);
  s.warmup_cycles = 1'000;
  s.measure_cycles = 8'000 + rng.next_below(8'000);
  constexpr core::PolicyKind kPolicies[] = {
      core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
      core::PolicyKind::kSensorWiseNoTraffic, core::PolicyKind::kSensorWise,
      core::PolicyKind::kSensorRank};
  const core::PolicyKind policy = kPolicies[rng.next_below(5)];
  constexpr traffic::PatternKind kPatterns[] = {
      traffic::PatternKind::kUniform, traffic::PatternKind::kTranspose,
      traffic::PatternKind::kBitComplement, traffic::PatternKind::kHotspot,
      traffic::PatternKind::kNeighbor, traffic::PatternKind::kTornado};
  const core::Workload workload = core::Workload::synthetic(kPatterns[rng.next_below(6)]);
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + ", " + s.topology + ", policy " +
               core::to_string(policy));

  run_three_way(s, policy, workload, core::RunnerOptions{});
}

INSTANTIATE_TEST_SUITE_P(RandomTopologyConfigs, TopologyFastForwardFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// Fault storm, three ways: an untargeted fault plan forces the active-set
// scheduler to pin every router (and the event horizon to `now`), so both
// engines degenerate to literal stepping — and every fault RNG draw, drop,
// flip, and quarantine decision must land identically.
TEST(ThreeWayDifferential, FaultStormMatchesAcrossSchedulers) {
  sim::Scenario s = sim::Scenario::synthetic(3, 2, 0.05);
  s.warmup_cycles = 500;
  s.measure_cycles = 6'000;
  core::RunnerOptions options;
  options.faults = sim::FaultPlan::uniform(0.02);
  run_three_way(s, core::PolicyKind::kSensorWise, core::Workload::synthetic(), options);
}

// Structural kills, three ways: permanent link/router failures at fixed
// mid-run cycles force an in-flight drain, a route-table regeneration and
// (in active-set mode) a full-fabric wake in every scheduler mode — and the
// degraded fabric must keep matching bit for bit afterwards. A final
// stepped leg re-runs the same schedule under the InvariantChecker: zero
// violations means the drain accounted for every purged flit and restored
// every credit exactly.
class StructuralKillFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructuralKillFuzzTest, MidRunKillsMatchAcrossSchedulersAndKeepInvariants) {
  util::Xoshiro256 rng(GetParam() ^ 0x57f0ULL);
  sim::Scenario s = sim::Scenario::synthetic(3 + static_cast<int>(rng.next_below(2)), 2,
                                             0.02 + 0.08 * rng.next_double());
  if (GetParam() % 3 == 0) {
    s.topology = "torus";
  } else if (rng.next_bernoulli(0.5)) {
    s.routing = rng.next_bernoulli(0.5) ? "west-first" : "odd-even";
  }
  s.warmup_cycles = 500;
  s.measure_cycles = 6'000;

  core::RunnerOptions options;
  // Known-wired kills: East links exist on every non-last mesh column and
  // everywhere on the torus, so each scheduled kill really lands (counted
  // below). One seed in three also takes out a whole router.
  const int w = s.mesh_width;
  const auto east_ok = [&](int r) { return s.topology == "torus" || r % w != w - 1; };
  const int kills = 1 + static_cast<int>(rng.next_below(2));
  std::vector<int> used;
  for (int k = 0; k < kills; ++k) {
    sim::StructuralFault f;
    do {
      f.router = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.cores())));
    } while (!east_ok(f.router) ||
             std::find(used.begin(), used.end(), f.router) != used.end());
    used.push_back(f.router);
    f.port = static_cast<int>(noc::Dir::East);
    f.cycle = 600 + 900 * static_cast<sim::Cycle>(k) + rng.next_below(800);
    options.faults.structural.push_back(f);
  }
  if (GetParam() % 3 == 1) {
    sim::StructuralFault f;
    f.router = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.cores())));
    f.cycle = 3'000 + rng.next_below(1'000);
    options.faults.structural.push_back(f);  // port defaults to kWholeRouter
  }
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + ", " + s.name + ", topology " +
               s.topology + ", routing " + s.routing + ", " +
               std::to_string(options.faults.structural.size()) + " kills");

  run_three_way(s, core::PolicyKind::kSensorWise, core::Workload::synthetic(), options);

  options.check_invariants = true;
  options.scheduler = SchedulerMode::kStepped;
  const core::RunResult checked =
      core::run_experiment(s, core::PolicyKind::kSensorWise, core::Workload::synthetic(), options);
  EXPECT_TRUE(checked.invariant_violations.empty())
      << checked.invariant_violations.front() << " (+" << checked.invariant_violations.size() - 1
      << " more)";
  // Every scheduled link kill hit a wired, live channel, so the counters
  // must record exactly the schedule (counters cover the measurement
  // window; the earliest kill lands after warmup by construction).
  EXPECT_EQ(checked.fault_counters.at("fault.link_kills"), static_cast<std::uint64_t>(kills));
  EXPECT_GE(checked.fault_counters.at("fault.route_regens"), static_cast<std::uint64_t>(kills));
}

INSTANTIATE_TEST_SUITE_P(RandomKillSchedules, StructuralKillFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// All-gated fixed point, three ways: sensor-wise with zero offered load
// drives every port to the fully gated state, where fast-forward jumps
// epoch to epoch and the active set parks the entire fabric. The NBTI
// accounting across those jumps must still match literal stepping bit for
// bit over a long horizon.
TEST(ThreeWayDifferential, AllGatedFixedPointMatchesAcrossSchedulers) {
  sim::Scenario s = sim::Scenario::synthetic(3, 2, 0.0);
  s.warmup_cycles = 500;
  s.measure_cycles = 60'000;
  run_three_way(s, core::PolicyKind::kSensorWise, core::Workload::synthetic(),
                core::RunnerOptions{});
}

// Shared-organization scheduler fuzz: the same three-way equality with
// every input port running one DAMQ slot pool instead of per-VC banks.
// Slot-granularity gating feeds different events into the quiescence proof
// (pool credits, waking slots, slot-form GateCommands), so each scheduler
// must reproduce them exactly. Only slot policies and baseline are legal
// under this organization (run_experiment rejects the VC-granularity ones).
class SharedPoolFastForwardFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SharedPoolFastForwardFuzzTest, SharedRunsMatchSteppedExactly) {
  util::Xoshiro256 rng(GetParam() ^ 0xda30ULL);
  sim::Scenario s = sim::Scenario::synthetic(2 + static_cast<int>(rng.next_below(2)),
                                             2 + static_cast<int>(rng.next_below(3)),
                                             0.06 * rng.next_double());
  s.buffer_org = "shared";
  s.shared_reserve = 1 + static_cast<int>(rng.next_below(2));
  if (GetParam() % 4 == 0) s.injection_rate = 0.0;  // fully idle: FF carries the run
  s.wakeup_latency = rng.next_below(4);
  s.warmup_cycles = 1'000;
  s.measure_cycles = 8'000 + rng.next_below(8'000);
  constexpr core::PolicyKind kPolicies[] = {core::PolicyKind::kBaseline,
                                            core::PolicyKind::kSensorWiseSlotMd,
                                            core::PolicyKind::kRrSlot};
  const core::PolicyKind policy = kPolicies[rng.next_below(3)];
  constexpr traffic::PatternKind kPatterns[] = {
      traffic::PatternKind::kUniform, traffic::PatternKind::kTranspose,
      traffic::PatternKind::kBitComplement, traffic::PatternKind::kHotspot,
      traffic::PatternKind::kNeighbor, traffic::PatternKind::kTornado};
  const core::Workload workload = core::Workload::synthetic(kPatterns[rng.next_below(6)]);
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + ", " + s.name + ", reserve " +
               std::to_string(s.shared_reserve) + ", policy " + core::to_string(policy));

  run_three_way(s, policy, workload, core::RunnerOptions{});
}

INSTANTIATE_TEST_SUITE_P(RandomSharedConfigs, SharedPoolFastForwardFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// Fault storm on the shared organization: transient faults land on pool
// slots (the slot-form modulus of the fault hook), so every drop and flip
// must match across schedulers, and a stepped re-run under the
// InvariantChecker must prove slot conservation and the M* credit bound
// held through the whole storm.
TEST(ThreeWayDifferential, SharedPoolFaultStormMatchesAcrossSchedulers) {
  sim::Scenario s = sim::Scenario::synthetic(3, 2, 0.05);
  s.buffer_org = "shared";
  s.warmup_cycles = 500;
  s.measure_cycles = 6'000;
  core::RunnerOptions options;
  options.faults = sim::FaultPlan::uniform(0.02);
  run_three_way(s, core::PolicyKind::kSensorWiseSlotMd, core::Workload::synthetic(), options);

  options.check_invariants = true;
  options.scheduler = SchedulerMode::kStepped;
  const core::RunResult checked = core::run_experiment(
      s, core::PolicyKind::kSensorWiseSlotMd, core::Workload::synthetic(), options);
  EXPECT_TRUE(checked.invariant_violations.empty())
      << checked.invariant_violations.front() << " (+" << checked.invariant_violations.size() - 1
      << " more)";
}

// All-gated fixed point, shared organization: with zero offered load the
// slot policy gates the pool down to the per-VC reserve and stays there —
// the structural no-op fixed point of sensor_wise_slot_decide. Fast-forward
// and the active set must carry the long quiescent horizon bit-exactly.
TEST(ThreeWayDifferential, SharedAllGatedFixedPointMatchesAcrossSchedulers) {
  sim::Scenario s = sim::Scenario::synthetic(3, 2, 0.0);
  s.buffer_org = "shared";
  s.warmup_cycles = 500;
  s.measure_cycles = 60'000;
  run_three_way(s, core::PolicyKind::kSensorWiseSlotMd, core::Workload::synthetic(),
                core::RunnerOptions{});
}

// Trace capture/replay fuzz: for random scenario/policy/workload draws,
// record the live run through RunnerOptions::capture_trace, freeze it into
// an NBTITRACE mapping, and demand (a) the replay reproduces the live run's
// full result JSON bit for bit and (b) the replay itself is bit-identical
// across all three scheduler modes.
class TraceCaptureReplayFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceCaptureReplayFuzzTest, CapturedRunsReplayBitIdentically) {
  util::Xoshiro256 rng(GetParam() ^ 0x7ace5ULL);
  sim::Scenario s = sim::Scenario::synthetic(2 + static_cast<int>(rng.next_below(2)),
                                             1 + static_cast<int>(rng.next_below(3)),
                                             0.02 + 0.1 * rng.next_double());
  s.num_vnets = 1 + static_cast<int>(rng.next_below(2));
  s.wakeup_latency = rng.next_below(4);
  s.warmup_cycles = 500;
  s.measure_cycles = 4'000 + rng.next_below(4'000);
  constexpr core::PolicyKind kPolicies[] = {
      core::PolicyKind::kBaseline, core::PolicyKind::kRrNoSensor,
      core::PolicyKind::kSensorWiseNoTraffic, core::PolicyKind::kSensorWise,
      core::PolicyKind::kSensorRank};
  const core::PolicyKind policy = kPolicies[rng.next_below(5)];
  constexpr traffic::PatternKind kPatterns[] = {
      traffic::PatternKind::kUniform, traffic::PatternKind::kTranspose,
      traffic::PatternKind::kBitComplement, traffic::PatternKind::kHotspot,
      traffic::PatternKind::kNeighbor, traffic::PatternKind::kTornado};
  // Rotate the source family: synthetic patterns, bursty benchmark mixes,
  // and the multi-packet-per-cycle datacenter aggregate.
  core::Workload workload = core::Workload::synthetic(kPatterns[rng.next_below(6)]);
  if (GetParam() % 3 == 1) {
    workload = core::Workload::benchmark_mix(
        traffic::random_mix(s.mesh_width * s.mesh_height, GetParam()), GetParam());
  } else if (GetParam() % 3 == 2) {
    traffic::DatacenterProfile profile;
    profile.users_per_node = 32;
    profile.user_rate = 0.02 + 0.2 * rng.next_double();
    profile.mean_on_cycles = 200;
    profile.mean_off_cycles = 800;
    profile.profile_horizon = 1 << 12;
    workload = core::Workload::datacenter_aggregate(profile);
  }
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + ", " + s.name + ", policy " +
               core::to_string(policy));

  core::RunnerOptions options;
  options.scheduler = SchedulerMode::kStepped;
  traffic::Trace captured;
  options.capture_trace = &captured;
  const core::RunResult live = core::run_experiment(s, policy, workload, options);

  const core::Workload replay = core::Workload::trace_replay(
      traffic::TraceFile::from_trace(captured, s.cores(), "fuzz seed " +
                                     std::to_string(GetParam())));
  options.capture_trace = nullptr;
  const core::RunResult replayed = core::run_experiment(s, policy, replay, options);
  expect_run_equal(live, replayed, "live vs trace replay");

  run_three_way(s, policy, replay, core::RunnerOptions{});
}

INSTANTIATE_TEST_SUITE_P(RandomCaptures, TraceCaptureReplayFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// run_experiment has no request/reply workload, so that source family gets
// its scheduler equivalence pinned at the Network level: coupled requesters
// and repliers across two vnets, run under all three schedulers. The
// active-set leg leans on the ReplyBoard wake sink — a reply posted while
// the server's NI is parked must still be served on time.
TEST(FastForwardFuzz, RequestReplyTrafficMatchesStepped) {
  const auto run_one = [](SchedulerMode mode) {
    NocConfig c;
    c.width = 3;
    c.height = 3;
    c.num_vcs = 2;
    c.num_vnets = 2;
    c.buffer_depth = 4;
    c.packet_length = 4;
    Network net(c);
    traffic::RequestReplyConfig rr;
    rr.request_rate = 0.004;  // sparse: long quiescent gaps between transactions
    traffic::install_request_reply_traffic(net, rr, 77);
    net.set_scheduler_mode(mode);
    net.run_with_warmup(1'000, 40'000);
    std::vector<double> out;
    for (NodeId id = 0; id < net.nodes(); ++id)
      for (int p = 0; p < kNumDirs; ++p) {
        const Dir port = static_cast<Dir>(p);
        if (!net.router(id).has_input(port)) continue;
        for (double d : net.duty_cycles_percent(id, port)) out.push_back(d);
      }
    out.push_back(static_cast<double>(net.stats().counter("noc.flits_ejected")));
    out.push_back(static_cast<double>(net.stats().counter("noc.packets_ejected")));
    out.push_back(static_cast<double>(net.stats().counter("noc.packets_offered")));
    return out;
  };
  const std::vector<double> stepped = run_one(SchedulerMode::kStepped);
  const std::vector<double> skipped = run_one(SchedulerMode::kFastForward);
  const std::vector<double> active = run_one(SchedulerMode::kActiveSet);
  ASSERT_EQ(stepped.size(), skipped.size());
  ASSERT_EQ(stepped.size(), active.size());
  for (std::size_t i = 0; i < stepped.size(); ++i) {
    EXPECT_EQ(stepped[i], skipped[i]) << "fast-forward index " << i;
    EXPECT_EQ(stepped[i], active[i]) << "active-set index " << i;
  }
}

}  // namespace
}  // namespace nbtinoc::noc
