// Fault-injection end-to-end: the storm may drop/corrupt every control
// message, but the datapath invariants must hold for every policy, the
// health watchdogs must quarantine ports whose sensors stop making sense
// (and demonstrably run the rr fallback there), and a faulted sweep must
// stay bit-identical at any worker count.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nbtinoc/core/sweep.hpp"

namespace nbtinoc::core {
namespace {

sim::Scenario small_scenario(double inj = 0.1) {
  sim::Scenario s = sim::Scenario::synthetic(2, 2, inj);
  s.name = "fault-4core";
  s.warmup_cycles = 1'000;
  s.measure_cycles = 4'000;
  return s;
}

std::uint64_t fault_count(const RunResult& r, const std::string& key) {
  const auto it = r.fault_counters.find(key);
  return it == r.fault_counters.end() ? 0u : it->second;
}

TEST(FaultResilience, InvariantsHoldUnderStormForAllPolicies) {
  for (PolicyKind policy :
       {PolicyKind::kRrNoSensor, PolicyKind::kSensorWise, PolicyKind::kSensorRank}) {
    RunnerOptions opt;
    opt.faults = sim::FaultPlan::uniform(0.05);
    opt.check_invariants = true;
    const RunResult r = run_experiment(small_scenario(), policy, Workload::synthetic(), opt);
    // The storm really fired...
    EXPECT_GT(fault_count(r, "fault.gate_cmd_drops"), 0u) << to_string(policy);
    // ...traffic still flowed...
    EXPECT_GT(r.flits_ejected, 0u) << to_string(policy);
    // ...and no flit was lost, parked in a gated buffer, or deadlocked.
    EXPECT_TRUE(r.invariant_violations.empty())
        << to_string(policy) << ": " << r.invariant_violations.front();
  }
}

// The dateline VC classes and multi-NI local ports must not open a deadlock
// or conservation hole even when the storm drops gate commands: every
// topology runs clean under the same invariant checker.
TEST(FaultResilience, InvariantsHoldUnderStormOnEveryTopology) {
  struct TopoPoint {
    const char* topology;
    int width;
    int concentration;
  };
  for (const auto& [topology, width, concentration] :
       {TopoPoint{"mesh", 4, 1}, {"torus", 4, 1}, {"ring", 4, 1}, {"cmesh", 4, 2}}) {
    sim::Scenario s = sim::Scenario::synthetic(width, 2, 0.1);
    s.topology = topology;
    s.concentration = concentration;
    s.name = std::string("fault-") + topology;
    s.warmup_cycles = 1'000;
    s.measure_cycles = 4'000;
    RunnerOptions opt;
    opt.faults = sim::FaultPlan::uniform(0.05);
    opt.check_invariants = true;
    const RunResult r =
        run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), opt);
    EXPECT_GT(fault_count(r, "fault.gate_cmd_drops"), 0u) << topology;
    EXPECT_GT(r.flits_ejected, 0u) << topology;
    EXPECT_TRUE(r.invariant_violations.empty())
        << topology << ": " << r.invariant_violations.front();
  }
}

TEST(FaultResilience, SensorPoliciesQuarantineUnderStorm) {
  RunnerOptions opt;
  opt.faults = sim::FaultPlan::uniform(0.2);
  // The default 1024-cycle epoch gives this short run only ~5 Down_Up
  // refreshes; tighten it so the watchdogs see a few hundred epochs.
  opt.policy.sensor.epoch_cycles = 32;
  const RunResult r =
      run_experiment(small_scenario(), PolicyKind::kSensorWise, Workload::synthetic(), opt);
  // Dead/stuck sensors and lost reports push ports into quarantine within
  // the run, and the transient fault process lets some recover.
  EXPECT_GT(fault_count(r, "fault.quarantines"), 0u);
  EXPECT_GT(fault_count(r, "fault.quarantined_port_cycles"), 0u);
}

// --- controller-level watchdog behavior -----------------------------------

noc::NocConfig mesh(int w = 2, int vcs = 4) {
  noc::NocConfig c;
  c.width = w;
  c.height = w;
  c.num_vcs = vcs;
  return c;
}

PolicyConfig sensor_wise_config() {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kSensorWise;
  cfg.sensor.epoch_cycles = 1;  // every post_cycle is a Down_Up epoch
  return cfg;
}

void expect_same_command(const noc::GateCommand& a, const noc::GateCommand& b, sim::Cycle now) {
  EXPECT_EQ(a.gating_active, b.gating_active) << "cycle " << now;
  EXPECT_EQ(a.enable, b.enable) << "cycle " << now;
  EXPECT_EQ(a.keep_vc, b.keep_vc) << "cycle " << now;
  EXPECT_EQ(a.first_vc, b.first_vc) << "cycle " << now;
  EXPECT_EQ(a.range_vcs, b.range_vcs) << "cycle " << now;
}

TEST(FaultResilience, StalePortFallsBackToRoundRobin) {
  noc::Network net(mesh());
  const nbti::NbtiModel model = nbti::NbtiModel::calibrated(nbti::NbtiParams{}, {});
  PolicyGateController ctrl(net, sensor_wise_config(), model, {}, nbti::PvConfig{}, 1);
  PolicyConfig rr_cfg;
  rr_cfg.kind = PolicyKind::kRrNoSensor;
  PolicyGateController rr(net, rr_cfg, model, {}, nbti::PvConfig{}, 1);

  sim::FaultPlan plan;
  plan.down_up_drop_rate = 1.0;  // every Down_Up report lost
  sim::FaultInjector injector(plan, /*seed=*/3);
  ctrl.set_fault_injector(&injector);

  const noc::PortKey key{0, noc::Dir::East};
  const noc::OutVcStateView view(&net.router(0).input(noc::Dir::East));

  // Healthy (pre-quarantine): sensor-wise keeps a sensor-chosen VC, which
  // the rotating rr candidate cannot track.
  ASSERT_FALSE(ctrl.quarantined(key));
  bool differed = false;
  for (sim::Cycle now = 0; now < 8; ++now)
    if (ctrl.decide(key, view, true, now).keep_vc != rr.decide(key, view, true, now).keep_vc)
      differed = true;
  EXPECT_TRUE(differed);

  // Starve the watchdog: staleness_epochs dropped reports -> quarantine.
  for (sim::Cycle now = 1; now <= 6; ++now) ctrl.post_cycle(now);
  ASSERT_TRUE(ctrl.quarantined(key));
  EXPECT_EQ(ctrl.quarantined_ports(), 12u);  // every port starves alike
  EXPECT_EQ(net.stats().counter("fault.quarantines"), 12u);

  // Quarantined: sensor-wise is now bit-for-bit the rr-no-sensor policy.
  for (sim::Cycle now = 10; now < 30; ++now)
    expect_same_command(ctrl.decide(key, view, true, now), rr.decide(key, view, true, now), now);
  expect_same_command(ctrl.decide(key, view, false, 30), rr.decide(key, view, false, 30), 30);
}

TEST(FaultResilience, DeadSensorsTripThePlausibilityWatchdog) {
  noc::Network net(mesh());
  const nbti::NbtiModel model = nbti::NbtiModel::calibrated(nbti::NbtiParams{}, {});
  PolicyGateController ctrl(net, sensor_wise_config(), model, {}, nbti::PvConfig{}, 1);

  sim::FaultPlan plan;
  plan.sensor_death_rate = 1.0;  // every site dies on its first epoch
  plan.dead_reading_v = 0.0;     // rails well below plausible_min_v
  sim::FaultInjector injector(plan, 3);
  ctrl.set_fault_injector(&injector);

  const noc::PortKey key{0, noc::Dir::East};
  ctrl.post_cycle(1);
  EXPECT_FALSE(ctrl.quarantined(key));  // one implausible epoch: not yet
  EXPECT_EQ(ctrl.effective_vth(key, 0), 0.0);
  ctrl.post_cycle(2);
  EXPECT_TRUE(ctrl.quarantined(key));  // implausible_epochs_to_quarantine = 2
}

TEST(FaultResilience, PortRecoversWhenReadingsReturn) {
  noc::Network net(mesh());
  const nbti::NbtiModel model = nbti::NbtiModel::calibrated(nbti::NbtiParams{}, {});
  PolicyGateController ctrl(net, sensor_wise_config(), model, {}, nbti::PvConfig{}, 1);

  sim::FaultPlan starve;
  starve.down_up_drop_rate = 1.0;
  sim::FaultInjector blackout(starve, 3);
  ctrl.set_fault_injector(&blackout);
  const noc::PortKey key{0, noc::Dir::East};
  for (sim::Cycle now = 1; now <= 6; ++now) ctrl.post_cycle(now);
  ASSERT_TRUE(ctrl.quarantined(key));

  // The link heals (reports flow again; an unrelated fault keeps the
  // injector active): healthy_epochs_to_recover clean epochs re-arm trust.
  sim::FaultPlan healed;
  healed.wake_fail_rate = 0.5;
  sim::FaultInjector flaky_wake(healed, 3);
  ctrl.set_fault_injector(&flaky_wake);
  for (sim::Cycle now = 7; now <= 9; ++now) ctrl.post_cycle(now);
  EXPECT_TRUE(ctrl.quarantined(key));  // 3 clean epochs: one short
  ctrl.post_cycle(10);
  EXPECT_FALSE(ctrl.quarantined(key));
  EXPECT_EQ(net.stats().counter("fault.recoveries"), 12u);
}

// --- sweep determinism -----------------------------------------------------

TEST(FaultResilience, FaultedSweepIsBitIdenticalAtAnyWorkerCount) {
  sim::Scenario s = small_scenario();
  s.warmup_cycles = 500;
  s.measure_cycles = 2'000;

  std::vector<std::string> reference;
  for (unsigned workers : {1u, 2u, 8u}) {
    SweepOptions opt;
    opt.workers = workers;
    opt.runner.faults = sim::FaultPlan::uniform(0.02);
    SweepRunner sweep{opt};
    sweep.add_grid({s}, {PolicyKind::kRrNoSensor, PolicyKind::kSensorWise,
                         PolicyKind::kSensorRank});
    const SweepResult results = sweep.run();
    std::vector<std::string> jsons;
    for (const auto& point : results) jsons.push_back(to_json(point.result));
    if (reference.empty()) {
      reference = jsons;
      // The storm fired: nonzero rates must not silently no-op.
      for (const auto& point : results)
        EXPECT_FALSE(point.result.fault_counters.empty()) << point.point.describe();
    } else {
      ASSERT_EQ(jsons.size(), reference.size());
      for (std::size_t i = 0; i < jsons.size(); ++i)
        EXPECT_EQ(jsons[i], reference[i]) << "point " << i << " at " << workers << " workers";
    }
  }
}

}  // namespace
}  // namespace nbtinoc::core
