// Integration tests of the policy mechanisms on live networks: the
// qualitative properties the paper's §IV discussion relies on.

#include <gtest/gtest.h>

#include <algorithm>

#include "nbtinoc/core/experiment.hpp"

namespace nbtinoc::core {
namespace {

sim::Scenario scenario(int width, int vcs, double rate) {
  sim::Scenario s = sim::Scenario::synthetic(width, vcs, rate);
  s.warmup_cycles = 5'000;
  s.measure_cycles = 40'000;
  return s;
}

RunResult run(const sim::Scenario& s, PolicyKind policy) {
  return run_experiment(s, policy, Workload::synthetic());
}

TEST(PolicyBehavior, AllPoliciesDeliverTheSameTraffic) {
  const sim::Scenario s = scenario(2, 2, 0.2);
  const RunResult base = run(s, PolicyKind::kBaseline);
  for (auto policy : {PolicyKind::kRrNoSensor, PolicyKind::kSensorWiseNoTraffic,
                      PolicyKind::kSensorWise}) {
    const RunResult r = run(s, policy);
    EXPECT_EQ(r.flits_injected, base.flits_injected) << to_string(policy);
    // Gating may shift a few packets across the measurement boundary but
    // must not lose traffic.
    EXPECT_NEAR(static_cast<double>(r.flits_ejected), static_cast<double>(base.flits_ejected),
                base.flits_ejected * 0.01 + 50)
        << to_string(policy);
  }
}

TEST(PolicyBehavior, GatingDoesNotHurtLatency) {
  // The paper's policies keep an idle VC awake whenever traffic waits, so
  // packet latency must stay essentially unchanged.
  const sim::Scenario s = scenario(2, 2, 0.2);
  const double base = run(s, PolicyKind::kBaseline).avg_packet_latency;
  for (auto policy : {PolicyKind::kRrNoSensor, PolicyKind::kSensorWise}) {
    const double lat = run(s, policy).avg_packet_latency;
    EXPECT_NEAR(lat, base, base * 0.05) << to_string(policy);
  }
}

TEST(PolicyBehavior, RrSpreadsDutyEvenly) {
  // Algorithm 1 rotates the awake candidate on a time basis: per-VC duty
  // cycles end up near-identical (Tables II/III rr columns).
  const sim::Scenario s = scenario(4, 4, 0.2);
  const RunResult r = run(s, PolicyKind::kRrNoSensor);
  const auto& duties = r.port(0, noc::Dir::East).duty_percent;
  const double max = *std::max_element(duties.begin(), duties.end());
  const double min = *std::min_element(duties.begin(), duties.end());
  // Tight at paper scale (30e6 cycles); a few points of spread remain at
  // this reduced cycle count.
  EXPECT_LT(max - min, 6.0);
  EXPECT_GT(min, 0.0);
  EXPECT_LT(max, 100.0);
}

TEST(PolicyBehavior, SensorWiseNoTrafficPinsOneVcAtFullStress) {
  // Without traffic info one idle VC must always stay awake; with a fixed
  // iteration order it is always the same VC => exactly one VC at 100%.
  const sim::Scenario s = scenario(2, 4, 0.1);
  const RunResult r = run(s, PolicyKind::kSensorWiseNoTraffic);
  const auto& duties = r.port(0, noc::Dir::East).duty_percent;
  const int pinned = static_cast<int>(std::count_if(duties.begin(), duties.end(),
                                                    [](double d) { return d > 99.0; }));
  EXPECT_EQ(pinned, 1);
  // And the most degraded VC is not the pinned one.
  const auto& port = r.port(0, noc::Dir::East);
  EXPECT_LT(port.duty_percent[static_cast<std::size_t>(port.most_degraded)], 99.0);
}

TEST(PolicyBehavior, SensorWiseProtectsTheMostDegradedVc) {
  // The MD VC's duty under sensor-wise is the minimum across its port.
  for (double rate : {0.1, 0.2}) {
    const sim::Scenario s = scenario(4, 4, rate);
    const RunResult r = run(s, PolicyKind::kSensorWise);
    const auto& port = r.port(0, noc::Dir::East);
    const double md_duty = port.duty_percent[static_cast<std::size_t>(port.most_degraded)];
    for (double d : port.duty_percent) EXPECT_LE(md_duty, d + 1e-9);
  }
}

TEST(PolicyBehavior, SensorWiseBeatsRrOnTheMostDegradedVc) {
  // The paper's central claim: positive Gap everywhere.
  for (int width : {2, 4}) {
    for (int vcs : {2, 4}) {
      const sim::Scenario s = scenario(width, vcs, 0.2);
      const RunResult rr = run(s, PolicyKind::kRrNoSensor);
      const RunResult sw = run(s, PolicyKind::kSensorWise);
      const int md = sw.port(0, noc::Dir::East).most_degraded;
      const double gap = rr.port(0, noc::Dir::East).duty_percent[static_cast<std::size_t>(md)] -
                         sw.port(0, noc::Dir::East).duty_percent[static_cast<std::size_t>(md)];
      EXPECT_GT(gap, 0.0) << width << "x" << width << " vc" << vcs;
    }
  }
}

TEST(PolicyBehavior, CooperationBeatsNoTrafficVariantOnMdVc) {
  // §IV headline: traffic-information exploitation (cooperative Up_Down
  // decisions) reduces the MD VC duty vs the sensor-only variant.
  const sim::Scenario s = scenario(4, 2, 0.2);
  const RunResult swnt = run(s, PolicyKind::kSensorWiseNoTraffic);
  const RunResult sw = run(s, PolicyKind::kSensorWise);
  const int md = sw.port(0, noc::Dir::East).most_degraded;
  EXPECT_LE(sw.port(0, noc::Dir::East).duty_percent[static_cast<std::size_t>(md)],
            swnt.port(0, noc::Dir::East).duty_percent[static_cast<std::size_t>(md)] + 0.5);
}

TEST(PolicyBehavior, EveryPortBenefitsFromSensorWise) {
  // Not just the sampled port: averaged over the whole network the policy
  // reduces stress.
  const sim::Scenario s = scenario(2, 2, 0.2);
  const RunResult base = run(s, PolicyKind::kBaseline);
  const RunResult sw = run(s, PolicyKind::kSensorWise);
  for (const auto& [key, port] : sw.ports) {
    const double avg_sw = util::mean_of(port.duty_percent);
    const double avg_base = util::mean_of(base.ports.at(key).duty_percent);
    EXPECT_LT(avg_sw, avg_base) << "router " << key.router;
  }
}

TEST(PolicyBehavior, HysteresisCutsGatingTransitions) {
  // Holding pre-VA decisions reduces header-PMOS switching without
  // affecting delivery (bench X10 quantifies the energy side).
  const sim::Scenario s = scenario(2, 4, 0.2);
  RunnerOptions fast;
  fast.policy.decision_period = 1;
  RunnerOptions held;
  held.policy.decision_period = 256;
  const RunResult r_fast =
      run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), fast);
  const RunResult r_held =
      run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), held);
  EXPECT_LT(r_held.total_gate_transitions, r_fast.total_gate_transitions);
  EXPECT_GT(r_held.packets_ejected, r_fast.packets_ejected * 9 / 10);
  EXPECT_NEAR(r_held.avg_packet_latency, r_fast.avg_packet_latency,
              r_fast.avg_packet_latency * 0.10);
}

TEST(PolicyBehavior, SensorRankDeliversAndProtects) {
  const sim::Scenario s = scenario(4, 4, 0.2);
  const RunResult rank = run(s, PolicyKind::kSensorRank);
  const RunResult base = run(s, PolicyKind::kBaseline);
  EXPECT_EQ(rank.packets_offered, base.packets_offered);
  EXPECT_NEAR(rank.avg_packet_latency, base.avg_packet_latency,
              base.avg_packet_latency * 0.05);
  // Average duty far below the always-on baseline.
  const auto& port = rank.port(0, noc::Dir::East);
  EXPECT_LT(util::mean_of(port.duty_percent), 60.0);
}

TEST(PolicyBehavior, WakeupLatencyZeroMatchesPaperAssumption) {
  // With the paper's instant set_idle, gating must not change ejection
  // counts at all (checked above) — here we additionally verify duty
  // reduction really comes from Recovery residency.
  const sim::Scenario s = scenario(2, 2, 0.1);
  const RunResult sw = run(s, PolicyKind::kSensorWise);
  const auto& port = sw.port(0, noc::Dir::East);
  const double avg = util::mean_of(port.duty_percent);
  EXPECT_LT(avg, 50.0);  // most of the time both VCs recover at 0.1 load
}

}  // namespace
}  // namespace nbtinoc::core
