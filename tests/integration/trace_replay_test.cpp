// Trace capture/replay end to end: RunnerOptions::capture_trace observes a
// live run without perturbing it, and replaying the capture through
// Workload::trace_replay reproduces the full result JSON bit for bit — under
// every scheduler mode, through fault storms, across snapshot/resume, and
// for the datacenter aggregate workload. A checked-in golden .nbtitrace
// fixture additionally pins the binary format bytes themselves.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "nbtinoc/core/experiment.hpp"
#include "nbtinoc/traffic/trace.hpp"
#include "nbtinoc/traffic/trace_file.hpp"

#ifndef NBTINOC_TEST_DATA_DIR
#error "NBTINOC_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace nbtinoc::core {
namespace {

void expect_run_equal(const RunResult& a, const RunResult& b, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(to_json(a), to_json(b));
  ASSERT_EQ(a.ports.size(), b.ports.size());
  for (const auto& [key, port] : a.ports) {
    const PortResult& other = b.ports.at(key);
    EXPECT_EQ(port.gate_transitions, other.gate_transitions);
    EXPECT_EQ(port.most_degraded, other.most_degraded);
    EXPECT_EQ(port.duty_percent, other.duty_percent);
  }
  EXPECT_EQ(a.total_gate_transitions, b.total_gate_transitions);
  EXPECT_EQ(a.fault_counters, b.fault_counters);
}

/// Runs the workload under all three scheduler modes and asserts the results
/// are bit-identical; returns the stepped result.
RunResult run_three_way(const sim::Scenario& s, PolicyKind policy, const Workload& workload,
                        RunnerOptions options) {
  options.scheduler = noc::SchedulerMode::kStepped;
  const RunResult stepped = run_experiment(s, policy, workload, options);
  options.scheduler = noc::SchedulerMode::kFastForward;
  const RunResult skipped = run_experiment(s, policy, workload, options);
  options.scheduler = noc::SchedulerMode::kActiveSet;
  const RunResult active = run_experiment(s, policy, workload, options);
  expect_run_equal(stepped, skipped, "stepped vs fast-forward");
  expect_run_equal(stepped, active, "stepped vs active-set");
  return stepped;
}

sim::Scenario small_scenario() {
  sim::Scenario s = sim::Scenario::synthetic(3, 2, 0.08);
  s.warmup_cycles = 500;
  s.measure_cycles = 4'000;
  return s;
}

/// Captures `workload` under `options` and returns (live result, trace file).
std::pair<RunResult, std::shared_ptr<const traffic::TraceFile>> capture(
    const sim::Scenario& s, PolicyKind policy, const Workload& workload, RunnerOptions options) {
  traffic::Trace trace;
  options.capture_trace = &trace;
  RunResult live = run_experiment(s, policy, workload, options);
  return {std::move(live), traffic::TraceFile::from_trace(trace, s.cores(), "test capture")};
}

TEST(TraceReplayRun, CaptureIsObservationOnlyAndReplaysBitIdentically) {
  const sim::Scenario s = small_scenario();
  const Workload live_workload = Workload::synthetic();

  // Capturing must not perturb the run...
  const RunResult plain = run_experiment(s, PolicyKind::kSensorWise, live_workload);
  const auto [live, file] = capture(s, PolicyKind::kSensorWise, live_workload, RunnerOptions{});
  expect_run_equal(plain, live, "uncaptured vs captured run");
  ASSERT_GT(file->record_count(), 100u);

  // ...and replaying the capture reproduces the run bit for bit, in every
  // scheduler mode.
  const RunResult replayed =
      run_three_way(s, PolicyKind::kSensorWise, Workload::trace_replay(file), RunnerOptions{});
  expect_run_equal(live, replayed, "live vs trace replay");
}

TEST(TraceReplayRun, ReplayIsPolicyIndependentOfferedLoad) {
  // One frozen trace drives different policies with the identical offered
  // load — the use case the paper's Table IV comparison depends on.
  const sim::Scenario s = small_scenario();
  const auto [live, file] = capture(s, PolicyKind::kRrNoSensor, Workload::synthetic(),
                                    RunnerOptions{});
  const Workload replay = Workload::trace_replay(file);
  const RunResult rr = run_experiment(s, PolicyKind::kRrNoSensor, replay);
  const RunResult sw = run_experiment(s, PolicyKind::kSensorWise, replay);
  expect_run_equal(live, rr, "live rr vs replayed rr");
  EXPECT_EQ(rr.packets_offered, sw.packets_offered);
}

TEST(TraceReplayRun, MidFaultStormReplayMatchesAcrossSchedulers) {
  // Capture under a fault storm, then replay with the same plan: the storm
  // re-derives from the scenario, so dropped/flipped packets land on the
  // identical cycles and the replay still matches three ways.
  const sim::Scenario s = small_scenario();
  RunnerOptions options;
  options.faults = sim::FaultPlan::uniform(0.02);
  const auto [live, file] = capture(s, PolicyKind::kSensorWise, Workload::synthetic(), options);
  ASSERT_FALSE(live.fault_counters.empty());
  const RunResult replayed =
      run_three_way(s, PolicyKind::kSensorWise, Workload::trace_replay(file), options);
  expect_run_equal(live, replayed, "fault-storm live vs replay");
}

TEST(TraceReplayRun, SnapshotResumeOfTraceRunIsBitIdentical) {
  // The replay cursor is the source's whole dynamic state; pausing a
  // trace-driven run mid-measurement and resuming must reproduce the
  // uninterrupted result exactly (cursor serialization round trip).
  const sim::Scenario s = small_scenario();
  const auto [live, file] = capture(s, PolicyKind::kSensorWise, Workload::synthetic(),
                                    RunnerOptions{});
  const Workload replay = Workload::trace_replay(file);

  RunnerOptions options;
  const RunResult plain = run_experiment(s, PolicyKind::kSensorWise, replay, options);
  expect_run_equal(live, plain, "live vs replay (pre-snapshot sanity)");

  std::string bytes;
  options.snapshot_at = 2'200;
  options.snapshot_out = &bytes;
  const RunResult paused = run_experiment(s, PolicyKind::kSensorWise, replay, options);
  expect_run_equal(plain, paused, "uninterrupted vs paused-and-continued");
  ASSERT_FALSE(bytes.empty());

  options.snapshot_at.reset();
  options.snapshot_out = nullptr;
  options.resume_from = bytes;
  for (const auto mode : {noc::SchedulerMode::kStepped, noc::SchedulerMode::kFastForward,
                          noc::SchedulerMode::kActiveSet}) {
    options.scheduler = mode;
    const RunResult resumed = run_experiment(s, PolicyKind::kSensorWise, replay, options);
    expect_run_equal(plain, resumed, "uninterrupted vs resumed replay");
  }
}

TEST(TraceReplayRun, DatacenterWorkloadCapturesAndReplays) {
  // The intended datacenter production path: synthesize once, capture, then
  // replay the frozen aggregate across policies and scheduler modes.
  sim::Scenario s = small_scenario();
  traffic::DatacenterProfile profile;
  profile.users_per_node = 64;
  profile.user_rate = 0.05;
  profile.mean_on_cycles = 400;
  profile.mean_off_cycles = 600;
  profile.profile_horizon = 1 << 12;
  const Workload dc = Workload::datacenter_aggregate(profile);

  const RunResult live = run_three_way(s, PolicyKind::kSensorWise, dc, RunnerOptions{});
  const auto [captured, file] = capture(s, PolicyKind::kSensorWise, dc, RunnerOptions{});
  expect_run_equal(live, captured, "datacenter three-way vs captured run");
  ASSERT_GT(file->record_count(), 100u);
  const RunResult replayed =
      run_three_way(s, PolicyKind::kSensorWise, Workload::trace_replay(file), RunnerOptions{});
  expect_run_equal(live, replayed, "datacenter live vs replay");
}

TEST(TraceReplayRun, WorkloadValidationIsActionable) {
  const sim::Scenario s = small_scenario();

  // Null trace caught at Workload construction, not install time.
  try {
    Workload::trace_replay(nullptr);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("null trace (open one with traffic::TraceFile::open)"),
              std::string::npos)
        << e.what();
  }

  // A trace carrying more vnets than the scenario provides is rejected with
  // both counts and the trace digest named.
  traffic::Trace wide;
  wide.add({10, 0, 1, 4, /*vnet=*/1});
  const auto file = traffic::TraceFile::from_trace(wide, s.cores(), "two-vnet capture");
  ASSERT_EQ(file->vnet_count(), 2);
  sim::Scenario narrow = s;
  narrow.num_vnets = 1;
  try {
    run_experiment(narrow, PolicyKind::kSensorWise, Workload::trace_replay(file));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what())
                  .find("trace uses 2 vnets but this scenario has 1 (trace digest: "
                        "\"two-vnet capture\")"),
              std::string::npos)
        << e.what();
  }

  // Node-count mismatches surface the digest too (install_trace_replay).
  sim::Scenario bigger = sim::Scenario::synthetic(4, 2, 0.08);
  bigger.num_vnets = 2;  // pass the vnet check so the node check fires
  bigger.warmup_cycles = 100;
  bigger.measure_cycles = 100;
  EXPECT_THROW(
      run_experiment(bigger, PolicyKind::kSensorWise, Workload::trace_replay(file)),
      traffic::TraceError);
}

TEST(TraceReplayRun, CaptureCannotCombineWithResume) {
  const sim::Scenario s = small_scenario();
  RunnerOptions options;
  std::string bytes;
  options.snapshot_at = 1'000;
  options.snapshot_out = &bytes;
  run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options);

  options.snapshot_at.reset();
  options.snapshot_out = nullptr;
  options.resume_from = bytes;
  traffic::Trace trace;
  options.capture_trace = &trace;
  try {
    run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("capture_trace cannot combine with resume_from"),
              std::string::npos)
        << e.what();
  }
}

// Golden fixture: the exact NBTITRACE bytes of a fixed capture are checked
// in, pinning the binary format (header layout, record packing, per-node
// grouping and same-cycle ordering) against accidental drift. Regenerate
// after an intentional format/capture change with
//   NBTINOC_UPDATE_GOLDEN=1 ./build/tests/nbtinoc_tests --gtest_filter='TraceGolden*'
TEST(TraceGolden, CapturedTraceBytesMatchCheckedInFixture) {
  const char* kGoldenPath =
      NBTINOC_TEST_DATA_DIR "/integration/golden/trace_capture.nbtitrace";

  sim::Scenario s = sim::Scenario::synthetic(2, 2, 0.1);
  s.name = "golden-trace-4core";
  s.warmup_cycles = 500;
  s.measure_cycles = 2'000;
  traffic::Trace trace;
  RunnerOptions options;
  options.capture_trace = &trace;
  run_experiment(s, PolicyKind::kRrNoSensor, Workload::synthetic(), options);
  const std::string actual = traffic::serialize_trace(trace, s.cores(), "golden-trace-4core");
  ASSERT_GT(trace.size(), 50u);

  if (std::getenv("NBTINOC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "golden trace regenerated at " << kGoldenPath << " — review and commit it";
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden trace " << kGoldenPath
                  << " — regenerate with NBTINOC_UPDATE_GOLDEN=1";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();

  EXPECT_EQ(actual.size(), expected.size()) << "trace byte length drifted from " << kGoldenPath;
  if (actual != expected) {
    std::size_t first = 0;
    while (first < std::min(actual.size(), expected.size()) && actual[first] == expected[first])
      ++first;
    FAIL() << "trace bytes drifted from " << kGoldenPath << " (first difference at offset "
           << first << " of " << expected.size() << ").\n"
           << "If this change is intentional, regenerate with NBTINOC_UPDATE_GOLDEN=1 and commit.";
  }

  // The checked-in fixture must itself open cleanly and replay to the same
  // result as a fresh capture's file.
  const auto golden_file = traffic::TraceFile::open(kGoldenPath);
  const RunResult from_golden =
      run_experiment(s, PolicyKind::kRrNoSensor, Workload::trace_replay(golden_file));
  const RunResult from_fresh = run_experiment(
      s, PolicyKind::kRrNoSensor,
      Workload::trace_replay(traffic::TraceFile::from_bytes(actual)));
  expect_run_equal(from_golden, from_fresh, "golden fixture vs fresh capture replay");
}

}  // namespace
}  // namespace nbtinoc::core
