// Golden regression harness: one fixed scenario per policy, with the
// per-port duty cycles / MD VC / gate-transition counts checked in as a
// golden JSON file. Any refactor that silently changes the reproduction
// fails here with a line-level diff instead of slipping through.
//
// To regenerate after an *intentional* behavior change:
//   NBTINOC_UPDATE_GOLDEN=1 ./build/tests/nbtinoc_tests --gtest_filter='Golden*'
// then review the diff of tests/integration/golden/duty_cycles.json.
//
// Only integer counters and duty percentages (exact IEEE ratios of cycle
// counts) go into the golden file — not the PV Vth samples, whose libm
// paths could differ in the last ulp across toolchains.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nbtinoc/core/sweep.hpp"

#ifndef NBTINOC_TEST_DATA_DIR
#error "NBTINOC_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace nbtinoc::core {
namespace {

const char* kGoldenPath = NBTINOC_TEST_DATA_DIR "/integration/golden/duty_cycles.json";

sim::Scenario golden_scenario() {
  sim::Scenario s = sim::Scenario::synthetic(2, 2, 0.1);
  s.name = "golden-4core-2vc-inj0.10";
  s.warmup_cycles = 2'000;
  s.measure_cycles = 10'000;
  return s;
}

std::string fmt(double v) {
  char buf[64];
  // %.12g: duty cycles are count/window ratios — exact IEEE arithmetic —
  // so 12 significant digits catch any real drift without ulp noise.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Renders the runs as a stable, line-oriented JSON document: one line per
/// port so a drift shows up as a small, readable diff.
std::string render(const std::vector<SweepPointResult>& runs) {
  std::ostringstream out;
  out << "{\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i].result;
    out << "  \"" << to_string(r.policy) << "\": {\n";
    std::size_t p = 0;
    for (const auto& [key, port] : r.ports) {
      out << "    \"r" << key.router << ":" << noc::dir_letter(key.port) << "\": {\"md\": "
          << port.most_degraded << ", \"duty\": [";
      for (std::size_t v = 0; v < port.duty_percent.size(); ++v)
        out << (v ? ", " : "") << fmt(port.duty_percent[v]);
      out << "], \"gate_transitions\": [";
      for (std::size_t v = 0; v < port.gate_transitions.size(); ++v)
        out << (v ? ", " : "") << port.gate_transitions[v];
      out << "]}" << (++p < r.ports.size() ? "," : "") << "\n";
    }
    out << "  }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "}\n";
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Golden, DutyCyclesMatchCheckedInGolden) {
  const std::vector<PolicyKind> policies = {PolicyKind::kBaseline, PolicyKind::kRrNoSensor,
                                            PolicyKind::kSensorWiseNoTraffic,
                                            PolicyKind::kSensorWise};
  SweepRunner sweep{SweepOptions{}};
  sweep.add_grid({golden_scenario()}, policies);
  const SweepResult results = sweep.run();
  const std::string actual = render({results.begin(), results.end()});

  if (std::getenv("NBTINOC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath << " — review and commit it";
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                  << " — regenerate with NBTINOC_UPDATE_GOLDEN=1";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();

  if (actual == expected) return;

  // Readable diff: report every drifted line with both values.
  const std::vector<std::string> want = lines_of(expected);
  const std::vector<std::string> got = lines_of(actual);
  std::ostringstream diff;
  const std::size_t n = std::max(want.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& w = i < want.size() ? want[i] : "<missing>";
    const std::string& g = i < got.size() ? got[i] : "<missing>";
    if (w != g) diff << "  line " << (i + 1) << ":\n    golden: " << w << "\n    actual: " << g << "\n";
  }
  FAIL() << "duty cycles drifted from " << kGoldenPath << "\n"
         << diff.str()
         << "If this change is intentional, regenerate with NBTINOC_UPDATE_GOLDEN=1 and commit.";
}

TEST(Golden, FastForwardOffMatchesGolden) {
  // The event-horizon engine's hard guarantee, pinned from the other side:
  // DutyCyclesMatchCheckedInGolden runs with fast_forward on (the
  // RunnerOptions default), so re-running the same grid with the literal
  // per-cycle loop must reproduce the same golden bytes.
  if (std::getenv("NBTINOC_UPDATE_GOLDEN") != nullptr)
    GTEST_SKIP() << "golden file being regenerated by DutyCyclesMatchCheckedInGolden";
  SweepOptions options;
  options.runner.fast_forward = false;
  SweepRunner sweep{options};
  sweep.add_grid({golden_scenario()},
                 {PolicyKind::kBaseline, PolicyKind::kRrNoSensor,
                  PolicyKind::kSensorWiseNoTraffic, PolicyKind::kSensorWise});
  const SweepResult results = sweep.run();
  const std::string actual = render({results.begin(), results.end()});

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(actual, buf.str())
      << "fast_forward=false must be bit-identical to the fast-forwarded golden run";
}

TEST(Golden, ZeroRateFaultPlanMatchesGolden) {
  // The fault subsystem's no-op guarantee, pinned to the golden file: a
  // plan whose rates are all zero constructs no injector, so the run is
  // byte-identical to one from a build without the subsystem.
  if (std::getenv("NBTINOC_UPDATE_GOLDEN") != nullptr)
    GTEST_SKIP() << "golden file being regenerated by DutyCyclesMatchCheckedInGolden";
  SweepOptions options;
  options.runner.faults = sim::FaultPlan::uniform(0.0);
  ASSERT_FALSE(options.runner.faults.enabled());
  SweepRunner sweep{options};
  sweep.add_grid({golden_scenario()},
                 {PolicyKind::kBaseline, PolicyKind::kRrNoSensor,
                  PolicyKind::kSensorWiseNoTraffic, PolicyKind::kSensorWise});
  const SweepResult results = sweep.run();
  for (const auto& point : results) {
    EXPECT_TRUE(point.result.fault_counters.empty());
    EXPECT_EQ(to_json(point.result).find("fault_counters"), std::string::npos);
  }
  const std::string actual = render({results.begin(), results.end()});

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(actual, buf.str())
      << "a zero-rate FaultPlan must be a provable no-op against the golden run";
}

}  // namespace
}  // namespace nbtinoc::core
