#include <algorithm>
#include <set>
// Reduced-scale reproduction checks of the paper's evaluation (§IV):
// the table trends and headline numbers must hold in sign and shape.
// The bench binaries regenerate the full tables; these tests pin the
// properties at CI-friendly cycle counts.

#include <gtest/gtest.h>

#include "nbtinoc/core/experiment.hpp"
#include "nbtinoc/nbti/aging.hpp"

namespace nbtinoc::core {
namespace {

sim::Scenario scenario(int width, int vcs, double rate, sim::Cycle measure = 60'000) {
  sim::Scenario s = sim::Scenario::synthetic(width, vcs, rate);
  s.warmup_cycles = measure / 5;
  s.measure_cycles = measure;
  return s;
}

double gap_at(const sim::Scenario& s) {
  const RunResult rr = run_experiment(s, PolicyKind::kRrNoSensor, Workload::synthetic());
  const RunResult sw = run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic());
  const int md = sw.port(0, noc::Dir::East).most_degraded;
  return rr.port(0, noc::Dir::East).duty_percent[static_cast<std::size_t>(md)] -
         sw.port(0, noc::Dir::East).duty_percent[static_cast<std::size_t>(md)];
}

TEST(Reproduction, TableII_GapGrowsWithLoadAt4Vcs) {
  // Table II: with 4 VCs the Gap *increases* with injection rate — the
  // extra VCs keep the sensor-wise policy in control while rr-no-sensor
  // duty climbs with load.
  const double gap_low = gap_at(scenario(4, 4, 0.1));
  const double gap_high = gap_at(scenario(4, 4, 0.3));
  EXPECT_GT(gap_low, 0.0);
  EXPECT_GT(gap_high, gap_low);
  EXPECT_GT(gap_high, 10.0);  // paper reports up to 26.6%
}

TEST(Reproduction, TableIII_GapShrinksUnderCongestionAt2Vcs) {
  // Table III: with only 2 VCs the Gap *decreases* as congestion removes
  // the policy's freedom to steer packets away from the MD VC.
  const double gap_mid = gap_at(scenario(4, 2, 0.2));
  const double gap_high = gap_at(scenario(4, 2, 0.3));
  EXPECT_GT(gap_mid, 0.0);
  EXPECT_GT(gap_high, 0.0);
  EXPECT_LT(gap_high, gap_mid);
}

TEST(Reproduction, TableII_III_PositiveGapEverywhere) {
  for (int width : {2, 4}) {
    for (int vcs : {2, 4}) {
      for (double rate : {0.1, 0.3}) {
        EXPECT_GT(gap_at(scenario(width, vcs, rate, 40'000)), 0.0)
            << width * width << "core vc" << vcs << " inj" << rate;
      }
    }
  }
}

TEST(Reproduction, TableII_RrDutyRisesWithArchitectureSize) {
  // 16-core rows sit above 4-core rows at equal injection (more transit
  // traffic through the sampled port).
  const RunResult small =
      run_experiment(scenario(2, 4, 0.2), PolicyKind::kRrNoSensor, Workload::synthetic());
  const RunResult big =
      run_experiment(scenario(4, 4, 0.2), PolicyKind::kRrNoSensor, Workload::synthetic());
  EXPECT_GT(util::mean_of(big.port(0, noc::Dir::East).duty_percent),
            util::mean_of(small.port(0, noc::Dir::East).duty_percent));
}

TEST(Reproduction, VthSavingHeadline) {
  // §V: "net NBTI Vth saving up to 54.2%" of sensor-wise vs the baseline
  // NoC that does not account for NBTI (always stressed). At reduced scale
  // the MD VC duty lands low enough that the saving clears 40%.
  const sim::Scenario s = scenario(4, 4, 0.1);
  const RunResult sw = run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic());
  const auto& port = sw.port(0, noc::Dir::East);
  const double alpha = port.duty_percent[static_cast<std::size_t>(port.most_degraded)] / 100.0;

  const nbti::NbtiModel model = calibrated_model_of(s);
  const double three_years = 3 * 365.25 * 24 * 3600;
  const double saving = model.vth_saving(alpha, 1.0, three_years, operating_point_of(s));
  EXPECT_GT(saving, 0.40);
  EXPECT_LT(saving, 1.0);
}

TEST(Reproduction, CooperationHeadline) {
  // §V: cooperation (traffic info) reduces the MD VC duty vs the
  // non-cooperative sensor-only approach; paper reports up to 23 points.
  const sim::Scenario s = scenario(4, 4, 0.2);
  const RunResult swnt = run_experiment(s, PolicyKind::kSensorWiseNoTraffic, Workload::synthetic());
  const RunResult sw = run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic());
  double best_improvement = -1e9;
  for (const auto& [key, port] : sw.ports) {
    const int md = port.most_degraded;
    const double improvement =
        swnt.ports.at(key).duty_percent[static_cast<std::size_t>(md)] -
        port.duty_percent[static_cast<std::size_t>(md)];
    best_improvement = std::max(best_improvement, improvement);
  }
  EXPECT_GT(best_improvement, 0.0);
}

TEST(Reproduction, TableIV_RealTrafficPositiveGapOnMdVc) {
  // Table IV: averaged over random benchmark mixes, the sensor-wise policy
  // always wins on the MD VC (all Gap entries positive).
  sim::Scenario s = scenario(2, 2, 0.0, 50'000);
  double gap_sum = 0.0;
  const int iterations = 3;
  for (int it = 0; it < iterations; ++it) {
    const Workload w =
        Workload::benchmark_mix(traffic::random_mix(4, 100 + it), static_cast<std::uint64_t>(it));
    const RunResult rr = run_experiment(s, PolicyKind::kRrNoSensor, w);
    const RunResult sw = run_experiment(s, PolicyKind::kSensorWise, w);
    const int md = sw.port(0, noc::Dir::East).most_degraded;
    gap_sum += rr.port(0, noc::Dir::East).duty_percent[static_cast<std::size_t>(md)] -
               sw.port(0, noc::Dir::East).duty_percent[static_cast<std::size_t>(md)];
  }
  EXPECT_GT(gap_sum / iterations, 0.0);
}

TEST(Reproduction, TableIV_MdVcConstantAcrossIterations) {
  // The paper keeps initial Vth constant across the 10 iterations of one
  // scenario, so the MD VC is the same in every iteration.
  sim::Scenario s = scenario(2, 2, 0.0, 20'000);
  int first_md = -1;
  for (int it = 0; it < 3; ++it) {
    const Workload w =
        Workload::benchmark_mix(traffic::random_mix(4, 200 + it), static_cast<std::uint64_t>(it));
    const RunResult r = run_experiment(s, PolicyKind::kSensorWise, w);
    const int md = r.port(0, noc::Dir::East).most_degraded;
    if (first_md < 0) first_md = md;
    EXPECT_EQ(md, first_md);
  }
}

TEST(Reproduction, DutyCyclesConvergeWellBeforePaperScale) {
  // The justification for the benches' reduced default: the NBTI duty cycle
  // is a stationary statistic — tripling the window moves it by little,
  // so 150k-cycle runs stand in for the paper's 30M-cycle ones.
  const auto duty_at = [](sim::Cycle measure) {
    sim::Scenario s = sim::Scenario::synthetic(2, 2, 0.2);
    s.warmup_cycles = measure / 5;
    s.measure_cycles = measure;
    const RunResult r = run_experiment(s, PolicyKind::kRrNoSensor, Workload::synthetic());
    return util::mean_of(r.port(0, noc::Dir::East).duty_percent);
  };
  const double mid = duty_at(120'000);
  const double long_run = duty_at(360'000);
  EXPECT_NEAR(mid, long_run, std::max(1.5, long_run * 0.10));
}

TEST(Reproduction, MostDegradedVcVariesAcrossScenarios) {
  // §IV-B: "the most degraded VC changes through different simulations due
  // to the random sampling process that mimics process variation".
  std::set<int> mds;
  for (double rate : {0.1, 0.2, 0.3}) {
    sim::Scenario s = scenario(4, 4, rate, 1'000);
    const RunResult r = run_experiment(s, PolicyKind::kBaseline, Workload::synthetic());
    mds.insert(r.port(0, noc::Dir::East).most_degraded);
  }
  EXPECT_GT(mds.size(), 1u);
}

}  // namespace
}  // namespace nbtinoc::core
