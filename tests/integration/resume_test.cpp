// Checkpoint/restore equivalence: a run paused at cycle N and resumed from
// the snapshot must be bit-identical to the uninterrupted run — under every
// scheduler mode, across scheduler modes, at any pause point (mid-warmup,
// the warmup boundary, mid-measurement), and through fault storms and
// structural kills. The snapshot deliberately omits all scheduler
// bookkeeping; these tests also pin that re-entering the active-set mode
// reconstructs an equivalent wake state.

#include <gtest/gtest.h>

#include <string>

#include "nbtinoc/core/experiment.hpp"
#include "nbtinoc/sim/snapshot.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::core {
namespace {

void expect_run_equal(const RunResult& a, const RunResult& b, const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(to_json(a), to_json(b));
  ASSERT_EQ(a.ports.size(), b.ports.size());
  for (const auto& [key, port] : a.ports) {
    const PortResult& other = b.ports.at(key);
    EXPECT_EQ(port.gate_transitions, other.gate_transitions);
    EXPECT_EQ(port.most_degraded, other.most_degraded);
    EXPECT_EQ(port.duty_percent, other.duty_percent);
  }
  EXPECT_EQ(a.total_gate_transitions, b.total_gate_transitions);
  EXPECT_EQ(a.fault_counters, b.fault_counters);
}

sim::Scenario small_scenario() {
  sim::Scenario s = sim::Scenario::synthetic(3, 2, 0.05);
  s.warmup_cycles = 500;
  s.measure_cycles = 4'000;
  return s;
}

/// Runs {uninterrupted, save-at-N, resume-from-snapshot} with the given
/// scheduler modes and asserts all three results are bit-identical.
void expect_resume_equal(const sim::Scenario& s, PolicyKind policy, const Workload& workload,
                         RunnerOptions options, sim::Cycle at, noc::SchedulerMode save_mode,
                         noc::SchedulerMode resume_mode) {
  SCOPED_TRACE("snapshot at cycle " + std::to_string(at));
  options.scheduler = save_mode;
  const RunResult plain = run_experiment(s, policy, workload, options);

  std::string bytes;
  options.snapshot_at = at;
  options.snapshot_out = &bytes;
  const RunResult paused = run_experiment(s, policy, workload, options);
  expect_run_equal(plain, paused, "uninterrupted vs paused-and-continued");
  ASSERT_FALSE(bytes.empty());

  options.snapshot_at.reset();
  options.snapshot_out = nullptr;
  options.resume_from = bytes;
  options.scheduler = resume_mode;
  const RunResult resumed = run_experiment(s, policy, workload, options);
  expect_run_equal(plain, resumed, "uninterrupted vs resumed");
}

TEST(ResumeTest, BitIdenticalUnderEverySchedulerMode) {
  const sim::Scenario s = small_scenario();
  for (const auto mode : {noc::SchedulerMode::kStepped, noc::SchedulerMode::kFastForward,
                          noc::SchedulerMode::kActiveSet}) {
    SCOPED_TRACE("mode " + std::to_string(static_cast<int>(mode)));
    expect_resume_equal(s, PolicyKind::kSensorWise, Workload::synthetic(), RunnerOptions{},
                        /*at=*/1'700, mode, mode);
  }
}

TEST(ResumeTest, CrossModeRestoreIsExact) {
  // The snapshot format is scheduler-agnostic: bytes saved under one engine
  // restore under any other (the pre-roll frontier and RNG stream jointly
  // encode the same logical source state in every mode).
  const sim::Scenario s = small_scenario();
  expect_resume_equal(s, PolicyKind::kSensorWise, Workload::synthetic(), RunnerOptions{},
                      /*at=*/2'000, noc::SchedulerMode::kStepped,
                      noc::SchedulerMode::kActiveSet);
  expect_resume_equal(s, PolicyKind::kSensorRank, Workload::synthetic(), RunnerOptions{},
                      /*at=*/2'000, noc::SchedulerMode::kActiveSet,
                      noc::SchedulerMode::kFastForward);
}

TEST(ResumeTest, PausePointsCoverWarmupBoundaryAndEnds) {
  const sim::Scenario s = small_scenario();
  const sim::Cycle total = s.warmup_cycles + s.measure_cycles;
  // Cycle 0 (nothing ran), mid-warmup, the exact stats-reset boundary, and
  // the final cycle (resume runs zero cycles) are the schedule edge cases.
  for (const sim::Cycle at : {sim::Cycle{0}, sim::Cycle{250}, s.warmup_cycles, total}) {
    expect_resume_equal(s, PolicyKind::kSensorWise, Workload::synthetic(), RunnerOptions{}, at,
                        noc::SchedulerMode::kFastForward, noc::SchedulerMode::kFastForward);
  }
}

TEST(ResumeTest, BenchmarkMixWorkloadRoundTrips) {
  sim::Scenario s = small_scenario();
  const Workload workload =
      Workload::benchmark_mix(traffic::random_mix(s.mesh_width * s.mesh_height, 42), 42);
  expect_resume_equal(s, PolicyKind::kSensorWise, workload, RunnerOptions{}, /*at=*/1'234,
                      noc::SchedulerMode::kActiveSet, noc::SchedulerMode::kActiveSet);
}

TEST(ResumeTest, MidFaultStormRoundTrips) {
  sim::Scenario s = small_scenario();
  RunnerOptions options;
  options.faults = sim::FaultPlan::uniform(0.02);
  // Mid-storm pause: the injector's RNG and every per-site fault machine
  // must land mid-stream.
  expect_resume_equal(s, PolicyKind::kSensorWise, Workload::synthetic(), options, /*at=*/2'300,
                      noc::SchedulerMode::kStepped, noc::SchedulerMode::kStepped);
  expect_resume_equal(s, PolicyKind::kSensorWise, Workload::synthetic(), options, /*at=*/2'300,
                      noc::SchedulerMode::kActiveSet, noc::SchedulerMode::kActiveSet);
}

TEST(ResumeTest, PostStructuralKillRoundTrips) {
  sim::Scenario s = small_scenario();
  RunnerOptions options;
  sim::StructuralFault link_kill;
  link_kill.router = 0;
  link_kill.port = static_cast<int>(noc::Dir::East);
  link_kill.cycle = 900;
  options.faults.structural.push_back(link_kill);
  sim::StructuralFault router_kill;
  router_kill.router = 4;
  router_kill.cycle = 1'600;  // port defaults to kWholeRouter
  options.faults.structural.push_back(router_kill);

  // Pause between the two kills and after both: the loader must re-apply
  // exactly the kills that already landed to the fresh topology.
  for (const sim::Cycle at : {sim::Cycle{1'200}, sim::Cycle{2'500}}) {
    expect_resume_equal(s, PolicyKind::kSensorWise, Workload::synthetic(), options, at,
                        noc::SchedulerMode::kStepped, noc::SchedulerMode::kActiveSet);
  }
}

// Randomized pause points over randomized scenarios — the fuzz half of the
// bit-identity claim. Each seed derives a scenario/policy/mode/pause tuple;
// every third seed adds a control-fault storm, every fourth a structural
// kill before the pause.
class ResumeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResumeFuzzTest, RandomPausePointsResumeExactly) {
  util::Xoshiro256 rng(GetParam() ^ 0x5a7eULL);
  sim::Scenario s = sim::Scenario::synthetic(2 + static_cast<int>(rng.next_below(2)),
                                             2 + static_cast<int>(rng.next_below(2)),
                                             0.08 * rng.next_double());
  s.num_vnets = 1 + static_cast<int>(rng.next_below(2));
  s.wakeup_latency = rng.next_below(4);
  s.warmup_cycles = 400;
  s.measure_cycles = 3'000 + rng.next_below(3'000);

  RunnerOptions options;
  if (GetParam() % 3 == 0) options.faults = sim::FaultPlan::uniform(0.01 + 0.02 * rng.next_double());
  if (GetParam() % 4 == 0) {
    sim::StructuralFault f;
    f.router = 0;
    f.port = static_cast<int>(noc::Dir::East);
    f.cycle = 600 + rng.next_below(500);
    options.faults.structural.push_back(f);
  }

  constexpr PolicyKind kPolicies[] = {PolicyKind::kBaseline, PolicyKind::kRrNoSensor,
                                      PolicyKind::kSensorWiseNoTraffic, PolicyKind::kSensorWise,
                                      PolicyKind::kSensorRank};
  const PolicyKind policy = kPolicies[rng.next_below(5)];
  constexpr noc::SchedulerMode kModes[] = {noc::SchedulerMode::kStepped,
                                           noc::SchedulerMode::kFastForward,
                                           noc::SchedulerMode::kActiveSet};
  const auto save_mode = kModes[rng.next_below(3)];
  const auto resume_mode = kModes[rng.next_below(3)];
  const sim::Cycle at = rng.next_below(s.warmup_cycles + s.measure_cycles);
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + ", " + s.name + ", policy " +
               to_string(policy));

  expect_resume_equal(s, policy, Workload::synthetic(), options, at, save_mode, resume_mode);
}

INSTANTIATE_TEST_SUITE_P(RandomPauses, ResumeFuzzTest, ::testing::Range<std::uint64_t>(1, 13));

// The same fuzz over the shared (DAMQ) organization: a pause must
// round-trip the per-port pool state — slot lists, per-VC chains, waking
// FIFO, shared-region charges, per-slot gate counters (snapshot format v2)
// — through save/resume in any scheduler-mode combination. Only slot
// policies and baseline are legal here.
class SharedResumeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SharedResumeFuzzTest, SharedPausePointsResumeExactly) {
  util::Xoshiro256 rng(GetParam() ^ 0x5da7ULL);
  sim::Scenario s = sim::Scenario::synthetic(2 + static_cast<int>(rng.next_below(2)),
                                             2 + static_cast<int>(rng.next_below(2)),
                                             0.08 * rng.next_double());
  s.buffer_org = "shared";
  s.shared_reserve = 1 + static_cast<int>(rng.next_below(2));
  s.wakeup_latency = rng.next_below(4);
  s.warmup_cycles = 400;
  s.measure_cycles = 3'000 + rng.next_below(3'000);

  RunnerOptions options;
  if (GetParam() % 3 == 0) options.faults = sim::FaultPlan::uniform(0.01 + 0.02 * rng.next_double());
  if (GetParam() % 4 == 0) {
    sim::StructuralFault f;
    f.router = 0;
    f.port = static_cast<int>(noc::Dir::East);
    f.cycle = 600 + rng.next_below(500);
    options.faults.structural.push_back(f);
  }

  constexpr PolicyKind kPolicies[] = {PolicyKind::kBaseline, PolicyKind::kSensorWiseSlotMd,
                                      PolicyKind::kRrSlot};
  const PolicyKind policy = kPolicies[rng.next_below(3)];
  constexpr noc::SchedulerMode kModes[] = {noc::SchedulerMode::kStepped,
                                           noc::SchedulerMode::kFastForward,
                                           noc::SchedulerMode::kActiveSet};
  const auto save_mode = kModes[rng.next_below(3)];
  const auto resume_mode = kModes[rng.next_below(3)];
  const sim::Cycle at = rng.next_below(s.warmup_cycles + s.measure_cycles);
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + ", " + s.name + ", reserve " +
               std::to_string(s.shared_reserve) + ", policy " + to_string(policy));

  expect_resume_equal(s, policy, Workload::synthetic(), options, at, save_mode, resume_mode);
}

INSTANTIATE_TEST_SUITE_P(RandomSharedPauses, SharedResumeFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- failure modes -----------------------------------------------------------

std::string snapshot_of(const sim::Scenario& s, RunnerOptions options, sim::Cycle at) {
  std::string bytes;
  options.snapshot_at = at;
  options.snapshot_out = &bytes;
  run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options);
  return bytes;
}

TEST(ResumeValidation, MismatchedScenarioNamesBothDigests) {
  const sim::Scenario saved = small_scenario();
  const std::string bytes = snapshot_of(saved, RunnerOptions{}, 1'000);

  sim::Scenario other = saved;
  other.injection_rate = 0.07;
  RunnerOptions options;
  options.resume_from = bytes;
  try {
    run_experiment(other, PolicyKind::kSensorWise, Workload::synthetic(), options);
    FAIL() << "expected SnapshotError";
  } catch (const sim::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("file digest"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("expected digest"), std::string::npos) << e.what();
  }
}

TEST(ResumeValidation, MismatchedPolicyIsRejected) {
  const sim::Scenario s = small_scenario();
  const std::string bytes = snapshot_of(s, RunnerOptions{}, 1'000);
  RunnerOptions options;
  options.resume_from = bytes;
  EXPECT_THROW(run_experiment(s, PolicyKind::kBaseline, Workload::synthetic(), options),
               sim::SnapshotError);
}

TEST(ResumeValidation, WrongVersionAndGarbageAreRejected) {
  const sim::Scenario s = small_scenario();
  std::string bytes = snapshot_of(s, RunnerOptions{}, 1'000);

  std::string wrong_version = bytes;
  wrong_version[sim::kSnapshotMagic.size()] = 0x7f;  // version u32 LSB
  RunnerOptions options;
  options.resume_from = wrong_version;
  try {
    run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options);
    FAIL() << "expected SnapshotError";
  } catch (const sim::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }

  options.resume_from = std::string("definitely not a snapshot");
  EXPECT_THROW(run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options),
               sim::SnapshotError);

  options.resume_from = bytes.substr(0, bytes.size() / 2);  // truncated payload
  EXPECT_THROW(run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options),
               sim::SnapshotError);
}

TEST(ResumeValidation, BadRunnerOptionCombinationsAreRejected) {
  const sim::Scenario s = small_scenario();
  RunnerOptions options;
  options.snapshot_at = 100;  // no snapshot_out
  EXPECT_THROW(run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options),
               std::invalid_argument);

  std::string bytes;
  options.snapshot_out = &bytes;
  options.snapshot_at = s.warmup_cycles + s.measure_cycles + 1;  // past the horizon
  EXPECT_THROW(run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options),
               std::invalid_argument);

  options.snapshot_at = 100;
  options.check_invariants = true;
  EXPECT_THROW(run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options),
               std::invalid_argument);
  options.check_invariants = false;

  options.resume_from = snapshot_of(s, RunnerOptions{}, 200);
  EXPECT_THROW(  // resume + snapshot in one run
      run_experiment(s, PolicyKind::kSensorWise, Workload::synthetic(), options),
      std::invalid_argument);
}

}  // namespace
}  // namespace nbtinoc::core
