#include "nbtinoc/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace nbtinoc::util {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(SeedFromString, StableAndDistinct) {
  EXPECT_EQ(seed_from_string("4core-inj0.10"), seed_from_string("4core-inj0.10"));
  EXPECT_NE(seed_from_string("4core-inj0.10"), seed_from_string("4core-inj0.20"));
  EXPECT_NE(seed_from_string("a"), seed_from_string("b"));
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), std::max<std::uint64_t>(bound, 1));
  }
}

TEST(Xoshiro256, NextBelowCoversAllValues) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(17);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(Xoshiro256, GaussianMomentsMatch) {
  Xoshiro256 rng(23);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro256, GaussianWithParams) {
  Xoshiro256 rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.next_gaussian(0.180, 0.005);
  EXPECT_NEAR(sum / n, 0.180, 0.001);
}

TEST(Xoshiro256, BernoulliEdgeCases) {
  Xoshiro256 rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
    EXPECT_FALSE(rng.next_bernoulli(-0.5));
    EXPECT_TRUE(rng.next_bernoulli(1.5));
  }
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(37);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i)
    if (rng.next_bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Xoshiro256, JumpDecorrelatesStreams) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace nbtinoc::util
