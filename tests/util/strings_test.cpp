#include "nbtinoc/util/strings.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::util {
namespace {

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitSingle) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("Sensor-Wise"), "sensor-wise");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("rr-no-sensor", "rr"));
  EXPECT_FALSE(starts_with("rr", "rr-no-sensor"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

}  // namespace
}  // namespace nbtinoc::util
