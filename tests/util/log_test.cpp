#include "nbtinoc/util/log.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

TEST_F(LogTest, ParseIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("Debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kInfo);  // documented fallback
}

TEST_F(LogTest, ThresholdRoundTrip) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
}

TEST_F(LogTest, SuppressedMessageProducesNoOutput) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  NBTINOC_LOG(kDebug, "test") << "should not appear";
  log_message(LogLevel::kInfo, "test", "also filtered");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LogTest, EmittedMessageHasLevelAndComponent) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  NBTINOC_LOG(kWarn, "router") << "stall at cycle " << 42;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
  EXPECT_NE(out.find("router:"), std::string::npos);
  EXPECT_NE(out.find("stall at cycle 42"), std::string::npos);
}

TEST_F(LogTest, MacroShortCircuitsArguments) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 1;
  };
  NBTINOC_LOG(kDebug, "test") << expensive();
  EXPECT_EQ(evaluations, 0);  // stream args untouched when filtered
}

}  // namespace
}  // namespace nbtinoc::util
