#include "nbtinoc/util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace nbtinoc::util {
namespace {

TEST(CsvParse, SimpleLine) {
  const auto cells = parse_csv_line("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(CsvParse, EmptyCells) {
  const auto cells = parse_csv_line(",x,");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "");
  EXPECT_EQ(cells[1], "x");
  EXPECT_EQ(cells[2], "");
}

TEST(CsvParse, QuotedCommaAndEscapedQuote) {
  const auto cells = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "say \"hi\"");
}

TEST(CsvRoundTrip, WriteThenRead) {
  const std::string path = std::filesystem::temp_directory_path() / "nbtinoc_csv_test.csv";
  {
    CsvWriter w(path);
    w.write_comment("header comment");
    w.write_row({"cycle", "src,dst", "len"});
    w.write_row({"1", "2", "3"});
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);  // comment skipped
  EXPECT_EQ(rows[0][1], "src,dst");
  EXPECT_EQ(rows[1][2], "3");
  std::remove(path.c_str());
}

TEST(CsvRead, MissingFileThrows) { EXPECT_THROW(read_csv("/nonexistent/x.csv"), std::runtime_error); }

TEST(CsvWriter, BadPathThrows) { EXPECT_THROW(CsvWriter("/nonexistent/dir/x.csv"), std::runtime_error); }

}  // namespace
}  // namespace nbtinoc::util
