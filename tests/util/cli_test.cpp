#include "nbtinoc/util/cli.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::util {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, SpaceSeparatedValue) {
  const auto args = make({"prog", "--rate", "0.3"});
  EXPECT_DOUBLE_EQ(args.get_double_or("rate", 0.0), 0.3);
}

TEST(CliArgs, EqualsValue) {
  const auto args = make({"prog", "--cores=16"});
  EXPECT_EQ(args.get_int_or("cores", 0), 16);
}

TEST(CliArgs, BareFlagIsTrue) {
  const auto args = make({"prog", "--full"});
  EXPECT_TRUE(args.has("full"));
  EXPECT_TRUE(args.get_bool_or("full", false));
}

TEST(CliArgs, BareFlagFollowedByFlag) {
  const auto args = make({"prog", "--full", "--vcs", "4"});
  EXPECT_TRUE(args.get_bool_or("full", false));
  EXPECT_EQ(args.get_int_or("vcs", 0), 4);
}

TEST(CliArgs, MissingUsesFallback) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.get_or("policy", "sw"), "sw");
  EXPECT_EQ(args.get_int_or("n", 7), 7);
  EXPECT_FALSE(args.get_bool_or("x", false));
  EXPECT_FALSE(args.get("anything").has_value());
}

TEST(CliArgs, BoolSpellings) {
  EXPECT_TRUE(make({"p", "--a=true"}).get_bool_or("a", false));
  EXPECT_TRUE(make({"p", "--a=1"}).get_bool_or("a", false));
  EXPECT_TRUE(make({"p", "--a=yes"}).get_bool_or("a", false));
  EXPECT_FALSE(make({"p", "--a=0"}).get_bool_or("a", true));
  EXPECT_FALSE(make({"p", "--a=false"}).get_bool_or("a", true));
}

TEST(CliArgs, Positional) {
  const auto args = make({"prog", "input.csv", "--x", "1", "out.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "out.csv");
  EXPECT_EQ(args.program(), "prog");
}

}  // namespace
}  // namespace nbtinoc::util
