#include "nbtinoc/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nbtinoc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev_sample(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance_sample(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev_population(), 2.0, 1e-12);
  EXPECT_NEAR(s.variance_sample(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.1;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance_sample(), all.variance_sample(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, StableForLargeOffsets) {
  // Welford must not lose precision with a large common offset.
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance_population(), 0.25, 1e-6);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, PercentileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 1.0);
  EXPECT_NEAR(h.percentile(0.0), 0.0, 1.0);
}

TEST(VectorStats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(sample_stddev_of({1.0}), 0.0);
  EXPECT_NEAR(sample_stddev_of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

}  // namespace
}  // namespace nbtinoc::util
