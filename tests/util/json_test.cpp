#include "nbtinoc/util/json.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::util {
namespace {

TEST(JsonWriter, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object()
      .field("name", "sensor-wise")
      .field("duty", 26.6)
      .field("md", 2)
      .field("ok", true)
      .end_object();
  EXPECT_EQ(w.str(), "{\"name\":\"sensor-wise\",\"duty\":26.600000000000001,\"md\":2,\"ok\":true}");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object().key("ports").begin_array();
  w.begin_object().field("vc", 0).end_object();
  w.begin_object().field("vc", 1).end_object();
  w.end_array().end_object();
  EXPECT_EQ(w.str(), "{\"ports\":[{\"vc\":0},{\"vc\":1}]}");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, ArraysOfScalars) {
  JsonWriter w;
  w.begin_array().value(1).value(2).value(3).end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, NullValue) {
  JsonWriter w;
  w.begin_object().key("x").null().end_object();
  EXPECT_EQ(w.str(), "{\"x\":null}");
}

TEST(JsonWriter, Escaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.key("x"), std::logic_error);  // key outside object
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), std::logic_error);  // mismatched close
  }
}

TEST(JsonWriter, IncompleteIsDetected) {
  JsonWriter w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
}

TEST(JsonWriter, DoubleRoundTripPrecision) {
  JsonWriter w;
  w.begin_array().value(0.1).end_array();
  EXPECT_NE(w.str().find("0.1"), std::string::npos);
}

}  // namespace
}  // namespace nbtinoc::util
