#include "nbtinoc/util/table.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::util {
namespace {

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(Table({}), std::invalid_argument); }

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, MarkdownShape) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"long-name", "22"});
  const std::string md = t.to_markdown();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 4);
  EXPECT_NE(md.find("| name"), std::string::npos);
  EXPECT_NE(md.find("long-name"), std::string::npos);
  // Columns padded to widest cell.
  EXPECT_NE(md.find("| x        "), std::string::npos);
}

TEST(Table, TextShape) {
  Table t({"a"});
  t.add_row({"val"});
  const std::string txt = t.to_text();
  EXPECT_NE(txt.find("a"), std::string::npos);
  EXPECT_NE(txt.find("---"), std::string::npos);
  EXPECT_NE(txt.find("val"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"x,y", "quote\"inside"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(format_double(12.345, 2), "12.35");
  EXPECT_EQ(format_double(12.0, 0), "12");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(format_percent(26.62), "26.6%");
  EXPECT_EQ(format_percent(100.0), "100.0%");
  EXPECT_EQ(format_percent(0.049, 2), "0.05%");
}

}  // namespace
}  // namespace nbtinoc::util
