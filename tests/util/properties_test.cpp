#include "nbtinoc/util/properties.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace nbtinoc::util {
namespace {

TEST(Properties, ParsesKeyValues) {
  const auto props = parse_properties("a = 1\nb=two\n  c  =  3.5  \n");
  EXPECT_EQ(props.at("a"), "1");
  EXPECT_EQ(props.at("b"), "two");
  EXPECT_EQ(props.at("c"), "3.5");
}

TEST(Properties, SkipsCommentsAndBlankLines) {
  const auto props = parse_properties("# header\n\na = 1  # trailing\n   \n# b = 2\n");
  EXPECT_EQ(props.size(), 1u);
  EXPECT_EQ(props.at("a"), "1");
}

TEST(Properties, LaterDuplicateWins) {
  const auto props = parse_properties("a = 1\na = 2\n");
  EXPECT_EQ(props.at("a"), "2");
}

TEST(Properties, MalformedLineThrows) {
  EXPECT_THROW(parse_properties("no equals sign here\n"), std::runtime_error);
  EXPECT_THROW(parse_properties("= value\n"), std::runtime_error);
}

TEST(Properties, TypedGetters) {
  const auto props = parse_properties("n = 42\nx = 0.25\nflag = yes\nname = mesh\n");
  EXPECT_EQ(get_int_or(props, "n", 0), 42);
  EXPECT_DOUBLE_EQ(get_double_or(props, "x", 0.0), 0.25);
  EXPECT_TRUE(get_bool_or(props, "flag", false));
  EXPECT_EQ(get_or(props, "name", ""), "mesh");
  EXPECT_EQ(get_int_or(props, "missing", 7), 7);
  EXPECT_FALSE(get_bool_or(props, "missing", false));
}

TEST(Properties, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "nbtinoc_props_test.cfg";
  {
    std::ofstream out(path);
    out << "# scenario\nmesh_width = 4\ninjection_rate = 0.3\n";
  }
  const auto props = load_properties(path);
  EXPECT_EQ(get_int_or(props, "mesh_width", 0), 4);
  std::remove(path.c_str());
}

TEST(Properties, MissingFileThrows) {
  EXPECT_THROW(load_properties("/nonexistent/file.cfg"), std::runtime_error);
}

}  // namespace
}  // namespace nbtinoc::util
