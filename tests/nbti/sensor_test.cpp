#include "nbtinoc/nbti/sensor.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::nbti {
namespace {

NbtiModel model() { return NbtiModel::calibrated(NbtiParams{}, OperatingPoint{}); }

TEST(NbtiSensorBank, RejectsEmptyBank) {
  const NbtiModel m = model();
  EXPECT_THROW(NbtiSensorBank({}, m, OperatingPoint{}), std::invalid_argument);
}

TEST(NbtiSensorBank, InitialMostDegradedIsHighestVth) {
  const NbtiModel m = model();
  NbtiSensorBank bank({0.180, 0.191, 0.178, 0.185}, m, OperatingPoint{});
  EXPECT_EQ(bank.most_degraded(), 1u);
}

TEST(NbtiSensorBank, InitialReadingEqualsInitialVth) {
  const NbtiModel m = model();
  NbtiSensorBank bank({0.180, 0.190}, m, OperatingPoint{});
  EXPECT_DOUBLE_EQ(bank.measured_vth(0), 0.180);
  EXPECT_DOUBLE_EQ(bank.measured_vth(1), 0.190);
}

TEST(NbtiSensorBank, StressShiftsReading) {
  const NbtiModel m = model();
  SensorConfig cfg;
  cfg.time_acceleration = 1e9;  // turn 1 simulated second into ~31 years
  NbtiSensorBank bank({0.180, 0.180}, m, OperatingPoint{}, cfg);
  StressTrackerBank trackers(2);
  trackers.at(0).record_cycles(true, 100);   // buffer 0 fully stressed
  trackers.at(1).record_cycles(false, 100);  // buffer 1 fully recovered
  bank.refresh(1.0, trackers);
  EXPECT_GT(bank.measured_vth(0), 0.200);  // ~ +50mV+ after decades
  EXPECT_DOUBLE_EQ(bank.measured_vth(1), 0.180);
  EXPECT_EQ(bank.most_degraded(), 0u);
}

TEST(NbtiSensorBank, PaperModeRankingDominatedByInitialVth) {
  // With real 30ms simulations the accumulated shift is far below the 5mV
  // PV spread: the most degraded VC stays the PV-worst one.
  const NbtiModel m = model();
  NbtiSensorBank bank({0.180, 0.188}, m, OperatingPoint{});
  StressTrackerBank trackers(2);
  trackers.at(0).record_cycles(true, 30'000'000);
  trackers.at(1).record_cycles(false, 30'000'000);
  bank.refresh(0.030, trackers);  // 30M cycles @ 1GHz
  EXPECT_EQ(bank.most_degraded(), 1u);
}

TEST(NbtiSensorBank, EpochGatesRefresh) {
  const NbtiModel m = model();
  SensorConfig cfg;
  cfg.epoch_cycles = 100;
  cfg.time_acceleration = 1e9;
  NbtiSensorBank bank({0.180, 0.181}, m, OperatingPoint{}, cfg);
  StressTrackerBank trackers(2);
  trackers.at(0).record_cycles(true, 1000);
  trackers.at(1).record_cycles(false, 1000);

  bank.update(50, 1.0, trackers);  // within first epoch: stale
  EXPECT_EQ(bank.most_degraded(), 1u);
  bank.update(100, 1.0, trackers);  // epoch boundary: refresh
  EXPECT_EQ(bank.most_degraded(), 0u);
}

TEST(NbtiSensorBank, QuantizationTiesBreakTowardLowestIndex) {
  const NbtiModel m = model();
  SensorConfig cfg;
  cfg.quantization_v = 0.010;  // 10mV LSB collapses close values
  NbtiSensorBank bank({0.1801, 0.1803, 0.1802}, m, OperatingPoint{}, cfg);
  StressTrackerBank trackers(3);
  bank.refresh(0.0, trackers);
  EXPECT_EQ(bank.most_degraded(), 0u);  // all quantize to 0.180
  EXPECT_DOUBLE_EQ(bank.measured_vth(0), bank.measured_vth(1));
}

TEST(NbtiSensorBank, NoiseIsDeterministicPerSeed) {
  const NbtiModel m = model();
  SensorConfig cfg;
  cfg.noise_sigma_v = 0.002;
  NbtiSensorBank a({0.180, 0.181}, m, OperatingPoint{}, cfg, /*seed=*/77);
  NbtiSensorBank b({0.180, 0.181}, m, OperatingPoint{}, cfg, /*seed=*/77);
  EXPECT_DOUBLE_EQ(a.measured_vth(0), b.measured_vth(0));
  EXPECT_DOUBLE_EQ(a.measured_vth(1), b.measured_vth(1));
}

TEST(NbtiSensorBank, TrueVthUsesPerBufferInitial) {
  const NbtiModel m = model();
  NbtiSensorBank bank({0.170, 0.190}, m, OperatingPoint{});
  StressTrackerBank trackers(2);
  EXPECT_DOUBLE_EQ(bank.true_vth(0, 0.0, trackers), 0.170);
  EXPECT_DOUBLE_EQ(bank.true_vth(1, 0.0, trackers), 0.190);
}

TEST(NbtiSensorBank, SizeAndInitialAccessors) {
  const NbtiModel m = model();
  NbtiSensorBank bank({0.1, 0.2, 0.3}, m, OperatingPoint{});
  EXPECT_EQ(bank.size(), 3u);
  EXPECT_DOUBLE_EQ(bank.initial_vth(2), 0.3);
}

}  // namespace
}  // namespace nbtinoc::nbti
