#include "nbtinoc/nbti/duty_cycle.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::nbti {
namespace {

TEST(StressTracker, StartsEmpty) {
  StressTracker t;
  EXPECT_EQ(t.total_cycles(), 0u);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 0.0);
  EXPECT_DOUBLE_EQ(t.stress_probability(), 0.0);
}

TEST(StressTracker, CountsStressAndRecovery) {
  StressTracker t;
  for (int i = 0; i < 3; ++i) t.record_cycle(true);
  t.record_cycle(false);
  EXPECT_EQ(t.stress_cycles(), 3u);
  EXPECT_EQ(t.recovery_cycles(), 1u);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 75.0);
  EXPECT_DOUBLE_EQ(t.stress_probability(), 0.75);
}

TEST(StressTracker, PaperDefinition) {
  // NBTI-duty-cycle := stress / (stress + recovery) * 100
  StressTracker t;
  t.record_cycles(true, 266);
  t.record_cycles(false, 734);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 26.6);
}

TEST(StressTracker, WarmupFenceFreezesCounters) {
  StressTracker t;
  t.set_measuring(false);
  t.record_cycles(true, 1000);
  EXPECT_EQ(t.total_cycles(), 0u);
  t.set_measuring(true);
  t.record_cycle(true);
  EXPECT_EQ(t.total_cycles(), 1u);
}

TEST(StressTracker, AllStressedIsHundredPercent) {
  StressTracker t;
  t.record_cycles(true, 500);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 100.0);
}

TEST(StressTracker, AllRecoveredIsZeroPercent) {
  StressTracker t;
  t.record_cycles(false, 500);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 0.0);
}

TEST(StressTracker, ResetClears) {
  StressTracker t;
  t.record_cycles(true, 10);
  t.reset();
  EXPECT_EQ(t.total_cycles(), 0u);
}

TEST(StressTrackerBank, IndependentTrackers) {
  StressTrackerBank bank(4);
  bank.at(0).record_cycles(true, 10);
  bank.at(1).record_cycles(false, 10);
  bank.at(2).record_cycles(true, 5);
  bank.at(2).record_cycles(false, 5);
  const auto duties = bank.duty_cycles_percent();
  ASSERT_EQ(duties.size(), 4u);
  EXPECT_DOUBLE_EQ(duties[0], 100.0);
  EXPECT_DOUBLE_EQ(duties[1], 0.0);
  EXPECT_DOUBLE_EQ(duties[2], 50.0);
  EXPECT_DOUBLE_EQ(duties[3], 0.0);
}

TEST(StressTrackerBank, BulkMeasuringToggle) {
  StressTrackerBank bank(2);
  bank.set_measuring(false);
  bank.at(0).record_cycle(true);
  bank.at(1).record_cycle(true);
  EXPECT_EQ(bank.at(0).total_cycles(), 0u);
  bank.set_measuring(true);
  bank.at(0).record_cycle(true);
  EXPECT_EQ(bank.at(0).total_cycles(), 1u);
}

TEST(StressTrackerBank, StressProbabilities) {
  StressTrackerBank bank(2);
  bank.at(0).record_cycles(true, 1);
  bank.at(0).record_cycles(false, 3);
  const auto probs = bank.stress_probabilities();
  EXPECT_DOUBLE_EQ(probs[0], 0.25);
  EXPECT_DOUBLE_EQ(probs[1], 0.0);
}

TEST(StressTrackerBank, OutOfRangeThrows) {
  StressTrackerBank bank(2);
  EXPECT_THROW(bank.at(2), std::out_of_range);
}

}  // namespace
}  // namespace nbtinoc::nbti
