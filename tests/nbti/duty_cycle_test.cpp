#include "nbtinoc/nbti/duty_cycle.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::nbti {
namespace {

TEST(StressTracker, StartsEmpty) {
  StressTracker t;
  EXPECT_EQ(t.total_cycles(), 0u);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 0.0);
  EXPECT_DOUBLE_EQ(t.stress_probability(), 0.0);
}

TEST(StressTracker, CountsStressAndRecovery) {
  StressTracker t;
  for (int i = 0; i < 3; ++i) t.record_cycle(true);
  t.record_cycle(false);
  EXPECT_EQ(t.stress_cycles(), 3u);
  EXPECT_EQ(t.recovery_cycles(), 1u);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 75.0);
  EXPECT_DOUBLE_EQ(t.stress_probability(), 0.75);
}

TEST(StressTracker, PaperDefinition) {
  // NBTI-duty-cycle := stress / (stress + recovery) * 100
  StressTracker t;
  t.record_cycles(true, 266);
  t.record_cycles(false, 734);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 26.6);
}

TEST(StressTracker, WarmupFenceFreezesCounters) {
  StressTracker t;
  t.set_measuring(false);
  t.record_cycles(true, 1000);
  EXPECT_EQ(t.total_cycles(), 0u);
  t.set_measuring(true);
  t.record_cycle(true);
  EXPECT_EQ(t.total_cycles(), 1u);
}

TEST(StressTracker, AllStressedIsHundredPercent) {
  StressTracker t;
  t.record_cycles(true, 500);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 100.0);
}

TEST(StressTracker, AllRecoveredIsZeroPercent) {
  StressTracker t;
  t.record_cycles(false, 500);
  EXPECT_DOUBLE_EQ(t.duty_cycle_percent(), 0.0);
}

TEST(StressTracker, ResetClears) {
  StressTracker t;
  t.record_cycles(true, 10);
  t.reset();
  EXPECT_EQ(t.total_cycles(), 0u);
}

TEST(StressTrackerBank, IndependentTrackers) {
  StressTrackerBank bank(4);
  bank.at(0).record_cycles(true, 10);
  bank.at(1).record_cycles(false, 10);
  bank.at(2).record_cycles(true, 5);
  bank.at(2).record_cycles(false, 5);
  const auto duties = bank.duty_cycles_percent();
  ASSERT_EQ(duties.size(), 4u);
  EXPECT_DOUBLE_EQ(duties[0], 100.0);
  EXPECT_DOUBLE_EQ(duties[1], 0.0);
  EXPECT_DOUBLE_EQ(duties[2], 50.0);
  EXPECT_DOUBLE_EQ(duties[3], 0.0);
}

TEST(StressTrackerBank, BulkMeasuringToggle) {
  StressTrackerBank bank(2);
  bank.set_measuring(false);
  bank.at(0).record_cycle(true);
  bank.at(1).record_cycle(true);
  EXPECT_EQ(bank.at(0).total_cycles(), 0u);
  bank.set_measuring(true);
  bank.at(0).record_cycle(true);
  EXPECT_EQ(bank.at(0).total_cycles(), 1u);
}

TEST(StressTrackerBank, StressProbabilities) {
  StressTrackerBank bank(2);
  bank.at(0).record_cycles(true, 1);
  bank.at(0).record_cycles(false, 3);
  const auto probs = bank.stress_probabilities();
  EXPECT_DOUBLE_EQ(probs[0], 0.25);
  EXPECT_DOUBLE_EQ(probs[1], 0.0);
}

TEST(StressTrackerBank, OutOfRangeThrows) {
  StressTrackerBank bank(2);
  EXPECT_THROW(bank.at(2), std::out_of_range);
}

// --- event-driven mode -----------------------------------------------------

TEST(StressTracker, EventDrivenBasics) {
  StressTracker t;
  EXPECT_EQ(t.synced_until(), 0u);
  t.note_state(false, 10);  // powered for cycles [0,10), gated from 10
  t.note_state(true, 25);   // gated for [10,25), powered again from 25
  t.sync(30);
  EXPECT_EQ(t.stress_cycles(), 15u);
  EXPECT_EQ(t.recovery_cycles(), 15u);
  EXPECT_EQ(t.synced_until(), 30u);
  // Redundant notes and stale syncs are no-ops.
  t.note_state(true, 31);
  t.sync(20);
  EXPECT_EQ(t.total_cycles(), 30u);
}

TEST(StressTracker, MeasuringFenceMidLazyInterval) {
  // A warmup fence lands in the middle of a lazily-held interval: cycles
  // before the fence must stay frozen, cycles after it must count — which
  // is why every fence site syncs *before* toggling the flag.
  StressTracker t;
  t.set_measuring(false);
  t.note_state(false, 100);  // [0,100) powered but unmeasured
  t.sync(150);               // [100,150) gated, unmeasured
  t.set_measuring(true);     // fence at 150
  t.note_state(true, 170);   // [150,170) gated, measured
  t.sync(200);               // [170,200) powered, measured
  EXPECT_EQ(t.recovery_cycles(), 20u);
  EXPECT_EQ(t.stress_cycles(), 30u);
}

// Property: for any interleaving of gate/wake transitions, measuring
// fences, and counter resets, transition-timestamped accounting equals
// per-cycle end-of-cycle sampling — the equivalence the Network relies on
// after replacing the per-cycle account_cycle() walk.
TEST(StressTracker, EventDrivenMatchesPerCycleOnRandomTimelines) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 40; ++trial) {
    StressTracker eager;  // driven by record_cycle at the end of each cycle
    StressTracker lazy;   // driven by note_state at transitions + sync fences
    bool stressed = true;
    bool measuring = true;
    const sim::Cycle total = 150 + static_cast<sim::Cycle>(next() % 200);
    for (sim::Cycle t = 0; t < total; ++t) {
      // Gate/wake transition during cycle t (the gating stage runs first).
      if (next() % 5 == 0) {
        stressed = !stressed;
        lazy.note_state(stressed, t);
      }
      // Warmup fence during cycle t: sync first, then flip (Network::
      // set_measuring order). The fence applies from cycle t on.
      if (next() % 37 == 0) {
        measuring = !measuring;
        lazy.sync(t);
        lazy.set_measuring(measuring);
        eager.set_measuring(measuring);
      }
      // Stats-window restart during cycle t: counters zeroed, cycle t
      // itself lands in the new window (run_with_warmup resets before the
      // measured run).
      if (next() % 53 == 0) {
        lazy.sync(t);
        lazy.reset();
        eager.reset();
      }
      // End of cycle t: the per-cycle model samples the settled state.
      eager.record_cycle(stressed);
      // Random read fences (sensor epochs) must always agree exactly.
      if (next() % 11 == 0) {
        lazy.sync(t + 1);
        ASSERT_EQ(lazy.stress_cycles(), eager.stress_cycles()) << "trial " << trial << " @" << t;
        ASSERT_EQ(lazy.recovery_cycles(), eager.recovery_cycles())
            << "trial " << trial << " @" << t;
      }
    }
    lazy.sync(total);
    EXPECT_EQ(lazy.stress_cycles(), eager.stress_cycles()) << "trial " << trial;
    EXPECT_EQ(lazy.recovery_cycles(), eager.recovery_cycles()) << "trial " << trial;
    EXPECT_EQ(lazy.synced_until(), total);
  }
}

}  // namespace
}  // namespace nbtinoc::nbti
