#include "nbtinoc/nbti/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nbtinoc::nbti {
namespace {

constexpr double kTenYears = 10.0 * 365.25 * 24 * 3600;
constexpr double kThreeYears = 3.0 * 365.25 * 24 * 3600;

OperatingPoint op45() { return OperatingPoint{}; }

NbtiModel calibrated() { return NbtiModel::calibrated(NbtiParams{}, op45()); }

TEST(NbtiModel, RejectsBadParams) {
  NbtiParams p;
  p.n = 0.0;
  EXPECT_THROW(NbtiModel{p}, std::invalid_argument);
  p = NbtiParams{};
  p.n = 0.6;
  EXPECT_THROW(NbtiModel{p}, std::invalid_argument);
  p = NbtiParams{};
  p.tox_nm = -1.0;
  EXPECT_THROW(NbtiModel{p}, std::invalid_argument);
  p = NbtiParams{};
  p.xi1 = 2.0;  // xi1*te > tox would allow beta_t < 0
  EXPECT_THROW(NbtiModel{p}, std::invalid_argument);
}

TEST(NbtiModel, CalibrationHitsAnchorExactly) {
  const NbtiModel m = calibrated();
  EXPECT_NEAR(m.delta_vth(1.0, kTenYears, op45()), 0.050, 1e-9);
}

TEST(NbtiModel, CalibrationWithCustomAnchor) {
  NbtiParams p;
  p.anchor_dvth_v = 0.030;
  p.anchor_years = 3.0;
  const NbtiModel m = NbtiModel::calibrated(p, op45());
  EXPECT_NEAR(m.delta_vth(1.0, kThreeYears, op45()), 0.030, 1e-9);
}

TEST(NbtiModel, ZeroAlphaOrTimeGivesZeroShift) {
  const NbtiModel m = calibrated();
  EXPECT_DOUBLE_EQ(m.delta_vth(0.0, kTenYears, op45()), 0.0);
  EXPECT_DOUBLE_EQ(m.delta_vth(0.5, 0.0, op45()), 0.0);
  EXPECT_DOUBLE_EQ(m.delta_vth(-0.3, kTenYears, op45()), 0.0);
}

TEST(NbtiModel, MonotoneIncreasingInAlpha) {
  const NbtiModel m = calibrated();
  double prev = 0.0;
  for (double alpha : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double d = m.delta_vth(alpha, kThreeYears, op45());
    EXPECT_GT(d, prev) << "alpha=" << alpha;
    prev = d;
  }
}

TEST(NbtiModel, MonotoneIncreasingInTime) {
  const NbtiModel m = calibrated();
  double prev = 0.0;
  for (double years : {0.1, 0.5, 1.0, 3.0, 10.0, 30.0}) {
    const double d = m.delta_vth(1.0, years * 365.25 * 24 * 3600, op45());
    EXPECT_GT(d, prev) << "years=" << years;
    prev = d;
  }
}

TEST(NbtiModel, LongTermFollowsSixthRootOfTime) {
  // The long-term closed form asymptotically behaves as t^n with n = 1/6.
  const NbtiModel m = calibrated();
  const double d1 = m.delta_vth(1.0, kTenYears, op45());
  const double d2 = m.delta_vth(1.0, kTenYears * 64.0, op45());
  const double exponent = std::log(d2 / d1) / std::log(64.0);
  EXPECT_NEAR(exponent, 1.0 / 6.0, 0.02);
}

TEST(NbtiModel, HigherTemperatureDegradesMore) {
  const NbtiModel m = calibrated();
  OperatingPoint cold = op45();
  cold.temperature_k = 320.0;
  OperatingPoint hot = op45();
  hot.temperature_k = 380.0;
  EXPECT_LT(m.delta_vth(0.5, kThreeYears, cold), m.delta_vth(0.5, kThreeYears, hot));
}

TEST(NbtiModel, HigherVddDegradesMore) {
  const NbtiModel m = calibrated();
  OperatingPoint low = op45();
  low.vdd_v = 1.0;
  OperatingPoint high = op45();
  high.vdd_v = 1.3;
  EXPECT_LT(m.delta_vth(0.5, kThreeYears, low), m.delta_vth(0.5, kThreeYears, high));
}

TEST(NbtiModel, BetaTWithinBounds) {
  const NbtiModel m = calibrated();
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (double seconds : {1e-9, 1e-3, 1.0, 1e6, 3e8}) {
      const double beta = m.beta_t(alpha, seconds, op45());
      EXPECT_GE(beta, 0.0);
      EXPECT_LT(beta, 1.0);
    }
  }
}

TEST(NbtiModel, AlphaPowerLawApproximation) {
  // At GHz clock periods the recovery-within-cycle term in beta_t is
  // negligible, so dVth(alpha)/dVth(1) ~ alpha^n.
  const NbtiModel m = calibrated();
  const double ratio = m.delta_vth(0.01, kThreeYears, op45()) / m.delta_vth(1.0, kThreeYears, op45());
  EXPECT_NEAR(ratio, std::pow(0.01, 1.0 / 6.0), 0.01);
}

TEST(NbtiModel, PaperHeadlineSavingAtOnePercentDuty) {
  // Paper: "net NBTI Vth saving up to 54.2%" vs the always-stressed
  // baseline; an MD VC held near ~0.9% duty gives exactly that regime.
  const NbtiModel m = calibrated();
  const double saving = m.vth_saving(0.009, 1.0, kThreeYears, op45());
  EXPECT_NEAR(saving, 0.542, 0.02);
}

TEST(NbtiModel, SavingIsZeroAgainstSelf) {
  const NbtiModel m = calibrated();
  EXPECT_NEAR(m.vth_saving(0.4, 0.4, kThreeYears, op45()), 0.0, 1e-12);
}

TEST(NbtiModel, SavingAgainstZeroReferenceIsZero) {
  const NbtiModel m = calibrated();
  EXPECT_DOUBLE_EQ(m.vth_saving(0.5, 0.0, kThreeYears, op45()), 0.0);
}

TEST(NbtiModel, ShortTimeRampVanishesAtZero) {
  // Below the ramp boundary the model follows t^n down to zero, removing
  // the long-term form's spurious floor: a 30 ms simulation must report a
  // shift far below the 5 mV process-variation spread.
  const NbtiModel m = calibrated();
  const double at_30ms = m.delta_vth(1.0, 0.030, op45());
  EXPECT_GT(at_30ms, 0.0);
  EXPECT_LT(at_30ms, 0.002);
  EXPECT_LT(m.delta_vth(1.0, 1e-6, op45()), 1e-3);
}

TEST(NbtiModel, ShortTimeRampIsContinuousAtBoundary) {
  const NbtiModel m = calibrated();
  const double boundary = m.params().short_time_ramp_s;
  const double below = m.delta_vth(1.0, boundary * (1 - 1e-9), op45());
  const double above = m.delta_vth(1.0, boundary * (1 + 1e-9), op45());
  EXPECT_NEAR(below, above, above * 1e-6);
}

TEST(NbtiModel, DiffusivityArrhenius) {
  const NbtiModel m{NbtiParams{}};
  EXPECT_LT(m.diffusivity(300.0), m.diffusivity(400.0));
  EXPECT_GT(m.diffusivity(300.0), 0.0);
}

TEST(NbtiModel, DescribeMentionsCalibration) {
  const NbtiModel m = calibrated();
  EXPECT_NE(m.describe().find("Eq.1"), std::string::npos);
  EXPECT_NE(m.describe().find("50"), std::string::npos);
}

// Property sweep: saving fraction is monotone decreasing in alpha for any
// operating point in a realistic envelope.
class SavingMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(SavingMonotoneTest, SavingDecreasesWithAlpha) {
  const NbtiModel m = calibrated();
  OperatingPoint op = op45();
  op.temperature_k = GetParam();
  double prev_saving = 1.1;
  for (double alpha : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    const double s = m.vth_saving(alpha, 1.0, kThreeYears, op);
    EXPECT_LT(s, prev_saving);
    EXPECT_GE(s, 0.0);
    prev_saving = s;
  }
}

INSTANTIATE_TEST_SUITE_P(TemperatureEnvelope, SavingMonotoneTest,
                         ::testing::Values(320.0, 350.0, 380.0, 400.0));

}  // namespace
}  // namespace nbtinoc::nbti
