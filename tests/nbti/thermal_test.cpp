#include "nbtinoc/nbti/thermal.hpp"

#include <gtest/gtest.h>

#include "nbtinoc/nbti/model.hpp"

namespace nbtinoc::nbti {
namespace {

TEST(MeshThermalModel, RejectsBadConstruction) {
  EXPECT_THROW(MeshThermalModel(0, 4), std::invalid_argument);
  ThermalParams bad;
  bad.coupling = 1.0;
  EXPECT_THROW(MeshThermalModel(2, 2, bad), std::invalid_argument);
  bad = ThermalParams{};
  bad.iterations = 0;
  EXPECT_THROW(MeshThermalModel(2, 2, bad), std::invalid_argument);
}

TEST(MeshThermalModel, RejectsBadPowerVectors) {
  MeshThermalModel m(2, 2);
  EXPECT_THROW(m.solve({1.0}), std::invalid_argument);
  EXPECT_THROW(m.solve({1.0, 1.0, 1.0, -0.1}), std::invalid_argument);
}

TEST(MeshThermalModel, ZeroPowerIsAmbientEverywhere) {
  MeshThermalModel m(4, 4);
  const auto t = m.solve(std::vector<double>(16, 0.0));
  for (double k : t) EXPECT_DOUBLE_EQ(k, m.params().ambient_k);
}

TEST(MeshThermalModel, UniformPowerUniformTemperature) {
  MeshThermalModel m(4, 4);
  const auto t = m.solve(std::vector<double>(16, 0.5));
  // Interior tiles equal; edges slightly cooler is acceptable but the map
  // must be symmetric and above ambient.
  for (double k : t) EXPECT_GT(k, m.params().ambient_k);
  EXPECT_NEAR(t[5], t[6], 1e-9);   // symmetric interior
  EXPECT_NEAR(t[0], t[3], 1e-9);   // symmetric corners
  EXPECT_NEAR(t[0], t[15], 1e-9);
}

TEST(MeshThermalModel, HotspotIsHottestAndSpreads) {
  MeshThermalModel m(4, 4);
  std::vector<double> power(16, 0.1);
  power[5] = 2.0;  // tile (1,1)
  const auto t = m.solve(power);
  EXPECT_EQ(MeshThermalModel::hottest(t), 5u);
  // Neighbors of the hotspot are warmer than the far corner.
  EXPECT_GT(t[1], t[15]);
  EXPECT_GT(t[6], t[15]);
  // Spreading takes heat from the hotspot: below the uncoupled estimate.
  EXPECT_LT(t[5], m.params().ambient_k + m.params().r_theta_k_per_w * 2.0);
}

TEST(MeshThermalModel, MonotoneInPower) {
  MeshThermalModel m(2, 2);
  const auto low = m.solve({0.1, 0.1, 0.1, 0.1});
  const auto high = m.solve({0.2, 0.2, 0.2, 0.2});
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(high[i], low[i]);
}

TEST(MeshThermalModel, NoCouplingIsPureLocalHeating) {
  ThermalParams p;
  p.coupling = 0.0;
  MeshThermalModel m(2, 2, p);
  const auto t = m.solve({1.0, 0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(t[0], p.ambient_k + p.r_theta_k_per_w);
  EXPECT_DOUBLE_EQ(t[1], p.ambient_k);
}

TEST(MeshThermalModel, HottestThrowsOnEmpty) {
  EXPECT_THROW(MeshThermalModel::hottest({}), std::invalid_argument);
}

TEST(MeshThermalModel, GradientChangesNbtiRanking) {
  // End-to-end with the NBTI model: an identical duty cycle ages the hotter
  // tile's buffer more.
  MeshThermalModel m(2, 1);
  const auto t = m.solve({1.5, 0.1});
  const NbtiModel model = NbtiModel::calibrated({}, {});
  OperatingPoint hot;
  hot.temperature_k = t[0];
  OperatingPoint cold;
  cold.temperature_k = t[1];
  const double three_years = 3 * 365.25 * 24 * 3600;
  EXPECT_GT(model.delta_vth(0.5, three_years, hot), model.delta_vth(0.5, three_years, cold));
}

}  // namespace
}  // namespace nbtinoc::nbti
