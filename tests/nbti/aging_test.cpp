#include "nbtinoc/nbti/aging.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::nbti {
namespace {

NbtiModel model() { return NbtiModel::calibrated(NbtiParams{}, OperatingPoint{}); }

TEST(AgingForecaster, ForecastFields) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  const BufferForecast out = f.forecast({0.185, 1.0}, 10.0);
  EXPECT_DOUBLE_EQ(out.initial_vth_v, 0.185);
  EXPECT_GT(out.delta_vth_v, 0.045);  // near the 50mV anchor
  EXPECT_DOUBLE_EQ(out.final_vth_v, out.initial_vth_v + out.delta_vth_v);
  EXPECT_NEAR(out.saving_vs_always_on, 0.0, 1e-9);  // alpha = 1 vs alpha = 1
}

TEST(AgingForecaster, LowDutySavesVth) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  const BufferForecast low = f.forecast({0.180, 0.01}, 3.0);
  const BufferForecast high = f.forecast({0.180, 1.0}, 3.0);
  EXPECT_LT(low.delta_vth_v, high.delta_vth_v);
  EXPECT_GT(low.saving_vs_always_on, 0.5);
}

TEST(AgingForecaster, BankForecast) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  const auto out = f.forecast_bank({{0.180, 0.1}, {0.185, 0.9}}, 5.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_LT(out[0].delta_vth_v, out[1].delta_vth_v);
}

TEST(AgingForecaster, LifetimeBisectionConsistent) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  const BufferAgingInput input{0.180, 1.0};
  const double budget = 0.040;
  const double life = f.lifetime_years(input, budget);
  EXPECT_GT(life, 0.0);
  EXPECT_LT(life, 10.0);  // 50mV is reached at 10 years, 40mV earlier
  // The forecast at the lifetime crosses the budget.
  EXPECT_NEAR(f.forecast(input, life).delta_vth_v, budget, 1e-4);
}

TEST(AgingForecaster, LifetimeCappedAtMax) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  // A nearly idle buffer never reaches a 50mV budget within 30 years.
  EXPECT_DOUBLE_EQ(f.lifetime_years({0.180, 0.001}, 0.050, 30.0), 30.0);
}

TEST(AgingForecaster, LowerDutyLivesLonger) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  const double life_busy = f.lifetime_years({0.180, 1.0}, 0.045, 100.0);
  const double life_calm = f.lifetime_years({0.180, 0.3}, 0.045, 100.0);
  EXPECT_LT(life_busy, life_calm);
}

TEST(AgingForecaster, EquivalentAgeInvertsTheModel) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  const double seconds = AgingForecaster::years_to_seconds(2.0);
  OperatingPoint op;
  op.vth_v = 0.180;
  const double dvth = m.delta_vth(0.6, seconds, op);
  const double t_eq = f.equivalent_age_seconds(dvth, 0.6, 0.180);
  EXPECT_NEAR(t_eq, seconds, seconds * 1e-6);
}

TEST(AgingForecaster, EquivalentAgeEdgeCases) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  EXPECT_DOUBLE_EQ(f.equivalent_age_seconds(0.0, 0.5, 0.180), 0.0);
  EXPECT_DOUBLE_EQ(f.equivalent_age_seconds(0.01, 0.0, 0.180), 0.0);
  // Unreachable shift at tiny alpha saturates at max_seconds.
  EXPECT_DOUBLE_EQ(f.equivalent_age_seconds(1.0, 0.001, 0.180, 1000.0), 1000.0);
}

TEST(AgingForecaster, AdvanceMatchesDirectEvaluationAtConstantAlpha) {
  // Chaining epochs at a constant duty must land on the single-shot value.
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  const double epoch = AgingForecaster::years_to_seconds(0.5);
  double dvth = 0.0;
  for (int i = 0; i < 6; ++i) dvth = f.advance_dvth(dvth, 0.4, epoch, 0.180);
  OperatingPoint op;
  op.vth_v = 0.180;
  EXPECT_NEAR(dvth, m.delta_vth(0.4, 6 * epoch, op), 1e-6);
}

TEST(AgingForecaster, AdvanceNeverShrinksAndFreezesAtZeroAlpha) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  const double epoch = AgingForecaster::years_to_seconds(0.5);
  const double aged = f.advance_dvth(0.010, 1.0, epoch, 0.180);
  EXPECT_GT(aged, 0.010);
  EXPECT_DOUBLE_EQ(f.advance_dvth(0.010, 0.0, epoch, 0.180), 0.010);
  EXPECT_DOUBLE_EQ(f.advance_dvth(0.010, 0.5, 0.0, 0.180), 0.010);
}

TEST(AgingForecaster, HigherAlphaEpochAgesMore) {
  const NbtiModel m = model();
  AgingForecaster f(m, OperatingPoint{});
  const double epoch = AgingForecaster::years_to_seconds(1.0);
  const double start = 0.005;
  EXPECT_LT(f.advance_dvth(start, 0.1, epoch, 0.180), f.advance_dvth(start, 0.9, epoch, 0.180));
}

TEST(AgingForecaster, YearsToSeconds) {
  EXPECT_DOUBLE_EQ(AgingForecaster::years_to_seconds(1.0), 365.25 * 24 * 3600);
}

}  // namespace
}  // namespace nbtinoc::nbti
