#include "nbtinoc/nbti/process_variation.hpp"

#include <gtest/gtest.h>

#include "nbtinoc/util/stats.hpp"

namespace nbtinoc::nbti {
namespace {

TEST(ProcessVariation, RejectsBadConfig) {
  PvConfig bad;
  bad.transistors_per_buffer = 0;
  EXPECT_THROW(ProcessVariation(bad, 1), std::invalid_argument);
  bad = PvConfig{};
  bad.vth_sigma_v = -0.1;
  EXPECT_THROW(ProcessVariation(bad, 1), std::invalid_argument);
  bad = PvConfig{};
  bad.die_to_die_sigma_v = -0.01;
  EXPECT_THROW(ProcessVariation(bad, 1), std::invalid_argument);
}

TEST(ProcessVariation, CoordinatesAreClampedToDie) {
  // Callers pass normalized die coordinates; out-of-range values saturate
  // instead of extrapolating the gradient beyond the die edge.
  PvConfig cfg;
  cfg.vth_sigma_v = 0.0;
  cfg.systematic_span_v = 0.020;
  ProcessVariation pv(cfg, 17);
  EXPECT_DOUBLE_EQ(pv.sample_buffer_vth(-3.0, -3.0), pv.sample_buffer_vth(0.0, 0.0));
  EXPECT_DOUBLE_EQ(pv.sample_buffer_vth(5.0, 5.0), pv.sample_buffer_vth(1.0, 1.0));
}

TEST(ProcessVariation, BankSamplingForwardsCoordinates) {
  PvConfig cfg;
  cfg.vth_sigma_v = 0.0;
  cfg.systematic_span_v = 0.040;
  ProcessVariation pv(cfg, 19);
  const auto near = pv.sample_bank(3, 0.0, 0.0);
  const auto far = pv.sample_bank(3, 1.0, 1.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(far[i] - near[i], 0.040, 1e-12);
}

TEST(ProcessVariation, DeterministicForSeed) {
  const PvConfig cfg;
  ProcessVariation a(cfg, 99);
  ProcessVariation b(cfg, 99);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.sample_buffer_vth(), b.sample_buffer_vth());
}

TEST(ProcessVariation, DifferentSeedsDiffer) {
  const PvConfig cfg;
  ProcessVariation a(cfg, 1);
  ProcessVariation b(cfg, 2);
  EXPECT_NE(a.sample_buffer_vth(), b.sample_buffer_vth());
}

TEST(ProcessVariation, PaperMomentsAt45nm) {
  // Mean 0.180 V, sigma 5 mV [25].
  PvConfig cfg;
  ProcessVariation pv(cfg, 7);
  util::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(pv.sample_buffer_vth());
  EXPECT_NEAR(stats.mean(), 0.180, 0.0002);
  EXPECT_NEAR(stats.stddev_population(), 0.005, 0.0002);
}

TEST(ProcessVariation, WorstOfManyTransistorsShiftsUp) {
  // Order statistics: the max of k Gaussians exceeds the single draw mean.
  PvConfig one;
  PvConfig eight;
  eight.transistors_per_buffer = 8;
  ProcessVariation pv1(one, 5);
  ProcessVariation pv8(eight, 5);
  util::RunningStats s1, s8;
  for (int i = 0; i < 20000; ++i) {
    s1.add(pv1.sample_buffer_vth());
    s8.add(pv8.sample_buffer_vth());
  }
  EXPECT_GT(s8.mean(), s1.mean() + 0.004);  // E[max of 8] ~ mean + 1.4 sigma
}

TEST(ProcessVariation, DieToDieOffsetShared) {
  PvConfig cfg;
  cfg.die_to_die_sigma_v = 0.010;
  ProcessVariation pv(cfg, 3);
  EXPECT_NE(pv.die_offset_v(), 0.0);
  // The offset is constant within the die: two banks shift identically.
  PvConfig no_dd;
  ProcessVariation ref(no_dd, 3);
  // Can't compare draw-by-draw (the offset draw consumed RNG state), but the
  // offset itself must be the stated Gaussian's output: bounded sanity.
  EXPECT_LT(std::abs(pv.die_offset_v()), 0.010 * 6);
}

TEST(ProcessVariation, SystematicGradientRaisesFarCorner) {
  PvConfig cfg;
  cfg.vth_sigma_v = 0.0;  // isolate the systematic term
  cfg.systematic_span_v = 0.020;
  ProcessVariation pv(cfg, 9);
  const double near = pv.sample_buffer_vth(0.0, 0.0);
  const double far = pv.sample_buffer_vth(1.0, 1.0);
  EXPECT_NEAR(far - near, 0.020, 1e-12);
}

TEST(ProcessVariation, BankSampling) {
  ProcessVariation pv(PvConfig{}, 11);
  const auto bank = pv.sample_bank(4);
  EXPECT_EQ(bank.size(), 4u);
  // All distinct with probability ~1.
  EXPECT_NE(bank[0], bank[1]);
  EXPECT_NE(bank[2], bank[3]);
}

TEST(ProcessVariation, ZeroSigmaIsDeterministicMean) {
  PvConfig cfg;
  cfg.vth_sigma_v = 0.0;
  ProcessVariation pv(cfg, 13);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(pv.sample_buffer_vth(), 0.180);
}

}  // namespace
}  // namespace nbtinoc::nbti
