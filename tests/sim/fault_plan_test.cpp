#include "nbtinoc/sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace nbtinoc::sim {
namespace {

TEST(FaultPlan, DefaultPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(plan.describe(), "fault plan: none (all rates zero)");
}

TEST(FaultPlan, AnyNonzeroRateEnables) {
  for (auto set : std::vector<void (*)(FaultPlan&)>{
           [](FaultPlan& p) { p.sensor_stuck_rate = 0.1; },
           [](FaultPlan& p) { p.sensor_drift_rate = 0.1; },
           [](FaultPlan& p) { p.sensor_death_rate = 0.1; },
           [](FaultPlan& p) { p.gate_cmd_drop_rate = 0.1; },
           [](FaultPlan& p) { p.gate_cmd_flip_rate = 0.1; },
           [](FaultPlan& p) { p.down_up_drop_rate = 0.1; },
           [](FaultPlan& p) { p.wake_fail_rate = 0.1; }}) {
    FaultPlan plan;
    set(plan);
    EXPECT_TRUE(plan.enabled());
  }
  // A repair rate alone never injects anything.
  FaultPlan repair_only;
  repair_only.sensor_repair_rate = 0.5;
  EXPECT_FALSE(repair_only.enabled());
}

TEST(FaultPlan, ValidateRejectsOutOfRangeRates) {
  FaultPlan plan;
  plan.gate_cmd_drop_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.gate_cmd_drop_rate = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsSensorRateSumAboveOne) {
  FaultPlan plan;
  plan.sensor_stuck_rate = 0.5;
  plan.sensor_drift_rate = 0.4;
  plan.sensor_death_rate = 0.2;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, UniformIsValidAcrossTheWholeRange) {
  for (double rate : {0.0, 0.001, 0.5, 1.0}) {
    const FaultPlan plan = FaultPlan::uniform(rate);
    EXPECT_NO_THROW(plan.validate()) << "rate " << rate;
    EXPECT_EQ(plan.enabled(), rate > 0.0);
  }
}

TEST(FaultInjector, ZeroRatePlanNeverFires) {
  FaultInjector inj(FaultPlan{}, /*seed=*/1234);
  int shift = -1;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.drop_gate_command());
    EXPECT_FALSE(inj.flip_gate_command(4, &shift));
    EXPECT_FALSE(inj.wake_fails());
    EXPECT_FALSE(inj.drop_down_up_report());
  }
  inj.advance_sensor_epoch(0, 0, 4);
  EXPECT_EQ(inj.faulty_sites(), 0u);
  EXPECT_EQ(inj.corrupt_reading(0, 0, 0, 0.18), 0.18);
  EXPECT_EQ(shift, -1);  // flip never wrote through
}

TEST(FaultInjector, SameSeedReplaysBitExactly) {
  const FaultPlan plan = FaultPlan::uniform(0.1, /*seed_salt=*/7);
  FaultInjector a(plan, 42), b(plan, 42);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.drop_gate_command(), b.drop_gate_command());
    int sa = -1, sb = -1;
    EXPECT_EQ(a.flip_gate_command(4, &sa), b.flip_gate_command(4, &sb));
    EXPECT_EQ(sa, sb);
    EXPECT_EQ(a.wake_fails(), b.wake_fails());
    a.advance_sensor_epoch(0, 1, 4);
    b.advance_sensor_epoch(0, 1, 4);
  }
  EXPECT_EQ(a.faulty_sites(), b.faulty_sites());
  for (int vc = 0; vc < 4; ++vc) {
    EXPECT_EQ(a.sensor_mode(0, 1, vc), b.sensor_mode(0, 1, vc));
    EXPECT_EQ(a.corrupt_reading(0, 1, vc, 0.2), b.corrupt_reading(0, 1, vc, 0.2));
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  const FaultPlan plan = FaultPlan::uniform(0.5);
  FaultInjector a(plan, 1), b(plan, 2);
  int agreements = 0;
  const int kDraws = 256;
  for (int i = 0; i < kDraws; ++i)
    if (a.drop_gate_command() == b.drop_gate_command()) ++agreements;
  EXPECT_LT(agreements, kDraws);  // astronomically unlikely to fully agree
}

TEST(FaultInjector, FlipShiftIsAlwaysInRange) {
  FaultPlan plan;
  plan.gate_cmd_flip_rate = 1.0;
  FaultInjector inj(plan, 99);
  for (int range : {1, 2, 4, 8}) {
    for (int i = 0; i < 100; ++i) {
      int shift = -1;
      ASSERT_TRUE(inj.flip_gate_command(range, &shift));
      EXPECT_GE(shift, 0);
      EXPECT_LT(shift, range);
    }
  }
}

TEST(FaultInjector, StuckSensorLatchesFirstReading) {
  FaultPlan plan;
  plan.sensor_stuck_rate = 1.0;  // every site faults on the first epoch
  FaultInjector inj(plan, 5);
  inj.advance_sensor_epoch(3, 1, 1);
  ASSERT_EQ(inj.sensor_mode(3, 1, 0), SensorFaultMode::kStuck);
  EXPECT_EQ(inj.corrupt_reading(3, 1, 0, 0.21), 0.21);  // latch
  EXPECT_EQ(inj.corrupt_reading(3, 1, 0, 0.30), 0.21);  // frozen thereafter
}

TEST(FaultInjector, DriftingSensorAccumulatesPerEpoch) {
  FaultPlan plan;
  plan.sensor_drift_rate = 1.0;
  plan.drift_step_v = 0.01;
  FaultInjector inj(plan, 5);
  inj.advance_sensor_epoch(0, 0, 1);  // healthy -> drifting (drift 0 so far)
  ASSERT_EQ(inj.sensor_mode(0, 0, 0), SensorFaultMode::kDrifting);
  EXPECT_DOUBLE_EQ(inj.corrupt_reading(0, 0, 0, 0.2), 0.2);
  inj.advance_sensor_epoch(0, 0, 1);  // +1 drift step
  EXPECT_DOUBLE_EQ(inj.corrupt_reading(0, 0, 0, 0.2), 0.21);
  inj.advance_sensor_epoch(0, 0, 1);
  EXPECT_DOUBLE_EQ(inj.corrupt_reading(0, 0, 0, 0.2), 0.22);
}

TEST(FaultInjector, DeadSensorReportsTheRail) {
  FaultPlan plan;
  plan.sensor_death_rate = 1.0;
  plan.dead_reading_v = 0.0;
  FaultInjector inj(plan, 5);
  inj.advance_sensor_epoch(0, 2, 2);
  for (int vc = 0; vc < 2; ++vc) {
    ASSERT_EQ(inj.sensor_mode(0, 2, vc), SensorFaultMode::kDead);
    EXPECT_EQ(inj.corrupt_reading(0, 2, vc, 0.25), 0.0);
  }
}

TEST(FaultInjector, RepairReturnsSitesToHealthy) {
  FaultPlan plan;
  plan.sensor_death_rate = 1.0;
  plan.sensor_repair_rate = 1.0;
  FaultInjector inj(plan, 5);
  inj.advance_sensor_epoch(0, 0, 1);
  ASSERT_EQ(inj.faulty_sites(), 1u);
  inj.advance_sensor_epoch(0, 0, 1);  // guaranteed repair
  EXPECT_EQ(inj.faulty_sites(), 0u);
  EXPECT_EQ(inj.sensor_mode(0, 0, 0), SensorFaultMode::kHealthy);
  EXPECT_EQ(inj.corrupt_reading(0, 0, 0, 0.3), 0.3);
}

TEST(FaultInjector, CountsEventsIntoBoundStats) {
  StatRegistry stats;
  FaultPlan plan;
  plan.gate_cmd_drop_rate = 1.0;
  plan.wake_fail_rate = 1.0;
  FaultInjector inj(plan, 11);
  inj.bind_stats(&stats);
  EXPECT_TRUE(inj.drop_gate_command());
  EXPECT_TRUE(inj.drop_gate_command());
  EXPECT_TRUE(inj.wake_fails());
  EXPECT_EQ(stats.counter("fault.gate_cmd_drops"), 2u);
  EXPECT_EQ(stats.counter("fault.wake_failures"), 1u);
}

TEST(FaultInjector, ConstructorValidatesPlan) {
  FaultPlan plan;
  plan.wake_fail_rate = 2.0;
  EXPECT_THROW(FaultInjector(plan, 1), std::invalid_argument);
}

}  // namespace
}  // namespace nbtinoc::sim
