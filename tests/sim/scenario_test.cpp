#include "nbtinoc/sim/scenario.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::sim {
namespace {

TEST(Technology, NodePresets) {
  EXPECT_DOUBLE_EQ(Technology::node_45nm().vth_nominal_v, 0.180);
  EXPECT_DOUBLE_EQ(Technology::node_32nm().vth_nominal_v, 0.160);
  EXPECT_EQ(Technology::node_45nm().node_nm, 45);
  EXPECT_EQ(Technology::node_32nm().node_nm, 32);
}

TEST(Scenario, SyntheticFactory) {
  const Scenario s = Scenario::synthetic(4, 2, 0.3);
  EXPECT_EQ(s.cores(), 16);
  EXPECT_EQ(s.num_vcs, 2);
  EXPECT_DOUBLE_EQ(s.injection_rate, 0.3);
  EXPECT_EQ(s.name, "16core-inj0.30");
}

TEST(Scenario, PvSeedIndependentOfPolicyButNotOfArch) {
  const Scenario a = Scenario::synthetic(2, 4, 0.1);
  const Scenario b = Scenario::synthetic(2, 4, 0.1);
  EXPECT_EQ(a.pv_seed(), b.pv_seed());
  EXPECT_NE(a.pv_seed(), Scenario::synthetic(4, 4, 0.1).pv_seed());
  EXPECT_NE(a.pv_seed(), Scenario::synthetic(2, 2, 0.1).pv_seed());
  EXPECT_NE(a.pv_seed(), Scenario::synthetic(2, 4, 0.2).pv_seed());
}

TEST(Scenario, TrafficSeedStable) {
  EXPECT_EQ(Scenario::synthetic(2, 2, 0.2).traffic_seed(),
            Scenario::synthetic(2, 2, 0.2).traffic_seed());
  EXPECT_NE(Scenario::synthetic(2, 2, 0.2).traffic_seed(),
            Scenario::synthetic(2, 2, 0.3).traffic_seed());
}

TEST(Scenario, PaperScaleMatchesSection4B) {
  Scenario s4 = Scenario::synthetic(2, 2, 0.1);
  s4.use_paper_scale();
  EXPECT_EQ(s4.warmup_cycles, 6'000'000u);
  EXPECT_EQ(s4.total_cycles(), 30'000'000u);

  Scenario s16 = Scenario::synthetic(4, 2, 0.1);
  s16.use_paper_scale();
  EXPECT_EQ(s16.warmup_cycles, 9'000'000u);
  EXPECT_EQ(s16.total_cycles(), 30'000'000u);
}

TEST(Scenario, PhitsPerFlit) {
  Scenario s;
  EXPECT_EQ(s.phits_per_flit(), 2);  // 64b flit over 32b link
  s.link_width_bits = 64;
  EXPECT_EQ(s.phits_per_flit(), 1);
  s.link_width_bits = 16;
  EXPECT_EQ(s.phits_per_flit(), 4);
  s.flit_width_bits = 65;
  s.link_width_bits = 32;
  EXPECT_EQ(s.phits_per_flit(), 3);  // ceiling
}

TEST(ScenarioFromProperties, DefaultsWhenEmpty) {
  const Scenario s = scenario_from_properties({});
  EXPECT_EQ(s.mesh_width, 2);
  EXPECT_EQ(s.num_vcs, 4);
  EXPECT_EQ(s.tech.node_nm, 45);
  EXPECT_DOUBLE_EQ(s.clock_period_s, 1e-9);
  EXPECT_EQ(s.name, "4core-inj0.10");
}

TEST(ScenarioFromProperties, ParsesAllKnownKeys) {
  const Scenario s = scenario_from_properties({{"name", "study"},
                                               {"mesh_width", "4"},
                                               {"mesh_height", "2"},
                                               {"num_vcs", "2"},
                                               {"num_vnets", "2"},
                                               {"buffer_depth", "8"},
                                               {"flit_width_bits", "128"},
                                               {"link_width_bits", "32"},
                                               {"packet_length", "5"},
                                               {"injection_rate", "0.25"},
                                               {"wakeup_latency", "3"},
                                               {"warmup_cycles", "1000"},
                                               {"measure_cycles", "5000"},
                                               {"clock_ghz", "2"},
                                               {"technology_nm", "32"},
                                               {"vth_sigma_v", "0.004"},
                                               {"temperature_k", "360"},
                                               {"vdd_v", "1.1"}});
  EXPECT_EQ(s.name, "study");
  EXPECT_EQ(s.mesh_width, 4);
  EXPECT_EQ(s.mesh_height, 2);
  EXPECT_EQ(s.num_vnets, 2);
  EXPECT_EQ(s.phits_per_flit(), 4);  // 128b flit over 32b link
  EXPECT_EQ(s.wakeup_latency, 3u);
  EXPECT_DOUBLE_EQ(s.clock_period_s, 0.5e-9);
  EXPECT_DOUBLE_EQ(s.tech.vth_nominal_v, 0.160);  // 32nm preset
  EXPECT_DOUBLE_EQ(s.tech.vth_sigma_v, 0.004);
  EXPECT_DOUBLE_EQ(s.tech.temperature_k, 360.0);
  EXPECT_DOUBLE_EQ(s.tech.vdd_v, 1.1);
}

TEST(ScenarioFromProperties, RouterStages) {
  EXPECT_EQ(scenario_from_properties({}).router_stages, 3);
  EXPECT_EQ(scenario_from_properties({{"router_stages", "5"}}).router_stages, 5);
  EXPECT_THROW(scenario_from_properties({{"router_stages", "2"}}), std::invalid_argument);
}

TEST(ScenarioFromProperties, MeshHeightDefaultsToWidth) {
  const Scenario s = scenario_from_properties({{"mesh_width", "4"}});
  EXPECT_EQ(s.mesh_height, 4);
}

TEST(ScenarioFromProperties, RejectsUnknownKeyAndBadValues) {
  EXPECT_THROW(scenario_from_properties({{"mesh_widht", "4"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_properties({{"technology_nm", "28"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_properties({{"clock_ghz", "0"}}), std::invalid_argument);
}

TEST(Scenario, FaultSeedStableAndDistinctFromOtherStreams) {
  const Scenario a = Scenario::synthetic(2, 2, 0.2);
  EXPECT_EQ(a.fault_seed(), Scenario::synthetic(2, 2, 0.2).fault_seed());
  EXPECT_NE(a.fault_seed(), Scenario::synthetic(4, 2, 0.2).fault_seed());
  EXPECT_NE(a.fault_seed(), Scenario::synthetic(2, 2, 0.3).fault_seed());
  // Dedicated stream: never collides with the PV or traffic streams.
  EXPECT_NE(a.fault_seed(), a.pv_seed());
  EXPECT_NE(a.fault_seed(), a.traffic_seed());
}

TEST(Scenario, ValidateAcceptsEveryFactoryOutput) {
  EXPECT_NO_THROW(Scenario{}.validate());
  EXPECT_NO_THROW(Scenario::synthetic(2, 2, 0.1).validate());
  EXPECT_NO_THROW(Scenario::synthetic(4, 4, 1.0).validate());
}

TEST(Scenario, ValidateRejectsImpossibleConfigs) {
  const auto broken = [](void (*mutate)(Scenario&)) {
    Scenario s = Scenario::synthetic(2, 2, 0.1);
    mutate(s);
    return s;
  };
  EXPECT_THROW(broken([](Scenario& s) { s.mesh_width = 0; }).validate(), std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.mesh_width = s.mesh_height = 1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.num_vcs = 0; }).validate(), std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.num_vnets = 0; }).validate(), std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.buffer_depth = 0; }).validate(), std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.link_width_bits = s.flit_width_bits + 1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.packet_length = 0; }).validate(), std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.injection_rate = 1.5; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.injection_rate = -0.1; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.router_stages = 2; }).validate(), std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.measure_cycles = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.clock_period_s = 0.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.tech.vdd_v = 0.0; }).validate(), std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.tech.vth_nominal_v = s.tech.vdd_v; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](Scenario& s) { s.tech.vth_sigma_v = -0.001; }).validate(),
               std::invalid_argument);
}

TEST(Scenario, ValidateErrorsNameTheScenarioAndTheProblem) {
  Scenario s = Scenario::synthetic(2, 2, 0.1);
  s.name = "my-study";
  s.buffer_depth = 0;
  try {
    s.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my-study"), std::string::npos) << what;
    EXPECT_NE(what.find("buffer_depth"), std::string::npos) << what;
    EXPECT_NE(what.find("0"), std::string::npos) << what;  // the offending value
  }
}

TEST(ScenarioFromProperties, RejectsNegativeWakeupLatency) {
  // Cycle is unsigned: -1 would otherwise wrap to ~2^64 cycles of wakeup.
  EXPECT_THROW(scenario_from_properties({{"wakeup_latency", "-1"}}), std::invalid_argument);
}

TEST(ScenarioFromProperties, ValidatesTheAssembledScenario) {
  EXPECT_THROW(scenario_from_properties({{"buffer_depth", "0"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_properties({{"mesh_width", "1"}, {"mesh_height", "1"}}),
               std::invalid_argument);
  EXPECT_THROW(scenario_from_properties({{"injection_rate", "2.0"}}), std::invalid_argument);
}

TEST(Scenario, ValidatesRoutingMode) {
  Scenario s = Scenario::synthetic(2, 2, 0.1);
  for (const char* mode : {"dor", "xy", "yx", "west-first", "odd-even"}) {
    s.routing = mode;
    EXPECT_NO_THROW(s.validate()) << mode;
  }
  s.routing = "zigzag";
  EXPECT_THROW(s.validate(), std::invalid_argument);
  // Adaptive modes are mesh-only and need an escape class + an adaptive
  // class, so one VC per vnet cannot host them.
  s.routing = "west-first";
  s.topology = "torus";
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.topology = "mesh";
  s.num_vcs = 1;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Scenario, RoutingValidationErrorsAreActionable) {
  Scenario s = Scenario::synthetic(2, 1, 0.1);
  s.routing = "odd-even";
  try {
    s.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("odd-even"), std::string::npos) << what;
    EXPECT_NE(what.find("2 VCs"), std::string::npos) << what;
    EXPECT_NE(what.find("escape"), std::string::npos) << what;
  }
}

TEST(ScenarioFromProperties, ParsesRouting) {
  EXPECT_EQ(scenario_from_properties({}).routing, "dor");
  EXPECT_EQ(scenario_from_properties({{"routing", "odd-even"}}).routing, "odd-even");
  EXPECT_THROW(scenario_from_properties({{"routing", "zigzag"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_properties({{"routing", "west-first"}, {"num_vcs", "1"}}),
               std::invalid_argument);
}

TEST(Scenario, DescribeMentionsRoutingOnlyOffDefault) {
  Scenario s = Scenario::synthetic(2, 2, 0.1);
  EXPECT_EQ(s.describe().find("routing"), std::string::npos);
  s.routing = "west-first";
  EXPECT_NE(s.describe().find("west-first"), std::string::npos);
}

TEST(Scenario, DescribeMentionsKeyParameters) {
  const Scenario s = Scenario::synthetic(2, 4, 0.2);
  const std::string d = s.describe();
  EXPECT_NE(d.find("2x2"), std::string::npos);
  EXPECT_NE(d.find("4 VCs"), std::string::npos);
  EXPECT_NE(d.find("45nm"), std::string::npos);
  EXPECT_NE(d.find("0.2"), std::string::npos);
}

TEST(Scenario, ValidatesBufferOrg) {
  Scenario s = Scenario::synthetic(2, 2, 0.1);
  s.buffer_org = "shared";
  EXPECT_NO_THROW(s.validate());
  s.shared_reserve = s.buffer_depth;  // reserve may use the whole per-VC depth
  EXPECT_NO_THROW(s.validate());
  s.buffer_org = "damq";
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Scenario, SharedOrgValidationErrorsAreActionable) {
  const auto what_of = [](const Scenario& s) -> std::string {
    try {
      s.validate();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };

  // A zero reserve would let gating starve a VC: deadlock safety demands >= 1.
  Scenario s = Scenario::synthetic(2, 2, 0.1);
  s.buffer_org = "shared";
  s.shared_reserve = 0;
  std::string what = what_of(s);
  EXPECT_NE(what.find("shared_reserve"), std::string::npos) << what;
  EXPECT_NE(what.find(">= 1"), std::string::npos) << what;
  EXPECT_NE(what.find("deadlock"), std::string::npos) << what;

  // Reserving more than the per-VC depth would pledge more slots than the
  // pool holds (reserve x VCs > pool).
  s.shared_reserve = s.buffer_depth + 1;
  what = what_of(s);
  EXPECT_NE(what.find("exceeds buffer_depth"), std::string::npos) << what;
  EXPECT_NE(what.find(std::to_string(s.buffer_depth + 1)), std::string::npos) << what;

  // A single-VC port has nothing to share.
  Scenario single = Scenario::synthetic(2, 1, 0.1);
  single.buffer_org = "shared";
  what = what_of(single);
  EXPECT_NE(what.find(">= 2 VCs"), std::string::npos) << what;
  EXPECT_NE(what.find("partitioned"), std::string::npos) << what;

  // The reserve knob is inert under partitioned buffers; a non-default
  // value there is a config mistake, not a silent no-op.
  Scenario part = Scenario::synthetic(2, 2, 0.1);
  part.shared_reserve = 2;
  what = what_of(part);
  EXPECT_NE(what.find("shared-organization knob"), std::string::npos) << what;
}

TEST(ScenarioFromProperties, ParsesBufferOrg) {
  EXPECT_EQ(scenario_from_properties({}).buffer_org, "partitioned");
  const Scenario s =
      scenario_from_properties({{"buffer_org", "shared"}, {"shared_reserve", "2"}});
  EXPECT_EQ(s.buffer_org, "shared");
  EXPECT_EQ(s.shared_reserve, 2);
  EXPECT_THROW(scenario_from_properties({{"buffer_org", "pooled"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_properties({{"buffer_org", "shared"}, {"num_vcs", "1"}}),
               std::invalid_argument);
}

TEST(Scenario, SharedOrgGetsItsOwnSeedStreams) {
  // Slot-count-changing organizations must not reuse partitioned silicon:
  // the golden seeds are tagged with the org and its reserve.
  const Scenario part = Scenario::synthetic(2, 2, 0.1);
  Scenario shared = part;
  shared.buffer_org = "shared";
  EXPECT_NE(part.pv_seed(), shared.pv_seed());
  EXPECT_NE(part.traffic_seed(), shared.traffic_seed());
  EXPECT_NE(part.fault_seed(), shared.fault_seed());
  Scenario deeper = shared;
  deeper.shared_reserve = 2;
  EXPECT_NE(shared.pv_seed(), deeper.pv_seed());
  // Determinism: the tagged streams are still pure functions of the scenario.
  Scenario again = part;
  again.buffer_org = "shared";
  EXPECT_EQ(shared.pv_seed(), again.pv_seed());
}

TEST(Scenario, DescribeMentionsBufferOrgOnlyOffDefault) {
  Scenario s = Scenario::synthetic(2, 2, 0.1);
  EXPECT_EQ(s.describe().find("DAMQ"), std::string::npos);
  s.buffer_org = "shared";
  const std::string d = s.describe();
  EXPECT_NE(d.find("shared DAMQ pool"), std::string::npos);
  EXPECT_NE(d.find("1 flit(s)/VC reserved"), std::string::npos);
}

}  // namespace
}  // namespace nbtinoc::sim
