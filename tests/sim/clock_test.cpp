#include "nbtinoc/sim/clock.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::sim {
namespace {

TEST(Clock, StartsAtZero) {
  Clock c;
  EXPECT_EQ(c.now(), 0u);
  EXPECT_DOUBLE_EQ(c.seconds_now(), 0.0);
}

TEST(Clock, TickAdvances) {
  Clock c;
  c.tick();
  c.tick();
  EXPECT_EQ(c.now(), 2u);
}

TEST(Clock, AdvanceBulk) {
  Clock c;
  c.advance(1'000'000);
  EXPECT_EQ(c.now(), 1'000'000u);
}

TEST(Clock, SecondsAtOneGigahertz) {
  Clock c(1e-9);
  c.advance(30'000'000);
  EXPECT_DOUBLE_EQ(c.seconds_now(), 0.030);  // 30M cycles @1GHz = 30 ms
  EXPECT_DOUBLE_EQ(c.frequency_hz(), 1e9);
}

TEST(Clock, CustomPeriod) {
  Clock c(2e-9);  // 500 MHz
  c.advance(500);
  EXPECT_DOUBLE_EQ(c.seconds_now(), 1e-6);
}

TEST(Clock, Reset) {
  Clock c;
  c.advance(42);
  c.reset();
  EXPECT_EQ(c.now(), 0u);
}

}  // namespace
}  // namespace nbtinoc::sim
