#include "nbtinoc/sim/stat_registry.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::sim {
namespace {

TEST(StatRegistry, CountersAccumulate) {
  StatRegistry r;
  r.add("flits");
  r.add("flits", 4);
  EXPECT_EQ(r.counter("flits"), 5u);
  EXPECT_TRUE(r.has_counter("flits"));
}

TEST(StatRegistry, UnknownCounterIsZero) {
  StatRegistry r;
  EXPECT_EQ(r.counter("nothing"), 0u);
  EXPECT_FALSE(r.has_counter("nothing"));
}

TEST(StatRegistry, Distributions) {
  StatRegistry r;
  r.sample("latency", 10.0);
  r.sample("latency", 20.0);
  const auto* d = r.distribution("latency");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_DOUBLE_EQ(d->mean(), 15.0);
  EXPECT_EQ(r.distribution("none"), nullptr);
}

TEST(StatRegistry, NamesSorted) {
  StatRegistry r;
  r.add("b");
  r.add("a");
  const auto names = r.counter_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(StatRegistry, ResetClearsEverything) {
  StatRegistry r;
  r.add("x");
  r.sample("y", 1.0);
  r.reset();
  EXPECT_EQ(r.counter("x"), 0u);
  EXPECT_EQ(r.distribution("y"), nullptr);
}

TEST(StatRegistry, ToStringContainsEntries) {
  StatRegistry r;
  r.add("noc.flits", 3);
  const std::string s = r.to_string();
  EXPECT_NE(s.find("noc.flits = 3"), std::string::npos);
}

}  // namespace
}  // namespace nbtinoc::sim
