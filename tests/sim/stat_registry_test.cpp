#include "nbtinoc/sim/stat_registry.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::sim {
namespace {

TEST(StatRegistry, CountersAccumulate) {
  StatRegistry r;
  r.add("flits");
  r.add("flits", 4);
  EXPECT_EQ(r.counter("flits"), 5u);
  EXPECT_TRUE(r.has_counter("flits"));
}

TEST(StatRegistry, UnknownCounterIsZero) {
  StatRegistry r;
  EXPECT_EQ(r.counter("nothing"), 0u);
  EXPECT_FALSE(r.has_counter("nothing"));
}

TEST(StatRegistry, Distributions) {
  StatRegistry r;
  r.sample("latency", 10.0);
  r.sample("latency", 20.0);
  const auto* d = r.distribution("latency");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_DOUBLE_EQ(d->mean(), 15.0);
  EXPECT_EQ(r.distribution("none"), nullptr);
}

TEST(StatRegistry, NamesSorted) {
  StatRegistry r;
  r.add("b");
  r.add("a");
  const auto names = r.counter_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(StatRegistry, ResetClearsEverything) {
  StatRegistry r;
  r.add("x");
  r.sample("y", 1.0);
  r.reset();
  EXPECT_EQ(r.counter("x"), 0u);
  EXPECT_EQ(r.distribution("y"), nullptr);
}

TEST(StatRegistry, ToStringContainsEntries) {
  StatRegistry r;
  r.add("noc.flits", 3);
  const std::string s = r.to_string();
  EXPECT_NE(s.find("noc.flits = 3"), std::string::npos);
}

// --- interned handles (the allocation-free hot-path API) -------------------

TEST(StatRegistry, HandlesAliasStringKeys) {
  StatRegistry r;
  const CounterHandle h = r.intern("flits");
  r.add(h);
  r.add("flits", 2);  // string path lands on the same slot
  r.add(h, 3);
  EXPECT_EQ(r.counter("flits"), 6u);
  EXPECT_EQ(r.counter(h), 6u);

  const DistributionHandle d = r.intern_distribution("lat");
  r.sample(d, 10.0);
  r.sample("lat", 20.0);
  ASSERT_NE(r.distribution("lat"), nullptr);
  EXPECT_DOUBLE_EQ(r.distribution("lat")->mean(), 15.0);
}

TEST(StatRegistry, InternIsIdempotent) {
  StatRegistry r;
  const CounterHandle a = r.intern("x");
  const CounterHandle b = r.intern("x");
  r.add(a);
  r.add(b);
  EXPECT_EQ(r.counter("x"), 2u);
}

// Regression: reset() must zero values, not erase the dense storage —
// components hold interned handles across the warmup fence (run_with_warmup
// resets the registry mid-run), and stale handles into freed slots would be
// undefined behavior.
TEST(StatRegistry, HandlesSurviveReset) {
  StatRegistry r;
  const CounterHandle h = r.intern("warm.counter");
  const DistributionHandle d = r.intern_distribution("warm.dist");
  r.add(h, 41);
  r.sample(d, 3.0);
  r.reset();
  // Values are zeroed...
  EXPECT_EQ(r.counter(h), 0u);
  EXPECT_EQ(r.counter("warm.counter"), 0u);
  // ...and the handles keep working without re-interning.
  r.add(h, 7);
  r.sample(d, 5.0);
  EXPECT_EQ(r.counter("warm.counter"), 7u);
  ASSERT_NE(r.distribution("warm.dist"), nullptr);
  EXPECT_DOUBLE_EQ(r.distribution("warm.dist")->mean(), 5.0);
  EXPECT_EQ(r.distribution("warm.dist")->count(), 1u);
}

// Observable reset() semantics are unchanged by interning: a counter that
// was only ever touched before the reset must not reappear in reports.
TEST(StatRegistry, ResetHidesUntouchedCountersFromReports) {
  StatRegistry r;
  const CounterHandle pre = r.intern("only.pre_reset");
  const CounterHandle both = r.intern("touched.after");
  r.add(pre);
  r.add(both);
  r.reset();
  r.add(both);
  EXPECT_FALSE(r.has_counter("only.pre_reset"));
  EXPECT_TRUE(r.has_counter("touched.after"));
  const auto names = r.counter_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "touched.after");
  EXPECT_EQ(r.to_string().find("only.pre_reset"), std::string::npos);
  // An interned-but-never-added name is likewise invisible.
  (void)r.intern("never.added");
  EXPECT_FALSE(r.has_counter("never.added"));
}

}  // namespace
}  // namespace nbtinoc::sim
