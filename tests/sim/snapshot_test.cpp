// Unit tests of the snapshot codec: primitive round-trips, the frame
// (magic / version / digest) validation, truncation diagnostics, and the
// RNG / RunningStats helpers every layer builds on.

#include "nbtinoc/sim/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nbtinoc::sim {
namespace {

TEST(SnapshotCodec, PrimitivesRoundTrip) {
  SnapshotWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.b(true);
  w.b(false);
  w.f64(-0.12345678901234567);
  w.str("hello \0 world");  // literal truncates at NUL — still a valid string
  w.f64_vec({1.5, -2.5, std::numeric_limits<double>::infinity()});

  SnapshotReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.f64(), -0.12345678901234567);
  EXPECT_EQ(r.str(), "hello ");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.5, -2.5, std::numeric_limits<double>::infinity()}));
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(SnapshotCodec, DoublesRoundTripBitExactly) {
  // NaN payloads and signed zero must survive: duty accumulators and stats
  // mins/maxes carry exact IEEE bit patterns.
  SnapshotWriter w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(-0.0);
  SnapshotReader r(w.data());
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_TRUE(std::signbit(r.f64()));
}

TEST(SnapshotCodec, TruncationNamesOffsetAndField) {
  SnapshotWriter w;
  w.u32(7);
  SnapshotReader r(w.data());
  try {
    r.u64();
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("u64"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("offset 0"), std::string::npos) << e.what();
  }
}

TEST(SnapshotCodec, ExpectU64MismatchIsDescriptive) {
  SnapshotWriter w;
  w.u64(3);
  SnapshotReader r(w.data());
  try {
    r.expect_u64(5, "router count");
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("router count"), std::string::npos) << what;
    EXPECT_NE(what.find("3"), std::string::npos) << what;
    EXPECT_NE(what.find("5"), std::string::npos) << what;
  }
}

TEST(SnapshotCodec, TrailingBytesAreRejected) {
  SnapshotWriter w;
  w.u64(1);
  w.u8(9);
  SnapshotReader r(w.data());
  r.u64();
  EXPECT_FALSE(r.at_end());
  EXPECT_THROW(r.expect_end(), SnapshotError);
}

TEST(SnapshotFrame, RoundTripsDigestAndPayload) {
  SnapshotWriter payload;
  payload.u64(123);
  const std::string file = frame_snapshot("digest v1", payload.data());
  EXPECT_EQ(file.substr(0, kSnapshotMagic.size()), kSnapshotMagic);
  EXPECT_EQ(snapshot_digest(file), "digest v1");
  SnapshotReader r = open_snapshot(file, "digest v1");
  EXPECT_EQ(r.u64(), 123u);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(SnapshotFrame, RejectsBadMagicVersionAndDigest) {
  const std::string file = frame_snapshot("abc", "payload");

  EXPECT_THROW(open_snapshot("", "abc"), SnapshotError);
  try {
    open_snapshot("GARBAGE!\x01\x02 bytes", "abc");
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("NBTISNAP"), std::string::npos) << e.what();
  }

  std::string wrong_version = file;
  wrong_version[kSnapshotMagic.size()] = 0x2a;
  try {
    open_snapshot(wrong_version, "abc");
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version 42"), std::string::npos) << e.what();
  }

  try {
    open_snapshot(file, "different config");
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("abc"), std::string::npos) << what;
    EXPECT_NE(what.find("different config"), std::string::npos) << what;
  }
}

TEST(SnapshotHelpers, RngRoundTripPreservesStreamAndGaussianCache) {
  util::Xoshiro256 rng(12345);
  (void)rng.next_gaussian(0.0, 1.0);  // leave a cached Marsaglia spare behind

  SnapshotWriter w;
  save_rng(w, rng);
  util::Xoshiro256 copy(999);  // different seed: state must be fully overwritten
  SnapshotReader r(w.data());
  load_rng(r, copy);

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next(), copy.next());
    EXPECT_EQ(rng.next_gaussian(0.0, 1.0), copy.next_gaussian(0.0, 1.0));
  }
}

TEST(SnapshotHelpers, RunningStatsRoundTripIsExact) {
  util::RunningStats stats;
  for (double x : {1.0, -3.5, 7.25, 0.125}) stats.add(x);

  SnapshotWriter w;
  save_stats(w, stats);
  util::RunningStats copy;
  SnapshotReader r(w.data());
  load_stats(r, copy);

  EXPECT_EQ(copy.count(), stats.count());
  EXPECT_EQ(copy.mean(), stats.mean());
  EXPECT_EQ(copy.stddev_sample(), stats.stddev_sample());
  EXPECT_EQ(copy.sum(), stats.sum());
  EXPECT_EQ(copy.min(), stats.min());
  EXPECT_EQ(copy.max(), stats.max());

  // An empty bank round-trips its +/-inf sentinels bit-exactly too.
  util::RunningStats empty, empty_copy;
  SnapshotWriter w2;
  save_stats(w2, empty);
  SnapshotReader r2(w2.data());
  load_stats(r2, empty_copy);
  EXPECT_EQ(empty_copy.count(), 0u);
}

}  // namespace
}  // namespace nbtinoc::sim
