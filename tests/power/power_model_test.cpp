#include "nbtinoc/power/power_model.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::power {
namespace {

NocActivity sample_activity() {
  NocActivity a;
  a.window_seconds = 1e-4;
  a.buffer_writes = 1000;
  a.buffer_reads = 1000;
  a.crossbar_traversals = 1000;
  a.link_traversals = 1200;
  a.allocator_grants = 1100;
  a.powered_buffer_cycles = 50'000;
  a.gated_buffer_cycles = 50'000;
  a.bits_per_flit = 32;
  a.buffer_bits = 32 * 8;
  return a;
}

TEST(NocPowerModel, RejectsBadGeometry) {
  NocPowerModel m;
  NocActivity a = sample_activity();
  a.bits_per_flit = 0;
  EXPECT_THROW(m.evaluate(a), std::invalid_argument);
}

TEST(NocPowerModel, ZeroActivityZeroDynamic) {
  NocPowerModel m;
  NocActivity a;
  a.bits_per_flit = 32;
  a.buffer_bits = 256;
  const EnergyReport r = m.evaluate(a);
  EXPECT_DOUBLE_EQ(r.dynamic_pj(), 0.0);
  EXPECT_DOUBLE_EQ(r.buffer_leakage_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.leakage_saving(), 0.0);
}

TEST(NocPowerModel, DynamicScalesLinearlyWithTraffic) {
  NocPowerModel m;
  NocActivity a = sample_activity();
  const double base = m.evaluate(a).dynamic_pj();
  a.buffer_writes *= 2;
  a.buffer_reads *= 2;
  a.crossbar_traversals *= 2;
  a.link_traversals *= 2;
  a.allocator_grants *= 2;
  EXPECT_NEAR(m.evaluate(a).dynamic_pj(), 2.0 * base, 1e-9);
}

TEST(NocPowerModel, LeakageSavingMatchesGatedFraction) {
  NocPowerModel m;
  NocActivity a = sample_activity();
  // Half the buffer-cycles gated at 5% residual: saving = 0.5 * 0.95.
  const EnergyReport r = m.evaluate(a);
  EXPECT_NEAR(r.leakage_saving(), 0.5 * 0.95, 1e-9);
}

TEST(NocPowerModel, NoGatingMeansNoSaving) {
  NocPowerModel m;
  NocActivity a = sample_activity();
  a.gated_buffer_cycles = 0;
  const EnergyReport r = m.evaluate(a);
  EXPECT_NEAR(r.leakage_saving(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.buffer_leakage_pj, r.buffer_leakage_no_gating_pj);
}

TEST(NocPowerModel, FullGatingSavesAllButResidual) {
  NocPowerModel m;
  NocActivity a = sample_activity();
  a.powered_buffer_cycles = 0;
  const EnergyReport r = m.evaluate(a);
  EXPECT_NEAR(r.leakage_saving(), 0.95, 1e-9);
}

TEST(NocPowerModel, LeakageUnitsSane) {
  // One buffer of 256 bits powered for 1 ms at 0.035 uW/bit leaks
  // 256*0.035 uW * 1e-3 s = 8.96e-9 J = 8960 pJ... check the math path.
  NocPowerModel m;
  NocActivity a;
  a.bits_per_flit = 32;
  a.buffer_bits = 256;
  a.clock_period_s = 1e-9;
  a.powered_buffer_cycles = 1'000'000;  // 1 ms at 1 GHz
  const EnergyReport r = m.evaluate(a);
  EXPECT_NEAR(r.buffer_leakage_pj, 256 * 0.035 * 1e-3 * 1e6, 1.0);
}

TEST(NocPowerModel, TransitionOverheadChargesNetSaving) {
  NocPowerModel m;
  NocActivity a = sample_activity();
  a.gating_transitions = 0;
  const EnergyReport no_overhead = m.evaluate(a);
  EXPECT_DOUBLE_EQ(no_overhead.net_leakage_saving(), no_overhead.leakage_saving());

  a.gating_transitions = 1000;
  const EnergyReport with_overhead = m.evaluate(a);
  EXPECT_NEAR(with_overhead.gating_overhead_pj, 1500.0, 1e-9);
  EXPECT_LT(with_overhead.net_leakage_saving(), with_overhead.leakage_saving());
  EXPECT_GT(with_overhead.total_pj(), no_overhead.total_pj());
}

TEST(NocPowerModel, ExcessiveTogglingGoesNetNegative) {
  // Gating for a single cycle at a time costs more than it saves.
  NocPowerModel m;
  NocActivity a = sample_activity();
  a.powered_buffer_cycles = 99'000;
  a.gated_buffer_cycles = 1'000;
  a.gating_transitions = 1'000;  // every gated cycle its own transition
  const EnergyReport r = m.evaluate(a);
  EXPECT_LT(r.net_leakage_saving(), 0.0);
}

TEST(NocPowerModel, AveragePower) {
  EnergyReport r;
  r.buffer_dynamic_pj = 500.0;
  r.buffer_leakage_pj = 500.0;
  // 1000 pJ over 1 us = 1 mW.
  EXPECT_NEAR(r.average_power_mw(1e-6), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.average_power_mw(0.0), 0.0);
}

TEST(PowerParams, NodeScaling) {
  const PowerParams p32 = PowerParams::at_node(32);
  const PowerParams p45;
  const double s = 32.0 / 45.0;
  EXPECT_NEAR(p32.buffer_write_pj_per_bit, p45.buffer_write_pj_per_bit * s * s, 1e-12);
  EXPECT_NEAR(p32.buffer_leakage_uw_per_bit, p45.buffer_leakage_uw_per_bit * s, 1e-12);
}

TEST(EnergyReport, DescribeMentionsSaving) {
  NocPowerModel m;
  const std::string d = m.evaluate(sample_activity()).describe();
  EXPECT_NE(d.find("saving"), std::string::npos);
  EXPECT_NE(d.find("dynamic"), std::string::npos);
}

}  // namespace
}  // namespace nbtinoc::power
