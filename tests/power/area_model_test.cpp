#include "nbtinoc/power/area_model.hpp"

#include <gtest/gtest.h>

namespace nbtinoc::power {
namespace {

RouterGeometry paper_geometry() {
  // §III-D: 4 input ports, 4 VCs per port, 4 flits per buffer, 64b flits.
  return RouterGeometry{};
}

TEST(AreaModel, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_THROW(ceil_log2(0), std::invalid_argument);
}

TEST(AreaModel, RouterAreaIsPositiveAndComposed) {
  AreaModel model;
  const auto area = model.router_area(paper_geometry());
  EXPECT_GT(area.buffers_um2, 0.0);
  EXPECT_GT(area.crossbar_um2, 0.0);
  EXPECT_GT(area.vc_allocator_um2, 0.0);
  EXPECT_GT(area.sw_allocator_um2, 0.0);
  EXPECT_NEAR(area.total_um2,
              (area.buffers_um2 + area.crossbar_um2 + area.vc_allocator_um2 +
               area.sw_allocator_um2) *
                  1.15,
              1.0);
}

TEST(AreaModel, RejectsBadGeometry) {
  AreaModel model;
  RouterGeometry g;
  g.ports = 0;
  EXPECT_THROW(model.router_area(g), std::invalid_argument);
}

TEST(AreaModel, MoreVcsMoreBufferArea) {
  AreaModel model;
  RouterGeometry g2 = paper_geometry();
  g2.num_vcs = 2;
  RouterGeometry g4 = paper_geometry();
  EXPECT_LT(model.router_area(g2).buffers_um2, model.router_area(g4).buffers_um2);
  EXPECT_NEAR(model.router_area(g4).buffers_um2 / model.router_area(g2).buffers_um2, 2.0, 1e-9);
}

TEST(AreaModel, PaperSensorOverheadAbout3Percent) {
  // §III-D: 16 sensors = 4 ports x 4 VCs -> ~3.25% of the router.
  AreaModel model;
  const auto rep = model.overhead_report(paper_geometry());
  EXPECT_EQ(rep.num_sensors, 16);
  EXPECT_NEAR(rep.sensor_overhead_vs_router(), 0.0325, 0.005);
}

TEST(AreaModel, PaperControlLinkOverheadAbout4Percent) {
  // §III-D: Up_Down (log2(4)+1 = 3 wires) + Down_Up (2 wires) vs a 64b link
  // -> ~3.8%.
  AreaModel model;
  const auto rep = model.overhead_report(paper_geometry());
  EXPECT_EQ(rep.up_down_wires, 3);
  EXPECT_EQ(rep.down_up_wires, 2);
  EXPECT_NEAR(rep.link_overhead_vs_data_link(), 0.038, 0.005);
}

TEST(AreaModel, PaperTotalOverheadBelow4Percent) {
  AreaModel model;
  const auto rep = model.overhead_report(paper_geometry());
  EXPECT_LT(rep.total_overhead_vs_noc(), 0.04);
  EXPECT_GT(rep.total_overhead_vs_noc(), 0.02);  // and non-trivial
}

TEST(AreaModel, ControlLinkWiresScaleWithVcCount) {
  AreaModel model;
  RouterGeometry g8 = paper_geometry();
  g8.num_vcs = 8;
  const auto rep = model.overhead_report(g8);
  EXPECT_EQ(rep.up_down_wires, 4);  // log2(8)+1
  EXPECT_EQ(rep.down_up_wires, 3);
}

TEST(AreaModel, NodeScalingShrinksQuadratically) {
  const auto p45 = AreaParams{};
  const auto p32 = AreaParams::at_node(32);
  const double s2 = (32.0 / 45.0) * (32.0 / 45.0);
  EXPECT_NEAR(p32.flip_flop_um2, p45.flip_flop_um2 * s2, 1e-9);
  EXPECT_NEAR(p32.sensor_um2, p45.sensor_um2 * s2, 1e-9);
  // Tile length is a floorplan constant, not a device size.
  EXPECT_DOUBLE_EQ(p32.link_length_um, p45.link_length_um);

  AreaModel m45{p45};
  AreaModel m32{p32};
  EXPECT_LT(m32.router_area(paper_geometry()).total_um2,
            m45.router_area(paper_geometry()).total_um2);
}

TEST(AreaModel, OverheadRatiosStableAcrossNodes) {
  // Ratios survive the node shrink because sensors and routers scale alike.
  AreaModel m32{AreaParams::at_node(32)};
  const auto rep = m32.overhead_report(paper_geometry());
  EXPECT_NEAR(rep.sensor_overhead_vs_router(), 0.0325, 0.006);
}

TEST(AreaModel, LinkAreaLinearInWidth) {
  AreaModel model;
  EXPECT_NEAR(model.link_area_um2(128) / model.link_area_um2(64), 2.0, 1e-9);
}

TEST(AreaModel, DescribeMentionsEverything) {
  AreaModel model;
  const std::string d = model.overhead_report(paper_geometry()).describe();
  EXPECT_NE(d.find("NBTI sensors"), std::string::npos);
  EXPECT_NE(d.find("Control links"), std::string::npos);
  EXPECT_NE(d.find("% of router"), std::string::npos);
}

}  // namespace
}  // namespace nbtinoc::power
