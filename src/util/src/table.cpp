#include "nbtinoc/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nbtinoc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table: row has " + std::to_string(row.size()) + " cells, expected " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(row));
}

std::vector<std::size_t> Table::column_widths() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

namespace {
void append_padded(std::string& out, const std::string& cell, std::size_t width) {
  out += cell;
  out.append(width - cell.size(), ' ');
}
}  // namespace

std::string Table::to_markdown() const {
  const auto widths = column_widths();
  std::string out;
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += ' ';
    append_padded(out, headers_[c], widths[c]);
    out += " |";
  }
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) {
    out += '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      append_padded(out, row[c], widths[c]);
      out += " |";
    }
    out += '\n';
  }
  return out;
}

std::string Table::to_text() const {
  const auto widths = column_widths();
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    append_padded(out, headers_[c], widths[c]);
    if (c + 1 < headers_.size()) out += "  ";
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c], '-');
    if (c + 1 < headers_.size()) out += "  ";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      append_padded(out, row[c], widths[c]);
      if (c + 1 < row.size()) out += "  ";
    }
    out += '\n';
  }
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += csv_escape(headers_[c]);
    if (c + 1 < headers_.size()) out += ',';
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += csv_escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  }
  return out;
}

void Table::print(std::ostream& os) const { os << to_markdown(); }

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double percent, int decimals) {
  return format_double(percent, decimals) + "%";
}

}  // namespace nbtinoc::util
