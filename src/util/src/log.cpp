#include "nbtinoc/util/log.hpp"

#include <atomic>
#include <cctype>
#include <iostream>

namespace nbtinoc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  std::cerr << '[' << to_string(level) << "] " << component << ": " << message << '\n';
}

}  // namespace nbtinoc::util
