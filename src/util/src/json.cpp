#include "nbtinoc/util/json.hpp"

#include <cstdio>
#include <stdexcept>

namespace nbtinoc::util {

std::string JsonWriter::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == 'o')
    throw std::logic_error("JsonWriter: value emitted where a key is expected");
  if (needs_comma_) out_ += ',';
  if (!stack_.empty() && stack_.back() == 'v') stack_.back() = 'o';  // value consumed the key
  started_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('o');
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'o')
    throw std::logic_error("JsonWriter: end_object out of place");
  stack_.pop_back();
  out_ += '}';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('a');
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a')
    throw std::logic_error("JsonWriter: end_array out of place");
  stack_.pop_back();
  out_ += ']';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != 'o')
    throw std::logic_error("JsonWriter: key outside of object");
  if (needs_comma_) out_ += ',';
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  needs_comma_ = false;
  stack_.back() = 'v';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  before_value();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) { return value(std::string(text)); }

JsonWriter& JsonWriter::value(double number) {
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  out_ += buf;
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  before_value();
  out_ += std::to_string(number);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  needs_comma_ = true;
  return *this;
}

}  // namespace nbtinoc::util
