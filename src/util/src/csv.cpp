#include "nbtinoc/util/csv.hpp"

#include <stdexcept>

namespace nbtinoc::util {

namespace {
bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string quoted(const std::string& cell) {
  if (!needs_quoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path), path_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_comment(const std::string& text) { out_ << "# " << text << '\n'; }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << quoted(cells[i]);
    if (i + 1 < cells.size()) out_ << ',';
  }
  out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  cells.push_back(std::move(current));
  return cells;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace nbtinoc::util
