#include "nbtinoc/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nbtinoc::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance_population() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::variance_sample() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev_population() const { return std::sqrt(variance_population()); }

double RunningStats::stddev_sample() const { return std::sqrt(variance_sample()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  bin_width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<long long>(std::floor((x - lo_) / bin_width_));
  idx = std::clamp<long long>(idx, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::percentile(double fraction) const {
  if (total_ == 0) return lo_;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const double target = fraction * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within = counts_[i] ? (target - cumulative) / static_cast<double>(counts_[i]) : 0.0;
      return lo_ + (static_cast<double>(i) + within) * bin_width_;
    }
    cumulative = next;
  }
  return hi_;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double sample_stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double accum = 0.0;
  for (double x : xs) accum += (x - m) * (x - m);
  return std::sqrt(accum / static_cast<double>(xs.size() - 1));
}

}  // namespace nbtinoc::util
