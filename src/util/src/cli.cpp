#include "nbtinoc/util/cli.hpp"

#include <cstdlib>

namespace nbtinoc::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      flags_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is itself a flag or missing.
    if (i + 1 < argc) {
      std::string next = argv[i + 1];
      if (next.rfind("--", 0) != 0) {
        flags_[name] = next;
        ++i;
        continue;
      }
    }
    flags_[name] = "";
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) != 0; }

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name, const std::string& fallback) const {
  const auto v = get(name);
  return v ? *v : fallback;
}

long long CliArgs::get_int_or(const std::string& name, long long fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double CliArgs::get_double_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool CliArgs::get_bool_or(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (v->empty()) return true;  // bare --flag
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

}  // namespace nbtinoc::util
