#include "nbtinoc/util/properties.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nbtinoc/util/strings.hpp"

namespace nbtinoc::util {

Properties parse_properties(const std::string& text) {
  Properties props;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos)
      throw std::runtime_error("properties: line " + std::to_string(line_no) +
                               " is not 'key = value'");
    const std::string key{trim(trimmed.substr(0, eq))};
    const std::string value{trim(trimmed.substr(eq + 1))};
    if (key.empty())
      throw std::runtime_error("properties: empty key on line " + std::to_string(line_no));
    props[key] = value;
  }
  return props;
}

Properties load_properties(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_properties: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_properties(buffer.str());
}

std::string get_or(const Properties& props, const std::string& key, const std::string& fallback) {
  const auto it = props.find(key);
  return it == props.end() ? fallback : it->second;
}

long long get_int_or(const Properties& props, const std::string& key, long long fallback) {
  const auto it = props.find(key);
  return it == props.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double get_double_or(const Properties& props, const std::string& key, double fallback) {
  const auto it = props.find(key);
  return it == props.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool get_bool_or(const Properties& props, const std::string& key, bool fallback) {
  const auto it = props.find(key);
  if (it == props.end()) return fallback;
  const std::string v = to_lower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace nbtinoc::util
