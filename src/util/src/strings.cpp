#include "nbtinoc/util/strings.hpp"

#include <cctype>

namespace nbtinoc::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    out += parts[i];
    if (i + 1 < parts.size()) out += sep;
  }
  return out;
}

}  // namespace nbtinoc::util
