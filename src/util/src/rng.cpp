#include "nbtinoc/util/rng.hpp"

#include <cmath>

namespace nbtinoc::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

std::uint64_t seed_from_string(std::string_view text) {
  // FNV-1a 64-bit over the bytes, then one SplitMix64 round to decorrelate
  // similar labels ("inj0.10" vs "inj0.20").
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return SplitMix64(hash).next();
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zero outputs in a row from any seed, so no fixup is needed, but guard
  // anyway for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling on the top bits: unbiased and fast for small bounds.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

bool Xoshiro256::next_bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
  has_cached_gaussian_ = false;
}

}  // namespace nbtinoc::util
