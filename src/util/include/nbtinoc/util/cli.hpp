#pragma once
// Tiny command-line flag parser shared by the benches and examples.
// Supports "--name value", "--name=value" and boolean "--name" forms.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nbtinoc::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if "--name" appeared at all (with or without a value).
  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& fallback) const;
  long long get_int_or(const std::string& name, long long fallback) const;
  double get_double_or(const std::string& name, double fallback) const;
  bool get_bool_or(const std::string& name, bool fallback) const;

  /// Non-flag arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace nbtinoc::util
