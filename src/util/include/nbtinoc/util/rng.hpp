#pragma once
// Deterministic, seed-stable random number generation.
//
// The reproduction requires that a given {architecture, injection-rate}
// scenario samples exactly the same process-variation Vth vector for every
// policy (paper §IV-A). std::mt19937/std::normal_distribution are not
// guaranteed bit-stable across standard library implementations, so we carry
// our own generator (xoshiro256**) and our own Gaussian (Marsaglia polar),
// both fully specified here.

#include <array>
#include <cstdint>
#include <string_view>

namespace nbtinoc::util {

/// SplitMix64 — used to expand a single 64-bit seed into generator state and
/// to derive stream seeds from strings (see seed_from_string).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Deterministically maps a scenario label (e.g. "16core-inj0.30-pv") to a
/// 64-bit seed via FNV-1a followed by a SplitMix64 finalizer. Used so the
/// same scenario always sees the same silicon, regardless of policy.
std::uint64_t seed_from_string(std::string_view text);

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// with rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double next_gaussian();

  /// Normal with explicit mean/stddev.
  double next_gaussian(double mean, double stddev) { return mean + stddev * next_gaussian(); }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bernoulli(double p);

  /// Jump function: advances 2^128 steps, for deriving independent streams.
  void jump();

  /// Complete generator state, exposed for checkpoint/restore. The cached
  /// Marsaglia spare must round-trip too: dropping it would shift every
  /// subsequent Gaussian draw by one.
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State state() const { return {s_, has_cached_gaussian_, cached_gaussian_}; }
  void set_state(const State& st) {
    s_ = st.s;
    has_cached_gaussian_ = st.has_cached_gaussian;
    cached_gaussian_ = st.cached_gaussian;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace nbtinoc::util
