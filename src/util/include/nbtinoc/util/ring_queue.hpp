#pragma once
// Growable ring-buffer FIFO with pooled storage.
//
// std::deque allocates and frees fixed-size chunks as elements churn through
// it, which puts an allocator round-trip on every simulated link under
// steady traffic. RingQueue grows geometrically to the high-water mark of
// its queue and then never releases storage: past that point push/pop are
// plain index arithmetic, so steady-state operation performs zero heap
// allocation. clear() keeps the pooled capacity for the same reason.

#include <cstddef>
#include <utility>
#include <vector>

namespace nbtinoc::util {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;
  explicit RingQueue(std::size_t initial_capacity) { reserve(initial_capacity); }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Oldest element (FIFO front). Precondition: !empty().
  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  /// i-th element from the front, 0 <= i < size(). Queue (FIFO) order.
  T& operator[](std::size_t i) { return slots_[index(i)]; }
  const T& operator[](std::size_t i) const { return slots_[index(i)]; }

  void push_back(const T& value) {
    grow_if_full();
    slots_[index(count_)] = value;
    ++count_;
  }
  void push_back(T&& value) {
    grow_if_full();
    slots_[index(count_)] = std::move(value);
    ++count_;
  }
  template <typename... Args>
  void emplace_back(Args&&... args) {
    grow_if_full();
    slots_[index(count_)] = T{std::forward<Args>(args)...};
    ++count_;
  }

  /// Removes the front element. Precondition: !empty(). The slot keeps its
  /// (moved-from) object: storage is pooled, never destroyed per pop.
  void pop_front() {
    head_ = next(head_);
    --count_;
  }

  /// Removes and returns the front element. Precondition: !empty().
  T take_front() {
    T value = std::move(slots_[head_]);
    pop_front();
    return value;
  }

  /// Drops every element; pooled capacity is retained.
  void clear() {
    head_ = 0;
    count_ = 0;
  }

  /// Ensures capacity for at least `n` elements without further allocation.
  void reserve(std::size_t n) {
    if (n > slots_.size()) regrow(n);
  }

 private:
  std::size_t index(std::size_t i) const {
    const std::size_t raw = head_ + i;
    return raw < slots_.size() ? raw : raw - slots_.size();
  }
  std::size_t next(std::size_t i) const { return i + 1 < slots_.size() ? i + 1 : 0; }

  void grow_if_full() {
    if (count_ == slots_.size()) regrow(slots_.size() < 4 ? 8 : slots_.size() * 2);
  }

  void regrow(std::size_t new_capacity) {
    std::vector<T> grown(new_capacity);
    for (std::size_t i = 0; i < count_; ++i) grown[i] = std::move(slots_[index(i)]);
    slots_ = std::move(grown);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace nbtinoc::util
