#pragma once
// Markdown-style table rendering for the experiment benches. Every bench
// prints rows that mirror the paper's tables; this keeps the formatting in
// one place and aligned.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nbtinoc::util {

/// A simple column-aligned table. Build with headers, push rows of strings
/// (helpers format doubles/percentages), then print as GitHub markdown or
/// plain aligned text.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t columns() const { return headers_.size(); }
  std::size_t rows() const { return rows_.size(); }

  /// Adds one row. Throws std::invalid_argument on column-count mismatch.
  void add_row(std::vector<std::string> row);

  /// Renders as a GitHub-markdown table with padded columns.
  std::string to_markdown() const;
  /// Renders as plain aligned text (two-space gutters, underlined header).
  std::string to_text() const;
  /// Renders as CSV (no padding, comma-escaped).
  std::string to_csv() const;

  void print(std::ostream& os) const;

  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::vector<std::string>>& row_data() const { return rows_; }

 private:
  std::vector<std::size_t> column_widths() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals ("12.34").
std::string format_double(double value, int decimals = 2);
/// Formats a ratio in [0,1]-free percent units with one decimal and a '%'
/// suffix ("26.6%"). The input is already in percent (paper convention).
std::string format_percent(double percent, int decimals = 1);

}  // namespace nbtinoc::util
