#pragma once
// Minimal streaming JSON writer (no DOM): enough to export experiment
// results for downstream plotting/analysis tooling. Handles nesting,
// comma placement and string escaping; numbers are emitted with enough
// precision to round-trip doubles.

#include <string>
#include <vector>

namespace nbtinoc::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits a key inside an object; must be followed by a value/container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Convenience: key + value.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// The document so far. Valid once all containers are closed.
  const std::string& str() const { return out_; }
  bool complete() const { return stack_.empty() && started_; }

  static std::string escape(const std::string& text);

 private:
  void before_value();

  std::string out_;
  /// 'o' = in object expecting key, 'v' = in object expecting value,
  /// 'a' = in array.
  std::vector<char> stack_;
  bool needs_comma_ = false;
  bool started_ = false;
};

}  // namespace nbtinoc::util
