#pragma once
// Minimal leveled logging for the nbtinoc library.
//
// The simulator is deterministic and single-threaded, so logging is a thin
// formatted wrapper around a stream with a global severity threshold. Debug
// logging in the per-cycle hot path is compiled through a macro so a release
// build pays only a branch on the threshold.

#include <sstream>
#include <string>
#include <string_view>

namespace nbtinoc::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the printable name of a level ("TRACE", "DEBUG", ...).
std::string_view to_string(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns kInfo for unrecognized names.
LogLevel parse_log_level(std::string_view name);

/// Global severity threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr: "[LEVEL] component: message".
void log_message(LogLevel level, std::string_view component, std::string_view message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace nbtinoc::util

// Stream-style logging that evaluates its arguments only when enabled:
//   NBTINOC_LOG(kDebug, "router") << "cycle " << cycle << " stalled";
#define NBTINOC_LOG(level, component)                                      \
  if (::nbtinoc::util::LogLevel::level < ::nbtinoc::util::log_level()) {  \
  } else                                                                   \
    ::nbtinoc::util::detail::LogLine(::nbtinoc::util::LogLevel::level, (component))
