#pragma once
// Small string helpers (no locale surprises, ASCII-only semantics).

#include <string>
#include <string_view>
#include <vector>

namespace nbtinoc::util {

std::vector<std::string> split(std::string_view text, char sep);
std::string_view trim(std::string_view text);
std::string to_lower(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace nbtinoc::util
