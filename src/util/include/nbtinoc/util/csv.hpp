#pragma once
// CSV writer/reader used to persist experiment results and traffic traces.
// The dialect is RFC-4180-ish: comma separator, double-quote escaping,
// '\n' record terminator; a leading '#' line is treated as a comment when
// reading.

#include <fstream>
#include <string>
#include <vector>

namespace nbtinoc::util {

/// Streams rows to a file. Throws std::runtime_error if the file cannot be
/// opened; flushes on destruction.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_comment(const std::string& text);
  void write_row(const std::vector<std::string>& cells);
  void flush();

 private:
  std::ofstream out_;
  std::string path_;
};

/// Parses one CSV line honoring quotes. Exposed for testing.
std::vector<std::string> parse_csv_line(const std::string& line);

/// Reads a whole CSV file, skipping '#' comment lines and empty lines.
/// Throws std::runtime_error if the file cannot be opened.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

}  // namespace nbtinoc::util
