#pragma once
// Streaming summary statistics and small histogram helpers used by the
// simulator's stat registry and by the experiment benches (Table IV reports
// avg/std over 10 iterations per VC).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace nbtinoc::util {

/// Welford-style running mean/variance with min/max tracking.
/// Numerically stable for long accumulations (30e6-cycle simulations).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (divide by n). Returns 0 for n < 1.
  double variance_population() const;
  /// Sample variance (divide by n-1). Returns 0 for n < 2.
  double variance_sample() const;
  double stddev_population() const;
  double stddev_sample() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Raw accumulator state for checkpoint/restore. min/max carry their
  /// sentinel infinities while empty, so the round-trip must go through the
  /// raw fields, not the public (sanitised) accessors.
  struct State {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  State state() const { return {count_, mean_, m2_, sum_, min_, max_}; }
  void set_state(const State& st) {
    count_ = st.count;
    mean_ = st.mean;
    m2_ = st.m2;
    sum_ = st.sum;
    min_ = st.min;
    max_ = st.max;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used for latency distributions in the performance benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Value below which the given fraction (0..1) of samples fall, linearly
  /// interpolated within the containing bin.
  double percentile(double fraction) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs);
/// Sample standard deviation of a vector; 0 for fewer than two samples.
double sample_stddev_of(const std::vector<double>& xs);

}  // namespace nbtinoc::util
