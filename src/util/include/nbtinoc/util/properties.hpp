#pragma once
// Tiny "key = value" properties format for scenario files:
//   # comment
//   mesh_width = 4
//   injection_rate = 0.2
// Keys and values are trimmed; later duplicates win; '#' starts a comment
// anywhere on a line.

#include <map>
#include <string>

namespace nbtinoc::util {

using Properties = std::map<std::string, std::string>;

/// Parses properties from text. Throws std::runtime_error on a line that is
/// neither empty, a comment, nor key=value.
Properties parse_properties(const std::string& text);

/// Loads a properties file. Throws std::runtime_error if unreadable.
Properties load_properties(const std::string& path);

/// Typed getters with defaults.
std::string get_or(const Properties& props, const std::string& key, const std::string& fallback);
long long get_int_or(const Properties& props, const std::string& key, long long fallback);
double get_double_or(const Properties& props, const std::string& key, double fallback);
bool get_bool_or(const Properties& props, const std::string& key, bool fallback);

}  // namespace nbtinoc::util
