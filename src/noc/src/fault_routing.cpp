#include "nbtinoc/noc/fault_routing.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "nbtinoc/noc/topology.hpp"

namespace nbtinoc::noc {

// --- DegradedRouting ---------------------------------------------------------

DegradedRouting::DegradedRouting(int num_routers, std::vector<NodeId> alive_neighbor,
                                 std::vector<std::uint8_t> alive)
    : num_routers_(num_routers),
      nbr_(std::move(alive_neighbor)),
      alive_(std::move(alive)),
      order_(static_cast<std::size_t>(num_routers), kUnreachable) {
  if (nbr_.size() != static_cast<std::size_t>(num_routers) * 4 ||
      alive_.size() != static_cast<std::size_t>(num_routers))
    throw std::invalid_argument("DegradedRouting: adjacency/alive size mismatch");

  // BFS rank per component: seeds in ascending id, nodes ranked by
  // (BFS depth, id) so the orientation is a pure function of the survivor
  // graph — identical across scheduler modes and worker counts.
  const std::size_t n = static_cast<std::size_t>(num_routers_);
  std::vector<int> depth(n, -1);
  std::vector<NodeId> queue;
  queue.reserve(n);
  int components = 0;
  int next_order = 0;
  for (NodeId seed = 0; seed < num_routers_; ++seed) {
    if (alive_[static_cast<std::size_t>(seed)] == 0 ||
        depth[static_cast<std::size_t>(seed)] >= 0)
      continue;
    ++components;
    const std::size_t first = queue.size();
    depth[static_cast<std::size_t>(seed)] = 0;
    queue.push_back(seed);
    for (std::size_t head = first; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (int p = 0; p < 4; ++p) {
        const NodeId v = nbr_[static_cast<std::size_t>(u) * 4 + static_cast<std::size_t>(p)];
        if (v == kInvalidNode || depth[static_cast<std::size_t>(v)] >= 0) continue;
        depth[static_cast<std::size_t>(v)] = depth[static_cast<std::size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
    std::sort(queue.begin() + static_cast<std::ptrdiff_t>(first), queue.end(),
              [&](NodeId a, NodeId b) {
                const int da = depth[static_cast<std::size_t>(a)];
                const int db = depth[static_cast<std::size_t>(b)];
                return da != db ? da < db : a < b;
              });
    for (std::size_t i = first; i < queue.size(); ++i)
      order_[static_cast<std::size_t>(queue[i])] = next_order++;
  }
  connected_ = components <= 1;

  // Per-destination tables. down_dist by reverse-down BFS from d (u joins
  // D(d) through any neighbor it can step *down* to); dist by a sweep in
  // increasing order rank — an up move's target always ranks lower, so its
  // dist is final by the time it is read.
  down_dist_.assign(n * n, kUnreachable);
  dist_.assign(n * n, kUnreachable);
  std::vector<NodeId> by_rank = queue;  // all alive routers, rank-sorted per component
  std::sort(by_rank.begin(), by_rank.end(),
            [&](NodeId a, NodeId b) { return order(a) < order(b); });
  for (NodeId d = 0; d < num_routers_; ++d) {
    if (alive_[static_cast<std::size_t>(d)] == 0) continue;
    int* dd = &down_dist_[static_cast<std::size_t>(d) * n];
    int* ds = &dist_[static_cast<std::size_t>(d) * n];
    dd[d] = 0;
    queue.clear();
    queue.push_back(d);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId cur = queue[head];
      for (int p = 0; p < 4; ++p) {
        const NodeId u = nbr_[static_cast<std::size_t>(cur) * 4 + static_cast<std::size_t>(p)];
        if (u == kInvalidNode || dd[u] != kUnreachable || !move_is_down(u, cur)) continue;
        dd[u] = dd[cur] + 1;
        queue.push_back(u);
      }
    }
    for (const NodeId r : by_rank) {
      if (dd[r] < kUnreachable) {
        ds[r] = dd[r];
        continue;
      }
      int best = kUnreachable;
      for (int p = 0; p < 4; ++p) {
        const NodeId v = nbr_[static_cast<std::size_t>(r) * 4 + static_cast<std::size_t>(p)];
        if (v == kInvalidNode) continue;
        // Legal continuations from the up phase: another up hop, or a down
        // hop straight into d's down region.
        const int through = move_is_up(r, v) ? ds[v] : dd[v];
        best = std::min(best, through);
      }
      if (best < kUnreachable) ds[r] = best + 1;
    }
  }
}

// --- turn models -------------------------------------------------------------

AdaptiveCandidates turn_model_candidates(RoutingAlgo algo, Coord cur, Coord src, Coord dst) {
  AdaptiveCandidates out;
  const int dx = dst.x - cur.x;
  const int dy = dst.y - cur.y;
  const Dir vertical = dy > 0 ? Dir::South : Dir::North;
  if (algo == RoutingAlgo::kWestFirst) {
    if (dx < 0) {
      out.add(Dir::West);  // all west hops first — the model's one restriction
      return out;
    }
    if (dy != 0) out.add(vertical);
    if (dx > 0) out.add(Dir::East);
    return out;
  }
  if (algo != RoutingAlgo::kOddEven)
    throw std::invalid_argument("turn_model_candidates: not an adaptive routing mode");
  // Chiu's ROUTE: even columns ban turning north/south off an eastbound
  // packet, odd columns ban turning west off a vertical one.
  const bool cur_even = cur.x % 2 == 0;
  if (dx == 0) {
    if (dy != 0) out.add(vertical);
    return out;
  }
  if (dx > 0) {
    if (dy == 0) {
      out.add(Dir::East);
      return out;
    }
    if (!cur_even || cur.x == src.x) out.add(vertical);
    if (dst.x % 2 != 0 || dx != 1) out.add(Dir::East);
    return out;
  }
  if (dy != 0 && cur_even) out.add(vertical);
  out.add(Dir::West);
  return out;
}

bool turn_allowed(RoutingAlgo algo, Dir from_travel, Dir to_travel, int x) {
  if (to_travel == opposite(from_travel)) return false;  // no 180-degree turns
  if (from_travel == to_travel) return true;
  const bool from_x = from_travel == Dir::East || from_travel == Dir::West;
  const bool to_x = to_travel == Dir::East || to_travel == Dir::West;
  switch (algo) {
    case RoutingAlgo::kXY:
      return from_x && !to_x;  // only X-to-Y turns
    case RoutingAlgo::kYX:
      return !from_x && to_x;
    case RoutingAlgo::kWestFirst:
      // West comes first or not at all: nothing may turn *into* West.
      return to_travel != Dir::West;
    case RoutingAlgo::kOddEven:
      if (from_travel == Dir::East && !to_x) return x % 2 != 0;  // EN/ES: odd columns only
      if (!from_x && to_travel == Dir::West) return x % 2 == 0;  // NW/SW: even columns only
      return true;
  }
  return false;
}

// --- CDG audit ---------------------------------------------------------------

namespace {

/// One CDG node per (router, input port, VC class); input port 4 stands for
/// every NI-facing port (their VCs share one dependency role).
struct CdgGraph {
  int classes = 1;
  std::vector<std::vector<int>> adj;

  explicit CdgGraph(int routers, int classes_in)
      : classes(classes_in),
        adj(static_cast<std::size_t>(routers) * 5 * static_cast<std::size_t>(classes_in)) {}

  int node(NodeId router, int in_port, int cls) const {
    const int p = std::min(in_port, 4);
    return (static_cast<int>(router) * 5 + p) * classes + cls;
  }
  void add_edge(int from, int to) { adj[static_cast<std::size_t>(from)].push_back(to); }

  /// Iterative DFS three-coloring; true on a back edge.
  bool has_cycle(int* cycle_node) const {
    std::vector<std::int8_t> color(adj.size(), 0);
    std::vector<std::pair<int, std::size_t>> stack;
    for (int start = 0; start < static_cast<int>(adj.size()); ++start) {
      if (color[static_cast<std::size_t>(start)] != 0) continue;
      stack.emplace_back(start, 0);
      color[static_cast<std::size_t>(start)] = 1;
      while (!stack.empty()) {
        auto& [u, next] = stack.back();
        if (next < adj[static_cast<std::size_t>(u)].size()) {
          const int v = adj[static_cast<std::size_t>(u)][next++];
          if (color[static_cast<std::size_t>(v)] == 1) {
            *cycle_node = v;
            return true;
          }
          if (color[static_cast<std::size_t>(v)] == 0) {
            color[static_cast<std::size_t>(v)] = 1;
            stack.emplace_back(v, 0);
          }
        } else {
          color[static_cast<std::size_t>(u)] = 2;
          stack.pop_back();
        }
      }
    }
    return false;
  }
};

std::string cdg_node_name(const Topology& topo, int node) {
  const int classes = topo.num_vc_classes();
  const int cls = node % classes;
  const int port = (node / classes) % 5;
  const NodeId router = node / classes / 5;
  std::ostringstream os;
  os << "router " << router << " in-port "
     << (port >= 4 ? std::string("local") : to_string(static_cast<Dir>(port))) << " class " << cls;
  return os.str();
}

/// Exact route-table walk edges: for every (src router, dst terminal) the
/// packet's chain of downstream VCs, each depending on the next.
void add_table_edges(const Topology& topo, CdgGraph* g) {
  const int routers = topo.num_routers();
  const int terminals = topo.num_terminals();
  for (NodeId r = 0; r < routers; ++r) {
    if (!topo.router_alive(r)) continue;
    for (NodeId t = 0; t < terminals; ++t) {
      const RouteEntry here = topo.route(r, t);
      if (!here.reachable() || is_local(here.dir())) continue;
      const NodeId v = topo.neighbor(r, here.dir());
      const RouteEntry next = topo.route(v, t);
      if (!next.reachable() || is_local(next.dir())) continue;
      const NodeId w = topo.neighbor(v, next.dir());
      g->add_edge(g->node(v, static_cast<int>(opposite(here.dir())), here.vc_class),
                  g->node(w, static_cast<int>(opposite(next.dir())), next.vc_class));
    }
  }
}

/// Destination-free superset of the healthy adaptive class's moves: every
/// turn the model permits, in the adaptive class only.
void add_turn_edges(const Topology& topo, CdgGraph* g) {
  const NocConfig& config = topo.config();
  const int cls = 1;
  for (NodeId r = 0; r < topo.num_routers(); ++r) {
    const int x = coord_of(r, config.width).x;
    for (int out = 0; out < 4; ++out) {
      const NodeId v = topo.neighbor(r, static_cast<Dir>(out));
      if (v == kInvalidNode) continue;
      const int to = g->node(v, static_cast<int>(opposite(static_cast<Dir>(out))), cls);
      // Injected heads may leave through any port.
      g->add_edge(g->node(r, 4, cls), to);
      for (int in = 0; in < 4; ++in) {
        if (topo.neighbor(r, static_cast<Dir>(in)) == kInvalidNode) continue;
        if (!turn_allowed(config.routing, opposite(static_cast<Dir>(in)),
                          static_cast<Dir>(out), x))
          continue;
        g->add_edge(g->node(r, in, cls), to);
      }
    }
  }
}

/// Destination-free superset of every move on a degraded fabric: a packet
/// that arrived on a down link may only continue down; anything else may
/// move freely. Classes do not constrain the relation (the rank argument in
/// the header is class-independent), so edges are added for every class.
void add_orientation_edges(const Topology& topo, CdgGraph* g) {
  const DegradedRouting& dr = *topo.degraded_routing();
  for (NodeId r = 0; r < topo.num_routers(); ++r) {
    if (!topo.router_alive(r)) continue;
    for (int out = 0; out < 4; ++out) {
      const NodeId v = topo.alive_neighbor(r, static_cast<Dir>(out));
      if (v == kInvalidNode) continue;
      const bool out_down = dr.move_is_down(r, v);
      for (int cls_out = 0; cls_out < g->classes; ++cls_out) {
        const int to = g->node(v, static_cast<int>(opposite(static_cast<Dir>(out))), cls_out);
        for (int cls_in = 0; cls_in < g->classes; ++cls_in) {
          g->add_edge(g->node(r, 4, cls_in), to);
          for (int in = 0; in < 4; ++in) {
            const NodeId u = topo.alive_neighbor(r, static_cast<Dir>(in));
            if (u == kInvalidNode) continue;
            if (dr.move_is_down(u, r) && !out_down) continue;  // down phase is final
            g->add_edge(g->node(r, in, cls_in), to);
          }
        }
      }
    }
  }
}

}  // namespace

bool route_cdg_acyclic(const Topology& topo, std::string* diag) {
  CdgGraph g(topo.num_routers(), topo.num_vc_classes());
  add_table_edges(topo, &g);
  if (topo.degraded())
    add_orientation_edges(topo, &g);
  else if (topo.config().adaptive_routing())
    add_turn_edges(topo, &g);
  int cycle_node = 0;
  if (!g.has_cycle(&cycle_node)) return true;
  if (diag != nullptr)
    *diag = "channel-dependency cycle through " + cdg_node_name(topo, cycle_node);
  return false;
}

bool route_walks_terminate(const Topology& topo, std::string* diag) {
  const int routers = topo.num_routers();
  const int terminals = topo.num_terminals();
  // Up-phase + down-phase are each simple in the order ranking; 2x routers
  // (plus slack) bounds every legal walk.
  const int max_hops = 2 * routers + 4;
  for (NodeId r = 0; r < routers; ++r) {
    if (!topo.router_alive(r)) continue;
    for (NodeId t = 0; t < terminals; ++t) {
      if (!topo.terminal_alive(t)) continue;
      NodeId at = r;
      bool ok = false;
      if (!topo.route(r, t).reachable()) continue;  // disconnected pair: allowed to have no route
      for (int hop = 0; hop <= max_hops; ++hop) {
        const RouteEntry e = topo.route(at, t);
        if (!e.reachable()) break;
        if (is_local(e.dir())) {
          ok = at == topo.router_of(t);
          break;
        }
        const NodeId next = topo.degraded() ? topo.alive_neighbor(at, e.dir())
                                            : topo.neighbor(at, e.dir());
        if (next == kInvalidNode) break;
        at = next;
      }
      if (!ok) {
        if (diag != nullptr) {
          std::ostringstream os;
          os << "route walk router " << r << " -> terminal " << t << " stalls at router " << at;
          *diag = os.str();
        }
        return false;
      }
    }
  }
  return true;
}

std::string describe_routes(const Topology& topo) {
  std::ostringstream os;
  const int routers = topo.num_routers();
  const int terminals = topo.num_terminals();
  os << "route table: " << routers << " routers x " << terminals << " terminals, "
     << topo.num_vc_classes() << " VC class(es), " << to_string(topo.config().routing)
     << " routing" << (topo.degraded() ? ", DEGRADED (up*/down* regenerated)" : ", healthy")
     << "\n";
  for (NodeId r = 0; r < routers; ++r) {
    os << "  r" << r;
    if (!topo.router_alive(r)) {
      os << ": DEAD\n";
      continue;
    }
    os << ":";
    for (NodeId t = 0; t < terminals; ++t) {
      const RouteEntry e = topo.route(r, t);
      os << " t" << t << "=";
      if (!e.reachable())
        os << "-";
      else if (is_local(e.dir()))
        os << "L";
      else
        os << dir_letter(e.dir()) << "/" << e.vc_class;
    }
    os << "\n";
  }
  // Per-link view: which classes the table sends over each directed link,
  // and the up*/down* orientation once degraded — the CDG edge inventory.
  os << "links:\n";
  for (NodeId r = 0; r < routers; ++r) {
    for (int p = 0; p < 4; ++p) {
      const Dir d = static_cast<Dir>(p);
      const NodeId v = topo.neighbor(r, d);
      if (v == kInvalidNode) continue;
      os << "  r" << r << " -" << dir_letter(d) << "-> r" << v;
      if (topo.degraded() && topo.alive_neighbor(r, d) == kInvalidNode) {
        os << " DEAD\n";
        continue;
      }
      bool used[2] = {false, false};
      for (NodeId t = 0; t < terminals; ++t) {
        const RouteEntry e = topo.route(r, t);
        if (e.reachable() && e.dir() == d) used[e.vc_class != 0 ? 1 : 0] = true;
      }
      os << " classes{";
      bool first = true;
      for (int c = 0; c < 2; ++c) {
        if (!used[c]) continue;
        os << (first ? "" : ",") << c;
        first = false;
      }
      os << "}";
      if (topo.degraded()) {
        const DegradedRouting& dr = *topo.degraded_routing();
        os << (dr.move_is_down(r, v) ? " down" : " up");
      }
      os << "\n";
    }
  }
  std::string diag;
  os << "cdg: " << (route_cdg_acyclic(topo, &diag) ? "acyclic" : ("CYCLIC — " + diag)) << "\n";
  os << "walks: " << (route_walks_terminate(topo, &diag) ? "terminate" : ("STUCK — " + diag))
     << "\n";
  return os.str();
}

}  // namespace nbtinoc::noc
