#include "nbtinoc/noc/types.hpp"

#include <stdexcept>

namespace nbtinoc::noc {

Dir opposite(Dir d) {
  switch (d) {
    case Dir::North:
      return Dir::South;
    case Dir::South:
      return Dir::North;
    case Dir::East:
      return Dir::West;
    case Dir::West:
      return Dir::East;
    default:
      break;
  }
  if (is_local(d)) return d;  // a local port faces its own NI
  throw std::invalid_argument("opposite: bad Dir");
}

std::string to_string(Dir d) {
  switch (d) {
    case Dir::North:
      return "North";
    case Dir::South:
      return "South";
    case Dir::East:
      return "East";
    case Dir::West:
      return "West";
    case Dir::Local:
      return "Local";
    default:
      break;
  }
  // Extra NI slots of a concentrated router: "Local1", "Local2", ...
  if (is_local(d)) return "Local" + std::to_string(local_slot(d));
  return "?";
}

char dir_letter(Dir d) {
  switch (d) {
    case Dir::North:
      return 'N';
    case Dir::South:
      return 'S';
    case Dir::East:
      return 'E';
    case Dir::West:
      return 'W';
    default:
      break;
  }
  return is_local(d) ? 'L' : '?';
}

std::string to_string(VcState s) {
  switch (s) {
    case VcState::Idle:
      return "Idle";
    case VcState::Active:
      return "Active";
    case VcState::Recovery:
      return "Recovery";
  }
  return "?";
}

}  // namespace nbtinoc::noc
