#include "nbtinoc/noc/topology.hpp"

#include <cstdlib>
#include <stdexcept>

#include "nbtinoc/noc/fault_routing.hpp"
#include "nbtinoc/noc/routing.hpp"

namespace nbtinoc::noc {

Topology::~Topology() = default;

Topology::Topology(const NocConfig& config) : config_(config) {
  num_terminals_ = config.nodes();
  num_routers_ = config.routers();
  ports_per_router_ = config.ports_per_router();
  concentration_ =
      config.topology == TopologyKind::kConcentratedMesh ? config.concentration : 1;

  // Terminal <-> router mapping. Tiles concentrate along x: terminal
  // (tx, ty) hangs off router (tx / c, ty) at local slot tx % c. With c = 1
  // this is the identity (router id == terminal id, slot 0) on every
  // non-concentrated topology, the ring included (its router index is the
  // row-major terminal index).
  const int c = concentration_;
  const int router_width = config.width / c;
  router_of_terminal_.resize(static_cast<std::size_t>(num_terminals_));
  local_slot_of_terminal_.resize(static_cast<std::size_t>(num_terminals_));
  terminal_of_slot_.assign(static_cast<std::size_t>(num_routers_ * c), kInvalidNode);
  for (NodeId t = 0; t < num_terminals_; ++t) {
    const int tx = t % config.width;
    const int ty = t / config.width;
    const NodeId r = ty * router_width + tx / c;
    const int slot = tx % c;
    router_of_terminal_[static_cast<std::size_t>(t)] = r;
    local_slot_of_terminal_[static_cast<std::size_t>(t)] = slot;
    terminal_of_slot_[static_cast<std::size_t>(r * c + slot)] = t;
  }
}

void Topology::build_tables() {
  link_dead_.assign(static_cast<std::size_t>(num_routers_ * 4), 0);
  router_dead_.assign(static_cast<std::size_t>(num_routers_), 0);
  neighbors_.resize(static_cast<std::size_t>(num_routers_ * 4));
  for (NodeId r = 0; r < num_routers_; ++r)
    for (int d = 0; d < 4; ++d)
      neighbors_[static_cast<std::size_t>(r * 4 + d)] =
          compute_neighbor(r, static_cast<Dir>(d));

  route_table_.resize(static_cast<std::size_t>(num_routers_) *
                      static_cast<std::size_t>(num_terminals_));
  inject_class_.resize(route_table_.size());
  for (NodeId r = 0; r < num_routers_; ++r) {
    for (NodeId t = 0; t < num_terminals_; ++t) {
      const std::size_t idx = static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(num_terminals_) +
                              static_cast<std::size_t>(t);
      const Dir port = compute_port(r, t);
      RouteEntry entry;
      entry.port = static_cast<std::int16_t>(port);
      // The entry's class restricts VC allocation at the *downstream* input
      // of `port` — in `port`'s dimension, per Dally-Seitz. The ejection
      // path has no downstream VC buffer.
      entry.vc_class =
          is_local(port)
              ? std::int16_t{0}
              : static_cast<std::int16_t>(compute_vc_class(neighbor(r, port), t, port));
      route_table_[idx] = entry;
      // The class of a VC *at* r itself, in the first hop's dimension —
      // what the NI-side injection uses.
      inject_class_[idx] = static_cast<std::int8_t>(compute_vc_class(r, t, port));
    }
  }
}

bool Topology::kill_link(NodeId router, Dir d) {
  if (router < 0 || router >= num_routers_ || is_local(d))
    throw std::invalid_argument("Topology::kill_link: not a cardinal port of a router");
  const NodeId v = neighbor(router, d);
  if (v == kInvalidNode) return false;               // unwired (mesh edge)
  if (!router_alive(router) || !router_alive(v)) return false;
  const std::size_t fwd = static_cast<std::size_t>(router * 4 + static_cast<int>(d));
  if (link_dead_[fwd] != 0) return false;
  // A failed physical channel takes both wires: the reverse direction is
  // v's opposite(d) port (how the network wires it — correct even on a
  // 2-wide torus where both of v's x-ports face `router`).
  link_dead_[fwd] = 1;
  link_dead_[static_cast<std::size_t>(v * 4 + static_cast<int>(opposite(d)))] = 1;
  regenerate_routes();
  return true;
}

bool Topology::kill_router(NodeId router) {
  if (router < 0 || router >= num_routers_)
    throw std::invalid_argument("Topology::kill_router: router out of range");
  if (!router_alive(router)) return false;
  router_dead_[static_cast<std::size_t>(router)] = 1;
  regenerate_routes();
  return true;
}

bool Topology::fabric_connected() const {
  return degraded_routing_ == nullptr || degraded_routing_->connected();
}

void Topology::regenerate_routes() {
  degraded_ = true;
  std::vector<NodeId> alive_nbr(static_cast<std::size_t>(num_routers_ * 4), kInvalidNode);
  std::vector<std::uint8_t> alive(router_dead_.size());
  for (NodeId r = 0; r < num_routers_; ++r)
    alive[static_cast<std::size_t>(r)] = router_dead_[static_cast<std::size_t>(r)] == 0 ? 1 : 0;
  for (NodeId r = 0; r < num_routers_; ++r)
    for (int p = 0; p < 4; ++p)
      alive_nbr[static_cast<std::size_t>(r * 4 + p)] = alive_neighbor(r, static_cast<Dir>(p));
  degraded_routing_ = std::make_unique<DegradedRouting>(num_routers_, std::move(alive_nbr),
                                                        std::move(alive));
  const DegradedRouting& dr = *degraded_routing_;

  // Up*/down* table: pure down inside the destination's down region,
  // otherwise one legal shortest step (up, or down straight into the
  // region), lowest port on ties. Phase classes on 2-class configs keep the
  // per-class VC halves meaningful: up-phase moves allocate class 0
  // downstream, down-phase moves class 1. Classes do not carry the deadlock
  // argument (the up*/down* rank function is class-independent), so
  // surviving packets with pre-fault dateline classes stay legal.
  const bool two_class = config_.vc_classes() >= 2;
  for (NodeId r = 0; r < num_routers_; ++r) {
    for (NodeId t = 0; t < num_terminals_; ++t) {
      const std::size_t idx = static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(num_terminals_) +
                              static_cast<std::size_t>(t);
      RouteEntry entry;
      entry.port = RouteEntry::kNoPort;
      entry.vc_class = 0;
      const NodeId d = router_of(t);
      if (router_alive(r) && router_alive(d)) {
        if (r == d) {
          entry.port = static_cast<std::int16_t>(local_port_of(t));
        } else if (dr.dist(r, d) < DegradedRouting::kUnreachable) {
          const bool down_phase = dr.in_down_region(r, d);
          const int goal = (down_phase ? dr.down_dist(r, d) : dr.dist(r, d)) - 1;
          for (int p = 0; p < 4; ++p) {
            const NodeId v = alive_neighbor(r, static_cast<Dir>(p));
            if (v == kInvalidNode) continue;
            const bool step_down = dr.move_is_down(r, v);
            if (down_phase && !step_down) continue;
            const int through = step_down ? dr.down_dist(v, d) : dr.dist(v, d);
            if (through != goal) continue;
            entry.port = static_cast<std::int16_t>(p);
            entry.vc_class = two_class && step_down ? 1 : 0;
            break;
          }
        }
      }
      route_table_[idx] = entry;
      inject_class_[idx] = static_cast<std::int8_t>(entry.reachable() ? entry.vc_class : 0);
    }
  }
}

std::unique_ptr<Topology> Topology::create(const NocConfig& config) {
  switch (config.topology) {
    case TopologyKind::kMesh2D:
      return std::make_unique<Mesh2D>(config);
    case TopologyKind::kTorus2D:
      return std::make_unique<Torus2D>(config);
    case TopologyKind::kRing:
      return std::make_unique<Ring>(config);
    case TopologyKind::kConcentratedMesh:
      return std::make_unique<ConcentratedMesh>(config);
  }
  throw std::invalid_argument("Topology::create: bad TopologyKind");
}

// --- Mesh2D ------------------------------------------------------------------

Mesh2D::Mesh2D(const NocConfig& config) : Topology(config) { build_tables(); }

NodeId Mesh2D::compute_neighbor(NodeId router, Dir d) const {
  return neighbor_of(router, d, config_.width, config_.height);
}

Dir Mesh2D::compute_port(NodeId router, NodeId dst_terminal) const {
  // Same arithmetic as the legacy route_compute(): the table is a cache of
  // it, so the mesh stays bit-identical to the pre-topology simulator.
  return route_compute(router, dst_terminal, config_);
}

int Mesh2D::compute_vc_class(NodeId router, NodeId dst_terminal, Dir link_dir) const {
  (void)link_dir;
  if (!config_.adaptive_routing()) return 0;
  // Turn-model modes: class is fixed at injection — row/column-aligned
  // pairs ride the escape (DOR) class 0, everyone else the adaptive class
  // 1. Escape XY paths are straight lines, so every intermediate router
  // stays aligned with the destination and table entries along them are
  // class 0 throughout; class-1 packets never read the table (dynamic RC).
  const Coord c = coord_of(router, config_.width);
  const Coord d = coord_of(dst_terminal, config_.width);
  return c.x == d.x || c.y == d.y ? 0 : 1;
}

int Mesh2D::hop_distance(NodeId src_terminal, NodeId dst_terminal) const {
  return noc::hop_distance(src_terminal, dst_terminal, config_.width);
}

double Mesh2D::norm_x(NodeId router) const {
  return config_.width > 1
             ? static_cast<double>(coord_of(router, config_.width).x) / (config_.width - 1)
             : 0.0;
}

double Mesh2D::norm_y(NodeId router) const {
  return config_.height > 1
             ? static_cast<double>(coord_of(router, config_.width).y) / (config_.height - 1)
             : 0.0;
}

// --- Torus2D -----------------------------------------------------------------

namespace {
/// Forward (increasing-coordinate, wrapping) distance from a to b mod n.
int wrap_delta(int a, int b, int n) { return (b - a + n) % n; }
/// Shortest-way rule for one torus dimension: go forward (East/South) when
/// the wrapping forward distance is at most half the ring — ties go forward,
/// which keeps the choice deterministic on even sizes.
bool go_forward(int delta, int n) { return 2 * delta <= n; }
}  // namespace

Torus2D::Torus2D(const NocConfig& config) : Topology(config) { build_tables(); }

NodeId Torus2D::compute_neighbor(NodeId router, Dir d) const {
  Coord c = coord_of(router, config_.width);
  switch (d) {
    case Dir::North:
      c.y = (c.y - 1 + config_.height) % config_.height;
      break;
    case Dir::South:
      c.y = (c.y + 1) % config_.height;
      break;
    case Dir::East:
      c.x = (c.x + 1) % config_.width;
      break;
    case Dir::West:
      c.x = (c.x - 1 + config_.width) % config_.width;
      break;
    default:
      return kInvalidNode;
  }
  return id_of(c, config_.width);
}

Dir Torus2D::compute_port(NodeId router, NodeId dst_terminal) const {
  const Coord c = coord_of(router, config_.width);
  const Coord d = coord_of(dst_terminal, config_.width);
  if (c == d) return Dir::Local;
  const auto x_port = [&] {
    const int east = wrap_delta(c.x, d.x, config_.width);
    return go_forward(east, config_.width) ? Dir::East : Dir::West;
  };
  const auto y_port = [&] {
    const int south = wrap_delta(c.y, d.y, config_.height);
    return go_forward(south, config_.height) ? Dir::South : Dir::North;
  };
  if (config_.routing == RoutingAlgo::kXY) return c.x != d.x ? x_port() : y_port();
  return c.y != d.y ? y_port() : x_port();
}

int Torus2D::compute_vc_class(NodeId router, NodeId dst_terminal, Dir link_dir) const {
  // Per-dimension dateline rule: the class is 0 while the remaining path in
  // *link_dir's* dimension still crosses that dimension's wrap link, 1 once
  // it no longer does — including when that dimension is already done, so a
  // packet turning into Y never occupies a class-0 VC of the X ring it just
  // left (the conflation that would close a dependency cycle). Heading East
  // the path wraps iff x > dst.x, West iff x < dst.x; South iff y > dst.y,
  // North iff y < dst.y.
  const Coord c = coord_of(router, config_.width);
  const Coord d = coord_of(dst_terminal, config_.width);
  if (link_dir == Dir::East || link_dir == Dir::West) {
    if (c.x == d.x) return 1;  // x traversal done
    const int east = wrap_delta(c.x, d.x, config_.width);
    return go_forward(east, config_.width) ? (c.x > d.x ? 0 : 1) : (c.x < d.x ? 0 : 1);
  }
  if (link_dir == Dir::North || link_dir == Dir::South) {
    if (c.y == d.y) return 1;  // y traversal done
    const int south = wrap_delta(c.y, d.y, config_.height);
    return go_forward(south, config_.height) ? (c.y > d.y ? 0 : 1) : (c.y < d.y ? 0 : 1);
  }
  return 1;  // injecting a packet that ejects at its own router
}

int Torus2D::hop_distance(NodeId src_terminal, NodeId dst_terminal) const {
  const Coord a = coord_of(src_terminal, config_.width);
  const Coord b = coord_of(dst_terminal, config_.width);
  const int dx = wrap_delta(a.x, b.x, config_.width);
  const int dy = wrap_delta(a.y, b.y, config_.height);
  return std::min(dx, config_.width - dx) + std::min(dy, config_.height - dy);
}

double Torus2D::norm_x(NodeId router) const {
  return config_.width > 1
             ? static_cast<double>(coord_of(router, config_.width).x) / (config_.width - 1)
             : 0.0;
}

double Torus2D::norm_y(NodeId router) const {
  return config_.height > 1
             ? static_cast<double>(coord_of(router, config_.width).y) / (config_.height - 1)
             : 0.0;
}

// --- Ring --------------------------------------------------------------------

Ring::Ring(const NocConfig& config) : Topology(config) { build_tables(); }

NodeId Ring::compute_neighbor(NodeId router, Dir d) const {
  const int n = num_routers_;
  switch (d) {
    case Dir::East:
      return (router + 1) % n;
    case Dir::West:
      return (router - 1 + n) % n;
    default:
      return kInvalidNode;  // N/S stay unwired, like mesh edges
  }
}

Dir Ring::compute_port(NodeId router, NodeId dst_terminal) const {
  if (router == dst_terminal) return Dir::Local;
  const int east = wrap_delta(router, dst_terminal, num_routers_);
  return go_forward(east, num_routers_) ? Dir::East : Dir::West;
}

int Ring::compute_vc_class(NodeId router, NodeId dst_terminal, Dir link_dir) const {
  // One-dimensional dateline: the wrap link sits between the last and first
  // ring index, so an eastbound path wraps iff index > dst, a westbound one
  // iff index < dst. There is no second dimension to turn into, so the
  // link_dir's dimension is always the travel dimension.
  (void)link_dir;
  switch (compute_port(router, dst_terminal)) {
    case Dir::East:
      return router > dst_terminal ? 0 : 1;
    case Dir::West:
      return router < dst_terminal ? 0 : 1;
    default:
      return 1;
  }
}

int Ring::hop_distance(NodeId src_terminal, NodeId dst_terminal) const {
  const int forward = wrap_delta(src_terminal, dst_terminal, num_routers_);
  return std::min(forward, num_routers_ - forward);
}

double Ring::norm_x(NodeId router) const {
  // The ring is laid out on the same width x height die grid as the mesh;
  // only the link pattern differs, so the PV gradient keeps the grid coords.
  return config_.width > 1
             ? static_cast<double>(coord_of(router, config_.width).x) / (config_.width - 1)
             : 0.0;
}

double Ring::norm_y(NodeId router) const {
  return config_.height > 1
             ? static_cast<double>(coord_of(router, config_.width).y) / (config_.height - 1)
             : 0.0;
}

// --- ConcentratedMesh --------------------------------------------------------

ConcentratedMesh::ConcentratedMesh(const NocConfig& config)
    : Topology(config), router_width_(config.width / config.concentration) {
  build_tables();
}

NodeId ConcentratedMesh::compute_neighbor(NodeId router, Dir d) const {
  return neighbor_of(router, d, router_width_, config_.height);
}

Dir ConcentratedMesh::compute_port(NodeId router, NodeId dst_terminal) const {
  const NodeId dst_router = router_of(dst_terminal);
  if (router == dst_router) return local_port_of(dst_terminal);
  // Plain DOR on the router grid; single class, so deadlock freedom is the
  // mesh argument unchanged.
  const Coord c = coord_of(router, router_width_);
  const Coord d = coord_of(dst_router, router_width_);
  if (config_.routing == RoutingAlgo::kXY) {
    if (d.x > c.x) return Dir::East;
    if (d.x < c.x) return Dir::West;
    return d.y > c.y ? Dir::South : Dir::North;
  }
  if (d.y > c.y) return Dir::South;
  if (d.y < c.y) return Dir::North;
  return d.x > c.x ? Dir::East : Dir::West;
}

int ConcentratedMesh::hop_distance(NodeId src_terminal, NodeId dst_terminal) const {
  const Coord a = coord_of(router_of(src_terminal), router_width_);
  const Coord b = coord_of(router_of(dst_terminal), router_width_);
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

double ConcentratedMesh::norm_x(NodeId router) const {
  return router_width_ > 1
             ? static_cast<double>(coord_of(router, router_width_).x) / (router_width_ - 1)
             : 0.0;
}

double ConcentratedMesh::norm_y(NodeId router) const {
  return config_.height > 1
             ? static_cast<double>(coord_of(router, router_width_).y) / (config_.height - 1)
             : 0.0;
}

}  // namespace nbtinoc::noc
