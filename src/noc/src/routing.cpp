#include "nbtinoc/noc/routing.hpp"

#include <cstdlib>
#include <stdexcept>

namespace nbtinoc::noc {

Coord coord_of(NodeId id, int width) { return Coord{id % width, id / width}; }

NodeId id_of(Coord c, int width) { return c.y * width + c.x; }

bool in_mesh(Coord c, int width, int height) {
  return c.x >= 0 && c.x < width && c.y >= 0 && c.y < height;
}

NodeId neighbor_of(NodeId id, Dir d, int width, int height) {
  if (is_local(d)) return kInvalidNode;
  Coord c = coord_of(id, width);
  switch (d) {
    case Dir::North:
      c.y -= 1;
      break;
    case Dir::South:
      c.y += 1;
      break;
    case Dir::East:
      c.x += 1;
      break;
    case Dir::West:
      c.x -= 1;
      break;
    default:
      return kInvalidNode;
  }
  return in_mesh(c, width, height) ? id_of(c, width) : kInvalidNode;
}

int hop_distance(NodeId a, NodeId b, int width) {
  const Coord ca = coord_of(a, width);
  const Coord cb = coord_of(b, width);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

Dir route_compute(NodeId current, NodeId dst, const NocConfig& config) {
  const Coord c = coord_of(current, config.width);
  const Coord d = coord_of(dst, config.width);
  if (c == d) return Dir::Local;
  // kYX resolves Y first; everything else (kXY and the adaptive modes,
  // whose escape class is minimal XY) resolves X first.
  const bool x_first = config.routing != RoutingAlgo::kYX;
  if (x_first) {
    if (d.x > c.x) return Dir::East;
    if (d.x < c.x) return Dir::West;
    return d.y > c.y ? Dir::South : Dir::North;
  }
  if (d.y > c.y) return Dir::South;
  if (d.y < c.y) return Dir::North;
  return d.x > c.x ? Dir::East : Dir::West;
}

}  // namespace nbtinoc::noc
