#include "nbtinoc/noc/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "nbtinoc/noc/fault_routing.hpp"
#include "nbtinoc/noc/routing.hpp"

namespace nbtinoc::noc {

Router::Router(NodeId id, const NocConfig& config, sim::StatRegistry& stats,
               const Topology* topology)
    : id_(id), config_(config),
      owned_topology_(topology == nullptr ? Topology::create(config) : nullptr),
      topo_(topology == nullptr ? owned_topology_.get() : topology),
      ports_(config.ports_per_router()),
      flits_out_key_("noc.router" + std::to_string(id) + ".flits_out"),
      stats_(&stats),
      h_va_grants_(stats.intern("noc.va_grants")),
      h_flits_forwarded_(stats.intern("noc.flits_forwarded")),
      h_flits_ejected_router_(stats.intern("noc.flits_ejected_router")),
      h_flits_out_(stats.intern(flits_out_key_)),
      inputs_(static_cast<std::size_t>(ports_)),
      outputs_(static_cast<std::size_t>(ports_)),
      downstream_iu_(static_cast<std::size_t>(ports_), nullptr),
      flit_out_(static_cast<std::size_t>(ports_), nullptr),
      credit_in_(static_cast<std::size_t>(ports_), nullptr),
      flit_in_(static_cast<std::size_t>(ports_), nullptr),
      credit_out_(static_cast<std::size_t>(ports_), nullptr),
      eject_out_(static_cast<std::size_t>(ports_), nullptr),
      port_forwarded_(static_cast<std::size_t>(ports_), 0),
      port_dead_(static_cast<std::size_t>(ports_), 0),
      va_requests_(static_cast<std::size_t>(ports_ * config.total_vcs())),
      vnet_has_free_(static_cast<std::size_t>(config.num_vnets * config.vc_classes())),
      sa_ready_(static_cast<std::size_t>(config.total_vcs())),
      sa_port_requests_(static_cast<std::size_t>(ports_)),
      sa_candidate_(static_cast<std::size_t>(ports_), kInvalidVc) {
  // The local (NI-facing) ports always exist; mesh-facing ports are created
  // lazily by wiring, so edge routers carry no dead buffers.
  for (int p = kFirstLocalPort; p < ports_; ++p) {
    const Dir local = static_cast<Dir>(p);
    inputs_[static_cast<std::size_t>(p)] = std::make_unique<InputUnit>(local, config_);
    outputs_[static_cast<std::size_t>(p)] =
        std::make_unique<OutputUnit>(local, config_, /*ejection=*/true);
  }
}

void Router::wire_output(Dir dir, InputUnit* downstream_iu, Channel<Flit>* flit_out,
                         Channel<Credit>* credit_in) {
  const auto d = static_cast<std::size_t>(dir);
  outputs_[d] = std::make_unique<OutputUnit>(dir, config_, /*ejection=*/false);
  // Shared organization: the upstream's credit state IS the downstream
  // pool's charge accounting (zero-skew delegation, like OutVcStateView).
  if (downstream_iu != nullptr && downstream_iu->pool() != nullptr)
    outputs_[d]->set_shared_pool(downstream_iu->pool());
  downstream_iu_[d] = downstream_iu;
  flit_out_[d] = flit_out;
  credit_in_[d] = credit_in;
}

void Router::wire_input(Dir dir, Channel<Flit>* flit_in, Channel<Credit>* credit_out) {
  const auto d = static_cast<std::size_t>(dir);
  if (!is_local(dir)) inputs_[d] = std::make_unique<InputUnit>(dir, config_);
  flit_in_[d] = flit_in;
  credit_out_[d] = credit_out;
}

void Router::wire_ejection(Dir dir, Channel<Flit>* eject_out) {
  if (!is_local(dir))
    throw std::invalid_argument("Router::wire_ejection: " + to_string(dir) +
                                " is not a local port");
  eject_out_[static_cast<std::size_t>(dir)] = eject_out;
}

RouteEntry Router::route_for(Dir in_port, const Flit& flit) const {
  const RouteEntry table = topo_->route(id_, flit.dst);
  if (!config_.adaptive_routing()) return table;
  if (!table.reachable() || is_local(table.dir())) return table;
  if (topo_->degraded()) return degraded_adaptive_route(in_port, flit, table);
  // The packet's class was fixed at injection and is visible in its VC
  // index: escape-class packets (row/column-aligned pairs) take the table's
  // minimal XY route, adaptive-class packets route dynamically.
  const int local_vc = flit.vc - config_.first_vc_of_vnet(flit.vnet);
  if (local_vc < config_.class_first_vc(1)) return table;
  return turn_model_route(flit);
}

RouteEntry Router::turn_model_route(const Flit& flit) const {
  const int w = config_.width;
  const AdaptiveCandidates cand = turn_model_candidates(
      config_.routing, coord_of(id_, w), coord_of(flit.src, w), coord_of(flit.dst, w));
  if (cand.count == 0) throw std::logic_error("Router: empty turn-model candidate set");
  // Least-stressed selection: lowest cumulative forwarded-flit count; the
  // candidates arrive in Dir index order, so strict improvement keeps the
  // lowest port on ties — deterministic across scheduler modes.
  Dir best = cand.dir[0];
  for (int i = 1; i < cand.count; ++i) {
    const Dir d = cand.dir[static_cast<std::size_t>(i)];
    if (port_forwarded_[static_cast<std::size_t>(d)] <
        port_forwarded_[static_cast<std::size_t>(best)])
      best = d;
  }
  RouteEntry entry;
  entry.port = static_cast<std::int16_t>(best);
  entry.vc_class = 1;  // adaptive packets never switch into the escape class
  return entry;
}

RouteEntry Router::degraded_adaptive_route(Dir in_port, const Flit& flit,
                                           RouteEntry table) const {
  const DegradedRouting& dr = *topo_->degraded_routing();
  const NodeId dst_router = topo_->router_of(flit.dst);
  // A packet that has taken a down link may only continue down (the
  // up*/down* restriction); everything else may still climb.
  const bool arrived_down =
      !is_local(in_port) && dr.move_is_down(topo_->neighbor(id_, in_port), id_);
  const int my_dist = dr.dist(id_, dst_router);
  const int my_down = dr.down_dist(id_, dst_router);
  const bool two_class = config_.vc_classes() >= 2;
  Dir best = Dir::Local;
  bool best_down = false;
  bool have = false;
  std::uint64_t best_stress = 0;
  for (int p = 0; p < 4; ++p) {
    const Dir d = static_cast<Dir>(p);
    const NodeId v = topo_->alive_neighbor(id_, d);
    if (v == kInvalidNode) continue;
    const bool down = dr.move_is_down(id_, v);
    bool legal;
    if (arrived_down)
      legal = down && dr.down_dist(v, dst_router) < my_down;
    else if (down)
      legal = dr.down_dist(v, dst_router) < my_dist;
    else
      legal = dr.dist(v, dst_router) < my_dist;
    if (!legal) continue;
    const std::uint64_t stress = port_forwarded_[static_cast<std::size_t>(p)];
    if (!have || stress < best_stress) {
      have = true;
      best = d;
      best_down = down;
      best_stress = stress;
    }
  }
  if (!have) return table;  // unreachable: the table step is always a candidate
  RouteEntry entry;
  entry.port = static_cast<std::int16_t>(best);
  entry.vc_class = static_cast<std::int16_t>(two_class && best_down ? 1 : 0);
  return entry;
}

void Router::reroute_waiting_heads(sim::Cycle now) {
  (void)now;
  if (dead_) return;
  const int num_vcs = config_.total_vcs();
  for (int p = 0; p < ports_; ++p) {
    const auto& iu = inputs_[static_cast<std::size_t>(p)];
    if (!iu) continue;
    if (iu->busy_vcs() == 0) continue;
    for (int v = 0; v < num_vcs; ++v) {
      VcBuffer& buf = iu->vc(v);
      if (!buf.is_active() || buf.empty() || iu->has_output(v)) continue;
      const Flit& front = buf.front();
      if (!is_head(front.type)) continue;
      const RouteEntry entry = route_for(static_cast<Dir>(p), front);
      if (!entry.reachable()) continue;  // doomed packets were purged already
      buf.set_route(entry.dir());
      buf.set_next_class(entry.vc_class);
    }
  }
}

bool Router::has_new_traffic_toward(Dir out, sim::Cycle now) const {
  for (int p = 0; p < ports_; ++p) {
    const auto& iu = inputs_[static_cast<std::size_t>(p)];
    if (iu && iu->has_new_traffic_toward(out, now)) return true;
  }
  return false;
}

bool Router::has_new_traffic_toward(Dir out, int vnet, sim::Cycle now) const {
  for (int p = 0; p < ports_; ++p) {
    const auto& iu = inputs_[static_cast<std::size_t>(p)];
    if (iu && iu->has_new_traffic_toward(out, vnet, now)) return true;
  }
  return false;
}

bool Router::has_new_traffic_toward(Dir out, int vnet, int cls, sim::Cycle now) const {
  for (int p = 0; p < ports_; ++p) {
    const auto& iu = inputs_[static_cast<std::size_t>(p)];
    if (iu && iu->has_new_traffic_toward(out, vnet, cls, now)) return true;
  }
  return false;
}

bool Router::any_busy_input() const {
  for (const auto& iu : inputs_)
    if (iu && iu->busy_vcs() > 0) return true;
  return false;
}

bool Router::inbound_links_quiet() const {
  for (const auto* link : flit_in_)
    if (link != nullptr && !link->empty()) return false;
  for (const auto* link : credit_in_)
    if (link != nullptr && !link->empty()) return false;
  return true;
}

void Router::va_stage(sim::Cycle now) {
  // No Active VC on any input port means no VA request can exist, and the
  // request-less scan below has no side effects (arbiters only advance on a
  // grant). Skipping it keeps idle routers O(ports) per cycle.
  if (dead_ || !any_busy_input()) return;
  const int num_vcs = config_.total_vcs();
  const int num_classes = config_.vc_classes();
  // Ejection (local output) has no VC buffers downstream: every packet
  // routed there is "allocated" immediately; SA serializes the bandwidth.
  for (int p = 0; p < ports_; ++p) {
    const auto& iu = inputs_[static_cast<std::size_t>(p)];
    if (!iu) continue;
    for (int v = 0; v < num_vcs; ++v)
      if (iu->waiting_for_va(v, now) && is_local(iu->vc(v).route()))
        iu->assign_output(v, iu->vc(v).route(), 0);
  }

  for (int o = 0; o < ports_; ++o) {
    const Dir out = static_cast<Dir>(o);
    if (is_local(out)) continue;  // handled above
    auto& ou = outputs_[static_cast<std::size_t>(o)];
    if (!ou) continue;
    InputUnit* diu = downstream_iu_[static_cast<std::size_t>(o)];

    // Per-(vnet, dateline class) availability of a free (awake, idle)
    // downstream VC: a packet may only be allocated a VC of its own virtual
    // network, and — on wrap-link topologies — of its route's dateline
    // class. With one class the inner loop spans the whole vnet.
    vnet_has_free_.clear();
    for (int vn = 0; vn < config_.num_vnets; ++vn) {
      const int base = config_.first_vc_of_vnet(vn);
      for (int cls = 0; cls < num_classes; ++cls) {
        const int lo = base + config_.class_first_vc(cls);
        const int hi = lo + config_.class_num_vcs(cls);
        for (int v = lo; v < hi; ++v) {
          if (diu->vc(v).allocatable(now)) {
            vnet_has_free_.set(static_cast<std::size_t>(vn * num_classes + cls));
            break;
          }
        }
      }
    }

    // Gather requests: input VCs holding a routed head with no output VC,
    // whose (vnet, class) has a free downstream VC.
    va_requests_.clear();
    bool any = false;
    for (int p = 0; p < ports_; ++p) {
      const auto& iu = inputs_[static_cast<std::size_t>(p)];
      if (!iu) continue;
      for (int v = 0; v < num_vcs; ++v) {
        if (iu->waiting_for_va(v, now) && iu->vc(v).route() == out &&
            vnet_has_free_.test(static_cast<std::size_t>(
                iu->vc(v).front().vnet * num_classes + iu->vc(v).next_class()))) {
          va_requests_.set(static_cast<std::size_t>(p * num_vcs + v));
          any = true;
        }
      }
    }
    if (!any) continue;

    const int winner = ou->va_arbiter().arbitrate(va_requests_);
    if (winner < 0) continue;
    const int port = winner / num_vcs;
    const int vc = winner % num_vcs;
    InputUnit& iu = *inputs_[static_cast<std::size_t>(port)];
    const int vnet = iu.vc(vc).front().vnet;
    const int cls = iu.vc(vc).next_class();

    // Pick the free downstream VC within the winner's (vnet, class)
    // subrange; fair rotation when several are awake (the non-gating
    // baseline).
    const int lo = config_.first_vc_of_vnet(vnet) + config_.class_first_vc(cls);
    const int hi = lo + config_.class_num_vcs(cls);
    int free_vc = kInvalidVc;
    const std::size_t start = ou->vc_select().pointer();
    for (int i = 0; i < num_vcs; ++i) {
      const int v = static_cast<int>((start + static_cast<std::size_t>(i)) %
                                     static_cast<std::size_t>(num_vcs));
      if (v >= lo && v < hi && diu->vc(v).allocatable(now)) {
        free_vc = v;
        break;
      }
    }
    if (free_vc == kInvalidVc) continue;  // availability checked above

    diu->vc(free_vc).allocate(iu.vc(vc).front().packet, now);
    iu.assign_output(vc, out, free_vc);
    ou->vc_select().advance_past(static_cast<std::size_t>(free_vc));
    stats_->add(h_va_grants_);
  }
}

void Router::sa_st_stage(sim::Cycle now) {
  // SA readiness requires a non-empty (hence Active) VC: same O(ports)
  // idle skip as va_stage, equally side-effect-free.
  if (dead_ || !any_busy_input()) return;
  const int num_vcs = config_.total_vcs();

  // Phase 1: each input port nominates one ready VC (round-robin).
  std::fill(sa_candidate_.begin(), sa_candidate_.end(), kInvalidVc);
  for (int p = 0; p < ports_; ++p) {
    auto& iu = inputs_[static_cast<std::size_t>(p)];
    if (!iu) continue;
    sa_ready_.clear();
    bool any = false;
    for (int v = 0; v < num_vcs; ++v) {
      const VcBuffer& buf = iu->vc(v);
      if (!iu->has_output(v) || buf.empty() || !iu->flit_eligible(buf.front(), now)) continue;
      const Dir out = iu->out_port(v);
      if (!is_local(out)) {
        const auto& ou = outputs_[static_cast<std::size_t>(out)];
        if (!ou || !ou->has_credit(iu->out_vc(v))) continue;
      }
      sa_ready_.set(static_cast<std::size_t>(v));
      any = true;
    }
    if (any) sa_candidate_[static_cast<std::size_t>(p)] = iu->sa_arbiter().peek(sa_ready_);
  }

  // Phase 2: each output port grants one nominating input port.
  for (int o = 0; o < ports_; ++o) {
    auto& ou = outputs_[static_cast<std::size_t>(o)];
    if (!ou) continue;
    sa_port_requests_.clear();
    bool any = false;
    for (int p = 0; p < ports_; ++p) {
      const int v = sa_candidate_[static_cast<std::size_t>(p)];
      if (v == kInvalidVc) continue;
      if (inputs_[static_cast<std::size_t>(p)]->out_port(v) == static_cast<Dir>(o)) {
        sa_port_requests_.set(static_cast<std::size_t>(p));
        any = true;
      }
    }
    if (!any) continue;
    const int port = ou->sa_arbiter().arbitrate(sa_port_requests_);
    if (port < 0) continue;

    // Switch + link traversal for the winner.
    InputUnit& iu = *inputs_[static_cast<std::size_t>(port)];
    const int vc = sa_candidate_[static_cast<std::size_t>(port)];
    sa_candidate_[static_cast<std::size_t>(port)] = kInvalidVc;  // one grant per input port per cycle
    const int out_vc = iu.out_vc(vc);
    const Dir out = iu.out_port(vc);
    iu.sa_arbiter().advance_past(static_cast<std::size_t>(vc));

    Flit flit = iu.vc(vc).pop();
    const bool tail = is_tail(flit.type);
    if (tail) iu.clear_output(vc);

    if (is_local(out)) {
      Channel<Flit>* eject = eject_out_[static_cast<std::size_t>(out)];
      if (eject == nullptr) throw std::logic_error("Router: ejection not wired");
      eject->push(flit, now);
      stats_->add(h_flits_ejected_router_);
    } else {
      flit.vc = out_vc;
      outputs_[static_cast<std::size_t>(out)]->consume_credit(out_vc);
      flit_out_[static_cast<std::size_t>(out)]->push(flit, now);
      stats_->add(h_flits_forwarded_);
      ++port_forwarded_[static_cast<std::size_t>(out)];  // adaptive stress signal
    }

    stats_->add(h_flits_out_);

    // Credit (and VC-free notification) back to the upstream entity.
    Channel<Credit>* credit_out = credit_out_[static_cast<std::size_t>(port)];
    if (credit_out != nullptr) credit_out->push(Credit{vc, tail}, now);
  }
}

void Router::accept_arrivals(sim::Cycle now) {
  if (dead_) return;
  for (int p = 0; p < ports_; ++p) {
    Channel<Flit>* link = flit_in_[static_cast<std::size_t>(p)];
    if (link == nullptr) continue;
    while (auto flit = link->pop_ready(now)) {
      // RC: the table load under DOR; dynamic (adaptive / up*-down*)
      // selection otherwise. The entry also carries the downstream VC class.
      const RouteEntry entry = route_for(static_cast<Dir>(p), *flit);
      inputs_[static_cast<std::size_t>(p)]->receive_flit(*flit, entry.dir(), entry.vc_class, now);
    }
  }
  for (int o = 0; o < ports_; ++o) {
    Channel<Credit>* link = credit_in_[static_cast<std::size_t>(o)];
    if (link == nullptr) continue;
    while (auto credit = link->pop_ready(now)) {
      outputs_[static_cast<std::size_t>(o)]->add_credit(credit->vc);
    }
  }
}

void Router::sync_stress(sim::Cycle through) {
  for (auto& iu : inputs_)
    if (iu) iu->sync_stress(through);
}

void Router::save(sim::SnapshotWriter& w) const {
  for (const auto& iu : inputs_) {
    w.b(iu != nullptr);
    if (iu) iu->save(w);
  }
  for (const auto& ou : outputs_) {
    w.b(ou != nullptr);
    if (ou) ou->save(w);
  }
  for (std::uint64_t f : port_forwarded_) w.u64(f);
  for (std::uint8_t d : port_dead_) w.u8(d);
  w.b(dead_);
}

void Router::load(sim::SnapshotReader& r) {
  for (auto& iu : inputs_) {
    const bool present = r.b();
    if (present != (iu != nullptr))
      throw sim::SnapshotError("Router " + std::to_string(id_) +
                               ": input-port layout differs from the snapshot");
    if (iu) iu->load(r);
  }
  for (auto& ou : outputs_) {
    const bool present = r.b();
    if (present != (ou != nullptr))
      throw sim::SnapshotError("Router " + std::to_string(id_) +
                               ": output-port layout differs from the snapshot");
    if (ou) ou->load(r);
  }
  for (std::uint64_t& f : port_forwarded_) f = r.u64();
  for (std::uint8_t& d : port_dead_) d = r.u8();
  dead_ = r.b();
}

}  // namespace nbtinoc::noc
