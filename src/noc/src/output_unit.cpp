#include "nbtinoc/noc/output_unit.hpp"

#include <stdexcept>

namespace nbtinoc::noc {

OutputUnit::OutputUnit(Dir dir, const NocConfig& config, bool ejection)
    : dir_(dir),
      ejection_(ejection),
      credits_(ejection ? 0 : static_cast<std::size_t>(config.total_vcs()), config.buffer_depth),
      buffer_depth_(config.buffer_depth),
      va_arbiter_(static_cast<std::size_t>(config.ports_per_router() * config.total_vcs())),
      vc_select_(static_cast<std::size_t>(config.total_vcs())),
      sa_arbiter_(static_cast<std::size_t>(config.ports_per_router())) {}

void OutputUnit::add_credit(int vc) {
  if (pool_ != nullptr) {
    pool_->uncharge(vc);
    return;
  }
  int& c = credits_.at(static_cast<std::size_t>(vc));
  if (c >= buffer_depth_) throw std::logic_error("OutputUnit::add_credit: credit overflow");
  ++c;
}

void OutputUnit::consume_credit(int vc) {
  if (pool_ != nullptr) {
    if (!pool_->can_send(vc))
      throw std::logic_error("OutputUnit::consume_credit: pool reservation check fails");
    pool_->charge(vc);
    return;
  }
  int& c = credits_.at(static_cast<std::size_t>(vc));
  if (c <= 0) throw std::logic_error("OutputUnit::consume_credit: no credits");
  --c;
}

}  // namespace nbtinoc::noc
