#include "nbtinoc/noc/network_interface.hpp"

#include <stdexcept>

#include "nbtinoc/noc/topology.hpp"

namespace nbtinoc::noc {

NetworkInterface::NetworkInterface(NodeId node, const NocConfig& config, sim::StatRegistry& stats)
    : node_(node), config_(config),
      stats_(&stats),
      h_flits_ejected_(stats.intern("noc.flits_ejected")),
      h_packets_ejected_(stats.intern("noc.packets_ejected")),
      h_ni_va_grants_(stats.intern("noc.ni_va_grants")),
      h_flits_injected_(stats.intern("noc.flits_injected")),
      h_packets_offered_(stats.intern("noc.packets_offered")),
      h_unroutable_(stats.intern("fault.unroutable_packets")),
      d_packet_latency_(stats.intern_distribution("noc.packet_latency")),
      credits_(static_cast<std::size_t>(config.total_vcs()), config.buffer_depth) {}

void NetworkInterface::wire(InputUnit* router_local_iu, Channel<Flit>* inject_out,
                            Channel<Credit>* credit_in, Channel<Flit>* eject_in) {
  router_iu_ = router_local_iu;
  inject_out_ = inject_out;
  credit_in_ = credit_in;
  eject_in_ = eject_in;
}

void NetworkInterface::mark_dead() {
  dead_ = true;
  queue_.clear();
  sending_ = false;
  send_vc_ = kInvalidVc;
}

bool NetworkInterface::unroutable(NodeId dst) const {
  if (topo_ == nullptr || !topo_->degraded()) return false;
  return !topo_->terminal_alive(dst) ||
         !topo_->route(topo_->router_of(node_), dst).reachable();
}

std::uint64_t NetworkInterface::drop_queued_unroutable() {
  if (dead_ || topo_ == nullptr || !topo_->degraded()) return 0;
  std::uint64_t dropped = 0;
  const std::size_t n = queue_.size();
  for (std::size_t i = 0; i < n; ++i) {
    QueuedPacket pkt = queue_.front();
    queue_.pop_front();
    if (unroutable(pkt.dst)) {
      ++dropped;
    } else {
      queue_.push_back(pkt);
    }
  }
  if (dropped != 0) stats_->add(h_unroutable_, dropped);
  return dropped;
}

void NetworkInterface::receive(sim::Cycle now) {
  if (dead_) return;
  while (auto credit = credit_in_->pop_ready(now)) {
    if (SharedBufferPool* pool = shared_pool()) {
      pool->uncharge(credit->vc);  // throws on a credit the NI never charged
      continue;
    }
    int& c = credits_.at(static_cast<std::size_t>(credit->vc));
    if (c >= config_.buffer_depth) throw std::logic_error("NI: credit overflow");
    ++c;
  }
  while (auto flit = eject_in_->pop_ready(now)) {
    stats_->add(h_flits_ejected_);
    if (is_tail(flit->type)) {
      ++packets_ejected_;
      stats_->add(h_packets_ejected_);
      stats_->sample(d_packet_latency_, static_cast<double>(now - flit->injected_at));
    }
  }
}

bool NetworkInterface::has_new_traffic(sim::Cycle now) const {
  if (sending_) return false;  // current packet already owns a VC
  return !queue_.empty() && queue_.front().injected_at < now;
}

bool NetworkInterface::has_new_traffic(int vnet, sim::Cycle now) const {
  return has_new_traffic(now) && queue_.front().vnet == vnet;
}

bool NetworkInterface::has_new_traffic(int vnet, int cls, sim::Cycle now) const {
  return has_new_traffic(vnet, now) && front_class() == cls;
}

int NetworkInterface::front_class() const {
  return topo_ == nullptr ? 0 : topo_->inject_class(node_, queue_.front().dst);
}

void NetworkInterface::inject(sim::Cycle now, std::uint64_t& packet_id_counter) {
  // VA for the queue head: the NI is the only requester of its local input
  // port, so allocation needs no arbitration — just a free, awake VC in the
  // packet's virtual network (and, on wrap-link topologies, its dateline
  // class subrange).
  if (dead_) return;
  if (!sending_ && !queue_.empty() && queue_.front().injected_at < now) {
    const int cls = front_class();
    const int first = config_.first_vc_of_vnet(queue_.front().vnet) + config_.class_first_vc(cls);
    for (int v = first; v < first + config_.class_num_vcs(cls); ++v) {
      if (router_iu_->vc(v).allocatable(now)) {
        send_pkt_ = queue_.front();
        queue_.pop_front();
        send_vc_ = v;
        send_seq_ = 0;
        send_id_ = ++packet_id_counter;
        sending_ = true;
        router_iu_->vc(v).allocate(send_id_, now);
        stats_->add(h_ni_va_grants_);
        break;
      }
    }
  }

  // Serialize one flit per cycle, credits permitting (shared organization:
  // the pool's slot-credit reservation check instead of per-VC counters).
  if (sending_ && (shared_pool() != nullptr
                       ? shared_pool()->can_send(send_vc_)
                       : credits_.at(static_cast<std::size_t>(send_vc_)) > 0)) {
    Flit flit;
    flit.packet = send_id_;
    flit.src = node_;
    flit.dst = send_pkt_.dst;
    flit.vnet = send_pkt_.vnet;
    flit.seq = send_seq_;
    flit.vc = send_vc_;
    flit.injected_at = send_pkt_.injected_at;
    if (send_pkt_.length == 1) {
      flit.type = FlitType::HeadTail;
    } else if (send_seq_ == 0) {
      flit.type = FlitType::Head;
    } else if (send_seq_ == send_pkt_.length - 1) {
      flit.type = FlitType::Tail;
    } else {
      flit.type = FlitType::Body;
    }
    if (SharedBufferPool* pool = shared_pool())
      pool->charge(send_vc_);
    else
      --credits_.at(static_cast<std::size_t>(send_vc_));
    inject_out_->push(flit, now);
    ++flits_injected_;
    stats_->add(h_flits_injected_);
    ++send_seq_;
    if (send_seq_ >= send_pkt_.length) {
      sending_ = false;
      send_vc_ = kInvalidVc;
    }
  }
}

void NetworkInterface::generate(sim::Cycle now) {
  // Burst-batched pull: one virtual call hands over every same-cycle packet
  // the source offers (up to kMaxGenerateBurst; surpluses slip — see
  // ITrafficSource::generate_burst). The buffer lives on the stack, so the
  // hot path stays allocation-free under bursty traces.
  if (dead_ || source_ == nullptr) return;
  PacketRequest burst[kMaxGenerateBurst];
  const std::size_t n = source_->generate_burst(now, burst, kMaxGenerateBurst);
  for (std::size_t i = 0; i < n; ++i) {
    const PacketRequest& req = burst[i];
    // Capture before the filters below: a replayed trace re-offers the
    // filtered packets too and re-applies the same filters, which keeps
    // capture -> replay bit-identical.
    if (trace_sink_ != nullptr) trace_sink_->record(now, node_, req);
    if (req.dst == node_) continue;  // self-traffic never enters the NoC
    if (req.length < 1) throw std::logic_error("NI: packet length must be >= 1");
    if (req.vnet < 0 || req.vnet >= config_.num_vnets)
      throw std::logic_error("NI: packet vnet out of range");
    if (unroutable(req.dst)) {
      // Degraded fabric: the destination tile is dead or disconnected.
      // Dropping at the source keeps has_new_traffic() truthful (a packet
      // with no route would assert it forever and wedge quiescence).
      stats_->add(h_unroutable_);
      continue;
    }
    queue_.push_back(QueuedPacket{req.dst, req.length, req.vnet, now});
    stats_->add(h_packets_offered_);
  }
}

void NetworkInterface::save(sim::SnapshotWriter& w) const {
  w.u64(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const QueuedPacket& p = queue_[i];
    w.i64(p.dst);
    w.i64(p.length);
    w.i64(p.vnet);
    w.u64(static_cast<std::uint64_t>(p.injected_at));
  }
  for (int c : credits_) w.i64(c);
  w.b(sending_);
  w.i64(send_vc_);
  w.i64(send_seq_);
  w.i64(send_pkt_.dst);
  w.i64(send_pkt_.length);
  w.i64(send_pkt_.vnet);
  w.u64(static_cast<std::uint64_t>(send_pkt_.injected_at));
  w.u64(send_id_);
  w.u64(packets_ejected_);
  w.u64(flits_injected_);
  w.b(dead_);
}

void NetworkInterface::load(sim::SnapshotReader& r) {
  queue_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    QueuedPacket p;
    p.dst = static_cast<NodeId>(r.i64());
    p.length = static_cast<int>(r.i64());
    p.vnet = static_cast<int>(r.i64());
    p.injected_at = static_cast<sim::Cycle>(r.u64());
    queue_.push_back(p);
  }
  for (int& c : credits_) c = static_cast<int>(r.i64());
  sending_ = r.b();
  send_vc_ = static_cast<int>(r.i64());
  send_seq_ = static_cast<int>(r.i64());
  send_pkt_.dst = static_cast<NodeId>(r.i64());
  send_pkt_.length = static_cast<int>(r.i64());
  send_pkt_.vnet = static_cast<int>(r.i64());
  send_pkt_.injected_at = static_cast<sim::Cycle>(r.u64());
  send_id_ = r.u64();
  packets_ejected_ = r.u64();
  flits_injected_ = r.u64();
  dead_ = r.b();
}

}  // namespace nbtinoc::noc
