#include "nbtinoc/noc/config.hpp"

#include <sstream>
#include <stdexcept>

namespace nbtinoc::noc {

void NocConfig::validate() const {
  const auto fail = [](std::string what) { throw std::invalid_argument("NocConfig: " + what); };
  if (width < 1 || height < 1)
    fail("mesh must be >= 1x1 (got " + std::to_string(width) + "x" + std::to_string(height) + ")");
  if (width * height < 2)
    fail("a 1x1 mesh has no links — use at least 2 nodes");
  if (num_vcs < 1) fail("num_vcs must be >= 1 (got " + std::to_string(num_vcs) + ")");
  if (num_vnets < 1) fail("num_vnets must be >= 1 (got " + std::to_string(num_vnets) + ")");
  if (buffer_depth < 1) fail("buffer_depth must be >= 1 (got " + std::to_string(buffer_depth) + ")");
  if (packet_length < 1) fail("packet_length must be >= 1 (got " + std::to_string(packet_length) + ")");
  if (extra_pipeline_stages < 0)
    fail("extra_pipeline_stages must be >= 0 (got " + std::to_string(extra_pipeline_stages) +
         "); router_stages below 3 are not modeled");
}

std::string NocConfig::describe() const {
  std::ostringstream os;
  os << width << "x" << height << " mesh, " << num_vnets << " vnet(s) x " << num_vcs
     << " VCs x " << buffer_depth
     << " flits, packets of " << packet_length << " flits, "
     << (routing == RoutingAlgo::kXY ? "XY" : "YX") << " routing, wakeup latency "
     << wakeup_latency;
  return os.str();
}

}  // namespace nbtinoc::noc
