#include "nbtinoc/noc/config.hpp"

#include <sstream>
#include <stdexcept>

namespace nbtinoc::noc {

TopologyKind parse_topology_kind(const std::string& name) {
  if (name == "mesh") return TopologyKind::kMesh2D;
  if (name == "torus") return TopologyKind::kTorus2D;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "cmesh") return TopologyKind::kConcentratedMesh;
  throw std::invalid_argument("parse_topology_kind: unknown topology '" + name +
                              "' (expected mesh, torus, ring, or cmesh)");
}

RoutingAlgo parse_routing_algo(const std::string& name) {
  if (name == "dor" || name == "xy") return RoutingAlgo::kXY;
  if (name == "yx") return RoutingAlgo::kYX;
  if (name == "west-first") return RoutingAlgo::kWestFirst;
  if (name == "odd-even") return RoutingAlgo::kOddEven;
  throw std::invalid_argument("parse_routing_algo: unknown routing '" + name +
                              "' (expected dor, xy, yx, west-first, or odd-even)");
}

std::string to_string(RoutingAlgo algo) {
  switch (algo) {
    case RoutingAlgo::kXY:
      return "XY";
    case RoutingAlgo::kYX:
      return "YX";
    case RoutingAlgo::kWestFirst:
      return "west-first";
    case RoutingAlgo::kOddEven:
      return "odd-even";
  }
  return "?";
}

BufferOrg parse_buffer_org(const std::string& name) {
  if (name == "partitioned") return BufferOrg::kPartitioned;
  if (name == "shared") return BufferOrg::kShared;
  throw std::invalid_argument("parse_buffer_org: unknown buffer organization '" + name +
                              "' (expected partitioned or shared)");
}

std::string to_string(BufferOrg org) {
  switch (org) {
    case BufferOrg::kPartitioned:
      return "partitioned";
    case BufferOrg::kShared:
      return "shared";
  }
  return "?";
}

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMesh2D:
      return "mesh";
    case TopologyKind::kTorus2D:
      return "torus";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kConcentratedMesh:
      return "cmesh";
  }
  return "?";
}

void NocConfig::validate() const {
  const auto fail = [](std::string what) { throw std::invalid_argument("NocConfig: " + what); };
  if (width < 1 || height < 1)
    fail("mesh must be >= 1x1 (got " + std::to_string(width) + "x" + std::to_string(height) + ")");
  if (width * height < 2)
    fail("a 1x1 mesh has no links — use at least 2 nodes");
  if (num_vcs < 1) fail("num_vcs must be >= 1 (got " + std::to_string(num_vcs) + ")");
  if (topology == TopologyKind::kConcentratedMesh) {
    if (concentration < 1)
      fail("cmesh concentration must be >= 1 (got " + std::to_string(concentration) + ")");
    if (width % concentration != 0)
      fail("cmesh concentration " + std::to_string(concentration) + " does not divide the " +
           std::to_string(width) + "-tile row — " + std::to_string(width) + "x" +
           std::to_string(height) + " leaves a partial router; use a divisor of the width");
  } else if (concentration != 1) {
    fail("concentration is a cmesh knob; " + to_string(topology) + " requires concentration 1 (got " +
         std::to_string(concentration) + ")");
  }
  if (topology == TopologyKind::kTorus2D && (width < 2 || height < 2))
    fail("a torus needs >= 2x2 tiles so every wrap link connects distinct routers (got " +
         std::to_string(width) + "x" + std::to_string(height) +
         "); use a ring for one-dimensional layouts");
  if (adaptive_routing() && topology != TopologyKind::kMesh2D)
    fail(to_string(routing) + " routing is a mesh turn model; " + to_string(topology) +
         " requires dimension-order routing (dor/xy/yx)");
  if (vc_classes() > num_vcs) {
    if (adaptive_routing())
      fail(to_string(routing) + " routing requires >= " + std::to_string(vc_classes()) +
           " VCs per vnet so each vnet can host both the escape (DOR) and adaptive classes "
           "(got " + std::to_string(num_vcs) + "); raise num_vcs or use dor routing");
    fail(to_string(topology) + " requires >= " + std::to_string(vc_classes()) +
         " VCs per vnet for its dateline classes (got " + std::to_string(num_vcs) +
         "); wrap-link deadlock freedom splits each vnet's VCs into pre-/post-dateline halves");
  }
  if (num_vnets < 1) fail("num_vnets must be >= 1 (got " + std::to_string(num_vnets) + ")");
  if (shared_buffers()) {
    if (num_vcs * num_vnets < 2)
      fail("buffer_org shared requires >= 2 VCs per port so the pool has something to share "
           "(got " + std::to_string(num_vcs * num_vnets) + "); raise num_vcs or use partitioned");
    if (shared_reserve < 1)
      fail("shared_reserve must be >= 1 flit per VC for deadlock safety (got " +
           std::to_string(shared_reserve) + "); every VC must always be able to accept a flit");
    if (num_vcs * num_vnets * shared_reserve > num_vcs * num_vnets * buffer_depth)
      fail("shared_reserve " + std::to_string(shared_reserve) + " x " +
           std::to_string(num_vcs * num_vnets) + " VCs = " +
           std::to_string(num_vcs * num_vnets * shared_reserve) +
           " reserved slots exceeds the " + std::to_string(num_vcs * num_vnets * buffer_depth) +
           "-slot pool; lower shared_reserve to at most buffer_depth (" +
           std::to_string(buffer_depth) + ")");
  } else if (shared_reserve != 1) {
    fail("shared_reserve is a shared-org knob; buffer_org partitioned requires shared_reserve 1 "
         "(got " + std::to_string(shared_reserve) + ")");
  }
  if (buffer_depth < 1) fail("buffer_depth must be >= 1 (got " + std::to_string(buffer_depth) + ")");
  if (packet_length < 1) fail("packet_length must be >= 1 (got " + std::to_string(packet_length) + ")");
  if (extra_pipeline_stages < 0)
    fail("extra_pipeline_stages must be >= 0 (got " + std::to_string(extra_pipeline_stages) +
         "); router_stages below 3 are not modeled");
}

std::string NocConfig::describe() const {
  std::ostringstream os;
  os << width << "x" << height << " " << to_string(topology);
  if (topology == TopologyKind::kConcentratedMesh)
    os << " (c=" << concentration << ", " << routers() << " routers)";
  os << ", " << num_vnets << " vnet(s) x " << num_vcs
     << " VCs x " << buffer_depth
     << " flits";
  if (shared_buffers())
    os << " (shared pool of " << pool_slots() << " slots, reserve " << shared_reserve
       << "/VC)";
  os << ", packets of " << packet_length << " flits, "
     << to_string(routing) << " routing, wakeup latency "
     << wakeup_latency;
  return os.str();
}

}  // namespace nbtinoc::noc
