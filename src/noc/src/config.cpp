#include "nbtinoc/noc/config.hpp"

#include <sstream>
#include <stdexcept>

namespace nbtinoc::noc {

void NocConfig::validate() const {
  if (width < 1 || height < 1) throw std::invalid_argument("NocConfig: mesh must be >= 1x1");
  if (width * height < 2) throw std::invalid_argument("NocConfig: need at least 2 nodes");
  if (num_vcs < 1) throw std::invalid_argument("NocConfig: num_vcs must be >= 1");
  if (num_vnets < 1) throw std::invalid_argument("NocConfig: num_vnets must be >= 1");
  if (buffer_depth < 1) throw std::invalid_argument("NocConfig: buffer_depth must be >= 1");
  if (packet_length < 1) throw std::invalid_argument("NocConfig: packet_length must be >= 1");
  if (extra_pipeline_stages < 0)
    throw std::invalid_argument("NocConfig: extra_pipeline_stages must be >= 0");
}

std::string NocConfig::describe() const {
  std::ostringstream os;
  os << width << "x" << height << " mesh, " << num_vnets << " vnet(s) x " << num_vcs
     << " VCs x " << buffer_depth
     << " flits, packets of " << packet_length << " flits, "
     << (routing == RoutingAlgo::kXY ? "XY" : "YX") << " routing, wakeup latency "
     << wakeup_latency;
  return os.str();
}

}  // namespace nbtinoc::noc
