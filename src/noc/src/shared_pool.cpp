#include "nbtinoc/noc/shared_pool.hpp"

namespace nbtinoc::noc {

SharedBufferPool::SharedBufferPool(int num_vcs, int buffer_depth, int reserve,
                                   sim::Cycle wakeup_latency)
    : num_vcs_(num_vcs),
      reserve_(reserve),
      num_slots_(num_vcs * buffer_depth),
      wakeup_latency_(wakeup_latency),
      state_(static_cast<std::size_t>(num_slots_ < 1 ? 1 : num_slots_), SlotState::kFree),
      flits_(state_.size()),
      ready_(state_.size(), 0),
      gate_transitions_(state_.size(), 0),
      trackers_(state_.size(), nullptr),
      next_(state_.size(), kNone),
      prev_(state_.size(), kNone),
      vc_head_(static_cast<std::size_t>(num_vcs < 1 ? 1 : num_vcs), kNone),
      vc_tail_(vc_head_.size(), kNone),
      vc_count_(vc_head_.size(), 0),
      charged_(vc_head_.size(), 0) {
  if (num_vcs < 1) throw std::invalid_argument("SharedBufferPool: num_vcs must be >= 1");
  if (buffer_depth < 1) throw std::invalid_argument("SharedBufferPool: depth must be >= 1");
  if (reserve < 1 || reserve > buffer_depth)
    throw std::invalid_argument("SharedBufferPool: reserve must be in [1, buffer_depth]");
  // Initial free list: ascending slot order, head = 0 (pop order 0, 1, ...).
  for (int s = 0; s < num_slots_; ++s) {
    next_[static_cast<std::size_t>(s)] = s + 1 < num_slots_ ? s + 1 : kNone;
    prev_[static_cast<std::size_t>(s)] = s - 1;
  }
  free_head_ = 0;
  free_count_ = num_slots_;
}

int SharedBufferPool::pop_free_slot() {
  const int slot = free_head_;
  if (slot == kNone) throw std::logic_error("SharedBufferPool: no free slot (invariant breach)");
  free_head_ = next_[static_cast<std::size_t>(slot)];
  if (free_head_ != kNone) prev_[static_cast<std::size_t>(free_head_)] = kNone;
  --free_count_;
  return slot;
}

void SharedBufferPool::push_free_slot(int slot) {
  state_[static_cast<std::size_t>(slot)] = SlotState::kFree;
  prev_[static_cast<std::size_t>(slot)] = kNone;
  next_[static_cast<std::size_t>(slot)] = free_head_;
  if (free_head_ != kNone) prev_[static_cast<std::size_t>(free_head_)] = slot;
  free_head_ = slot;
  ++free_count_;
}

void SharedBufferPool::remove_from_free(int slot) {
  const int p = prev_[static_cast<std::size_t>(slot)];
  const int n = next_[static_cast<std::size_t>(slot)];
  if (p != kNone)
    next_[static_cast<std::size_t>(p)] = n;
  else
    free_head_ = n;
  if (n != kNone) prev_[static_cast<std::size_t>(n)] = p;
  --free_count_;
}

void SharedBufferPool::set_charged(int v, int value) {
  if (value < 0)
    throw std::logic_error("SharedBufferPool::set_charged: negative charge for VC " +
                           std::to_string(v));
  int& c = charged_[static_cast<std::size_t>(v)];
  overcommit_ += (value > reserve_ ? value - reserve_ : 0) - (c > reserve_ ? c - reserve_ : 0);
  at_reserve_count_ += (value >= reserve_ ? 1 : 0) - (c >= reserve_ ? 1 : 0);
  c = value;
}

void SharedBufferPool::gate_slot(int slot, sim::Cycle now) {
  if (slot_state(slot) != SlotState::kFree)
    throw std::logic_error("SharedBufferPool::gate_slot: slot " + std::to_string(slot) +
                           " is not Free");
  if (!can_gate())
    throw std::logic_error("SharedBufferPool::gate_slot: no reservation headroom to gate");
  remove_from_free(slot);
  state_[static_cast<std::size_t>(slot)] = SlotState::kGated;
  ++gated_count_;
  ++gate_transitions_[static_cast<std::size_t>(slot)];
  if (trackers_[static_cast<std::size_t>(slot)] != nullptr)
    trackers_[static_cast<std::size_t>(slot)]->note_state(false, now);
}

void SharedBufferPool::wake_slot(int slot, sim::Cycle now) {
  if (slot_state(slot) != SlotState::kGated) return;
  state_[static_cast<std::size_t>(slot)] = SlotState::kWaking;
  ready_[static_cast<std::size_t>(slot)] = now + wakeup_latency_;
  next_[static_cast<std::size_t>(slot)] = kNone;
  if (waking_tail_ != kNone)
    next_[static_cast<std::size_t>(waking_tail_)] = slot;
  else
    waking_head_ = slot;
  waking_tail_ = slot;
  --gated_count_;
  ++waking_count_;
  if (trackers_[static_cast<std::size_t>(slot)] != nullptr)
    trackers_[static_cast<std::size_t>(slot)]->note_state(true, now);
}

void SharedBufferPool::wake_all(sim::Cycle now) {
  if (gated_count_ == 0) return;
  for (int s = 0; s < num_slots_ && gated_count_ > 0; ++s)
    if (state_[static_cast<std::size_t>(s)] == SlotState::kGated) wake_slot(s, now);
}

void SharedBufferPool::promote_woken(sim::Cycle now) {
  while (waking_head_ != kNone && ready_[static_cast<std::size_t>(waking_head_)] <= now) {
    const int slot = waking_head_;
    waking_head_ = next_[static_cast<std::size_t>(slot)];
    if (waking_head_ == kNone) waking_tail_ = kNone;
    --waking_count_;
    push_free_slot(slot);
  }
}

void SharedBufferPool::push(int v, const Flit& flit) {
  const int slot = pop_free_slot();
  state_[static_cast<std::size_t>(slot)] = SlotState::kOccupied;
  flits_[static_cast<std::size_t>(slot)] = flit;
  next_[static_cast<std::size_t>(slot)] = kNone;
  const std::size_t vi = static_cast<std::size_t>(v);
  if (vc_tail_[vi] != kNone)
    next_[static_cast<std::size_t>(vc_tail_[vi])] = slot;
  else
    vc_head_[vi] = slot;
  vc_tail_[vi] = slot;
  ++vc_count_[vi];
  ++occupied_count_;
}

Flit SharedBufferPool::pop(int v) {
  const std::size_t vi = static_cast<std::size_t>(v);
  const int slot = vc_head_[vi];
  if (slot == kNone)
    throw std::logic_error("SharedBufferPool::pop: VC " + std::to_string(v) + " empty");
  vc_head_[vi] = next_[static_cast<std::size_t>(slot)];
  if (vc_head_[vi] == kNone) vc_tail_[vi] = kNone;
  --vc_count_[vi];
  --occupied_count_;
  const Flit flit = flits_[static_cast<std::size_t>(slot)];
  push_free_slot(slot);
  return flit;
}

int SharedBufferPool::purge_vc(int v) {
  const std::size_t vi = static_cast<std::size_t>(v);
  int dropped = 0;
  int slot = vc_head_[vi];
  while (slot != kNone) {
    const int next = next_[static_cast<std::size_t>(slot)];
    push_free_slot(slot);
    ++dropped;
    slot = next;
  }
  vc_head_[vi] = kNone;
  vc_tail_[vi] = kNone;
  vc_count_[vi] = 0;
  occupied_count_ -= dropped;
  return dropped;
}

void SharedBufferPool::save(sim::SnapshotWriter& w) const {
  w.u64(static_cast<std::uint64_t>(num_slots_));
  for (int s = 0; s < num_slots_; ++s) {
    const std::size_t si = static_cast<std::size_t>(s);
    w.u8(static_cast<std::uint8_t>(state_[si]));
    w.u64(static_cast<std::uint64_t>(ready_[si]));
    w.u64(gate_transitions_[si]);
    if (state_[si] == SlotState::kOccupied) snapshot_save(w, flits_[si]);
  }
  // List orders are simulation-visible (they decide which physical slot the
  // next flit lands in), so each list is serialized head-first.
  for (int v = 0; v < num_vcs_; ++v) {
    const std::size_t vi = static_cast<std::size_t>(v);
    w.u64(static_cast<std::uint64_t>(vc_count_[vi]));
    for (int s = vc_head_[vi]; s != kNone; s = next_[static_cast<std::size_t>(s)])
      w.u64(static_cast<std::uint64_t>(s));
  }
  w.u64(static_cast<std::uint64_t>(free_count_));
  for (int s = free_head_; s != kNone; s = next_[static_cast<std::size_t>(s)])
    w.u64(static_cast<std::uint64_t>(s));
  w.u64(static_cast<std::uint64_t>(waking_count_));
  for (int s = waking_head_; s != kNone; s = next_[static_cast<std::size_t>(s)])
    w.u64(static_cast<std::uint64_t>(s));
  for (int v = 0; v < num_vcs_; ++v) w.u64(static_cast<std::uint64_t>(charged_[v]));
}

void SharedBufferPool::load(sim::SnapshotReader& r) {
  r.expect_u64(static_cast<std::uint64_t>(num_slots_), "shared-pool slot count");
  free_head_ = waking_head_ = waking_tail_ = kNone;
  free_count_ = occupied_count_ = gated_count_ = waking_count_ = 0;
  overcommit_ = 0;
  for (int s = 0; s < num_slots_; ++s) {
    const std::size_t si = static_cast<std::size_t>(s);
    const std::uint8_t st = r.u8();
    if (st > static_cast<std::uint8_t>(SlotState::kWaking))
      throw sim::SnapshotError("SharedBufferPool: invalid slot state " + std::to_string(st));
    state_[si] = static_cast<SlotState>(st);
    ready_[si] = static_cast<sim::Cycle>(r.u64());
    gate_transitions_[si] = r.u64();
    flits_[si] = Flit{};
    if (state_[si] == SlotState::kOccupied) flits_[si] = snapshot_load_flit(r);
    next_[si] = kNone;
    prev_[si] = kNone;
    if (state_[si] == SlotState::kGated) ++gated_count_;
  }
  const auto read_slot = [&](SlotState expected, const char* what) {
    const std::uint64_t raw = r.u64();
    if (raw >= static_cast<std::uint64_t>(num_slots_))
      throw sim::SnapshotError("SharedBufferPool: " + std::string(what) + " index " +
                               std::to_string(raw) + " out of range");
    const int slot = static_cast<int>(raw);
    if (state_[static_cast<std::size_t>(slot)] != expected)
      throw sim::SnapshotError("SharedBufferPool: " + std::string(what) + " lists slot " +
                               std::to_string(slot) + " whose state disagrees");
    return slot;
  };
  for (int v = 0; v < num_vcs_; ++v) {
    const std::size_t vi = static_cast<std::size_t>(v);
    const std::uint64_t n = r.u64();
    vc_head_[vi] = vc_tail_[vi] = kNone;
    vc_count_[vi] = static_cast<int>(n);
    occupied_count_ += static_cast<int>(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const int slot = read_slot(SlotState::kOccupied, "VC chain");
      if (vc_tail_[vi] != kNone)
        next_[static_cast<std::size_t>(vc_tail_[vi])] = slot;
      else
        vc_head_[vi] = slot;
      vc_tail_[vi] = slot;
    }
  }
  const std::uint64_t free_n = r.u64();
  int free_tail = kNone;
  for (std::uint64_t i = 0; i < free_n; ++i) {
    const int slot = read_slot(SlotState::kFree, "free list");
    prev_[static_cast<std::size_t>(slot)] = free_tail;
    if (free_tail != kNone)
      next_[static_cast<std::size_t>(free_tail)] = slot;
    else
      free_head_ = slot;
    free_tail = slot;
  }
  free_count_ = static_cast<int>(free_n);
  const std::uint64_t waking_n = r.u64();
  for (std::uint64_t i = 0; i < waking_n; ++i) {
    const int slot = read_slot(SlotState::kWaking, "waking queue");
    if (waking_tail_ != kNone)
      next_[static_cast<std::size_t>(waking_tail_)] = slot;
    else
      waking_head_ = slot;
    waking_tail_ = slot;
  }
  waking_count_ = static_cast<int>(waking_n);
  if (free_count_ + occupied_count_ + gated_count_ + waking_count_ != num_slots_)
    throw sim::SnapshotError("SharedBufferPool: slot conservation fails in snapshot (" +
                             std::to_string(free_count_) + " free + " +
                             std::to_string(occupied_count_) + " occupied + " +
                             std::to_string(gated_count_) + " gated + " +
                             std::to_string(waking_count_) + " waking != " +
                             std::to_string(num_slots_) + ")");
  for (int v = 0; v < num_vcs_; ++v) {
    charged_[static_cast<std::size_t>(v)] = 0;
    set_charged(v, static_cast<int>(r.u64()));
  }
}

}  // namespace nbtinoc::noc
