#include "nbtinoc/noc/input_unit.hpp"

#include <algorithm>
#include <stdexcept>

namespace nbtinoc::noc {

int OutVcStateView::num_vcs() const { return count_ >= 0 ? count_ : iu_->num_vcs(); }

VcState OutVcStateView::state(int local) const { return iu_->vc(first_vc_ + local).state(); }

InputUnit::InputUnit(Dir dir, const NocConfig& config)
    : dir_(dir),
      extra_stages_(config.extra_pipeline_stages),
      pool_(config.shared_buffers()
                ? std::make_unique<SharedBufferPool>(config.total_vcs(), config.buffer_depth,
                                                     config.shared_reserve, config.wakeup_latency)
                : nullptr),
      vcs_(static_cast<std::size_t>(config.total_vcs()),
           VcBuffer(config.buffer_depth, config.wakeup_latency)),
      out_vc_(static_cast<std::size_t>(config.total_vcs()), kInvalidVc),
      out_port_(static_cast<std::size_t>(config.total_vcs()), Dir::Local),
      trackers_(static_cast<std::size_t>(config.buffers_per_port())),
      sa_arbiter_(static_cast<std::size_t>(config.total_vcs())) {
  // Event-driven NBTI accounting: each gateable unit (VC buffer, or pool
  // slot under the shared organization) reports its gate/wake transitions
  // straight to its tracker. The banks are sized once here and never
  // reallocate, so the pointers stay stable for the unit's lifetime.
  for (std::size_t i = 0; i < vcs_.size(); ++i) {
    if (pool_ != nullptr)
      vcs_[i].attach_pool(pool_.get(), static_cast<int>(i));
    else
      vcs_[i].attach_stress_tracker(&trackers_.at(i));
    vcs_[i].attach_busy_counter(&busy_vcs_);
    vcs_[i].attach_gated_counter(&gated_vcs_);
  }
  if (pool_ != nullptr)
    for (int s = 0; s < pool_->num_slots(); ++s)
      pool_->attach_stress_tracker(s, &trackers_.at(static_cast<std::size_t>(s)));
}

void InputUnit::assign_output(int i, Dir port, int downstream_vc) {
  out_vc_.at(static_cast<std::size_t>(i)) = downstream_vc;
  out_port_.at(static_cast<std::size_t>(i)) = port;
}

void InputUnit::clear_output(int i) {
  out_vc_.at(static_cast<std::size_t>(i)) = kInvalidVc;
  out_port_.at(static_cast<std::size_t>(i)) = Dir::Local;
}

bool InputUnit::waiting_for_va(int i, sim::Cycle now) const {
  const VcBuffer& buf = vc(i);
  if (!buf.is_active() || buf.empty() || has_output(i)) return false;
  const Flit& front = buf.front();
  // Head at the front, already buffer-written (BW stage completed strictly
  // before this cycle, plus any extra pipeline depth), RC result stored.
  return is_head(front.type) && flit_eligible(front, now);
}

bool InputUnit::has_new_traffic_toward(Dir port, sim::Cycle now) const {
  if (busy_vcs_ == 0) return false;
  for (int i = 0; i < num_vcs(); ++i) {
    if (waiting_for_va(i, now) && vc(i).route() == port) return true;
  }
  return false;
}

bool InputUnit::has_new_traffic_toward(Dir port, int vnet, sim::Cycle now) const {
  if (busy_vcs_ == 0) return false;
  for (int i = 0; i < num_vcs(); ++i) {
    if (waiting_for_va(i, now) && vc(i).route() == port && vc(i).front().vnet == vnet)
      return true;
  }
  return false;
}

bool InputUnit::has_new_traffic_toward(Dir port, int vnet, int cls, sim::Cycle now) const {
  if (busy_vcs_ == 0) return false;
  for (int i = 0; i < num_vcs(); ++i) {
    if (waiting_for_va(i, now) && vc(i).route() == port && vc(i).next_class() == cls &&
        vc(i).front().vnet == vnet)
      return true;
  }
  return false;
}

void InputUnit::receive_flit(const Flit& flit, Dir route, int next_class, sim::Cycle now) {
  if (flit.vc < 0 || flit.vc >= num_vcs())
    throw std::logic_error("InputUnit::receive_flit: bad VC id");
  VcBuffer& buf = vc(flit.vc);
  Flit stored = flit;
  stored.arrived_at = now;
  if (is_head(flit.type)) {
    buf.set_route(route);
    buf.set_next_class(next_class);
  }
  buf.push(stored);
}

void InputUnit::apply_gate_command(const GateCommand& cmd, sim::Cycle now,
                                   sim::FaultInjector* faults) {
  if (cmd.slot_form) {
    apply_slot_gate_command(cmd, now, faults);
    return;
  }
  if (pool_ != nullptr)
    throw std::invalid_argument(
        "InputUnit::apply_gate_command: VC-form command on a shared-pool port");
  const int first = cmd.first_vc;
  if (first < 0 || first >= num_vcs())
    throw std::invalid_argument("InputUnit::apply_gate_command: first_vc " +
                                std::to_string(first) + " outside port of " +
                                std::to_string(num_vcs()) + " VCs");
  if (cmd.range_vcs == 0 || cmd.range_vcs < -1)
    throw std::invalid_argument("InputUnit::apply_gate_command: range_vcs must be positive or -1");
  const int last = cmd.range_vcs < 0 ? num_vcs() : std::min(num_vcs(), first + cmd.range_vcs);
  if (cmd.enable && cmd.keep_vc != kInvalidVc && (cmd.keep_vc < first || cmd.keep_vc >= last))
    throw std::invalid_argument("InputUnit::apply_gate_command: keep_vc " +
                                std::to_string(cmd.keep_vc) + " outside command range [" +
                                std::to_string(first) + ", " + std::to_string(last) + ")");
  // A wake that misses its deadline (injected fault) is a no-op: the buffer
  // stays gated and the retried command wakes it on a later cycle.
  const auto wake = [&](VcBuffer& buf) {
    if (faults != nullptr && faults->wake_fails()) return;
    buf.wake(now);
  };
  if (!cmd.gating_active) {
    // Baseline upstream: every buffer stays (or returns to) powered.
    for (int i = first; i < last; ++i) {
      VcBuffer& buf = vcs_[static_cast<std::size_t>(i)];
      if (buf.is_gated()) wake(buf);
    }
    return;
  }
  for (int i = first; i < last; ++i) {
    VcBuffer& buf = vcs_[static_cast<std::size_t>(i)];
    if (buf.is_active()) continue;  // holds (or is reserved for) a packet
    const bool keep_awake = cmd.enable && i == cmd.keep_vc;
    if (keep_awake) {
      if (buf.is_gated()) wake(buf);
    } else {
      // A wake in flight cannot be aborted: gate only once the buffer has
      // been allocatable for a full cycle (see VcBuffer::in_wake_window).
      if (buf.is_idle() && !buf.in_wake_window(now)) buf.gate(now);
    }
  }
}

void InputUnit::apply_slot_gate_command(const GateCommand& cmd, sim::Cycle now,
                                        sim::FaultInjector* faults) {
  if (pool_ == nullptr)
    throw std::invalid_argument(
        "InputUnit::apply_gate_command: slot-form command on a partitioned port");
  SharedBufferPool& pool = *pool_;
  const int slots = pool.num_slots();
  if (cmd.first_vc < 0 || cmd.first_vc > slots)
    throw std::invalid_argument("InputUnit::apply_gate_command: first slot " +
                                std::to_string(cmd.first_vc) + " outside pool of " +
                                std::to_string(slots) + " slots");
  if (cmd.range_vcs < -1)
    throw std::invalid_argument(
        "InputUnit::apply_gate_command: slot range must be non-negative or -1");
  if (cmd.keep_vc != kInvalidVc && (cmd.keep_vc < 0 || cmd.keep_vc >= slots))
    throw std::invalid_argument("InputUnit::apply_gate_command: wake slot " +
                                std::to_string(cmd.keep_vc) + " outside pool of " +
                                std::to_string(slots) + " slots");
  // Wakes miss their deadline under an injected fault exactly like the VC
  // form; the re-issued command retries next cycle. A wake (or gate) naming
  // a slot in the wrong state is a no-op/skip — link corruption may deliver
  // such commands and must degrade, not crash.
  const auto wake = [&](int slot) {
    if (faults != nullptr && faults->wake_fails()) return;
    pool.wake_slot(slot, now);
  };
  if (!cmd.gating_active) {
    // Baseline upstream: every slot stays (or returns to) powered.
    if (pool.gated_slots() > 0)
      for (int s = 0; s < slots && pool.gated_slots() > 0; ++s)
        if (pool.slot_state(s) == SharedBufferPool::SlotState::kGated) wake(s);
  } else {
    if (cmd.enable && cmd.keep_vc != kInvalidVc &&
        pool.slot_state(cmd.keep_vc) == SharedBufferPool::SlotState::kGated)
      wake(cmd.keep_vc);
    const int last = cmd.range_vcs < 0 ? slots : std::min(slots, cmd.first_vc + cmd.range_vcs);
    for (int s = cmd.first_vc; s < last; ++s) {
      if (pool.slot_state(s) != SharedBufferPool::SlotState::kFree) continue;
      if (!pool.can_gate()) break;
      pool.gate_slot(s, now);
    }
  }
  // Matured wakes rejoin the free list only now, at the end of command
  // application: the slot is allocatable from this cycle's VA onward and
  // re-gateable one cycle later — the pool equivalent of VcBuffer's
  // wake_ready / in_wake_window fencing.
  pool.promote_woken(now);
}

}  // namespace nbtinoc::noc
