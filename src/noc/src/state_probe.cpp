#include "nbtinoc/noc/state_probe.hpp"

#include <stdexcept>

#include "nbtinoc/util/csv.hpp"

namespace nbtinoc::noc {

namespace {
char state_letter(VcState s) {
  switch (s) {
    case VcState::Idle:
      return 'I';
    case VcState::Active:
      return 'A';
    case VcState::Recovery:
      return 'R';
  }
  return '?';
}
}  // namespace

PortStateProbe::PortStateProbe(const Network& network, PortKey key)
    : network_(&network), key_(key), num_vcs_(network.config().total_vcs()) {
  if (!network.router(key.router).has_input(key.port))
    throw std::invalid_argument("PortStateProbe: port does not exist");
}

void PortStateProbe::sample() {
  Record rec;
  rec.cycle = network_->clock().now();
  rec.states.reserve(static_cast<std::size_t>(num_vcs_));
  const auto& iu = network_->router(key_.router).input(key_.port);
  for (int v = 0; v < num_vcs_; ++v) rec.states.push_back(state_letter(iu.vc(v).state()));
  records_.push_back(std::move(rec));
}

PortStateProbe::StateShares PortStateProbe::shares(int vc) const {
  StateShares out;
  if (records_.empty() || vc < 0 || vc >= num_vcs_) return out;
  for (const auto& rec : records_) {
    switch (rec.states[static_cast<std::size_t>(vc)]) {
      case 'I':
        out.idle += 1.0;
        break;
      case 'A':
        out.active += 1.0;
        break;
      case 'R':
        out.recovery += 1.0;
        break;
    }
  }
  const auto n = static_cast<double>(records_.size());
  out.idle /= n;
  out.active /= n;
  out.recovery /= n;
  return out;
}

std::string PortStateProbe::ascii_timeline(std::size_t max_cycles) const {
  const std::size_t count = records_.size() < max_cycles ? records_.size() : max_cycles;
  const std::size_t start = records_.size() - count;
  std::string out;
  for (int v = 0; v < num_vcs_; ++v) {
    out += "VC" + std::to_string(v) + " ";
    for (std::size_t i = 0; i < count; ++i) {
      out += records_[start + i].states[static_cast<std::size_t>(v)];
      if ((i + 1) % 10 == 0 && i + 1 < count) out += ' ';
    }
    out += '\n';
  }
  return out;
}

void PortStateProbe::save_csv(const std::string& path) const {
  util::CsvWriter out(path);
  std::vector<std::string> header{"cycle"};
  for (int v = 0; v < num_vcs_; ++v) header.push_back("vc" + std::to_string(v));
  out.write_row(header);
  for (const auto& rec : records_) {
    std::vector<std::string> row{std::to_string(rec.cycle)};
    for (char c : rec.states) row.emplace_back(1, c);
    out.write_row(row);
  }
}

}  // namespace nbtinoc::noc
