#include "nbtinoc/noc/state_probe.hpp"

#include <stdexcept>

#include "nbtinoc/util/csv.hpp"

namespace nbtinoc::noc {

namespace {
char state_letter(VcState s) {
  switch (s) {
    case VcState::Idle:
      return 'I';
    case VcState::Active:
      return 'A';
    case VcState::Recovery:
      return 'R';
  }
  return '?';
}
}  // namespace

PortStateProbe::PortStateProbe(const Network& network, PortKey key)
    : network_(&network), key_(key), num_vcs_(network.config().total_vcs()) {
  if (!network.router(key.router).has_input(key.port))
    throw std::invalid_argument("PortStateProbe: port does not exist");
}

void PortStateProbe::sample() {
  Record rec;
  rec.cycle = network_->clock().now();
  rec.states.reserve(static_cast<std::size_t>(num_vcs_));
  const auto& iu = network_->router(key_.router).input(key_.port);
  for (int v = 0; v < num_vcs_; ++v) rec.states.push_back(state_letter(iu.vc(v).state()));
  records_.push_back(std::move(rec));
}

PortStateProbe::StateShares PortStateProbe::shares(int vc) const {
  StateShares out;
  if (records_.empty() || vc < 0 || vc >= num_vcs_) return out;
  for (const auto& rec : records_) {
    switch (rec.states[static_cast<std::size_t>(vc)]) {
      case 'I':
        out.idle += 1.0;
        break;
      case 'A':
        out.active += 1.0;
        break;
      case 'R':
        out.recovery += 1.0;
        break;
    }
  }
  const auto n = static_cast<double>(records_.size());
  out.idle /= n;
  out.active /= n;
  out.recovery /= n;
  return out;
}

std::string PortStateProbe::ascii_timeline(std::size_t max_cycles) const {
  const std::size_t count = records_.size() < max_cycles ? records_.size() : max_cycles;
  const std::size_t start = records_.size() - count;
  std::string out;
  for (int v = 0; v < num_vcs_; ++v) {
    out += "VC" + std::to_string(v) + " ";
    for (std::size_t i = 0; i < count; ++i) {
      out += records_[start + i].states[static_cast<std::size_t>(v)];
      if ((i + 1) % 10 == 0 && i + 1 < count) out += ' ';
    }
    out += '\n';
  }
  return out;
}

InvariantChecker::InvariantChecker(const Network& network)
    : InvariantChecker(network, Options{}) {}

InvariantChecker::InvariantChecker(const Network& network, Options options)
    : network_(&network), options_(options) {}

void InvariantChecker::record(sim::Cycle cycle, std::string what) {
  if (violations_.size() < options_.max_violations)
    violations_.push_back(Violation{cycle, std::move(what)});
}

std::size_t InvariantChecker::check() {
  const std::size_t before = violations_.size();
  const sim::Cycle cycle = network_->clock().now();
  check_gated_buffers(cycle);
  check_shared_pools(cycle);
  check_credit_conservation(cycle);
  check_flit_conservation(cycle);
  check_deadlock(cycle);
  if (network_->scheduler_mode() == SchedulerMode::kActiveSet) check_active_set(cycle);
  ++cycles_checked_;
  return violations_.size() - before;
}

void InvariantChecker::check_or_throw() {
  const std::size_t found = check();
  if (found > 0)
    throw std::runtime_error("InvariantChecker: cycle " +
                             std::to_string(violations_.back().cycle) + ": " +
                             violations_[violations_.size() - found].what);
}

void InvariantChecker::check_gated_buffers(sim::Cycle cycle) {
  const NocConfig& cfg = network_->config();
  for (NodeId id = 0; id < network_->num_routers(); ++id) {
    const Router& r = network_->router(id);
    for (int p = 0; p < r.num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r.has_input(port)) continue;
      const InputUnit& iu = r.input(port);
      for (int v = 0; v < cfg.total_vcs(); ++v) {
        const VcBuffer& buf = iu.vc(v);
        if (buf.state() == VcState::Recovery && buf.occupancy() > 0)
          record(cycle, "flit(s) resident in gated buffer r" + std::to_string(id) + ":" +
                            dir_letter(port) + " vc" + std::to_string(v) + " (occupancy " +
                            std::to_string(buf.occupancy()) + ")");
      }
    }
  }
}

void InvariantChecker::check_shared_pools(sim::Cycle cycle) {
  const NocConfig& cfg = network_->config();
  if (!cfg.shared_buffers()) return;
  for (NodeId id = 0; id < network_->num_routers(); ++id) {
    const Router& r = network_->router(id);
    for (int p = 0; p < r.num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r.has_input(port)) continue;
      const SharedBufferPool* pool = r.input(port).pool();
      const std::string where = "r" + std::to_string(id) + ":" + dir_letter(port);
      if (pool == nullptr) {
        record(cycle, "shared organization but port " + where + " has no slot pool");
        continue;
      }
      // Slot conservation: recount the states and compare against the O(1)
      // counters the scheduler proofs rely on.
      int free = 0;
      int occupied = 0;
      int gated = 0;
      int waking = 0;
      for (int s = 0; s < pool->num_slots(); ++s) {
        switch (pool->slot_state(s)) {
          case SharedBufferPool::SlotState::kFree:
            ++free;
            break;
          case SharedBufferPool::SlotState::kOccupied:
            ++occupied;
            break;
          case SharedBufferPool::SlotState::kGated:
            ++gated;
            break;
          case SharedBufferPool::SlotState::kWaking:
            ++waking;
            break;
        }
      }
      if (free != pool->free_slots() || occupied != pool->occupied_slots() ||
          gated != pool->gated_slots() || waking != pool->waking_slots())
        record(cycle, "slot conservation broken on " + where + ": census F/O/G/W = " +
                          std::to_string(free) + "/" + std::to_string(occupied) + "/" +
                          std::to_string(gated) + "/" + std::to_string(waking) +
                          " vs counters " + std::to_string(pool->free_slots()) + "/" +
                          std::to_string(pool->occupied_slots()) + "/" +
                          std::to_string(pool->gated_slots()) + "/" +
                          std::to_string(pool->waking_slots()));
      // Every flit lives in exactly one VC chain; the chains partition the
      // Occupied slots.
      int chained = 0;
      for (int v = 0; v < cfg.total_vcs(); ++v) chained += pool->occupancy(v);
      if (chained != occupied)
        record(cycle, "pool chain census broken on " + where + ": VC chains hold " +
                          std::to_string(chained) + " flit(s) but " + std::to_string(occupied) +
                          " slot(s) are Occupied");
      // Overcommit accumulator against its defining sum, and invariant M*
      // itself (sum_v max(charged_v, R) <= slots - gated - waking): M* is
      // what guarantees every in-flight flit a Free slot on arrival.
      int overcommit = 0;
      int pledged = 0;
      for (int v = 0; v < cfg.total_vcs(); ++v) {
        const int c = pool->charged(v);
        overcommit += c > pool->reserve() ? c - pool->reserve() : 0;
        pledged += c > pool->reserve() ? c : pool->reserve();
      }
      if (overcommit != pool->overcommit())
        record(cycle, "pool overcommit accumulator broken on " + where + ": " +
                          std::to_string(pool->overcommit()) + " vs recomputed " +
                          std::to_string(overcommit));
      if (!r.input_port_dead(port) && pledged > pool->num_slots() - gated - waking)
        record(cycle, "pool reservation invariant (M*) broken on " + where +
                          ": pledged " + std::to_string(pledged) + " slot(s) but only " +
                          std::to_string(pool->num_slots() - gated - waking) +
                          " powered-on slot(s)");
    }
  }
}

namespace {
/// Per-VC link population: flits (by flit.vc) or credits (by credit.vc).
template <typename T>
std::size_t in_flight_for_vc(const Channel<T>* link, int vc) {
  std::size_t n = 0;
  if (link != nullptr)
    link->for_each_in_flight([&](const T& payload, sim::Cycle) {
      if (payload.vc == vc) ++n;
    });
  return n;
}
}  // namespace

void InvariantChecker::check_credit_conservation(sim::Cycle cycle) {
  const NocConfig& cfg = network_->config();
  // Router-router links: the upstream output unit's credit view of each
  // downstream VC, closed over both in-flight directions.
  const Topology& topo = network_->topology();
  for (NodeId id = 0; id < network_->num_routers(); ++id) {
    const Router& r = network_->router(id);
    // Dead resources are outside the identity: their channels were cleared
    // and their credit counters zeroed by the structural-fault drain.
    if (r.dead()) continue;
    for (int d = 0; d < 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      if (!r.has_output(dir) || r.downstream_input(dir) == nullptr) continue;
      if (!topo.link_alive(id, dir)) continue;
      const InputUnit& diu = *r.downstream_input(dir);
      for (int v = 0; v < cfg.total_vcs(); ++v) {
        if (const SharedBufferPool* pool = diu.pool()) {
          // Shared organization: the identity is charge-resident. Everything
          // the upstream charged for v is in flight on the two links or
          // resident in v's slot chain — nothing else.
          const std::size_t total = in_flight_for_vc(r.flit_out_link(dir), v) +
                                    in_flight_for_vc(r.credit_in_link(dir), v) +
                                    static_cast<std::size_t>(diu.vc(v).occupancy());
          if (total != static_cast<std::size_t>(pool->charged(v)))
            record(cycle, "pool charge leak on r" + std::to_string(id) + " output " +
                              to_string(dir) + " vc" + std::to_string(v) +
                              ": in_flight+occupancy = " + std::to_string(total) +
                              " but charged " + std::to_string(pool->charged(v)));
          continue;
        }
        const std::size_t total = static_cast<std::size_t>(r.output(dir).credits(v)) +
                                  in_flight_for_vc(r.flit_out_link(dir), v) +
                                  in_flight_for_vc(r.credit_in_link(dir), v) +
                                  static_cast<std::size_t>(diu.vc(v).occupancy());
        if (total != static_cast<std::size_t>(cfg.buffer_depth))
          record(cycle, "credit leak on r" + std::to_string(id) + " output " + to_string(dir) +
                            " vc" + std::to_string(v) + ": credits+in_flight+occupancy = " +
                            std::to_string(total) + ", expected " +
                            std::to_string(cfg.buffer_depth));
      }
    }
  }
  // NI injection path: same identity for each terminal's local input port.
  for (NodeId id = 0; id < network_->nodes(); ++id) {
    const NetworkInterface& ni = network_->ni(id);
    if (ni.dead()) continue;
    const InputUnit& liu = network_->router(topo.router_of(id)).input(topo.local_port_of(id));
    for (int v = 0; v < cfg.total_vcs(); ++v) {
      if (const SharedBufferPool* pool = liu.pool()) {
        const std::size_t total = in_flight_for_vc(ni.inject_link(), v) +
                                  in_flight_for_vc(ni.credit_link(), v) +
                                  static_cast<std::size_t>(liu.vc(v).occupancy());
        if (total != static_cast<std::size_t>(pool->charged(v)))
          record(cycle, "pool charge leak on NI " + std::to_string(id) + " injection path vc" +
                            std::to_string(v) + ": in_flight+occupancy = " + std::to_string(total) +
                            " but charged " + std::to_string(pool->charged(v)));
        continue;
      }
      const std::size_t total = static_cast<std::size_t>(ni.credits(v)) +
                                in_flight_for_vc(ni.inject_link(), v) +
                                in_flight_for_vc(ni.credit_link(), v) +
                                static_cast<std::size_t>(liu.vc(v).occupancy());
      if (total != static_cast<std::size_t>(cfg.buffer_depth))
        record(cycle, "credit leak on NI " + std::to_string(id) +
                          " injection path vc" + std::to_string(v) + ": " + std::to_string(total) +
                          ", expected " + std::to_string(cfg.buffer_depth));
    }
  }
}

void InvariantChecker::check_flit_conservation(sim::Cycle cycle) {
  const std::size_t resident = network_->flits_resident();
  const std::uint64_t injected = network_->stats().counter("noc.flits_injected");
  const std::uint64_t ejected = network_->stats().counter("noc.flits_ejected");
  // Flits removed by structural-fault drains are accounted, not lost: the
  // network tallies every purge (monotonic, never reset with the registry).
  const std::uint64_t dropped = network_->dropped_flits();
  // A counter running backwards means the registry was reset (warmup
  // fence): re-baseline instead of reporting a bogus loss.
  if (census_valid_ && injected >= last_injected_ && ejected >= last_ejected_) {
    const auto expected = static_cast<std::int64_t>(last_resident_) +
                          static_cast<std::int64_t>(injected - last_injected_) -
                          static_cast<std::int64_t>(ejected - last_ejected_) -
                          static_cast<std::int64_t>(dropped - last_dropped_);
    if (expected != static_cast<std::int64_t>(resident))
      record(cycle, "flit conservation broken: resident census " + std::to_string(resident) +
                        " but expected " + std::to_string(expected) +
                        " (injected/ejected/dropped delta since last check)");
  }
  census_valid_ = true;
  last_resident_ = resident;
  last_injected_ = injected;
  last_ejected_ = ejected;
  last_dropped_ = dropped;
}

void InvariantChecker::check_deadlock(sim::Cycle cycle) {
  const sim::StatRegistry& stats = network_->stats();
  const std::uint64_t movement =
      stats.counter("noc.flits_injected") + stats.counter("noc.flits_ejected") +
      stats.counter("noc.flits_forwarded") + stats.counter("noc.flits_ejected_router");
  if (movement != last_movement_ || network_->flits_resident() == 0) {
    last_movement_ = movement;
    last_progress_cycle_ = cycle;
    deadlock_reported_ = false;
    return;
  }
  if (!deadlock_reported_ && cycle >= last_progress_cycle_ &&
      cycle - last_progress_cycle_ >= options_.deadlock_threshold) {
    record(cycle, "deadlock: " + std::to_string(network_->flits_resident()) +
                      " flit(s) resident with no movement since cycle " +
                      std::to_string(last_progress_cycle_));
    deadlock_reported_ = true;
  }
}

namespace {
/// True if `link` carries any payload whose delivery cycle is <= `by`.
template <typename T>
bool has_payload_due(const Channel<T>* link, sim::Cycle by) {
  bool due = false;
  if (link != nullptr)
    link->for_each_in_flight([&](const T&, sim::Cycle at) {
      if (at <= by) due = true;
    });
  return due;
}
}  // namespace

void InvariantChecker::check_active_set(sim::Cycle cycle) {
  // `cycle` is the cycle about to execute; router_active()/ni_active() name
  // the components scheduled for it. Any parked component must be provably
  // inert *this* cycle: no busy datapath, gating at its fixed point, and no
  // link payload already deliverable. Payloads due at cycle+1 and later are
  // legal while parked — their wakes sit in the scheduler's wake ring/heap,
  // which this read-only probe intentionally cannot see.
  for (NodeId id = 0; id < network_->num_routers(); ++id) {
    if (network_->router_active(id)) continue;
    const Router& r = network_->router(id);
    if (r.any_busy_input())
      record(cycle, "active-set: parked router r" + std::to_string(id) + " has a busy input VC");
    if (!network_->router_gating_fixed_point(id))
      record(cycle, "active-set: parked router r" + std::to_string(id) +
                        " is not at its gating fixed point");
    for (int p = 0; p < r.num_ports(); ++p) {
      const Dir dir = static_cast<Dir>(p);
      if (has_payload_due(r.flit_in_link(dir), cycle))
        record(cycle, "active-set: parked router r" + std::to_string(id) +
                          " has a deliverable inbound flit on " + to_string(dir));
      if (has_payload_due(r.credit_in_link(dir), cycle))
        record(cycle, "active-set: parked router r" + std::to_string(id) +
                          " has a deliverable inbound credit on " + to_string(dir));
    }
  }
  for (NodeId t = 0; t < network_->nodes(); ++t) {
    if (network_->ni_active(t)) continue;
    const NetworkInterface& ni = network_->ni(t);
    if (!ni.idle())
      record(cycle, "active-set: parked NI " + std::to_string(t) + " holds queued/sending work");
    if (has_payload_due(ni.credit_link(), cycle) || has_payload_due(ni.eject_link(), cycle))
      record(cycle,
             "active-set: parked NI " + std::to_string(t) + " has a deliverable inbound payload");
  }
}

void PortStateProbe::save_csv(const std::string& path) const {
  util::CsvWriter out(path);
  std::vector<std::string> header{"cycle"};
  for (int v = 0; v < num_vcs_; ++v) header.push_back("vc" + std::to_string(v));
  out.write_row(header);
  for (const auto& rec : records_) {
    std::vector<std::string> row{std::to_string(rec.cycle)};
    for (char c : rec.states) row.emplace_back(1, c);
    out.write_row(row);
  }
}

}  // namespace nbtinoc::noc
