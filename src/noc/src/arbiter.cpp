#include "nbtinoc/noc/arbiter.hpp"

namespace nbtinoc::noc {

int RoundRobinArbiter::peek(const std::vector<bool>& requests) const {
  const std::size_t n = size_ < requests.size() ? size_ : requests.size();
  if (n == 0) return -1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (pointer_ + i) % n;
    if (requests[idx]) return static_cast<int>(idx);
  }
  return -1;
}

int RoundRobinArbiter::peek(const RequestSet& requests) const {
  const std::size_t n = size_ < requests.size() ? size_ : requests.size();
  if (n == 0) return -1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (pointer_ + i) % n;
    if (requests.test(idx)) return static_cast<int>(idx);
  }
  return -1;
}

int RoundRobinArbiter::arbitrate(const std::vector<bool>& requests) {
  const int winner = peek(requests);
  if (winner >= 0 && size_ > 0) pointer_ = (static_cast<std::size_t>(winner) + 1) % size_;
  return winner;
}

int RoundRobinArbiter::arbitrate(const RequestSet& requests) {
  const int winner = peek(requests);
  if (winner >= 0 && size_ > 0) pointer_ = (static_cast<std::size_t>(winner) + 1) % size_;
  return winner;
}

}  // namespace nbtinoc::noc
