#include "nbtinoc/noc/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nbtinoc/noc/fault_routing.hpp"

namespace nbtinoc::noc {

Network::Network(NocConfig config) : config_(config), controller_(&baseline_controller_) {
  config_.validate();
  topo_ = Topology::create(config_);
  const int n = topo_->num_routers();
  const int terminals = topo_->num_terminals();
  const int ports = topo_->ports_per_router();
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(terminals));
  sources_.resize(static_cast<std::size_t>(terminals));
  for (NodeId id = 0; id < n; ++id)
    routers_.push_back(std::make_unique<Router>(id, config_, stats_, topo_.get()));
  for (NodeId t = 0; t < terminals; ++t)
    nis_.push_back(std::make_unique<NetworkInterface>(t, config_, stats_));

  // Router-to-router links: for every directed neighbor pair, one flit
  // channel downstream and one credit channel upstream.
  for (NodeId u = 0; u < n; ++u) {
    for (int d = 0; d < 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const NodeId r = topo_->neighbor(u, dir);
      if (r == kInvalidNode) continue;
      auto flit_link = std::make_unique<Channel<Flit>>(NocConfig::kLinkDelay);
      auto credit_link = std::make_unique<Channel<Credit>>(NocConfig::kCreditDelay);
      // A delivered flit wakes the downstream router; a returning credit
      // wakes the upstream one (active-set push hooks bind by these sinks).
      flit_sinks_.push_back(ChannelSink{false, r});
      credit_sinks_.push_back(ChannelSink{false, u});
      // From the receiver's point of view the sender sits in direction
      // opposite(dir): u's East output feeds r's West input. On wrap links
      // (torus, ring) this holds too — neighbor() is symmetric under
      // opposite(), so each directed port pair is wired exactly once even
      // on 2-wide dimensions where both of u's x-ports face the same r.
      router(r).wire_input(opposite(dir), flit_link.get(), credit_link.get());
      router(u).wire_output(dir, &router(r).input(opposite(dir)), flit_link.get(),
                            credit_link.get());
      flit_channels_.push_back(std::move(flit_link));
      credit_channels_.push_back(std::move(credit_link));
    }
  }

  // NI links: injection (NI -> its router's local input), its credit
  // return, and the ejection channel (router local output -> NI). Each
  // terminal owns one local port of its router.
  for (NodeId t = 0; t < terminals; ++t) {
    const NodeId r = topo_->router_of(t);
    const Dir local = topo_->local_port_of(t);
    auto inject = std::make_unique<Channel<Flit>>(NocConfig::kLinkDelay);
    auto credit = std::make_unique<Channel<Credit>>(NocConfig::kCreditDelay);
    auto eject = std::make_unique<Channel<Flit>>(NocConfig::kLinkDelay);
    router(r).wire_input(local, inject.get(), credit.get());
    router(r).wire_ejection(local, eject.get());
    ni(t).wire(&router(r).input(local), inject.get(), credit.get(), eject.get());
    ni(t).set_topology(topo_.get());
    flit_channels_.push_back(std::move(inject));
    flit_channels_.push_back(std::move(eject));
    credit_channels_.push_back(std::move(credit));
    flit_sinks_.push_back(ChannelSink{false, r});  // injection: wakes the router
    flit_sinks_.push_back(ChannelSink{true, t});   // ejection: wakes the NI
    credit_sinks_.push_back(ChannelSink{true, t});
  }

  // Active-set scheduler state (engaged by set_scheduler_mode).
  active_routers_.resize(n);
  active_nis_.resize(terminals);
  stepped_routers_.resize(n);
  stepped_nis_.resize(terminals);
  for (auto& set : wake_routers_) set.resize(n);
  for (auto& set : wake_nis_) set.resize(terminals);
  wake_heap_.reserve(static_cast<std::size_t>(n) + 4 * static_cast<std::size_t>(terminals));
  pinned_routers_.assign(static_cast<std::size_t>(n), 0);

  // Up_Down command links, one per existing input port. Delay 0: the
  // upstream pre-VA logic and the downstream header PMOS share a cycle
  // (the paper's dedicated control wiring), but commands still *traverse a
  // channel*, giving the fault injector a delivery point to drop or
  // corrupt them at.
  gating_record_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(ports) *
                            static_cast<std::size_t>(config_.num_vnets) *
                            static_cast<std::size_t>(config_.vc_classes()),
                        0);

  up_down_links_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(ports));
  for (NodeId id = 0; id < n; ++id)
    for (int p = 0; p < ports; ++p)
      if (router(id).has_input(static_cast<Dir>(p)))
        up_down_links_[static_cast<std::size_t>(id) * static_cast<std::size_t>(ports) +
                       static_cast<std::size_t>(p)] = std::make_unique<Channel<GateCommand>>(0);
}

void Network::set_gate_controller(IGateController* controller) {
  controller_ = controller != nullptr ? controller : &baseline_controller_;
  // Mid-run swap under the active-set scheduler: parked routers sit at the
  // *old* policy's gating fixed point — wake everything so each port
  // re-proves its fixed point against the new policy before re-parking.
  if (scheduler_mode_ == SchedulerMode::kActiveSet) active_routers_.insert_all();
}

void Network::set_traffic_source(NodeId node, std::unique_ptr<ITrafficSource> source) {
  ni(node).set_traffic_source(source.get());
  sources_.at(static_cast<std::size_t>(node)) = std::move(source);
  // Mid-run installation under the active-set scheduler: the NI may be
  // parked on the old source's (or no) horizon — re-activate it so the next
  // retire pass re-parks against the new source's next_event_cycle.
  if (scheduler_mode_ == SchedulerMode::kActiveSet) active_nis_.insert(node);
}

Channel<GateCommand>& Network::up_down_link_mutable(NodeId router, Dir port) {
  const auto ports = static_cast<std::size_t>(config_.ports_per_router());
  auto& link = up_down_links_.at(static_cast<std::size_t>(router) * ports +
                                 static_cast<std::size_t>(port));
  if (link == nullptr) throw std::invalid_argument("Network::up_down_link: port does not exist");
  return *link;
}

const Channel<GateCommand>& Network::up_down_link(NodeId router, Dir port) const {
  const auto ports = static_cast<std::size_t>(config_.ports_per_router());
  const auto& link = up_down_links_.at(static_cast<std::size_t>(router) * ports +
                                       static_cast<std::size_t>(port));
  if (link == nullptr) throw std::invalid_argument("Network::up_down_link: port does not exist");
  return *link;
}

void Network::set_fault_injector(sim::FaultInjector* injector) {
  injector_ = injector;
  const int ports = config_.ports_per_router();
  // Control-plane hooks and pins only exist for control-enabled plans: a
  // structural-only plan must leave every Up_Down link on the zero-overhead
  // exact-delivery path (no RNG draws, no pinned routers) — its kills are
  // fixed-cycle events the schedulers fence on instead.
  const bool control = injector_ != nullptr && injector_->plan().control_enabled();
  for (NodeId id = 0; id < num_routers(); ++id) {
    for (int p = 0; p < ports; ++p) {
      auto& link = up_down_links_[static_cast<std::size_t>(id) * static_cast<std::size_t>(ports) +
                                  static_cast<std::size_t>(p)];
      if (link == nullptr) continue;
      // The storm only touches links its plan targets (an empty target list
      // targets everything — the pre-locality behavior). Untargeted links
      // keep the zero-overhead exact-delivery path and draw no RNG, so the
      // active-set scheduler can go on parking their routers.
      if (!control || !injector_->plan().targets_port(id, p)) {
        link->set_fault_hook({});
        continue;
      }
      link->set_fault_hook([this](GateCommand& cmd, sim::Cycle) {
        if (injector_->drop_gate_command()) return false;
        int shift = 0;
        if (cmd.slot_form) {
          const int slots = config_.pool_slots();
          if (injector_->flip_gate_command(slots, &shift)) {
            // Slot-form corruption: the wake target rotates across the pool
            // (or a spurious wake appears); the downstream apply tolerates
            // targets in the wrong state, so corruption degrades gracefully.
            cmd.enable = true;
            cmd.keep_vc = cmd.keep_vc == kInvalidVc ? shift : (cmd.keep_vc + shift) % slots;
          }
          return true;
        }
        if (injector_->flip_gate_command(cmd.range_vcs, &shift)) {
          // Corrupt the command but keep it well-formed for its vnet range:
          // a valid keep_vc rotates within the range; a command that kept
          // nothing awake gains a spurious enable on an arbitrary range VC.
          const int range = cmd.range_vcs;
          if (cmd.enable && cmd.keep_vc != kInvalidVc) {
            cmd.keep_vc = cmd.first_vc + (cmd.keep_vc - cmd.first_vc + shift) % range;
          } else {
            cmd.gating_active = true;
            cmd.enable = true;
            cmd.keep_vc = cmd.first_vc + shift;
          }
        }
        return true;
      });
    }
  }
  refresh_fault_pins();

  // Structural kill schedule: validate, sort (cycle, router, port) so the
  // apply order is deterministic, and cache the first fence cycle.
  structural_events_.clear();
  next_structural_ = 0;
  next_structural_cycle_ = sim::kCycleNever;
  if (injector_ != nullptr && injector_->plan().structural_enabled()) {
    structural_events_ = injector_->plan().structural;
    for (const auto& f : structural_events_) {
      if (f.router < 0 || f.router >= num_routers())
        throw std::invalid_argument("Network: structural fault router out of range");
      if (f.port >= 4)
        throw std::invalid_argument(
            "Network: structural fault port must be a cardinal direction or kWholeRouter");
    }
    std::sort(structural_events_.begin(), structural_events_.end(),
              [](const sim::StructuralFault& a, const sim::StructuralFault& b) {
                if (a.cycle != b.cycle) return a.cycle < b.cycle;
                if (a.router != b.router) return a.router < b.router;
                return a.port < b.port;
              });
    next_structural_cycle_ = structural_events_.front().cycle;
  }
}

void Network::refresh_fault_pins() {
  std::fill(pinned_routers_.begin(), pinned_routers_.end(), 0);
  if (injector_ == nullptr || !injector_->plan().control_enabled()) return;
  const int ports = config_.ports_per_router();
  for (NodeId id = 0; id < num_routers(); ++id) {
    for (int p = 0; p < ports; ++p) {
      if (!router(id).has_input(static_cast<Dir>(p))) continue;
      if (!injector_->plan().targets_port(id, p)) continue;
      // Every fault process at this router (link hook draws, wake-fail
      // draws, the controller's per-epoch sensor machinery) must run at its
      // stepped-schedule position, so the router can never park.
      pinned_routers_[static_cast<std::size_t>(id)] = 1;
      if (scheduler_mode_ == SchedulerMode::kActiveSet) active_routers_.insert(id);
      break;
    }
  }
}

sim::FaultInjector* Network::injector_for(NodeId id, Dir port) const {
  if (injector_ == nullptr || !injector_->plan().control_enabled()) return nullptr;
  return injector_->plan().targets_port(id, static_cast<int>(port)) ? injector_ : nullptr;
}

void Network::gating_stage() {
  const sim::Cycle now = clock_.now();
  for (NodeId id = 0; id < num_routers(); ++id) gating_stage_for(id, now);
}

void Network::gating_stage_for(NodeId id, sim::Cycle now) {
  const int ports = config_.ports_per_router();
  const int num_classes = config_.vc_classes();
  Router& r = router(id);
  if (r.dead()) return;  // structurally killed: no gating, no commands
  for (int p = 0; p < ports; ++p) {
    const Dir port = static_cast<Dir>(p);
    if (!r.has_input(port) || r.input_port_dead(port)) continue;
    sim::FaultInjector* port_injector = injector_for(id, port);
    if (config_.shared_buffers()) {
      // Shared organization: gating is slot-granular and the pool is one
      // physical resource, so the pre-VA policy decides once per *port*
      // (whole-port traffic signal, whole-port view). Per-(vnet, class)
      // isolation is preserved structurally instead: every VC keeps its
      // reserved slots powered (invariant M*), so an escape class can
      // always make progress no matter which slots the policy gates.
      bool new_traffic = false;
      if (is_local(port)) {
        new_traffic = ni(topo_->terminal_of(id, local_slot(port))).has_new_traffic(now);
      } else {
        const NodeId upstream = topo_->neighbor(id, port);
        new_traffic = router(upstream).has_new_traffic_toward(opposite(port), now);
      }
      const OutVcStateView view(&r.input(port));
      GateCommand cmd = controller_->decide(PortKey{id, port}, view, new_traffic, now);
      cmd.slot_form = true;  // slot indices are pool-absolute: no rebase
      const unsigned char active = cmd.gating_active ? 1 : 0;
      for (int vn = 0; vn < config_.num_vnets; ++vn)
        for (int cls = 0; cls < num_classes; ++cls)
          gating_record_[gating_record_index(id, port, vn, cls)] = active;
      Channel<GateCommand>& link = up_down_link_mutable(id, port);
      link.push(cmd, now);
      while (auto delivered = link.pop_ready(now))
        r.input(port).apply_gate_command(*delivered, now, port_injector);
      continue;
    }
    // One pre-VA decision per (virtual network, dateline class): each
    // class's VC subrange is managed exactly like the paper's
    // single-vnet case. The split matters for deadlock freedom — a
    // sensor-wise policy keeping only one VC awake per decision must
    // keep one *per class*, or a packet needing the other class would
    // wait forever behind a traffic signal that never fires for it.
    // Single-class topologies run the class loop once over the whole
    // vnet, reproducing the pre-topology decision sequence exactly.
    for (int vn = 0; vn < config_.num_vnets; ++vn) {
      for (int cls = 0; cls < num_classes; ++cls) {
        bool new_traffic = false;
        if (is_local(port)) {
          new_traffic = ni(topo_->terminal_of(id, local_slot(port))).has_new_traffic(vn, cls, now);
        } else {
          const NodeId upstream = topo_->neighbor(id, port);
          new_traffic = router(upstream).has_new_traffic_toward(opposite(port), vn, cls, now);
        }
        const int first = config_.first_vc_of_vnet(vn) + config_.class_first_vc(cls);
        const OutVcStateView view(&r.input(port), first, config_.class_num_vcs(cls));
        GateCommand cmd = controller_->decide(PortKey{id, port}, view, new_traffic, now);
        if (cmd.keep_vc != kInvalidVc) cmd.keep_vc += first;  // local -> global
        cmd.first_vc = first;
        cmd.range_vcs = config_.class_num_vcs(cls);
        gating_record_[gating_record_index(id, port, vn, cls)] = cmd.gating_active ? 1 : 0;
        // The command crosses its Up_Down channel (delay 0: push, then
        // pop the same cycle). Under fault injection the channel's hook
        // may drop it — the downstream port then simply holds state —
        // or corrupt it in range.
        Channel<GateCommand>& link = up_down_link_mutable(id, port);
        link.push(cmd, now);
        while (auto delivered = link.pop_ready(now))
          r.input(port).apply_gate_command(*delivered, now, port_injector);
      }
    }
  }
}

void Network::step() {
  if (scheduler_mode_ == SchedulerMode::kActiveSet) {
    step_active();
    return;
  }
  const sim::Cycle now = clock_.now();
  if (now >= next_structural_cycle_) apply_structural_faults(now);
  gating_stage();
  for (auto& r : routers_) r->va_stage(now);
  for (auto& r : routers_) r->sa_st_stage(now);
  for (auto& r : routers_) r->accept_arrivals(now);
  for (auto& ni : nis_) ni->receive(now);
  for (auto& ni : nis_) {
    ni->inject(now, packet_id_counter_);
    ni->generate(now);
  }
  // NBTI accounting is event-driven: buffers notified their trackers at
  // gate/wake transitions during this cycle; nothing to walk here. Readers
  // fence via sync_stress_accounting() (run(), the warmup fence, the duty
  // accessors) or per-port sync_stress() (the controller's sensor epochs).
  controller_->post_cycle(now);
  clock_.tick();
}

void Network::run(sim::Cycle cycles) {
  const sim::Cycle end = clock_.now() + cycles;
  if (scheduler_mode_ == SchedulerMode::kActiveSet) {
    while (clock_.now() < end) {
      drain_wakes(clock_.now());
      // Full quiescence degenerates to the event-horizon jump: with nothing
      // active now, nothing scheduled for the next cycle, and retire having
      // left the far ring slot empty, the only possible events are heap
      // wakes and controller epochs — jump to the earliest (clamped to this
      // run's end fence).
      if (active_routers_.empty() && active_nis_.empty() && wake_routers_[0].empty() &&
          wake_nis_[0].empty()) {
        const sim::Cycle now = clock_.now();
        sim::EventHorizon horizon(now);
        horizon.consider(controller_->next_event_cycle(now));
        horizon.consider(wake_heap_.top_cycle());
        horizon.consider(next_structural_cycle_);  // never jump across a kill
        const sim::Cycle target = std::min(horizon.horizon(), end);
        if (target > now) {
          skip_stats_.note_skip(target - now);
          clock_.advance(target - now);
          continue;  // re-drain heap wakes due at the landing cycle
        }
        // Horizon pinned at now (e.g. a sensor epoch due this cycle):
        // execute it — with empty active sets that is post_cycle + tick.
      }
      step_active();
    }
    sync_stress_accounting();
    return;
  }
  while (clock_.now() < end) {
    step();
    // Fast-forward: once the mesh is provably quiescent, nothing observable
    // can happen before the next traffic fire or sensor epoch, so jump the
    // clock straight there (clamped to this run's end fence). The stress
    // trackers are lazy (note_state/sync), so the skipped span accrues to
    // each buffer's unchanged state at the next fence — exactly what
    // stepping the same span would have recorded.
    if (scheduler_mode_ != SchedulerMode::kFastForward || clock_.now() >= end || !quiescent())
      continue;
    const sim::Cycle target = std::min(next_event_horizon(), end);
    if (target > clock_.now()) {
      skip_stats_.note_skip(target - clock_.now());
      clock_.advance(target - clock_.now());
    }
  }
  // One O(buffers) flush per run() call, so counters are current for any
  // reader that inspects trackers directly after the call.
  sync_stress_accounting();
}

void Network::set_scheduler_mode(SchedulerMode mode) {
  if (mode == scheduler_mode_) return;
  const bool was_active = scheduler_mode_ == SchedulerMode::kActiveSet;
  scheduler_mode_ = mode;
  if (mode == SchedulerMode::kActiveSet) {
    install_push_hooks();
    // Everything starts live; the first retire pass parks what it can.
    active_routers_.insert_all();
    active_nis_.insert_all();
    for (auto& set : wake_routers_) set.clear();
    for (auto& set : wake_nis_) set.clear();
    wake_heap_.clear();
    refresh_fault_pins();
  } else if (was_active) {
    remove_push_hooks();
  }
}

void Network::install_push_hooks() {
  for (std::size_t i = 0; i < flit_channels_.size(); ++i) {
    const ChannelSink sink = flit_sinks_[i];
    flit_channels_[i]->set_push_hook([this, sink](sim::Cycle ready_at) {
      if (sink.is_ni)
        wake_ni_at(sink.id, ready_at);
      else
        wake_router_at(sink.id, ready_at);
    });
  }
  for (std::size_t i = 0; i < credit_channels_.size(); ++i) {
    const ChannelSink sink = credit_sinks_[i];
    credit_channels_[i]->set_push_hook([this, sink](sim::Cycle ready_at) {
      if (sink.is_ni)
        wake_ni_at(sink.id, ready_at);
      else
        wake_router_at(sink.id, ready_at);
    });
  }
  // Up_Down links are delay-0 and drained inside the sender's own gating
  // stage — no receiver to wake.
}

void Network::remove_push_hooks() {
  for (auto& link : flit_channels_) link->set_push_hook({});
  for (auto& link : credit_channels_) link->set_push_hook({});
}

void Network::wake_router_at(NodeId id, sim::Cycle at) {
  const sim::Cycle now = clock_.now();
  if (at <= now + 1)
    wake_routers_[0].insert(id);
  else if (at == now + 2)
    wake_routers_[1].insert(id);
  else
    wake_heap_.push(at, id);
}

void Network::wake_ni_at(NodeId t, sim::Cycle at) {
  const sim::Cycle now = clock_.now();
  if (at <= now + 1)
    wake_nis_[0].insert(t);
  else if (at == now + 2)
    wake_nis_[1].insert(t);
  else
    wake_heap_.push(at, num_routers() + t);
}

void Network::wake_terminal_at(NodeId t, sim::Cycle at) {
  if (scheduler_mode_ != SchedulerMode::kActiveSet) return;
  wake_ni_at(t, std::max(at, clock_.now() + 1));
}

void Network::drain_wakes(sim::Cycle now) {
  while (!wake_heap_.empty() && wake_heap_.top_cycle() <= now) {
    const sim::WakeEvent ev = wake_heap_.pop();
    if (ev.id < num_routers())
      active_routers_.insert(ev.id);
    else
      active_nis_.insert(ev.id - num_routers());
  }
}

void Network::step_active() {
  const sim::Cycle now = clock_.now();
  if (now >= next_structural_cycle_) apply_structural_faults(now);
  drain_wakes(now);
  stepped_routers_.assign(active_routers_);
  stepped_nis_.assign(active_nis_);
  scheduler_stats_.cycles_executed += 1;
  scheduler_stats_.router_steps += static_cast<std::uint64_t>(active_routers_.count());
  scheduler_stats_.ni_steps += static_cast<std::uint64_t>(active_nis_.count());
  // Same stage order as step(), restricted to active members; ascending-id
  // iteration keeps every RNG draw, arbiter rotation, and stat bump at its
  // stepped-schedule position. Push hooks fired inside these loops only
  // write the wake ring / heap, never the sets being iterated.
  active_routers_.for_each([&](int id) { gating_stage_for(id, now); });
  active_routers_.for_each([&](int id) { routers_[static_cast<std::size_t>(id)]->va_stage(now); });
  active_routers_.for_each(
      [&](int id) { routers_[static_cast<std::size_t>(id)]->sa_st_stage(now); });
  active_routers_.for_each(
      [&](int id) { routers_[static_cast<std::size_t>(id)]->accept_arrivals(now); });
  active_nis_.for_each([&](int t) { nis_[static_cast<std::size_t>(t)]->receive(now); });
  active_nis_.for_each([&](int t) {
    nis_[static_cast<std::size_t>(t)]->inject(now, packet_id_counter_);
    nis_[static_cast<std::size_t>(t)]->generate(now);
  });
  // The controller runs on every *executed* cycle, exactly as in stepped
  // mode — jumps never cross a sensor epoch (next_event_cycle fences them).
  controller_->post_cycle(now);
  retire_active_cycle(now);
  clock_.tick();
}

void Network::retire_active_cycle(sim::Cycle now) {
  active_routers_.for_each([&](int id) {
    Router& r = *routers_[static_cast<std::size_t>(id)];
    if (r.any_busy_input()) {
      // A busy router's waiting flits are the new-traffic signal of every
      // neighbor's gating stage, and its VA stage allocates directly into
      // downstream input VCs — keep it and its neighbors live. The flood
      // stops one hop out: woken-but-flitless neighbors park again at
      // their own retire.
      wake_routers_[0].insert(id);
      for (int d = 0; d < 4; ++d) {
        const NodeId nb = topo_->neighbor(id, static_cast<Dir>(d));
        if (nb != kInvalidNode) wake_routers_[0].insert(nb);
      }
      return;
    }
    if (pinned_routers_[static_cast<std::size_t>(id)] != 0 || !router_park_eligible(id))
      wake_routers_[0].insert(id);
  });
  active_nis_.for_each([&](int t) {
    NetworkInterface& terminal = *nis_[static_cast<std::size_t>(t)];
    // A dead tile parks forever: its source is never polled again (in any
    // scheduler mode), so no heap wake may keep re-activating it.
    if (terminal.dead()) return;
    if (!terminal.idle()) {
      // A non-idle NI asserts has_new_traffic for — and allocates VCs of —
      // its router's local input port: both must stay live.
      wake_nis_[0].insert(t);
      wake_routers_[0].insert(topo_->router_of(t));
      return;
    }
    if (!terminal.inbound_links_quiet()) {
      wake_nis_[0].insert(t);
      return;
    }
    // Park with a heap wake at the source's next event. Horizons may be
    // conservative (pre-roll windows): the landing step finds nothing to
    // do, re-asks, and re-parks — never overshoots a real fire.
    ITrafficSource* src = sources_[static_cast<std::size_t>(t)].get();
    if (src != nullptr) {
      const sim::Cycle h = src->next_event_cycle(now + 1);
      if (h != sim::kCycleNever) wake_heap_.push(std::max(h, now + 1), num_routers() + t);
    }
  });
  // Rotate the wake ring into place: wakes for now+1 become the next active
  // sets; the far slot (now+2) moves near; the far slot starts empty.
  active_routers_.swap(wake_routers_[0]);
  wake_routers_[0].clear();
  wake_routers_[0].swap(wake_routers_[1]);
  active_nis_.swap(wake_nis_[0]);
  wake_nis_[0].clear();
  wake_nis_[0].swap(wake_nis_[1]);
}

bool Network::router_park_eligible(NodeId id) const {
  const Router& r = *routers_[static_cast<std::size_t>(id)];
  if (!r.inbound_links_quiet()) return false;
  return router_gating_fixed_point(id);
}

bool Network::router_gating_fixed_point(NodeId id) const {
  const Router& r = *routers_[static_cast<std::size_t>(id)];
  // Dead resources are quarantined, not gated: they hold no work, receive
  // no commands, and must not block parking or quiescence.
  if (r.dead()) return true;
  const int num_classes = config_.vc_classes();
  for (int p = 0; p < r.num_ports(); ++p) {
    const Dir port = static_cast<Dir>(p);
    if (!r.has_input(port) || r.input_port_dead(port)) continue;
    const InputUnit& iu = r.input(port);
    // Same per-port clause as quiescent(): every (vnet, class) of the port
    // must sit in the fixed point of its last applied command — all VCs
    // gated under an active gating record, all idle-and-unGated otherwise.
    // Every policy's decide() is a no-op on such a port (ARCHITECTURE.md
    // §9), which is what makes skipping the decide call bit-exact.
    const bool active = gating_record_[gating_record_index(id, port, 0, 0)] != 0;
    for (int vn = 0; vn < config_.num_vnets; ++vn)
      for (int cls = 0; cls < num_classes; ++cls)
        if ((gating_record_[gating_record_index(id, port, vn, cls)] != 0) != active) return false;
    if (!iu.gating_fixed_point(active, config_.total_vcs())) return false;
  }
  return true;
}

void Network::run_with_warmup(sim::Cycle warmup, sim::Cycle measure) {
  set_measuring(false);
  run(warmup);
  // Counters and distributions restart with the measurement window so that
  // dynamic-energy/latency statistics cover the same cycles as the NBTI
  // stress trackers.
  stats_.reset();
  set_measuring(true);
  run(measure);
}

void Network::sync_stress_accounting() const {
  const sim::Cycle through = clock_.now();
  // routers_ holds unique_ptrs: the pointees are mutable from a const
  // member, which is exactly what a lazy-flush fence needs.
  for (const auto& r : routers_) r->sync_stress(through);
}

void Network::set_measuring(bool measuring) {
  // Flush first: the fence applies to cycles by when they elapsed, and any
  // still-lazy interval predates this toggle.
  sync_stress_accounting();
  for (auto& r : routers_) {
    for (int p = 0; p < r->num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (r->has_input(port)) r->input(port).trackers().set_measuring(measuring);
    }
  }
}

std::vector<double> Network::duty_cycles_percent(NodeId node, Dir input_port) const {
  sync_stress_accounting();
  const Router& r = router(node);
  if (!r.has_input(input_port))
    throw std::invalid_argument("Network::duty_cycles_percent: port does not exist");
  return r.input(input_port).trackers().duty_cycles_percent();
}

std::size_t Network::flits_in_flight() const {
  std::size_t n = 0;
  for (const auto& link : flit_channels_) n += link->in_flight();
  return n;
}

std::size_t Network::flits_resident() const {
  std::size_t n = flits_in_flight();
  for (const auto& r : routers_) {
    for (int p = 0; p < r->num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r->has_input(port)) continue;
      for (int v = 0; v < config_.total_vcs(); ++v)
        n += static_cast<std::size_t>(r->input(port).vc(v).occupancy());
    }
  }
  return n;
}

bool Network::quiescent() const {
  // Control-fault processes draw RNG and may act every cycle: never skip
  // under one. Structural-only plans are fine — kills are fixed-cycle
  // events next_event_horizon() fences on explicitly.
  if (injector_ != nullptr && injector_->plan().control_enabled()) return false;
  // Anything in flight will be delivered (and observed) on a later step.
  // Credits matter too: an undelivered credit changes which cycle a future
  // SA grant sees it, so skipping across its delivery would not be
  // bit-identical.
  for (const auto& link : flit_channels_)
    if (!link->empty()) return false;
  for (const auto& link : credit_channels_)
    if (!link->empty()) return false;
  // Up_Down links are delay-0 (drained inside gating_stage every cycle).
  for (const auto& ni : nis_)
    if (!ni->idle()) return false;
  const int num_classes = config_.vc_classes();
  for (NodeId id = 0; id < num_routers(); ++id) {
    const Router& r = router(id);
    if (r.dead()) continue;  // quarantined: holds no work by construction
    for (int p = 0; p < r.num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r.has_input(port) || r.input_port_dead(port)) continue;
      const InputUnit& iu = r.input(port);
      if (iu.busy_vcs() != 0) return false;
      // Every (vnet, class) of the port must sit in the *same* fixed point
      // of its last applied command. Under an active gating command that is
      // all-VCs-gated (a kept-awake or wake-window VC would be re-gated on
      // a later cycle — an event); under the baseline it is all-idle with
      // nothing gated (a gated VC would need a wake — also an event).
      const bool active = gating_record_[gating_record_index(id, port, 0, 0)] != 0;
      for (int vn = 0; vn < config_.num_vnets; ++vn)
        for (int cls = 0; cls < num_classes; ++cls)
          if ((gating_record_[gating_record_index(id, port, vn, cls)] != 0) != active)
            return false;
      if (!iu.gating_fixed_point(active, config_.total_vcs())) return false;
    }
  }
  return true;
}

sim::Cycle Network::next_event_horizon() {
  const sim::Cycle now = clock_.now();
  sim::EventHorizon horizon(now);
  horizon.consider(controller_->next_event_cycle(now));
  horizon.consider(next_structural_cycle_);  // never jump across a kill
  for (std::size_t t = 0; t < sources_.size(); ++t) {
    // A dead tile's source is never polled again, so its fires are not
    // events (and must not cap the jump).
    if (sources_[t] != nullptr && !nis_[t]->dead())
      horizon.consider(sources_[t]->next_event_cycle(now));
  }
  return horizon.horizon();
}

void Network::apply_structural_faults(sim::Cycle now) {
  bool any = false;
  while (next_structural_ < structural_events_.size() &&
         structural_events_[next_structural_].cycle <= now) {
    const sim::StructuralFault& f = structural_events_[next_structural_];
    ++next_structural_;
    bool changed = false;
    if (f.kills_router()) {
      changed = topo_->kill_router(f.router);
      if (changed && injector_ != nullptr) injector_->count_router_kill();
    } else {
      changed = topo_->kill_link(f.router, static_cast<Dir>(f.port));
      if (changed && injector_ != nullptr) injector_->count_link_kill();
    }
    if (changed) {
      if (injector_ != nullptr) injector_->count_route_regen();
      any = true;
    }
  }
  next_structural_cycle_ = next_structural_ < structural_events_.size()
                               ? structural_events_[next_structural_].cycle
                               : sim::kCycleNever;
  // One drain covers every kill that landed this cycle: the topology has
  // already regenerated its tables, so legality below is judged against the
  // final orientation.
  if (any) purge_after_kill(now);
}

void Network::purge_after_kill(sim::Cycle now) {
  const DegradedRouting* dr = topo_->degraded_routing();
  const int n = num_routers();
  const int terminals = nodes();
  const int total_vcs = config_.total_vcs();

  // --- 1. destination of every live packet -----------------------------------
  // Every packet not yet fully ejected has at least one flit somewhere (a
  // channel, a VC buffer) or is still being serialized by its NI — and every
  // flit carries dst. Empty-but-Active VCs (allocation made, head still
  // upstream) resolve through this map.
  std::unordered_map<PacketId, NodeId> dst_of;
  for (const auto& link : flit_channels_)
    link->for_each_in_flight([&](const Flit& f, sim::Cycle) { dst_of[f.packet] = f.dst; });
  for (NodeId id = 0; id < n; ++id) {
    Router& r = router(id);
    for (int p = 0; p < r.num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r.has_input(port)) continue;
      for (int v = 0; v < total_vcs; ++v) {
        const VcBuffer& vc = r.input(port).vc(v);
        if (!vc.empty()) dst_of[vc.packet()] = vc.front().dst;
      }
    }
  }
  for (const auto& term : nis_)
    if (term->sending()) dst_of[term->sending_packet()] = term->sending_dst();

  // --- 2. doom every packet whose position or committed move is illegal ------
  // Legality under the regenerated up*/down* orientation:
  //   - destination terminal alive and route-table reachable from here;
  //   - a residence fed by a down link is in the down phase: the packet's
  //     next move must be down, into the down region D(dst) — once down,
  //     never up again (the rank argument in fault_routing.hpp);
  //   - a committed down move (from any input) must land inside D(dst),
  //     where the regenerated table continues pure-down;
  //   - anything committed toward a dead link/port/router is stuck forever.
  // A packet is purged whole (every flit, everywhere) if ANY of its
  // residences or in-flight segments violates a rule — wormhole body flits
  // retrace the head's path, so partial purges would strand segments.
  std::unordered_set<PacketId> doomed;
  const auto reachable_from = [&](NodeId at, NodeId dst_t) {
    return topo_->terminal_alive(dst_t) && topo_->route(at, dst_t).reachable();
  };
  const auto down_ok = [&](NodeId w, NodeId dst_t) {
    return dr->in_down_region(w, topo_->router_of(dst_t));
  };

  // In-flight flits on router-router links.
  for (NodeId u = 0; u < n; ++u) {
    for (int d = 0; d < 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      Channel<Flit>* link = router(u).flit_out_link_mut(dir);
      if (link == nullptr) continue;
      if (!topo_->link_alive(u, dir)) {
        link->for_each_in_flight([&](const Flit& f, sim::Cycle) { doomed.insert(f.packet); });
        continue;
      }
      const NodeId v = topo_->neighbor(u, dir);
      const bool down = dr->move_is_down(u, v);
      link->for_each_in_flight([&](const Flit& f, sim::Cycle) {
        if (!reachable_from(v, f.dst) || (down && !down_ok(v, f.dst))) doomed.insert(f.packet);
      });
    }
  }

  // NI-side channels and serialization state.
  for (NodeId t = 0; t < terminals; ++t) {
    NetworkInterface& term = ni(t);
    const NodeId r = topo_->router_of(t);
    const Dir local = topo_->local_port_of(t);
    Channel<Flit>* inj = router(r).flit_in_link_mut(local);
    Channel<Flit>* ej = router(r).eject_out_link_mut(local);
    if (!topo_->terminal_alive(t)) {
      inj->for_each_in_flight([&](const Flit& f, sim::Cycle) { doomed.insert(f.packet); });
      ej->for_each_in_flight([&](const Flit& f, sim::Cycle) { doomed.insert(f.packet); });
      if (term.sending()) doomed.insert(term.sending_packet());
      continue;
    }
    inj->for_each_in_flight([&](const Flit& f, sim::Cycle) {
      if (!reachable_from(r, f.dst)) doomed.insert(f.packet);
    });
    // Ejection flits are home; a mid-serialization packet dies with its dst.
    if (term.sending() && !reachable_from(r, term.sending_dst()))
      doomed.insert(term.sending_packet());
  }

  // Resident packets in VC buffers (head waiting, or body streaming behind a
  // committed move).
  for (NodeId id = 0; id < n; ++id) {
    Router& r = router(id);
    const bool router_dead_now = !topo_->router_alive(id);
    for (int p = 0; p < r.num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r.has_input(port)) continue;
      const bool port_dead =
          router_dead_now || (!is_local(port) && !topo_->link_alive(id, port));
      InputUnit& iu = r.input(port);
      for (int v = 0; v < total_vcs; ++v) {
        const VcBuffer& vc = iu.vc(v);
        if (!vc.is_active()) continue;
        const PacketId pkt = vc.packet();
        if (port_dead) {
          doomed.insert(pkt);
          continue;
        }
        const auto it = dst_of.find(pkt);
        if (it == dst_of.end()) {  // untracked allocation: cannot complete
          doomed.insert(pkt);
          continue;
        }
        const NodeId dst = it->second;
        if (!reachable_from(id, dst)) {
          doomed.insert(pkt);
          continue;
        }
        const bool arrived_down =
            !is_local(port) && dr->move_is_down(topo_->neighbor(id, port), id);
        if (iu.has_output(v)) {
          const Dir m = iu.out_port(v);
          if (is_local(m)) {
            if (topo_->router_of(dst) != id) doomed.insert(pkt);
            continue;
          }
          const NodeId w = topo_->alive_neighbor(id, m);
          if (w == kInvalidNode) {  // committed toward a dead resource
            doomed.insert(pkt);
            continue;
          }
          const bool move_down = dr->move_is_down(id, w);
          if ((arrived_down && !move_down) || (move_down && !down_ok(w, dst)))
            doomed.insert(pkt);
        } else if (arrived_down && !down_ok(id, dst)) {
          doomed.insert(pkt);
        }
      }
    }
  }

  // --- 3. purge the doomed packets everywhere --------------------------------
  const std::uint64_t purged_packets = static_cast<std::uint64_t>(doomed.size());
  std::uint64_t dropped = 0;
  for (auto& link : flit_channels_)
    dropped += static_cast<std::uint64_t>(
        link->remove_if([&](const Flit& f) { return doomed.count(f.packet) != 0; }));
  for (NodeId id = 0; id < n; ++id) {
    Router& r = router(id);
    const bool router_dead_now = !topo_->router_alive(id);
    for (int p = 0; p < r.num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r.has_input(port)) continue;
      const bool port_dead =
          router_dead_now || (!is_local(port) && !topo_->link_alive(id, port));
      InputUnit& iu = r.input(port);
      for (int v = 0; v < total_vcs; ++v)
        if (iu.vc(v).is_active() && (port_dead || doomed.count(iu.vc(v).packet()) != 0))
          dropped += static_cast<std::uint64_t>(iu.purge_vc(v));
    }
  }
  for (auto& term : nis_) {
    if (!topo_->terminal_alive(term->node())) {
      if (!term->dead()) term->mark_dead();
      continue;
    }
    if (term->sending() && doomed.count(term->sending_packet()) != 0) term->cancel_sending();
    term->drop_queued_unroutable();  // counts fault.unroutable_packets itself
  }
  dropped_flits_total_ += dropped;
  if (injector_ != nullptr) {
    injector_->count_dropped_flits(dropped);
    injector_->count_purged_packets(purged_packets);
  }

  // --- 4. quarantine dead resources ------------------------------------------
  // Dead credit channels must be emptied too: nothing will ever pop them,
  // and a stranded credit would block quiescence forever.
  for (NodeId id = 0; id < n; ++id) {
    Router& r = router(id);
    const bool router_dead_now = !topo_->router_alive(id);
    if (router_dead_now && !r.dead()) r.mark_dead();
    for (int p = 0; p < r.num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r.has_input(port)) continue;
      const bool port_dead =
          router_dead_now || (!is_local(port) && !topo_->link_alive(id, port));
      if (!port_dead) continue;
      r.mark_input_port_dead(port);
      if (Channel<Credit>* c = r.credit_out_link_mut(port)) c->clear();
    }
    for (int d = 0; d < 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      if (router_dead_now || (r.has_output(dir) && !topo_->link_alive(id, dir)))
        if (Channel<Credit>* c = r.credit_in_link_mut(dir)) c->clear();
    }
  }

  // --- 5. rewrite every surviving credit counter from the identity -----------
  restore_credits();

  // --- 6. re-run RC for waiting heads against the regenerated tables ---------
  for (auto& r : routers_)
    if (!r->dead()) r->reroute_waiting_heads(now);

  // --- 7. audit: the regenerated routing must be deadlock-free ---------------
  std::string diag;
  if (!route_cdg_acyclic(*topo_, &diag))
    throw std::logic_error("Network: regenerated routing CDG has a cycle: " + diag);

  // --- 8. active-set mode: the world changed — wake everything ---------------
  // Components with no work re-park at the next retire pass; a stale park
  // decision made against the pre-kill fabric must not survive.
  if (scheduler_mode_ == SchedulerMode::kActiveSet) {
    active_routers_.insert_all();
    active_nis_.insert_all();
  }
}

void Network::restore_credits() {
  const int total_vcs = config_.total_vcs();
  std::vector<int> accounted(static_cast<std::size_t>(total_vcs));
  for (NodeId u = 0; u < num_routers(); ++u) {
    Router& ru = router(u);
    if (ru.dead()) continue;
    for (int d = 0; d < 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      if (!ru.has_output(dir)) continue;
      OutputUnit& out = ru.output(dir);
      if (!topo_->link_alive(u, dir)) {
        // Dead output: zero credits, so not even a latent bug can push a
        // flit into the cleared channel. Under a shared pool the equivalent
        // block is charging every VC to full depth: charged >= reserve
        // closes the reserved path and overcommit == shared_capacity >=
        // shared_limit closes the shared one, so can_send() is false for
        // every VC forever.
        for (int v = 0; v < total_vcs; ++v) out.set_credits(v, 0);
        if (SharedBufferPool* pool = router(topo_->neighbor(u, dir)).input(opposite(dir)).pool())
          for (int v = 0; v < total_vcs; ++v) pool->set_charged(v, config_.buffer_depth);
        continue;
      }
      const NodeId w = topo_->neighbor(u, dir);
      std::fill(accounted.begin(), accounted.end(), 0);
      ru.flit_out_link_mut(dir)->for_each_in_flight(
          [&](const Flit& f, sim::Cycle) { ++accounted[static_cast<std::size_t>(f.vc)]; });
      ru.credit_in_link_mut(dir)->for_each_in_flight(
          [&](const Credit& c, sim::Cycle) { ++accounted[static_cast<std::size_t>(c.vc)]; });
      InputUnit& diu = router(w).input(opposite(dir));
      if (SharedBufferPool* pool = diu.pool()) {
        // Same identity, pool-resident form: everything the upstream ever
        // charged for VC v that has not yet been credited back is either
        // in flight on the two links or resident in the VC's slot chain.
        for (int v = 0; v < total_vcs; ++v)
          pool->set_charged(v, accounted[static_cast<std::size_t>(v)] + diu.vc(v).occupancy());
        continue;
      }
      for (int v = 0; v < total_vcs; ++v)
        out.set_credits(v, config_.buffer_depth - accounted[static_cast<std::size_t>(v)] -
                               diu.vc(v).occupancy());
    }
  }
  for (auto& term : nis_) {
    if (term->dead()) continue;
    const NodeId r = topo_->router_of(term->node());
    const Dir local = topo_->local_port_of(term->node());
    std::fill(accounted.begin(), accounted.end(), 0);
    term->inject_link()->for_each_in_flight(
        [&](const Flit& f, sim::Cycle) { ++accounted[static_cast<std::size_t>(f.vc)]; });
    term->credit_link()->for_each_in_flight(
        [&](const Credit& c, sim::Cycle) { ++accounted[static_cast<std::size_t>(c.vc)]; });
    const InputUnit& iu = router(r).input(local);
    if (SharedBufferPool* pool = term->shared_pool()) {
      for (int v = 0; v < total_vcs; ++v)
        pool->set_charged(v, accounted[static_cast<std::size_t>(v)] + iu.vc(v).occupancy());
      continue;
    }
    for (int v = 0; v < total_vcs; ++v)
      term->set_credits(v, config_.buffer_depth - accounted[static_cast<std::size_t>(v)] -
                               iu.vc(v).occupancy());
  }
}

void Network::save_state(sim::SnapshotWriter& w) const {
  // Dynamic state only: everything derivable from NocConfig + wiring
  // (topology, channel graph, route tables before kills) is rebuilt by the
  // loader's own construction and checked against the config digest.
  w.u64(static_cast<std::uint64_t>(clock_.now()));
  stats_.save(w);

  w.u64(gating_record_.size());
  for (unsigned char g : gating_record_) w.u8(g);

  // Structural-kill cursor. The events themselves are re-installed from the
  // (identical) FaultPlan; only progress through them is dynamic.
  w.u64(next_structural_);
  w.u64(static_cast<std::uint64_t>(next_structural_cycle_));
  w.u64(dropped_flits_total_);
  w.u64(packet_id_counter_);

  for (const auto& r : routers_) r->save(w);
  for (const auto& term : nis_) term->save(w);

  const auto save_flit = [](sim::SnapshotWriter& out, const Flit& f) { snapshot_save(out, f); };
  const auto save_credit = [](sim::SnapshotWriter& out, const Credit& c) {
    snapshot_save(out, c);
  };
  const auto save_command = [](sim::SnapshotWriter& out, const GateCommand& c) {
    snapshot_save(out, c);
  };
  w.u64(flit_channels_.size());
  for (const auto& link : flit_channels_) link->save(w, save_flit);
  w.u64(credit_channels_.size());
  for (const auto& link : credit_channels_) link->save(w, save_credit);
  std::uint64_t up_down_count = 0;
  for (const auto& link : up_down_links_)
    if (link) ++up_down_count;
  w.u64(up_down_count);
  for (const auto& link : up_down_links_)
    if (link) link->save(w, save_command);

  for (const auto& source : sources_) {
    w.b(source != nullptr);
    if (source) source->save(w);
  }

  if (injector_ != nullptr) injector_->save(w);
}

void Network::load_state(sim::SnapshotReader& r) {
  if (scheduler_mode_ != SchedulerMode::kStepped)
    throw sim::SnapshotError(
        "Network::load_state: restore before set_scheduler_mode (loading rebuilds channel "
        "queues underneath the active-set push hooks)");

  const auto now = static_cast<sim::Cycle>(r.u64());
  clock_.reset();
  clock_.advance(now);
  stats_.load(r);

  r.expect_u64(gating_record_.size(), "gating-record size");
  for (unsigned char& g : gating_record_) g = r.u8();

  next_structural_ = r.u64();
  next_structural_cycle_ = static_cast<sim::Cycle>(r.u64());
  dropped_flits_total_ = r.u64();
  packet_id_counter_ = r.u64();
  if (next_structural_ > structural_events_.size())
    throw sim::SnapshotError(
        "snapshot was taken under a fault plan with more structural events than this "
        "scenario's (" +
        std::to_string(next_structural_) + " applied > " +
        std::to_string(structural_events_.size()) + " scheduled)");
  // Re-apply already-landed kills to the fresh topology. Only the topology
  // mutation (alive flags + route-table regeneration) is needed: the drained
  // buffers, cleared channels, dead flags and rewritten credits all arrive
  // with the serialized component state below.
  for (std::size_t i = 0; i < next_structural_; ++i) {
    const sim::StructuralFault& f = structural_events_[i];
    if (f.kills_router())
      topo_->kill_router(f.router);
    else
      topo_->kill_link(f.router, static_cast<Dir>(f.port));
  }

  for (auto& rt : routers_) rt->load(r);
  for (auto& term : nis_) term->load(r);

  const auto load_flit = [](sim::SnapshotReader& in) { return snapshot_load_flit(in); };
  const auto load_credit = [](sim::SnapshotReader& in) { return snapshot_load_credit(in); };
  const auto load_command = [](sim::SnapshotReader& in) { return snapshot_load_gate_command(in); };
  r.expect_u64(flit_channels_.size(), "flit-channel count");
  for (auto& link : flit_channels_) link->load(r, load_flit);
  r.expect_u64(credit_channels_.size(), "credit-channel count");
  for (auto& link : credit_channels_) link->load(r, load_credit);
  std::uint64_t up_down_count = 0;
  for (const auto& link : up_down_links_)
    if (link) ++up_down_count;
  r.expect_u64(up_down_count, "up-down link count");
  for (auto& link : up_down_links_)
    if (link) link->load(r, load_command);

  for (std::size_t t = 0; t < sources_.size(); ++t) {
    const bool present = r.b();
    if (present != (sources_[t] != nullptr))
      throw sim::SnapshotError("traffic-source layout differs from the snapshot at node " +
                               std::to_string(t) +
                               " (install the same workload before loading)");
    if (present) sources_[t]->load(r);
  }

  if (injector_ != nullptr) injector_->load(r);
}

bool Network::drained() const {
  for (const auto& link : flit_channels_)
    if (!link->empty()) return false;
  for (const auto& r : routers_) {
    for (int p = 0; p < r->num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r->has_input(port)) continue;
      for (int v = 0; v < config_.total_vcs(); ++v)
        if (!r->input(port).vc(v).empty()) return false;
    }
  }
  return true;
}

}  // namespace nbtinoc::noc
