#include "nbtinoc/noc/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace nbtinoc::noc {

Network::Network(NocConfig config) : config_(config), controller_(&baseline_controller_) {
  config_.validate();
  topo_ = Topology::create(config_);
  const int n = topo_->num_routers();
  const int terminals = topo_->num_terminals();
  const int ports = topo_->ports_per_router();
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(terminals));
  sources_.resize(static_cast<std::size_t>(terminals));
  for (NodeId id = 0; id < n; ++id)
    routers_.push_back(std::make_unique<Router>(id, config_, stats_, topo_.get()));
  for (NodeId t = 0; t < terminals; ++t)
    nis_.push_back(std::make_unique<NetworkInterface>(t, config_, stats_));

  // Router-to-router links: for every directed neighbor pair, one flit
  // channel downstream and one credit channel upstream.
  for (NodeId u = 0; u < n; ++u) {
    for (int d = 0; d < 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const NodeId r = topo_->neighbor(u, dir);
      if (r == kInvalidNode) continue;
      auto flit_link = std::make_unique<Channel<Flit>>(NocConfig::kLinkDelay);
      auto credit_link = std::make_unique<Channel<Credit>>(NocConfig::kCreditDelay);
      // From the receiver's point of view the sender sits in direction
      // opposite(dir): u's East output feeds r's West input. On wrap links
      // (torus, ring) this holds too — neighbor() is symmetric under
      // opposite(), so each directed port pair is wired exactly once even
      // on 2-wide dimensions where both of u's x-ports face the same r.
      router(r).wire_input(opposite(dir), flit_link.get(), credit_link.get());
      router(u).wire_output(dir, &router(r).input(opposite(dir)), flit_link.get(),
                            credit_link.get());
      flit_channels_.push_back(std::move(flit_link));
      credit_channels_.push_back(std::move(credit_link));
    }
  }

  // NI links: injection (NI -> its router's local input), its credit
  // return, and the ejection channel (router local output -> NI). Each
  // terminal owns one local port of its router.
  for (NodeId t = 0; t < terminals; ++t) {
    const NodeId r = topo_->router_of(t);
    const Dir local = topo_->local_port_of(t);
    auto inject = std::make_unique<Channel<Flit>>(NocConfig::kLinkDelay);
    auto credit = std::make_unique<Channel<Credit>>(NocConfig::kCreditDelay);
    auto eject = std::make_unique<Channel<Flit>>(NocConfig::kLinkDelay);
    router(r).wire_input(local, inject.get(), credit.get());
    router(r).wire_ejection(local, eject.get());
    ni(t).wire(&router(r).input(local), inject.get(), credit.get(), eject.get());
    ni(t).set_topology(topo_.get());
    flit_channels_.push_back(std::move(inject));
    flit_channels_.push_back(std::move(eject));
    credit_channels_.push_back(std::move(credit));
  }

  // Up_Down command links, one per existing input port. Delay 0: the
  // upstream pre-VA logic and the downstream header PMOS share a cycle
  // (the paper's dedicated control wiring), but commands still *traverse a
  // channel*, giving the fault injector a delivery point to drop or
  // corrupt them at.
  gating_record_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(ports) *
                            static_cast<std::size_t>(config_.num_vnets) *
                            static_cast<std::size_t>(config_.vc_classes()),
                        0);

  up_down_links_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(ports));
  for (NodeId id = 0; id < n; ++id)
    for (int p = 0; p < ports; ++p)
      if (router(id).has_input(static_cast<Dir>(p)))
        up_down_links_[static_cast<std::size_t>(id) * static_cast<std::size_t>(ports) +
                       static_cast<std::size_t>(p)] = std::make_unique<Channel<GateCommand>>(0);
}

void Network::set_gate_controller(IGateController* controller) {
  controller_ = controller != nullptr ? controller : &baseline_controller_;
}

void Network::set_traffic_source(NodeId node, std::unique_ptr<ITrafficSource> source) {
  ni(node).set_traffic_source(source.get());
  sources_.at(static_cast<std::size_t>(node)) = std::move(source);
}

Channel<GateCommand>& Network::up_down_link_mutable(NodeId router, Dir port) {
  const auto ports = static_cast<std::size_t>(config_.ports_per_router());
  auto& link = up_down_links_.at(static_cast<std::size_t>(router) * ports +
                                 static_cast<std::size_t>(port));
  if (link == nullptr) throw std::invalid_argument("Network::up_down_link: port does not exist");
  return *link;
}

const Channel<GateCommand>& Network::up_down_link(NodeId router, Dir port) const {
  const auto ports = static_cast<std::size_t>(config_.ports_per_router());
  const auto& link = up_down_links_.at(static_cast<std::size_t>(router) * ports +
                                       static_cast<std::size_t>(port));
  if (link == nullptr) throw std::invalid_argument("Network::up_down_link: port does not exist");
  return *link;
}

void Network::set_fault_injector(sim::FaultInjector* injector) {
  injector_ = injector;
  for (auto& link : up_down_links_) {
    if (link == nullptr) continue;
    if (injector_ == nullptr) {
      link->set_fault_hook({});
      continue;
    }
    link->set_fault_hook([this](GateCommand& cmd, sim::Cycle) {
      if (injector_->drop_gate_command()) return false;
      int shift = 0;
      if (injector_->flip_gate_command(cmd.range_vcs, &shift)) {
        // Corrupt the command but keep it well-formed for its vnet range:
        // a valid keep_vc rotates within the range; a command that kept
        // nothing awake gains a spurious enable on an arbitrary range VC.
        const int range = cmd.range_vcs;
        if (cmd.enable && cmd.keep_vc != kInvalidVc) {
          cmd.keep_vc = cmd.first_vc + (cmd.keep_vc - cmd.first_vc + shift) % range;
        } else {
          cmd.gating_active = true;
          cmd.enable = true;
          cmd.keep_vc = cmd.first_vc + shift;
        }
      }
      return true;
    });
  }
}

void Network::gating_stage() {
  const sim::Cycle now = clock_.now();
  const int ports = config_.ports_per_router();
  const int num_classes = config_.vc_classes();
  for (NodeId id = 0; id < num_routers(); ++id) {
    Router& r = router(id);
    for (int p = 0; p < ports; ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r.has_input(port)) continue;
      // One pre-VA decision per (virtual network, dateline class): each
      // class's VC subrange is managed exactly like the paper's
      // single-vnet case. The split matters for deadlock freedom — a
      // sensor-wise policy keeping only one VC awake per decision must
      // keep one *per class*, or a packet needing the other class would
      // wait forever behind a traffic signal that never fires for it.
      // Single-class topologies run the class loop once over the whole
      // vnet, reproducing the pre-topology decision sequence exactly.
      for (int vn = 0; vn < config_.num_vnets; ++vn) {
        for (int cls = 0; cls < num_classes; ++cls) {
          bool new_traffic = false;
          if (is_local(port)) {
            new_traffic = ni(topo_->terminal_of(id, local_slot(port))).has_new_traffic(vn, cls, now);
          } else {
            const NodeId upstream = topo_->neighbor(id, port);
            new_traffic = router(upstream).has_new_traffic_toward(opposite(port), vn, cls, now);
          }
          const int first = config_.first_vc_of_vnet(vn) + config_.class_first_vc(cls);
          const OutVcStateView view(&r.input(port), first, config_.class_num_vcs(cls));
          GateCommand cmd = controller_->decide(PortKey{id, port}, view, new_traffic, now);
          if (cmd.keep_vc != kInvalidVc) cmd.keep_vc += first;  // local -> global
          cmd.first_vc = first;
          cmd.range_vcs = config_.class_num_vcs(cls);
          gating_record_[gating_record_index(id, port, vn, cls)] = cmd.gating_active ? 1 : 0;
          // The command crosses its Up_Down channel (delay 0: push, then
          // pop the same cycle). Under fault injection the channel's hook
          // may drop it — the downstream port then simply holds state —
          // or corrupt it in range.
          Channel<GateCommand>& link = up_down_link_mutable(id, port);
          link.push(cmd, now);
          while (auto delivered = link.pop_ready(now))
            r.input(port).apply_gate_command(*delivered, now, injector_);
        }
      }
    }
  }
}

void Network::step() {
  const sim::Cycle now = clock_.now();
  gating_stage();
  for (auto& r : routers_) r->va_stage(now);
  for (auto& r : routers_) r->sa_st_stage(now);
  for (auto& r : routers_) r->accept_arrivals(now);
  for (auto& ni : nis_) ni->receive(now);
  for (auto& ni : nis_) {
    ni->inject(now, packet_id_counter_);
    ni->generate(now);
  }
  // NBTI accounting is event-driven: buffers notified their trackers at
  // gate/wake transitions during this cycle; nothing to walk here. Readers
  // fence via sync_stress_accounting() (run(), the warmup fence, the duty
  // accessors) or per-port sync_stress() (the controller's sensor epochs).
  controller_->post_cycle(now);
  clock_.tick();
}

void Network::run(sim::Cycle cycles) {
  const sim::Cycle end = clock_.now() + cycles;
  while (clock_.now() < end) {
    step();
    // Fast-forward: once the mesh is provably quiescent, nothing observable
    // can happen before the next traffic fire or sensor epoch, so jump the
    // clock straight there (clamped to this run's end fence). The stress
    // trackers are lazy (note_state/sync), so the skipped span accrues to
    // each buffer's unchanged state at the next fence — exactly what
    // stepping the same span would have recorded.
    if (!fast_forward_ || clock_.now() >= end || !quiescent()) continue;
    const sim::Cycle target = std::min(next_event_horizon(), end);
    if (target > clock_.now()) {
      skip_stats_.note_skip(target - clock_.now());
      clock_.advance(target - clock_.now());
    }
  }
  // One O(buffers) flush per run() call, so counters are current for any
  // reader that inspects trackers directly after the call.
  sync_stress_accounting();
}

void Network::run_with_warmup(sim::Cycle warmup, sim::Cycle measure) {
  set_measuring(false);
  run(warmup);
  // Counters and distributions restart with the measurement window so that
  // dynamic-energy/latency statistics cover the same cycles as the NBTI
  // stress trackers.
  stats_.reset();
  set_measuring(true);
  run(measure);
}

void Network::sync_stress_accounting() const {
  const sim::Cycle through = clock_.now();
  // routers_ holds unique_ptrs: the pointees are mutable from a const
  // member, which is exactly what a lazy-flush fence needs.
  for (const auto& r : routers_) r->sync_stress(through);
}

void Network::set_measuring(bool measuring) {
  // Flush first: the fence applies to cycles by when they elapsed, and any
  // still-lazy interval predates this toggle.
  sync_stress_accounting();
  for (auto& r : routers_) {
    for (int p = 0; p < r->num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (r->has_input(port)) r->input(port).trackers().set_measuring(measuring);
    }
  }
}

std::vector<double> Network::duty_cycles_percent(NodeId node, Dir input_port) const {
  sync_stress_accounting();
  const Router& r = router(node);
  if (!r.has_input(input_port))
    throw std::invalid_argument("Network::duty_cycles_percent: port does not exist");
  return r.input(input_port).trackers().duty_cycles_percent();
}

std::size_t Network::flits_in_flight() const {
  std::size_t n = 0;
  for (const auto& link : flit_channels_) n += link->in_flight();
  return n;
}

std::size_t Network::flits_resident() const {
  std::size_t n = flits_in_flight();
  for (const auto& r : routers_) {
    for (int p = 0; p < r->num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r->has_input(port)) continue;
      for (int v = 0; v < config_.total_vcs(); ++v)
        n += static_cast<std::size_t>(r->input(port).vc(v).occupancy());
    }
  }
  return n;
}

bool Network::quiescent() const {
  // Fault processes draw RNG and may act every cycle: never skip under one.
  if (injector_ != nullptr) return false;
  // Anything in flight will be delivered (and observed) on a later step.
  // Credits matter too: an undelivered credit changes which cycle a future
  // SA grant sees it, so skipping across its delivery would not be
  // bit-identical.
  for (const auto& link : flit_channels_)
    if (!link->empty()) return false;
  for (const auto& link : credit_channels_)
    if (!link->empty()) return false;
  // Up_Down links are delay-0 (drained inside gating_stage every cycle).
  for (const auto& ni : nis_)
    if (!ni->idle()) return false;
  const int num_classes = config_.vc_classes();
  for (NodeId id = 0; id < num_routers(); ++id) {
    const Router& r = router(id);
    for (int p = 0; p < r.num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r.has_input(port)) continue;
      const InputUnit& iu = r.input(port);
      if (iu.busy_vcs() != 0) return false;
      // Every (vnet, class) of the port must sit in the *same* fixed point
      // of its last applied command. Under an active gating command that is
      // all-VCs-gated (a kept-awake or wake-window VC would be re-gated on
      // a later cycle — an event); under the baseline it is all-idle with
      // nothing gated (a gated VC would need a wake — also an event).
      const bool active = gating_record_[gating_record_index(id, port, 0, 0)] != 0;
      for (int vn = 0; vn < config_.num_vnets; ++vn)
        for (int cls = 0; cls < num_classes; ++cls)
          if ((gating_record_[gating_record_index(id, port, vn, cls)] != 0) != active)
            return false;
      if (active) {
        if (iu.gated_vcs() != config_.total_vcs()) return false;
      } else {
        if (iu.gated_vcs() != 0) return false;
      }
    }
  }
  return true;
}

sim::Cycle Network::next_event_horizon() {
  const sim::Cycle now = clock_.now();
  sim::EventHorizon horizon(now);
  horizon.consider(controller_->next_event_cycle(now));
  for (const auto& src : sources_)
    if (src != nullptr) horizon.consider(src->next_event_cycle(now));
  return horizon.horizon();
}

bool Network::drained() const {
  for (const auto& link : flit_channels_)
    if (!link->empty()) return false;
  for (const auto& r : routers_) {
    for (int p = 0; p < r->num_ports(); ++p) {
      const Dir port = static_cast<Dir>(p);
      if (!r->has_input(port)) continue;
      for (int v = 0; v < config_.total_vcs(); ++v)
        if (!r->input(port).vc(v).empty()) return false;
    }
  }
  return true;
}

}  // namespace nbtinoc::noc
