#include "nbtinoc/noc/buffer.hpp"

namespace nbtinoc::noc {

void VcBuffer::push(const Flit& flit) {
  if (state_ != VcState::Active) throw std::logic_error("VcBuffer::push: buffer not Active");
  if (full()) throw std::logic_error("VcBuffer::push: overflow (credit protocol violated)");
  if (flit.packet != packet_)
    throw std::logic_error("VcBuffer::push: packet mixing in a single VC is not allowed");
  if (tail_seen_) throw std::logic_error("VcBuffer::push: flit after tail");
  if (pool_ != nullptr) {
    pool_->push(pool_vc_, flit);
  } else {
    ring_[(head_ + count_) % ring_.size()] = flit;
    ++count_;
  }
  if (is_tail(flit.type)) tail_seen_ = true;
}

Flit VcBuffer::pop() {
  Flit flit;
  if (pool_ != nullptr) {
    flit = pool_->pop(pool_vc_);
  } else {
    if (count_ == 0) throw std::logic_error("VcBuffer::pop: empty");
    flit = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
  }
  if (is_tail(flit.type)) {
    // Tail left this router: the VC returns to Idle and may be re-allocated
    // (or gated) from the next policy decision onward.
    state_ = VcState::Idle;
    packet_ = 0;
    tail_seen_ = false;
    if (busy_counter_ != nullptr) --*busy_counter_;
  }
  return flit;
}

}  // namespace nbtinoc::noc
