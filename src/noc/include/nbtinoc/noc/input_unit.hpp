#pragma once
// Input unit: the VC buffer bank of one router input port, together with
// the downstream-allocation bookkeeping and the NBTI stress accounting.
//
// This is the authoritative home of each VC's state: the upstream router's
// out-VC-state table is a (zero-skew) view over it, exactly the information
// the upstream VA stage maintains in hardware.

#include <memory>
#include <vector>

#include "nbtinoc/noc/arbiter.hpp"
#include "nbtinoc/noc/buffer.hpp"
#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/gate.hpp"
#include "nbtinoc/noc/shared_pool.hpp"
#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/nbti/duty_cycle.hpp"
#include "nbtinoc/sim/fault_plan.hpp"

namespace nbtinoc::noc {

class InputUnit {
 public:
  InputUnit(Dir dir, const NocConfig& config);

  // The VC buffers point back into the owning unit (stress trackers and
  // the busy-VC counter), so copying would alias the source's state; a
  // move re-attaches the pointers to the new home.
  InputUnit(const InputUnit&) = delete;
  InputUnit& operator=(const InputUnit&) = delete;
  InputUnit(InputUnit&& other) noexcept
      : dir_(other.dir_),
        extra_stages_(other.extra_stages_),
        pool_(std::move(other.pool_)),
        vcs_(std::move(other.vcs_)),
        out_vc_(std::move(other.out_vc_)),
        out_port_(std::move(other.out_port_)),
        trackers_(std::move(other.trackers_)),
        sa_arbiter_(std::move(other.sa_arbiter_)),
        busy_vcs_(other.busy_vcs_),
        gated_vcs_(other.gated_vcs_) {
    // The pool lives on the heap, so descriptor/tracker pointers into it
    // survive the move untouched; only pointers into *this* need rebinding.
    for (std::size_t i = 0; i < vcs_.size(); ++i) {
      if (pool_ == nullptr) vcs_[i].attach_stress_tracker(&trackers_.at(i));
      vcs_[i].attach_busy_counter(&busy_vcs_);
      vcs_[i].attach_gated_counter(&gated_vcs_);
    }
    if (pool_ != nullptr)
      for (int s = 0; s < pool_->num_slots(); ++s)
        pool_->attach_stress_tracker(s, &trackers_.at(static_cast<std::size_t>(s)));
  }
  InputUnit& operator=(InputUnit&&) = delete;

  Dir dir() const { return dir_; }
  int num_vcs() const { return static_cast<int>(vcs_.size()); }

  /// Number of VCs currently Active (reserved for or holding a packet),
  /// maintained by the buffers themselves. Zero proves in O(1) that no VC
  /// of this port can be waiting for VA or ready for SA.
  int busy_vcs() const { return busy_vcs_; }

  /// Number of VCs currently gated (Recovery), maintained by the buffers.
  /// `gated_vcs() == num_vcs()` proves in O(1) that the port sits in the
  /// all-gated fixed point of an active gating policy; `busy_vcs() == 0 &&
  /// gated_vcs() == 0` proves the all-idle fixed point of the baseline.
  /// Always 0 under the shared organization (descriptors are never gated —
  /// see gating_fixed_point for the pool-counter equivalent).
  int gated_vcs() const { return gated_vcs_; }

  /// Non-null under BufferOrg::kShared: the port's DAMQ slot pool.
  SharedBufferPool* pool() { return pool_.get(); }
  const SharedBufferPool* pool() const { return pool_.get(); }

  /// O(1) proof that this port sits in the gating fixed point of its last
  /// applied command: under an active policy everything gateable is gated
  /// (all VCs in Recovery, or the pool's whole shared region) with no wake
  /// in flight; under the baseline nothing is gated. The quiescence /
  /// fast-forward / parking proofs all reduce to this per-port predicate.
  bool gating_fixed_point(bool active, int total_vcs) const {
    if (pool_ != nullptr) {
      if (pool_->waking_slots() != 0) return false;
      return pool_->gated_slots() == (active ? pool_->shared_capacity() : 0);
    }
    return gated_vcs_ == (active ? total_vcs : 0);
  }

  VcBuffer& vc(int i) { return vcs_.at(static_cast<std::size_t>(i)); }
  const VcBuffer& vc(int i) const { return vcs_.at(static_cast<std::size_t>(i)); }

  // --- downstream allocation made by *this router's* VA for the packet
  //     currently resident in vc i ------------------------------------------
  int out_vc(int i) const { return out_vc_.at(static_cast<std::size_t>(i)); }
  Dir out_port(int i) const { return out_port_.at(static_cast<std::size_t>(i)); }
  void assign_output(int i, Dir port, int downstream_vc);
  void clear_output(int i);
  bool has_output(int i) const { return out_vc(i) != kInvalidVc; }

  /// Structural-fault drain: purges vc i's buffer (see VcBuffer::purge) and
  /// clears its downstream allocation. Returns the flits dropped.
  int purge_vc(int i) {
    clear_output(i);
    return vc(i).purge();
  }

  /// True if vc i holds a routed head flit still waiting for an output VC —
  /// the "new packet" notion of is_new_traffic_outport_x().
  bool waiting_for_va(int i, sim::Cycle now) const;
  /// Any VC waiting for VA toward output port `port`?
  bool has_new_traffic_toward(Dir port, sim::Cycle now) const;
  /// Same, restricted to packets of one virtual network.
  bool has_new_traffic_toward(Dir port, int vnet, sim::Cycle now) const;
  /// Same, further restricted to packets needing downstream dateline class
  /// `cls` — the per-class gating decision's traffic signal.
  bool has_new_traffic_toward(Dir port, int vnet, int cls, sim::Cycle now) const;

  // --- datapath --------------------------------------------------------------
  /// Buffer write (+ RC on head flits). `route` / `next_class` are the
  /// precomputed RC results for head flits, ignored otherwise.
  void receive_flit(const Flit& flit, Dir route, int next_class, sim::Cycle now);
  /// Single-class convenience (mesh-era call sites and unit tests).
  void receive_flit(const Flit& flit, Dir route, sim::Cycle now) {
    receive_flit(flit, route, /*next_class=*/0, now);
  }

  // --- power gating (Up_Down command execution) ------------------------------
  /// Executes a delivered Up_Down command. Throws std::invalid_argument on
  /// structurally impossible commands (first_vc / range / keep_vc outside
  /// the port) — a malformed command is a policy bug, not a modeled fault.
  /// With a fault injector, a wake of a gated buffer may miss its deadline
  /// (the buffer stays in Recovery and the wake is retried when the command
  /// is re-issued next cycle). Faults never gate a non-empty buffer: the
  /// Idle-and-empty precondition is enforced here regardless of injection.
  void apply_gate_command(const GateCommand& cmd, sim::Cycle now,
                          sim::FaultInjector* faults = nullptr);

  // --- NBTI accounting --------------------------------------------------------
  // Accounting is event-driven: each VC buffer notifies its tracker at
  // gate/wake transitions (the only edges of is_stressed()), and readers
  // fence with sync_stress(). An idle port therefore costs zero accounting
  // work per cycle instead of one record_cycle() per VC.
  /// Flushes every VC tracker's lazy interval through cycle `through`
  /// (exclusive). Call before reading counters; see StressTracker::sync.
  void sync_stress(sim::Cycle through) { trackers_.sync(through); }
  nbti::StressTrackerBank& trackers() { return trackers_; }
  const nbti::StressTrackerBank& trackers() const { return trackers_; }

  /// Round-robin pointer for SA VC selection within this port.
  RoundRobinArbiter& sa_arbiter() { return sa_arbiter_; }

  /// A buffered flit is eligible for VA/SA once it has aged past the buffer
  /// write plus any extra pipeline stages.
  bool flit_eligible(const Flit& flit, sim::Cycle now) const {
    return flit.arrived_at + static_cast<sim::Cycle>(extra_stages_) < now;
  }

  // --- checkpoint/restore ----------------------------------------------------
  /// Buffers (busy/gated counters rebuilt by their loads), downstream
  /// allocations, stress accumulators and the SA fairness pointer.
  void save(sim::SnapshotWriter& w) const {
    for (const auto& v : vcs_) v.save(w);
    for (int ov : out_vc_) w.i64(ov);
    for (Dir op : out_port_) w.i64(static_cast<int>(op));
    trackers_.save(w);
    w.u64(sa_arbiter_.pointer());
    if (pool_ != nullptr) pool_->save(w);
  }
  void load(sim::SnapshotReader& r) {
    for (auto& v : vcs_) v.load(r);
    for (int& ov : out_vc_) ov = static_cast<int>(r.i64());
    for (Dir& op : out_port_) op = static_cast<Dir>(r.i64());
    trackers_.load(r);
    sa_arbiter_.set_pointer(static_cast<std::size_t>(r.u64()));
    if (pool_ != nullptr) pool_->load(r);
  }

 private:
  void apply_slot_gate_command(const GateCommand& cmd, sim::Cycle now,
                               sim::FaultInjector* faults);

  Dir dir_;
  int extra_stages_;
  std::unique_ptr<SharedBufferPool> pool_;  ///< non-null: shared organization
  std::vector<VcBuffer> vcs_;
  std::vector<int> out_vc_;
  std::vector<Dir> out_port_;
  nbti::StressTrackerBank trackers_;
  RoundRobinArbiter sa_arbiter_;
  int busy_vcs_ = 0;
  int gated_vcs_ = 0;
};

}  // namespace nbtinoc::noc
