#pragma once
// The mechanism/policy boundary for NBTI-aware VC power gating.
//
// The *mechanism* lives in the NoC: every cycle, the pre-VA logic of the
// upstream entity (router output port or network interface) emits a
// GateCommand on the Up_Down link, and the downstream input port obeys it.
// The *policies* (baseline / rr-no-sensor / sensor-wise...) live in the core
// library and implement IGateController.

#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/event_horizon.hpp"
#include "nbtinoc/sim/snapshot.hpp"

namespace nbtinoc::noc {

class InputUnit;

/// What travels on the Up_Down link each cycle (paper §III-C): a VC id that
/// must be left idle (awake) plus an enable bit asserting its validity.
/// `gating_active` distinguishes an NBTI-aware upstream from the baseline
/// (no gating at all: downstream keeps every buffer powered).
///
/// With virtual networks, one command governs one vnet's VC subrange
/// ([first_vc, first_vc + range_vcs)); the pre-VA policy runs once per vnet
/// exactly like the paper's single-vnet case. range_vcs = -1 covers the
/// whole port. keep_vc is a *global* VC index.
struct GateCommand {
  bool gating_active = false;
  bool enable = false;  ///< keep_vc is valid: leave exactly that VC idle
  int keep_vc = kInvalidVc;
  int first_vc = 0;
  int range_vcs = -1;

  /// Slot-range form (shared-pool ports only): all indices address physical
  /// pool slots instead of VCs. With gating_active, keep_vc names one Gated
  /// slot to wake (kInvalidVc: none) and [first_vc, first_vc + range_vcs)
  /// names Free slots to gate, in index order, while the pool's reservation
  /// headroom holds (range_vcs 0 gates nothing). Without gating_active the
  /// command wakes every Gated slot, mirroring the VC form's baseline.
  bool slot_form = false;
};

inline void snapshot_save(sim::SnapshotWriter& w, const GateCommand& c) {
  w.b(c.gating_active);
  w.b(c.enable);
  w.i64(c.keep_vc);
  w.i64(c.first_vc);
  w.i64(c.range_vcs);
  w.b(c.slot_form);
}

inline GateCommand snapshot_load_gate_command(sim::SnapshotReader& r) {
  GateCommand c;
  c.gating_active = r.b();
  c.enable = r.b();
  c.keep_vc = static_cast<int>(r.i64());
  c.first_vc = static_cast<int>(r.i64());
  c.range_vcs = static_cast<int>(r.i64());
  c.slot_form = r.b();
  return c;
}

/// Identifies one upstream->downstream port pair by its downstream endpoint.
struct PortKey {
  NodeId router = 0;  ///< downstream router
  Dir port = Dir::Local;  ///< downstream input port
  auto operator<=>(const PortKey&) const = default;
};

/// Read-only view of the downstream input port's VC states, i.e. the
/// out-VC-state table the upstream router maintains. The view may be
/// restricted to one vnet's VC subrange; indices passed to the accessors are
/// then *local* to the subrange (the policy algorithms are range-agnostic).
class OutVcStateView {
 public:
  /// Whole-port view.
  explicit OutVcStateView(const InputUnit* iu) : iu_(iu) {}
  /// Subrange view covering [first_vc, first_vc + count).
  OutVcStateView(const InputUnit* iu, int first_vc, int count)
      : iu_(iu), first_vc_(first_vc), count_(count) {}

  int num_vcs() const;
  int first_vc() const { return first_vc_; }
  /// Maps a local index to the port-global VC id.
  int global_vc(int local) const { return first_vc_ + local; }

  VcState state(int local) const;
  bool is_idle(int local) const { return state(local) == VcState::Idle; }
  bool is_recovery(int local) const { return state(local) == VcState::Recovery; }
  bool is_active(int local) const { return state(local) == VcState::Active; }

  /// The viewed input unit — slot-level policies reach through to the
  /// port's shared pool, which the VC-state accessors cannot express.
  const InputUnit* unit() const { return iu_; }

 private:
  const InputUnit* iu_;
  int first_vc_ = 0;
  int count_ = -1;  ///< -1 = whole port
};

/// Per-network policy host. `decide` runs once per cycle per existing input
/// port *per virtual network* (the view is restricted to that vnet's VC
/// subrange), in the upstream pre-VA stage. The returned keep_vc is LOCAL to
/// the view; the network rebases it onto the port before applying.
/// `post_cycle` runs after stress accounting (sensor refresh / Down_Up
/// update point).
class IGateController {
 public:
  virtual ~IGateController() = default;
  virtual GateCommand decide(const PortKey& key, const OutVcStateView& view, bool new_traffic,
                             sim::Cycle now) = 0;
  virtual void post_cycle(sim::Cycle now) { (void)now; }

  /// Earliest cycle >= now at which this controller's `post_cycle` (or any
  /// other internal process — sensor refresh, fault machinery) does
  /// something observable while the mesh stays quiescent, or
  /// sim::kCycleNever.  Conservative answers (<= the true next event) are
  /// safe; the default pins the horizon to `now`, which disables
  /// fast-forwarding for controllers that do not implement the query.
  virtual sim::Cycle next_event_cycle(sim::Cycle now) { return now; }

  virtual const char* name() const = 0;
};

/// The non-NBTI-aware baseline: no buffer is ever gated, so every VC sits at
/// a 100% NBTI duty cycle. Used as the reference for the Vth-saving table.
class AlwaysOnController final : public IGateController {
 public:
  GateCommand decide(const PortKey&, const OutVcStateView&, bool, sim::Cycle) override {
    return GateCommand{};  // gating_active = false
  }
  // Stateless and sensor-free: nothing ever happens on its own.
  sim::Cycle next_event_cycle(sim::Cycle) override { return sim::kCycleNever; }
  const char* name() const override { return "baseline"; }
};

}  // namespace nbtinoc::noc
