#pragma once
// One virtual-channel buffer: a flit FIFO plus the power/allocation state
// machine the NBTI policies act on.
//
// State machine (paper §III):
//
//        allocate()                 tail dequeued
//   Idle ----------> Active -------------------------> Idle
//    |  ^                                               |
//    |  | wake() [after wakeup_latency]                 |
//    v  |                                               |
//   Recovery <------------------------------------------ gate()
//
// Only an *empty, unallocated* buffer may be gated; only Idle buffers are
// allocatable; a gated buffer becomes allocatable wakeup_latency cycles
// after wake(). Every powered cycle is NBTI stress; gated cycles recover.
//
// The FIFO is a fixed ring sized at construction (the buffer depth is a
// hardware constant), so the steady-state datapath performs no heap
// allocation. An optionally attached StressTracker is notified of every
// powered<->gated transition, which is what makes event-driven (lazy) NBTI
// accounting exact: gate()/wake() are the only edges of is_stressed().

#include <stdexcept>
#include <vector>

#include "nbtinoc/nbti/duty_cycle.hpp"
#include "nbtinoc/noc/flit.hpp"
#include "nbtinoc/noc/shared_pool.hpp"
#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::noc {

// Under the shared (DAMQ) organization a VcBuffer runs in *descriptor mode*
// (attach_pool): the allocation state machine (Idle/Active, packet, route,
// downstream bookkeeping) stays here, but the FIFO datapath delegates to the
// port's SharedBufferPool chain and power gating moves to physical slots —
// a descriptor is never gated, so wake_ready_ stays 0 and gate() throws.

class VcBuffer {
 public:
  VcBuffer(int depth, sim::Cycle wakeup_latency)
      : depth_(depth), wakeup_latency_(wakeup_latency),
        ring_(static_cast<std::size_t>(depth < 1 ? 1 : depth)) {
    if (depth < 1) throw std::invalid_argument("VcBuffer: depth must be >= 1");
  }

  /// Attaches the NBTI tracker notified at every gate/wake transition
  /// (event-driven accounting). The tracker must outlive the buffer; pass
  /// nullptr to detach. Standalone buffers (unit tests) run untracked.
  void attach_stress_tracker(nbti::StressTracker* tracker) { tracker_ = tracker; }

  /// Attaches the owning port's Active-VC counter, bumped at allocation and
  /// released when the tail flit pops. The counter must outlive the buffer.
  /// Lets the router prove a port packet-free in O(1) and skip its VA/SA
  /// scans entirely (waiting_for_va and SA readiness both require Active).
  void attach_busy_counter(int* counter) { busy_counter_ = counter; }

  /// Attaches the owning port's Gated-VC counter, bumped at gate() and
  /// released at wake(). The counter must outlive the buffer. Together with
  /// the busy counter this gives the fast-forward engine an O(1) proof that
  /// a port is in a gating fixed point (all VCs Recovery) without scanning.
  void attach_gated_counter(int* counter) { gated_counter_ = counter; }

  /// Switches the buffer into descriptor mode over `pool`, as VC `vc` of
  /// the port's shared slot pool (nullptr reverts to partitioned mode; only
  /// valid while empty and Idle). The pool must outlive the buffer.
  void attach_pool(SharedBufferPool* pool, int vc = 0) {
    if (count_ != 0 || state_ != VcState::Idle)
      throw std::logic_error("VcBuffer::attach_pool: buffer must be empty and Idle");
    pool_ = pool;
    pool_vc_ = vc;
  }
  bool pooled() const { return pool_ != nullptr; }

  // --- state queries -------------------------------------------------------
  VcState state() const { return state_; }
  bool is_idle() const { return state_ == VcState::Idle; }
  bool is_active() const { return state_ == VcState::Active; }
  bool is_gated() const { return state_ == VcState::Recovery; }
  /// Powered (stressing its PMOS network) in every non-Recovery state.
  bool is_stressed() const { return state_ != VcState::Recovery; }
  /// Idle and past any pending wake-up: VA may claim it this cycle. In
  /// descriptor mode additionally requires an ungated free slot in the pool
  /// (a descriptor with nowhere to put a flit is not worth allocating).
  bool allocatable(sim::Cycle now) const {
    return is_idle() && now >= wake_ready_ && (pool_ == nullptr || pool_->has_free_slot());
  }

  /// Idle but inside (or just completing) a wake transition: the header
  /// PMOS turn-on cannot be aborted, so the gating mechanism must not
  /// re-gate the buffer until the cycle *after* it became allocatable —
  /// otherwise a policy that rotates its kept VC faster than the wake
  /// latency livelocks the port (no VC ever completes waking).
  bool in_wake_window(sim::Cycle now) const { return is_idle() && now <= wake_ready_; }

  int depth() const { return depth_; }
  int occupancy() const {
    return pool_ != nullptr ? pool_->occupancy(pool_vc_) : static_cast<int>(count_);
  }
  bool empty() const { return occupancy() == 0; }
  /// Cannot accept a flit right now: ring at depth (partitioned) or the
  /// pool has no free slot (descriptor mode — a conforming upstream's
  /// slot-credit check makes that unreachable).
  bool full() const {
    return pool_ != nullptr ? !pool_->has_free_slot() : occupancy() >= depth_;
  }

  Dir route() const { return route_; }
  /// Dateline VC class the resident packet needs at the *next* router's
  /// input (recorded with the route at RC; always 0 on single-class
  /// topologies).
  int next_class() const { return next_class_; }
  PacketId packet() const { return packet_; }

  // --- power transitions (driven by the gate controller) -------------------
  /// Idle -> Recovery during cycle `now`. Precondition: empty Idle buffer.
  void gate(sim::Cycle now) {
    if (pool_ != nullptr)
      throw std::logic_error(
          "VcBuffer::gate: descriptors over a shared pool are never gated (gate slots instead)");
    if (state_ != VcState::Idle) throw std::logic_error("VcBuffer::gate: not Idle");
    if (count_ != 0) throw std::logic_error("VcBuffer::gate: buffer not empty");
    state_ = VcState::Recovery;
    ++gate_transitions_;
    if (gated_counter_ != nullptr) ++*gated_counter_;
    if (tracker_ != nullptr) tracker_->note_state(false, now);
  }

  /// Number of Idle->Recovery transitions so far: each one switches the
  /// header PMOS and costs virtual-Vdd charge/discharge energy (the
  /// break-even concern of NBTI-aware power gating, [19]).
  std::uint64_t gate_transitions() const { return gate_transitions_; }

  /// Recovery -> Idle; allocatable after wakeup_latency cycles. No-op when
  /// already powered.
  void wake(sim::Cycle now) {
    if (state_ != VcState::Recovery) return;
    state_ = VcState::Idle;
    if (gated_counter_ != nullptr) --*gated_counter_;
    wake_ready_ = now + wakeup_latency_;
    if (tracker_ != nullptr) tracker_->note_state(true, now);
  }

  // --- allocation lifecycle (driven by the upstream VA stage) --------------
  /// Idle -> Active, reserving the buffer for `packet`. The route is set
  /// later, when the head flit arrives and RC runs.
  void allocate(PacketId packet, sim::Cycle now) {
    if (!allocatable(now)) throw std::logic_error("VcBuffer::allocate: not allocatable");
    state_ = VcState::Active;
    packet_ = packet;
    if (busy_counter_ != nullptr) ++*busy_counter_;
  }

  /// Records the RC result for the resident packet (head-flit arrival).
  void set_route(Dir route) { route_ = route; }
  void set_next_class(int next_class) { next_class_ = next_class; }

  // --- datapath -------------------------------------------------------------
  /// Buffer write (BW stage). Precondition: Active, not full, flit belongs
  /// to the allocated packet.
  void push(const Flit& flit);

  const Flit& front() const {
    if (pool_ != nullptr) return pool_->front(pool_vc_);
    if (count_ == 0) throw std::logic_error("VcBuffer::front: empty");
    return ring_[head_];
  }

  /// Dequeues the head flit; on tail, releases the buffer (Active -> Idle).
  Flit pop();

  // --- checkpoint/restore ----------------------------------------------------
  /// Saves the FIFO contents (front-first) and the allocation/power state.
  /// `load` expects the freshly constructed (Idle, empty) buffer with its
  /// counters already attached: it rebuilds the ring and replays the state
  /// onto the busy/gated counters, but does NOT touch the stress tracker —
  /// tracker accumulators are serialized separately by the owning port.
  void save(sim::SnapshotWriter& w) const {
    w.u64(count_);
    for (std::size_t i = 0; i < count_; ++i)
      snapshot_save(w, ring_[(head_ + i) % ring_.size()]);
    w.u8(static_cast<std::uint8_t>(state_));
    w.u64(static_cast<std::uint64_t>(wake_ready_));
    w.u64(packet_);
    w.i64(static_cast<int>(route_));
    w.i64(next_class_);
    w.b(tail_seen_);
    w.u64(gate_transitions_);
  }
  void load(sim::SnapshotReader& r) {
    const std::uint64_t n = r.u64();
    if (n > ring_.size())
      throw sim::SnapshotError("VcBuffer: snapshot holds " + std::to_string(n) +
                               " flits, buffer depth is " + std::to_string(ring_.size()));
    head_ = 0;
    count_ = static_cast<std::size_t>(n);
    for (std::size_t i = 0; i < count_; ++i) ring_[i] = snapshot_load_flit(r);
    state_ = static_cast<VcState>(r.u8());
    wake_ready_ = static_cast<sim::Cycle>(r.u64());
    packet_ = r.u64();
    route_ = static_cast<Dir>(r.i64());
    next_class_ = static_cast<int>(r.i64());
    tail_seen_ = r.b();
    gate_transitions_ = r.u64();
    if (state_ == VcState::Active && busy_counter_ != nullptr) ++*busy_counter_;
    if (state_ == VcState::Recovery && gated_counter_ != nullptr) ++*gated_counter_;
  }

  /// Structural-fault drain: drops every buffered flit and force-releases
  /// an Active buffer to Idle without waiting for a tail (the purged packet
  /// will never complete). Returns the number of flits dropped; no-op on
  /// non-Active buffers.
  int purge() {
    // Descriptor mode: drain this VC's slot chain back onto the pool's free
    // list (Gated/Waking slots are untouched — they hold no flits and keep
    // recovering through the purge). Each released slot's flits are counted
    // here exactly once; the caller rolls them into fault.dropped_flits.
    const int dropped =
        pool_ != nullptr ? pool_->purge_vc(pool_vc_) : static_cast<int>(count_);
    head_ = 0;
    count_ = 0;
    tail_seen_ = false;
    if (state_ == VcState::Active) {
      state_ = VcState::Idle;
      if (busy_counter_ != nullptr) --*busy_counter_;
    }
    packet_ = 0;
    route_ = Dir::Local;
    next_class_ = 0;
    return dropped;
  }

 private:
  int depth_;
  sim::Cycle wakeup_latency_;
  // Fixed-capacity ring FIFO: head_ indexes the oldest flit, count_ flits
  // are live. Depth is a hardware constant, so no growth path exists.
  std::vector<Flit> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  VcState state_ = VcState::Idle;
  sim::Cycle wake_ready_ = 0;
  PacketId packet_ = 0;
  Dir route_ = Dir::Local;
  int next_class_ = 0;
  bool tail_seen_ = false;
  std::uint64_t gate_transitions_ = 0;
  nbti::StressTracker* tracker_ = nullptr;
  int* busy_counter_ = nullptr;
  int* gated_counter_ = nullptr;
  SharedBufferPool* pool_ = nullptr;  ///< non-null: descriptor mode
  int pool_vc_ = 0;                   ///< this descriptor's chain in the pool
};

}  // namespace nbtinoc::noc
