#pragma once
// Flits and credits — the two payloads that travel between routers.

#include <cstdint>

#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::noc {

enum class FlitType : int { Head = 0, Body = 1, Tail = 2, HeadTail = 3 };

inline bool is_head(FlitType t) { return t == FlitType::Head || t == FlitType::HeadTail; }
inline bool is_tail(FlitType t) { return t == FlitType::Tail || t == FlitType::HeadTail; }

struct Flit {
  FlitType type = FlitType::Head;
  PacketId packet = 0;
  NodeId src = 0;
  NodeId dst = 0;
  int vnet = 0;           ///< virtual network (protocol class) of the packet
  int seq = 0;            ///< position within the packet (0 = head)
  int vc = kInvalidVc;    ///< VC of the *receiving* input port, set at ST
  sim::Cycle injected_at = 0;  ///< cycle the packet entered the source queue
  sim::Cycle arrived_at = 0;   ///< cycle written into the current buffer (BW)
};

/// Credit returned upstream when a flit is dequeued from an input VC.
/// `vc_freed` additionally signals that the tail left and the VC returned to
/// Idle (the out-VC-state transition in the upstream router).
struct Credit {
  int vc = kInvalidVc;
  bool vc_freed = false;
};

}  // namespace nbtinoc::noc
