#pragma once
// Flits and credits — the two payloads that travel between routers.

#include <cstdint>

#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/snapshot.hpp"

namespace nbtinoc::noc {

enum class FlitType : int { Head = 0, Body = 1, Tail = 2, HeadTail = 3 };

inline bool is_head(FlitType t) { return t == FlitType::Head || t == FlitType::HeadTail; }
inline bool is_tail(FlitType t) { return t == FlitType::Tail || t == FlitType::HeadTail; }

struct Flit {
  FlitType type = FlitType::Head;
  PacketId packet = 0;
  NodeId src = 0;
  NodeId dst = 0;
  int vnet = 0;           ///< virtual network (protocol class) of the packet
  int seq = 0;            ///< position within the packet (0 = head)
  int vc = kInvalidVc;    ///< VC of the *receiving* input port, set at ST
  sim::Cycle injected_at = 0;  ///< cycle the packet entered the source queue
  sim::Cycle arrived_at = 0;   ///< cycle written into the current buffer (BW)
};

/// Credit returned upstream when a flit is dequeued from an input VC.
/// `vc_freed` additionally signals that the tail left and the VC returned to
/// Idle (the out-VC-state transition in the upstream router).
struct Credit {
  int vc = kInvalidVc;
  bool vc_freed = false;
};

// --- checkpoint codecs (in-flight channel payloads) --------------------------

inline void snapshot_save(sim::SnapshotWriter& w, const Flit& f) {
  w.u8(static_cast<std::uint8_t>(f.type));
  w.u64(f.packet);
  w.i64(f.src);
  w.i64(f.dst);
  w.i64(f.vnet);
  w.i64(f.seq);
  w.i64(f.vc);
  w.u64(static_cast<std::uint64_t>(f.injected_at));
  w.u64(static_cast<std::uint64_t>(f.arrived_at));
}

inline Flit snapshot_load_flit(sim::SnapshotReader& r) {
  Flit f;
  f.type = static_cast<FlitType>(r.u8());
  f.packet = r.u64();
  f.src = static_cast<NodeId>(r.i64());
  f.dst = static_cast<NodeId>(r.i64());
  f.vnet = static_cast<int>(r.i64());
  f.seq = static_cast<int>(r.i64());
  f.vc = static_cast<int>(r.i64());
  f.injected_at = static_cast<sim::Cycle>(r.u64());
  f.arrived_at = static_cast<sim::Cycle>(r.u64());
  return f;
}

inline void snapshot_save(sim::SnapshotWriter& w, const Credit& c) {
  w.i64(c.vc);
  w.b(c.vc_freed);
}

inline Credit snapshot_load_credit(sim::SnapshotReader& r) {
  Credit c;
  c.vc = static_cast<int>(r.i64());
  c.vc_freed = r.b();
  return c;
}

}  // namespace nbtinoc::noc
