#pragma once
// Three-stage virtual-channel wormhole router (Garnet-style, paper §III):
//   stage 1: buffer write + route compute (BW/RC)
//   stage 2: virtual-channel allocation + switch allocation (VA/SA)
//   stage 3: switch traversal + link traversal (ST/LT)
//
// VC allocation for a downstream input port runs *here*, in the upstream
// router — the architectural fact both NBTI policies exploit. No packet
// mixing: a VC holds flits of a single packet between allocate and tail.
//
// The router binds to its network's StatRegistry at construction: counter
// names are interned once into dense handles, and the per-cycle stages bump
// those handles directly. Arbitration request vectors are fixed-capacity
// scratch bitsets owned by the router. Together with the ring-buffered
// channels this makes the steady-state cycle kernel allocation-free and
// string-hash-free.

#include <array>
#include <memory>

#include "nbtinoc/noc/channel.hpp"
#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/flit.hpp"
#include "nbtinoc/noc/input_unit.hpp"
#include "nbtinoc/noc/output_unit.hpp"
#include "nbtinoc/noc/routing.hpp"
#include "nbtinoc/sim/stat_registry.hpp"

namespace nbtinoc::noc {

class Router {
 public:
  /// `stats` must outlive the router: counter handles are interned against
  /// it here (wiring time) and used by every pipeline stage.
  Router(NodeId id, const NocConfig& config, sim::StatRegistry& stats);

  NodeId id() const { return id_; }

  // --- wiring (performed once by Network) -----------------------------------
  /// Output side toward `dir`: the downstream router's input unit, the flit
  /// link to it, and the credit link coming back.
  void wire_output(Dir dir, InputUnit* downstream_iu, Channel<Flit>* flit_out,
                   Channel<Credit>* credit_in);
  /// Input side from `dir`: the flit link in and the credit link back to the
  /// upstream entity.
  void wire_input(Dir dir, Channel<Flit>* flit_in, Channel<Credit>* credit_out);
  /// Local output = ejection channel into the NI.
  void wire_ejection(Channel<Flit>* eject_out);

  bool has_input(Dir dir) const { return inputs_[static_cast<std::size_t>(dir)] != nullptr; }
  bool has_output(Dir dir) const { return outputs_[static_cast<std::size_t>(dir)] != nullptr; }
  InputUnit& input(Dir dir) { return *inputs_.at(static_cast<std::size_t>(dir)); }
  const InputUnit& input(Dir dir) const { return *inputs_.at(static_cast<std::size_t>(dir)); }
  OutputUnit& output(Dir dir) { return *outputs_.at(static_cast<std::size_t>(dir)); }
  const OutputUnit& output(Dir dir) const { return *outputs_.at(static_cast<std::size_t>(dir)); }

  // --- wiring views (read-only; used by the invariant checker) ---------------
  const Channel<Flit>* flit_out_link(Dir dir) const {
    return flit_out_[static_cast<std::size_t>(dir)];
  }
  const Channel<Credit>* credit_in_link(Dir dir) const {
    return credit_in_[static_cast<std::size_t>(dir)];
  }
  const InputUnit* downstream_input(Dir dir) const {
    return downstream_iu_[static_cast<std::size_t>(dir)];
  }

  /// True if any input VC holds a routed head flit toward `out` that has no
  /// output VC yet — is_new_traffic_outport_x() of Algorithms 1 and 2.
  bool has_new_traffic_toward(Dir out, sim::Cycle now) const;
  /// Same, restricted to packets of one virtual network.
  bool has_new_traffic_toward(Dir out, int vnet, sim::Cycle now) const;

  // --- pipeline stages (invoked by Network in order) -------------------------
  /// Stage 2a: one output-VC allocation per output port per cycle.
  void va_stage(sim::Cycle now);
  /// Stage 2b/3: separable switch allocation, then switch+link traversal.
  void sa_st_stage(sim::Cycle now);
  /// Stage 1 for arriving flits; also drains returning credits.
  void accept_arrivals(sim::Cycle now);

  /// Flushes the event-driven NBTI accounting of every input port through
  /// cycle `through` (exclusive); see InputUnit::sync_stress.
  void sync_stress(sim::Cycle through);

  const NocConfig& config() const { return config_; }

  /// Stat key of this router's per-cycle flit movements
  /// ("noc.router<id>.flits_out"), used for per-tile power attribution.
  const std::string& flits_out_stat_key() const { return flits_out_key_; }

 private:
  /// True when any input port holds an Active VC — the O(ports) gate in
  /// front of the VA/SA scans (see va_stage).
  bool any_busy_input() const;

  NodeId id_;
  NocConfig config_;
  std::string flits_out_key_;

  // Interned stat handles (resolved once against stats_ at construction).
  sim::StatRegistry* stats_;
  sim::CounterHandle h_va_grants_;
  sim::CounterHandle h_flits_forwarded_;
  sim::CounterHandle h_flits_ejected_router_;
  sim::CounterHandle h_flits_out_;

  std::array<std::unique_ptr<InputUnit>, kNumDirs> inputs_{};
  std::array<std::unique_ptr<OutputUnit>, kNumDirs> outputs_{};

  // Wiring (non-owning; channels owned by Network).
  std::array<InputUnit*, kNumDirs> downstream_iu_{};
  std::array<Channel<Flit>*, kNumDirs> flit_out_{};
  std::array<Channel<Credit>*, kNumDirs> credit_in_{};
  std::array<Channel<Flit>*, kNumDirs> flit_in_{};
  std::array<Channel<Credit>*, kNumDirs> credit_out_{};
  Channel<Flit>* eject_out_ = nullptr;

  // Per-cycle arbitration scratch (sized once here; cleared, never
  // reallocated, inside the stages).
  RequestSet va_requests_;     ///< flattened (input port, VC) VA requests
  RequestSet vnet_has_free_;   ///< per-vnet free-downstream-VC flags
  RequestSet sa_ready_;        ///< per-VC SA readiness of one input port
  RequestSet sa_port_requests_;  ///< per-input-port SA requests
};

}  // namespace nbtinoc::noc
