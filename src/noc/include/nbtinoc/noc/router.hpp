#pragma once
// Three-stage virtual-channel wormhole router (Garnet-style, paper §III):
//   stage 1: buffer write + route compute (BW/RC)
//   stage 2: virtual-channel allocation + switch allocation (VA/SA)
//   stage 3: switch traversal + link traversal (ST/LT)
//
// VC allocation for a downstream input port runs *here*, in the upstream
// router — the architectural fact both NBTI policies exploit. No packet
// mixing: a VC holds flits of a single packet between allocate and tail.

#include <array>
#include <memory>

#include "nbtinoc/noc/channel.hpp"
#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/flit.hpp"
#include "nbtinoc/noc/input_unit.hpp"
#include "nbtinoc/noc/output_unit.hpp"
#include "nbtinoc/noc/routing.hpp"
#include "nbtinoc/sim/stat_registry.hpp"

namespace nbtinoc::noc {

class Router {
 public:
  Router(NodeId id, const NocConfig& config);

  NodeId id() const { return id_; }

  // --- wiring (performed once by Network) -----------------------------------
  /// Output side toward `dir`: the downstream router's input unit, the flit
  /// link to it, and the credit link coming back.
  void wire_output(Dir dir, InputUnit* downstream_iu, Channel<Flit>* flit_out,
                   Channel<Credit>* credit_in);
  /// Input side from `dir`: the flit link in and the credit link back to the
  /// upstream entity.
  void wire_input(Dir dir, Channel<Flit>* flit_in, Channel<Credit>* credit_out);
  /// Local output = ejection channel into the NI.
  void wire_ejection(Channel<Flit>* eject_out);

  bool has_input(Dir dir) const { return inputs_[static_cast<std::size_t>(dir)] != nullptr; }
  bool has_output(Dir dir) const { return outputs_[static_cast<std::size_t>(dir)] != nullptr; }
  InputUnit& input(Dir dir) { return *inputs_.at(static_cast<std::size_t>(dir)); }
  const InputUnit& input(Dir dir) const { return *inputs_.at(static_cast<std::size_t>(dir)); }
  OutputUnit& output(Dir dir) { return *outputs_.at(static_cast<std::size_t>(dir)); }
  const OutputUnit& output(Dir dir) const { return *outputs_.at(static_cast<std::size_t>(dir)); }

  // --- wiring views (read-only; used by the invariant checker) ---------------
  const Channel<Flit>* flit_out_link(Dir dir) const {
    return flit_out_[static_cast<std::size_t>(dir)];
  }
  const Channel<Credit>* credit_in_link(Dir dir) const {
    return credit_in_[static_cast<std::size_t>(dir)];
  }
  const InputUnit* downstream_input(Dir dir) const {
    return downstream_iu_[static_cast<std::size_t>(dir)];
  }

  /// True if any input VC holds a routed head flit toward `out` that has no
  /// output VC yet — is_new_traffic_outport_x() of Algorithms 1 and 2.
  bool has_new_traffic_toward(Dir out, sim::Cycle now) const;
  /// Same, restricted to packets of one virtual network.
  bool has_new_traffic_toward(Dir out, int vnet, sim::Cycle now) const;

  // --- pipeline stages (invoked by Network in order) -------------------------
  /// Stage 2a: one output-VC allocation per output port per cycle.
  void va_stage(sim::Cycle now, sim::StatRegistry& stats);
  /// Stage 2b/3: separable switch allocation, then switch+link traversal.
  void sa_st_stage(sim::Cycle now, sim::StatRegistry& stats);
  /// Stage 1 for arriving flits; also drains returning credits.
  void accept_arrivals(sim::Cycle now);
  /// NBTI stress accounting for every input VC.
  void account_cycle();

  const NocConfig& config() const { return config_; }

  /// Stat key of this router's per-cycle flit movements
  /// ("noc.router<id>.flits_out"), used for per-tile power attribution.
  const std::string& flits_out_stat_key() const { return flits_out_key_; }

 private:
  NodeId id_;
  NocConfig config_;
  std::string flits_out_key_;

  std::array<std::unique_ptr<InputUnit>, kNumDirs> inputs_{};
  std::array<std::unique_ptr<OutputUnit>, kNumDirs> outputs_{};

  // Wiring (non-owning; channels owned by Network).
  std::array<InputUnit*, kNumDirs> downstream_iu_{};
  std::array<Channel<Flit>*, kNumDirs> flit_out_{};
  std::array<Channel<Credit>*, kNumDirs> credit_in_{};
  std::array<Channel<Flit>*, kNumDirs> flit_in_{};
  std::array<Channel<Credit>*, kNumDirs> credit_out_{};
  Channel<Flit>* eject_out_ = nullptr;
};

}  // namespace nbtinoc::noc
