#pragma once
// Three-stage virtual-channel wormhole router (Garnet-style, paper §III):
//   stage 1: buffer write + route compute (BW/RC)
//   stage 2: virtual-channel allocation + switch allocation (VA/SA)
//   stage 3: switch traversal + link traversal (ST/LT)
//
// VC allocation for a downstream input port runs *here*, in the upstream
// router — the architectural fact both NBTI policies exploit. No packet
// mixing: a VC holds flits of a single packet between allocate and tail.
//
// Port space: 4 cardinal ports plus one local (injection/ejection) port per
// attached NI — Topology::ports_per_router() in total. Non-concentrated
// topologies have exactly one local port (Dir::Local), reproducing the
// classic 5-port router.
//
// The RC stage is table-driven: one Topology::route() load per arriving
// head flit replaces the per-flit coordinate arithmetic, and carries the
// dateline VC class the packet needs downstream (torus/ring wrap-link
// deadlock avoidance; see topology.hpp).
//
// The router binds to its network's StatRegistry at construction: counter
// names are interned once into dense handles, and the per-cycle stages bump
// those handles directly. Arbitration request vectors are fixed-capacity
// scratch bitsets owned by the router. Together with the ring-buffered
// channels this makes the steady-state cycle kernel allocation-free and
// string-hash-free.

#include <memory>
#include <vector>

#include "nbtinoc/noc/channel.hpp"
#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/flit.hpp"
#include "nbtinoc/noc/input_unit.hpp"
#include "nbtinoc/noc/output_unit.hpp"
#include "nbtinoc/noc/topology.hpp"
#include "nbtinoc/sim/stat_registry.hpp"

namespace nbtinoc::noc {

class Router {
 public:
  /// `stats` must outlive the router: counter handles are interned against
  /// it here (wiring time) and used by every pipeline stage. `topology`
  /// (non-owning, must outlive the router) supplies the route table; pass
  /// nullptr — the standalone-unit-test convenience — and the router builds
  /// and owns its own from `config`.
  Router(NodeId id, const NocConfig& config, sim::StatRegistry& stats,
         const Topology* topology = nullptr);

  NodeId id() const { return id_; }
  int num_ports() const { return ports_; }

  // --- wiring (performed once by Network) -----------------------------------
  /// Output side toward `dir`: the downstream router's input unit, the flit
  /// link to it, and the credit link coming back.
  void wire_output(Dir dir, InputUnit* downstream_iu, Channel<Flit>* flit_out,
                   Channel<Credit>* credit_in);
  /// Input side from `dir`: the flit link in and the credit link back to the
  /// upstream entity.
  void wire_input(Dir dir, Channel<Flit>* flit_in, Channel<Credit>* credit_out);
  /// Local output `dir` = ejection channel into that slot's NI.
  void wire_ejection(Dir dir, Channel<Flit>* eject_out);
  /// Single-NI convenience: ejection on Dir::Local.
  void wire_ejection(Channel<Flit>* eject_out) { wire_ejection(Dir::Local, eject_out); }

  bool has_input(Dir dir) const { return inputs_[static_cast<std::size_t>(dir)] != nullptr; }
  bool has_output(Dir dir) const { return outputs_[static_cast<std::size_t>(dir)] != nullptr; }
  InputUnit& input(Dir dir) { return *inputs_.at(static_cast<std::size_t>(dir)); }
  const InputUnit& input(Dir dir) const { return *inputs_.at(static_cast<std::size_t>(dir)); }
  OutputUnit& output(Dir dir) { return *outputs_.at(static_cast<std::size_t>(dir)); }
  const OutputUnit& output(Dir dir) const { return *outputs_.at(static_cast<std::size_t>(dir)); }

  // --- wiring views (read-only; used by the invariant checker) ---------------
  const Channel<Flit>* flit_out_link(Dir dir) const {
    return flit_out_[static_cast<std::size_t>(dir)];
  }
  // Mutable channel access for the network's structural-fault drain (purge
  // by packet id, dead-link clearing). Never used on the healthy path.
  Channel<Flit>* flit_out_link_mut(Dir dir) { return flit_out_[static_cast<std::size_t>(dir)]; }
  Channel<Flit>* flit_in_link_mut(Dir dir) { return flit_in_[static_cast<std::size_t>(dir)]; }
  Channel<Credit>* credit_in_link_mut(Dir dir) {
    return credit_in_[static_cast<std::size_t>(dir)];
  }
  Channel<Credit>* credit_out_link_mut(Dir dir) {
    return credit_out_[static_cast<std::size_t>(dir)];
  }
  Channel<Flit>* eject_out_link_mut(Dir dir) { return eject_out_[static_cast<std::size_t>(dir)]; }
  const Channel<Credit>* credit_in_link(Dir dir) const {
    return credit_in_[static_cast<std::size_t>(dir)];
  }
  const Channel<Flit>* flit_in_link(Dir dir) const {
    return flit_in_[static_cast<std::size_t>(dir)];
  }
  const InputUnit* downstream_input(Dir dir) const {
    return downstream_iu_[static_cast<std::size_t>(dir)];
  }

  /// True if any input VC holds a routed head flit toward `out` that has no
  /// output VC yet — is_new_traffic_outport_x() of Algorithms 1 and 2.
  bool has_new_traffic_toward(Dir out, sim::Cycle now) const;
  /// Same, restricted to packets of one virtual network.
  bool has_new_traffic_toward(Dir out, int vnet, sim::Cycle now) const;
  /// Same, further restricted to one downstream dateline class (the
  /// per-class gating decision's traffic signal).
  bool has_new_traffic_toward(Dir out, int vnet, int cls, sim::Cycle now) const;

  // --- routing ---------------------------------------------------------------
  /// The RC decision for a flit arriving at `in_port`: the plain table load
  /// under DOR; under the turn-model modes, adaptive-class packets pick the
  /// least-stressed admissible output (per-output forwarded-flit counters,
  /// lowest port on ties); on a degraded fabric, the up*/down* candidate
  /// set replaces the turn model. Deterministic given router state, so all
  /// three scheduler modes agree bit for bit.
  RouteEntry route_for(Dir in_port, const Flit& flit) const;

  /// Cumulative flits forwarded through cardinal output `out` — the
  /// "stress" signal of the least-stressed adaptive selection and the
  /// reroute diagnostics.
  std::uint64_t port_forwarded(Dir out) const {
    return port_forwarded_[static_cast<std::size_t>(out)];
  }

  // --- structural-fault bookkeeping ------------------------------------------
  /// A dead input port never gates, wakes or receives again (its VCs were
  /// purged and parked in Recovery by the network's kill protocol); a dead
  /// router additionally drops out of every pipeline stage.
  void mark_input_port_dead(Dir d) { port_dead_[static_cast<std::size_t>(d)] = 1; }
  bool input_port_dead(Dir d) const { return port_dead_[static_cast<std::size_t>(d)] != 0; }
  void mark_dead() { dead_ = true; }
  bool dead() const { return dead_; }

  /// Re-runs RC (against the regenerated tables / candidate sets) for every
  /// buffered head flit still waiting for VA. Called once per kill, after
  /// the purge pass has removed everything illegal.
  void reroute_waiting_heads(sim::Cycle now);

  // --- pipeline stages (invoked by Network in order) -------------------------
  /// Stage 2a: one output-VC allocation per output port per cycle.
  void va_stage(sim::Cycle now);
  /// Stage 2b/3: separable switch allocation, then switch+link traversal.
  void sa_st_stage(sim::Cycle now);
  /// Stage 1 for arriving flits; also drains returning credits.
  void accept_arrivals(sim::Cycle now);

  /// Flushes the event-driven NBTI accounting of every input port through
  /// cycle `through` (exclusive); see InputUnit::sync_stress.
  void sync_stress(sim::Cycle through);

  const NocConfig& config() const { return config_; }
  const Topology& topology() const { return *topo_; }

  /// Stat key of this router's per-cycle flit movements
  /// ("noc.router<id>.flits_out"), used for per-tile power attribution.
  const std::string& flits_out_stat_key() const { return flits_out_key_; }

  /// True when any input port holds an Active VC — the O(ports) gate in
  /// front of the VA/SA scans (see va_stage), and the active-set
  /// scheduler's "this router still has datapath work" signal.
  bool any_busy_input() const;

  /// True when no inbound flit or credit channel of this router carries a
  /// payload: together with any_busy_input() == false this proves
  /// accept_arrivals() would be a no-op — half of the scheduler's
  /// park-eligibility condition.
  bool inbound_links_quiet() const;

  // --- checkpoint/restore ----------------------------------------------------
  /// Per-port input/output unit state plus the adaptive-routing stress
  /// signal and structural death flags. Channels are serialized by the
  /// network (their owner); arbitration scratch is per-cycle and skipped.
  void save(sim::SnapshotWriter& w) const;
  void load(sim::SnapshotReader& r);

 private:
  NodeId id_;
  NocConfig config_;
  std::unique_ptr<Topology> owned_topology_;  ///< standalone routers only
  const Topology* topo_;
  int ports_;
  std::string flits_out_key_;

  // Interned stat handles (resolved once against stats_ at construction).
  sim::StatRegistry* stats_;
  sim::CounterHandle h_va_grants_;
  sim::CounterHandle h_flits_forwarded_;
  sim::CounterHandle h_flits_ejected_router_;
  sim::CounterHandle h_flits_out_;

  std::vector<std::unique_ptr<InputUnit>> inputs_;
  std::vector<std::unique_ptr<OutputUnit>> outputs_;

  /// Turn-model least-stressed selection on the healthy mesh.
  RouteEntry turn_model_route(const Flit& flit) const;
  /// Up*/down* least-stressed selection on a degraded fabric.
  RouteEntry degraded_adaptive_route(Dir in_port, const Flit& flit, RouteEntry table) const;

  // Wiring (non-owning; channels owned by Network). All sized ports_;
  // ejection channels are indexed by local port, null on cardinal slots.
  std::vector<InputUnit*> downstream_iu_;
  std::vector<Channel<Flit>*> flit_out_;
  std::vector<Channel<Credit>*> credit_in_;
  std::vector<Channel<Flit>*> flit_in_;
  std::vector<Channel<Credit>*> credit_out_;
  std::vector<Channel<Flit>*> eject_out_;

  std::vector<std::uint64_t> port_forwarded_;  ///< per-port forwarded flits (stress signal)
  std::vector<std::uint8_t> port_dead_;        ///< structurally dead input ports
  bool dead_ = false;                          ///< whole router killed

  // Per-cycle arbitration scratch (sized once here; cleared, never
  // reallocated, inside the stages).
  RequestSet va_requests_;     ///< flattened (input port, VC) VA requests
  RequestSet vnet_has_free_;   ///< per-(vnet, class) free-downstream-VC flags
  RequestSet sa_ready_;        ///< per-VC SA readiness of one input port
  RequestSet sa_port_requests_;  ///< per-input-port SA requests
  std::vector<int> sa_candidate_;  ///< per-input-port nominated VC (phase 1)
};

}  // namespace nbtinoc::noc
