#pragma once
// Interface between the network interfaces and the traffic generators.
// Concrete sources (uniform Bernoulli, Markov-modulated application models,
// trace replay) live in the traffic library.

#include <optional>

#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/event_horizon.hpp"
#include "nbtinoc/sim/snapshot.hpp"

namespace nbtinoc::noc {

struct PacketRequest {
  NodeId dst = 0;
  int length = 1;  ///< flits, head..tail
  int vnet = 0;    ///< virtual network (protocol class)
};

class ITrafficSource {
 public:
  virtual ~ITrafficSource() = default;
  /// Called once per cycle; returns a packet to enqueue at this node's NI,
  /// or nullopt. At most one packet per cycle per node.
  virtual std::optional<PacketRequest> maybe_generate(sim::Cycle now) = 0;

  /// Earliest cycle >= now at which this source could return a packet, or
  /// sim::kCycleNever if it never will.  Answers may be conservative (any
  /// cycle <= the true next event is safe — the caller simply re-asks after
  /// stepping there); they must never overshoot a real event.  The default
  /// returns `now`, which disables fast-forwarding for sources that do not
  /// implement the query.  Implementations must not change the source's
  /// observable RNG consumption order relative to per-cycle stepping.
  virtual sim::Cycle next_event_cycle(sim::Cycle now) { return now; }

  /// Checkpoint hooks. Stateless sources need nothing; stateful ones must
  /// round-trip every field that influences future draws (RNG state,
  /// pre-roll frontiers, modulation state). The network calls these in node
  /// order inside its own save/load.
  virtual void save(sim::SnapshotWriter& w) const { (void)w; }
  virtual void load(sim::SnapshotReader& r) { (void)r; }
};

/// A source that never generates traffic (default for unconfigured nodes).
class SilentSource final : public ITrafficSource {
 public:
  std::optional<PacketRequest> maybe_generate(sim::Cycle) override { return std::nullopt; }
  sim::Cycle next_event_cycle(sim::Cycle) override { return sim::kCycleNever; }
};

}  // namespace nbtinoc::noc
