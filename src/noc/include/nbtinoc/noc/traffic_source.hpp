#pragma once
// Interface between the network interfaces and the traffic generators.
// Concrete sources (uniform Bernoulli, Markov-modulated application models,
// trace replay) live in the traffic library.

#include <cstddef>
#include <optional>

#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/event_horizon.hpp"
#include "nbtinoc/sim/snapshot.hpp"

namespace nbtinoc::noc {

struct PacketRequest {
  NodeId dst = 0;
  int length = 1;  ///< flits, head..tail
  int vnet = 0;    ///< virtual network (protocol class)
};

/// Most packets an NI pulls from its source in one generate() call (the
/// size of its stack-resident burst buffer). Sources with more same-cycle
/// packets keep the surplus and report next_event_cycle(now) == now, so
/// every scheduler mode drains the backlog on the following cycles in the
/// same order — burst overflow slips, it never drops or reorders.
inline constexpr std::size_t kMaxGenerateBurst = 8;

class ITrafficSource {
 public:
  virtual ~ITrafficSource() = default;
  /// Called once per cycle; returns a packet to enqueue at this node's NI,
  /// or nullopt. At most one packet per cycle per call.
  virtual std::optional<PacketRequest> maybe_generate(sim::Cycle now) = 0;

  /// Batched variant (ndn-dpdk-style): writes every packet this source
  /// offers at `now` — at most `max` — into `out` and returns how many.
  /// The NI calls this instead of maybe_generate(), so multi-packet sources
  /// (trace replay of same-cycle records, datacenter aggregates) hand over
  /// a whole same-cycle run in one virtual call with zero allocations.
  /// The default adapts single-packet sources: one maybe_generate() poll,
  /// preserving their per-cycle semantics and RNG draw order exactly.
  virtual std::size_t generate_burst(sim::Cycle now, PacketRequest* out, std::size_t max) {
    if (max == 0) return 0;
    if (auto req = maybe_generate(now)) {
      out[0] = *req;
      return 1;
    }
    return 0;
  }

  /// Earliest cycle >= now at which this source could return a packet, or
  /// sim::kCycleNever if it never will.  Answers may be conservative (any
  /// cycle <= the true next event is safe — the caller simply re-asks after
  /// stepping there); they must never overshoot a real event.  The default
  /// returns `now`, which disables fast-forwarding for sources that do not
  /// implement the query.  Implementations must not change the source's
  /// observable RNG consumption order relative to per-cycle stepping.
  virtual sim::Cycle next_event_cycle(sim::Cycle now) { return now; }

  /// Checkpoint hooks. Stateless sources need nothing; stateful ones must
  /// round-trip every field that influences future draws (RNG state,
  /// pre-roll frontiers, modulation state). The network calls these in node
  /// order inside its own save/load.
  virtual void save(sim::SnapshotWriter& w) const { (void)w; }
  virtual void load(sim::SnapshotReader& r) { (void)r; }
};

/// Observer of the offered load: Network::set_trace_sink fans one sink out
/// to every NI, which then reports each packet its source offers — before
/// the self-traffic / unroutable filters, so a replay re-applies the same
/// filters and reproduces the run bit-identically. Recording is passive:
/// it consumes no RNG and never perturbs the run (traffic::Trace is the
/// standard implementation).
class ITraceSink {
 public:
  virtual ~ITraceSink() = default;
  virtual void record(sim::Cycle now, NodeId src, const PacketRequest& req) = 0;
};

/// A source that never generates traffic (default for unconfigured nodes).
class SilentSource final : public ITrafficSource {
 public:
  std::optional<PacketRequest> maybe_generate(sim::Cycle) override { return std::nullopt; }
  sim::Cycle next_event_cycle(sim::Cycle) override { return sim::kCycleNever; }
};

}  // namespace nbtinoc::noc
