#pragma once
// Interface between the network interfaces and the traffic generators.
// Concrete sources (uniform Bernoulli, Markov-modulated application models,
// trace replay) live in the traffic library.

#include <optional>

#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::noc {

struct PacketRequest {
  NodeId dst = 0;
  int length = 1;  ///< flits, head..tail
  int vnet = 0;    ///< virtual network (protocol class)
};

class ITrafficSource {
 public:
  virtual ~ITrafficSource() = default;
  /// Called once per cycle; returns a packet to enqueue at this node's NI,
  /// or nullopt. At most one packet per cycle per node.
  virtual std::optional<PacketRequest> maybe_generate(sim::Cycle now) = 0;
};

/// A source that never generates traffic (default for unconfigured nodes).
class SilentSource final : public ITrafficSource {
 public:
  std::optional<PacketRequest> maybe_generate(sim::Cycle) override { return std::nullopt; }
};

}  // namespace nbtinoc::noc
