#pragma once
// The full network: topology, routers, NIs, links, and the per-cycle
// schedule. The link pattern, router count, and per-router port count all
// come from the pluggable Topology (mesh / torus / ring / concentrated
// mesh, see topology.hpp); the cycle schedule below is topology-agnostic.
//
// Cycle schedule (one step() call):
//   1. pre-VA gating: every (upstream, downstream-input-port) pair runs the
//      installed IGateController and the command is applied (Up_Down link)
//   2. VA stage of every router
//   3. SA + ST stage of every router (flits depart onto links)
//   4. link delivery: arriving flits are buffer-written, credits drained
//   5. NI injection side: VA + serialization + traffic generation
//   6. controller post-cycle hook (sensor refresh, Down_Up update)
// NBTI stress accounting is event-driven (StressTracker lazy mode): buffers
// notify their trackers at gate/wake transitions, and readers fence with
// sync_stress_accounting() — so an idle mesh pays O(transitions), not
// O(routers × ports × VCs), per cycle.
// A flit therefore needs three cycles per hop (BW/RC, VA/SA, ST/LT),
// matching the paper's 3-stage pipeline.

#include <array>
#include <memory>
#include <vector>

#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/gate.hpp"
#include "nbtinoc/noc/network_interface.hpp"
#include "nbtinoc/noc/router.hpp"
#include "nbtinoc/noc/topology.hpp"
#include "nbtinoc/noc/traffic_source.hpp"
#include "nbtinoc/sim/active_set.hpp"
#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/event_horizon.hpp"
#include "nbtinoc/sim/fault_plan.hpp"
#include "nbtinoc/sim/stat_registry.hpp"

namespace nbtinoc::noc {

/// Execution engines for Network::run(). All three are bit-identical in
/// every observable (stats, duty cycles, RNG streams); they differ only in
/// how much work each simulated cycle costs:
///  - kStepped:     literal per-cycle execution of every component.
///  - kFastForward: stepped, plus closed-form jumps across whole-network
///                  quiescence (the PR 4 event-horizon engine).
///  - kActiveSet:   event-driven — only routers/NIs with provable work are
///                  stepped each cycle; wake events (channel deliveries,
///                  source fires, reply posts) re-insert parked components,
///                  and full quiescence degenerates to the same
///                  event-horizon jump.
enum class SchedulerMode { kStepped, kFastForward, kActiveSet };

class Network {
 public:
  explicit Network(NocConfig config);

  // Non-copyable, non-movable: components hold stable cross-pointers.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const NocConfig& config() const { return config_; }
  /// Terminals (tiles / NIs) — the id space of Flit::src/dst and the
  /// traffic layer, on every topology.
  int nodes() const { return config_.nodes(); }
  /// Routers — equals nodes() except on the concentrated mesh.
  int num_routers() const { return static_cast<int>(routers_.size()); }
  const Topology& topology() const { return *topo_; }

  Router& router(NodeId id) { return *routers_.at(static_cast<std::size_t>(id)); }
  const Router& router(NodeId id) const { return *routers_.at(static_cast<std::size_t>(id)); }
  NetworkInterface& ni(NodeId id) { return *nis_.at(static_cast<std::size_t>(id)); }
  const NetworkInterface& ni(NodeId id) const { return *nis_.at(static_cast<std::size_t>(id)); }

  /// Installs the NBTI gating policy host (non-owning). Pass nullptr to
  /// restore the built-in always-on baseline.
  void set_gate_controller(IGateController* controller);
  IGateController& gate_controller() { return *controller_; }

  /// Installs the fault injector (non-owning; nullptr to remove). Control
  /// faults make gate commands traverse their Up_Down channels under a
  /// fault hook (drop / in-range corruption) and wake handshakes may fail —
  /// the flit/credit datapath is never touched by them. Structural faults
  /// (plan().structural) are permanent data-plane kills: the schedule is
  /// validated and sorted here, and each kill is applied at the start of
  /// exactly its cycle in every scheduler mode (see apply_structural_faults).
  void set_fault_injector(sim::FaultInjector* injector);
  sim::FaultInjector* fault_injector() { return injector_; }

  /// The Up_Down command link feeding one router input port (always exists
  /// for existing ports; commands cross it with zero delay, the paper's
  /// zero-skew control wiring). Exposed for tests probing drop counts.
  const Channel<GateCommand>& up_down_link(NodeId router, Dir port) const;

  /// Installs the traffic source for one node (owning).
  void set_traffic_source(NodeId node, std::unique_ptr<ITrafficSource> source);

  /// Fans the offered-load observer out to every NI (non-owning; nullptr to
  /// remove). The sink sees each packet any source offers, pre-filtering —
  /// the in-run trace-capture hook (core::RunnerOptions::capture_trace).
  void set_trace_sink(ITraceSink* sink) {
    for (auto& ni : nis_) ni->set_trace_sink(sink);
  }

  /// Advances one cycle.
  void step();
  /// Advances `cycles` cycles. With fast-forwarding enabled, provably
  /// quiescent stretches are skipped in closed form (bit-identical results;
  /// see quiescent()/next_event_horizon()).
  void run(sim::Cycle cycles);
  /// Runs `warmup` cycles with stress accounting frozen, then `measure`
  /// cycles with accounting enabled.
  void run_with_warmup(sim::Cycle warmup, sim::Cycle measure);

  /// Freezes/unfreezes NBTI accounting on every buffer (warmup fence).
  /// Flushes pending lazy intervals first, so cycles are attributed by when
  /// they elapsed, not by when the fence was toggled.
  void set_measuring(bool measuring);

  /// Flushes the event-driven NBTI accounting of every buffer through the
  /// current cycle. run(), set_measuring() and duty_cycles_percent() call
  /// this themselves; call it explicitly before reading trackers() directly
  /// after manual step() loops. Const: logically the trackers' observable
  /// counts never change, only their internal lazy representation.
  void sync_stress_accounting() const;

  const sim::Clock& clock() const { return clock_; }
  sim::StatRegistry& stats() { return stats_; }
  const sim::StatRegistry& stats() const { return stats_; }

  /// NBTI duty cycles (percent) of one input port's VC bank.
  std::vector<double> duty_cycles_percent(NodeId node, Dir input_port) const;

  /// Conservation check: all flits accepted by NIs were eventually ejected
  /// or are still somewhere in flight. True when nothing is in flight.
  bool drained() const;

  // --- structural (data-plane) faults ----------------------------------------
  /// Flits physically removed by structural-fault drains so far — the
  /// -Δ term of the invariant checker's conservation audit.
  std::uint64_t dropped_flits() const { return dropped_flits_total_; }
  /// Cycle of the next pending structural kill (kCycleNever when none) —
  /// the fence both fast-forwarding engines must not jump across.
  sim::Cycle next_structural_cycle() const { return next_structural_cycle_; }

  // --- execution engines (sim::EventHorizon, sim::ActiveSet) -----------------
  /// Selects the execution engine. Defaults to kStepped (step()-level tests
  /// expect literal per-cycle execution); core::run_experiment picks via
  /// RunnerOptions. Entering kActiveSet installs channel push hooks and
  /// marks every component active (the first retire pass parks what it
  /// can); leaving removes the hooks.
  ///
  /// kActiveSet caveat: when the *gate controller* carries a fault
  /// injector, the network must carry one with the same FaultPlan too —
  /// faulted ports can emit time-varying commands, and it is the network's
  /// injector that pins their routers active. core::run_experiment always
  /// installs both together.
  void set_scheduler_mode(SchedulerMode mode);
  SchedulerMode scheduler_mode() const { return scheduler_mode_; }

  /// Legacy toggle: maps to kFastForward / kStepped.
  void set_fast_forward(bool enabled) {
    set_scheduler_mode(enabled ? SchedulerMode::kFastForward : SchedulerMode::kStepped);
  }
  bool fast_forward() const { return scheduler_mode_ == SchedulerMode::kFastForward; }

  // --- active-set introspection (oracle tests, invariant checker) ------------
  /// Membership of the active set for the *next* cycle to execute (the
  /// retire pass of the previous step populated it; wake-heap entries due
  /// later are not yet visible). A component outside is parked: provably at
  /// a local fixed point until a wake event re-inserts it.
  bool router_active(NodeId id) const { return active_routers_.contains(id); }
  bool ni_active(NodeId t) const { return active_nis_.contains(t); }
  /// Membership during the most recently executed active-set cycle.
  bool router_stepped(NodeId id) const { return stepped_routers_.contains(id); }
  bool ni_stepped(NodeId t) const { return stepped_nis_.contains(t); }

  /// True when router `id` sits in the per-port gating fixed point the park
  /// condition (and quiescent()) require: every (vnet, class) record of a
  /// port agrees, and the port is all-gated or all-idle accordingly.
  bool router_gating_fixed_point(NodeId id) const;

  struct SchedulerStats {
    std::uint64_t cycles_executed = 0;  ///< active-set cycles actually stepped
    std::uint64_t router_steps = 0;     ///< sum over cycles of active routers
    std::uint64_t ni_steps = 0;         ///< sum over cycles of active NIs
  };
  const SchedulerStats& scheduler_stats() const { return scheduler_stats_; }

  /// Wakes terminal `t`'s NI no later than max(at, now + 1) — the hook for
  /// cross-source events no channel carries (ReplyBoard posts a reply to a
  /// possibly parked server). No-op outside kActiveSet mode.
  void wake_terminal_at(NodeId t, sim::Cycle at);

  /// O(channels + ports) proof that nothing observable can happen until an
  /// external event: no flit or credit in flight, every NI empty and not
  /// serializing, no fault injector, and every input port parked in its
  /// gating fixed point (all VCs gated under an active gating command, or
  /// all VCs idle-and-unGated under the baseline). Each policy's decide()
  /// is a no-op on such a port (asserted by tests, derived in
  /// ARCHITECTURE.md §9), so repeating step() until the next traffic/sensor
  /// event only spins the clock.
  bool quiescent() const;

  /// Earliest cycle >= now at which anything observable can happen while
  /// the mesh stays quiescent: min over every traffic source's
  /// next_event_cycle() and the controller's (sensor refresh epochs; `now`
  /// under fault injection). May conservatively undershoot — run() then
  /// simply re-checks after stepping there. Non-const: sources pre-roll
  /// their RNG streams to answer.
  sim::Cycle next_event_horizon();

  /// How often run() fast-forwarded and how many cycles it elided
  /// (monotonic over the network's lifetime).
  const sim::SkipStats& skip_stats() const { return skip_stats_; }

  // --- checkpoint/restore ----------------------------------------------------
  /// Serializes every observable bit of network state: the clock, the stat
  /// registry, routers (buffers, allocations, stress accumulators,
  /// fairness pointers), NIs, all in-flight channel payloads, the gating
  /// record, the structural-kill cursor and the traffic sources. Scheduler
  /// bookkeeping (active sets, wake ring/heap, skip stats) is NOT saved: it
  /// is reconstructed exactly by re-entering the scheduler mode after load
  /// (see ARCHITECTURE.md §13).
  void save_state(sim::SnapshotWriter& w) const;
  /// Restores a snapshot into this freshly built network. Must run in
  /// kStepped mode (the construction default), after set_fault_injector and
  /// set_traffic_source wiring, and *before* set_scheduler_mode — loading
  /// rebuilds channel queues underneath any push hooks. Structural kills
  /// already applied in the saved run are re-applied to the fresh topology
  /// (route-table regeneration only; the drained state comes from the
  /// snapshot itself).
  void load_state(sim::SnapshotReader& r);

  /// Flits currently crossing any flit channel (router-router links plus
  /// NI injection/ejection channels).
  std::size_t flits_in_flight() const;
  /// Flits resident anywhere past injection: in-flight on channels plus
  /// buffered in router input VCs. The invariant checker's census.
  std::size_t flits_resident() const;

 private:
  void gating_stage();
  /// One router's slice of the gating stage (decide + Up_Down delivery for
  /// every port/vnet/class) — shared by the full walk and the active-set
  /// scheduler.
  void gating_stage_for(NodeId id, sim::Cycle now);
  /// The injector seen by `apply_gate_command` at this port: the installed
  /// one if the plan targets the port (an empty target list targets all),
  /// nullptr otherwise — untargeted ports must not draw wake-fail RNG.
  sim::FaultInjector* injector_for(NodeId id, Dir port) const;

  // --- active-set scheduler ---------------------------------------------------
  /// One cycle stepping only active components (the kActiveSet step()).
  void step_active();
  /// End-of-cycle bookkeeping: parks / keeps each active component, wakes
  /// neighbors of busy routers, schedules source wakes, and rotates the
  /// wake ring into the next cycle's active sets.
  void retire_active_cycle(sim::Cycle now);
  /// Moves heap wakes due at `now` into the active sets.
  void drain_wakes(sim::Cycle now);
  void wake_router_at(NodeId id, sim::Cycle at);
  void wake_ni_at(NodeId t, sim::Cycle at);
  /// Park precondition beyond busy_vcs == 0 (checked by the caller): not
  /// fault-pinned, inbound channels quiet, gating fixed point.
  bool router_park_eligible(NodeId id) const;
  void install_push_hooks();
  void remove_push_hooks();
  /// Recomputes pinned_routers_ from the injector's FaultPlan targets: a
  /// targeted router never parks, so every fault RNG draw stays at its
  /// stepped-schedule position and the rest of the fabric keeps skipping.
  void refresh_fault_pins();

  // --- structural-fault kill protocol ----------------------------------------
  /// Applies every scheduled kill whose cycle has arrived (start-of-cycle,
  /// before any pipeline stage), then runs one drain/quarantine pass.
  void apply_structural_faults(sim::Cycle now);
  /// The drain: dooms every packet whose position, committed move, or
  /// destination is illegal under the regenerated up*/down* orientation,
  /// purges it everywhere (channels, VC buffers, NI serialization), clears
  /// dead channels, quarantines dead ports/routers/NIs, rewrites every
  /// surviving credit counter from the conservation identity, re-runs RC
  /// for waiting heads, and audits the regenerated CDG for acyclicity.
  void purge_after_kill(sim::Cycle now);
  /// Rewrites credit counters of every surviving link and NI to
  /// depth - in-flight flits - in-flight credits - downstream occupancy.
  void restore_credits();

  Channel<GateCommand>& up_down_link_mutable(NodeId router, Dir port);
  /// Last applied gating mode (gating_active) per (router, port, vnet,
  /// dateline class) — written by gating_stage, read by the quiescence
  /// proof to pick which fixed point (all-gated vs all-idle) each port must
  /// satisfy. Single-class topologies collapse the class axis.
  std::size_t gating_record_index(NodeId router, Dir port, int vnet, int cls) const {
    const auto ports = static_cast<std::size_t>(config_.ports_per_router());
    return ((static_cast<std::size_t>(router) * ports + static_cast<std::size_t>(port)) *
                static_cast<std::size_t>(config_.num_vnets) +
            static_cast<std::size_t>(vnet)) *
               static_cast<std::size_t>(config_.vc_classes()) +
           static_cast<std::size_t>(cls);
  }

  NocConfig config_;
  sim::Clock clock_;
  sim::StatRegistry stats_;

  std::unique_ptr<Topology> topo_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
  std::vector<std::unique_ptr<Channel<Credit>>> credit_channels_;
  /// Receiver of each channel (parallel to flit_channels_ /
  /// credit_channels_), recorded at wiring time so the active-set push
  /// hooks know whom a delivery wakes.
  struct ChannelSink {
    bool is_ni = false;
    NodeId id = 0;
  };
  std::vector<ChannelSink> flit_sinks_;
  std::vector<ChannelSink> credit_sinks_;
  /// Up_Down command links, indexed router * ports_per_router + port (null
  /// where the input port does not exist).
  std::vector<std::unique_ptr<Channel<GateCommand>>> up_down_links_;
  std::vector<std::unique_ptr<ITrafficSource>> sources_;

  AlwaysOnController baseline_controller_;
  IGateController* controller_ = nullptr;
  sim::FaultInjector* injector_ = nullptr;

  SchedulerMode scheduler_mode_ = SchedulerMode::kStepped;
  sim::SkipStats skip_stats_;
  std::vector<unsigned char> gating_record_;

  // --- active-set scheduler state --------------------------------------------
  sim::ActiveSet active_routers_;   ///< cycle about to execute
  sim::ActiveSet active_nis_;
  sim::ActiveSet stepped_routers_;  ///< cycle just executed (introspection)
  sim::ActiveSet stepped_nis_;
  /// Short wake ring: [0] holds wakes for now + 1, [1] for now + 2 (the
  /// flit-link delay); rotated at retire. Anything farther goes to the heap.
  std::array<sim::ActiveSet, 2> wake_routers_;
  std::array<sim::ActiveSet, 2> wake_nis_;
  sim::WakeHeap wake_heap_;  ///< ids: [0, routers) routers, then terminals
  std::vector<unsigned char> pinned_routers_;  ///< fault-targeted, never park
  SchedulerStats scheduler_stats_;

  // --- structural-fault schedule ---------------------------------------------
  std::vector<sim::StructuralFault> structural_events_;  ///< sorted (cycle, router, port)
  std::size_t next_structural_ = 0;          ///< first unapplied event
  sim::Cycle next_structural_cycle_ = sim::kCycleNever;
  std::uint64_t dropped_flits_total_ = 0;    ///< flits removed by drains

  std::uint64_t packet_id_counter_ = 0;
};

}  // namespace nbtinoc::noc
