#pragma once
// The full 2D-mesh network: routers, NIs, links, and the per-cycle schedule.
//
// Cycle schedule (one step() call):
//   1. pre-VA gating: every (upstream, downstream-input-port) pair runs the
//      installed IGateController and the command is applied (Up_Down link)
//   2. VA stage of every router
//   3. SA + ST stage of every router (flits depart onto links)
//   4. link delivery: arriving flits are buffer-written, credits drained
//   5. NI injection side: VA + serialization + traffic generation
//   6. NBTI stress accounting for every VC buffer
//   7. controller post-cycle hook (sensor refresh, Down_Up update)
// A flit therefore needs three cycles per hop (BW/RC, VA/SA, ST/LT),
// matching the paper's 3-stage pipeline.

#include <memory>
#include <vector>

#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/gate.hpp"
#include "nbtinoc/noc/network_interface.hpp"
#include "nbtinoc/noc/router.hpp"
#include "nbtinoc/noc/traffic_source.hpp"
#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/stat_registry.hpp"

namespace nbtinoc::noc {

class Network {
 public:
  explicit Network(NocConfig config);

  // Non-copyable, non-movable: components hold stable cross-pointers.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const NocConfig& config() const { return config_; }
  int nodes() const { return config_.nodes(); }

  Router& router(NodeId id) { return *routers_.at(static_cast<std::size_t>(id)); }
  const Router& router(NodeId id) const { return *routers_.at(static_cast<std::size_t>(id)); }
  NetworkInterface& ni(NodeId id) { return *nis_.at(static_cast<std::size_t>(id)); }

  /// Installs the NBTI gating policy host (non-owning). Pass nullptr to
  /// restore the built-in always-on baseline.
  void set_gate_controller(IGateController* controller);
  IGateController& gate_controller() { return *controller_; }

  /// Installs the traffic source for one node (owning).
  void set_traffic_source(NodeId node, std::unique_ptr<ITrafficSource> source);

  /// Advances one cycle.
  void step();
  /// Advances `cycles` cycles.
  void run(sim::Cycle cycles);
  /// Runs `warmup` cycles with stress accounting frozen, then `measure`
  /// cycles with accounting enabled.
  void run_with_warmup(sim::Cycle warmup, sim::Cycle measure);

  /// Freezes/unfreezes NBTI accounting on every buffer (warmup fence).
  void set_measuring(bool measuring);

  const sim::Clock& clock() const { return clock_; }
  sim::StatRegistry& stats() { return stats_; }
  const sim::StatRegistry& stats() const { return stats_; }

  /// NBTI duty cycles (percent) of one input port's VC bank.
  std::vector<double> duty_cycles_percent(NodeId node, Dir input_port) const;

  /// Conservation check: all flits accepted by NIs were eventually ejected
  /// or are still somewhere in flight. True when nothing is in flight.
  bool drained() const;

 private:
  void gating_stage();

  NocConfig config_;
  sim::Clock clock_;
  sim::StatRegistry stats_;

  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
  std::vector<std::unique_ptr<Channel<Credit>>> credit_channels_;
  std::vector<std::unique_ptr<ITrafficSource>> sources_;

  AlwaysOnController baseline_controller_;
  IGateController* controller_ = nullptr;

  std::uint64_t packet_id_counter_ = 0;
};

}  // namespace nbtinoc::noc
