#pragma once
// The full network: topology, routers, NIs, links, and the per-cycle
// schedule. The link pattern, router count, and per-router port count all
// come from the pluggable Topology (mesh / torus / ring / concentrated
// mesh, see topology.hpp); the cycle schedule below is topology-agnostic.
//
// Cycle schedule (one step() call):
//   1. pre-VA gating: every (upstream, downstream-input-port) pair runs the
//      installed IGateController and the command is applied (Up_Down link)
//   2. VA stage of every router
//   3. SA + ST stage of every router (flits depart onto links)
//   4. link delivery: arriving flits are buffer-written, credits drained
//   5. NI injection side: VA + serialization + traffic generation
//   6. controller post-cycle hook (sensor refresh, Down_Up update)
// NBTI stress accounting is event-driven (StressTracker lazy mode): buffers
// notify their trackers at gate/wake transitions, and readers fence with
// sync_stress_accounting() — so an idle mesh pays O(transitions), not
// O(routers × ports × VCs), per cycle.
// A flit therefore needs three cycles per hop (BW/RC, VA/SA, ST/LT),
// matching the paper's 3-stage pipeline.

#include <memory>
#include <vector>

#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/gate.hpp"
#include "nbtinoc/noc/network_interface.hpp"
#include "nbtinoc/noc/router.hpp"
#include "nbtinoc/noc/topology.hpp"
#include "nbtinoc/noc/traffic_source.hpp"
#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/event_horizon.hpp"
#include "nbtinoc/sim/fault_plan.hpp"
#include "nbtinoc/sim/stat_registry.hpp"

namespace nbtinoc::noc {

class Network {
 public:
  explicit Network(NocConfig config);

  // Non-copyable, non-movable: components hold stable cross-pointers.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const NocConfig& config() const { return config_; }
  /// Terminals (tiles / NIs) — the id space of Flit::src/dst and the
  /// traffic layer, on every topology.
  int nodes() const { return config_.nodes(); }
  /// Routers — equals nodes() except on the concentrated mesh.
  int num_routers() const { return static_cast<int>(routers_.size()); }
  const Topology& topology() const { return *topo_; }

  Router& router(NodeId id) { return *routers_.at(static_cast<std::size_t>(id)); }
  const Router& router(NodeId id) const { return *routers_.at(static_cast<std::size_t>(id)); }
  NetworkInterface& ni(NodeId id) { return *nis_.at(static_cast<std::size_t>(id)); }
  const NetworkInterface& ni(NodeId id) const { return *nis_.at(static_cast<std::size_t>(id)); }

  /// Installs the NBTI gating policy host (non-owning). Pass nullptr to
  /// restore the built-in always-on baseline.
  void set_gate_controller(IGateController* controller);
  IGateController& gate_controller() { return *controller_; }

  /// Installs the control-path fault injector (non-owning; nullptr to
  /// remove). Gate commands then traverse their Up_Down channels under a
  /// fault hook (drop / in-range corruption) and wake handshakes may fail.
  /// The flit/credit datapath is never touched: faults cannot lose flits.
  void set_fault_injector(sim::FaultInjector* injector);
  sim::FaultInjector* fault_injector() { return injector_; }

  /// The Up_Down command link feeding one router input port (always exists
  /// for existing ports; commands cross it with zero delay, the paper's
  /// zero-skew control wiring). Exposed for tests probing drop counts.
  const Channel<GateCommand>& up_down_link(NodeId router, Dir port) const;

  /// Installs the traffic source for one node (owning).
  void set_traffic_source(NodeId node, std::unique_ptr<ITrafficSource> source);

  /// Advances one cycle.
  void step();
  /// Advances `cycles` cycles. With fast-forwarding enabled, provably
  /// quiescent stretches are skipped in closed form (bit-identical results;
  /// see quiescent()/next_event_horizon()).
  void run(sim::Cycle cycles);
  /// Runs `warmup` cycles with stress accounting frozen, then `measure`
  /// cycles with accounting enabled.
  void run_with_warmup(sim::Cycle warmup, sim::Cycle measure);

  /// Freezes/unfreezes NBTI accounting on every buffer (warmup fence).
  /// Flushes pending lazy intervals first, so cycles are attributed by when
  /// they elapsed, not by when the fence was toggled.
  void set_measuring(bool measuring);

  /// Flushes the event-driven NBTI accounting of every buffer through the
  /// current cycle. run(), set_measuring() and duty_cycles_percent() call
  /// this themselves; call it explicitly before reading trackers() directly
  /// after manual step() loops. Const: logically the trackers' observable
  /// counts never change, only their internal lazy representation.
  void sync_stress_accounting() const;

  const sim::Clock& clock() const { return clock_; }
  sim::StatRegistry& stats() { return stats_; }
  const sim::StatRegistry& stats() const { return stats_; }

  /// NBTI duty cycles (percent) of one input port's VC bank.
  std::vector<double> duty_cycles_percent(NodeId node, Dir input_port) const;

  /// Conservation check: all flits accepted by NIs were eventually ejected
  /// or are still somewhere in flight. True when nothing is in flight.
  bool drained() const;

  // --- fast-forward engine (sim::EventHorizon) -------------------------------
  /// Enables event-horizon cycle skipping inside run(). Off by default on a
  /// raw Network (step()-level tests expect literal per-cycle execution);
  /// core::run_experiment turns it on via RunnerOptions::fast_forward.
  void set_fast_forward(bool enabled) { fast_forward_ = enabled; }
  bool fast_forward() const { return fast_forward_; }

  /// O(channels + ports) proof that nothing observable can happen until an
  /// external event: no flit or credit in flight, every NI empty and not
  /// serializing, no fault injector, and every input port parked in its
  /// gating fixed point (all VCs gated under an active gating command, or
  /// all VCs idle-and-unGated under the baseline). Each policy's decide()
  /// is a no-op on such a port (asserted by tests, derived in
  /// ARCHITECTURE.md §9), so repeating step() until the next traffic/sensor
  /// event only spins the clock.
  bool quiescent() const;

  /// Earliest cycle >= now at which anything observable can happen while
  /// the mesh stays quiescent: min over every traffic source's
  /// next_event_cycle() and the controller's (sensor refresh epochs; `now`
  /// under fault injection). May conservatively undershoot — run() then
  /// simply re-checks after stepping there. Non-const: sources pre-roll
  /// their RNG streams to answer.
  sim::Cycle next_event_horizon();

  /// How often run() fast-forwarded and how many cycles it elided
  /// (monotonic over the network's lifetime).
  const sim::SkipStats& skip_stats() const { return skip_stats_; }

  /// Flits currently crossing any flit channel (router-router links plus
  /// NI injection/ejection channels).
  std::size_t flits_in_flight() const;
  /// Flits resident anywhere past injection: in-flight on channels plus
  /// buffered in router input VCs. The invariant checker's census.
  std::size_t flits_resident() const;

 private:
  void gating_stage();
  Channel<GateCommand>& up_down_link_mutable(NodeId router, Dir port);
  /// Last applied gating mode (gating_active) per (router, port, vnet,
  /// dateline class) — written by gating_stage, read by the quiescence
  /// proof to pick which fixed point (all-gated vs all-idle) each port must
  /// satisfy. Single-class topologies collapse the class axis.
  std::size_t gating_record_index(NodeId router, Dir port, int vnet, int cls) const {
    const auto ports = static_cast<std::size_t>(config_.ports_per_router());
    return ((static_cast<std::size_t>(router) * ports + static_cast<std::size_t>(port)) *
                static_cast<std::size_t>(config_.num_vnets) +
            static_cast<std::size_t>(vnet)) *
               static_cast<std::size_t>(config_.vc_classes()) +
           static_cast<std::size_t>(cls);
  }

  NocConfig config_;
  sim::Clock clock_;
  sim::StatRegistry stats_;

  std::unique_ptr<Topology> topo_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
  std::vector<std::unique_ptr<Channel<Credit>>> credit_channels_;
  /// Up_Down command links, indexed router * ports_per_router + port (null
  /// where the input port does not exist).
  std::vector<std::unique_ptr<Channel<GateCommand>>> up_down_links_;
  std::vector<std::unique_ptr<ITrafficSource>> sources_;

  AlwaysOnController baseline_controller_;
  IGateController* controller_ = nullptr;
  sim::FaultInjector* injector_ = nullptr;

  bool fast_forward_ = false;
  sim::SkipStats skip_stats_;
  std::vector<unsigned char> gating_record_;

  std::uint64_t packet_id_counter_ = 0;
};

}  // namespace nbtinoc::noc
