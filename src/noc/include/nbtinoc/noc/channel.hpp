#pragma once
// Fixed-latency pipelined channel. Models flit links, credit return wires
// and the paper's Up_Down / Down_Up control links: payloads pushed at cycle
// t with delay d become visible exactly at cycle t+d, in push order.

#include <deque>
#include <optional>
#include <utility>

#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::noc {

template <typename T>
class Channel {
 public:
  explicit Channel(sim::Cycle delay = 1) : delay_(delay) {}

  sim::Cycle delay() const { return delay_; }

  void push(T payload, sim::Cycle now) { in_flight_.emplace_back(now + delay_, std::move(payload)); }

  /// Pops the oldest payload whose delivery time has been reached.
  std::optional<T> pop_ready(sim::Cycle now) {
    if (in_flight_.empty() || in_flight_.front().first > now) return std::nullopt;
    T payload = std::move(in_flight_.front().second);
    in_flight_.pop_front();
    return payload;
  }

  /// Peeks without consuming; nullptr when nothing is deliverable.
  const T* peek_ready(sim::Cycle now) const {
    if (in_flight_.empty() || in_flight_.front().first > now) return nullptr;
    return &in_flight_.front().second;
  }

  bool empty() const { return in_flight_.empty(); }
  std::size_t in_flight() const { return in_flight_.size(); }
  void clear() { in_flight_.clear(); }

 private:
  sim::Cycle delay_;
  std::deque<std::pair<sim::Cycle, T>> in_flight_;
};

}  // namespace nbtinoc::noc
