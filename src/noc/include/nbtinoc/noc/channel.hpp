#pragma once
// Fixed-latency pipelined channel. Models flit links, credit return wires
// and the paper's Up_Down / Down_Up control links: payloads pushed at cycle
// t with delay d become visible exactly at cycle t+d, in push order.
//
// A channel may carry an optional *fault hook*, fired once per payload at
// the moment of consumption (pop_ready): the hook may mutate the payload
// in flight (a bit flip on the wire) or veto delivery entirely (a dropped
// command). Hooks are how the fault-injection subsystem corrupts the
// control links; no hook installed (the default) is the zero-overhead
// exact-delivery path. peek_ready never fires the hook — fault decisions
// draw from a deterministic RNG stream and must happen exactly once per
// payload.

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/snapshot.hpp"
#include "nbtinoc/util/ring_queue.hpp"

namespace nbtinoc::noc {

template <typename T>
class Channel {
 public:
  /// Delivery interceptor: may mutate the payload; returns false to drop it.
  using FaultHook = std::function<bool(T& payload, sim::Cycle now)>;
  /// Push observer, fired with the payload's delivery cycle. The active-set
  /// scheduler installs these to wake a channel's receiver exactly when the
  /// payload becomes deliverable; no hook (the default) keeps the stepped
  /// hot path at a single branch.
  using PushHook = std::function<void(sim::Cycle ready_at)>;

  explicit Channel(sim::Cycle delay = 1) : delay_(delay) {}

  sim::Cycle delay() const { return delay_; }

  void push(T payload, sim::Cycle now) {
    const sim::Cycle ready_at = now + delay_;
    in_flight_.emplace_back(ready_at, std::move(payload));
    if (on_push_) on_push_(ready_at);
  }

  /// Pops the oldest payload whose delivery time has been reached. With a
  /// fault hook installed, dropped payloads are consumed silently and the
  /// next deliverable one is returned instead.
  std::optional<T> pop_ready(sim::Cycle now) {
    while (!in_flight_.empty() && in_flight_.front().first <= now) {
      T payload = std::move(in_flight_.front().second);
      in_flight_.pop_front();
      if (fault_ && !fault_(payload, now)) {
        ++dropped_;
        continue;
      }
      return payload;
    }
    return std::nullopt;
  }

  /// Pooled slots currently reserved (high-water mark of in_flight()).
  std::size_t slot_capacity() const { return in_flight_.capacity(); }

  /// Peeks without consuming; nullptr when nothing is deliverable. Never
  /// fires the fault hook (see file comment).
  const T* peek_ready(sim::Cycle now) const {
    if (in_flight_.empty() || in_flight_.front().first > now) return nullptr;
    return &in_flight_.front().second;
  }

  bool empty() const { return in_flight_.empty(); }
  std::size_t in_flight() const { return in_flight_.size(); }
  void clear() { in_flight_.clear(); }

  /// Removes every in-flight payload matching `pred`, preserving the order
  /// of the survivors; returns how many were removed. The structural-fault
  /// drain uses this to purge a doomed packet's flits wherever they sit.
  template <typename Pred>
  std::size_t remove_if(Pred&& pred) {
    const std::size_t n = in_flight_.size();
    std::size_t removed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      auto item = in_flight_.take_front();
      if (pred(item.second))
        ++removed;
      else
        in_flight_.push_back(std::move(item));
    }
    return removed;
  }

  /// Visits every in-flight payload (delivery cycle, payload) in queue
  /// order — the invariant checker's window into link occupancy.
  template <typename Fn>
  void for_each_in_flight(Fn&& fn) const {
    for (std::size_t i = 0; i < in_flight_.size(); ++i) {
      const auto& [at, payload] = in_flight_[i];
      fn(payload, at);
    }
  }

  // --- checkpoint/restore ----------------------------------------------------
  /// Serializes the in-flight queue (delivery cycles + payloads, via the
  /// caller's payload codec) and the dropped counter. `load` rebuilds the
  /// queue directly, so it must run before any push hooks are installed
  /// (scheduler-mode entry re-installs them and re-discovers the payloads).
  template <typename SavePayload>
  void save(sim::SnapshotWriter& w, SavePayload&& save_payload) const {
    w.u64(in_flight_.size());
    for (std::size_t i = 0; i < in_flight_.size(); ++i) {
      const auto& [at, payload] = in_flight_[i];
      w.u64(static_cast<std::uint64_t>(at));
      save_payload(w, payload);
    }
    w.u64(dropped_);
  }
  template <typename LoadPayload>
  void load(sim::SnapshotReader& r, LoadPayload&& load_payload) {
    in_flight_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto at = static_cast<sim::Cycle>(r.u64());
      in_flight_.emplace_back(at, load_payload(r));
    }
    dropped_ = r.u64();
  }

  /// Installs (or, with an empty function, removes) the delivery fault
  /// hook. The hook owns no payloads; it only inspects/mutates/vetoes.
  void set_fault_hook(FaultHook hook) { fault_ = std::move(hook); }
  bool has_fault_hook() const { return static_cast<bool>(fault_); }
  /// Installs (or removes, with an empty function) the push observer.
  void set_push_hook(PushHook hook) { on_push_ = std::move(hook); }
  bool has_push_hook() const { return static_cast<bool>(on_push_); }
  /// Payloads consumed by the hook so far.
  std::uint64_t dropped() const { return dropped_; }

 private:
  sim::Cycle delay_;
  // Pooled ring: steady-state push/pop never touch the allocator (see
  // util::RingQueue); capacity tracks the link's occupancy high-water mark.
  util::RingQueue<std::pair<sim::Cycle, T>> in_flight_;
  FaultHook fault_;
  PushHook on_push_;
  std::uint64_t dropped_ = 0;
};

}  // namespace nbtinoc::noc
