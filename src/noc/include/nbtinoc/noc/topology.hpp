#pragma once
// Pluggable topology layer: node/port enumeration, neighbor maps, and the
// precomputed route table the routers' RC stage reads.
//
// Two id spaces. *Terminals* are the width x height tile grid — the space
// traffic sources, destination patterns, and Flit::src/dst live in, on every
// topology. *Routers* are the switch fabric; equal to terminals except on
// the concentrated mesh, where `concentration` adjacent tiles of a row
// share one router and reach it through per-tile local ports
// (Dir::Local, Local+1, ...).
//
// The route table is a flat routers x terminals array of RouteEntry, built
// once at construction: the hot path (Router::accept_arrivals) replaces the
// old per-flit route_compute() arithmetic with one indexed load. Each entry
// carries the output port at this router *and* the dateline VC class the
// packet must be allocated at the downstream input — the torus/ring
// deadlock-avoidance scheme:
//
//   Each dimension has its own dateline, and a VC's class refers to the
//   dimension of the link it terminates (Dally-Seitz): a packet is class 0
//   while its remaining path in *that* dimension still crosses the wrap
//   link, class 1 once it no longer does (heading East: class 0 iff
//   x > dst.x), and always class 1 once that dimension is done — a turning
//   packet never occupies a class-0 VC of the dimension it just finished.
//   Within a dimension, class-1 chains never use the wrap link and are
//   ordered by coordinate, class-0 chains cross into class 1 at the wrap,
//   and dimension turns only go one way (X to Y under XY routing). The
//   channel-dependency graph is therefore acyclic — proven structurally by
//   TopologyTest.ChannelDependencyGraphIsAcyclic.
//
// Each vnet's VC subrange is split into per-class halves
// (NocConfig::class_first_vc/class_num_vcs); with one class (mesh, cmesh)
// the "split" spans the whole vnet and every code path reduces to the
// pre-topology behavior bit for bit.

#include <memory>
#include <string>
#include <vector>

#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/types.hpp"

namespace nbtinoc::noc {

/// One route-table cell: output port at this router for a destination
/// terminal, plus the dateline class for the VC the packet will occupy at
/// the *downstream* input of that port (0 when the port is local — the
/// ejection path has no downstream VC).
struct RouteEntry {
  std::int16_t port = 0;      ///< Dir, as int (may be a local port >= kFirstLocalPort)
  std::int16_t vc_class = 0;  ///< dateline class at the downstream input
  /// Sentinel port for "no surviving path" (dead destination or
  /// disconnected fabric). Healthy tables never contain it.
  static constexpr std::int16_t kNoPort = -1;
  bool reachable() const { return port >= 0; }
  Dir dir() const { return static_cast<Dir>(port); }
};

class DegradedRouting;

class Topology {
 public:
  /// Builds the topology (and its route table) for a validated config.
  static std::unique_ptr<Topology> create(const NocConfig& config);

  virtual ~Topology();  // out of line: DegradedRouting is incomplete here
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  TopologyKind kind() const { return config_.topology; }
  std::string name() const { return to_string(config_.topology); }
  const NocConfig& config() const { return config_; }

  int num_routers() const { return num_routers_; }
  int num_terminals() const { return num_terminals_; }
  int ports_per_router() const { return ports_per_router_; }
  int concentration() const { return concentration_; }
  /// Dateline VC classes per vnet (1 = no restriction, the mesh case).
  int num_vc_classes() const { return config_.vc_classes(); }

  // --- terminal <-> router mapping ------------------------------------------
  NodeId router_of(NodeId terminal) const {
    return router_of_terminal_[static_cast<std::size_t>(terminal)];
  }
  int local_slot_of(NodeId terminal) const {
    return local_slot_of_terminal_[static_cast<std::size_t>(terminal)];
  }
  Dir local_port_of(NodeId terminal) const { return local_port(local_slot_of(terminal)); }
  NodeId terminal_of(NodeId router, int slot) const {
    return terminal_of_slot_[static_cast<std::size_t>(router * concentration_ + slot)];
  }

  // --- neighbor map ----------------------------------------------------------
  /// Adjacent router out of cardinal port `d`, or kInvalidNode where the
  /// port is unwired (mesh edges, the ring's N/S ports, local ports).
  NodeId neighbor(NodeId router, Dir d) const {
    return is_local(d) ? kInvalidNode
                       : neighbors_[static_cast<std::size_t>(router * 4 + static_cast<int>(d))];
  }

  // --- route table (the RC hot path) ----------------------------------------
  /// Output port + downstream VC class at `router` for a packet headed to
  /// terminal `dst`. One flat-array load; allocation- and branch-free.
  RouteEntry route(NodeId router, NodeId dst_terminal) const {
    return route_table_[static_cast<std::size_t>(router) *
                            static_cast<std::size_t>(num_terminals_) +
                        static_cast<std::size_t>(dst_terminal)];
  }

  /// Dateline class for the VC a packet from terminal `src` to terminal
  /// `dst` occupies at its injection router's local input (the NI-side VA
  /// restriction). Always 0 on single-class topologies.
  int inject_class(NodeId src_terminal, NodeId dst_terminal) const {
    return inject_class_[static_cast<std::size_t>(router_of(src_terminal)) *
                             static_cast<std::size_t>(num_terminals_) +
                         static_cast<std::size_t>(dst_terminal)];
  }

  // --- structural degradation (see noc/fault_routing.hpp) --------------------
  /// True once any kill_link/kill_router has landed: the route tables were
  /// regenerated with up*/down* routing over the survivor graph and entries
  /// may be unreachable.
  bool degraded() const { return degraded_; }
  bool router_alive(NodeId r) const {
    return router_dead_.empty() || router_dead_[static_cast<std::size_t>(r)] == 0;
  }
  bool terminal_alive(NodeId t) const { return router_alive(router_of(t)); }
  /// neighbor(), but kInvalidNode when the link or either endpoint is dead.
  NodeId alive_neighbor(NodeId router, Dir d) const {
    const NodeId v = neighbor(router, d);
    if (v == kInvalidNode || !degraded_) return v;
    if (link_dead_[static_cast<std::size_t>(router * 4 + static_cast<int>(d))] != 0) {
      return kInvalidNode;
    }
    return router_alive(router) && router_alive(v) ? v : kInvalidNode;
  }
  bool link_alive(NodeId router, Dir d) const { return alive_neighbor(router, d) != kInvalidNode; }

  /// Permanently kills the bidirectional link out of `router` via `d` (the
  /// reverse direction dies with it) and regenerates the route tables.
  /// Returns false (and changes nothing) when the link is unwired or its
  /// traffic was already dead.
  bool kill_link(NodeId router, Dir d);
  /// Permanently kills a router — all its links plus its local terminals —
  /// and regenerates. Returns false when already dead.
  bool kill_router(NodeId router);

  /// True while every alive router remains in one connected component.
  bool fabric_connected() const;
  /// The up*/down* state backing the regenerated tables; null until the
  /// first kill.
  const DegradedRouting* degraded_routing() const { return degraded_routing_.get(); }

  /// Minimal router-to-router hop count between two terminals' routers
  /// (0 when they share a router). The route-table walk bound.
  virtual int hop_distance(NodeId src_terminal, NodeId dst_terminal) const = 0;

  /// Die position of a router, normalized to [0,1] per axis — the process-
  /// variation gradient coordinates (matches the mesh's x/(width-1) on
  /// non-concentrated topologies).
  virtual double norm_x(NodeId router) const = 0;
  virtual double norm_y(NodeId router) const = 0;

 protected:
  explicit Topology(const NocConfig& config);

  /// Concrete topologies answer the three geometry questions; the base
  /// class turns them into the flat neighbor / route / class tables.
  virtual NodeId compute_neighbor(NodeId router, Dir d) const = 0;
  /// Output port at `router` toward terminal `dst` (a local port when the
  /// destination terminal hangs off this router).
  virtual Dir compute_port(NodeId router, NodeId dst_terminal) const = 0;
  /// Dateline class of a VC *at* `router` holding a packet to `dst` that
  /// travels over a link in `link_dir`'s dimension — the incoming link for
  /// route-table entries, the first outgoing link for injection classes.
  /// Single-class topologies return 0.
  virtual int compute_vc_class(NodeId router, NodeId dst_terminal, Dir link_dir) const {
    (void)router;
    (void)dst_terminal;
    (void)link_dir;
    return 0;
  }

  /// Fills every table from the compute_* answers. Called once by each
  /// concrete constructor (the virtuals are unusable during base
  /// construction).
  void build_tables();

  NocConfig config_;
  int num_routers_ = 0;
  int num_terminals_ = 0;
  int ports_per_router_ = 0;
  int concentration_ = 1;

 private:
  /// Rebuilds route_table_/inject_class_ with up*/down* routing over the
  /// survivor graph after a kill (phase classes on 2-class configs:
  /// up-phase moves class 0, down-phase moves class 1).
  void regenerate_routes();

  std::vector<NodeId> neighbors_;             ///< routers x 4
  std::vector<RouteEntry> route_table_;       ///< routers x terminals
  std::vector<std::int8_t> inject_class_;     ///< routers x terminals
  std::vector<std::uint8_t> link_dead_;       ///< routers x 4 (directed; killed in pairs)
  std::vector<std::uint8_t> router_dead_;     ///< routers
  bool degraded_ = false;
  std::unique_ptr<DegradedRouting> degraded_routing_;
  std::vector<NodeId> router_of_terminal_;    ///< terminals
  std::vector<int> local_slot_of_terminal_;   ///< terminals
  std::vector<NodeId> terminal_of_slot_;      ///< routers x concentration
};

/// The paper's width x height grid; XY/YX dimension-order routing. The
/// route table reproduces routing.hpp's route_compute() arithmetic exactly
/// (asserted by TopologyTest.MeshTableMatchesArithmetic).
class Mesh2D final : public Topology {
 public:
  explicit Mesh2D(const NocConfig& config);
  int hop_distance(NodeId src_terminal, NodeId dst_terminal) const override;
  double norm_x(NodeId router) const override;
  double norm_y(NodeId router) const override;

 protected:
  NodeId compute_neighbor(NodeId router, Dir d) const override;
  Dir compute_port(NodeId router, NodeId dst_terminal) const override;
  /// Escape/adaptive split under the turn-model modes: packets whose source
  /// and destination share a row or column ride the escape class (their XY
  /// path is a straight line, so the alignment predicate is invariant along
  /// it); everyone else gets the adaptive class. 0 under plain DOR.
  int compute_vc_class(NodeId router, NodeId dst_terminal, Dir link_dir) const override;
};

/// Mesh plus wrap links in both dimensions; DOR takes the shorter way
/// around each dimension (ties go East/South) with dateline classes.
class Torus2D final : public Topology {
 public:
  explicit Torus2D(const NocConfig& config);
  int hop_distance(NodeId src_terminal, NodeId dst_terminal) const override;
  double norm_x(NodeId router) const override;
  double norm_y(NodeId router) const override;

 protected:
  NodeId compute_neighbor(NodeId router, Dir d) const override;
  Dir compute_port(NodeId router, NodeId dst_terminal) const override;
  int compute_vc_class(NodeId router, NodeId dst_terminal, Dir link_dir) const override;
};

/// All width*height tiles on one bidirectional ring in row-major order,
/// using only the East/West ports (N/S stay unwired, like mesh edges).
/// Shortest-way routing with the torus's dateline scheme in one dimension.
class Ring final : public Topology {
 public:
  explicit Ring(const NocConfig& config);
  int hop_distance(NodeId src_terminal, NodeId dst_terminal) const override;
  double norm_x(NodeId router) const override;
  double norm_y(NodeId router) const override;

 protected:
  NodeId compute_neighbor(NodeId router, Dir d) const override;
  Dir compute_port(NodeId router, NodeId dst_terminal) const override;
  int compute_vc_class(NodeId router, NodeId dst_terminal, Dir link_dir) const override;
};

/// `concentration` tiles of each row share a router: routers form a
/// (width/concentration) x height mesh and carry one local port per tile.
/// Terminal (tx, ty) hangs off router (tx / c, ty) at slot tx % c.
class ConcentratedMesh final : public Topology {
 public:
  explicit ConcentratedMesh(const NocConfig& config);
  int hop_distance(NodeId src_terminal, NodeId dst_terminal) const override;
  double norm_x(NodeId router) const override;
  double norm_y(NodeId router) const override;

 protected:
  NodeId compute_neighbor(NodeId router, Dir d) const override;
  Dir compute_port(NodeId router, NodeId dst_terminal) const override;

 private:
  int router_width_ = 1;  ///< width / concentration
};

}  // namespace nbtinoc::noc
