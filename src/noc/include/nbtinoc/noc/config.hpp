#pragma once
// Static configuration of the simulated on-chip network (Table I).

#include <string>

#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::noc {

/// Routing modes:
///  - kXY / kYX:      deterministic dimension-order routing (DOR), the
///                    paper's baseline; table-driven, single VC class on
///                    meshes.
///  - kWestFirst:     turn-model adaptive routing (mesh only). Packets whose
///                    source and destination share a row or column travel in
///                    the escape class (class 0, pure DOR); all others use
///                    the adaptive class (class 1), where RC picks the
///                    least-stressed admissible output among the turn
///                    model's minimal productive directions — west-first:
///                    a packet with its destination to the west goes West
///                    immediately and exclusively; otherwise East/North/South
///                    are all admissible.
///  - kOddEven:       same scheme with Chiu's odd-even turn rules: EN/ES
///                    turns are prohibited in even columns, NW/SW turns in
///                    odd columns.
/// Both adaptive classes are deadlock-free turn models on their own; keeping
/// escape traffic in a disjoint VC class (no mid-route class switch) makes
/// the union channel-dependency graph two disjoint acyclic graphs.
enum class RoutingAlgo { kXY, kYX, kWestFirst, kOddEven };

/// Parses "dor"/"xy", "yx", "west-first", "odd-even" (case-sensitive);
/// throws std::invalid_argument listing the valid spellings otherwise.
RoutingAlgo parse_routing_algo(const std::string& name);
std::string to_string(RoutingAlgo algo);

/// Network shape (see noc/topology.hpp for the concrete classes):
///  - kMesh2D:           width x height grid, the paper's baseline.
///  - kTorus2D:          mesh plus X/Y wrap links; DOR picks the shorter
///                       way around and a dateline VC-class split keeps the
///                       wrap cycles deadlock-free (needs >= 2 VCs/vnet).
///  - kRing:             all width*height tiles on one bidirectional ring
///                       (row-major order), same dateline scheme.
///  - kConcentratedMesh: `concentration` NIs share one router; routers form
///                       a (width/concentration) x height mesh and carry
///                       one local port per attached tile.
enum class TopologyKind { kMesh2D, kTorus2D, kRing, kConcentratedMesh };

/// Parses "mesh" / "torus" / "ring" / "cmesh" (case-sensitive); throws
/// std::invalid_argument listing the valid spellings otherwise.
TopologyKind parse_topology_kind(const std::string& name);
std::string to_string(TopologyKind kind);

/// Per-port buffer organization:
///  - kPartitioned: one statically sized VcBuffer per VC (the paper's
///                  baseline) — gating and stress tracking per VC buffer.
///  - kShared:      one DAMQ-style slot pool per port; VCs are linked-list
///                  descriptors drawing from the pool with a per-VC reserved
///                  minimum (`shared_reserve`, deadlock safety) and a
///                  dynamically shared remainder. Gating and stress tracking
///                  move to physical-slot granularity.
enum class BufferOrg { kPartitioned, kShared };

/// Parses "partitioned" / "shared" (case-sensitive); throws
/// std::invalid_argument listing the valid spellings otherwise.
BufferOrg parse_buffer_org(const std::string& name);
std::string to_string(BufferOrg org);

struct NocConfig {
  int width = 2;          ///< mesh columns
  int height = 2;         ///< mesh rows
  int num_vcs = 4;        ///< VCs per input port *per virtual network*
  int num_vnets = 1;      ///< virtual networks (Table I: 2/6; protocol classes)
  int buffer_depth = 4;   ///< flits per VC buffer
  int packet_length = 4;  ///< flits per packet (head .. tail)
  RoutingAlgo routing = RoutingAlgo::kXY;
  TopologyKind topology = TopologyKind::kMesh2D;
  /// NIs per router; meaningful only for kConcentratedMesh (must then
  /// divide width — tiles concentrate along x), 1 otherwise.
  int concentration = 1;

  /// Buffer organization per input port (see BufferOrg). kShared keeps the
  /// same total buffer area — total_vcs() * buffer_depth slots — but pools
  /// it behind lightweight VC descriptors.
  BufferOrg buffer_org = BufferOrg::kPartitioned;
  /// kShared only: flit slots reserved per VC (>= 1 for deadlock safety;
  /// the escape-VC argument needs every VC to always be able to accept at
  /// least one flit). The remaining pool_slots() - total_vcs()*shared_reserve
  /// slots form the dynamically shared region.
  int shared_reserve = 1;

  /// Physical VC buffers per input port. VC buffer i belongs to virtual
  /// network i / num_vcs; a packet of vnet k may only be allocated VCs in
  /// [k*num_vcs, (k+1)*num_vcs) — the protocol-deadlock isolation vnets
  /// exist for.
  int total_vcs() const { return num_vcs * num_vnets; }
  int vnet_of_vc(int vc) const { return vc / num_vcs; }
  int first_vc_of_vnet(int vnet) const { return vnet * num_vcs; }

  /// Cycles a gated (Recovery) buffer needs after a wake command before it
  /// can accept flits. 0 matches the paper (instant `set_idle`).
  sim::Cycle wakeup_latency = 0;

  /// Extra pipeline stages beyond the paper's 3-stage router (BW/RC | VA+SA
  /// | ST/LT): each extra stage delays a buffered flit's VA/SA eligibility
  /// by one cycle, reproducing deeper (Garnet-classic 4/5-stage) routers.
  /// Buffer residency — and with it the NBTI duty cycle — grows accordingly.
  int extra_pipeline_stages = 0;

  /// Per-hop flit pipeline latency in cycles: BW/RC + VA/SA + ST/LT.
  /// Fixed by the 3-stage router model.
  static constexpr sim::Cycle kHopLatency = 3;

  /// Link/credit in-flight delay in cycles (part of kHopLatency).
  static constexpr sim::Cycle kLinkDelay = 2;
  static constexpr sim::Cycle kCreditDelay = 1;

  /// Terminals (tiles / NIs): always the full width x height grid, on every
  /// topology. Traffic sources and destination patterns live in this space.
  int nodes() const { return width * height; }

  /// Routers: equals nodes() except on the concentrated mesh, where
  /// `concentration` tiles share one router.
  int routers() const {
    return topology == TopologyKind::kConcentratedMesh && concentration > 0
               ? (width / concentration) * height
               : width * height;
  }

  /// Input/output ports per router: 4 cardinal + one local port per
  /// attached NI.
  int ports_per_router() const {
    return kFirstLocalPort +
           (topology == TopologyKind::kConcentratedMesh ? concentration : 1);
  }

  /// True for the turn-model adaptive routing modes (escape + adaptive
  /// VC classes, dynamic RC in the adaptive class).
  bool adaptive_routing() const {
    return routing == RoutingAlgo::kWestFirst || routing == RoutingAlgo::kOddEven;
  }

  /// VC classes per vnet: 2 on wrap-link topologies (torus, ring — the
  /// dateline split) and under adaptive routing (the escape/adaptive
  /// split), 1 otherwise. Class c of vnet k spans the VCs
  /// [first_vc_of_vnet(k) + class_first_vc(c), ... + class_num_vcs(c)).
  int vc_classes() const {
    return topology == TopologyKind::kTorus2D || topology == TopologyKind::kRing ||
                   adaptive_routing()
               ? 2
               : 1;
  }
  /// First VC (local to the vnet's subrange) of dateline class `c`.
  int class_first_vc(int c) const { return c == 0 ? 0 : (num_vcs + 1) / 2; }
  /// VCs of dateline class `c` (class 0 gets the larger half on odd splits;
  /// with a single class it spans the whole vnet).
  int class_num_vcs(int c) const {
    if (vc_classes() == 1) return num_vcs;
    return c == 0 ? (num_vcs + 1) / 2 : num_vcs / 2;
  }

  /// True when the shared (DAMQ) per-port slot pool is selected.
  bool shared_buffers() const { return buffer_org == BufferOrg::kShared; }
  /// Physical flit slots per input port under kShared: same area as the
  /// partitioned bank.
  int pool_slots() const { return total_vcs() * buffer_depth; }
  /// Slots of the pool beyond the per-VC reservations — the dynamically
  /// shared region (and the ceiling on simultaneously gated + waking slots).
  int shared_capacity() const { return pool_slots() - total_vcs() * shared_reserve; }
  /// Gateable/stress-tracked units per input port: physical slots under
  /// kShared, VC buffers under kPartitioned. Sizes tracker banks, sensor
  /// banks and PV sampling.
  int buffers_per_port() const { return shared_buffers() ? pool_slots() : total_vcs(); }

  /// Throws std::invalid_argument if any field is out of range.
  void validate() const;

  std::string describe() const;
};

}  // namespace nbtinoc::noc
