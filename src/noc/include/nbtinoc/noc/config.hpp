#pragma once
// Static configuration of the simulated on-chip network (Table I).

#include <string>

#include "nbtinoc/sim/clock.hpp"

namespace nbtinoc::noc {

enum class RoutingAlgo { kXY, kYX };

struct NocConfig {
  int width = 2;          ///< mesh columns
  int height = 2;         ///< mesh rows
  int num_vcs = 4;        ///< VCs per input port *per virtual network*
  int num_vnets = 1;      ///< virtual networks (Table I: 2/6; protocol classes)
  int buffer_depth = 4;   ///< flits per VC buffer
  int packet_length = 4;  ///< flits per packet (head .. tail)
  RoutingAlgo routing = RoutingAlgo::kXY;

  /// Physical VC buffers per input port. VC buffer i belongs to virtual
  /// network i / num_vcs; a packet of vnet k may only be allocated VCs in
  /// [k*num_vcs, (k+1)*num_vcs) — the protocol-deadlock isolation vnets
  /// exist for.
  int total_vcs() const { return num_vcs * num_vnets; }
  int vnet_of_vc(int vc) const { return vc / num_vcs; }
  int first_vc_of_vnet(int vnet) const { return vnet * num_vcs; }

  /// Cycles a gated (Recovery) buffer needs after a wake command before it
  /// can accept flits. 0 matches the paper (instant `set_idle`).
  sim::Cycle wakeup_latency = 0;

  /// Extra pipeline stages beyond the paper's 3-stage router (BW/RC | VA+SA
  /// | ST/LT): each extra stage delays a buffered flit's VA/SA eligibility
  /// by one cycle, reproducing deeper (Garnet-classic 4/5-stage) routers.
  /// Buffer residency — and with it the NBTI duty cycle — grows accordingly.
  int extra_pipeline_stages = 0;

  /// Per-hop flit pipeline latency in cycles: BW/RC + VA/SA + ST/LT.
  /// Fixed by the 3-stage router model.
  static constexpr sim::Cycle kHopLatency = 3;

  /// Link/credit in-flight delay in cycles (part of kHopLatency).
  static constexpr sim::Cycle kLinkDelay = 2;
  static constexpr sim::Cycle kCreditDelay = 1;

  int nodes() const { return width * height; }

  /// Throws std::invalid_argument if any field is out of range.
  void validate() const;

  std::string describe() const;
};

}  // namespace nbtinoc::noc
