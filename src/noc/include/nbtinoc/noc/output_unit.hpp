#pragma once
// Output unit: the upstream-side bookkeeping for one router output port —
// credit counters for the downstream VC buffers plus the VA/SA arbitration
// state. The VC *states* themselves are read through OutVcStateView over the
// downstream input unit (the out-VC-state table of paper Fig. 1).

#include <vector>

#include "nbtinoc/noc/arbiter.hpp"
#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/shared_pool.hpp"
#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/snapshot.hpp"

namespace nbtinoc::noc {

class OutputUnit {
 public:
  /// `ejection` ports (Local) sink into the NI: no VCs, no credits.
  OutputUnit(Dir dir, const NocConfig& config, bool ejection);

  Dir dir() const { return dir_; }
  bool is_ejection() const { return ejection_; }

  /// Shared organization: credit state is the downstream pool's per-VC
  /// charge (zero-skew, like the out-VC-state view) instead of the local
  /// per-VC counters; has_credit/consume_credit/add_credit delegate. The
  /// pool must outlive this unit.
  void set_shared_pool(SharedBufferPool* pool) { pool_ = pool; }

  /// May SA forward a flit on downstream VC `vc` this cycle? Partitioned:
  /// a per-VC credit remains. Shared: the pool's reservation check.
  bool has_credit(int vc) const {
    return pool_ != nullptr ? pool_->can_send(vc)
                            : credits_.at(static_cast<std::size_t>(vc)) > 0;
  }

  int credits(int vc) const { return credits_.at(static_cast<std::size_t>(vc)); }
  void add_credit(int vc);
  void consume_credit(int vc);
  /// Structural-fault drain support: rewrites one VC's credit count to the
  /// exact survivor-side value (buffer depth minus surviving occupancy and
  /// in-flight payloads). Never used on the healthy path.
  void set_credits(int vc, int credits) { credits_.at(static_cast<std::size_t>(vc)) = credits; }

  /// VA arbitration over flattened (input port, VC) requesters.
  RoundRobinArbiter& va_arbiter() { return va_arbiter_; }
  /// Downstream-VC selection pointer (fair choice when several are awake,
  /// i.e. under the non-gating baseline).
  RoundRobinArbiter& vc_select() { return vc_select_; }
  /// SA arbitration over input ports.
  RoundRobinArbiter& sa_arbiter() { return sa_arbiter_; }

  // --- checkpoint/restore ----------------------------------------------------
  void save(sim::SnapshotWriter& w) const {
    for (int c : credits_) w.i64(c);
    w.u64(va_arbiter_.pointer());
    w.u64(vc_select_.pointer());
    w.u64(sa_arbiter_.pointer());
  }
  void load(sim::SnapshotReader& r) {
    for (int& c : credits_) c = static_cast<int>(r.i64());
    va_arbiter_.set_pointer(static_cast<std::size_t>(r.u64()));
    vc_select_.set_pointer(static_cast<std::size_t>(r.u64()));
    sa_arbiter_.set_pointer(static_cast<std::size_t>(r.u64()));
  }

 private:
  Dir dir_;
  bool ejection_;
  std::vector<int> credits_;  ///< untouched (all at depth) under a shared pool
  SharedBufferPool* pool_ = nullptr;
  int buffer_depth_;
  RoundRobinArbiter va_arbiter_;
  RoundRobinArbiter vc_select_;
  RoundRobinArbiter sa_arbiter_;
};

}  // namespace nbtinoc::noc
