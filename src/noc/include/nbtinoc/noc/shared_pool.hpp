#pragma once
// DAMQ-style shared buffer pool: one physical slot array per input port,
// drawn on by every VC of the port (Onsori & Safaei dynamic VC allocation).
// VCs stay lightweight descriptors (VcBuffer in descriptor mode) holding the
// allocation state machine; the flits themselves live in pool slots chained
// into per-VC linked-list FIFOs — the classic Tamir & Frazier DAMQ layout.
//
// Slot lifecycle:
//
//            push()                    pop()
//    Free ----------> Occupied ----------------> Free
//     |                                           ^
//     | gate_slot()          promote_woken()      |
//     v                  [after wakeup_latency]   |
//    Gated -----------> Waking -------------------+
//            wake_slot()
//
// Free/Occupied/Waking slots are powered (NBTI stress); Gated slots recover.
// Each slot carries its own StressTracker hook and gate-transition counter,
// which is what lets the sensor-wise policy act at *slot* granularity.
//
// Credit/reservation invariant (deadlock safety). Let R = reserve() and
// charged_v = flits the upstream has committed toward VC v (occupancy plus
// in-flight flits plus in-flight credits, at upstream-event times). The pool
// maintains
//
//     S  :=  sum_v max(charged_v, R)  <=  num_slots - gated - waking     (M*)
//
// by gatekeeping the only events that grow the left side (a shared-region
// send: can_send) or shrink the right side (a gate: can_gate) with the same
// expression `overcommit < shared_limit()`. M* implies every in-flight flit
// finds a Free slot on arrival, and a VC with charged_v < R may *always*
// send — the reserved path that keeps escape VCs live under any gating.
//
// All list structure uses index arrays (no heap traffic on the datapath):
// Free slots form a LIFO free list (doubly linked for O(1) removal when a
// policy gates an arbitrary slot), Occupied slots sit on their VC's FIFO
// chain, Waking slots queue FIFO by wake deadline. A slot is on exactly one
// list (Gated slots on none), so one next_ array serves all three.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "nbtinoc/nbti/duty_cycle.hpp"
#include "nbtinoc/noc/flit.hpp"
#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/sim/clock.hpp"
#include "nbtinoc/sim/snapshot.hpp"

namespace nbtinoc::noc {

class SharedBufferPool {
 public:
  enum class SlotState : std::uint8_t { kFree = 0, kOccupied = 1, kGated = 2, kWaking = 3 };

  /// num_slots = num_vcs * buffer_depth (same area as the partitioned bank);
  /// `reserve` flit slots per VC are never gated away (>= 1, deadlock
  /// safety), the remaining shared_capacity() slots float.
  SharedBufferPool(int num_vcs, int buffer_depth, int reserve, sim::Cycle wakeup_latency);

  SharedBufferPool(const SharedBufferPool&) = delete;
  SharedBufferPool& operator=(const SharedBufferPool&) = delete;
  SharedBufferPool(SharedBufferPool&&) noexcept = default;
  SharedBufferPool& operator=(SharedBufferPool&&) = delete;

  int num_slots() const { return num_slots_; }
  int num_vcs() const { return num_vcs_; }
  int reserve() const { return reserve_; }
  /// Slots beyond the per-VC reservations: the dynamically shared region,
  /// and the ceiling on simultaneously gated + waking slots.
  int shared_capacity() const { return num_slots_ - num_vcs_ * reserve_; }

  // --- O(1) occupancy counters (quiescence / parking proofs) ----------------
  int free_slots() const { return free_count_; }
  int occupied_slots() const { return occupied_count_; }
  int gated_slots() const { return gated_count_; }
  int waking_slots() const { return waking_count_; }

  SlotState slot_state(int slot) const { return state_.at(static_cast<std::size_t>(slot)); }
  /// Cycle a Waking slot rejoins the free list (meaningless otherwise).
  sim::Cycle slot_wake_ready(int slot) const { return ready_.at(static_cast<std::size_t>(slot)); }
  /// Free->Gated transitions of this slot (header-PMOS switch count).
  std::uint64_t slot_gate_transitions(int slot) const {
    return gate_transitions_.at(static_cast<std::size_t>(slot));
  }
  /// The resident flit of an Occupied slot (InvariantChecker audits).
  const Flit& slot_flit(int slot) const { return flits_.at(static_cast<std::size_t>(slot)); }

  // --- credit / reservation accounting (upstream view) ----------------------
  /// Flits the upstream has committed toward VC v and not yet been credited
  /// back for.
  int charged(int v) const { return charged_.at(static_cast<std::size_t>(v)); }
  /// Slots of the shared region currently spoken for beyond reservations:
  /// sum_v max(charged_v - reserve, 0), maintained incrementally.
  int overcommit() const { return overcommit_; }
  /// Shared-region headroom: shrinks while slots are gated or waking.
  int shared_limit() const { return shared_capacity() - gated_count_ - waking_count_; }
  /// Send headroom the shared region still offers: shared_limit() minus the
  /// outstanding overcommit. Zero (or negative, transiently impossible)
  /// means only the per-VC reserved path is open.
  int credit_headroom() const { return shared_limit() - overcommit_; }
  /// Number of VCs whose charge has consumed the whole reserve — their next
  /// flit needs the shared region, so they stall when credit_headroom()
  /// hits zero.
  int vcs_at_reserve() const { return at_reserve_count_; }
  /// Gating has throttled live traffic down to per-VC stop-and-wait: some
  /// VC exhausted its reserve and the shared region has no headroom left.
  /// This is the slot policies' wake-pressure signal — new_traffic (a head
  /// flit awaiting VA upstream) goes quiet during the trickle, but the
  /// outstanding charges keep advertising the demand.
  bool credit_starved() const { return at_reserve_count_ > 0 && credit_headroom() <= 0; }

  /// May the upstream send a flit on VC v this cycle? Reserved path
  /// (charged_v < reserve) is always open; the shared path needs headroom.
  bool can_send(int v) const {
    return charged_[static_cast<std::size_t>(v)] < reserve_ || overcommit_ < shared_limit();
  }
  /// Upstream sent a flit on v (the consume_credit of the slot-credit
  /// scheme).
  void charge(int v) {
    int& c = charged_[static_cast<std::size_t>(v)];
    if (c >= reserve_) ++overcommit_;
    ++c;
    if (c == reserve_) ++at_reserve_count_;
  }
  /// A credit for v returned upstream (the add_credit counterpart).
  void uncharge(int v) {
    int& c = charged_[static_cast<std::size_t>(v)];
    if (c <= 0)
      throw std::logic_error("SharedBufferPool::uncharge: VC " + std::to_string(v) +
                             " has no outstanding charge");
    --c;
    if (c >= reserve_) --overcommit_;
    if (c == reserve_ - 1) --at_reserve_count_;
  }
  /// Rewrites VC v's charge from the conservation identity (structural-fault
  /// credit restoration); fixes overcommit incrementally.
  void set_charged(int v, int value);

  // --- power gating ----------------------------------------------------------
  /// May any Free slot be gated right now? Same headroom expression as the
  /// shared send path: gating shrinks shared_limit() by one, so requiring
  /// strict inequality keeps invariant M* through the transition.
  bool can_gate() const { return free_count_ > 0 && overcommit_ < shared_limit(); }

  /// Free -> Gated. Caller must have checked slot_state() == kFree and
  /// can_gate(); violations throw (a malformed policy, not a modeled fault).
  void gate_slot(int slot, sim::Cycle now);
  /// Gated -> Waking; rejoins the free list via promote_woken() once
  /// wakeup_latency cycles elapse. No-op on non-Gated slots (a re-issued or
  /// corrupted wake command retries harmlessly).
  void wake_slot(int slot, sim::Cycle now);
  /// Wakes every Gated slot (the gating_active=false edge).
  void wake_all(sim::Cycle now);
  /// Moves every Waking slot whose deadline has passed back onto the free
  /// list. Run at the end of gate-command application so a woken slot is
  /// allocatable the cycle it matures and re-gateable the cycle after —
  /// mirroring VcBuffer's wake_ready / in_wake_window fencing.
  void promote_woken(sim::Cycle now);

  // --- datapath (reached through the VcBuffer descriptors) -------------------
  bool has_free_slot() const { return free_count_ > 0; }
  /// Claims a free slot for VC v's chain tail. Throws when no Free slot
  /// exists — invariant M* makes that unreachable from a conforming
  /// upstream.
  void push(int v, const Flit& flit);
  const Flit& front(int v) const {
    const int slot = vc_head_[static_cast<std::size_t>(v)];
    if (slot == kNone)
      throw std::logic_error("SharedBufferPool::front: VC " + std::to_string(v) + " empty");
    return flits_[static_cast<std::size_t>(slot)];
  }
  /// Dequeues VC v's head flit; the slot returns to the free-list head.
  Flit pop(int v);
  int occupancy(int v) const { return vc_count_[static_cast<std::size_t>(v)]; }
  /// Structural-fault drain of VC v's chain: every slot returns to the free
  /// list; Gated/Waking slots are untouched (they hold no flits). Returns
  /// the flits dropped.
  int purge_vc(int v);

  /// Attaches the per-slot NBTI tracker (notified at gate/wake edges; must
  /// outlive the pool; nullptr detaches).
  void attach_stress_tracker(int slot, nbti::StressTracker* tracker) {
    trackers_.at(static_cast<std::size_t>(slot)) = tracker;
  }

  // --- checkpoint/restore ----------------------------------------------------
  /// Serializes slot states, the exact order of every list (free LIFO, VC
  /// chains, waking queue — order is simulation-visible), per-slot wake
  /// deadlines / transition counts / resident flits, and per-VC charges.
  void save(sim::SnapshotWriter& w) const;
  /// Expects a freshly constructed pool of identical geometry; rebuilds all
  /// link arrays and recomputes counters + overcommit. Trackers are not
  /// touched (their accumulators are serialized by the owning port).
  void load(sim::SnapshotReader& r);

 private:
  static constexpr int kNone = -1;

  int pop_free_slot();
  void push_free_slot(int slot);
  void remove_from_free(int slot);

  int num_vcs_;
  int reserve_;
  int num_slots_;
  sim::Cycle wakeup_latency_;

  std::vector<SlotState> state_;
  std::vector<Flit> flits_;
  std::vector<sim::Cycle> ready_;
  std::vector<std::uint64_t> gate_transitions_;
  std::vector<nbti::StressTracker*> trackers_;

  // One next_ array serves the free list, the VC chains and the waking
  // queue (a slot is on at most one); prev_ is meaningful on the free list
  // only (O(1) removal of an arbitrary gated slot).
  std::vector<int> next_;
  std::vector<int> prev_;
  int free_head_ = kNone;
  std::vector<int> vc_head_;
  std::vector<int> vc_tail_;
  std::vector<int> vc_count_;
  int waking_head_ = kNone;
  int waking_tail_ = kNone;

  int free_count_ = 0;
  int occupied_count_ = 0;
  int gated_count_ = 0;
  int waking_count_ = 0;

  std::vector<int> charged_;
  int overcommit_ = 0;
  int at_reserve_count_ = 0;  ///< VCs with charged >= reserve (see vcs_at_reserve)
};

}  // namespace nbtinoc::noc
