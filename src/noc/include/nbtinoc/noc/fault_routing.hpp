#pragma once
// Routing on degraded fabrics, and the machinery that proves it safe.
//
// When a structural fault kills a link or a whole router (sim::StructuralFault),
// dimension-order routing stops being total: the DOR path between two alive
// terminals may cross the dead resource. The classic repair is up*/down*
// routing (Autonet; Gunlock/Myrinet lineage): pick a root, orient every
// surviving link "up" (toward the root) or "down" (away from it), and
// restrict paths to *up-phase then down-phase* — a packet may take up links
// only while it has never taken a down link. Any cycle in the channel
// dependency graph would need a down->up transition somewhere, so the
// restriction makes the CDG acyclic on ANY connected survivor graph, no
// geometry required. That is what lets one regeneration algorithm serve the
// mesh, torus, ring and concentrated mesh alike.
//
// DegradedRouting holds the orientation. Links are oriented by a BFS order:
// rank every alive router by (BFS depth from the component's lowest-id
// router, router id); the move u->v is *up* iff order(v) < order(u). BFS
// tree edges parent->child are down moves, so the root reaches every router
// pure-down and every router reaches the root pure-up — routing is total on
// each connected component. For destination d, D(d) is d's *down region*:
// routers with a pure-down path to d (the root is always a member). The
// deterministic table route goes pure-down once inside D(d) and otherwise
// climbs up (or steps directly down into D(d)) along a shortest legal path.
//
// Deadlock freedom, independently of VC classes: give the VC at a router's
// input the rank (2, 0) when fed by injection, (1, order(router)) when fed
// by an up link, and (0, -order(router)) when fed by a down link. Every
// legal move strictly decreases this rank lexicographically — up moves
// decrease order, and a packet that has gone down may only continue down —
// so the CDG is acyclic no matter how the regenerated table assigns dateline
// classes. Surviving torus packets keep their pre-fault dateline classes and
// need no re-classification; only *moves* are policed (see the kill-protocol
// legality rules in Network).
//
// The same file hosts the turn-model half of the PR: minimal-adaptive
// candidate sets for west-first and odd-even routing on the healthy mesh
// (NocConfig::RoutingAlgo), the turn-permission predicate the CDG audit
// uses, and the audit/dump helpers (`route_cdg_acyclic`,
// `route_walks_terminate`, `describe_routes`) shared by tests, the
// scenario runner's --dump-routes flag, and the network's post-kill
// self-check.

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/routing.hpp"
#include "nbtinoc/noc/types.hpp"

namespace nbtinoc::noc {

class Topology;

/// Up*/down* orientation and distance tables over the survivor graph.
/// Built from plain adjacency (no Topology dependency) so the topology layer
/// can own one without a header cycle. All tables are computed eagerly at
/// construction; every query is a flat-array load.
class DegradedRouting {
 public:
  /// Distance sentinel for "no legal path" (dead router, other component).
  static constexpr int kUnreachable = std::numeric_limits<std::int32_t>::max() / 4;

  /// `alive_neighbor` is routers x 4 (port-indexed; kInvalidNode where the
  /// link or either endpoint is dead); `alive` flags the surviving routers.
  /// Links must be symmetric: if u lists v, v lists u.
  DegradedRouting(int num_routers, std::vector<NodeId> alive_neighbor,
                  std::vector<std::uint8_t> alive);

  int num_routers() const { return num_routers_; }
  bool alive(NodeId r) const { return alive_[static_cast<std::size_t>(r)] != 0; }
  /// True when every alive router sits in one connected component.
  bool connected() const { return connected_; }

  /// BFS rank of an alive router (component roots rank lowest within their
  /// component); kUnreachable for dead routers.
  int order(NodeId r) const { return order_[static_cast<std::size_t>(r)]; }

  /// Orientation of the *move* u -> v over an alive link.
  bool move_is_up(NodeId u, NodeId v) const { return order(v) < order(u); }
  bool move_is_down(NodeId u, NodeId v) const { return order(v) > order(u); }

  /// Pure-down distance from r to destination router d; kUnreachable when r
  /// is outside D(d) (no pure-down path).
  int down_dist(NodeId r, NodeId d) const {
    return down_dist_[static_cast<std::size_t>(d) * static_cast<std::size_t>(num_routers_) +
                      static_cast<std::size_t>(r)];
  }
  bool in_down_region(NodeId r, NodeId d) const { return down_dist(r, d) < kUnreachable; }

  /// Length of the shortest legal (up-phase then down-phase) path r -> d;
  /// equals down_dist inside D(d). kUnreachable across components.
  int dist(NodeId r, NodeId d) const {
    return dist_[static_cast<std::size_t>(d) * static_cast<std::size_t>(num_routers_) +
                 static_cast<std::size_t>(r)];
  }

 private:
  int num_routers_ = 0;
  bool connected_ = true;
  std::vector<NodeId> nbr_;           ///< routers x 4, alive links only
  std::vector<std::uint8_t> alive_;   ///< routers
  std::vector<int> order_;            ///< routers
  std::vector<int> down_dist_;        ///< destinations x routers
  std::vector<int> dist_;             ///< destinations x routers
};

/// Admissible output directions for one RC decision, in Dir index order
/// (North, South, East, West) — the deterministic tie-break order of the
/// least-stressed selection.
struct AdaptiveCandidates {
  std::array<Dir, 4> dir{};
  int count = 0;
  void add(Dir d) { dir[static_cast<std::size_t>(count++)] = d; }
};

/// Minimal-adaptive candidate set of the turn model at `cur` for a packet
/// src -> dst on a healthy mesh (coordinates, not ids — callers hold the
/// width). Never empty for cur != dst:
///  - west-first: all west hops come first (dst to the west => {West}),
///    after which East and the productive vertical are both admissible;
///  - odd-even (Chiu): EN/ES turns are banned in even columns, NW/SW turns
///    in odd columns, which the minimal rule below encodes exactly.
AdaptiveCandidates turn_model_candidates(RoutingAlgo algo, Coord cur, Coord src, Coord dst);

/// True when the turn from travel direction `from_travel` into
/// `to_travel` is permitted by the turn model in column `x`. 180-degree
/// turns are never permitted; DOR modes permit only straight moves and
/// X-to-Y turns. The CDG audit uses this as a destination-free superset of
/// the moves adaptive RC can take.
bool turn_allowed(RoutingAlgo algo, Dir from_travel, Dir to_travel, int x);

/// Audits the topology's *current* route relation for channel-dependency
/// cycles: exact route-table walk edges for every (router, destination)
/// pair plus, under adaptive routing, the destination-free turn-permission
/// (healthy) or up*/down* orientation (degraded) edges of the adaptive
/// class. Returns false and names a cycle node in *diag when a cycle
/// exists. O(routers x terminals + routers x ports x classes).
bool route_cdg_acyclic(const Topology& topo, std::string* diag = nullptr);

/// Walks the route table from every alive source router to every alive,
/// reachable destination terminal and checks the walk ends at the
/// destination's router within a generous hop bound. Returns false and
/// describes the first stuck pair in *diag.
bool route_walks_terminate(const Topology& topo, std::string* diag = nullptr);

/// Multi-line human-readable dump: per-router route-table rows
/// (dst=port/class), the per-link class usage + up/down orientation, and
/// the audit verdicts. The scenario runner's --dump-routes output.
std::string describe_routes(const Topology& topo);

}  // namespace nbtinoc::noc
