#pragma once
// Round-robin arbitration primitive used by the VA and SA stages.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nbtinoc::noc {

/// Fixed-capacity request bitset: the scratch request vector of one
/// arbitration. Word storage is allocated once at resize() (wiring time);
/// clear()/set()/test() never touch the allocator, which is what keeps the
/// per-cycle VA/SA hot path allocation-free.
class RequestSet {
 public:
  RequestSet() = default;
  explicit RequestSet(std::size_t size) { resize(size); }

  /// Sets the requester count; allocates word storage. Not for per-cycle
  /// use — size once at construction, clear() between arbitrations.
  void resize(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  std::size_t size() const { return size_; }

  void clear() {
    for (auto& w : words_) w = 0;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & std::uint64_t{1};
  }
  bool any() const {
    for (const auto w : words_)
      if (w != 0) return true;
    return false;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Classic rotating-priority arbiter over `size` requesters. The grant
/// pointer advances past the winner so that repeated contention is fair.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(std::size_t size = 0) : size_(size) {}

  void resize(std::size_t size) {
    size_ = size;
    if (pointer_ >= size_) pointer_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t pointer() const { return pointer_; }

  /// Grants the first asserted request at or after the pointer; returns -1
  /// if nothing requests. On a grant, the pointer moves one past the winner.
  int arbitrate(const std::vector<bool>& requests);
  int arbitrate(const RequestSet& requests);

  /// Same, but does not advance the pointer (pure query).
  int peek(const std::vector<bool>& requests) const;
  int peek(const RequestSet& requests) const;

  /// Moves the pointer one past `idx` (used when the winner is decided by a
  /// later arbitration stage, e.g. separable SA).
  void advance_past(std::size_t idx) {
    if (size_ > 0) pointer_ = (idx + 1) % size_;
  }

  /// Restores a checkpointed grant pointer (fairness state).
  void set_pointer(std::size_t pointer) { pointer_ = size_ > 0 ? pointer % size_ : 0; }

 private:
  std::size_t size_ = 0;
  std::size_t pointer_ = 0;
};

}  // namespace nbtinoc::noc
