#pragma once
// Round-robin arbitration primitive used by the VA and SA stages.

#include <cstddef>
#include <vector>

namespace nbtinoc::noc {

/// Classic rotating-priority arbiter over `size` requesters. The grant
/// pointer advances past the winner so that repeated contention is fair.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(std::size_t size = 0) : size_(size) {}

  void resize(std::size_t size) {
    size_ = size;
    if (pointer_ >= size_) pointer_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t pointer() const { return pointer_; }

  /// Grants the first asserted request at or after the pointer; returns -1
  /// if nothing requests. On a grant, the pointer moves one past the winner.
  int arbitrate(const std::vector<bool>& requests);

  /// Same, but does not advance the pointer (pure query).
  int peek(const std::vector<bool>& requests) const;

  /// Moves the pointer one past `idx` (used when the winner is decided by a
  /// later arbitration stage, e.g. separable SA).
  void advance_past(std::size_t idx) {
    if (size_ > 0) pointer_ = (idx + 1) % size_;
  }

 private:
  std::size_t size_ = 0;
  std::size_t pointer_ = 0;
};

}  // namespace nbtinoc::noc
