#pragma once
// Network interface (NI) of one tile.
//
// The NI is the *upstream entity* of its router's Local input port: it
// performs VC allocation for that port, tracks its credits, and — like any
// upstream router — runs the pre-VA gating policy for it. Packets produced
// by the traffic source wait in an unbounded source queue (standard open-
// loop methodology: offered load is never back-pressured into the source).

#include <cstdint>

#include "nbtinoc/noc/channel.hpp"
#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/flit.hpp"
#include "nbtinoc/noc/input_unit.hpp"
#include "nbtinoc/noc/traffic_source.hpp"
#include "nbtinoc/sim/stat_registry.hpp"
#include "nbtinoc/util/ring_queue.hpp"

namespace nbtinoc::noc {

class Topology;

class NetworkInterface {
 public:
  /// `stats` must outlive the NI: counter/distribution handles are interned
  /// against it here and bumped by the per-cycle methods.
  NetworkInterface(NodeId node, const NocConfig& config, sim::StatRegistry& stats);

  NodeId node() const { return node_; }

  // --- wiring ---------------------------------------------------------------
  void wire(InputUnit* router_local_iu, Channel<Flit>* inject_out, Channel<Credit>* credit_in,
            Channel<Flit>* eject_in);
  void set_traffic_source(ITrafficSource* source) { source_ = source; }
  /// Installs the offered-load observer (non-owning; nullptr to remove).
  /// Every packet the source offers is reported before the NI's filters —
  /// see ITraceSink. Not snapshot state: capture wiring is per-run.
  void set_trace_sink(ITraceSink* sink) { trace_sink_ = sink; }
  /// Attaches the topology (non-owning, must outlive the NI) whose
  /// inject_class() restricts VC allocation on wrap-link topologies.
  /// Unattached NIs (standalone unit tests) behave single-class.
  void set_topology(const Topology* topology) { topo_ = topology; }

  // --- per-cycle operation (order matters; called by Network) ---------------
  /// Drains returning credits and ejected flits; samples packet latency.
  void receive(sim::Cycle now);
  /// VA for the queue head + send one flit of the in-flight packet.
  void inject(sim::Cycle now, std::uint64_t& packet_id_counter);
  /// Asks the traffic source for a new packet.
  void generate(sim::Cycle now);

  /// True if a queued packet is still waiting for a VC — the NI-side
  /// is_new_traffic() input to the gating policy of the Local input port.
  bool has_new_traffic(sim::Cycle now) const;
  /// Same, restricted to one virtual network (the pre-VA policy runs once
  /// per vnet).
  bool has_new_traffic(int vnet, sim::Cycle now) const;
  /// Same, further restricted to one dateline class (per-class gating).
  bool has_new_traffic(int vnet, int cls, sim::Cycle now) const;

  std::size_t queue_depth() const { return queue_.size(); }

  // --- structural-fault support ----------------------------------------------
  /// Kills the NI (its router died): the source queue is discarded and
  /// receive()/inject()/generate() become permanent no-ops. The traffic
  /// source is never consulted again, so the RNG stream of a dead tile is
  /// identical across scheduler modes by construction.
  void mark_dead();
  bool dead() const { return dead_; }

  /// True while a packet is mid-serialization into the router.
  bool sending() const { return sending_; }
  PacketId sending_packet() const { return send_id_; }
  NodeId sending_dst() const { return send_pkt_.dst; }
  int sending_vc() const { return send_vc_; }
  /// Abandons the in-flight packet without sending its tail (the kill
  /// protocol purged its flits); the owning VC was purged separately.
  void cancel_sending() {
    sending_ = false;
    send_vc_ = kInvalidVc;
  }

  /// Structural-fault drain support: rewrites one VC credit counter to the
  /// exact survivor-side value. Never used on the healthy path.
  void set_credits(int vc, int credits) {
    credits_.at(static_cast<std::size_t>(vc)) = credits;
  }

  /// Drops every queued packet that can no longer reach its destination on
  /// the degraded fabric (dead destination tile or no surviving path).
  /// Returns the number dropped; each is counted as fault.unroutable_packets.
  std::uint64_t drop_queued_unroutable();

  /// True when the NI holds no work at all: nothing queued and no packet
  /// mid-serialization. Part of the O(nodes) quiescence proof — an idle NI
  /// can neither inject a flit nor assert has_new_traffic() until its
  /// source generates again.
  bool idle() const { return !sending_ && queue_.empty(); }

  /// True when no inbound channel (credit return, ejection) carries a
  /// payload: with idle() this proves receive()/inject()/generate() would
  /// all be no-ops until a link delivery or source fire — the active-set
  /// scheduler's NI park-eligibility condition.
  bool inbound_links_quiet() const {
    return (credit_in_ == nullptr || credit_in_->empty()) &&
           (eject_in_ == nullptr || eject_in_->empty());
  }

  std::uint64_t packets_ejected() const { return packets_ejected_; }
  std::uint64_t flits_injected() const { return flits_injected_; }

  // --- checkpoint/restore ----------------------------------------------------
  /// Source queue, credits, in-flight serialization state, counters and the
  /// death flag. The traffic source serializes itself separately (Network
  /// owns the source list).
  void save(sim::SnapshotWriter& w) const;
  void load(sim::SnapshotReader& r);

  // --- read-only wiring views (used by the invariant checker) ---------------
  /// Credits the NI holds for VC `vc` of its router's Local input port.
  int credits(int vc) const { return credits_.at(static_cast<std::size_t>(vc)); }
  /// Non-null under the shared organization: the wired router port's slot
  /// pool, whose per-VC charge replaces the credits_ counters entirely.
  SharedBufferPool* shared_pool() const {
    return router_iu_ != nullptr ? router_iu_->pool() : nullptr;
  }
  const Channel<Flit>* inject_link() const { return inject_out_; }
  const Channel<Credit>* credit_link() const { return credit_in_; }
  const Channel<Flit>* eject_link() const { return eject_in_; }

 private:
  struct QueuedPacket {
    NodeId dst = 0;
    int length = 1;
    int vnet = 0;
    sim::Cycle injected_at = 0;
  };

  /// Dateline class of the queue-front packet at this NI's router (0
  /// without an attached topology or on single-class topologies).
  int front_class() const;

  NodeId node_;
  NocConfig config_;
  const Topology* topo_ = nullptr;
  ITrafficSource* source_ = nullptr;
  ITraceSink* trace_sink_ = nullptr;
  // Pooled ring (see util::RingQueue): the open-loop source queue churns
  // every cycle under load and must not touch the allocator in steady state.
  util::RingQueue<QueuedPacket> queue_;

  // Interned stat handles (resolved once at construction).
  sim::StatRegistry* stats_;
  sim::CounterHandle h_flits_ejected_;
  sim::CounterHandle h_packets_ejected_;
  sim::CounterHandle h_ni_va_grants_;
  sim::CounterHandle h_flits_injected_;
  sim::CounterHandle h_packets_offered_;
  sim::CounterHandle h_unroutable_;
  sim::DistributionHandle d_packet_latency_;

  InputUnit* router_iu_ = nullptr;
  Channel<Flit>* inject_out_ = nullptr;
  Channel<Credit>* credit_in_ = nullptr;
  Channel<Flit>* eject_in_ = nullptr;

  std::vector<int> credits_;

  // In-flight packet being serialized into the router.
  bool sending_ = false;
  int send_vc_ = kInvalidVc;
  int send_seq_ = 0;
  QueuedPacket send_pkt_{};
  PacketId send_id_ = 0;

  std::uint64_t packets_ejected_ = 0;
  std::uint64_t flits_injected_ = 0;
  bool dead_ = false;  ///< tile structurally killed (router death)

  /// True when `dst` is unreachable from this tile on the (degraded)
  /// fabric; always false while the topology is healthy.
  bool unroutable(NodeId dst) const;
};

}  // namespace nbtinoc::noc
