#pragma once
// Fundamental NoC vocabulary: node identifiers, router ports, VC states.

#include <cstdint>
#include <string>

namespace nbtinoc::noc {

using NodeId = int;    ///< tile index, row-major: id = y * width + x
using PacketId = std::uint64_t;

/// Named sentinel for "no such node": what Topology::neighbor (and the
/// legacy mesh neighbor_of) return for an off-network direction.
inline constexpr NodeId kInvalidNode = -1;

/// Router port direction. Local is the NI-facing port of a tile. On a
/// concentrated topology a router carries several NI-facing ports; they are
/// the Dir values >= kFirstLocalPort (Local == first local slot), compared
/// and iterated as plain ints. The four cardinal ports are always 0..3.
enum class Dir : int { North = 0, South = 1, East = 2, West = 3, Local = 4 };

/// First NI-facing port index: Dir values >= this are local (slot = value -
/// kFirstLocalPort). Dir::Local is slot 0.
inline constexpr int kFirstLocalPort = 4;
/// Ports of a non-concentrated router (4 cardinal + 1 local). Concentrated
/// routers have kFirstLocalPort + concentration ports.
inline constexpr int kNumDirs = 5;
inline constexpr int kInvalidVc = -1;

/// True for every NI-facing port (Dir::Local and the extra slots of a
/// concentrated router).
inline constexpr bool is_local(Dir d) { return static_cast<int>(d) >= kFirstLocalPort; }
/// The local port for NI slot `slot` of a router (slot 0 == Dir::Local).
inline constexpr Dir local_port(int slot) { return static_cast<Dir>(kFirstLocalPort + slot); }
/// The NI slot of a local port.
inline constexpr int local_slot(Dir d) { return static_cast<int>(d) - kFirstLocalPort; }

/// The port on the neighboring router that faces back at `d` (local ports
/// face their own NI and are their own opposite).
Dir opposite(Dir d);
std::string to_string(Dir d);
/// Short one-letter name ("N","S","E","W","L") used in stat keys. Every
/// local slot prints 'L'; use to_string for a slot-unique name.
char dir_letter(Dir d);

/// 2D mesh coordinates.
struct Coord {
  int x = 0;
  int y = 0;
  bool operator==(const Coord&) const = default;
};

/// Virtual-channel buffer state (paper §III).
///  - Idle:     powered, empty, allocatable — NBTI *stress* ("meaningless
///              input vector" still stresses the PMOS network).
///  - Active:   powered, owns a packet — NBTI stress.
///  - Recovery: power-gated via the header PMOS sleep transistor — the only
///              state in which the buffer recovers.
enum class VcState : int { Idle = 0, Active = 1, Recovery = 2 };

std::string to_string(VcState s);

}  // namespace nbtinoc::noc
