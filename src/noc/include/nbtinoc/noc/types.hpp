#pragma once
// Fundamental NoC vocabulary: node identifiers, router ports, VC states.

#include <cstdint>
#include <string>

namespace nbtinoc::noc {

using NodeId = int;    ///< tile index, row-major: id = y * width + x
using PacketId = std::uint64_t;

/// Router port direction. Local is the NI-facing port of a tile.
enum class Dir : int { North = 0, South = 1, East = 2, West = 3, Local = 4 };

inline constexpr int kNumDirs = 5;
inline constexpr int kInvalidVc = -1;

/// The port on the neighboring router that faces back at `d`.
Dir opposite(Dir d);
std::string to_string(Dir d);
/// Short one-letter name ("N","S","E","W","L") used in stat keys.
char dir_letter(Dir d);

/// 2D mesh coordinates.
struct Coord {
  int x = 0;
  int y = 0;
  bool operator==(const Coord&) const = default;
};

/// Virtual-channel buffer state (paper §III).
///  - Idle:     powered, empty, allocatable — NBTI *stress* ("meaningless
///              input vector" still stresses the PMOS network).
///  - Active:   powered, owns a packet — NBTI stress.
///  - Recovery: power-gated via the header PMOS sleep transistor — the only
///              state in which the buffer recovers.
enum class VcState : int { Idle = 0, Active = 1, Recovery = 2 };

std::string to_string(VcState s);

}  // namespace nbtinoc::noc
