#pragma once
// Port state probe: records the per-cycle power/allocation state of one
// input port's VC bank while the caller drives Network::step() manually.
// Useful for debugging and for *seeing* what a policy does — the ASCII
// timeline makes the difference between rr-no-sensor's rotating awake VC
// and sensor-wise's parked recovery immediately visible.

#include <string>
#include <vector>

#include "nbtinoc/noc/gate.hpp"
#include "nbtinoc/noc/network.hpp"

namespace nbtinoc::noc {

class PortStateProbe {
 public:
  struct Record {
    sim::Cycle cycle = 0;
    std::string states;  ///< one char per VC: I(dle) / A(ctive) / R(ecovery)
  };

  /// Probes `key` on `network`; throws if the port does not exist.
  PortStateProbe(const Network& network, PortKey key);

  /// Appends one sample at the network's current cycle.
  void sample();

  const std::vector<Record>& records() const { return records_; }
  PortKey key() const { return key_; }

  /// Per-VC fraction of sampled cycles spent in each state.
  struct StateShares {
    double idle = 0.0;
    double active = 0.0;
    double recovery = 0.0;
  };
  StateShares shares(int vc) const;

  /// Renders the last `max_cycles` samples as one row per VC:
  ///   VC0 IIIAA RRRRR ...
  /// Columns are cycles (oldest left), grouped in blocks of 10.
  std::string ascii_timeline(std::size_t max_cycles = 80) const;

  /// CSV rows "cycle,vc0,vc1,..." with one state letter per cell.
  void save_csv(const std::string& path) const;

 private:
  const Network* network_;
  PortKey key_;
  int num_vcs_;
  std::vector<Record> records_;
};

}  // namespace nbtinoc::noc
