#pragma once
// Port state probe: records the per-cycle power/allocation state of one
// input port's VC bank while the caller drives Network::step() manually.
// Useful for debugging and for *seeing* what a policy does — the ASCII
// timeline makes the difference between rr-no-sensor's rotating awake VC
// and sensor-wise's parked recovery immediately visible.

#include <string>
#include <vector>

#include "nbtinoc/noc/gate.hpp"
#include "nbtinoc/noc/network.hpp"

namespace nbtinoc::noc {

class PortStateProbe {
 public:
  struct Record {
    sim::Cycle cycle = 0;
    std::string states;  ///< one char per VC: I(dle) / A(ctive) / R(ecovery)
  };

  /// Probes `key` on `network`; throws if the port does not exist.
  PortStateProbe(const Network& network, PortKey key);

  /// Appends one sample at the network's current cycle.
  void sample();

  const std::vector<Record>& records() const { return records_; }
  PortKey key() const { return key_; }

  /// Per-VC fraction of sampled cycles spent in each state.
  struct StateShares {
    double idle = 0.0;
    double active = 0.0;
    double recovery = 0.0;
  };
  StateShares shares(int vc) const;

  /// Renders the last `max_cycles` samples as one row per VC:
  ///   VC0 IIIAA RRRRR ...
  /// Columns are cycles (oldest left), grouped in blocks of 10.
  std::string ascii_timeline(std::size_t max_cycles = 80) const;

  /// CSV rows "cycle,vc0,vc1,..." with one state letter per cell.
  void save_csv(const std::string& path) const;

 private:
  const Network* network_;
  PortKey key_;
  int num_vcs_;
  std::vector<Record> records_;
};

/// Whole-network simulation invariant checker — the safety net under fault
/// injection. Call check() (or check_or_throw()) after each Network::step();
/// every call asserts, at the cycle boundary:
///
///   1. no flit sits in a gated (Recovery) buffer — faults may cost
///      latency and duty cycle, never data;
///   2. credits are conserved on every link: upstream credits + flits in
///      flight + credits in flight + downstream occupancy == buffer depth,
///      per VC, for router-router links and the NI injection path;
///   3. no flit is lost: the cycle-over-cycle change of the resident flit
///      census equals flits injected minus flits ejected minus flits
///      accountably dropped by structural-fault drains (self-resyncs
///      across StatRegistry resets such as the warmup fence);
///   4. no deadlock: whenever flits are resident, some global movement
///      counter must advance within `deadlock_threshold` cycles.
///
/// Under the active-set scheduler (Network::scheduler_mode() ==
/// SchedulerMode::kActiveSet) a fifth audit runs: every *parked* component
/// (absent from the next cycle's active set) must be provably idle — no
/// busy input VC, gating at its fixed point, and no inbound link payload
/// deliverable soon enough that skipping the component could change
/// behavior. A parked component holding imminent work is the scheduler's
/// one unforgivable bug, so it is reported as a violation here.
/// The checker is read-only and deterministic; it never perturbs the run.
class InvariantChecker {
 public:
  struct Options {
    /// Cycles of zero movement with flits resident before a deadlock is
    /// declared. Generous: at any offered load the NoC moves *something*
    /// every few cycles unless genuinely wedged.
    sim::Cycle deadlock_threshold = 4096;
    /// Recording stops after this many violations (the first one is what
    /// matters; the rest are usually cascade noise).
    std::size_t max_violations = 64;
  };

  struct Violation {
    sim::Cycle cycle = 0;
    std::string what;
  };

  explicit InvariantChecker(const Network& network);
  InvariantChecker(const Network& network, Options options);

  /// Runs every check at the network's current cycle; returns the number
  /// of new violations found.
  std::size_t check();
  /// check(), then throws std::runtime_error on the first violation found.
  void check_or_throw();

  const std::vector<Violation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }
  std::uint64_t cycles_checked() const { return cycles_checked_; }

 private:
  void record(sim::Cycle cycle, std::string what);
  void check_gated_buffers(sim::Cycle cycle);
  /// Shared organization only: per-port slot conservation (free + occupied
  /// + gated + waking == pool size, recounted from the slot states), the
  /// occupied count against the per-VC chain census, and the overcommit
  /// accumulator against its defining sum over per-VC charges.
  void check_shared_pools(sim::Cycle cycle);
  void check_credit_conservation(sim::Cycle cycle);
  void check_flit_conservation(sim::Cycle cycle);
  void check_deadlock(sim::Cycle cycle);
  void check_active_set(sim::Cycle cycle);

  const Network* network_;
  Options options_;
  std::vector<Violation> violations_;
  std::uint64_t cycles_checked_ = 0;

  // Flit-conservation deltas (self-resyncing across stat resets).
  bool census_valid_ = false;
  std::size_t last_resident_ = 0;
  std::uint64_t last_injected_ = 0;
  std::uint64_t last_ejected_ = 0;
  std::uint64_t last_dropped_ = 0;  ///< structural-fault drains (monotonic)

  // Deadlock watchdog.
  std::uint64_t last_movement_ = 0;
  sim::Cycle last_progress_cycle_ = 0;
  bool deadlock_reported_ = false;
};

}  // namespace nbtinoc::noc
