#pragma once
// Deterministic dimension-order routing on the 2D mesh (deadlock-free with
// wormhole + credit flow control).

#include "nbtinoc/noc/config.hpp"
#include "nbtinoc/noc/types.hpp"

namespace nbtinoc::noc {

/// Mesh geometry helpers.
Coord coord_of(NodeId id, int width);
NodeId id_of(Coord c, int width);
bool in_mesh(Coord c, int width, int height);
/// Neighbor node in direction d, or kInvalidNode if off-mesh / Local.
NodeId neighbor_of(NodeId id, Dir d, int width, int height);
/// Minimal hop count between two nodes.
int hop_distance(NodeId a, NodeId b, int width);

/// Output port at `current` for a packet headed to `dst`.
/// kXY resolves X first, kYX resolves Y first; both return Local on arrival.
Dir route_compute(NodeId current, NodeId dst, const NocConfig& config);

}  // namespace nbtinoc::noc
