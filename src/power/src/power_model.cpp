#include "nbtinoc/power/power_model.hpp"

#include <sstream>
#include <stdexcept>

namespace nbtinoc::power {

PowerParams PowerParams::at_node(int target_nm) {
  PowerParams p;
  const double s = static_cast<double>(target_nm) / 45.0;
  const double s2 = s * s;
  p.node_nm = target_nm;
  p.buffer_write_pj_per_bit *= s2;
  p.buffer_read_pj_per_bit *= s2;
  p.crossbar_pj_per_bit *= s2;
  p.arbiter_pj_per_grant *= s2;
  p.link_pj_per_bit_per_mm *= s2;
  p.buffer_leakage_uw_per_bit *= s;
  return p;
}

EnergyReport NocPowerModel::evaluate(const NocActivity& a) const {
  if (a.bits_per_flit < 1 || a.buffer_bits < 1)
    throw std::invalid_argument("NocPowerModel: bad geometry");
  EnergyReport r;
  const double bits = static_cast<double>(a.bits_per_flit);
  r.buffer_dynamic_pj = bits * (static_cast<double>(a.buffer_writes) * params_.buffer_write_pj_per_bit +
                                static_cast<double>(a.buffer_reads) * params_.buffer_read_pj_per_bit);
  r.crossbar_pj = bits * static_cast<double>(a.crossbar_traversals) * params_.crossbar_pj_per_bit;
  r.link_pj = bits * static_cast<double>(a.link_traversals) * params_.link_pj_per_bit_per_mm *
              params_.link_length_mm;
  r.allocator_pj = static_cast<double>(a.allocator_grants) * params_.arbiter_pj_per_grant;

  // Leakage: powered cycles leak fully, gated cycles leak the residual.
  // uW * s = pJ * 1e-6... keep explicit: power [W] = uW*1e-6; E[J] = P*t;
  // pJ = J * 1e12 => pJ = uW * s * 1e6.
  const double per_buffer_uw = params_.buffer_leakage_uw_per_bit * a.buffer_bits;
  const double powered_s = static_cast<double>(a.powered_buffer_cycles) * a.clock_period_s;
  const double gated_s = static_cast<double>(a.gated_buffer_cycles) * a.clock_period_s;
  r.buffer_leakage_pj =
      per_buffer_uw * (powered_s + gated_s * params_.gated_leakage_fraction) * 1e6;
  r.buffer_leakage_no_gating_pj = per_buffer_uw * (powered_s + gated_s) * 1e6;
  r.gating_overhead_pj =
      static_cast<double>(a.gating_transitions) * params_.gating_transition_pj;
  return r;
}

std::string EnergyReport::describe() const {
  std::ostringstream os;
  os << "dynamic: " << dynamic_pj() << " pJ (buffers " << buffer_dynamic_pj << ", crossbar "
     << crossbar_pj << ", links " << link_pj << ", allocators " << allocator_pj << ")\n"
     << "buffer leakage: " << buffer_leakage_pj << " pJ (would be "
     << buffer_leakage_no_gating_pj << " pJ without gating; gross saving "
     << leakage_saving() * 100.0 << "%, net " << net_leakage_saving() * 100.0
     << "% after " << gating_overhead_pj << " pJ of transition overhead)";
  return os.str();
}

}  // namespace nbtinoc::power
