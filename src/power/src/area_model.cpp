#include "nbtinoc/power/area_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nbtinoc::power {

int ceil_log2(int n) {
  if (n < 1) throw std::invalid_argument("ceil_log2: n must be >= 1");
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

AreaParams AreaParams::at_node(int target_nm) {
  AreaParams p;
  const double s = static_cast<double>(target_nm) / 45.0;
  const double s2 = s * s;
  p.node_nm = target_nm;
  p.flip_flop_um2 *= s2;
  p.crossbar_pitch_um *= s;
  p.arbiter_gate_um2 *= s2;
  p.wire_pitch_um *= s;
  p.sensor_um2 *= s2;
  p.comparator_logic_um2 *= s2;
  p.preva_logic_um2 *= s2;
  // link_length_um is a floorplan choice, not a device size: unchanged.
  return p;
}

RouterAreaBreakdown AreaModel::router_area(const RouterGeometry& g) const {
  if (g.ports < 1 || g.num_vcs < 1 || g.buffer_depth < 1 || g.flit_bits < 1)
    throw std::invalid_argument("AreaModel::router_area: bad geometry");
  RouterAreaBreakdown out;

  const double bits =
      static_cast<double>(g.ports) * g.num_vcs * g.buffer_depth * g.flit_bits;
  out.buffers_um2 = bits * params_.flip_flop_um2;

  const double edge = static_cast<double>(g.ports) * g.flit_bits * params_.crossbar_pitch_um;
  out.crossbar_um2 = edge * edge;

  // Separable allocators: per output port, one arbiter over
  // (ports * num_vcs) VA requesters and one over ports SA requesters;
  // arbiter area grows quadratically with requesters (grant matrix).
  const double va_req = static_cast<double>(g.ports) * g.num_vcs;
  out.vc_allocator_um2 = g.ports * va_req * va_req * params_.arbiter_gate_um2 / 10.0;
  const double sa_req = static_cast<double>(g.ports);
  out.sw_allocator_um2 =
      g.ports * (g.num_vcs * g.num_vcs + sa_req * sa_req) * params_.arbiter_gate_um2 / 10.0;

  const double datapath =
      out.buffers_um2 + out.crossbar_um2 + out.vc_allocator_um2 + out.sw_allocator_um2;
  out.control_um2 = datapath * params_.control_overhead;
  out.total_um2 = datapath + out.control_um2;
  return out;
}

double AreaModel::link_area_um2(int bits) const {
  return static_cast<double>(bits) * params_.wire_pitch_um * params_.link_length_um;
}

OverheadReport AreaModel::overhead_report(const RouterGeometry& g) const {
  OverheadReport rep;
  rep.baseline_router = router_area(g);
  rep.data_link_um2 = link_area_um2(g.link_bits);

  rep.num_sensors = g.ports * g.num_vcs;  // one sensor per VC buffer
  rep.sensors_um2 = rep.num_sensors * params_.sensor_um2;
  rep.extra_logic_um2 =
      g.ports * (params_.comparator_logic_um2 + params_.preva_logic_um2);

  rep.up_down_wires = ceil_log2(g.num_vcs) + 1;  // VC-ID + enable
  rep.down_up_wires = ceil_log2(g.num_vcs);      // most-degraded VC-ID
  const double control_wires =
      (rep.up_down_wires + rep.down_up_wires) * params_.control_wire_ratio;
  rep.control_links_um2 = control_wires * params_.wire_pitch_um * params_.link_length_um;
  return rep;
}

double OverheadReport::sensor_overhead_vs_router() const {
  return sensors_um2 / baseline_router.total_um2;
}

double OverheadReport::link_overhead_vs_data_link() const {
  return control_links_um2 / data_link_um2;
}

double OverheadReport::total_overhead_vs_noc() const {
  const double baseline = baseline_router.total_um2 + data_link_um2;
  const double extra = sensors_um2 + extra_logic_um2 + control_links_um2;
  return extra / baseline;
}

std::string OverheadReport::describe() const {
  std::ostringstream os;
  os << "Baseline router: " << baseline_router.total_um2 << " um^2 (buffers "
     << baseline_router.buffers_um2 << ", crossbar " << baseline_router.crossbar_um2
     << ", VA " << baseline_router.vc_allocator_um2 << ", SA " << baseline_router.sw_allocator_um2
     << ", control " << baseline_router.control_um2 << ")\n"
     << "Data link: " << data_link_um2 << " um^2\n"
     << num_sensors << " NBTI sensors: " << sensors_um2 << " um^2 ("
     << sensor_overhead_vs_router() * 100.0 << "% of router)\n"
     << "Control links (" << up_down_wires << "+" << down_up_wires
     << " wires): " << control_links_um2 << " um^2 (" << link_overhead_vs_data_link() * 100.0
     << "% of a data link)\n"
     << "Extra logic: " << extra_logic_um2 << " um^2\n"
     << "Total overhead vs router+link: " << total_overhead_vs_noc() * 100.0 << "%";
  return os.str();
}

}  // namespace nbtinoc::power
