#pragma once
// ORION-2.0-style NoC energy model (dynamic + leakage) at 45 nm.
//
// The paper's mechanism — power-gating idle VC buffers via header PMOS
// sleep transistors — has a second effect besides NBTI recovery: gated
// cycles leak only a residual fraction of the buffer's leakage power. This
// model quantifies that from exactly the statistics the simulator already
// produces: per-buffer stress/recovery cycle counts (powered vs gated) and
// flit movement counters.
//
// Dynamic energy is per-event: a flit is written once and read once per hop
// buffer, crosses one crossbar and one link per hop; allocators charge per
// grant. Constants are representative 45 nm values in the ORION ballpark
// and scale with feature size like the area model.

#include <string>

#include "nbtinoc/power/area_model.hpp"

namespace nbtinoc::power {

/// Energy/leakage constants. Defaults: 45 nm, 1.2 V.
struct PowerParams {
  int node_nm = 45;
  double vdd_v = 1.2;
  double buffer_write_pj_per_bit = 0.012;
  double buffer_read_pj_per_bit = 0.010;
  double crossbar_pj_per_bit = 0.008;
  double arbiter_pj_per_grant = 0.6;
  double link_pj_per_bit_per_mm = 0.15;
  double link_length_mm = 1.5;
  /// Leakage power of one powered buffer bit (high-performance 45nm cell).
  double buffer_leakage_uw_per_bit = 0.035;
  /// Fraction of leakage that survives power gating (virtual-Vdd residual
  /// through the header PMOS).
  double gated_leakage_fraction = 0.05;
  /// Energy of one gate (or wake) transition: header PMOS switching plus the
  /// virtual-Vdd rail charge/discharge — the break-even cost of gating [19].
  double gating_transition_pj = 1.5;

  /// Scales dynamic energy ~ node^2 (capacitance) and leakage ~ node
  /// (simplified) from the 45 nm reference.
  static PowerParams at_node(int target_nm);
};

/// Activity observed during a measurement window.
struct NocActivity {
  double window_seconds = 0.0;     ///< measured wall-clock time
  std::uint64_t buffer_writes = 0; ///< flits written into VC buffers
  std::uint64_t buffer_reads = 0;  ///< flits read out of VC buffers
  std::uint64_t crossbar_traversals = 0;
  std::uint64_t link_traversals = 0;
  std::uint64_t allocator_grants = 0;
  /// Powered (stress) and gated (recovery) buffer-cycle totals over every
  /// VC buffer in the network (sum of the NBTI trackers).
  std::uint64_t powered_buffer_cycles = 0;
  std::uint64_t gated_buffer_cycles = 0;
  /// Idle->Recovery transitions across every buffer (each implies a later
  /// wake; the pair is charged once via gating_transition_pj).
  std::uint64_t gating_transitions = 0;
  double clock_period_s = 1e-9;
  int bits_per_flit = 32;  ///< physical transfer unit (phit width)
  int buffer_bits = 32 * 8;  ///< bits of one VC buffer (depth x phit width)
};

struct EnergyReport {
  double buffer_dynamic_pj = 0.0;
  double crossbar_pj = 0.0;
  double link_pj = 0.0;
  double allocator_pj = 0.0;
  double buffer_leakage_pj = 0.0;
  double buffer_leakage_no_gating_pj = 0.0;  ///< counterfactual: never gated
  double gating_overhead_pj = 0.0;           ///< header-PMOS transition energy

  double dynamic_pj() const {
    return buffer_dynamic_pj + crossbar_pj + link_pj + allocator_pj;
  }
  double total_pj() const { return dynamic_pj() + buffer_leakage_pj + gating_overhead_pj; }
  /// Fraction of buffer leakage eliminated by the gating policy (gross,
  /// before transition overhead).
  double leakage_saving() const {
    return buffer_leakage_no_gating_pj > 0.0
               ? 1.0 - buffer_leakage_pj / buffer_leakage_no_gating_pj
               : 0.0;
  }
  /// Net saving after paying the transition energy: can go negative when
  /// gating periods are shorter than the break-even time.
  double net_leakage_saving() const {
    return buffer_leakage_no_gating_pj > 0.0
               ? 1.0 - (buffer_leakage_pj + gating_overhead_pj) / buffer_leakage_no_gating_pj
               : 0.0;
  }
  /// Average power over the window in milliwatts.
  double average_power_mw(double window_seconds) const {
    return window_seconds > 0.0 ? total_pj() * 1e-12 / window_seconds * 1e3 : 0.0;
  }

  std::string describe() const;
};

class NocPowerModel {
 public:
  explicit NocPowerModel(PowerParams params = {}) : params_(params) {}

  EnergyReport evaluate(const NocActivity& activity) const;

  const PowerParams& params() const { return params_; }

 private:
  PowerParams params_;
};

}  // namespace nbtinoc::power
