#pragma once
// ORION-2.0-style analytic router/link area model (paper §III-D).
//
// The paper uses ORION 2.0 at 45 nm to size the baseline router and link,
// then adds (a) one NBTI sensor per VC buffer (Singh et al. [20], a small
// synthesizable all-digital macro) and (b) the two control links
// (Up_Down: log2(num_vc)+1 wires, Down_Up: log2(num_vc) wires), reporting
// ~3.25% router overhead for sensors, ~3.8% of a 64-bit data link for the
// extra wires, and a total below 4-5%.
//
// The model composes per-component areas from technology constants:
//  * buffers: flip-flop based VC FIFOs (router buffers are register files,
//    not commodity SRAM macros)
//  * crossbar: matrix crossbar, area = (ports * flit_width * wire pitch)^2
//  * allocators: quadratic-in-requesters arbiter gate counts
//  * links: wire pitch * length * width, control wires at reduced pitch
// Constants default to 45 nm values and scale quadratically with feature
// size for other nodes.

#include <string>

namespace nbtinoc::power {

/// Technology/layout constants. Defaults: 45 nm.
struct AreaParams {
  int node_nm = 45;
  double flip_flop_um2 = 5.0;        ///< one storage bit incl. local wiring
  double crossbar_pitch_um = 0.55;   ///< crossing pitch per wire (incl. driver)
  double arbiter_gate_um2 = 2.5;     ///< per requester^2 arbitration cell
  double wire_pitch_um = 0.55;       ///< repeated global wire pitch
  double control_wire_ratio = 0.5;   ///< control wires are narrower/slower
  double link_length_um = 1500.0;    ///< tile edge length (Tilera-class tile)
  double control_overhead = 0.15;    ///< clocking/control fraction of router
  double sensor_um2 = 95.0;          ///< one NBTI sensor macro [20] @45nm, dense variant
  double comparator_logic_um2 = 15.0;///< per-port most-degraded comparator tree
  double preva_logic_um2 = 25.0;     ///< per-output-port Algorithm-2 logic (negligible per paper)

  /// Scales all geometric constants from 45 nm to `target_nm` (quadratic).
  static AreaParams at_node(int target_nm);
};

/// Router micro-architecture knobs relevant to area.
struct RouterGeometry {
  int ports = 4;        ///< paper §III-D counts the 4 mesh ports
  int num_vcs = 4;
  int buffer_depth = 4; ///< flits per VC
  int flit_bits = 64;
  int link_bits = 64;   ///< data link used as the overhead reference
};

struct RouterAreaBreakdown {
  double buffers_um2 = 0.0;
  double crossbar_um2 = 0.0;
  double vc_allocator_um2 = 0.0;
  double sw_allocator_um2 = 0.0;
  double control_um2 = 0.0;
  double total_um2 = 0.0;
};

struct OverheadReport {
  RouterAreaBreakdown baseline_router;
  double data_link_um2 = 0.0;

  int num_sensors = 0;
  double sensors_um2 = 0.0;
  double extra_logic_um2 = 0.0;       ///< comparator + pre-VA logic
  double control_links_um2 = 0.0;     ///< Up_Down + Down_Up wires
  int up_down_wires = 0;              ///< log2(num_vc) + 1
  int down_up_wires = 0;              ///< log2(num_vc)

  double sensor_overhead_vs_router() const;       ///< paper: ~3.25%
  double link_overhead_vs_data_link() const;      ///< paper: ~3.8%
  double total_overhead_vs_noc() const;           ///< paper: < 4-5%

  std::string describe() const;
};

class AreaModel {
 public:
  explicit AreaModel(AreaParams params = {}) : params_(params) {}

  RouterAreaBreakdown router_area(const RouterGeometry& g) const;
  /// One data link of `bits` wires over one tile edge.
  double link_area_um2(int bits) const;
  /// The §III-D analysis for a given router geometry.
  OverheadReport overhead_report(const RouterGeometry& g) const;

  const AreaParams& params() const { return params_; }

 private:
  AreaParams params_;
};

/// ceil(log2(n)) for n >= 1 (0 for n == 1): control-link width helper.
int ceil_log2(int n);

}  // namespace nbtinoc::power
