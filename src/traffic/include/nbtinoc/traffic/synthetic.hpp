#pragma once
// Synthetic open-loop traffic source: Bernoulli packet generation at a
// configured flit injection rate combined with a destination pattern.
// This is the paper's Tables II/III workload (uniform, 0.1/0.2/0.3
// flits/cycle/port).

#include <cstdint>

#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/noc/traffic_source.hpp"
#include "nbtinoc/traffic/patterns.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::traffic {

class SyntheticSource final : public noc::ITrafficSource {
 public:
  /// `injection_rate` is in flits/cycle/port; packet generation probability
  /// per cycle is rate / packet_length.
  SyntheticSource(noc::NodeId src, double injection_rate, int packet_length,
                  DestinationPattern pattern, std::uint64_t seed);

  std::optional<noc::PacketRequest> maybe_generate(sim::Cycle now) override;

  /// Exact next-fire query for the fast-forward engine. Pre-rolls the
  /// per-cycle Bernoulli stream (bounded look-ahead) without disturbing the
  /// draw order: destination draws still happen at consumption time, so the
  /// RNG stream is bit-identical to stepped execution.
  sim::Cycle next_event_cycle(sim::Cycle now) override;

  double injection_rate() const { return injection_rate_; }

  void save(sim::SnapshotWriter& w) const override {
    sim::save_rng(w, rng_);
    w.u64(static_cast<std::uint64_t>(rolled_until_));
    w.u64(static_cast<std::uint64_t>(next_fire_));
  }
  void load(sim::SnapshotReader& r) override {
    sim::load_rng(r, rng_);
    rolled_until_ = static_cast<sim::Cycle>(r.u64());
    next_fire_ = static_cast<sim::Cycle>(r.u64());
  }

 private:
  /// Advances the pre-rolled Bernoulli frontier through cycle `limit`
  /// (inclusive), stopping at the first success.
  void roll_until(sim::Cycle limit);

  noc::NodeId src_;
  double injection_rate_;
  int packet_length_;
  double packet_probability_;
  DestinationPattern pattern_;
  util::Xoshiro256 rng_;
  // Pre-roll state: the Bernoulli for every cycle < rolled_until_ has been
  // drawn; next_fire_ is the earliest undelivered success (kCycleNever if
  // none found yet). Invariant: no success exists in [next roll start,
  // rolled_until_) other than next_fire_.
  sim::Cycle rolled_until_ = 0;
  sim::Cycle next_fire_ = sim::kCycleNever;
};

/// Installs one SyntheticSource per node with the given pattern; each node
/// gets an independent stream derived from `base_seed`.
void install_synthetic_traffic(noc::Network& network, PatternKind pattern, double injection_rate,
                               std::uint64_t base_seed);

/// Paper workload: uniform random at the given rate.
inline void install_uniform_traffic(noc::Network& network, double injection_rate,
                                    std::uint64_t base_seed) {
  install_synthetic_traffic(network, PatternKind::kUniform, injection_rate, base_seed);
}

}  // namespace nbtinoc::traffic
