#pragma once
// Coherence-style request/reply traffic over two virtual networks.
//
// Table I's GEM5 setup separates protocol classes into virtual networks
// precisely because replies must never be blocked behind requests (protocol
// deadlock). This source mimics that: it emits short *request* packets on
// vnet 0 (a miss/fetch: control message) and, a fixed service delay later,
// the addressed node's source emits the long *reply* on vnet 1 (the data
// message). Wiring the reply through the destination's own source keeps
// each NI single-threaded, as in the simulator's one-source-per-node model.

#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/noc/traffic_source.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::traffic {

struct RequestReplyConfig {
  double request_rate = 0.02;   ///< requests/cycle/node (Bernoulli)
  int request_length = 1;       ///< flits: control message
  int reply_length = 9;         ///< flits: data message (64B line + header)
  sim::Cycle service_delay = 20;  ///< cycles between request arrival and reply
  int request_vnet = 0;
  int reply_vnet = 1;
};

/// Shared mailbox: pending replies each serving node must emit.
class ReplyBoard {
 public:
  struct PendingReply {
    sim::Cycle ready_at = 0;
    noc::NodeId dst = 0;
  };

  /// Cross-source wake channel: posting a reply onto a *parked* server's
  /// board is the one traffic event next_event_cycle() cannot predict from
  /// the server's own state, so the board tells the active-set scheduler
  /// directly (install_request_reply_traffic wires this to
  /// Network::wake_terminal_at; a no-op in the stepped/fast-forward modes).
  using WakeSink = std::function<void(noc::NodeId server, sim::Cycle ready_at)>;
  void set_wake_sink(WakeSink sink) { wake_sink_ = std::move(sink); }

  void post(noc::NodeId server, PendingReply reply) {
    boards_.at(static_cast<std::size_t>(server)).push_back(reply);
    if (wake_sink_) wake_sink_(server, reply.ready_at);
  }
  std::deque<PendingReply>& of(noc::NodeId server) {
    return boards_.at(static_cast<std::size_t>(server));
  }
  explicit ReplyBoard(int nodes) : boards_(static_cast<std::size_t>(nodes)) {}

  /// Checkpoint of every pending reply. Loading does NOT fire the wake
  /// sink: the resumed network reconstructs wakes itself on scheduler-mode
  /// entry (the sources' next_event_cycle covers pending replies).
  void save(sim::SnapshotWriter& w) const {
    for (const auto& board : boards_) {
      w.u64(board.size());
      for (const PendingReply& reply : board) {
        w.u64(static_cast<std::uint64_t>(reply.ready_at));
        w.i64(reply.dst);
      }
    }
  }
  void load(sim::SnapshotReader& r) {
    for (auto& board : boards_) {
      board.clear();
      const std::uint64_t n = r.u64();
      for (std::uint64_t i = 0; i < n; ++i) {
        PendingReply reply;
        reply.ready_at = static_cast<sim::Cycle>(r.u64());
        reply.dst = static_cast<noc::NodeId>(r.i64());
        board.push_back(reply);
      }
    }
  }

 private:
  std::vector<std::deque<PendingReply>> boards_;
  WakeSink wake_sink_;
};

class RequestReplySource final : public noc::ITrafficSource {
 public:
  RequestReplySource(noc::NodeId node, int mesh_nodes, RequestReplyConfig config,
                     ReplyBoard* board, std::uint64_t seed);

  std::optional<noc::PacketRequest> maybe_generate(sim::Cycle now) override;

  /// Next-fire query for the fast-forward engine: min of the pending-reply
  /// front's ready_at and the next pre-rolled request fire. Pre-rolling is
  /// capped strictly below min(front ready_at, now + service_delay) so that
  /// no Bernoulli is ever drawn for a cycle that stepped execution would
  /// spend serving a reply (reply cycles draw nothing). Assumes every
  /// source sharing the ReplyBoard uses the same service_delay, as
  /// install_request_reply_traffic guarantees.
  sim::Cycle next_event_cycle(sim::Cycle now) override;

  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t replies_sent() const { return replies_sent_; }

  void save(sim::SnapshotWriter& w) const override {
    sim::save_rng(w, rng_);
    w.u64(requests_sent_);
    w.u64(replies_sent_);
    w.u64(static_cast<std::uint64_t>(rolled_until_));
    w.u64(static_cast<std::uint64_t>(next_fire_));
  }
  void load(sim::SnapshotReader& r) override {
    sim::load_rng(r, rng_);
    requests_sent_ = r.u64();
    replies_sent_ = r.u64();
    rolled_until_ = static_cast<sim::Cycle>(r.u64());
    next_fire_ = static_cast<sim::Cycle>(r.u64());
  }

 private:
  void roll_until(sim::Cycle limit, sim::Cycle now);

  noc::NodeId node_;
  int mesh_nodes_;
  RequestReplyConfig config_;
  ReplyBoard* board_;
  util::Xoshiro256 rng_;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t replies_sent_ = 0;
  // Pre-roll frontier (see SyntheticSource): Bernoullis for all *request*
  // cycles < rolled_until_ are drawn; next_fire_ is the earliest unserved
  // success. Reply cycles advance rolled_until_ without a draw.
  sim::Cycle rolled_until_ = 0;
  sim::Cycle next_fire_ = sim::kCycleNever;
};

/// Installs request/reply sources on every node (shares one ReplyBoard,
/// which the network keeps alive through the returned sources).
void install_request_reply_traffic(noc::Network& network, RequestReplyConfig config,
                                   std::uint64_t base_seed);

}  // namespace nbtinoc::traffic
