#pragma once
// Application traffic model — the substitute for GEM5 full-system SPLASH2 /
// WCET runs (paper §IV-C).
//
// Real shared-memory benchmarks impose on each router a *bursty, spatially
// skewed* load: compute phases with almost no traffic alternate with
// communication phases (cache-miss bursts), and destinations mix
// address-interleaved L2 bank accesses (~uniform) with neighbor/owner
// locality. We model each core as a two-state Markov-modulated (on/off)
// source with per-benchmark rate, burst shape and locality parameters; the
// benchmark presets live in benchmarks.hpp. What Table IV consumes is only
// the resulting spatio-temporal buffer occupancy, which this process class
// reproduces.

#include <cstdint>
#include <string>

#include "nbtinoc/noc/traffic_source.hpp"
#include "nbtinoc/traffic/patterns.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::traffic {

/// Parameters of one application's traffic behaviour on one core.
struct AppProfile {
  std::string name = "app";
  double mean_rate = 0.05;        ///< long-run average, flits/cycle/node
  double burstiness = 4.0;        ///< on-state rate = burstiness * mean_rate (>= 1)
  double mean_burst_cycles = 200; ///< average length of an on (communication) phase
  double locality = 0.3;          ///< fraction of packets to a mesh neighbor
  double hotspot_fraction = 0.1;  ///< fraction to the "directory/memory" node
  int packet_length = 4;          ///< flits (data virtual network)
};

/// Two-state MMPP (on/off) source with destination mixing:
/// neighbor (locality) / hotspot (directory) / uniform (address-interleaved).
class AppTrafficSource final : public noc::ITrafficSource {
 public:
  AppTrafficSource(noc::NodeId src, const AppProfile& profile, int width, int height,
                   noc::NodeId hotspot, std::uint64_t seed);

  std::optional<noc::PacketRequest> maybe_generate(sim::Cycle now) override;

  /// Next-fire query for the fast-forward engine. Pre-rolls the Markov
  /// chain (transition draw, then emission draw, per cycle — the exact
  /// stepped order) up to a bounded look-ahead, deferring the destination
  /// draws to consumption time so the RNG stream matches stepped execution.
  sim::Cycle next_event_cycle(sim::Cycle now) override;

  const AppProfile& profile() const { return profile_; }
  bool in_burst() const { return on_; }

  /// Long-run mean packet generation probability implied by the profile.
  double mean_packet_probability() const;

  void save(sim::SnapshotWriter& w) const override {
    sim::save_rng(w, rng_);
    w.b(on_);
    w.u64(static_cast<std::uint64_t>(rolled_until_));
    w.u64(static_cast<std::uint64_t>(next_fire_));
  }
  void load(sim::SnapshotReader& r) override {
    sim::load_rng(r, rng_);
    on_ = r.b();
    rolled_until_ = static_cast<sim::Cycle>(r.u64());
    next_fire_ = static_cast<sim::Cycle>(r.u64());
  }

 private:
  noc::NodeId pick_destination();
  void roll_until(sim::Cycle limit);

  noc::NodeId src_;
  AppProfile profile_;
  int width_;
  int height_;
  noc::NodeId hotspot_;
  util::Xoshiro256 rng_;

  bool on_ = false;
  double p_on_packet_ = 0.0;   ///< per-cycle packet probability while on
  double p_off_packet_ = 0.0;  ///< residual probability while off
  double p_exit_on_ = 0.0;     ///< on -> off transition probability
  double p_exit_off_ = 0.0;    ///< off -> on transition probability

  // Pre-roll frontier (see SyntheticSource). on_ above is the Markov state
  // as of cycle rolled_until_, which may run ahead of the last consumed
  // cycle; in_burst() is therefore only meaningful to stepped callers.
  sim::Cycle rolled_until_ = 0;
  sim::Cycle next_fire_ = sim::kCycleNever;
};

}  // namespace nbtinoc::traffic
