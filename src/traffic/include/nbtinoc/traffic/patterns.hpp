#pragma once
// Spatial destination patterns for synthetic traffic (Dally & Towles'
// standard set). The paper evaluates uniform random; the others support the
// extension benches.

#include <memory>
#include <string>

#include "nbtinoc/noc/types.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::traffic {

enum class PatternKind {
  kUniform,        ///< uniform random over all other nodes
  kTranspose,      ///< (x,y) -> (y,x)
  kBitComplement,  ///< node i -> ~i (mod N)
  kBitReverse,     ///< bit-reversed node index
  kTornado,        ///< half-mesh offset along X
  kNeighbor,       ///< (x,y) -> (x+1,y) wrap
  kHotspot,        ///< uniform, except a fraction targets one hot node
  kShuffle,        ///< perfect shuffle on the node index bits
};

PatternKind parse_pattern(const std::string& name);
std::string to_string(PatternKind kind);

/// Picks a destination for a packet from `src`. Stateless apart from RNG.
class DestinationPattern {
 public:
  DestinationPattern(PatternKind kind, int width, int height, noc::NodeId hotspot = 0,
                     double hotspot_fraction = 0.2);

  /// Never returns `src` (self-traffic is meaningless on the NoC); patterns
  /// whose image equals src fall back to uniform.
  noc::NodeId pick(noc::NodeId src, util::Xoshiro256& rng) const;

  PatternKind kind() const { return kind_; }

 private:
  noc::NodeId uniform_other(noc::NodeId src, util::Xoshiro256& rng) const;
  noc::NodeId deterministic_image(noc::NodeId src) const;

  PatternKind kind_;
  int width_;
  int height_;
  noc::NodeId hotspot_;
  double hotspot_fraction_;
};

}  // namespace nbtinoc::traffic
