#pragma once
// Packet trace capture and replay. Lets users record the offered load of any
// source configuration — either standalone (Trace::capture) or from inside a
// live run (RunnerOptions::capture_trace installs the Trace as the network's
// ITraceSink) — and replay it deterministically: on byte-identical workloads
// the full network evolution, and therefore the full result JSON, matches
// the capturing run bit for bit.
//
// Two storage forms exist: this in-memory/CSV Trace (small tooling traces,
// capture staging) and the NBTITRACE binary format (trace_file.hpp), which
// replays zero-copy from one shared mmap'd file and is the form every
// production path (run_experiment, sweeps, fleets) consumes.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nbtinoc/noc/traffic_source.hpp"
#include "nbtinoc/traffic/trace_file.hpp"

namespace nbtinoc::traffic {

struct TraceRecord {
  sim::Cycle cycle = 0;
  noc::NodeId src = 0;
  noc::NodeId dst = 0;
  int length = 1;
  int vnet = 0;
};

/// In-memory trace for the whole network, ordered by (cycle, insertion).
/// As an ITraceSink it can be handed to Network::set_trace_sink (via
/// core::RunnerOptions::capture_trace) to record a run's offered load
/// without disturbing it.
class Trace final : public noc::ITraceSink {
 public:
  void add(const TraceRecord& rec) { records_.push_back(rec); }
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// ITraceSink: one packet the traffic source offered at `now`, recorded
  /// before the NI's self-traffic/unroutable filters (a replay re-applies
  /// the same filters, keeping the runs bit-identical).
  void record(sim::Cycle now, noc::NodeId src, const noc::PacketRequest& req) override {
    records_.push_back(TraceRecord{now, src, req.dst, req.length, req.vnet});
  }

  /// CSV round-trip: "cycle,src,dst,length[,vnet]" with a '#' header
  /// comment. save() emits the vnet column only when some record needs it,
  /// so vnet-free traces stay byte-identical to the pre-vnet format.
  void save(const std::string& path) const;
  /// Parses a CSV trace. Errors are line-numbered and actionable
  /// ("path:line: ..."): wrong column count, non-numeric or negative
  /// fields, length < 1 — and, when `num_nodes` > 0, src/dst out of
  /// [0, num_nodes).
  static Trace load(const std::string& path, int num_nodes = 0);

  /// Capture helper: polls every source for `cycles` cycles (burst-aware:
  /// multi-packet sources contribute every same-cycle packet) and records
  /// what each would have offered.
  ///
  /// Contract: the sources are *consumed* — every poll advances their RNG
  /// streams exactly as a live run would, and there is no snapshot-restore.
  /// A source handed to capture() must be discarded afterwards (reusing it
  /// in a live run continues the advanced stream and silently diverges from
  /// the capture — pinned by CaptureConsumesSourceRng). To record a live
  /// run instead, use the in-run hook (core::RunnerOptions::capture_trace),
  /// which observes the run's own draws and consumes nothing extra.
  static Trace capture(std::vector<noc::ITrafficSource*> sources, sim::Cycle cycles);

 private:
  std::vector<TraceRecord> records_;
};

/// Replays one node's slice of a trace.
///
/// Two constructions: the legacy in-memory form copies its per-node slice
/// out of a Trace (small tooling runs), and the zero-copy form holds a
/// cursor into a shared TraceFile mapping — O(1) memory per source, no
/// allocation ever. Same-cycle records are offered as one burst through
/// generate_burst(); the single-packet maybe_generate() keeps the historical
/// slip-forward semantics for callers without a burst path.
class TraceReplaySource final : public noc::ITrafficSource {
 public:
  TraceReplaySource(const Trace& trace, noc::NodeId node);
  /// Zero-copy replay out of `file` (kept alive by the shared_ptr).
  TraceReplaySource(std::shared_ptr<const TraceFile> file, noc::NodeId node);

  std::optional<noc::PacketRequest> maybe_generate(sim::Cycle now) override;
  std::size_t generate_burst(sim::Cycle now, noc::PacketRequest* out, std::size_t max) override;

  /// Exact next-event query: the recorded cycle of the next unreplayed
  /// record (clamped to `now` for slipped same-cycle records), or
  /// sim::kCycleNever once the trace is exhausted. Draw-free, so the
  /// fast-forward and active-set engines skip between trace records
  /// losslessly.
  sim::Cycle next_event_cycle(sim::Cycle now) override;

  /// Replay progress (records consumed so far) — the only mutable state.
  std::size_t cursor() const { return next_; }

  /// Checkpoint hooks: the cursor is the whole dynamic state (the records
  /// themselves are structural, rebuilt from the same trace on resume).
  void save(sim::SnapshotWriter& w) const override { w.u64(next_); }
  void load(sim::SnapshotReader& r) override { next_ = static_cast<std::size_t>(r.u64()); }

 private:
  std::size_t count() const { return file_ ? slice_.size() : mine_.size(); }
  sim::Cycle cycle_at(std::size_t i) const { return file_ ? slice_.cycle(i) : mine_[i].cycle; }
  noc::PacketRequest request_at(std::size_t i) const {
    if (file_) return noc::PacketRequest{slice_.dst(i), slice_.length(i), slice_.vnet(i)};
    return noc::PacketRequest{mine_[i].dst, mine_[i].length, mine_[i].vnet};
  }

  std::shared_ptr<const TraceFile> file_;  ///< null for the in-memory form
  TraceSlice slice_;                       ///< window into file_'s mapping
  std::vector<TraceRecord> mine_;          ///< in-memory form only
  std::size_t next_ = 0;
};

}  // namespace nbtinoc::traffic
