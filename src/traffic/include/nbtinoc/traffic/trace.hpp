#pragma once
// Packet trace capture and replay. Lets users record the offered load of any
// source configuration to a CSV file and replay it deterministically —
// useful for comparing policies on byte-identical workloads and for feeding
// externally produced traces (e.g. from a full-system simulator) into this
// NoC.

#include <cstdint>
#include <string>
#include <vector>

#include "nbtinoc/noc/traffic_source.hpp"

namespace nbtinoc::traffic {

struct TraceRecord {
  sim::Cycle cycle = 0;
  noc::NodeId src = 0;
  noc::NodeId dst = 0;
  int length = 1;
};

/// In-memory trace for the whole network, ordered by (cycle, insertion).
class Trace {
 public:
  void add(const TraceRecord& rec) { records_.push_back(rec); }
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// CSV round-trip: "cycle,src,dst,length" with a '#' header comment.
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

  /// Capture helper: runs every source for `cycles` cycles and records
  /// what it would have offered. Sources are consumed (their RNG advances).
  static Trace capture(std::vector<noc::ITrafficSource*> sources, sim::Cycle cycles);

 private:
  std::vector<TraceRecord> records_;
};

/// Replays one node's slice of a trace.
class TraceReplaySource final : public noc::ITrafficSource {
 public:
  TraceReplaySource(const Trace& trace, noc::NodeId node);

  std::optional<noc::PacketRequest> maybe_generate(sim::Cycle now) override;

  /// Exact next-event query: the recorded cycle of the next unreplayed
  /// record (clamped to `now` for slipped same-cycle records), or
  /// sim::kCycleNever once the trace is exhausted. Draw-free, so the
  /// fast-forward engine can skip between trace records losslessly.
  sim::Cycle next_event_cycle(sim::Cycle now) override;

 private:
  std::vector<TraceRecord> mine_;
  std::size_t next_ = 0;
};

}  // namespace nbtinoc::traffic
