#pragma once
// Datacenter aggregate workload — the millions-of-users traffic model.
//
// Each node multiplexes `users_per_node` independent user sessions: a
// session alternates heavy-tailed (Pareto) ON phases, during which it
// contributes `user_rate` flits/cycle, with heavy-tailed OFF think times.
// The superposition is the classic self-similar datacenter load process
// (Crovella/Taqqu): the per-node packet rate is a piecewise-constant
// function of how many sessions are ON, with bursts on every timescale up
// to the profile horizon.
//
// The implementation composes the per-user on/off processes ONCE at
// construction into an active-session profile (an event-compressed step
// function over [0, profile_horizon), repeated periodically), then runs as
// a non-homogeneous per-cycle emission process over it: packet count at
// cycle c is floor(lambda_c) + Bernoulli(frac(lambda_c)). Emission draws
// are pre-rolled in cycle order with destination draws deferred to
// consumption (the SyntheticSource discipline), so next_event_cycle() is
// safe for the fast-forward/active-set engines and the RNG stream is
// bit-identical across all scheduler modes. Multi-packet cycles hand their
// whole batch to the NI through generate_burst(); a batch larger than
// noc::kMaxGenerateBurst slips, deterministically, to the following cycles.
//
// A datacenter run is capturable through the ordinary trace hooks
// (RunnerOptions::capture_trace) into the NBTITRACE format — the intended
// production path: synthesize once, capture, then replay the frozen
// workload zero-copy across policies, sweeps and fleet shards.

#include <cstdint>
#include <string>
#include <vector>

#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/noc/traffic_source.hpp"
#include "nbtinoc/traffic/patterns.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::traffic {

/// Parameters of one node's aggregated user population.
struct DatacenterProfile {
  int users_per_node = 1000;      ///< independent sessions multiplexed per node
  double user_rate = 0.002;       ///< flits/cycle contributed by one ON session
  double mean_on_cycles = 2000;   ///< mean ON (service burst) length
  double mean_off_cycles = 18000; ///< mean OFF (think time) length
  double pareto_alpha = 1.6;      ///< tail index of both phases (> 1: finite mean)
  PatternKind pattern = PatternKind::kUniform;  ///< per-packet destination law
  double hotspot_fraction = 0.2;  ///< kHotspot only: fraction aimed at the hot node
  int packet_length = 4;          ///< flits per packet
  sim::Cycle profile_horizon = 1 << 16;  ///< activity profile period (wraps)

  /// Canonical textual encoding (config digests, describe blocks).
  std::string describe() const;
  /// Rejects impossible profiles with an actionable std::invalid_argument.
  void validate() const;
};

/// One node's aggregate source. Deterministic: the activity profile and the
/// emission stream both derive from the construction seed alone.
class DatacenterAggregateSource final : public noc::ITrafficSource {
 public:
  DatacenterAggregateSource(noc::NodeId src, const DatacenterProfile& profile, int width,
                            int height, noc::NodeId hotspot, std::uint64_t seed);

  std::optional<noc::PacketRequest> maybe_generate(sim::Cycle now) override;
  std::size_t generate_burst(sim::Cycle now, noc::PacketRequest* out, std::size_t max) override;

  /// Exact for pending batches (returns `now` while packets are undelivered)
  /// and pre-rolled otherwise — never overshoots a real emission.
  sim::Cycle next_event_cycle(sim::Cycle now) override;

  /// Sessions ON at cycle `c` of the (wrapped) activity profile.
  int active_sessions(sim::Cycle c) const;
  /// Long-run mean flit rate implied by the profile (flits/cycle/node).
  double mean_flit_rate() const;

  void save(sim::SnapshotWriter& w) const override {
    sim::save_rng(w, rng_);
    w.u64(static_cast<std::uint64_t>(rolled_until_));
    w.u64(static_cast<std::uint64_t>(next_fire_));
    w.u64(static_cast<std::uint64_t>(next_count_));
    w.u64(static_cast<std::uint64_t>(pending_));
  }
  void load(sim::SnapshotReader& r) override {
    sim::load_rng(r, rng_);
    rolled_until_ = static_cast<sim::Cycle>(r.u64());
    next_fire_ = static_cast<sim::Cycle>(r.u64());
    next_count_ = static_cast<std::size_t>(r.u64());
    pending_ = static_cast<std::size_t>(r.u64());
    profile_pos_ = sim::kCycleNever;  // force a segment-cursor re-seek
  }

 private:
  void build_activity_profile();
  sim::Cycle pareto_cycles(double mean);  ///< one heavy-tailed phase length (draws)
  /// Packets/cycle at `cycle`; `span` receives how long that rate holds.
  /// Monotone-cursor lookup — callers advance cycle between calls.
  double lambda_at(sim::Cycle cycle, sim::Cycle& span);
  void roll_until(sim::Cycle limit);
  void refill(sim::Cycle now);

  noc::NodeId src_;
  DatacenterProfile profile_;
  DestinationPattern pattern_;
  util::Xoshiro256 rng_;

  // Activity profile: active-session count as an event-compressed step
  // function over [0, profile_horizon). Structural (rebuilt from the seed
  // on construction), so snapshots never carry it.
  std::vector<sim::Cycle> seg_start_;  ///< ascending, seg_start_[0] == 0
  std::vector<double> seg_lambda_;     ///< packets/cycle while the segment holds
  std::vector<int> seg_active_;        ///< ON-session count (introspection)
  std::size_t seg_idx_ = 0;            ///< monotone lookup cursor
  sim::Cycle profile_pos_ = sim::kCycleNever;  ///< last looked-up wrapped position
  double max_lambda_ = 0.0;            ///< peak packets/cycle over the profile

  // Pre-roll frontier (SyntheticSource discipline): every cycle below
  // rolled_until_ has drawn its emission; next_fire_/next_count_ is the
  // earliest unconsumed nonzero batch; pending_ holds packets whose cycle
  // has arrived but which the NI has not pulled yet (burst slip).
  sim::Cycle rolled_until_ = 0;
  sim::Cycle next_fire_ = sim::kCycleNever;
  std::size_t next_count_ = 0;
  std::size_t pending_ = 0;
};

/// Installs one DatacenterAggregateSource per node; each node's population
/// is an independent stream derived from `base_seed`. `rate_scale` converts
/// flits/cycle rates to the network's transfer units (phits/cycle), exactly
/// as install_benchmark_mix does; the hotspot is the last node.
void install_datacenter_traffic(noc::Network& network, const DatacenterProfile& profile,
                                std::uint64_t base_seed, double rate_scale = 1.0);

}  // namespace nbtinoc::traffic
