#pragma once
// NBTITRACE v1 — the zero-copy binary packet-trace format (ARCHITECTURE.md
// §14). A trace file is opened once, mmap'd read-only, and shared by every
// TraceReplaySource, SweepRunner worker and fleet shard through a
// shared_ptr<const TraceFile>: replay touches the mapping directly (no
// per-node vector copies, no steady-state allocations), so per-worker memory
// is O(1) in the record count.
//
// Layout (all integers little-endian, mirroring sim/snapshot.hpp):
//   bytes [0, 9)  magic "NBTITRACE"
//   u32           format version (= 1; readers reject others outright)
//   u32           node count N
//   u32           vnet count (1 + the highest vnet any record carries)
//   u64           record count R
//   u32 + bytes   free-form config digest of the capturing run
//   N x u64       per-node record index: records of node n occupy the
//                 half-open slice [sum(counts[0..n)), +counts[n]) — slices
//                 are contiguous, in node order, non-decreasing in cycle
//   zero padding  to the next multiple of 8 bytes from file start
//   R x 16 bytes  packed records: u64 cycle, u32 dst, u16 length, u16 vnet
//                 (the source node is implied by the index slice)
//
// open()/from_bytes() validate the whole file once — magic, version, size
// arithmetic, index/record-count consistency, and every record's dst bound,
// length >= 1 and per-slice cycle monotonicity — throwing TraceError with
// the offending node/record named, so the replay hot path can read without
// rechecking.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "nbtinoc/noc/traffic_source.hpp"

namespace nbtinoc::noc {
class Network;
}

namespace nbtinoc::traffic {

class Trace;

/// Raised on malformed, truncated, or version-mismatched trace files, and on
/// traces that cannot be serialized (record out of range for the declared
/// node count). Messages are actionable: they name the file, the field and
/// the offending value.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

/// First 9 bytes of every binary trace file.
inline constexpr std::string_view kTraceMagic = "NBTITRACE";
/// Bump on any layout change; readers reject other versions outright.
inline constexpr std::uint32_t kTraceVersion = 1;
/// Bytes per packed record (u64 cycle, u32 dst, u16 length, u16 vnet).
inline constexpr std::size_t kTraceRecordBytes = 16;

/// One node's read-only window into the shared record array. Field reads
/// assemble little-endian bytes in place (a single load on LE hosts) — no
/// copies, no allocation, safe for concurrent readers.
class TraceSlice {
 public:
  TraceSlice() = default;
  TraceSlice(const unsigned char* base, std::size_t count) : base_(base), count_(count) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  sim::Cycle cycle(std::size_t i) const {
    const unsigned char* p = base_ + i * kTraceRecordBytes;
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b) v = (v << 8) | p[b];
    return static_cast<sim::Cycle>(v);
  }
  noc::NodeId dst(std::size_t i) const {
    const unsigned char* p = base_ + i * kTraceRecordBytes + 8;
    return static_cast<noc::NodeId>(p[0] | (p[1] << 8) | (p[2] << 16) |
                                    (static_cast<std::uint32_t>(p[3]) << 24));
  }
  int length(std::size_t i) const {
    const unsigned char* p = base_ + i * kTraceRecordBytes + 12;
    return p[0] | (p[1] << 8);
  }
  int vnet(std::size_t i) const {
    const unsigned char* p = base_ + i * kTraceRecordBytes + 14;
    return p[0] | (p[1] << 8);
  }

 private:
  const unsigned char* base_ = nullptr;
  std::size_t count_ = 0;
};

/// An opened, validated NBTITRACE file. Immutable after construction; one
/// instance is shared (shared_ptr<const TraceFile>) by every replay source
/// and every sweep/fleet worker in the process. File-backed instances hold
/// an mmap'd read-only mapping (released on destruction); memory-backed
/// instances (from_bytes / from_trace) own their buffer.
class TraceFile {
 public:
  /// mmap's `path` read-only and validates it. Throws TraceError naming the
  /// file on any open/format problem.
  static std::shared_ptr<const TraceFile> open(const std::string& path);
  /// Adopts an in-memory serialized trace (same validation as open()).
  static std::shared_ptr<const TraceFile> from_bytes(std::string bytes);
  /// Serializes `trace` for `node_count` nodes and adopts the result — the
  /// in-process equivalent of write() + open().
  static std::shared_ptr<const TraceFile> from_trace(const Trace& trace, int node_count,
                                                     std::string_view digest);

  ~TraceFile();
  TraceFile(const TraceFile&) = delete;
  TraceFile& operator=(const TraceFile&) = delete;

  int node_count() const { return node_count_; }
  /// 1 + the highest vnet any record carries (1 for vnet-free traces).
  int vnet_count() const { return vnet_count_; }
  std::uint64_t record_count() const { return record_count_; }
  /// Free-form description of the capturing configuration, embedded at
  /// serialization time and quoted in mismatch errors.
  const std::string& digest() const { return digest_; }
  /// Total bytes of the backing mapping/buffer.
  std::size_t size_bytes() const { return size_; }

  /// Node `node`'s records (validated, non-decreasing in cycle).
  TraceSlice slice(noc::NodeId node) const {
    const std::uint64_t lo = starts_[static_cast<std::size_t>(node)];
    const std::uint64_t hi = starts_[static_cast<std::size_t>(node) + 1];
    return TraceSlice(records_ + lo * kTraceRecordBytes, static_cast<std::size_t>(hi - lo));
  }

  /// Materializes the whole trace back into memory (tooling/tests; not for
  /// the replay path).
  Trace to_trace() const;

 private:
  TraceFile() = default;
  void parse(std::string_view origin);  // validates base_/size_, fills fields

  const unsigned char* base_ = nullptr;  ///< whole file (mapping or owned_)
  std::size_t size_ = 0;
  void* map_ = nullptr;       ///< non-null for mmap-backed instances
  std::string owned_;         ///< non-empty for memory-backed instances
  const unsigned char* records_ = nullptr;  ///< packed record array
  int node_count_ = 0;
  int vnet_count_ = 1;
  std::uint64_t record_count_ = 0;
  std::string digest_;
  std::vector<std::uint64_t> starts_;  ///< node_count_+1 prefix sums
};

/// Serializes `trace` into NBTITRACE v1 bytes. Records are grouped by
/// source node (stable within a node, so same-cycle order is preserved) and
/// validated against `node_count`: src/dst out of range, length < 1 or
/// length/vnet past the u16 record fields throw TraceError naming the
/// record.
std::string serialize_trace(const Trace& trace, int node_count, std::string_view digest);

/// serialize_trace + atomic-ish write to `path` (throws TraceError if the
/// file cannot be written).
void write_trace_file(const std::string& path, const Trace& trace, int node_count,
                      std::string_view digest);

/// CSV -> binary converter: Trace::load(csv_path, node_count) followed by
/// write_trace_file. Line-numbered CSV errors propagate unchanged.
void convert_csv_trace(const std::string& csv_path, const std::string& out_path, int node_count,
                       std::string_view digest);

/// Installs one zero-copy TraceReplaySource per node, all sharing `file`'s
/// mapping. Throws TraceError when the node counts disagree.
void install_trace_replay(noc::Network& network, std::shared_ptr<const TraceFile> file);

}  // namespace nbtinoc::traffic
