#pragma once
// Benchmark presets and random mixes — the stand-in for the paper's
// "randomly picked set of benchmarks, one per core, from SPLASH2 and WCET"
// (§IV-C).
//
// Each preset's parameters were chosen from the published communication
// characteristics of the suite: SPLASH2 kernels are moderately loaded and
// bursty (cache-miss phases), WCET kernels are tiny single-tile codes with
// almost no NoC traffic. Absolute rates matter only through the buffer
// occupancy they induce, which is the quantity Table IV measures.

#include <cstdint>
#include <string>
#include <vector>

#include "nbtinoc/noc/network.hpp"
#include "nbtinoc/traffic/app_model.hpp"
#include "nbtinoc/util/rng.hpp"

namespace nbtinoc::traffic {

/// All known presets (SPLASH2 + WCET substitutes).
const std::vector<AppProfile>& benchmark_suite();

/// Looks a preset up by name; throws std::invalid_argument if unknown.
const AppProfile& benchmark_by_name(const std::string& name);

/// A benchmark assignment: one profile per core.
struct BenchmarkMix {
  std::vector<std::string> names;  ///< names[i] runs on core i

  std::string describe() const;
};

/// Draws a random mix (one benchmark per core, uniform over the suite).
BenchmarkMix random_mix(int cores, std::uint64_t seed);

/// Installs AppTrafficSources for the given mix on an existing network.
/// The hotspot (directory/memory-controller tile) defaults to the last node,
/// mirroring a corner memory controller. `rate_scale` converts the presets'
/// flits/cycle rates into the network's transfer units (phits/cycle when the
/// link is narrower than the flit).
void install_benchmark_mix(noc::Network& network, const BenchmarkMix& mix, std::uint64_t seed,
                           noc::NodeId hotspot = -1, double rate_scale = 1.0);

}  // namespace nbtinoc::traffic
