#include "nbtinoc/traffic/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "nbtinoc/util/csv.hpp"

namespace nbtinoc::traffic {

void Trace::save(const std::string& path) const {
  util::CsvWriter out(path);
  out.write_comment("nbtinoc packet trace: cycle,src,dst,length");
  for (const auto& rec : records_) {
    out.write_row({std::to_string(rec.cycle), std::to_string(rec.src), std::to_string(rec.dst),
                   std::to_string(rec.length)});
  }
}

Trace Trace::load(const std::string& path) {
  Trace trace;
  for (const auto& row : util::read_csv(path)) {
    if (row.size() != 4) throw std::runtime_error("Trace::load: malformed row");
    TraceRecord rec;
    rec.cycle = static_cast<sim::Cycle>(std::stoull(row[0]));
    rec.src = std::stoi(row[1]);
    rec.dst = std::stoi(row[2]);
    rec.length = std::stoi(row[3]);
    trace.add(rec);
  }
  return trace;
}

Trace Trace::capture(std::vector<noc::ITrafficSource*> sources, sim::Cycle cycles) {
  Trace trace;
  for (sim::Cycle t = 0; t < cycles; ++t) {
    for (std::size_t node = 0; node < sources.size(); ++node) {
      if (sources[node] == nullptr) continue;
      if (auto req = sources[node]->maybe_generate(t)) {
        trace.add(TraceRecord{t, static_cast<noc::NodeId>(node), req->dst, req->length});
      }
    }
  }
  return trace;
}

TraceReplaySource::TraceReplaySource(const Trace& trace, noc::NodeId node) {
  for (const auto& rec : trace.records())
    if (rec.src == node) mine_.push_back(rec);
  std::stable_sort(mine_.begin(), mine_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.cycle < b.cycle; });
}

std::optional<noc::PacketRequest> TraceReplaySource::maybe_generate(sim::Cycle now) {
  // The NI accepts at most one packet per cycle; later same-cycle records
  // slip to subsequent cycles, preserving order.
  if (next_ >= mine_.size() || mine_[next_].cycle > now) return std::nullopt;
  const TraceRecord& rec = mine_[next_];
  ++next_;
  return noc::PacketRequest{rec.dst, rec.length};
}

sim::Cycle TraceReplaySource::next_event_cycle(sim::Cycle now) {
  if (next_ >= mine_.size()) return sim::kCycleNever;
  return std::max(now, mine_[next_].cycle);
}

}  // namespace nbtinoc::traffic
