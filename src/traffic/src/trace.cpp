#include "nbtinoc/traffic/trace.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "nbtinoc/util/csv.hpp"

namespace nbtinoc::traffic {

void Trace::save(const std::string& path) const {
  const bool any_vnet =
      std::any_of(records_.begin(), records_.end(), [](const TraceRecord& r) { return r.vnet != 0; });
  util::CsvWriter out(path);
  out.write_comment(any_vnet ? "nbtinoc packet trace: cycle,src,dst,length,vnet"
                             : "nbtinoc packet trace: cycle,src,dst,length");
  for (const auto& rec : records_) {
    std::vector<std::string> row{std::to_string(rec.cycle), std::to_string(rec.src),
                                 std::to_string(rec.dst), std::to_string(rec.length)};
    if (any_vnet) row.push_back(std::to_string(rec.vnet));
    out.write_row(row);
  }
}

namespace {
/// Strict non-negative integer parse for one CSV cell; `where` is the
/// "path:line" prefix and `what` the column name, so every rejection names
/// the exact cell ("trace.csv:7: dst is not a non-negative integer: '-3'").
std::uint64_t parse_trace_field(const std::string& cell, const char* what,
                                const std::string& where) {
  if (cell.empty())
    throw std::runtime_error("Trace::load: " + where + ": empty " + what + " column");
  std::uint64_t value = 0;
  for (char c : cell) {
    if (c < '0' || c > '9')
      throw std::runtime_error("Trace::load: " + where + ": " + what +
                               " is not a non-negative integer: '" + cell + "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      throw std::runtime_error("Trace::load: " + where + ": " + what + " overflows: '" + cell +
                               "'");
    value = value * 10 + digit;
  }
  return value;
}
}  // namespace

Trace Trace::load(const std::string& path, int num_nodes) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Trace::load: cannot open " + path);
  Trace trace;
  std::string text;
  int line = 0;
  while (std::getline(in, text)) {
    ++line;
    if (!text.empty() && text.back() == '\r') text.pop_back();
    if (text.empty() || text[0] == '#') continue;
    const std::string where = path + ":" + std::to_string(line);
    const auto fail = [&](const std::string& msg) {
      return std::runtime_error("Trace::load: " + where + ": " + msg);
    };
    const auto row = util::parse_csv_line(text);
    if (row.size() != 4 && row.size() != 5)
      throw fail("expected 4 or 5 columns (cycle,src,dst,length[,vnet]), got " +
                 std::to_string(row.size()));
    TraceRecord rec;
    rec.cycle = static_cast<sim::Cycle>(parse_trace_field(row[0], "cycle", where));
    const std::uint64_t src = parse_trace_field(row[1], "src", where);
    const std::uint64_t dst = parse_trace_field(row[2], "dst", where);
    const std::uint64_t length = parse_trace_field(row[3], "length", where);
    const std::uint64_t vnet =
        row.size() == 5 ? parse_trace_field(row[4], "vnet", where) : 0;
    const std::uint64_t node_limit =
        num_nodes > 0 ? static_cast<std::uint64_t>(num_nodes)
                      : static_cast<std::uint64_t>(std::numeric_limits<noc::NodeId>::max());
    const std::string limit_what =
        num_nodes > 0 ? " out of range for a " + std::to_string(num_nodes) + "-node network"
                      : " does not fit a node id";
    if (src >= node_limit) throw fail("src " + row[1] + limit_what);
    if (dst >= node_limit) throw fail("dst " + row[2] + limit_what);
    if (length < 1) throw fail("length must be >= 1, got " + row[3]);
    if (length > static_cast<std::uint64_t>(std::numeric_limits<int>::max()))
      throw fail("length overflows: '" + row[3] + "'");
    if (vnet > static_cast<std::uint64_t>(std::numeric_limits<int>::max()))
      throw fail("vnet overflows: '" + row[4] + "'");
    rec.src = static_cast<noc::NodeId>(src);
    rec.dst = static_cast<noc::NodeId>(dst);
    rec.length = static_cast<int>(length);
    rec.vnet = static_cast<int>(vnet);
    trace.add(rec);
  }
  return trace;
}

Trace Trace::capture(std::vector<noc::ITrafficSource*> sources, sim::Cycle cycles) {
  Trace trace;
  noc::PacketRequest burst[noc::kMaxGenerateBurst];
  for (sim::Cycle t = 0; t < cycles; ++t) {
    for (std::size_t node = 0; node < sources.size(); ++node) {
      if (sources[node] == nullptr) continue;
      const std::size_t n = sources[node]->generate_burst(t, burst, noc::kMaxGenerateBurst);
      for (std::size_t i = 0; i < n; ++i)
        trace.record(t, static_cast<noc::NodeId>(node), burst[i]);
    }
  }
  return trace;
}

TraceReplaySource::TraceReplaySource(const Trace& trace, noc::NodeId node) {
  for (const auto& rec : trace.records())
    if (rec.src == node) mine_.push_back(rec);
  std::stable_sort(mine_.begin(), mine_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.cycle < b.cycle; });
}

TraceReplaySource::TraceReplaySource(std::shared_ptr<const TraceFile> file, noc::NodeId node)
    : file_(std::move(file)) {
  if (file_ == nullptr) throw std::invalid_argument("TraceReplaySource: null TraceFile");
  if (node < 0 || node >= file_->node_count())
    throw std::invalid_argument("TraceReplaySource: node " + std::to_string(node) +
                                " out of range for a " + std::to_string(file_->node_count()) +
                                "-node trace");
  slice_ = file_->slice(node);
}

std::optional<noc::PacketRequest> TraceReplaySource::maybe_generate(sim::Cycle now) {
  // Single-packet legacy path: one record per call; later same-cycle
  // records slip to subsequent calls, preserving order.
  if (next_ >= count() || cycle_at(next_) > now) return std::nullopt;
  return request_at(next_++);
}

std::size_t TraceReplaySource::generate_burst(sim::Cycle now, noc::PacketRequest* out,
                                              std::size_t max) {
  // A whole same-cycle run (including records slipped from earlier cycles
  // when a previous burst hit `max`) in one call, zero allocations.
  std::size_t n = 0;
  while (n < max && next_ < count() && cycle_at(next_) <= now) out[n++] = request_at(next_++);
  return n;
}

sim::Cycle TraceReplaySource::next_event_cycle(sim::Cycle now) {
  if (next_ >= count()) return sim::kCycleNever;
  return std::max(now, cycle_at(next_));
}

}  // namespace nbtinoc::traffic
