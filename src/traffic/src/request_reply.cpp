#include "nbtinoc/traffic/request_reply.hpp"

#include <algorithm>
#include <stdexcept>

namespace nbtinoc::traffic {

namespace {
// Bounded pre-roll window for next_event_cycle (see SyntheticSource): if no
// fire is found within it, the rolled frontier is returned as a safe
// conservative horizon and the caller re-asks after skipping there.
constexpr sim::Cycle kLookaheadCycles = 4096;
}  // namespace

RequestReplySource::RequestReplySource(noc::NodeId node, int mesh_nodes,
                                       RequestReplyConfig config, ReplyBoard* board,
                                       std::uint64_t seed)
    : node_(node), mesh_nodes_(mesh_nodes), config_(config), board_(board), rng_(seed) {
  if (board == nullptr) throw std::invalid_argument("RequestReplySource: null board");
  if (config.request_rate < 0.0 || config.request_rate > 1.0)
    throw std::invalid_argument("RequestReplySource: bad request rate");
  if (config.request_vnet == config.reply_vnet)
    throw std::invalid_argument("RequestReplySource: request and reply must use distinct vnets");
}

void RequestReplySource::roll_until(sim::Cycle limit, sim::Cycle now) {
  // Stepped execution draws one Bernoulli per *request* cycle and nothing
  // at reply cycles, so the pre-roll may only cover cycles provably not
  // reply cycles: strictly below the front pending reply's ready_at (the
  // front is stable until popped), and strictly below now + service_delay
  // (any reply posted after this roll — by this source or a peer — becomes
  // ready no earlier than that). rate <= 0 draws nothing in stepped mode
  // either (Xoshiro256::next_bernoulli short-circuits), so skipping is
  // stream-exact.
  if (config_.request_rate <= 0.0) return;
  sim::Cycle cap = now + config_.service_delay;  // exclusive
  const auto& pending = board_->of(node_);
  if (!pending.empty()) cap = std::min(cap, pending.front().ready_at);
  if (cap == 0) return;
  const sim::Cycle last = std::min(limit, cap - 1);
  while (next_fire_ == sim::kCycleNever && rolled_until_ <= last) {
    if (rng_.next_bernoulli(config_.request_rate)) next_fire_ = rolled_until_;
    ++rolled_until_;
  }
}

std::optional<noc::PacketRequest> RequestReplySource::maybe_generate(sim::Cycle now) {
  roll_until(now, now);

  // A pre-rolled fire is always chronologically earlier than any currently
  // ready reply (fires are capped strictly below the front's ready_at), so
  // serve it first; with per-cycle stepping the fire cycle is `now` itself
  // and this is exactly the old request branch.
  if (next_fire_ <= now) {
    const sim::Cycle fire = next_fire_;
    next_fire_ = sim::kCycleNever;
    // Uniform server choice among the other nodes.
    const auto draw = static_cast<noc::NodeId>(
        rng_.next_below(static_cast<std::uint64_t>(mesh_nodes_ - 1)));
    const noc::NodeId server = draw >= node_ ? draw + 1 : draw;
    // The reply becomes ready after the request's flight + service time;
    // flight time is approximated by the service delay knob.
    board_->post(server, ReplyBoard::PendingReply{fire + config_.service_delay, node_});
    ++requests_sent_;
    return noc::PacketRequest{server, config_.request_length, config_.request_vnet};
  }

  // Replies drain next: the protocol requires them to flow. A reply cycle
  // consumes no randomness, so advance the roll frontier past it draw-free.
  auto& pending = board_->of(node_);
  if (!pending.empty() && pending.front().ready_at <= now) {
    const noc::NodeId dst = pending.front().dst;
    pending.pop_front();
    ++replies_sent_;
    if (rolled_until_ <= now) rolled_until_ = now + 1;
    return noc::PacketRequest{dst, config_.reply_length, config_.reply_vnet};
  }
  return std::nullopt;
}

sim::Cycle RequestReplySource::next_event_cycle(sim::Cycle now) {
  const auto& pending = board_->of(node_);
  const sim::Cycle reply_at =
      pending.empty() ? sim::kCycleNever : std::max(now, pending.front().ready_at);
  if (config_.request_rate <= 0.0) return reply_at;
  if (next_fire_ == sim::kCycleNever) roll_until(now + kLookaheadCycles, now);
  const sim::Cycle fire_at =
      next_fire_ != sim::kCycleNever ? std::max(now, next_fire_) : rolled_until_;
  return std::min(fire_at, reply_at);
}

namespace {
/// Wrapper that owns the shared ReplyBoard in the first source.
class OwningRequestReplySource final : public noc::ITrafficSource {
 public:
  OwningRequestReplySource(std::shared_ptr<ReplyBoard> board, noc::NodeId node, int mesh_nodes,
                           RequestReplyConfig config, std::uint64_t seed)
      : board_(std::move(board)),
        owns_board_state_(node == 0),
        source_(node, mesh_nodes, config, board_.get(), seed) {}
  std::optional<noc::PacketRequest> maybe_generate(sim::Cycle now) override {
    return source_.maybe_generate(now);
  }
  sim::Cycle next_event_cycle(sim::Cycle now) override { return source_.next_event_cycle(now); }

  // The board is shared by every node's source; exactly one wrapper (node
  // 0, always present) round-trips its contents so the snapshot holds a
  // single copy.
  void save(sim::SnapshotWriter& w) const override {
    if (owns_board_state_) board_->save(w);
    source_.save(w);
  }
  void load(sim::SnapshotReader& r) override {
    if (owns_board_state_) board_->load(r);
    source_.load(r);
  }

 private:
  std::shared_ptr<ReplyBoard> board_;
  bool owns_board_state_;
  RequestReplySource source_;
};
}  // namespace

void install_request_reply_traffic(noc::Network& network, RequestReplyConfig config,
                                   std::uint64_t base_seed) {
  if (network.config().num_vnets < 2)
    throw std::invalid_argument("install_request_reply_traffic: needs >= 2 virtual networks");
  auto board = std::make_shared<ReplyBoard>(network.nodes());
  // Under the active-set scheduler a parked server cannot discover a reply
  // posted by a remote requester on its own; the board pokes the network so
  // the server's NI is re-activated at the reply's ready_at. Harmless (and
  // ignored) in stepped/fast-forward modes.
  board->set_wake_sink([&network](noc::NodeId server, sim::Cycle ready_at) {
    network.wake_terminal_at(server, ready_at);
  });
  util::SplitMix64 seeder(base_seed);
  for (noc::NodeId id = 0; id < network.nodes(); ++id) {
    network.set_traffic_source(id, std::make_unique<OwningRequestReplySource>(
                                       board, id, network.nodes(), config, seeder.next()));
  }
}

}  // namespace nbtinoc::traffic
